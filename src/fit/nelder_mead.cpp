#include "palu/fit/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "palu/common/error.hpp"
#include "palu/common/failpoint.hpp"

namespace palu::fit {
namespace {

using Point = std::vector<double>;

double simplex_diameter(const std::vector<Point>& pts) {
  double diam = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    double dist2 = 0.0;
    for (std::size_t k = 0; k < pts[0].size(); ++k) {
      const double d = pts[i][k] - pts[0][k];
      dist2 += d * d;
    }
    diam = std::max(diam, std::sqrt(dist2));
  }
  return diam;
}

}  // namespace

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& opts) {
  PALU_CHECK(!x0.empty(), "nelder_mead: empty start point");
  PALU_FAILPOINT("fit.nelder_mead");
  const std::size_t n = x0.size();
  // Adaptive coefficients (Gao & Han 2012) improve behaviour for larger n.
  const double nd = static_cast<double>(n);
  const double reflect = 1.0;
  const double expand = 1.0 + 2.0 / nd;
  const double contract = 0.75 - 0.5 / nd;
  const double shrink = 1.0 - 1.0 / nd;

  NelderMeadResult result;
  result.x = x0;
  result.value = f(x0);
  int total_iters = 0;

  for (int restart = 0; restart <= opts.restarts; ++restart) {
    // Build the simplex around the current best point.
    std::vector<Point> pts(n + 1, result.x);
    std::vector<double> vals(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
      const double step = opts.initial_step *
                          std::max(1.0, std::abs(result.x[i]));
      pts[i + 1][i] += step;
    }
    for (std::size_t i = 0; i <= n; ++i) vals[i] = f(pts[i]);

    std::vector<std::size_t> order(n + 1);
    for (int iter = 0; iter < opts.max_iterations; ++iter) {
      ++total_iters;
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return vals[a] < vals[b];
                });
      const std::size_t best = order[0];
      const std::size_t worst = order[n];
      const std::size_t second_worst = order[n - 1];

      if (std::isfinite(vals[best]) &&
          ((std::isfinite(vals[worst]) &&
            vals[worst] - vals[best] <= opts.f_tolerance) ||
           simplex_diameter(pts) <= opts.x_tolerance)) {
        result.converged = true;
        break;
      }

      // Centroid of all but the worst.
      Point centroid(n, 0.0);
      for (std::size_t i = 0; i <= n; ++i) {
        if (i == worst) continue;
        for (std::size_t k = 0; k < n; ++k) centroid[k] += pts[i][k];
      }
      for (double& c : centroid) c /= nd;

      auto blend = [&](double coef) {
        Point p(n);
        for (std::size_t k = 0; k < n; ++k) {
          p[k] = centroid[k] + coef * (centroid[k] - pts[worst][k]);
        }
        return p;
      };

      const Point xr = blend(reflect);
      const double fr = f(xr);
      if (fr < vals[best]) {
        const Point xe = blend(reflect * expand);
        const double fe = f(xe);
        if (fe < fr) {
          pts[worst] = xe;
          vals[worst] = fe;
        } else {
          pts[worst] = xr;
          vals[worst] = fr;
        }
      } else if (fr < vals[second_worst]) {
        pts[worst] = xr;
        vals[worst] = fr;
      } else {
        const bool outside = fr < vals[worst];
        const Point xc = blend(outside ? reflect * contract : -contract);
        const double fc = f(xc);
        if (fc < std::min(fr, vals[worst])) {
          pts[worst] = xc;
          vals[worst] = fc;
        } else {
          // Shrink toward the best vertex.
          for (std::size_t i = 0; i <= n; ++i) {
            if (i == best) continue;
            for (std::size_t k = 0; k < n; ++k) {
              pts[i][k] = pts[best][k] + shrink * (pts[i][k] - pts[best][k]);
            }
            vals[i] = f(pts[i]);
          }
        }
      }
    }

    const std::size_t best = static_cast<std::size_t>(
        std::min_element(vals.begin(), vals.end()) - vals.begin());
    if (vals[best] < result.value) {
      result.value = vals[best];
      result.x = pts[best];
    }
  }
  result.iterations = total_iters;
  return result;
}

}  // namespace palu::fit
