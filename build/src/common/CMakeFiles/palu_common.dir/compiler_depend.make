# Empty compiler generated dependencies file for palu_common.
# This may be replaced when dependencies are built.
