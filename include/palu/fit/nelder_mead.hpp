// Derivative-free simplex minimization (Nelder–Mead with adaptive
// parameters), used where residuals are non-smooth in the parameters —
// e.g. the pooled Zipf–Mandelbrot objective whose bins quantize d.
#pragma once

#include <functional>
#include <vector>

namespace palu::fit {

struct NelderMeadOptions {
  double initial_step = 0.25;     // per-coordinate simplex spread
  double f_tolerance = 1e-12;     // spread of simplex values at convergence
  double x_tolerance = 1e-10;     // simplex diameter at convergence
  int max_iterations = 2000;
  int restarts = 1;               // re-seed simplex at the best point
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes `f` starting from `x0`.  Objectives may return +inf to reject
/// out-of-domain points (the simplex contracts away from them).
NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& opts = {});

}  // namespace palu::fit
