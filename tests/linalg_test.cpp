// Unit tests for palu/linalg: dense kit, Cholesky, Householder QR.
#include <gtest/gtest.h>

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/linalg/matrix.hpp"
#include "palu/rng/xoshiro.hpp"

namespace palu::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = 2.0 * rng.uniform() - 1.0;
    }
  }
  return m;
}

TEST(Matrix, IdentityAndMultiply) {
  const Matrix eye = Matrix::identity(3);
  Matrix a(3, 3);
  double v = 1.0;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  }
  EXPECT_NEAR(Matrix::max_abs_diff(a.multiply(eye), a), 0.0, 1e-15);
  EXPECT_NEAR(Matrix::max_abs_diff(eye.multiply(a), a), 0.0, 1e-15);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const Vector x = {1.0, 0.5, -1.0};
  const Vector y = a.multiply(x);
  EXPECT_NEAR(y[0], 1.0 + 1.0 - 3.0, 1e-15);
  EXPECT_NEAR(y[1], 4.0 + 2.5 - 6.0, 1e-15);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(1);
  const Matrix a = random_matrix(4, 6, rng);
  EXPECT_NEAR(Matrix::max_abs_diff(a.transposed().transposed(), a), 0.0,
              0.0);
}

TEST(Matrix, GramEqualsExplicitProduct) {
  Rng rng(2);
  const Matrix a = random_matrix(7, 3, rng);
  const Matrix g = a.gram();
  const Matrix explicit_g = a.transposed().multiply(a);
  EXPECT_NEAR(Matrix::max_abs_diff(g, explicit_g), 0.0, 1e-13);
}

TEST(Matrix, TransposeMultiplyMatchesExplicit) {
  Rng rng(3);
  const Matrix a = random_matrix(5, 4, rng);
  Vector v(5);
  for (auto& x : v) x = rng.uniform();
  const Vector got = a.transpose_multiply(v);
  const Vector expected = a.transposed().multiply(v);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-13);
  }
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), palu::InvalidArgument);
  EXPECT_THROW(a.multiply(Vector{1.0, 2.0}), palu::InvalidArgument);
}

TEST(Cholesky, SolvesSpdSystem) {
  // A = Bᵀ·B + I is SPD for any B.
  Rng rng(4);
  const Matrix b = random_matrix(6, 4, rng);
  Matrix a = b.gram();
  for (std::size_t i = 0; i < 4; ++i) a(i, i) += 1.0;
  const Vector x_true = {1.0, -2.0, 0.5, 3.0};
  const Vector rhs = a.multiply(x_true);
  const Vector x = Cholesky(a).solve(rhs);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Cholesky, FactorReconstructsMatrix) {
  Rng rng(5);
  const Matrix b = random_matrix(5, 3, rng);
  Matrix a = b.gram();
  for (std::size_t i = 0; i < 3; ++i) a(i, i) += 0.5;
  const Cholesky chol(a);
  const Matrix l = chol.lower();
  const Matrix reconstructed = l.multiply(l.transposed());
  EXPECT_NEAR(Matrix::max_abs_diff(reconstructed, a), 0.0, 1e-12);
}

TEST(Cholesky, LogDeterminant) {
  Matrix a(2, 2);
  a(0, 0) = 4.0; a(1, 1) = 9.0;  // det = 36
  EXPECT_NEAR(Cholesky(a).log_determinant(), std::log(36.0), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 1.0;  // eigenvalues 3, −1
  EXPECT_THROW(Cholesky{a}, palu::ConvergenceError);
}

TEST(HouseholderQr, SolvesSquareSystem) {
  Matrix a(3, 3);
  a(0, 0) = 2; a(0, 1) = 1; a(0, 2) = 1;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 2;
  a(2, 0) = 1; a(2, 1) = 0; a(2, 2) = 0;
  const Vector x_true = {1.0, 2.0, 3.0};
  const Vector x = HouseholderQr(a).solve(a.multiply(x_true));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-11);
}

TEST(HouseholderQr, LeastSquaresMatchesNormalEquations) {
  Rng rng(6);
  const Matrix a = random_matrix(20, 4, rng);
  Vector b(20);
  for (double& v : b) v = rng.uniform();
  const Vector x_qr = HouseholderQr(a).solve(b);
  // Normal equations via Cholesky.
  const Vector x_ne = Cholesky(a.gram()).solve(a.transpose_multiply(b));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x_qr[i], x_ne[i], 1e-9);
}

TEST(HouseholderQr, ExactFitResidualIsZero) {
  // Fit y = 3 − 2x through colinear data: residual must vanish.
  Matrix a(5, 2);
  Vector b(5);
  for (std::size_t i = 0; i < 5; ++i) {
    const double x = static_cast<double>(i);
    a(i, 0) = 1.0;
    a(i, 1) = x;
    b[i] = 3.0 - 2.0 * x;
  }
  const Vector coef = HouseholderQr(a).solve(b);
  EXPECT_NEAR(coef[0], 3.0, 1e-12);
  EXPECT_NEAR(coef[1], -2.0, 1e-12);
}

TEST(HouseholderQr, DetectsRankDeficiency) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // second column is a multiple of the first
  }
  const HouseholderQr qr(a);
  EXPECT_LT(qr.min_abs_diag(), 1e-12);
  EXPECT_THROW(qr.solve(Vector(4, 1.0)), palu::InvalidArgument);
}

TEST(HouseholderQr, RequiresTallMatrix) {
  EXPECT_THROW(HouseholderQr(Matrix(2, 3)), palu::InvalidArgument);
}

TEST(VectorOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, -1.0}), 1.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), palu::InvalidArgument);
}

}  // namespace
}  // namespace palu::linalg
