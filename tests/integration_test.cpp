// Integration tests: the full pipelines the paper runs end to end.
//
// 1. Traffic pipeline: underlying network → packet stream → N_V windows →
//    pooled D(d_i) ± σ → modified-ZM fit (the Fig 3 flow).
// 2. Generative pipeline: PALU params → observed networks → census +
//    degree law → PALU estimation (Sections III–V).
// 3. Window-size invariance: only p changes across window sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "palu/palu.hpp"

namespace palu {
namespace {

TEST(TrafficPipeline, StreamWindowsFitZipfMandelbrot) {
  // Underlying network with a heavy-tailed core so the fan-out
  // distribution is ZM-like.
  Rng gen_rng(100);
  const auto g = graph::zeta_degree_core(gen_rng, 20000, 2.0, 2000);
  traffic::RateModel rates;
  rates.kind = traffic::RateModel::Kind::kUniform;
  traffic::SyntheticTrafficGenerator stream(g, rates, Rng(101));

  // Aggregate consecutive equal-size windows (Section II).
  stats::BinnedEnsemble ensemble;
  Degree dmax = 0;
  for (int t = 0; t < 8; ++t) {
    const auto window = stream.window(50000);
    EXPECT_EQ(window.total(), 50000u);
    const auto h =
        traffic::quantity_histogram(window, traffic::Quantity::kSourceFanOut);
    dmax = std::max(dmax, h.max_degree());
    ensemble.add(stats::LogBinned::from_histogram(h));
  }
  ASSERT_GE(ensemble.num_bins(), 4u);

  // Fit the mean pooled distribution, weighting by the window σ.
  fit::ZmFitOptions opts;
  opts.bin_sigma = ensemble.stddev();
  const auto result = fit_zipf_mandelbrot(
      stats::LogBinned(ensemble.mean()), dmax, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.alpha, 1.2);
  EXPECT_LT(result.alpha, 4.0);
  EXPECT_GT(result.delta, -1.0);

  // The fitted model must reproduce the measured pooled masses closely.
  const fit::ZipfMandelbrot zm(result.alpha, result.delta, dmax);
  const auto model = zm.pooled();
  const auto mean = ensemble.mean();
  for (std::size_t i = 0; i < std::min<std::size_t>(mean.size(), 6); ++i) {
    const double m = i < model.num_bins() ? model[i] : 0.0;
    EXPECT_NEAR(mean[i], m, 0.05 + 0.25 * mean[i]) << "bin " << i;
  }
}

TEST(TrafficPipeline, TableOneAggregatesConsistentAcrossWindows) {
  Rng gen_rng(103);
  const auto g = graph::erdos_renyi(gen_rng, 3000, 0.002);
  traffic::SyntheticTrafficGenerator stream(g, traffic::RateModel{},
                                            Rng(105));
  for (const Count nv : {1000u, 10000u, 100000u}) {
    const auto window = stream.window(nv);
    const auto s = traffic::aggregates_summation(window);
    const auto m = traffic::aggregates_matrix(window);
    EXPECT_EQ(s, m) << "N_V=" << nv;
    EXPECT_EQ(s.valid_packets, nv);
    EXPECT_LE(s.unique_links, nv);
    EXPECT_LE(s.unique_sources, s.unique_links);
  }
}

TEST(GenerativePipeline, CensusAndEstimationEndToEnd) {
  const core::PaluParams params = core::PaluParams::solve_hubs(
      /*lambda=*/4.0, /*core=*/0.3, /*leaves=*/0.25, /*alpha=*/2.1,
      /*window=*/0.7);
  Rng rng(107);
  const auto net = core::generate_underlying(params, 200000, rng);
  const auto observed = core::generate_observed(net, params, rng);

  // Census shows all Fig-2 topology classes at once.
  const auto census = graph::classify_topology(observed);
  EXPECT_GT(census.isolated_nodes, 0u);
  EXPECT_GT(census.unattached_links, 0u);
  EXPECT_GT(census.star_components, 0u);
  EXPECT_GT(census.core_nodes, 0u);

  // Degree histogram feeds the PALU estimator.
  const auto h = stats::DegreeHistogram::from_degrees(observed.degrees());
  const auto fit = core::fit_palu(h);
  EXPECT_NEAR(fit.alpha, params.alpha, 0.3);
  const auto k = core::simplified_constants(params);
  EXPECT_NEAR(fit.mu, k.mu, 0.35 * k.mu);
}

TEST(GenerativePipeline, PowerLawMleSeesHeavierTailThanPoissonNull) {
  // The observed degree law's tail must register as power-law-like to the
  // CSN machinery with an exponent near the core α.
  const core::PaluParams params = core::PaluParams::solve_hubs(
      2.0, 0.5, 0.1, 2.4, 0.9);
  Rng rng(109);
  const auto h = core::sample_observed_degrees(params, 300000, rng);
  const auto fit = fit::fit_power_law(h);
  EXPECT_NEAR(fit.alpha, params.alpha, 0.35);
}

TEST(WindowInvariance, EstimatedMuScalesLinearlyWithP) {
  // The same underlying parameters observed at two window sizes must yield
  // μ̂ ratios ≈ p₂/p₁ while α stays put — the PALU invariance claim.
  const double lambda = 8.0;
  auto params_at = [&](double p) {
    return core::PaluParams::solve_hubs(lambda, 0.35, 0.2, 2.2, p);
  };
  Rng rng1(111), rng2(112);
  const auto h1 =
      core::sample_observed_degrees(params_at(0.4), 500000, rng1);
  const auto h2 =
      core::sample_observed_degrees(params_at(0.8), 500000, rng2);
  const auto f1 = core::fit_palu(h1);
  const auto f2 = core::fit_palu(h2);
  EXPECT_NEAR(f2.mu / f1.mu, 2.0, 0.45);
  EXPECT_NEAR(f1.alpha, f2.alpha, 0.35);
}

TEST(ZmConnection, GenerativeParamsLandOnFittableCurve) {
  // δ(params) from Section VI must define a valid PaluZmCurve for some r
  // and the pooled curve must resemble the pooled simplified theory.
  const core::PaluParams params = core::PaluParams::solve_hubs(
      1.5, 0.45, 0.2, 2.0, 0.8);
  const double delta = core::delta_from_params(params);
  ASSERT_GT(delta, -1.0);
  ASSERT_LT(delta, 0.0);
  const core::PaluZmCurve curve(params.alpha, delta, 2.5, 1u << 12);
  EXPECT_NEAR(curve.pooled().total_mass(), 1.0, 1e-9);
}

TEST(FailureInjection, PipelinesRejectDegenerateInputs) {
  // Empty window → no distribution.
  const traffic::SparseCountMatrix empty;
  EXPECT_THROW(stats::EmpiricalDistribution::from_histogram(
                   traffic::undirected_degree_histogram(empty)),
               DataError);
  // Single-bin pooled target → ZM fit refuses.
  EXPECT_THROW(fit::fit_zipf_mandelbrot(stats::LogBinned({1.0}), 1024),
               InvalidArgument);
  // Unnormalized params refuse to generate.
  core::PaluParams bad = core::PaluParams::solve_hubs(2.0, 0.4, 0.2, 2.0,
                                                      0.5);
  bad.core = 0.9;
  Rng rng(1);
  EXPECT_THROW(core::generate_underlying(bad, 1000, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace palu
