// Folding count-variable marginals into the paper's log₂ bins.
//
// The expectation sweep path needs, per entity (node or directed link), the
// probability mass its window-count variable X places in each logarithmic
// bin: bin 0 = {1}, bin i = (2^{i−1}, 2^i], the same convention as
// stats::LogBinned (the top bin saturates).  Two families cover all six
// paper quantities:
//
//   * X ~ Binomial(N_V, p)  — packet counts of a source / link / destination;
//   * X ~ PoissonBinomial(π₁…π_k) — fan-out / fan-in / undirected degree,
//     where π_j = 1 − (1−q_j)^{N_V} is link j's visibility and the link
//     indicators are treated as independent (exact under multinomial
//     sampling up to O(q_i·q_j) negative correlation; see DESIGN.md §5i).
//
// The evaluation ladder, in decreasing exactness:
//
//   1. exact  — Poisson-binomial DP (O(k²)) below pb_exact_max_terms, and a
//      ratio-recurrence binomial pmf walk when the ±40σ support span fits
//      exact_span_limit;
//   2. normal — continuity-corrected, third-moment (Edgeworth) corrected
//      Φ((m+½−μ)/σ) for central bin boundaries (|z| ≤ normal_z_max);
//   3. saddlepoint — lattice Lugannani–Rice for tail boundaries (closed-form
//      saddle for the binomial, Newton on K'(t)=x for the Poisson-binomial);
//      boundaries beyond tail_z_cut·σ clamp to 0/1.
//
// P[X = 0] — the entity-visibility complement — is always computed exactly
// (−expm1(Σ log1p(−π)) / −expm1(N·log1p(−p))), never from an approximation.
// All bin masses are *added* into the caller's accumulator so one pass over
// entities produces the expected histogram directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace palu::math {

/// Approximation thresholds of the evaluation ladder.  Defaults keep every
/// path O(1)-bounded per entity (after the exact tiers) so the expected
/// sweep stays O(E) per window size.
struct BinMassOptions {
  /// Poisson-binomial exact DP when the term count is at most this.
  std::size_t pb_exact_max_terms = 128;
  /// Binomial exact pmf walk when the ±40σ support span fits below this.
  double exact_span_limit = 512.0;
  /// |z| at or below this uses the corrected normal; above, Lugannani–Rice.
  double normal_z_max = 2.0;
  /// Bin boundaries beyond this many σ contribute no mass (clamped 0/1).
  double tail_z_cut = 40.0;
};

/// Reusable scratch (Poisson-binomial DP pmf) so per-entity folds do not
/// allocate; a default-constructed instance is valid.
struct BinMassScratch {
  std::vector<double> pmf;
};

/// Returns the largest index a value d ≥ 1 can fold into given nbins bins
/// (the saturating top bin), i.e. min(bit_width(d−1), nbins−1).
std::size_t log2_bin_index(std::uint64_t d, std::size_t nbins);

/// Adds P[X ∈ bin_i] of X ~ Binomial(n, p) into bins[i] for every bin and
/// returns the visibility P[X ≥ 1].  Requires p ∈ [0, 1] and
/// bins.size() ≥ 1.
double binomial_log2_bins(std::uint64_t n, double p, std::span<double> bins,
                          const BinMassOptions& opts = {});

/// Adds P[X ∈ bin_i] of X ~ PoissonBinomial(probs) into bins[i] and returns
/// P[X ≥ 1].  Requires every probs[j] ∈ [0, 1] and bins.size() ≥ 1.
double poisson_binomial_log2_bins(std::span<const double> probs,
                                  std::span<double> bins,
                                  BinMassScratch& scratch,
                                  const BinMassOptions& opts = {});

/// P[X ≤ m] for X ~ Binomial(n, p) through the same normal/saddlepoint
/// ladder (no exact tier); exposed for the expected-maximum search and the
/// DP-vs-saddlepoint cross-check tests.
double binomial_cdf_approx(std::uint64_t n, double p, double m,
                           const BinMassOptions& opts = {});

/// P[X ≤ m] for X ~ PoissonBinomial(probs), same ladder as above.
double poisson_binomial_cdf_approx(std::span<const double> probs, double m,
                                   const BinMassOptions& opts = {});

}  // namespace palu::math
