file(REMOVE_RECURSE
  "libpalu_common.a"
)
