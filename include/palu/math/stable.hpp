// Numerically stable scalar helpers used throughout the model code.
#pragma once

namespace palu::math {

/// (e^x − 1 − x) computed without catastrophic cancellation near 0.
/// This is the denominator of the paper's Λ moment-ratio (Section IV-B).
double expm1_minus_x(double x);

/// x·ln(y) with the convention 0·ln(0) = 0 (used in log-likelihoods).
double xlogy(double x, double y);

/// log(1 + x) − x, stable near 0 (series for |x| < 1e-4).
double log1p_minus_x(double x);

/// Σ of a and b in log space: log(e^a + e^b) without overflow.
double log_add_exp(double a, double b);

/// Relative difference |a−b| / max(|a|, |b|, tiny); 0 when both are 0.
double rel_diff(double a, double b);

}  // namespace palu::math
