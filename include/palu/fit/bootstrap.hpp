// Nonparametric bootstrap confidence intervals for fitted statistics.
//
// The paper reports point estimates (α, δ, the PALU constants) without
// uncertainty; this utility attaches percentile confidence intervals by
// resampling the observed degree histogram with replacement and refitting
// any user statistic.  Replicates run in parallel on a ThreadPool with
// deterministic per-replicate RNG streams.
#pragma once

#include <functional>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/parallel/thread_pool.hpp"
#include "palu/rng/xoshiro.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::fit {

struct BootstrapOptions {
  int replicates = 200;
  double confidence = 0.95;  // central percentile interval
};

struct BootstrapResult {
  double estimate = 0.0;   // statistic on the original data
  double lower = 0.0;      // percentile CI bounds
  double upper = 0.0;
  double std_error = 0.0;  // bootstrap standard deviation
  int replicates_used = 0; // replicates whose statistic evaluated cleanly
};

/// `statistic` maps a histogram to a scalar (e.g. the fitted ZM α); it may
/// throw palu::Error for degenerate resamples, which are skipped.  Throws
/// palu::DataError when fewer than 10 replicates survive.
BootstrapResult bootstrap_ci(
    const stats::DegreeHistogram& h,
    const std::function<double(const stats::DegreeHistogram&)>& statistic,
    Rng& rng, ThreadPool& pool, const BootstrapOptions& opts = {});

/// Vector-valued variant: one resampling pass yields CIs for several
/// statistics at once (e.g. all five PALU constants from a single refit
/// per replicate).  The statistic must return the same number of values
/// on every call; replicates where it throws are skipped entirely.
std::vector<BootstrapResult> bootstrap_ci_multi(
    const stats::DegreeHistogram& h,
    const std::function<std::vector<double>(const stats::DegreeHistogram&)>&
        statistic,
    Rng& rng, ThreadPool& pool, const BootstrapOptions& opts = {});

}  // namespace palu::fit
