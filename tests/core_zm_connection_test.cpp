// Unit tests for the Section VI Zipf–Mandelbrot connection (Eq. 5).
#include <gtest/gtest.h>

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/core/zm_connection.hpp"
#include "palu/fit/zipf_mandelbrot.hpp"
#include "palu/math/zeta.hpp"

namespace palu::core {
namespace {

TEST(UOverC, RoundTripsWithDelta) {
  for (double alpha : {1.6, 2.0, 2.8}) {
    for (double delta : {-0.5, 0.0, 0.3, 2.0, 10.0}) {
      const double uc = u_over_c_from_delta(alpha, delta);
      EXPECT_NEAR(delta_from_u_over_c(alpha, uc), delta,
                  1e-10 * (1.0 + std::abs(delta)))
          << "alpha=" << alpha << " delta=" << delta;
    }
  }
}

TEST(UOverC, SignConvention) {
  // δ > 0 ⇒ β < 0 (curve bends below the power law at small d);
  // δ < 0 ⇒ β > 0 (excess at small d, the leaves signature).
  EXPECT_LT(u_over_c_from_delta(2.0, 1.0), 0.0);
  EXPECT_GT(u_over_c_from_delta(2.0, -0.5), 0.0);
  EXPECT_DOUBLE_EQ(u_over_c_from_delta(2.0, 0.0), 0.0);
}

TEST(DeltaFromParams, MatchesClosedForm) {
  const PaluParams p =
      PaluParams::solve_hubs(2.0, 0.4, 0.25, 2.2, 0.6);
  const double delta = delta_from_params(p);
  const double mu = p.lambda * p.window;
  const double rhs = (p.hubs / p.core) * std::exp(-mu) *
                         math::riemann_zeta(p.alpha) *
                         std::pow(p.window, -p.alpha) +
                     1.0;
  EXPECT_NEAR(std::pow(1.0 + delta, -p.alpha), rhs, 1e-12);
  // u/c > 0 in the generative model, so δ must be negative.
  EXPECT_LT(delta, 0.0);
  EXPECT_GT(delta, -1.0);
}

TEST(PaluZmCurve, NormalizesAndMatchesBruteForce) {
  const PaluZmCurve curve(2.0, -0.3, 2.0, 2048);
  double total = 0.0;
  for (Degree d = 1; d <= 2048; ++d) total += curve.pmf(d);
  EXPECT_NEAR(total, 1.0, 1e-10);
  // cdf consistency.
  double running = 0.0;
  for (Degree d = 1; d <= 64; ++d) {
    running += curve.pmf(d);
    EXPECT_NEAR(curve.cdf(d), running, 1e-10) << "d=" << d;
  }
}

TEST(PaluZmCurve, ReducesToPurePowerLawAtDeltaZero) {
  // δ = 0 ⇒ β = 0: the r term vanishes identically.
  const PaluZmCurve curve(2.3, 0.0, 3.0, 1024);
  const double z = math::truncated_zeta(2.3, 1024);
  for (Degree d : {1u, 2u, 7u, 100u}) {
    EXPECT_NEAR(curve.pmf(d),
                std::pow(static_cast<double>(d), -2.3) / z, 1e-12);
  }
}

TEST(PaluZmCurve, GeometricTermDiesOffForLargeD) {
  const PaluZmCurve curve(2.0, -0.4, 1.5, 1u << 16);
  const double z_ratio = curve.pmf(1 << 12) / curve.pmf(1 << 13);
  EXPECT_NEAR(z_ratio, std::pow(2.0, 2.0), 0.01);
}

TEST(PaluZmCurve, HeadIsPinnedToDelta) {
  // Unnormalized value at d = 1 is exactly (1+δ)^{−α}.  (r must be large
  // enough that the negative-β correction keeps the pmf non-negative:
  // r >= |β|·2^α at d = 2.)
  for (double delta : {-0.6, -0.2, 0.5, 2.0}) {
    const PaluZmCurve curve(2.0, delta, 6.0, 256);
    EXPECT_NEAR(curve.unnormalized(1), std::pow(1.0 + delta, -2.0),
                1e-12);
  }
}

TEST(PaluZmCurve, PooledMatchesPerDegreeSums) {
  const PaluZmCurve curve(2.2, -0.35, 1.8, 500);
  const auto pooled = curve.pooled();
  EXPECT_NEAR(pooled.total_mass(), 1.0, 1e-10);
  double direct = 0.0;
  for (Degree d = 5; d <= 8; ++d) direct += curve.pmf(d);  // bin 3
  EXPECT_NEAR(pooled[3], direct, 1e-10);
}

TEST(PaluZmCurve, RejectsNegativePmfRegion) {
  // δ > 0 with r barely above 1 makes d^{−α} + β·r^{1−d} negative at
  // moderate d.
  EXPECT_THROW(PaluZmCurve(3.0, 5.0, 1.01, 1024), InvalidArgument);
}

TEST(PaluZmCurve, RejectsBadParameters) {
  EXPECT_THROW(PaluZmCurve(2.0, 0.0, 1.0, 10), InvalidArgument);
  EXPECT_THROW(PaluZmCurve(2.0, 0.0, 0.5, 10), InvalidArgument);
  EXPECT_THROW(PaluZmCurve(0.0, 0.0, 2.0, 10), InvalidArgument);
}

struct Fig4Case {
  double alpha;
  double delta;
};

class RFitSweep : public ::testing::TestWithParam<Fig4Case> {};

TEST_P(RFitSweep, PaluApproachesZipfMandelbrot) {
  // Fig 4: for any (α, δ) there is an r making PALU(d) track the ZM pooled
  // distribution closely — and far closer than the pure power law (the
  // r → ∞ limit of the family).
  const auto [alpha, delta] = GetParam();
  const Degree dmax = 1u << 12;
  const auto fit = fit_r_to_zipf_mandelbrot(alpha, delta, dmax);
  EXPECT_GT(fit.r, 1.0);
  // The exponential r^{1−d} correction can cancel a modest-δ head exactly
  // but cannot suppress several consecutive small-d bins the way a large
  // offset does, so the absolute bound applies for δ <= 1 and the
  // relative improvement bound below covers the rest.
  if (delta <= 1.0) {
    EXPECT_LT(fit.sse, 1e-2) << "alpha=" << alpha << " delta=" << delta;
  }

  // Pure-power-law baseline SSE against the same target.
  const fit::ZipfMandelbrot zm(alpha, delta, dmax);
  const auto target = zm.pooled();
  const fit::ZipfMandelbrot pure(alpha, 0.0, dmax);
  const auto pure_pooled = pure.pooled();
  double pure_sse = 0.0;
  for (std::size_t i = 0; i < target.num_bins(); ++i) {
    const double m = i < pure_pooled.num_bins() ? pure_pooled[i] : 0.0;
    pure_sse += (target[i] - m) * (target[i] - m);
  }
  if (delta != 0.0) {
    EXPECT_LT(fit.sse, 0.5 * pure_sse)
        << "alpha=" << alpha << " delta=" << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(Fig4Grid, RFitSweep,
                         ::testing::Values(Fig4Case{2.0, 0.5},
                                           Fig4Case{2.0, 2.0},
                                           Fig4Case{2.5, 1.0},
                                           Fig4Case{3.0, 0.5},
                                           Fig4Case{3.0, 3.0},
                                           Fig4Case{2.2, -0.4}));

TEST(RFit, BetterRBeatsArbitraryR) {
  const double alpha = 2.0, delta = 1.0;
  const Degree dmax = 1u << 12;
  const auto best = fit_r_to_zipf_mandelbrot(alpha, delta, dmax);
  const fit::ZipfMandelbrot zm(alpha, delta, dmax);
  const auto target = zm.pooled();
  const auto sse_at = [&](double r) {
    stats::LogBinned pooled;
    try {
      pooled = PaluZmCurve(alpha, delta, r, dmax).pooled();
    } catch (const palu::InvalidArgument&) {
      return 1e12;  // negative-pmf region counts as arbitrarily bad
    }
    double sse = 0.0;
    for (std::size_t i = 0; i < target.num_bins(); ++i) {
      const double m = i < pooled.num_bins() ? pooled[i] : 0.0;
      sse += (target[i] - m) * (target[i] - m);
    }
    return sse;
  };
  EXPECT_LE(best.sse, sse_at(best.r * 3.0));
  EXPECT_LE(best.sse, sse_at(1.0 + (best.r - 1.0) / 3.0));
}

}  // namespace
}  // namespace palu::core
