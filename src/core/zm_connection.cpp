#include "palu/core/zm_connection.hpp"

#include <algorithm>
#include <cmath>

#include "palu/common/error.hpp"
#include "palu/fit/brent.hpp"
#include "palu/fit/zipf_mandelbrot.hpp"
#include "palu/math/zeta.hpp"

namespace palu::core {

double u_over_c_from_delta(double alpha, double delta) {
  PALU_CHECK(alpha > 0.0, "u_over_c_from_delta: requires alpha > 0");
  PALU_CHECK(delta > -1.0, "u_over_c_from_delta: requires delta > -1");
  return std::pow(1.0 + delta, -alpha) - 1.0;
}

double delta_from_u_over_c(double alpha, double u_over_c) {
  PALU_CHECK(alpha > 0.0, "delta_from_u_over_c: requires alpha > 0");
  PALU_CHECK(u_over_c > -1.0, "delta_from_u_over_c: requires u/c > -1");
  return std::pow(u_over_c + 1.0, -1.0 / alpha) - 1.0;
}

double delta_from_params(const PaluParams& params) {
  params.validate();
  PALU_CHECK(params.core > 0.0, "delta_from_params: requires C > 0");
  // (1+δ)^{−α} = (U/C)·e^{−λp}·ζ(α)·p^{−α} + 1  (Section VI).
  const double mu = params.lambda * params.window;
  const double rhs = (params.hubs / params.core) * std::exp(-mu) *
                         math::riemann_zeta(params.alpha) *
                         std::pow(params.window, -params.alpha) +
                     1.0;
  return std::pow(rhs, -1.0 / params.alpha) - 1.0;
}

PaluZmCurve::PaluZmCurve(double alpha, double delta, double r, Degree dmax)
    : alpha_(alpha),
      delta_(delta),
      r_(r),
      beta_(u_over_c_from_delta(alpha, delta)),
      dmax_(dmax) {
  PALU_CHECK(alpha > 0.0, "PaluZmCurve: requires alpha > 0");
  PALU_CHECK(r > 1.0, "PaluZmCurve: requires r > 1");
  PALU_CHECK(dmax >= 1, "PaluZmCurve: requires dmax >= 1");
  // Negative β (δ > 0) subtracts near d = 1; verify the pmf stays
  // non-negative on the early support where the correction is largest.
  const Degree probe_end = std::min<Degree>(dmax, 64);
  for (Degree d = 1; d <= probe_end; ++d) {
    PALU_CHECK(unnormalized(d) >= -1e-15,
               "PaluZmCurve: parameters yield a negative pmf");
  }
  normalizer_ = partial_sum(dmax);
  PALU_CHECK(normalizer_ > 0.0, "PaluZmCurve: zero total mass");
}

double PaluZmCurve::unnormalized(Degree d) const {
  const double dd = static_cast<double>(d);
  return std::pow(dd, -alpha_) + beta_ * std::pow(r_, 1.0 - dd);
}

double PaluZmCurve::partial_sum(Degree x) const {
  // Σ_{d=1}^{x} d^{−α} + β Σ_{d=1}^{x} r^{1−d};
  // the geometric sum is (1 − q^x)/(1 − q) with q = 1/r < 1.
  const double power_part = math::truncated_zeta(alpha_, x);
  const double q = 1.0 / r_;
  const double geo =
      -std::expm1(static_cast<double>(x) * std::log(q)) / (1.0 - q);
  return power_part + beta_ * geo;
}

double PaluZmCurve::pmf(Degree d) const {
  PALU_CHECK(d >= 1 && d <= dmax_, "PaluZmCurve::pmf: d out of range");
  return std::max(0.0, unnormalized(d)) / normalizer_;
}

double PaluZmCurve::cdf(Degree d) const {
  if (d < 1) return 0.0;
  d = std::min(d, dmax_);
  return partial_sum(d) / normalizer_;
}

stats::LogBinned PaluZmCurve::pooled() const {
  const std::uint32_t nbins = stats::LogBinned::bin_index(dmax_) + 1;
  std::vector<double> mass(nbins, 0.0);
  double prev = 0.0;
  for (std::uint32_t i = 0; i < nbins; ++i) {
    const Degree upper = std::min(stats::LogBinned::bin_upper(i), dmax_);
    const double c = cdf(upper);
    mass[i] = c - prev;
    prev = c;
  }
  return stats::LogBinned(std::move(mass));
}

RFitResult fit_r_to_zipf_mandelbrot(double alpha, double delta,
                                    Degree dmax) {
  const fit::ZipfMandelbrot zm(alpha, delta, dmax);
  const stats::LogBinned target = zm.pooled();
  const auto objective = [&](double log_r_minus_1) {
    const double r = 1.0 + std::exp(log_r_minus_1);
    stats::LogBinned pooled;
    try {
      pooled = PaluZmCurve(alpha, delta, r, dmax).pooled();
    } catch (const InvalidArgument&) {
      return 1e12;  // negative-pmf region: reject
    }
    double sse = 0.0;
    for (std::size_t i = 0; i < target.num_bins(); ++i) {
      const double m = i < pooled.num_bins() ? pooled[i] : 0.0;
      const double resid = target[i] - m;
      sse += resid * resid;
    }
    return sse;
  };
  // Search r − 1 over ~[e^{−6}, e^{6}] in log space.
  const double best_log = fit::brent_minimize(objective, -6.0, 6.0);
  RFitResult out;
  out.r = 1.0 + std::exp(best_log);
  out.sse = objective(best_log);
  return out;
}

}  // namespace palu::core
