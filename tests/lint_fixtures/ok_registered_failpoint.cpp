// Fixture: a site whose name IS in tools/failpoints.txt is clean — and a
// commented-out site plus a name inside a string literal must not confuse
// the scanner: PALU_FAILPOINT("lint.fixture.in.comment") stays inert.
// palu-lint-expect-clean
#include <string>

#include "palu/common/failpoint.hpp"

void poke() { PALU_FAILPOINT("fit.levmar"); }

inline std::string prose() {
  return "mentions std::rand and time(nullptr) only as text";
}
