// Fixture: a deliberately unlocked read, sanctioned in place.
// palu-lint-expect-clean
#include <mutex>

#include "palu/common/thread_annotations.hpp"

class Tracker {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ += v;
  }

  int peek() const {
    // Racy-by-design gauge read: staleness is acceptable here.
    // palu-lint: allow(lock-discipline)
    return total_;
  }

 private:
  mutable std::mutex mutex_;
  int total_ PALU_GUARDED_BY(mutex_) = 0;
};
