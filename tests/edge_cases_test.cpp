// Cross-module edge cases: tiny supports, extreme parameters, boundary
// windows — the inputs that break libraries in the field.
#include <gtest/gtest.h>

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/core/estimate.hpp"
#include "palu/core/generator.hpp"
#include "palu/core/theory.hpp"
#include "palu/core/zm_connection.hpp"
#include "palu/fit/levmar.hpp"
#include "palu/fit/powerlaw_mle.hpp"
#include "palu/fit/zipf_mandelbrot.hpp"
#include "palu/graph/components.hpp"
#include "palu/graph/generators.hpp"
#include "palu/parallel/parallel_for.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/stats/chisq.hpp"
#include "palu/stats/distribution.hpp"
#include "palu/stats/log_binning.hpp"
#include "palu/traffic/stream.hpp"

namespace palu {
namespace {

TEST(EdgeCases, ZipfMandelbrotTinySupports) {
  // dmax = 1: all mass at d = 1.
  const fit::ZipfMandelbrot one(2.0, 0.5, 1);
  EXPECT_DOUBLE_EQ(one.pmf(1), 1.0);
  EXPECT_DOUBLE_EQ(one.cdf(1), 1.0);
  const auto pooled1 = one.pooled();
  ASSERT_EQ(pooled1.num_bins(), 1u);
  EXPECT_DOUBLE_EQ(pooled1[0], 1.0);
  // dmax = 3: bins {1}, {2}, {3..4 truncated at 3}.
  const fit::ZipfMandelbrot three(1.5, 0.0, 3);
  const auto pooled3 = three.pooled();
  ASSERT_EQ(pooled3.num_bins(), 3u);
  EXPECT_NEAR(pooled3.total_mass(), 1.0, 1e-12);
  EXPECT_NEAR(pooled3[2], three.pmf(3), 1e-12);
}

TEST(EdgeCases, PaluZmCurveSingleton) {
  const core::PaluZmCurve curve(2.0, -0.5, 2.0, 1);
  EXPECT_DOUBLE_EQ(curve.pmf(1), 1.0);
  EXPECT_NEAR(curve.pooled().total_mass(), 1.0, 1e-12);
}

TEST(EdgeCases, LogBinnedAllMassAtOne) {
  stats::DegreeHistogram h;
  h.add(1, 1000);
  const auto pooled = stats::LogBinned::from_histogram(h);
  ASSERT_EQ(pooled.num_bins(), 1u);
  EXPECT_DOUBLE_EQ(pooled[0], 1.0);
}

TEST(EdgeCases, EmpiricalSingleSupportPoint) {
  stats::DegreeHistogram h;
  h.add(7, 42);
  const auto dist = stats::EmpiricalDistribution::from_histogram(h);
  EXPECT_DOUBLE_EQ(dist.probability_at(7), 1.0);
  EXPECT_DOUBLE_EQ(dist.cumulative_at(6), 0.0);
  EXPECT_DOUBLE_EQ(dist.cumulative_at(7), 1.0);
  EXPECT_EQ(dist.max_value(), 7u);
  EXPECT_DOUBLE_EQ(dist.mean(), 7.0);
}

TEST(EdgeCases, PowerLawXminAboveSupportThrows) {
  stats::DegreeHistogram h;
  h.add(1, 10);
  h.add(2, 5);
  EXPECT_THROW(fit::fit_power_law_fixed_xmin(h, 100), DataError);
}

TEST(EdgeCases, SingleThreadPoolStillOrdersReduce) {
  ThreadPool pool(1);
  const auto concat = parallel_reduce<std::string>(
      pool, 0, 26, 1, std::string{},
      [](IndexRange r) {
        std::string s;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          s.push_back(static_cast<char>('a' + i));
        }
        return s;
      },
      [](std::string a, std::string b) { return a + b; });
  EXPECT_EQ(concat, "abcdefghijklmnopqrstuvwxyz");
}

TEST(EdgeCases, TinyWindowParameter) {
  // p = 1e-6: the theory must stay finite and positive.
  const auto params =
      core::PaluParams::solve_hubs(5.0, 0.4, 0.2, 2.2, 1e-6);
  const auto comp = core::observed_composition(params);
  EXPECT_GT(comp.visible_mass, 0.0);
  EXPECT_LT(comp.visible_mass, 1.0);
  EXPECT_GT(core::degree_share(params, 1), 0.0);
  const auto k = core::simplified_constants(params);
  EXPECT_NEAR(k.mu, 5e-6, 1e-12);
}

TEST(EdgeCases, DegreeShareAtHugeDegreeUnderflowsGracefully) {
  const auto params =
      core::PaluParams::solve_hubs(3.0, 0.4, 0.2, 2.2, 0.7);
  const double s = core::degree_share(params, Degree{1} << 40);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1e-20);
}

TEST(EdgeCases, SteepZipfConcentratesAtMinimum) {
  rng::BoundedZipfSampler zipf(30.0, 5, 1000);
  Rng rng(1);
  int at_min = 0;
  for (int i = 0; i < 1000; ++i) at_min += (zipf(rng) == 5);
  EXPECT_GT(at_min, 990);
}

TEST(EdgeCases, AliasSingleOutcome) {
  rng::AliasSampler alias({3.0});
  Rng rng(2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(alias(rng), 0u);
}

TEST(EdgeCases, EmptyGraphOperations) {
  const graph::Graph g(0);
  EXPECT_TRUE(g.degrees().empty());
  EXPECT_EQ(graph::connected_components(g).size(), 0u);
  const auto census = graph::classify_topology(g);
  EXPECT_EQ(census.total_components(), 0u);
  EXPECT_EQ(census.isolated_nodes, 0u);
}

TEST(EdgeCases, ConnectByEdgeSwapWithMultiEdges) {
  Rng rng(3);
  graph::Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // parallel edge
  g.add_edge(2, 3);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  const auto out = graph::connect_by_edge_swap(rng, g);
  EXPECT_EQ(out.num_edges(), 5u);
  EXPECT_EQ(out.degrees(), g.degrees());
  // Multi-edge components carry cycles (in the multigraph sense), so the
  // merge has fuel; at minimum nothing crashes and degrees hold.
}

TEST(EdgeCases, FitPaluAllMassInTail) {
  // No head at all: l must come back 0 and the fit still stands.
  stats::DegreeHistogram h;
  for (Degree d = 10; d <= 2000; ++d) {
    const auto count = static_cast<Count>(
        std::llround(1e8 * std::pow(static_cast<double>(d), -2.0)));
    if (count > 0) h.add(d, count);
  }
  const auto fit = core::fit_palu(h);
  EXPECT_NEAR(fit.alpha, 2.0, 0.05);
  EXPECT_DOUBLE_EQ(fit.l, 0.0);
}

TEST(EdgeCases, LevMarPropagatesThrowAtStart) {
  const auto residuals =
      [](const std::vector<double>&) -> std::vector<double> {
    throw InvalidArgument("bad start");
  };
  EXPECT_THROW(fit::levenberg_marquardt(residuals, {1.0}),
               InvalidArgument);
}

TEST(EdgeCases, ChiSquareRaggedBinCounts) {
  // Observed has more bins than the model and vice versa: missing bins
  // count as zero mass on either side.
  const stats::LogBinned obs({0.5, 0.3, 0.15, 0.05});
  const stats::LogBinned model({0.5, 0.3, 0.2});
  const auto r1 = stats::chi_square_pooled(obs, model, 1000, 0);
  EXPECT_GE(r1.statistic, 0.0);
  const auto r2 = stats::chi_square_pooled(model, obs, 1000, 0);
  EXPECT_GE(r2.statistic, 0.0);
}

TEST(EdgeCases, DeltaFromParamsExtremes) {
  // Star-free-ish network: u/c → 0 from above, δ → 0 from below.
  const auto params =
      core::PaluParams::solve_hubs(19.9, 0.89, 0.05, 2.0, 1.0);
  const double delta = core::delta_from_params(params);
  EXPECT_LT(delta, 0.0);
  EXPECT_GT(delta, -0.1);
}

TEST(EdgeCases, GenerateUnderlyingMinimumViableScale) {
  // The smallest N whose rounded core is >= 2.
  const auto params =
      core::PaluParams::solve_hubs(1.0, 0.5, 0.2, 2.0, 0.5);
  Rng rng(4);
  const auto net = core::generate_underlying(params, 4, rng);
  EXPECT_GE(net.core_size(), 2u);
  EXPECT_NO_THROW(core::generate_observed(net, params, rng));
}

TEST(EdgeCases, WindowAtExactlyOnePacket) {
  Rng gen_rng(5);
  graph::Graph g(2);
  g.add_edge(0, 1);
  traffic::SyntheticTrafficGenerator stream(g, traffic::RateModel{},
                                            Rng(6));
  const auto window = stream.window(1);
  EXPECT_EQ(window.total(), 1u);
  EXPECT_EQ(window.nnz(), 1u);
}

}  // namespace
}  // namespace palu
