# Empty compiler generated dependencies file for palu_graph.
# This may be replaced when dependencies are built.
