#include "palu/fit/zipf_mandelbrot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "palu/common/error.hpp"
#include "palu/fit/nelder_mead.hpp"
#include "palu/math/zeta.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::fit {

ZipfMandelbrot::ZipfMandelbrot(double alpha, double delta, Degree dmax)
    : alpha_(alpha), delta_(delta), dmax_(dmax) {
  PALU_CHECK(alpha > 0.0, "ZipfMandelbrot: requires alpha > 0");
  PALU_CHECK(delta > -1.0, "ZipfMandelbrot: requires delta > -1");
  PALU_CHECK(dmax >= 1, "ZipfMandelbrot: requires dmax >= 1");
  normalizer_ = math::shifted_truncated_zeta(alpha, delta, dmax);
}

double ZipfMandelbrot::unnormalized(double d) const {
  return std::pow(d + delta_, -alpha_);
}

double ZipfMandelbrot::unnormalized_delta_gradient(double d) const {
  // ∂_δ ρ(d; α, δ) = −α (d + δ)^{−α−1} = −α ρ(d; α+1, δ).
  return -alpha_ * std::pow(d + delta_, -alpha_ - 1.0);
}

double ZipfMandelbrot::pmf(Degree d) const {
  PALU_CHECK(d >= 1 && d <= dmax_, "ZipfMandelbrot::pmf: d out of range");
  return unnormalized(static_cast<double>(d)) / normalizer_;
}

double ZipfMandelbrot::cdf(Degree d) const {
  if (d < 1) return 0.0;
  d = std::min(d, dmax_);
  return math::shifted_truncated_zeta(alpha_, delta_, d) / normalizer_;
}

rng::AliasSampler ZipfMandelbrot::sampler() const {
  PALU_CHECK(dmax_ <= (Degree{1} << 26),
             "ZipfMandelbrot::sampler: dmax too large for an alias table");
  std::vector<double> weights(dmax_);
  for (Degree d = 1; d <= dmax_; ++d) {
    weights[d - 1] = unnormalized(static_cast<double>(d));
  }
  return rng::AliasSampler(weights, /*offset=*/1);
}

stats::LogBinned ZipfMandelbrot::pooled() const {
  const std::uint32_t nbins = stats::LogBinned::bin_index(dmax_) + 1;
  std::vector<double> mass(nbins, 0.0);
  double prev_cdf = 0.0;
  for (std::uint32_t i = 0; i < nbins; ++i) {
    const Degree upper = std::min(stats::LogBinned::bin_upper(i), dmax_);
    const double c = cdf(upper);
    mass[i] = c - prev_cdf;
    prev_cdf = c;
  }
  return stats::LogBinned(std::move(mass));
}

ZmFitResult fit_zipf_mandelbrot(const stats::LogBinned& target, Degree dmax,
                                const ZmFitOptions& opts) {
  PALU_CHECK(target.num_bins() >= 3,
             "fit_zipf_mandelbrot: need at least 3 pooled bins");
  PALU_CHECK(dmax >= 4, "fit_zipf_mandelbrot: dmax too small to pool");

  // Per-bin weights from the supplied σ (Fig 3 plots ±1σ error bars, so we
  // weight by inverse variance when the caller has window statistics).
  std::vector<double> weight(target.num_bins(), 1.0);
  if (!opts.bin_sigma.empty()) {
    PALU_CHECK(opts.bin_sigma.size() == target.num_bins(),
               "fit_zipf_mandelbrot: sigma size mismatch");
    for (std::size_t i = 0; i < weight.size(); ++i) {
      const double s = std::max(opts.bin_sigma[i], opts.sigma_floor);
      weight[i] = 1.0 / (s * s);
    }
  }

  // Parameters are unconstrained via α = exp(θ₀), δ = exp(θ₁) − 1 > −1.
  const auto objective = [&](const std::vector<double>& theta) {
    const double alpha = std::exp(theta[0]);
    const double delta = std::expm1(theta[1]);
    if (!(alpha > 0.05) || alpha > 50.0 || !(delta > -1.0 + 1e-12) ||
        delta > 1e6) {
      return std::numeric_limits<double>::infinity();
    }
    const ZipfMandelbrot model(alpha, delta, dmax);
    const stats::LogBinned pooled = model.pooled();
    double sse = 0.0;
    for (std::size_t i = 0; i < target.num_bins(); ++i) {
      const double m = i < pooled.num_bins() ? pooled[i] : 0.0;
      const double r = target[i] - m;
      sse += weight[i] * r * r;
    }
    return sse;
  };

  const std::vector<double> theta0 = {std::log(opts.alpha_init),
                                      std::log1p(opts.delta_init)};
  NelderMeadOptions nm;
  nm.max_iterations = 4000;
  nm.restarts = 2;
  const NelderMeadResult sol = nelder_mead(objective, theta0, nm);

  ZmFitResult out;
  out.alpha = std::exp(sol.x[0]);
  out.delta = std::expm1(sol.x[1]);
  out.dmax = dmax;
  out.objective = sol.value;
  out.converged = sol.converged;
  return out;
}

ZmMleResult fit_zipf_mandelbrot_mle(const stats::DegreeHistogram& h,
                                    Degree dmax) {
  PALU_CHECK(!h.empty() && h.max_degree() >= 1,
             "fit_zipf_mandelbrot_mle: empty histogram");
  const Degree top = dmax == 0 ? h.max_degree() : dmax;
  PALU_CHECK(top >= h.max_degree(),
             "fit_zipf_mandelbrot_mle: dmax below observed maximum");
  const auto entries = h.sorted();

  // Negative log-likelihood in natural parameters (α, δ).
  const auto nll = [&](double alpha, double delta) {
    if (!(alpha > 0.05) || alpha > 40.0 || !(delta > -1.0 + 1e-12) ||
        delta > 1e6) {
      return std::numeric_limits<double>::infinity();
    }
    const double log_z =
        std::log(math::shifted_truncated_zeta(alpha, delta, top));
    double acc = 0.0;
    for (const auto& [d, count] : entries) {
      if (d == 0) continue;
      acc += static_cast<double>(count) *
             (alpha * std::log(static_cast<double>(d) + delta) + log_z);
    }
    return acc;
  };
  const auto objective = [&](const std::vector<double>& theta) {
    return nll(std::exp(theta[0]), std::expm1(theta[1]));
  };
  NelderMeadOptions nm;
  nm.max_iterations = 4000;
  nm.restarts = 2;
  const auto sol =
      nelder_mead(objective, {std::log(2.0), std::log1p(0.5)}, nm);

  ZmMleResult out;
  out.alpha = std::exp(sol.x[0]);
  out.delta = std::expm1(sol.x[1]);
  out.dmax = top;
  out.log_likelihood = -sol.value;

  // Observed information by central differences in (α, δ).
  const double ha = 1e-4 * std::max(1.0, out.alpha);
  const double hd = 1e-4 * std::max(1.0, 1.0 + out.delta);
  const double f0 = nll(out.alpha, out.delta);
  const double faa = (nll(out.alpha + ha, out.delta) - 2.0 * f0 +
                      nll(out.alpha - ha, out.delta)) /
                     (ha * ha);
  const double fdd = (nll(out.alpha, out.delta + hd) - 2.0 * f0 +
                      nll(out.alpha, out.delta - hd)) /
                     (hd * hd);
  const double fad = (nll(out.alpha + ha, out.delta + hd) -
                      nll(out.alpha + ha, out.delta - hd) -
                      nll(out.alpha - ha, out.delta + hd) +
                      nll(out.alpha - ha, out.delta - hd)) /
                     (4.0 * ha * hd);
  const double det = faa * fdd - fad * fad;
  if (std::isfinite(det) && det > 0.0 && faa > 0.0) {
    // Inverse of the 2x2 information matrix.
    out.alpha_stderr = std::sqrt(fdd / det);
    out.delta_stderr = std::sqrt(faa / det);
  }
  return out;
}

}  // namespace palu::fit
