// The Λ moment-ratio function of Section IV-B and its inverse.
//
// After subtracting the fitted power-law term c·d^{-α} from the observed
// degree distribution, the paper forms the ratio of the first-moment excess
// to the zeroth-moment excess:
//
//     R = Σ_{d≥2} d·excess(d) / Σ_{d≥2} excess(d)
//       ≈ g(Λ) := Λ + Λ² / (e^Λ − Λ − 1)
//
// and recovers Λ = eλp by solving g(Λ) = R.  g is strictly increasing on
// (0, ∞) with g(0⁺) = 2 (Taylor: g(Λ) ≈ 2 + Λ/3 near 0, matching the
// paper's expansion), so the inverse is well defined for R > 2.
#pragma once

namespace palu::math {

/// g(Λ) = Λ + Λ²/(e^Λ − Λ − 1), evaluated stably for Λ ≥ 0.
/// g(0) is defined by continuity as 2.
double lambda_moment_ratio(double lambda_cap);

/// Derivative g'(Λ), used by the Newton refinement of the inverse.
double lambda_moment_ratio_derivative(double lambda_cap);

/// Solves g(Λ) = r for Λ ≥ 0.  Requires r >= 2 up to rounding slack:
/// r ∈ [2 − 1e-9, 2] clamps to Λ = 0 (noisy empirical ratios land there);
/// throws palu::InvalidArgument below the slack and
/// palu::ConvergenceError if the bracketing/Newton iteration fails (it
/// should not for finite r).
double invert_lambda_moment_ratio(double r);

}  // namespace palu::math
