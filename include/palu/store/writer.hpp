// Append-only columnar window store writer (DESIGN.md §5j).
//
// One store directory holds one `windows.palustore` file: a block per
// captured window, delta/varint-encoded per-pair packet counts, an
// lane-folded FNV checksum per block, and a manifest + trailer written by
// finish() so readers can seek any window directly.  The writer is the
// library's WindowCaptureSink: sweep workers and the serve daemon tee
// windows into it concurrently; all file and encoder state is guarded
// by one mutex (capture is an output tee, not a hot analysis path — the
// hot side is replay decode).
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "palu/common/thread_annotations.hpp"
#include "palu/common/types.hpp"
#include "palu/store/format.hpp"
#include "palu/traffic/window_source.hpp"

namespace palu::obs {
class Registry;
class Counter;
}  // namespace palu::obs

namespace palu::store {

/// Provenance and sink configuration for a capture.
struct WriterOptions {
  /// Node-id domain of the producer (graph node count); replay shard
  /// routing reuses it, so it should match the capturing run.  Must be
  /// >= 1.  The writer widens it at finish() to cover every appended
  /// endpoint id, so a producer that cannot know the domain up front
  /// (the serve recorder ingesting an arbitrary trace) passes 1 and
  /// lets the data set it.
  NodeId node_domain = 0;
  /// Producer RNG seed, stored for provenance only.
  std::uint64_t seed = 0;
  /// Metrics sink for the palu_store_* write families; nullptr routes to
  /// obs::default_registry().
  obs::Registry* metrics = nullptr;
};

class WindowStoreWriter final : public traffic::WindowCaptureSink {
 public:
  /// Creates `dir` if missing and opens a fresh store file inside it,
  /// truncating any previous capture.  Throws palu::DataError when the
  /// directory or file cannot be created, palu::InvalidArgument on a
  /// zero node_domain.
  WindowStoreWriter(const std::string& dir, const WriterOptions& opts);

  /// Best-effort finish(): a writer destroyed without finish() still
  /// tries to seal the store (errors are swallowed — destructors must
  /// not throw; a killed process leaves the torn tail the reader's
  /// recovery path is built for).
  ~WindowStoreWriter() override;

  WindowStoreWriter(const WindowStoreWriter&) = delete;
  WindowStoreWriter& operator=(const WindowStoreWriter&) = delete;

  /// Archives one window as a checksummed block.  Records may arrive
  /// unsorted, in either endpoint order, with duplicate unordered pairs
  /// (one per direction) and zero-count rows; the writer canonicalizes
  /// (sort by (u, v), coalesce, drop zeros) before encoding.  Thread-safe.
  /// Throws palu::DataError on a write failure.
  void append(std::size_t window_index, Count n_valid,
              std::span<const traffic::EdgePacketCounts> records) override;

  /// Seals the store: writes the manifest (sorted by window index) and
  /// trailer, flushes, and closes the file.  Idempotent; append() after
  /// finish() throws.  Throws palu::DataError on a write failure.
  void finish();

  /// Cumulative capture totals (thread-safe snapshot).
  struct Stats {
    std::uint64_t blocks = 0;
    std::uint64_t records = 0;         ///< canonical records encoded
    std::uint64_t payload_bytes = 0;   ///< encoded payload, no headers
    std::uint64_t file_bytes = 0;      ///< everything written so far
  };
  Stats stats() const;

  /// The store file path inside a store directory.
  static std::string store_file(const std::string& dir);

 private:
  void write_bytes(const void* data, std::size_t n)
      PALU_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  std::FILE* file_ PALU_GUARDED_BY(mutex_) = nullptr;
  bool finished_ PALU_GUARDED_BY(mutex_) = false;
  std::uint64_t offset_ PALU_GUARDED_BY(mutex_) = 0;
  std::uint64_t node_domain_ PALU_GUARDED_BY(mutex_) = 1;
  std::vector<ManifestEntry> manifest_ PALU_GUARDED_BY(mutex_);
  std::vector<traffic::EdgePacketCounts> sort_buf_ PALU_GUARDED_BY(mutex_);
  std::vector<unsigned char> encode_buf_ PALU_GUARDED_BY(mutex_);
  Stats stats_ PALU_GUARDED_BY(mutex_);

  obs::Counter& blocks_written_ PALU_GUARDED_BY(mutex_);
  obs::Counter& bytes_written_ PALU_GUARDED_BY(mutex_);
};

}  // namespace palu::store
