file(REMOVE_RECURSE
  "CMakeFiles/bench_estimator_recovery.dir/bench_estimator_recovery.cpp.o"
  "CMakeFiles/bench_estimator_recovery.dir/bench_estimator_recovery.cpp.o.d"
  "bench_estimator_recovery"
  "bench_estimator_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_estimator_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
