// Fast-path ↔ legacy-path equivalence for windowed sweeps (PR 2).
//
// The WindowAccumulator fast path must be a pure optimisation: for any
// seed and quantity it has to produce byte-identical merged histograms,
// BinnedEnsemble means, and d_max to the legacy SparseCountMatrix path,
// and it must honour the same failure-budget / cancellation / timeout
// semantics under fault injection.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <string>

#include "palu/graph/generators.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/stats/log_binning.hpp"
#include "palu/testing/fault_injection.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/sparse_matrix.hpp"
#include "palu/traffic/stream.hpp"
#include "palu/traffic/window_accumulator.hpp"
#include "palu/traffic/window_pipeline.hpp"

namespace palu {
namespace {

constexpr std::array<traffic::Quantity, 6> kEveryQuantity = {
    traffic::Quantity::kSourcePackets,
    traffic::Quantity::kSourceFanOut,
    traffic::Quantity::kLinkPackets,
    traffic::Quantity::kDestinationFanIn,
    traffic::Quantity::kDestinationPackets,
    traffic::Quantity::kUndirectedDegree};

void expect_identical(const stats::DegreeHistogram& a,
                      const stats::DegreeHistogram& b,
                      const std::string& context) {
  EXPECT_EQ(a.total(), b.total()) << context;
  EXPECT_EQ(a.weighted_total(), b.weighted_total()) << context;
  EXPECT_EQ(a.sorted(), b.sorted()) << context;
}

TEST(WindowAccumulator, MatchesSparseMatrixAcrossReusedWindows) {
  Rng rng(101);
  traffic::WindowAccumulator acc;
  // Three windows through ONE accumulator: the arena-reuse reset must not
  // leak cells between windows.
  for (int window = 0; window < 3; ++window) {
    acc.begin_window();
    traffic::SparseCountMatrix reference;
    const Count packets = 4000 + static_cast<Count>(window) * 1000;
    for (Count i = 0; i < packets; ++i) {
      // Small id space forces duplicates, self-loops, and mirrored pairs.
      const NodeId src = rng.uniform_index(64);
      const NodeId dst = rng.uniform_index(64);
      acc.add(src, dst);
      reference.add(src, dst);
    }
    ASSERT_EQ(acc.total(), reference.total());
    ASSERT_EQ(acc.nnz(), reference.nnz());
    for (const auto q : kEveryQuantity) {
      expect_identical(acc.histogram(q),
                       traffic::quantity_histogram(reference, q),
                       std::string(traffic::quantity_name(q)) +
                           " window " + std::to_string(window));
    }
  }
}

TEST(WindowAccumulator, GrowsPastInitialCapacity) {
  // >> 1024 distinct cells and nodes: both open-addressing tables must
  // rehash without dropping counts.
  traffic::WindowAccumulator acc;
  acc.begin_window();
  traffic::SparseCountMatrix reference;
  for (NodeId i = 0; i < 5000; ++i) {
    acc.add(i, i + 1, 3);
    reference.add(i, i + 1, 3);
  }
  EXPECT_EQ(acc.nnz(), 5000u);
  EXPECT_EQ(acc.total(), 15000u);
  EXPECT_EQ(acc.at(4999, 5000), 3u);
  EXPECT_EQ(acc.at(5000, 4999), 0u);
  for (const auto q : kEveryQuantity) {
    expect_identical(acc.histogram(q),
                     traffic::quantity_histogram(reference, q),
                     std::string(traffic::quantity_name(q)));
  }
}

TEST(SweepFastPath, ByteIdenticalToLegacyAcrossQuantitiesAndSeeds) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 600, 0.02);
  ThreadPool pool(2);
  for (const std::uint64_t seed : {3ull, 17ull, 91ull}) {
    for (const auto q : kEveryQuantity) {
      traffic::SweepOptions fast;
      fast.fast_path = true;
      traffic::SweepOptions legacy;
      legacy.fast_path = false;
      const auto a = traffic::sweep_windows(g, traffic::RateModel{}, 5000,
                                            6, q, seed, pool, fast);
      const auto b = traffic::sweep_windows(g, traffic::RateModel{}, 5000,
                                            6, q, seed, pool, legacy);
      const std::string context = std::string(traffic::quantity_name(q)) +
                                  " seed " + std::to_string(seed);
      expect_identical(a.merged, b.merged, context);
      EXPECT_EQ(a.max_value, b.max_value) << context;
      EXPECT_EQ(a.windows, b.windows) << context;
      // Bit-exact, not approximately equal: the two paths must feed the
      // Welford ensemble the same LogBinned sequence in the same order.
      EXPECT_EQ(a.ensemble.mean(), b.ensemble.mean()) << context;
      EXPECT_EQ(a.ensemble.stddev(), b.ensemble.stddev()) << context;
    }
  }
}

TEST(SweepFastPath, StageTimingsArePopulated) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 400, 0.02);
  ThreadPool pool(2);
  traffic::SweepOptions fast;  // fast path is the default
  const auto a = traffic::sweep_windows(
      g, traffic::RateModel{}, 20000, 4,
      traffic::Quantity::kUndirectedDegree, 5, pool, fast);
  EXPECT_GT(a.timings.sampling_cpu_ns, 0u);
  EXPECT_GT(a.timings.accumulation_cpu_ns, 0u);
  EXPECT_GT(a.timings.binning_cpu_ns, 0u);
  // The straggler view is a max over per-worker sums of the same samples:
  // it must be positive and can never exceed the CPU (summed) view.
  EXPECT_GT(a.timings.sampling_max_ns, 0u);
  EXPECT_LE(a.timings.sampling_max_ns, a.timings.sampling_cpu_ns);
  EXPECT_LE(a.timings.accumulation_max_ns, a.timings.accumulation_cpu_ns);
  EXPECT_LE(a.timings.binning_max_ns, a.timings.binning_cpu_ns);
  traffic::SweepOptions legacy;
  legacy.fast_path = false;
  const auto b = traffic::sweep_windows(
      g, traffic::RateModel{}, 20000, 4,
      traffic::Quantity::kUndirectedDegree, 5, pool, legacy);
  // Legacy interleaves draws and cell counts inside window(): combined
  // time lands in the sampling views, accumulation stays 0 by contract.
  EXPECT_GT(b.timings.sampling_cpu_ns, 0u);
  EXPECT_EQ(b.timings.accumulation_cpu_ns, 0u);
  EXPECT_EQ(b.timings.accumulation_max_ns, 0u);
  EXPECT_GT(b.timings.binning_cpu_ns, 0u);
}

// Observability half of the equivalence contract: the fast path must
// leave the same metric trail as the legacy path.  Only counters and
// gauges are compared — they are deterministic per (seed, workload) —
// while stage-duration histograms are excluded by construction (their
// labels carry path=fast|legacy and worker participation is timing-
// dependent).
TEST(SweepFastPath, CountersAndGaugesMatchLegacyPath) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 600, 0.02);
  ThreadPool pool(2);
  const auto run = [&](std::uint64_t seed, bool fast_path) {
    obs::Registry registry;
    traffic::SweepOptions opts;
    opts.fast_path = fast_path;
    opts.metrics = &registry;
    traffic::sweep_windows(g, traffic::RateModel{}, 5000, 6,
                           traffic::Quantity::kUndirectedDegree, seed,
                           pool, opts);
    obs::RegistrySnapshot snap = registry.snapshot();
    // Drop the path-labelled duration histograms; everything else must
    // be byte-identical across the two paths.
    snap.histograms.clear();
    return snap;
  };
  for (const std::uint64_t seed : {3ull, 17ull, 91ull}) {
    const auto fast = run(seed, /*fast_path=*/true);
    const auto legacy = run(seed, /*fast_path=*/false);
    const std::string context = "seed " + std::to_string(seed);
    EXPECT_EQ(fast.counters, legacy.counters) << context;
    EXPECT_EQ(fast.gauges, legacy.gauges) << context;
    EXPECT_FALSE(fast.counters.empty()) << context;
  }
}

TEST(SweepFastPath, StrictFailureCarriesWindowIndex) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.01);
  ThreadPool pool(1);  // FIFO pool: windows execute in index order
  testing::FailpointGuard guard;
  testing::force_sweep_window_failure(/*fires=*/1, /*skip=*/2);
  traffic::SweepOptions opts;
  opts.fast_path = true;
  try {
    traffic::sweep_windows(g, traffic::RateModel{}, 1000, 6,
                           traffic::Quantity::kSourceFanOut, 42, pool,
                           opts);
    FAIL() << "strict fast-path sweep must rethrow the window failure";
  } catch (const traffic::SweepWindowError& e) {
    EXPECT_EQ(e.window(), 2u);
  }
}

TEST(SweepFastPath, HonoursFailureBudget) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.01);
  ThreadPool pool(2);
  testing::FailpointGuard guard;
  testing::force_sweep_window_failure(/*fires=*/2, /*skip=*/0);
  traffic::SweepOptions opts;
  opts.fast_path = true;
  opts.max_failed_windows = 2;
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, 1000, 8,
      traffic::Quantity::kSourceFanOut, 42, pool, opts);
  EXPECT_EQ(sweep.failures.size(), 2u);
  EXPECT_EQ(sweep.windows, 6u);
  EXPECT_FALSE(sweep.cancelled);
}

TEST(SweepFastPath, HonoursCancellation) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.01);
  ThreadPool pool(2);
  std::atomic<bool> cancel{true};  // cancelled before any window starts
  traffic::SweepOptions opts;
  opts.fast_path = true;
  opts.cancel = &cancel;
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, 1000, 6,
      traffic::Quantity::kSourceFanOut, 42, pool, opts);
  EXPECT_TRUE(sweep.cancelled);
  EXPECT_EQ(sweep.windows, 0u);
  EXPECT_EQ(sweep.windows_skipped, 6u);
}

TEST(SweepFastPath, HonoursTimeout) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.01);
  ThreadPool pool(2);
  traffic::SweepOptions opts;
  opts.fast_path = true;
  opts.timeout = std::chrono::milliseconds(1);
  // 64 windows × 500k packets cannot finish inside 1 ms; the deadline
  // must stop new windows, leaving the rest skipped (not failed).
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, 500000, 64,
      traffic::Quantity::kSourceFanOut, 42, pool, opts);
  EXPECT_TRUE(sweep.cancelled);
  EXPECT_GE(sweep.windows_skipped, 1u);
  EXPECT_TRUE(sweep.failures.empty());
  EXPECT_EQ(sweep.windows + sweep.windows_skipped, 64u);
}

TEST(SweepFastPath, HugeTimeoutDoesNotOverflowTheDeadline) {
  // Regression: the deadline used to be computed unconditionally as
  // now() + timeout, so a duration::max()-class budget overflowed the
  // time_point (signed-overflow UB) and could wrap into the past,
  // spuriously cancelling the sweep.  Oversized budgets must behave like
  // "unlimited": every window completes.
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 400, 0.02);
  ThreadPool pool(2);
  for (const auto timeout : {std::chrono::milliseconds::max(),
                             std::chrono::milliseconds::max() / 2,
                             std::chrono::duration_cast<
                                 std::chrono::milliseconds>(
                                 std::chrono::nanoseconds::max())}) {
    traffic::SweepOptions opts;
    opts.timeout = timeout;
    const auto sweep = traffic::sweep_windows(
        g, traffic::RateModel{}, 2000, 4,
        traffic::Quantity::kUndirectedDegree, 9, pool, opts);
    EXPECT_FALSE(sweep.cancelled) << timeout.count();
    EXPECT_EQ(sweep.windows, 4u) << timeout.count();
    EXPECT_EQ(sweep.windows_skipped, 0u) << timeout.count();
  }
}

}  // namespace
}  // namespace palu
