file(REMOVE_RECURSE
  "CMakeFiles/palu_rng.dir/distributions.cpp.o"
  "CMakeFiles/palu_rng.dir/distributions.cpp.o.d"
  "libpalu_rng.a"
  "libpalu_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
