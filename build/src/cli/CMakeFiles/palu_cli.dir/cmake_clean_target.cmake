file(REMOVE_RECURSE
  "libpalu_cli.a"
)
