// Simulated webcrawl sampling.
//
// The paper's Section II contrasts two ways of observing a network:
// webcrawls, which "naturally sample the supernodes" and produce clean
// single-exponent power laws, and trunk-line packet windows, which also
// see leaves and unattached components.  `bfs_crawl` reproduces the crawl
// process — breadth-first expansion from seed nodes up to a node budget —
// so the two observation biases can be compared on the same underlying
// network.
#pragma once

#include <vector>

#include "palu/common/types.hpp"
#include "palu/graph/graph.hpp"
#include "palu/rng/xoshiro.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::graph {

struct CrawlResult {
  /// Subgraph induced on the visited nodes, with ids renumbered 0..k-1.
  Graph subgraph;
  /// Original id of each subgraph node.
  std::vector<NodeId> visited;
  /// Number of distinct seed expansions used (crawls restart from a fresh
  /// random node whenever the frontier empties before the budget).
  std::size_t seed_count = 0;
};

/// Crawls until `budget` nodes are visited (or the graph is exhausted).
/// Starts at a uniformly random node; frontier order is FIFO (BFS) with
/// neighbors enqueued in adjacency order.
CrawlResult bfs_crawl(Rng& rng, const Graph& g, NodeId budget);

/// Degree histogram of the crawl's *view*: each visited node's degree in
/// the underlying graph (what a crawler would report), not in the induced
/// subgraph.
stats::DegreeHistogram crawl_view_degrees(const Graph& g,
                                          const CrawlResult& crawl);

}  // namespace palu::graph
