// Chi-square goodness of fit on pooled (log-binned) distributions.
//
// The paper judges Zipf–Mandelbrot fits visually against ±1σ error bars
// (Fig 3); this module provides the matching formal test: Pearson's
// chi-square of observed pooled counts against model bin masses, with bins
// of tiny expectation merged into their neighbor so the asymptotics hold.
#pragma once

#include <cstdint>

#include "palu/common/types.hpp"
#include "palu/stats/log_binning.hpp"

namespace palu::stats {

struct ChiSquareResult {
  double statistic = 0.0;
  double dof = 0.0;       // merged bins − 1 − params_fitted
  double p_value = 1.0;   // P[χ²_dof > statistic]
  std::size_t bins_used = 0;  // after merging
};

/// Tests pooled observed masses (as counts: mass·n) against model masses.
/// `sample_size` is the number of underlying observations n; bins with
/// expected count below `min_expected` are merged rightward.
/// `params_fitted` reduces the degrees of freedom (2 for a ZM fit).
ChiSquareResult chi_square_pooled(const LogBinned& observed,
                                  const LogBinned& model,
                                  Count sample_size,
                                  std::size_t params_fitted,
                                  double min_expected = 5.0);

}  // namespace palu::stats
