#include "palu/io/trace.hpp"

#include <algorithm>
#include <string>
#include <string_view>

#include "palu/common/error.hpp"
#include "palu/io/parse.hpp"
#include "ingest_gate.hpp"
#include "trace_line.hpp"

namespace palu::io {

using detail::parse_packet_line;
using detail::trim;

TraceReadResult read_trace(std::istream& in, const IngestOptions& opts) {
  TraceReadResult out;
  detail::IngestGate gate("read_trace", opts, out.report);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view body = trim(line);
    if (body.empty() || body.front() == '#') continue;
    ++out.report.lines_read;
    auto packet = parse_packet_line(body);
    if (packet.ok()) {
      gate.kept();
      out.packets.push_back(packet.value());
      continue;
    }
    if (opts.policy == ErrorPolicy::kRepair) {
      const auto salvaged = detail::salvage_u64(body, 2);
      if (salvaged.size() == 2) {
        gate.repaired(line_number, packet.error(), line);
        out.packets.push_back(traffic::Packet{salvaged[0], salvaged[1]});
        continue;
      }
    }
    gate.drop(line_number, packet.error(), line);
  }
  return out;
}

std::vector<traffic::Packet> read_trace(std::istream& in) {
  return read_trace(in, IngestOptions{}).packets;
}

void write_trace(std::ostream& out,
                 std::span<const traffic::Packet> pkts) {
  out << "# palu packet trace: one 'src dst' pair per line\n";
  for (const traffic::Packet& p : pkts) {
    out << p.src << ' ' << p.dst << '\n';
  }
}

void write_edge_list(std::ostream& out, const graph::Graph& g) {
  out << "# nodes=" << g.num_nodes() << '\n';
  for (const graph::Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

EdgeListReadResult read_edge_list(std::istream& in,
                                  const IngestOptions& opts) {
  EdgeListReadResult out;
  detail::IngestGate gate("read_edge_list", opts, out.report);
  std::vector<graph::Edge> edges;
  std::vector<std::size_t> edge_lines;     // for the declared-range check
  std::vector<bool> edge_was_repaired;
  NodeId declared_nodes = 0;
  bool have_declaration = false;
  NodeId max_endpoint = 0;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view body = trim(line);
    if (body.empty()) continue;
    if (body.front() == '#') {
      const std::size_t pos = body.find("nodes=");
      if (pos != std::string_view::npos) {
        const auto n = parse_u64(trim(body.substr(pos + 6)));
        if (n.ok()) {
          declared_nodes = n.value();
          have_declaration = true;
        } else if (opts.policy == ErrorPolicy::kStrict) {
          throw DataError("read_edge_list: malformed line " +
                          std::to_string(line_number) + ": " + n.error() +
                          " (line: '" + line + "')");
        }
        // Under skip/repair a bad declaration is ignored; the node count
        // falls back to max endpoint + 1.
      }
      continue;
    }
    ++out.report.lines_read;
    const auto parsed = parse_packet_line(body);
    bool repaired = false;
    graph::Edge edge{};
    if (parsed.ok()) {
      edge = graph::Edge{parsed.value().src, parsed.value().dst};
      gate.kept();
    } else {
      if (opts.policy == ErrorPolicy::kRepair) {
        const auto salvaged = detail::salvage_u64(body, 2);
        if (salvaged.size() == 2) {
          edge = graph::Edge{salvaged[0], salvaged[1]};
          gate.repaired(line_number, parsed.error(), line);
          repaired = true;
        }
      }
      if (!repaired) {
        gate.drop(line_number, parsed.error(), line);
        continue;
      }
    }
    max_endpoint = std::max({max_endpoint, edge.u, edge.v});
    edges.push_back(edge);
    edge_lines.push_back(line_number);
    edge_was_repaired.push_back(repaired);
  }
  if (have_declaration) {
    // Endpoints past the declaration are data errors discovered late; the
    // per-line accounting is unwound for each offending edge.  Only the
    // report is unwound: the ingest counters already recorded the line's
    // first disposition and stay monotone — the gate's drop() below adds
    // the reclassification as a separate event.
    std::vector<graph::Edge> in_range;
    in_range.reserve(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].u < declared_nodes && edges[i].v < declared_nodes) {
        in_range.push_back(edges[i]);
        continue;
      }
      const std::string message =
          "endpoint " +
          std::to_string(std::max(edges[i].u, edges[i].v)) +
          " exceeds the declared node count " +
          std::to_string(declared_nodes);
      if (edge_was_repaired[i]) {
        --out.report.lines_repaired;
      } else {
        --out.report.records_kept;
      }
      gate.drop(edge_lines[i], message,
                std::to_string(edges[i].u) + " " +
                    std::to_string(edges[i].v));
    }
    edges = std::move(in_range);
  }
  const NodeId nodes =
      have_declaration ? declared_nodes
                       : (edges.empty() ? 0 : max_endpoint + 1);
  out.graph = graph::Graph(nodes, std::move(edges));
  return out;
}

graph::Graph read_edge_list(std::istream& in) {
  return read_edge_list(in, IngestOptions{}).graph;
}

}  // namespace palu::io
