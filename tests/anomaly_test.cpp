// Unit tests for the window anomaly detector and window_to_graph.
#include <gtest/gtest.h>

#include "palu/common/error.hpp"
#include "palu/core/anomaly.hpp"
#include "palu/core/generator.hpp"
#include "palu/core/scenarios.hpp"
#include "palu/graph/components.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/sparse_matrix.hpp"

namespace palu {
namespace {

stats::DegreeHistogram sample_window(const core::PaluParams& params,
                                     std::uint64_t seed) {
  Rng rng(seed);
  return core::sample_observed_degrees(params, 80000, rng);
}

TEST(AnomalyDetector, CalmWindowsAreNotFlagged) {
  const auto calm = core::scenarios::backbone().at_window(0.9);
  core::WindowAnomalyDetector detector;
  for (int w = 0; w < 3; ++w) {
    detector.add_baseline(sample_window(calm, 100 + w));
  }
  ASSERT_TRUE(detector.has_baseline());
  const auto score = detector.score(sample_window(calm, 200));
  EXPECT_FALSE(score.flagged);
  EXPECT_GT(score.ks_p_value, 1e-4);
  EXPECT_GT(score.d1_baseline, 0.0);
}

TEST(AnomalyDetector, BotWindowsAreFlaggedWithRisingMu) {
  const auto calm = core::scenarios::backbone().at_window(0.9);
  const auto botty = core::scenarios::bot_heavy().at_window(0.9);
  core::WindowAnomalyDetector detector;
  for (int w = 0; w < 3; ++w) {
    detector.add_baseline(sample_window(calm, 300 + w));
  }
  const auto score = detector.score(sample_window(botty, 400));
  EXPECT_TRUE(score.flagged);
  EXPECT_LT(score.ks_p_value, 1e-6);
  EXPECT_GT(score.mu_window, score.mu_baseline);
  EXPECT_GT(score.d1_window, score.d1_baseline);
}

TEST(AnomalyDetector, ThresholdIsConfigurable) {
  const auto calm = core::scenarios::backbone().at_window(0.9);
  core::AnomalyOptions opts;
  opts.p_threshold = 1.1;  // flag everything
  core::WindowAnomalyDetector detector(opts);
  detector.add_baseline(sample_window(calm, 500));
  EXPECT_TRUE(detector.score(sample_window(calm, 501)).flagged);
}

TEST(AnomalyDetector, RequiresBaseline) {
  core::WindowAnomalyDetector detector;
  stats::DegreeHistogram h;
  h.add(1, 10);
  EXPECT_THROW(detector.score(h), DataError);
}

TEST(AnomalyDetector, SurvivesUnfittableWindows) {
  const auto calm = core::scenarios::backbone().at_window(0.9);
  core::WindowAnomalyDetector detector;
  detector.add_baseline(sample_window(calm, 600));
  stats::DegreeHistogram thin;
  thin.add(1, 50);
  thin.add(2, 10);
  const auto score = detector.score(thin);
  EXPECT_DOUBLE_EQ(score.mu_window, 0.0);  // not identifiable — not fatal
  EXPECT_GE(score.ks_statistic, 0.0);
}

TEST(WindowToGraph, BuildsSimplifiedObservedNetwork) {
  traffic::SparseCountMatrix a;
  a.add(10, 20, 3);
  a.add(20, 10, 1);  // reciprocal: one undirected edge
  a.add(10, 30, 2);
  a.add(7, 7, 5);    // self-traffic: dropped
  std::vector<NodeId> ids;
  const auto g = traffic::window_to_graph(a, &ids);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  ASSERT_EQ(ids.size(), 3u);
  // The census of the window graph matches the pair structure.
  const auto census = graph::classify_topology(g);
  EXPECT_EQ(census.star_components, 1u);  // 10 -{20,30}
  EXPECT_EQ(census.star_leaves, 2u);
}

TEST(WindowToGraph, DegreesMatchUndirectedHistogram) {
  traffic::SparseCountMatrix a;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.uniform_index(300), rng.uniform_index(300));
  }
  const auto g = traffic::window_to_graph(a);
  const auto from_graph =
      stats::DegreeHistogram::from_degrees(g.degrees());
  const auto direct = traffic::undirected_degree_histogram(a);
  EXPECT_EQ(from_graph.total(), direct.total());
  for (const auto& [d, c] : direct.sorted()) {
    EXPECT_EQ(from_graph.at(d), c) << "d=" << d;
  }
}

}  // namespace
}  // namespace palu
