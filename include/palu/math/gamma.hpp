// Log-gamma, log-factorial, and the discrete pmfs built from them.
//
// The PALU model's unattached component is a forest of stars whose leaf
// counts are Poisson(λ); the observed network thins every edge with a
// Bernoulli(p) coin, producing Binomial mixtures (Section V).  The fitting
// pipeline and the tests both need exact log-pmfs of these laws.
#pragma once

#include <cstdint>

namespace palu::math {

/// ln Γ(x) for x > 0 (Lanczos approximation, ~1e-13 relative accuracy).
double log_gamma(double x);

/// ln(n!) with a cached table for small n.
double log_factorial(std::uint64_t n);

/// Binomial coefficient ln C(n, k); requires k <= n.
double log_binomial_coefficient(std::uint64_t n, std::uint64_t k);

/// Poisson pmf P[X = k] for X ~ Po(lambda), lambda >= 0.
double poisson_pmf(std::uint64_t k, double lambda);

/// ln P[X = k] for X ~ Po(lambda), lambda > 0.
double poisson_log_pmf(std::uint64_t k, double lambda);

/// Binomial pmf P[X = k] for X ~ Bin(n, p), 0 <= p <= 1.
double binomial_pmf(std::uint64_t k, std::uint64_t n, double p);

/// ln P[X = k] for X ~ Bin(n, p), 0 < p < 1, k <= n.
double binomial_log_pmf(std::uint64_t k, std::uint64_t n, double p);

}  // namespace palu::math
