#include "palu/obs/export.hpp"

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

#include "palu/obs/metrics.hpp"

namespace palu::obs {

namespace {

// Escapes for JSON string bodies and Prometheus label values alike — both
// formats escape backslash, double quote, and newline the same way (the
// exposition format additionally leaves other bytes verbatim).
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void write_json_labels(std::ostream& os, const Labels& labels) {
  os << "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << escape(labels[i].first) << "\":\""
       << escape(labels[i].second) << "\"";
  }
  os << "}";
}

void write_prom_labels(std::ostream& os, const Labels& labels) {
  if (labels.empty()) return;
  os << "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ",";
    os << labels[i].first << "=\"" << escape(labels[i].second) << "\"";
  }
  os << "}";
}

// Labels plus one extra pair appended (the `le` edge on bucket series).
void write_prom_labels_with(std::ostream& os, const Labels& labels,
                            std::string_view key, std::string_view value) {
  os << "{";
  for (const auto& [k, v] : labels) {
    os << k << "=\"" << escape(v) << "\",";
  }
  os << key << "=\"" << value << "\"}";
}

void write_help_and_type(std::ostream& os, const std::string& name,
                         const std::map<std::string, std::string>& help,
                         std::string_view type, std::string& last_name) {
  if (name == last_name) return;
  last_name = name;
  auto it = help.find(name);
  if (it != help.end()) {
    os << "# HELP " << name << " " << it->second << "\n";
  }
  os << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

void write_json(std::ostream& os, const RegistrySnapshot& snapshot) {
  os << "{\n  \"counters\": [";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    os << (i > 0 ? ",\n    " : "\n    ");
    os << "{\"name\": \"" << escape(c.name) << "\", \"labels\": ";
    write_json_labels(os, c.labels);
    os << ", \"value\": " << c.value << "}";
  }
  os << (snapshot.counters.empty() ? "],\n" : "\n  ],\n");

  os << "  \"gauges\": [";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    os << (i > 0 ? ",\n    " : "\n    ");
    os << "{\"name\": \"" << escape(g.name) << "\", \"labels\": ";
    write_json_labels(os, g.labels);
    os << ", \"value\": " << g.value << "}";
  }
  os << (snapshot.gauges.empty() ? "],\n" : "\n  ],\n");

  os << "  \"histograms\": [";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    os << (i > 0 ? ",\n    " : "\n    ");
    os << "{\"name\": \"" << escape(h.name) << "\", \"labels\": ";
    write_json_labels(os, h.labels);
    os << ", \"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"bucket_upper\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) os << ", ";
      os << Histogram::bucket_upper(static_cast<std::uint32_t>(b));
    }
    os << "], \"bucket_count\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) os << ", ";
      os << h.buckets[b];
    }
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
}

void write_prometheus(std::ostream& os, const RegistrySnapshot& snapshot) {
  std::string last_name;
  for (const auto& c : snapshot.counters) {
    write_help_and_type(os, c.name, snapshot.help, "counter", last_name);
    os << c.name;
    write_prom_labels(os, c.labels);
    os << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    write_help_and_type(os, g.name, snapshot.help, "gauge", last_name);
    os << g.name;
    write_prom_labels(os, g.labels);
    os << " " << g.value << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    write_help_and_type(os, h.name, snapshot.help, "histogram", last_name);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      os << h.name << "_bucket";
      write_prom_labels_with(
          os, h.labels, "le",
          std::to_string(Histogram::bucket_upper(static_cast<std::uint32_t>(b))));
      os << " " << cumulative << "\n";
    }
    os << h.name << "_bucket";
    write_prom_labels_with(os, h.labels, "le", "+Inf");
    os << " " << h.count << "\n";
    os << h.name << "_sum";
    write_prom_labels(os, h.labels);
    os << " " << h.sum << "\n";
    os << h.name << "_count";
    write_prom_labels(os, h.labels);
    os << " " << h.count << "\n";
  }
}

// ------------------------------------------------------------- validator
//
// A deliberately strict re-parser for the subset of the exposition format
// we emit.  It is not a general Prometheus parser; its job is to catch
// exporter regressions (broken cumulativity, missing +Inf, bad names) in
// CI, so unknown constructs are errors rather than extensions.

namespace {

struct ParsedSample {
  std::string name;        // full series name including _bucket/_sum/_count
  Labels labels;
  double value = 0;
  bool ok = false;
};

// Parses `name{k="v",...} value` into its parts; flags syntax errors.
ParsedSample parse_sample(const std::string& line,
                          std::vector<std::string>& errors, int lineno) {
  ParsedSample out;
  auto fail = [&](const std::string& why) {
    errors.push_back("line " + std::to_string(lineno) + ": " + why);
    return out;
  };
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out.name = line.substr(0, i);
  if (!valid_metric_name(out.name)) {
    return fail("invalid metric name '" + out.name + "'");
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        return fail("malformed label pair");
      }
      std::string key = line.substr(i, eq - i);
      if (!valid_label_name(key)) {
        return fail("invalid label name '" + key + "'");
      }
      std::string value;
      std::size_t j = eq + 2;
      for (; j < line.size() && line[j] != '"'; ++j) {
        if (line[j] == '\\' && j + 1 < line.size()) {
          ++j;
          value += line[j] == 'n' ? '\n' : line[j];
        } else {
          value += line[j];
        }
      }
      if (j >= line.size()) return fail("unterminated label value");
      out.labels.emplace_back(std::move(key), std::move(value));
      i = j + 1;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size()) return fail("unterminated label set");
    ++i;  // consume '}'
  }
  if (i >= line.size() || line[i] != ' ') {
    return fail("missing value separator");
  }
  const std::string value_str = line.substr(i + 1);
  if (value_str == "+Inf") {
    out.value = 1e308;
  } else {
    try {
      std::size_t pos = 0;
      out.value = std::stod(value_str, &pos);
      if (pos != value_str.size()) return fail("trailing bytes after value");
    } catch (const std::exception&) {
      return fail("unparseable value '" + value_str + "'");
    }
  }
  out.ok = true;
  return out;
}

std::string base_family(const std::string& series_name, bool is_histogram) {
  if (!is_histogram) return series_name;
  for (std::string_view suffix : {"_bucket", "_sum", "_count"}) {
    if (series_name.size() > suffix.size() &&
        series_name.ends_with(suffix)) {
      return series_name.substr(0, series_name.size() - suffix.size());
    }
  }
  return series_name;
}

// Labels with `le` removed, rendered to a stable key for grouping one
// histogram child's bucket series together.
std::string child_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    if (k == "le") continue;
    key += k;
    key += '=';
    key += v;
    key += ';';
  }
  return key;
}

struct HistogramChild {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative count)
  bool has_inf = false;
  double inf_value = 0;
  double count = -1;
  bool has_sum = false;
};

}  // namespace

std::vector<std::string> validate_prometheus(std::istream& is) {
  std::vector<std::string> errors;
  std::map<std::string, std::string> type_of;  // family -> type
  std::map<std::string, std::map<std::string, HistogramChild>> histograms;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line);
      std::string hash, kind, family;
      header >> hash >> kind >> family;
      if (kind == "TYPE") {
        std::string type;
        header >> type;
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          errors.push_back("line " + std::to_string(lineno) +
                           ": unknown TYPE '" + type + "'");
        } else if (!type_of.emplace(family, type).second) {
          errors.push_back("line " + std::to_string(lineno) +
                           ": duplicate TYPE for '" + family + "'");
        }
      } else if (kind != "HELP") {
        errors.push_back("line " + std::to_string(lineno) +
                         ": unknown comment directive '" + kind + "'");
      }
      continue;
    }
    ParsedSample s = parse_sample(line, errors, lineno);
    if (!s.ok) continue;
    // Resolve the family: histogram series carry suffixes.
    std::string family = s.name;
    auto type_it = type_of.find(family);
    if (type_it == type_of.end()) {
      family = base_family(s.name, /*is_histogram=*/true);
      type_it = type_of.find(family);
    }
    if (type_it == type_of.end()) {
      errors.push_back("line " + std::to_string(lineno) + ": sample '" +
                       s.name + "' has no preceding # TYPE");
      continue;
    }
    if (type_it->second != "histogram") continue;
    auto& child = histograms[family][child_key(s.labels)];
    if (s.name.ends_with("_bucket")) {
      double le = -1;
      bool le_found = false;
      for (const auto& [k, v] : s.labels) {
        if (k != "le") continue;
        le_found = true;
        if (v == "+Inf") {
          child.has_inf = true;
          child.inf_value = s.value;
        } else {
          try {
            le = std::stod(v);
          } catch (const std::exception&) {
            errors.push_back("line " + std::to_string(lineno) +
                             ": unparseable le '" + v + "'");
          }
        }
      }
      if (!le_found) {
        errors.push_back("line " + std::to_string(lineno) +
                         ": bucket sample without le label");
      } else if (le >= 0) {
        child.buckets.emplace_back(le, s.value);
      }
    } else if (s.name.ends_with("_count")) {
      child.count = s.value;
    } else if (s.name.ends_with("_sum")) {
      child.has_sum = true;
    } else {
      errors.push_back("line " + std::to_string(lineno) +
                       ": unexpected sample '" + s.name +
                       "' under histogram family '" + family + "'");
    }
  }

  for (const auto& [family, children] : histograms) {
    for (const auto& [key, child] : children) {
      (void)key;
      double prev_le = -1, prev_count = -1;
      for (const auto& [le, cumulative] : child.buckets) {
        if (le <= prev_le) {
          errors.push_back("histogram '" + family +
                           "': bucket edges not strictly increasing");
        }
        if (cumulative < prev_count) {
          errors.push_back("histogram '" + family +
                           "': bucket counts not cumulative");
        }
        prev_le = le;
        prev_count = cumulative;
      }
      if (!child.has_inf) {
        errors.push_back("histogram '" + family + "': missing +Inf bucket");
      } else if (prev_count > child.inf_value) {
        errors.push_back("histogram '" + family +
                         "': +Inf bucket below last finite bucket");
      }
      if (child.count < 0) {
        errors.push_back("histogram '" + family + "': missing _count");
      } else if (child.has_inf && child.count != child.inf_value) {
        errors.push_back("histogram '" + family +
                         "': _count disagrees with +Inf bucket");
      }
      if (!child.has_sum) {
        errors.push_back("histogram '" + family + "': missing _sum");
      }
    }
  }
  return errors;
}

}  // namespace palu::obs
