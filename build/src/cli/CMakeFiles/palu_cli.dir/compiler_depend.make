# Empty compiler generated dependencies file for palu_cli.
# This may be replaced when dependencies are built.
