// Unit tests for palu/core generator: underlying/observed network sampling
// against the Section IV/V predictions (Monte-Carlo with generous bands).
#include <gtest/gtest.h>

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/core/generator.hpp"
#include "palu/core/theory.hpp"
#include "palu/fit/powerlaw_mle.hpp"
#include "palu/graph/components.hpp"
#include "palu/stats/distribution.hpp"

namespace palu::core {
namespace {

PaluParams typical_params() {
  return PaluParams::solve_hubs(/*lambda=*/2.0, /*core=*/0.4,
                                /*leaves=*/0.25, /*alpha=*/2.2,
                                /*window=*/0.6);
}

TEST(GenerateUnderlying, ClassLayoutMatchesProportions) {
  const PaluParams p = typical_params();
  Rng rng(1);
  const NodeId n = 100000;
  const auto net = generate_underlying(p, n, rng);
  EXPECT_EQ(net.core_size(),
            static_cast<NodeId>(std::llround(p.core * n)));
  EXPECT_EQ(net.leaf_size(),
            static_cast<NodeId>(std::llround(p.leaves * n)));
  EXPECT_EQ(net.hub_size(),
            static_cast<NodeId>(std::llround(p.hubs * n)));
  // Total nodes ≈ n (star leaves are Poisson with mean hubs·λ, and the
  // constraint makes the expected total equal exactly n up to e^{−λ}·hubs
  // invisible-isolate bookkeeping).
  const double expected_total =
      static_cast<double>(n) *
      (p.core + p.leaves + p.hubs * (1.0 + p.lambda));
  EXPECT_NEAR(static_cast<double>(net.graph.num_nodes()), expected_total,
              5.0 * std::sqrt(expected_total));
}

TEST(GenerateUnderlying, LeavesHaveDegreeOne) {
  const PaluParams p = typical_params();
  Rng rng(2);
  const auto net = generate_underlying(p, 20000, rng);
  const auto deg = net.graph.degrees();
  for (NodeId v = net.leaf_begin; v < net.leaf_end; ++v) {
    ASSERT_EQ(deg[v], 1u) << "leaf " << v;
  }
  // Star leaves too.
  for (NodeId v = net.hub_end; v < net.graph.num_nodes(); ++v) {
    ASSERT_EQ(deg[v], 1u) << "star leaf " << v;
  }
}

TEST(GenerateUnderlying, LeavesAnchorOnlyToCore) {
  const PaluParams p = typical_params();
  Rng rng(3);
  const auto net = generate_underlying(p, 20000, rng);
  std::size_t leaf_edges = 0;
  for (const auto& e : net.graph.edges()) {
    const bool u_leaf = e.u >= net.leaf_begin && e.u < net.leaf_end;
    const bool v_leaf = e.v >= net.leaf_begin && e.v < net.leaf_end;
    if (!u_leaf && !v_leaf) continue;
    ++leaf_edges;
    const NodeId anchor = u_leaf ? e.v : e.u;
    EXPECT_LT(anchor, net.core_end) << "leaf anchored outside the core";
  }
  EXPECT_EQ(leaf_edges, net.leaf_size());
}

TEST(GenerateUnderlying, HubLeafCountsHavePoissonMean) {
  const PaluParams p = typical_params();
  Rng rng(4);
  const auto net = generate_underlying(p, 150000, rng);
  const auto deg = net.graph.degrees();
  double total = 0.0;
  for (NodeId v = net.hub_begin; v < net.hub_end; ++v) {
    total += static_cast<double>(deg[v]);
  }
  const double mean = total / static_cast<double>(net.hub_size());
  EXPECT_NEAR(mean, p.lambda,
              6.0 * std::sqrt(p.lambda /
                              static_cast<double>(net.hub_size())));
}

TEST(GenerateUnderlying, PreferentialLeavesPileOntoSupernodes) {
  // With preferential attachment, the most-anchored core node should carry
  // far more leaves than the uniform expectation.
  PaluParams p = typical_params();
  Rng rng_pref(5);
  GeneratorOptions pref;
  pref.leaf_attachment = LeafAttachment::kPreferential;
  const auto net_p = generate_underlying(p, 60000, rng_pref, pref);

  Rng rng_unif(5);
  GeneratorOptions unif;
  unif.leaf_attachment = LeafAttachment::kUniform;
  const auto net_u = generate_underlying(p, 60000, rng_unif, unif);

  // Compare the heaviest single anchor's leaf count: preferential anchors
  // concentrate on supernodes, uniform anchors spread ~L·N/C·N per node.
  const auto max_anchor_load = [](const UnderlyingNetwork& net) {
    std::vector<Count> load(net.core_end, 0);
    for (const auto& e : net.graph.edges()) {
      const bool u_leaf = e.u >= net.leaf_begin && e.u < net.leaf_end;
      const bool v_leaf = e.v >= net.leaf_begin && e.v < net.leaf_end;
      if (u_leaf == v_leaf) continue;  // not a core-leaf edge
      const NodeId anchor = u_leaf ? e.v : e.u;
      if (anchor < net.core_end) ++load[anchor];
    }
    return *std::max_element(load.begin(), load.end());
  };
  EXPECT_GT(max_anchor_load(net_p), 10 * max_anchor_load(net_u));
}

TEST(GenerateUnderlying, RespectsCoreDmaxOption) {
  Rng rng(6);
  GeneratorOptions opts;
  opts.core_dmax = 8;
  opts.leaf_attachment = LeafAttachment::kUniform;
  PaluParams no_leaves = PaluParams::solve_hubs(2.0, 0.4, 0.0, 2.2, 0.6);
  const auto net = generate_underlying(no_leaves, 20000, rng, opts);
  const auto deg = net.graph.degrees();
  for (NodeId v = net.core_begin; v < net.core_end; ++v) {
    // Parity fix can add one stub beyond the cap.
    ASSERT_LE(deg[v], 9u);
  }
}

TEST(GenerateUnderlying, DmsGrowthCoreIsConnectedWithRightTail) {
  const PaluParams p = PaluParams::solve_hubs(2.0, 0.5, 0.1, 2.5, 0.8);
  Rng rng(21);
  GeneratorOptions opts;
  opts.core_kind = CoreKind::kDmsGrowth;
  opts.dms_edges_per_node = 2;
  const auto net = generate_underlying(p, 120000, rng, opts);
  // Core portion alone is connected (grown process).
  graph::Graph core_only(net.core_size());
  for (const auto& e : net.graph.edges()) {
    if (e.u < net.core_end && e.v < net.core_end) {
      core_only.add_edge(e.u, e.v);
    }
  }
  const auto census = graph::classify_topology(core_only);
  EXPECT_EQ(census.total_components() + census.isolated_nodes, 1u);
  // Core degree tail exponent near alpha.
  std::vector<Degree> core_deg(net.core_size());
  const auto deg = net.graph.degrees();
  for (NodeId v = 0; v < net.core_size(); ++v) core_deg[v] = deg[v];
  const auto h = stats::DegreeHistogram::from_degrees(core_deg);
  const auto fitted = fit::fit_power_law_fixed_xmin(h, 8);
  EXPECT_NEAR(fitted.alpha, p.alpha, 0.35);
}

TEST(GenerateUnderlying, DmsGrowthRejectsShallowAlpha) {
  const PaluParams p = PaluParams::solve_hubs(2.0, 0.5, 0.1, 1.8, 0.8);
  Rng rng(22);
  GeneratorOptions opts;
  opts.core_kind = CoreKind::kDmsGrowth;
  EXPECT_THROW(generate_underlying(p, 50000, rng, opts), InvalidArgument);
}

TEST(GenerateUnderlying, TooSmallNThrows) {
  const PaluParams p = typical_params();
  Rng rng(7);
  EXPECT_THROW(generate_underlying(p, 2, rng), InvalidArgument);
}

TEST(GenerateObserved, EdgeThinningMatchesWindow) {
  const PaluParams p = typical_params();
  Rng rng(8);
  const auto net = generate_underlying(p, 50000, rng);
  const auto observed = generate_observed(net, p, rng);
  const double kept = static_cast<double>(observed.num_edges());
  const double total = static_cast<double>(net.graph.num_edges());
  EXPECT_NEAR(kept / total, p.window,
              6.0 * std::sqrt(p.window * (1 - p.window) / total));
  EXPECT_EQ(observed.num_nodes(), net.graph.num_nodes());
}

TEST(GenerateObserved, CompositionMatchesTheory) {
  // Monte-Carlo class shares vs Section IV predictions.  The paper's core
  // visibility uses an integral approximation, so the band is loose for
  // core but tight for leaves/stars (whose forms are exact).
  const PaluParams p = typical_params();
  Rng rng(9);
  const NodeId n = 300000;
  const auto net = generate_underlying(p, n, rng);
  const auto observed = generate_observed(net, p, rng);
  const auto deg = observed.degrees();

  double visible_core = 0.0, visible_leaf = 0.0, visible_star = 0.0;
  for (NodeId v = 0; v < observed.num_nodes(); ++v) {
    if (deg[v] == 0) continue;
    if (v < net.core_end) {
      visible_core += 1.0;
    } else if (v < net.leaf_end) {
      visible_leaf += 1.0;
    } else {
      visible_star += 1.0;
    }
  }
  // Compare class *masses* (per underlying node scale N): the leaf and
  // star forms are exact, so their bands are tight; the core band uses the
  // exact thinned form (the paper's integral form is off by an O(1)
  // factor, which bench_theory_vs_sim quantifies).
  const double nd = static_cast<double>(n);
  const double mu = p.lambda * p.window;
  EXPECT_NEAR(visible_leaf / nd, p.leaves * p.window,
              0.05 * p.leaves * p.window);
  EXPECT_NEAR(visible_star / nd,
              p.hubs * (1.0 + mu - std::exp(-mu)),
              0.05 * p.hubs * (1.0 + mu - std::exp(-mu)));
  // Core: exact thinned visibility; leaf anchors add a little extra core
  // visibility, hence the slightly one-sided band.
  const double core_exact = visible_mass_exact(p) - p.leaves * p.window -
                            p.hubs * (1.0 + mu - std::exp(-mu));
  EXPECT_GT(visible_core / nd, 0.95 * core_exact);
  EXPECT_LT(visible_core / nd, 1.25 * core_exact);
}

TEST(GenerateObserved, UnattachedLinkCensusMatchesTheory) {
  const PaluParams p = typical_params();
  Rng rng(10);
  const NodeId n = 300000;
  const auto net = generate_underlying(p, n, rng);
  const auto observed = generate_observed(net, p, rng);
  const auto census = graph::classify_topology(observed);
  const auto deg = observed.degrees();
  Count visible = 0;
  for (const Degree d : deg) visible += (d > 0);
  const auto comp = observed_composition(p);
  // Star components with exactly 1 visible leaf = 2-node components.  The
  // observed census also counts core fragments that thin down to pairs, so
  // allow a one-sided slack plus a statistical band.
  const double predicted =
      comp.unattached_link_share * static_cast<double>(visible);
  EXPECT_GT(static_cast<double>(census.unattached_links),
            0.8 * predicted);
  EXPECT_LT(static_cast<double>(census.unattached_links),
            1.6 * predicted + 50.0);
}

TEST(SampleObservedDegrees, DegreeOneShareTracksTheory) {
  const PaluParams p = typical_params();
  Rng rng(11);
  const auto h = sample_observed_degrees(p, 300000, rng);
  const auto dist = stats::EmpiricalDistribution::from_histogram(h);
  // Leaves + star-leaf + hub(1) forms are exact; the core degree-1 term is
  // the paper's approximation, so use a moderate band.
  EXPECT_NEAR(dist.mass_at_one(), degree_share(p, 1), 0.15);
}

TEST(SampleObservedDegrees, ExactTheoryMatchesTightly) {
  // The binomial-thinning forms should match simulation within Monte-Carlo
  // noise for a leaf-free core + stars model.
  const PaluParams p = PaluParams::solve_hubs(3.0, 0.5, 0.0, 2.0, 0.5);
  Rng rng(12);
  GeneratorOptions opts;
  opts.core_dmax = 1u << 12;
  const auto h = sample_observed_degrees(p, 400000, rng, opts);
  const auto dist = stats::EmpiricalDistribution::from_histogram(h);
  for (Degree d = 1; d <= 8; ++d) {
    const double predicted = degree_share_exact(p, d, opts.core_dmax);
    const double measured = dist.probability_at(d);
    const double se = std::sqrt(predicted /
                                static_cast<double>(dist.sample_size()));
    EXPECT_NEAR(measured, predicted, 6.0 * se + 0.02 * predicted)
        << "d=" << d;
  }
}

TEST(WindowInvariance, LargerWindowSeesMore) {
  const PaluParams p = typical_params();
  Rng rng_a(13), rng_b(13);
  const auto net_a = generate_underlying(p.at_window(0.2), 100000, rng_a);
  const auto net_b = generate_underlying(p.at_window(0.9), 100000, rng_b);
  Rng s_a(14), s_b(14);
  const auto obs_small = generate_observed(net_a, p.at_window(0.2), s_a);
  const auto obs_large = generate_observed(net_b, p.at_window(0.9), s_b);
  const auto count_visible = [](const graph::Graph& g) {
    Count c = 0;
    for (const Degree d : g.degrees()) c += (d > 0);
    return c;
  };
  EXPECT_GT(count_visible(obs_large), 2 * count_visible(obs_small));
}

}  // namespace
}  // namespace palu::core
