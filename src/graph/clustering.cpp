#include "palu/graph/clustering.hpp"

#include <algorithm>

namespace palu::graph {
namespace {

// Sorted, deduplicated neighbor lists of the simplified graph.
std::vector<std::vector<NodeId>> sorted_neighbors(const Graph& g) {
  const Graph s = g.simplified();
  std::vector<std::vector<NodeId>> adj(s.num_nodes());
  for (const Edge& e : s.edges()) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  for (auto& list : adj) std::sort(list.begin(), list.end());
  return adj;
}

Count sorted_intersection_size(const std::vector<NodeId>& a,
                               const std::vector<NodeId>& b) {
  Count shared = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++shared;
      ++ia;
      ++ib;
    }
  }
  return shared;
}

}  // namespace

std::vector<double> local_clustering(const Graph& g) {
  const auto adj = sorted_neighbors(g);
  std::vector<double> out(adj.size(), 0.0);
  for (NodeId v = 0; v < adj.size(); ++v) {
    const auto& nv = adj[v];
    if (nv.size() < 2) continue;
    Count triangles = 0;
    for (const NodeId w : nv) {
      triangles += sorted_intersection_size(nv, adj[w]);
    }
    // Each triangle at v is counted twice (once per incident neighbor).
    const double possible =
        static_cast<double>(nv.size()) *
        static_cast<double>(nv.size() - 1);
    out[v] = static_cast<double>(triangles) / possible;
  }
  return out;
}

ClusteringSummary clustering_summary(const Graph& g) {
  const auto adj = sorted_neighbors(g);
  ClusteringSummary s;
  double local_sum = 0.0;
  Count closed_wedges = 0;  // 2 × (triangles at each center), summed
  for (NodeId v = 0; v < adj.size(); ++v) {
    const auto& nv = adj[v];
    if (nv.size() < 2) continue;
    ++s.eligible_nodes;
    Count tri_at_v = 0;
    for (const NodeId w : nv) {
      tri_at_v += sorted_intersection_size(nv, adj[w]);
    }
    // tri_at_v counts each triangle at center v twice.
    closed_wedges += tri_at_v;
    const Count deg = nv.size();
    s.wedges += deg * (deg - 1) / 2;
    local_sum += static_cast<double>(tri_at_v) /
                 (static_cast<double>(deg) * static_cast<double>(deg - 1));
  }
  // Σ_v triangles-at-v (with each triangle seen at 3 centers, twice each).
  s.triangles = closed_wedges / 6;
  s.average_local =
      s.eligible_nodes > 0
          ? local_sum / static_cast<double>(s.eligible_nodes)
          : 0.0;
  s.global = s.wedges > 0 ? 3.0 * static_cast<double>(s.triangles) /
                                static_cast<double>(s.wedges)
                          : 0.0;
  return s;
}

}  // namespace palu::graph
