// Unit tests for palu/graph clustering coefficients.
#include <gtest/gtest.h>

#include "palu/graph/clustering.hpp"
#include "palu/graph/components.hpp"
#include "palu/graph/generators.hpp"
#include "palu/graph/graph.hpp"
#include "palu/rng/xoshiro.hpp"

namespace palu::graph {
namespace {

Graph triangle_with_tail() {
  // 0-1-2 triangle, 2-3 tail.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(LocalClustering, TriangleWithTail) {
  const auto c = local_clustering(triangle_with_tail());
  EXPECT_DOUBLE_EQ(c[0], 1.0);  // neighbors {1,2} fully connected
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_NEAR(c[2], 1.0 / 3.0, 1e-12);  // pairs {01, 03, 13}: one closed
  EXPECT_DOUBLE_EQ(c[3], 0.0);  // degree 1
}

TEST(LocalClustering, CompleteGraphIsAllOnes) {
  Graph g(5);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) g.add_edge(u, v);
  }
  for (const double c : local_clustering(g)) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(LocalClustering, TreesAndStarsAreZero) {
  Graph star(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) star.add_edge(0, leaf);
  for (const double c : local_clustering(star)) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(LocalClustering, IgnoresMultiEdgesAndLoops) {
  Graph g = triangle_with_tail();
  g.add_edge(0, 1);  // duplicate
  g.add_edge(3, 3);  // self-loop
  const auto c = local_clustering(g);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[3], 0.0);
}

TEST(ClusteringSummary, CountsTrianglesAndWedges) {
  const auto s = clustering_summary(triangle_with_tail());
  EXPECT_EQ(s.triangles, 1u);
  // Wedges: node0 C(2,2)=1, node1 1, node2 C(3,2)=3, node3 0 → 5.
  EXPECT_EQ(s.wedges, 5u);
  EXPECT_NEAR(s.global, 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(s.average_local, (1.0 + 1.0 + 1.0 / 3.0) / 3.0, 1e-12);
  EXPECT_EQ(s.eligible_nodes, 3u);
}

TEST(ClusteringSummary, EmptyAndEdgelessGraphs) {
  const auto s = clustering_summary(Graph(10));
  EXPECT_EQ(s.triangles, 0u);
  EXPECT_DOUBLE_EQ(s.global, 0.0);
  EXPECT_DOUBLE_EQ(s.average_local, 0.0);
}

TEST(ClusteringSummary, ErdosRenyiMatchesP) {
  // G(n, p): expected global clustering ≈ p.
  Rng rng(3);
  const double p = 0.03;
  const Graph g = erdos_renyi(rng, 800, p);
  const auto s = clustering_summary(g);
  EXPECT_NEAR(s.global, p, 0.012);
}

TEST(ClusteringSummary, StarForestHasNoTriangles) {
  Rng rng(5);
  const Graph g = star_forest(rng, 2000, 3.0);
  const auto s = clustering_summary(g);
  EXPECT_EQ(s.triangles, 0u);
  EXPECT_DOUBLE_EQ(s.average_local, 0.0);
}

TEST(ClusteringSummary, BaBeatsSparserRandomGraph) {
  // PA graphs carry more triangles than an ER graph of equal density —
  // one reason clustering is future work for the PALU core.
  Rng rng(7);
  const Graph ba = barabasi_albert(rng, 3000, 3);
  const double density =
      2.0 * static_cast<double>(ba.num_edges()) / (3000.0 * 2999.0);
  const Graph er = erdos_renyi(rng, 3000, density);
  EXPECT_GT(clustering_summary(ba).global,
            2.0 * clustering_summary(er).global);
}

TEST(RewireDegreePreserving, KeepsDegreesKillsClustering) {
  Rng rng(11);
  const Graph ba = barabasi_albert(rng, 4000, 3);
  const Graph rewired =
      rewire_degree_preserving(rng, ba, 20 * ba.num_edges());
  EXPECT_EQ(rewired.degrees(), ba.degrees());
  EXPECT_EQ(rewired.num_edges(), ba.num_edges());
  // Randomization should strip most of the BA clustering surplus (the
  // degree-sequence null retains only what degrees force).
  const double before = clustering_summary(ba).global;
  const double after = clustering_summary(rewired).global;
  EXPECT_LT(after, 0.75 * before);
}

TEST(RewireDegreePreserving, NoSelfLoopsIntroduced) {
  Rng rng(13);
  const Graph g = barabasi_albert(rng, 1000, 2);
  const Graph rewired = rewire_degree_preserving(rng, g, 10000);
  for (const Edge& e : rewired.edges()) {
    ASSERT_NE(e.u, e.v);
  }
}

TEST(RewireDegreePreserving, TinyGraphsPassThrough) {
  Rng rng(17);
  Graph single(2);
  single.add_edge(0, 1);
  const Graph out = rewire_degree_preserving(rng, single, 100);
  EXPECT_EQ(out.num_edges(), 1u);
}

TEST(PaErHybrid, MixesBothStructures) {
  Rng rng(9);
  const Graph g = pa_er_hybrid(rng, 2000, 2, 0.002);
  // At least the PA edges plus most of the ER overlay survive dedup.
  EXPECT_GT(g.num_edges(), 2u * 1996u);
  // Single component (PA backbone is connected).
  const auto census = classify_topology(g);
  EXPECT_EQ(census.core_components, 1u);
  EXPECT_EQ(census.isolated_nodes, 0u);
}

}  // namespace
}  // namespace palu::graph
