// Ablation benches for the design choices DESIGN.md calls out.
//
// A. Λ (μ) estimator: the paper's moment-ratio route vs the point-wise
//    excess-ratio route — quantifies the variance-reduction claim.
// B. Pooled-slope claim (Section IV-A): regression on log-binned masses
//    recovers 1−α, regression on raw pmf recovers −α.
// C. Poisson star bump vs the Section VI geometric replacement: how well
//    each matches the empirical simplified law.
// D. Core construction: zeta-degree configuration core vs Barabási–Albert
//    growth — exponent fidelity and generation throughput.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "palu/palu.hpp"

namespace {

using namespace palu;

// ------------------------------------------------------------------ A
void ablation_mu_estimators() {
  const auto params =
      core::PaluParams::solve_hubs(5.0, 0.35, 0.2, 2.2, 0.8);
  const auto k = core::simplified_constants(params);
  constexpr int kReps = 32;
  std::vector<double> moment, pointwise;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng rng(7000 + rep * 104729);
    const auto h = core::sample_observed_degrees(params, 120000, rng);
    const auto dist = stats::EmpiricalDistribution::from_histogram(h);
    const auto fit = core::fit_palu(h);
    moment.push_back(fit.mu);
    pointwise.push_back(
        core::estimate_mu_pointwise(dist, fit.c, fit.alpha));
  }
  const auto spread = [](const std::vector<double>& xs) {
    double mean = 0.0;
    for (const double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    double var = 0.0;
    for (const double x : xs) var += (x - mean) * (x - mean);
    return std::pair<double, double>(
        mean, std::sqrt(var / static_cast<double>(xs.size() - 1)));
  };
  const auto [m_mean, m_sd] = spread(moment);
  const auto [p_mean, p_sd] = spread(pointwise);
  std::printf("--- A. mu estimator variance (truth mu=%.3f, %d reps) "
              "---\n",
              k.mu, kReps);
  std::printf("moment-ratio (paper):  mean=%.4f sd=%.4f\n", m_mean, m_sd);
  std::printf("point-wise  (naive):   mean=%.4f sd=%.4f\n", p_mean, p_sd);
  std::printf("variance ratio (pointwise/moment): %.2f  — the paper's "
              "'substantially less variance' claim\n\n",
              (p_sd * p_sd) / (m_sd * m_sd));
}

// ------------------------------------------------------------------ B
void ablation_pooled_slope() {
  const auto params =
      core::PaluParams::solve_hubs(2.0, 0.5, 0.2, 2.4, 0.9);
  const auto pooled = core::pooled_theory(params, 26);
  std::vector<double> xb, yb, xr, yr;
  for (std::uint32_t i = 10; i < 24; ++i) {
    xb.push_back(std::log(static_cast<double>(Degree{1} << i)));
    yb.push_back(std::log(pooled[i]));
  }
  for (Degree d = 1024; d <= 16384; d *= 2) {
    xr.push_back(std::log(static_cast<double>(d)));
    yr.push_back(std::log(core::degree_share(params, d)));
  }
  const auto binned = fit::linear_regression(xb, yb);
  const auto raw = fit::linear_regression(xr, yr);
  std::printf("--- B. pooled-slope claim (alpha=%.1f) ---\n", params.alpha);
  std::printf("log-binned D(d_i) slope: %+.3f (theory: 1-alpha = %+.3f)\n",
              binned.slope, 1.0 - params.alpha);
  std::printf("raw pmf slope:           %+.3f (theory:  -alpha = %+.3f)\n\n",
              raw.slope, -params.alpha);
}

// ------------------------------------------------------------------ C
void ablation_poisson_vs_geometric() {
  // Empirical simplified law with a Poisson bump; fit the Eq.-5 geometric
  // family and compare against keeping the exact Poisson term.
  const double c = 0.3, u = 0.05, mu = 3.0, alpha = 2.2;
  std::vector<double> truth;  // unnormalized over d = 1..64
  for (Degree d = 1; d <= 64; ++d) {
    truth.push_back(
        c * std::pow(static_cast<double>(d), -alpha) +
        u * std::exp(static_cast<double>(d) * std::log(mu) -
                     math::log_factorial(d)));
  }
  // Geometric replacement: residual after the best r over a grid.
  double best_geo = 1e9, best_r = 0.0;
  for (double r = 1.05; r < 8.0; r *= 1.05) {
    double sse = 0.0;
    for (Degree d = 2; d <= 64; ++d) {
      const double geo =
          c * std::pow(static_cast<double>(d), -alpha) +
          u * mu * std::pow(r, 1.0 - static_cast<double>(d)) * r;
      const double resid = truth[d - 1] - geo;
      sse += resid * resid;
    }
    if (sse < best_geo) {
      best_geo = sse;
      best_r = r;
    }
  }
  std::printf("--- C. Poisson bump vs geometric replacement (mu=%.1f) "
              "---\n",
              mu);
  std::printf("geometric best r=%.3f, residual SSE=%.3e (Poisson term is "
              "exact by construction)\n",
              best_r, best_geo);
  std::printf("head mismatch at d=2..5 (geo/truth): ");
  for (Degree d = 2; d <= 5; ++d) {
    const double geo =
        c * std::pow(static_cast<double>(d), -alpha) +
        u * mu * std::pow(best_r, 1.0 - static_cast<double>(d)) * best_r;
    std::printf("%.3f ", geo / truth[d - 1]);
  }
  std::printf("\n(the geometric tail trades bump shape for the clean "
              "Zipf-Mandelbrot connection of Eq. 5)\n\n");
}

// ------------------------------------------------------------------ D
void ablation_core_builders() {
  Rng rng(1);
  const NodeId n = 50000;
  const auto slope_of = [](const graph::Graph& g) {
    std::vector<double> counts(64, 0.0);
    for (const Degree d : g.degrees()) {
      if (d >= 1 && d < counts.size()) counts[d] += 1.0;
    }
    std::vector<double> x, y;
    for (Degree d = 2; d <= 32; ++d) {
      if (counts[d] < 10) continue;
      x.push_back(std::log(static_cast<double>(d)));
      y.push_back(std::log(counts[d]));
    }
    return fit::linear_regression(x, y).slope;
  };
  const auto zeta_core = graph::zeta_degree_core(rng, n, 2.5, n - 1);
  const auto ba_core = graph::barabasi_albert(rng, n, 2);
  std::printf("--- D. core builder fidelity (target alpha tunable only "
              "for zeta core) ---\n");
  std::printf("zeta-degree core (alpha=2.5 requested): measured slope "
              "%+.2f\n",
              slope_of(zeta_core));
  std::printf("barabasi-albert (alpha fixed ~3):        measured slope "
              "%+.2f\n\n",
              slope_of(ba_core));
}

void BM_ZetaCore(benchmark::State& state) {
  Rng rng(2);
  const auto n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::zeta_degree_core(rng, n, 2.5, n - 1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ZetaCore)->Arg(10000)->Arg(100000);

void BM_BarabasiAlbert(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::barabasi_albert(rng, n, 2));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BarabasiAlbert)->Arg(10000)->Arg(100000);

void BM_MomentRatioEstimator(benchmark::State& state) {
  const auto params = core::PaluParams::solve_hubs(5.0, 0.35, 0.2, 2.2, 0.8);
  Rng rng(4);
  const auto h = core::sample_observed_degrees(params, 120000, rng);
  const auto dist = stats::EmpiricalDistribution::from_histogram(h);
  const auto fit = core::fit_palu(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::estimate_mu_pointwise(dist, fit.c, fit.alpha));
  }
}
BENCHMARK(BM_MomentRatioEstimator);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablations ===\n\n");
  ablation_mu_estimators();
  ablation_pooled_slope();
  ablation_poisson_vs_geometric();
  ablation_core_builders();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
