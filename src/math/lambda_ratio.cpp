#include "palu/math/lambda_ratio.hpp"

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/math/lambertw.hpp"
#include "palu/math/stable.hpp"

namespace palu::math {

double lambda_moment_ratio(double lambda_cap) {
  PALU_CHECK(lambda_cap >= 0.0, "lambda_moment_ratio: requires Λ >= 0");
  if (lambda_cap < 1e-8) {
    // g(Λ) = 2 + Λ/3 + Λ²/18 + O(Λ³).
    return 2.0 + lambda_cap / 3.0 + lambda_cap * lambda_cap / 18.0;
  }
  const double denom = expm1_minus_x(lambda_cap);
  if (!std::isfinite(denom)) return lambda_cap;  // e^Λ overflowed: g → Λ
  return lambda_cap + lambda_cap * lambda_cap / denom;
}

double lambda_moment_ratio_derivative(double lambda_cap) {
  PALU_CHECK(lambda_cap >= 0.0,
             "lambda_moment_ratio_derivative: requires Λ >= 0");
  if (lambda_cap < 0.1) {
    // g'(Λ) = 1/3 + Λ/9 + Λ²/90 − Λ³/810 − 5Λ⁴/13608 − Λ⁵/340200
    //         + 7Λ⁶/874800 + 13Λ⁷/18370800 + O(Λ⁸).
    //
    // The exact branch below subtracts two ~4/Λ terms that agree only to
    // O(1), so its relative error grows like ε/Λ — ~1e-9 at Λ = 1e-6,
    // where the series threshold used to sit (and still ~1e-11 at 1e-2).
    // Extending the series through Λ⁷ and moving the seam to 0.1 puts
    // both branches at ≤2e-13 relative error at the crossover (series
    // truncation ~3e-15, exact-branch cancellation ~40·ε terms); the
    // continuity regression in math_test pins the seam mismatch.
    const double l = lambda_cap;
    return 1.0 / 3.0 +
           l * (1.0 / 9.0 +
                l * (1.0 / 90.0 +
                     l * (-1.0 / 810.0 +
                          l * (-5.0 / 13608.0 +
                               l * (-1.0 / 340200.0 +
                                    l * (7.0 / 874800.0 +
                                         l * (13.0 / 18370800.0)))))));
  }
  if (lambda_cap > 40.0) {
    // D ≈ e^Λ: g' = 1 + (2Λ − Λ²)e^{-Λ} + O(Λ³e^{-2Λ}).
    return 1.0 + (2.0 - lambda_cap) * lambda_cap * std::exp(-lambda_cap);
  }
  const double d = expm1_minus_x(lambda_cap);
  const double e1 = std::expm1(lambda_cap);
  return 1.0 + 2.0 * lambda_cap / d -
         lambda_cap * lambda_cap * e1 / (d * d);
}

double invert_lambda_moment_ratio(double r) {
  // Empirical ratios come out of the excess-moment sums in estimate.cpp,
  // where cancellation can round a true r = 2 (Λ = 0) to just under 2.
  // Treat that sliver as exactly the boundary instead of rejecting it, so
  // degraded-mode fitting cannot die on rounding noise; anything further
  // below 2 is outside g's range and still a caller error.
  constexpr double kBoundarySlack = 1e-9;
  PALU_CHECK(r >= 2.0 - kBoundarySlack,
             "invert_lambda_moment_ratio: requires r >= 2");
  if (r <= 2.0) return 0.0;
  // g(Λ) ∈ [max(2, Λ), Λ + 2], so the root lies in [r − 2, r].
  double lo = std::max(0.0, r - 2.0);
  double hi = r;
  // Seed Newton with the Lambert-W inverse: rearranging r·(e^Λ−Λ−1) =
  // Λ·(e^Λ−1) in y = r − Λ and dropping the O((r−1)y·e^{−r}) cross term
  // gives y·e^{−y} = r²·e^{−r}, i.e. Λ ≈ r + W₀(−r²·e^{−r}).  The W₀
  // argument stays above the −1/e branch point for r ≥ 4 (max |arg| ≈
  // 0.293 at r = 4); below that the first-order inverse of g ≈ 2 + Λ/3
  // is already within a few percent.
  double x;
  if (r >= 4.0) {
    x = r + lambert_w0(-r * r * std::exp(-r));
  } else {
    x = 3.0 * (r - 2.0);
  }
  if (!(x >= lo && x <= hi)) x = 0.5 * (lo + hi);
  for (int iter = 0; iter < 100; ++iter) {
    const double g = lambda_moment_ratio(x);
    const double err = g - r;
    if (std::abs(err) <= 1e-13 * (1.0 + std::abs(r))) return x;
    if (err > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    const double dg = lambda_moment_ratio_derivative(x);
    double next = x - err / dg;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);  // bisect fallback
    if (next == x) return x;
    x = next;
  }
  // Newton/bisection is monotone-convergent here, so running out of
  // iterations normally means the bracket collapsed to rounding noise.
  // That is only an answer if the midpoint actually satisfies g(Λ) ≈ r:
  // a collapsed bracket with a large residual (e.g. a non-finite r that
  // poisoned the bracket arithmetic) must surface as a failure, not as a
  // silently wrong Λ.
  if (hi - lo < 1e-9 * (1.0 + hi)) {
    const double mid = 0.5 * (lo + hi);
    const double residual = lambda_moment_ratio(mid) - r;
    if (std::abs(residual) <= 1e-9 * (1.0 + std::abs(r))) return mid;
  }
  throw ConvergenceError("invert_lambda_moment_ratio: did not converge");
}

}  // namespace palu::math
