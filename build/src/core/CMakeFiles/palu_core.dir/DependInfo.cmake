
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly.cpp" "src/core/CMakeFiles/palu_core.dir/anomaly.cpp.o" "gcc" "src/core/CMakeFiles/palu_core.dir/anomaly.cpp.o.d"
  "/root/repo/src/core/components_analysis.cpp" "src/core/CMakeFiles/palu_core.dir/components_analysis.cpp.o" "gcc" "src/core/CMakeFiles/palu_core.dir/components_analysis.cpp.o.d"
  "/root/repo/src/core/directed.cpp" "src/core/CMakeFiles/palu_core.dir/directed.cpp.o" "gcc" "src/core/CMakeFiles/palu_core.dir/directed.cpp.o.d"
  "/root/repo/src/core/estimate.cpp" "src/core/CMakeFiles/palu_core.dir/estimate.cpp.o" "gcc" "src/core/CMakeFiles/palu_core.dir/estimate.cpp.o.d"
  "/root/repo/src/core/generator.cpp" "src/core/CMakeFiles/palu_core.dir/generator.cpp.o" "gcc" "src/core/CMakeFiles/palu_core.dir/generator.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/palu_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/palu_core.dir/params.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/palu_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/palu_core.dir/streaming.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/core/CMakeFiles/palu_core.dir/theory.cpp.o" "gcc" "src/core/CMakeFiles/palu_core.dir/theory.cpp.o.d"
  "/root/repo/src/core/weighted.cpp" "src/core/CMakeFiles/palu_core.dir/weighted.cpp.o" "gcc" "src/core/CMakeFiles/palu_core.dir/weighted.cpp.o.d"
  "/root/repo/src/core/zm_connection.cpp" "src/core/CMakeFiles/palu_core.dir/zm_connection.cpp.o" "gcc" "src/core/CMakeFiles/palu_core.dir/zm_connection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/palu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/palu_math.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/palu_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/palu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/palu_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/palu_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/palu_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/palu_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
