# Empty compiler generated dependencies file for fit_test.
# This may be replaced when dependencies are built.
