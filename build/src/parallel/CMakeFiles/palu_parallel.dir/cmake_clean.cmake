file(REMOVE_RECURSE
  "CMakeFiles/palu_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/palu_parallel.dir/thread_pool.cpp.o.d"
  "libpalu_parallel.a"
  "libpalu_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
