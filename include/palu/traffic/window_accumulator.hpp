// Flat per-window accumulator: the sweep fast path's replacement for
// building a fresh SparseCountMatrix (and its unordered_map marginals)
// every window.
//
// Two arena-reused open-addressing tables back the accumulator: a cell
// table over (src, dst) packet counts and a node table for per-endpoint
// marginals.  begin_window() retires the previous window by bumping an
// epoch stamp instead of clearing, so the Monte-Carlo sweep's thousands of
// windows reuse one allocation instead of churning the heap.  All six
// Quantity histograms come from a single unsorted pass over the live
// cells — no entries() copy+sort and no per-node peer sets — and produce
// histograms identical in content to quantity_histogram() on the
// equivalent SparseCountMatrix.
//
// Count-space windows (ingest_counts) skip the hash tables entirely: the
// generator already delivers one record per active unordered pair, so the
// accumulator keeps a flat view of the records and computes marginals in
// dense NodeId-indexed scratch arrays with touched-lists for O(active)
// reset.  When node ids are too sparse for dense indexing the records are
// replayed through the hash tables instead — slower, still exact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/stats/histogram.hpp"
#include "palu/traffic/packet.hpp"
#include "palu/traffic/quantities.hpp"

namespace palu::traffic {

class WindowAccumulator {
 public:
  WindowAccumulator();

  /// Starts a new window: drops all cells in O(1) (epoch bump) while
  /// keeping both tables' capacity for reuse.
  void begin_window();

  /// Adds `count` packets on the (src, dst) link of the current window.
  void add(NodeId src, NodeId dst, Count count = 1);

  /// Accumulates a batch of packets.
  void add_packets(std::span<const Packet> packets);

  /// Hands the accumulator one whole count-space window (as produced by
  /// SyntheticTrafficGenerator::next_window_counts): one record per
  /// unordered pair, `forward` packets on (u, v) and `backward` on (v, u).
  /// Records with forward == backward == 0 are permitted (the generator
  /// emits its full support each window so loop sizes stay N_V-independent)
  /// and contribute nothing to any histogram or marginal.  Pairs must be
  /// unique.  Call once per window, right after begin_window(), and do not
  /// mix with add()/add_packets() in the same window.  `pairs` must stay
  /// valid until the next begin_window() — the accumulator keeps a view,
  /// not a copy.
  void ingest_counts(std::span<const EdgePacketCounts> pairs);

  /// Folds another accumulator's current window into this one — the merge
  /// half of the sweep's intra-window sharding (DESIGN.md §5g).  All mode
  /// combinations are supported: hash⊕hash replays the other's live cells,
  /// counts⊕counts appends the other's record views (both operands' views
  /// must then outlive this accumulator's next begin_window()), and mixed
  /// modes demote the counts side through the hash tables, which is
  /// content-exact.  When both sides are in counts mode their pair sets
  /// must be disjoint (the node-range shard routing guarantees this);
  /// merging overlapping counts views would double-count pairs, exactly
  /// like violating ingest_counts' uniqueness contract.  `other` is not
  /// modified and may be reused after its own next begin_window().
  void merge(const WindowAccumulator& other);

  /// Σ_ij A_t(i, j): total packets in the current window.
  Count total() const noexcept { return total_; }

  /// Number of live (src, dst) cells (the nnz of A_t).
  std::size_t nnz() const noexcept {
    return counts_mode_ ? counts_nnz_ : live_cells_.size();
  }

  /// Packet count of a specific link, 0 if absent.
  Count at(NodeId src, NodeId dst) const;

  /// Appends the current window's content to `out` as unordered-pair
  /// records with the lower endpoint in `u` (self-pairs all-forward),
  /// zero rows dropped — the capture-tee export for the columnar window
  /// store.  In hash mode a pair that saw both directions is emitted
  /// twice (once per live cell); order is unspecified.  Consumers that
  /// need canonical form (sorted, one record per pair) coalesce —
  /// ingest_counts cannot take this output directly.
  void export_counts(std::vector<EdgePacketCounts>& out) const;

  /// Histogram of one quantity over the current window, computed in a
  /// single unsorted pass; content-identical to quantity_histogram() on a
  /// SparseCountMatrix holding the same cells.  Non-const: reuses the node
  /// scratch table.
  stats::DegreeHistogram histogram(Quantity q);

 private:
  struct Cell {
    NodeId src;
    NodeId dst;
    Count count;
  };
  struct NodeSlot {
    NodeId id;
    Count packets;
    Count fan;
  };
  static constexpr std::size_t kNpos = ~std::size_t{0};

  static std::uint64_t mix_cell(NodeId src, NodeId dst) noexcept;
  static std::uint64_t mix_node(NodeId id) noexcept;

  std::size_t find_cell(NodeId src, NodeId dst) const noexcept;
  std::size_t find_or_insert_cell(NodeId src, NodeId dst);
  void grow_cells();

  void begin_node_pass();
  NodeSlot& node_slot(NodeId id);
  void grow_nodes();

  stats::DegreeHistogram histogram_counts(Quantity q);
  stats::DegreeHistogram emit_dense_nodes(bool want_packets);
  stats::DegreeHistogram drain_value_scratch();
  void add_value(Count v);
  void demote_counts_to_hash();

  // ---- cell table (open addressing, linear probing, epoch-stamped) ----
  std::vector<Cell> cells_;
  std::vector<std::uint32_t> cell_epoch_;
  std::vector<std::uint32_t> live_cells_;  // slot indices, insertion order
  std::uint32_t epoch_ = 1;
  std::size_t cell_mask_ = 0;  // capacity − 1 (capacity is a power of 2)
  std::size_t cell_grow_at_ = 0;
  Count total_ = 0;

  // ---- node scratch table (one histogram pass at a time) ----
  std::vector<NodeSlot> nodes_;
  std::vector<std::uint32_t> node_epoch_;
  std::vector<std::uint32_t> live_nodes_;
  std::uint32_t node_pass_ = 1;
  std::size_t node_mask_ = 0;
  std::size_t node_grow_at_ = 0;

  // ---- count-space window state (dense, hash-free) ----
  // Invariant between histogram passes: every entry of the dense arrays is
  // zero.  Node passes accumulate into the dense arrays, then one linear
  // emit over [0, counts_dense_nodes_) reads and re-zeroes them — a fixed
  // graph-sized sweep, so per-window cost does not track the active-node
  // count.  The value scratch keeps a touched-list because histogram
  // values are unbounded.
  //
  // A window holds one record view after ingest_counts; merging another
  // counts-mode accumulator appends its views, so the histogram passes
  // iterate a small list of disjoint spans (all into caller-owned
  // storage).
  std::vector<std::span<const EdgePacketCounts>> pair_spans_;
  bool counts_mode_ = false;
  std::size_t counts_nnz_ = 0;
  std::size_t counts_dense_nodes_ = 0;     // emit scan bound (max id + 1)
  std::vector<Count> node_packets_dense_;  // indexed by NodeId
  std::vector<Count> node_fan_dense_;      // indexed by NodeId
  std::vector<Count> value_count_;         // indexed by histogram value
  std::vector<Count> touched_values_;
  std::vector<Count> overflow_values_;     // values >= the dense cap
};

}  // namespace palu::traffic
