file(REMOVE_RECURSE
  "CMakeFiles/palu_math.dir/gamma.cpp.o"
  "CMakeFiles/palu_math.dir/gamma.cpp.o.d"
  "CMakeFiles/palu_math.dir/incomplete_gamma.cpp.o"
  "CMakeFiles/palu_math.dir/incomplete_gamma.cpp.o.d"
  "CMakeFiles/palu_math.dir/lambda_ratio.cpp.o"
  "CMakeFiles/palu_math.dir/lambda_ratio.cpp.o.d"
  "CMakeFiles/palu_math.dir/stable.cpp.o"
  "CMakeFiles/palu_math.dir/stable.cpp.o.d"
  "CMakeFiles/palu_math.dir/zeta.cpp.o"
  "CMakeFiles/palu_math.dir/zeta.cpp.o.d"
  "libpalu_math.a"
  "libpalu_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
