// One-dimensional root finding and minimization (Brent's methods).
#pragma once

#include <functional>

namespace palu::fit {

struct BrentOptions {
  double tolerance = 1e-10;  // absolute x tolerance
  int max_iterations = 200;
};

/// Finds a root of `f` in [a, b]; f(a) and f(b) must bracket (opposite
/// signs, or one of them zero).  Classic Brent: bisection safeguarded
/// inverse quadratic interpolation.
double brent_root(const std::function<double(double)>& f, double a, double b,
                  const BrentOptions& opts = {});

/// Minimizes `f` on [a, b] by Brent's golden-section/parabolic method.
/// Returns the argmin; the minimum value is f(result).
double brent_minimize(const std::function<double(double)>& f, double a,
                      double b, const BrentOptions& opts = {});

}  // namespace palu::fit
