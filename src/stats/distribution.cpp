#include "palu/stats/distribution.hpp"

#include <algorithm>

#include "palu/common/error.hpp"

namespace palu::stats {

EmpiricalDistribution EmpiricalDistribution::from_histogram(
    const DegreeHistogram& h) {
  // Nodes of degree 0 are invisible to traffic capture (Section V), so the
  // distribution is over the positive support only.
  std::vector<std::pair<Degree, Count>> entries = h.sorted();
  std::erase_if(entries, [](const auto& e) { return e.first == 0; });
  if (entries.empty()) {
    throw DataError("EmpiricalDistribution: histogram has no positive mass");
  }
  EmpiricalDistribution out;
  Count n = 0;
  for (const auto& [d, c] : entries) n += c;
  out.n_ = n;
  out.support_.reserve(entries.size());
  out.pmf_.reserve(entries.size());
  out.cdf_.reserve(entries.size());
  double running = 0.0;
  for (const auto& [d, c] : entries) {
    const double p = static_cast<double>(c) / static_cast<double>(n);
    running += p;
    out.support_.push_back(d);
    out.pmf_.push_back(p);
    out.cdf_.push_back(running);
  }
  out.cdf_.back() = 1.0;  // absorb rounding
  return out;
}

double EmpiricalDistribution::probability_at(Degree d) const {
  const auto it = std::lower_bound(support_.begin(), support_.end(), d);
  if (it == support_.end() || *it != d) return 0.0;
  return pmf_[static_cast<std::size_t>(it - support_.begin())];
}

double EmpiricalDistribution::cumulative_at(Degree d) const {
  // Largest support point <= d.
  const auto it = std::upper_bound(support_.begin(), support_.end(), d);
  if (it == support_.begin()) return 0.0;
  return cdf_[static_cast<std::size_t>(it - support_.begin()) - 1];
}

double EmpiricalDistribution::ccdf_at(Degree d) const {
  if (d == 0) return 1.0;
  return 1.0 - cumulative_at(d - 1);
}

double EmpiricalDistribution::mean() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < support_.size(); ++i) {
    acc += static_cast<double>(support_[i]) * pmf_[i];
  }
  return acc;
}

}  // namespace palu::stats
