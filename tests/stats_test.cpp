// Unit tests for palu/stats: histograms, empirical distributions, binary
// logarithmic pooling (Section II-A semantics), window ensembles, KS.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/stats/distribution.hpp"
#include "palu/stats/histogram.hpp"
#include "palu/stats/log_binning.hpp"

namespace palu::stats {
namespace {

TEST(DegreeHistogram, BasicAccumulation) {
  DegreeHistogram h;
  h.add(1, 5);
  h.add(2, 3);
  h.add(1);
  EXPECT_EQ(h.at(1), 6u);
  EXPECT_EQ(h.at(2), 3u);
  EXPECT_EQ(h.at(7), 0u);
  EXPECT_EQ(h.total(), 9u);
  EXPECT_EQ(h.weighted_total(), 6u + 6u);
  EXPECT_EQ(h.support_size(), 2u);
  EXPECT_EQ(h.max_degree(), 2u);
}

TEST(DegreeHistogram, AddRejectsOverflowingTotals) {
  // Regression (PR 2): weighted_total_ += d * c wrapped silently for
  // hostile inputs (d ≈ c ≈ 2^40 multiplies to 2^80).  The failed add must
  // throw DataError and leave the histogram untouched.
  DegreeHistogram h;
  h.add(10, 10);
  const Degree big = Degree{1} << 40;
  EXPECT_THROW(h.add(big, big), DataError);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.weighted_total(), 100u);
  EXPECT_EQ(h.at(big), 0u);
  EXPECT_EQ(h.support_size(), 1u);
  // total_ overflow (sum of counts) is caught independently of d * c.
  DegreeHistogram t;
  t.add(1, ~Count{0} - 5);
  EXPECT_THROW(t.add(1, 6), DataError);
  EXPECT_EQ(t.total(), ~Count{0} - 5);
  // weighted_total_ accumulation across adds is guarded too.
  DegreeHistogram w;
  w.add(Degree{1} << 62, 2);
  EXPECT_THROW(w.add(Degree{1} << 62, 2), DataError);
}

TEST(DegreeHistogram, ZeroCountIsIgnored) {
  DegreeHistogram h;
  h.add(3, 0);
  EXPECT_TRUE(h.empty());
}

TEST(DegreeHistogram, FromDegreesDropsZeros) {
  const std::vector<Degree> degrees = {0, 1, 1, 2, 0, 5};
  const auto h = DegreeHistogram::from_degrees(degrees);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.at(0), 0u);
  EXPECT_EQ(h.at(1), 2u);
}

TEST(DegreeHistogram, MergeAddsCounts) {
  DegreeHistogram a, b;
  a.add(1, 2);
  a.add(3, 1);
  b.add(1, 4);
  b.add(5, 2);
  a.merge(b);
  EXPECT_EQ(a.at(1), 6u);
  EXPECT_EQ(a.at(3), 1u);
  EXPECT_EQ(a.at(5), 2u);
  EXPECT_EQ(a.total(), 9u);
}

TEST(DegreeHistogram, SortedSnapshot) {
  DegreeHistogram h;
  h.add(9);
  h.add(2);
  h.add(5);
  const auto s = h.sorted();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].first, 2u);
  EXPECT_EQ(s[1].first, 5u);
  EXPECT_EQ(s[2].first, 9u);
}

TEST(EmpiricalDistribution, NormalizesPmf) {
  DegreeHistogram h;
  h.add(1, 6);
  h.add(2, 3);
  h.add(8, 1);
  const auto dist = EmpiricalDistribution::from_histogram(h);
  EXPECT_EQ(dist.sample_size(), 10u);
  EXPECT_DOUBLE_EQ(dist.probability_at(1), 0.6);
  EXPECT_DOUBLE_EQ(dist.probability_at(2), 0.3);
  EXPECT_DOUBLE_EQ(dist.probability_at(8), 0.1);
  EXPECT_DOUBLE_EQ(dist.probability_at(5), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf().back(), 1.0);
}

TEST(EmpiricalDistribution, CumulativeSteps) {
  DegreeHistogram h;
  h.add(2, 1);
  h.add(4, 1);
  h.add(8, 2);
  const auto dist = EmpiricalDistribution::from_histogram(h);
  EXPECT_DOUBLE_EQ(dist.cumulative_at(1), 0.0);
  EXPECT_DOUBLE_EQ(dist.cumulative_at(2), 0.25);
  EXPECT_DOUBLE_EQ(dist.cumulative_at(3), 0.25);
  EXPECT_DOUBLE_EQ(dist.cumulative_at(4), 0.5);
  EXPECT_DOUBLE_EQ(dist.cumulative_at(100), 1.0);
}

TEST(EmpiricalDistribution, SummaryAccessors) {
  DegreeHistogram h;
  h.add(1, 7);
  h.add(3, 2);
  h.add(64, 1);
  const auto dist = EmpiricalDistribution::from_histogram(h);
  EXPECT_EQ(dist.max_value(), 64u);  // Eq. (1): d_max
  EXPECT_DOUBLE_EQ(dist.mass_at_one(), 0.7);
  EXPECT_NEAR(dist.mean(), (7.0 * 1 + 2.0 * 3 + 64.0) / 10.0, 1e-12);
}

TEST(EmpiricalDistribution, DropsDegreeZero) {
  DegreeHistogram h;
  h.add(0, 100);
  h.add(2, 1);
  const auto dist = EmpiricalDistribution::from_histogram(h);
  EXPECT_EQ(dist.sample_size(), 1u);
  EXPECT_DOUBLE_EQ(dist.probability_at(2), 1.0);
}

TEST(EmpiricalDistribution, EmptyThrows) {
  DegreeHistogram h;
  EXPECT_THROW(EmpiricalDistribution::from_histogram(h), DataError);
  h.add(0, 5);  // only invisible nodes
  EXPECT_THROW(EmpiricalDistribution::from_histogram(h), DataError);
}

TEST(LogBinned, BinIndexIsCeilLog2) {
  EXPECT_EQ(LogBinned::bin_index(1), 0u);
  EXPECT_EQ(LogBinned::bin_index(2), 1u);
  EXPECT_EQ(LogBinned::bin_index(3), 2u);
  EXPECT_EQ(LogBinned::bin_index(4), 2u);
  EXPECT_EQ(LogBinned::bin_index(5), 3u);
  EXPECT_EQ(LogBinned::bin_index(8), 3u);
  EXPECT_EQ(LogBinned::bin_index(9), 4u);
  EXPECT_EQ(LogBinned::bin_index(1024), 10u);
  EXPECT_EQ(LogBinned::bin_index(1025), 11u);
}

TEST(LogBinned, TopBinSaturatesAtBoundaryDegrees) {
  // Regression: degrees past 2^63 used to index a 65th bin whose upper
  // edge overflows Degree, so from_histogram threw on huge (corrupt or
  // synthetic) degrees.  The top bin saturates instead.
  const Degree two63 = Degree{1} << 63;
  EXPECT_EQ(LogBinned::bin_index(two63 - 1), 63u);
  EXPECT_EQ(LogBinned::bin_index(two63), 63u);
  EXPECT_EQ(LogBinned::bin_index(two63 + 1), 63u);
  EXPECT_EQ(LogBinned::bin_index(~Degree{0}), 63u);
  EXPECT_EQ(LogBinned::bin_upper(63), two63);
  EXPECT_THROW(LogBinned::bin_upper(64), InvalidArgument);

  // Only one past-2^63 degree: DegreeHistogram's own weighted-total
  // overflow guard (PR 2) rightly rejects a second one in the same
  // histogram, and this test is about the binning, not that guard.
  DegreeHistogram h;
  h.add(1, 3);
  h.add(two63 + 1, 1);  // saturating degree must pool, not throw
  const auto pooled = LogBinned::from_histogram(h);
  ASSERT_EQ(pooled.num_bins(), LogBinned::kMaxBins);
  EXPECT_DOUBLE_EQ(pooled[0], 0.75);
  EXPECT_DOUBLE_EQ(pooled[63], 0.25);
  EXPECT_NEAR(pooled.total_mass(), 1.0, 1e-12);
}

TEST(LogBinned, BinEdges) {
  EXPECT_EQ(LogBinned::bin_upper(0), 1u);
  EXPECT_EQ(LogBinned::bin_upper(5), 32u);
  EXPECT_EQ(LogBinned::bin_lower_exclusive(0), 0u);
  EXPECT_EQ(LogBinned::bin_lower_exclusive(5), 16u);
}

TEST(LogBinned, EveryDegreeFallsInItsBin) {
  for (Degree d = 1; d <= 4096; ++d) {
    const auto i = LogBinned::bin_index(d);
    EXPECT_GT(d, LogBinned::bin_lower_exclusive(i));
    EXPECT_LE(d, LogBinned::bin_upper(i));
  }
}

TEST(LogBinned, PoolsHistogramMass) {
  DegreeHistogram h;
  h.add(1, 4);   // bin 0
  h.add(2, 2);   // bin 1
  h.add(3, 1);   // bin 2
  h.add(4, 1);   // bin 2
  h.add(7, 2);   // bin 3
  const auto pooled = LogBinned::from_histogram(h);
  ASSERT_EQ(pooled.num_bins(), 4u);
  EXPECT_DOUBLE_EQ(pooled[0], 0.4);
  EXPECT_DOUBLE_EQ(pooled[1], 0.2);
  EXPECT_DOUBLE_EQ(pooled[2], 0.2);
  EXPECT_DOUBLE_EQ(pooled[3], 0.2);
  EXPECT_NEAR(pooled.total_mass(), 1.0, 1e-12);
}

TEST(LogBinned, DifferentialCumulativeIdentity) {
  // D(d_i) must equal P(d_i) − P(d_{i−1}) computed from the empirical cdf.
  DegreeHistogram h;
  for (Degree d = 1; d <= 100; ++d) h.add(d, 101 - d);
  const auto pooled = LogBinned::from_histogram(h);
  const auto dist = EmpiricalDistribution::from_histogram(h);
  for (std::uint32_t i = 0; i < pooled.num_bins(); ++i) {
    const double hi = dist.cumulative_at(LogBinned::bin_upper(i));
    const double lo =
        i == 0 ? 0.0
               : dist.cumulative_at(LogBinned::bin_upper(i - 1));
    EXPECT_NEAR(pooled[i], hi - lo, 1e-12) << "bin " << i;
  }
}

TEST(LogBinned, FromModelPmfNormalizes) {
  const auto pooled = LogBinned::from_model_pmf(
      [](Degree d) { return 1.0 / static_cast<double>(d * d); }, 64);
  EXPECT_NEAR(pooled.total_mass(), 1.0, 1e-12);
  EXPECT_EQ(pooled.num_bins(), 7u);
  // Bin 0 must be p(1) of the truncated-normalized model.
  double z = 0.0;
  for (int d = 1; d <= 64; ++d) z += 1.0 / (d * d);
  EXPECT_NEAR(pooled[0], 1.0 / z, 1e-12);
}

TEST(LogBinned, EmptyHistogramThrows) {
  DegreeHistogram h;
  EXPECT_THROW(LogBinned::from_histogram(h), DataError);
}

TEST(BinnedEnsemble, MeanAndStddevAcrossWindows) {
  BinnedEnsemble ens;
  ens.add(LogBinned({0.5, 0.5}));
  ens.add(LogBinned({0.7, 0.3}));
  ens.add(LogBinned({0.6, 0.4}));
  EXPECT_EQ(ens.num_windows(), 3u);
  const auto mean = ens.mean();
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_NEAR(mean[0], 0.6, 1e-12);
  EXPECT_NEAR(mean[1], 0.4, 1e-12);
  const auto sd = ens.stddev();
  EXPECT_NEAR(sd[0], 0.1, 1e-12);  // sample stddev of {.5,.7,.6}
  EXPECT_NEAR(sd[1], 0.1, 1e-12);
}

TEST(BinnedEnsemble, RaggedWindowsTreatMissingBinsAsZero) {
  BinnedEnsemble ens;
  ens.add(LogBinned({1.0}));            // window with 1 bin
  ens.add(LogBinned({0.5, 0.5}));       // window with 2 bins
  const auto mean = ens.mean();
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_NEAR(mean[0], 0.75, 1e-12);
  EXPECT_NEAR(mean[1], 0.25, 1e-12);
  const auto sd = ens.stddev();
  // Values in bin 1 were {0, 0.5}: sample stddev = 0.5/√2.
  EXPECT_NEAR(sd[1], 0.5 / std::sqrt(2.0), 1e-12);
}

TEST(BinnedEnsemble, SingleWindowHasZeroStddev) {
  BinnedEnsemble ens;
  ens.add(LogBinned({0.3, 0.7}));
  const auto sd = ens.stddev();
  EXPECT_DOUBLE_EQ(sd[0], 0.0);
  EXPECT_DOUBLE_EQ(sd[1], 0.0);
}

TEST(EmpiricalDistribution, CcdfComplementsCdf) {
  DegreeHistogram h;
  h.add(2, 1);
  h.add(4, 1);
  h.add(8, 2);
  const auto dist = EmpiricalDistribution::from_histogram(h);
  EXPECT_DOUBLE_EQ(dist.ccdf_at(0), 1.0);
  EXPECT_DOUBLE_EQ(dist.ccdf_at(1), 1.0);
  EXPECT_DOUBLE_EQ(dist.ccdf_at(2), 1.0);   // P[X >= 2]
  EXPECT_DOUBLE_EQ(dist.ccdf_at(3), 0.75);  // above the first atom
  EXPECT_DOUBLE_EQ(dist.ccdf_at(8), 0.5);
  EXPECT_DOUBLE_EQ(dist.ccdf_at(9), 0.0);
  // Identity: ccdf(d) + cdf(d−1) == 1 everywhere.
  for (Degree d = 1; d <= 10; ++d) {
    EXPECT_NEAR(dist.ccdf_at(d) + dist.cumulative_at(d - 1), 1.0, 1e-12);
  }
}

TEST(KsDistance, ZeroAgainstItself) {
  DegreeHistogram h;
  h.add(1, 3);
  h.add(2, 2);
  h.add(5, 5);
  const auto dist = EmpiricalDistribution::from_histogram(h);
  const double d = ks_distance(
      dist, [&](Degree x) { return dist.cumulative_at(x); });
  EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(KsDistance, DetectsShift) {
  DegreeHistogram h;
  h.add(1, 1);
  h.add(2, 1);
  const auto dist = EmpiricalDistribution::from_histogram(h);
  // Model putting all mass at 1: |0.5 − 1| = 0.5 at d=1.
  const double d =
      ks_distance(dist, [](Degree x) { return x >= 1 ? 1.0 : 0.0; });
  EXPECT_DOUBLE_EQ(d, 0.5);
}

}  // namespace
}  // namespace palu::stats
