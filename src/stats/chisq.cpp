#include "palu/stats/chisq.hpp"

#include <algorithm>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/math/incomplete_gamma.hpp"

namespace palu::stats {

ChiSquareResult chi_square_pooled(const LogBinned& observed,
                                  const LogBinned& model,
                                  Count sample_size,
                                  std::size_t params_fitted,
                                  double min_expected) {
  PALU_CHECK(sample_size > 0, "chi_square_pooled: empty sample");
  PALU_CHECK(min_expected > 0.0,
             "chi_square_pooled: min_expected must be positive");
  const std::size_t nbins =
      std::max(observed.num_bins(), model.num_bins());
  PALU_CHECK(nbins >= 2, "chi_square_pooled: need at least 2 bins");
  const double n = static_cast<double>(sample_size);

  // Merge low-expectation bins rightward (tail bins are the sparse ones).
  std::vector<double> obs_counts, exp_counts;
  double obs_acc = 0.0, exp_acc = 0.0;
  for (std::size_t i = 0; i < nbins; ++i) {
    obs_acc += (i < observed.num_bins() ? observed[i] : 0.0) * n;
    exp_acc += (i < model.num_bins() ? model[i] : 0.0) * n;
    if (exp_acc >= min_expected) {
      obs_counts.push_back(obs_acc);
      exp_counts.push_back(exp_acc);
      obs_acc = exp_acc = 0.0;
    }
  }
  if (exp_acc > 0.0 || obs_acc > 0.0) {
    if (!exp_counts.empty()) {
      obs_counts.back() += obs_acc;
      exp_counts.back() += exp_acc;
    } else {
      obs_counts.push_back(obs_acc);
      exp_counts.push_back(exp_acc);
    }
  }
  PALU_CHECK(obs_counts.size() >= 2,
             "chi_square_pooled: fewer than 2 usable bins after merging");

  ChiSquareResult out;
  out.bins_used = obs_counts.size();
  for (std::size_t i = 0; i < obs_counts.size(); ++i) {
    PALU_CHECK(exp_counts[i] > 0.0,
               "chi_square_pooled: model assigns zero mass to a bin with "
               "observations");
    const double diff = obs_counts[i] - exp_counts[i];
    out.statistic += diff * diff / exp_counts[i];
  }
  const double dof = static_cast<double>(obs_counts.size()) - 1.0 -
                     static_cast<double>(params_fitted);
  PALU_CHECK(dof >= 1.0,
             "chi_square_pooled: not enough bins for the fitted "
             "parameter count");
  out.dof = dof;
  out.p_value = math::chi_squared_survival(out.statistic, dof);
  return out;
}

}  // namespace palu::stats
