// D4M-flavored sparse associative arrays.
//
// The paper's measurement stack (refs [14], [16]) expresses traffic
// analytics as associative-array algebra: windows are sparse matrices,
// aggregates are contractions with the ones vector, and the zero-norm
// | |₀ maps nonzeros to 1 (Table I).  This substrate provides exactly that
// algebra over hash-backed sparse vectors/matrices so the Table-I matrix
// column can be written as it appears in the paper:
//
//     valid packets        = ones · (A · ones)
//     unique links         = ones · (zero_norm(A) · ones)
//     unique sources       = ones · zero_norm(A · ones)
//     unique destinations  = ones · zero_norm(Aᵀ · ones)
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/common/types.hpp"

namespace palu::traffic {

/// Sparse vector over NodeId keys; absent keys are zero.
class SparseVector {
 public:
  SparseVector() = default;

  void set(NodeId key, double value);
  void add(NodeId key, double value);
  double at(NodeId key) const;
  std::size_t nnz() const noexcept { return values_.size(); }

  /// Σ of all stored values (contraction with the ones vector).
  double sum() const;

  /// |v|₀ applied elementwise: every nonzero becomes exactly 1.
  SparseVector zero_norm() const;

  /// Elementwise sum.
  SparseVector plus(const SparseVector& other) const;

  /// Dot product (sparse-sparse).
  double dot(const SparseVector& other) const;

  /// Sorted (key, value) snapshot for deterministic iteration.
  std::vector<std::pair<NodeId, double>> sorted() const;

 private:
  std::unordered_map<NodeId, double> values_;
};

/// Sparse matrix over (row, col) keys; the associative-array view of A_t.
class AssocArray {
 public:
  AssocArray() = default;

  void add(NodeId row, NodeId col, double value);
  double at(NodeId row, NodeId col) const;
  std::size_t nnz() const noexcept { return cells_.size(); }

  /// Σ of all stored values: onesᵀ · A · ones.
  double sum() const;

  /// |A|₀ elementwise.
  AssocArray zero_norm() const;

  /// Aᵀ.
  AssocArray transposed() const;

  /// A · ones (row sums) as a sparse vector.
  SparseVector row_sums() const;

  /// onesᵀ · A (column sums) as a sparse vector.
  SparseVector col_sums() const;

  /// A · v.
  SparseVector multiply(const SparseVector& v) const;

  /// Elementwise (Hadamard) product — D4M's element-wise multiply.
  AssocArray hadamard(const AssocArray& other) const;

  /// Elementwise sum.
  AssocArray plus(const AssocArray& other) const;

  /// Sorted (row, col, value) snapshot.
  struct Entry {
    NodeId row;
    NodeId col;
    double value;
  };
  std::vector<Entry> sorted() const;

 private:
  struct PairHash {
    std::size_t operator()(const std::pair<NodeId, NodeId>& p) const {
      std::uint64_t h = p.first * 0x9e3779b97f4a7c15ULL;
      h ^= p.second + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::pair<NodeId, NodeId>, double, PairHash> cells_;
};

}  // namespace palu::traffic
