// Figure 2 — Traffic network topologies.
//
// Regenerates the topology census (unattached links, supernode leaves /
// stars, core components with core leaves, plus the invisible isolated
// nodes) across a grid of PALU parameters and window sizes, comparing the
// measured unattached-link share with the Section IV prediction
// U·λp·e^{−λp}/V.  Then times the census pass.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "palu/palu.hpp"

namespace {

using namespace palu;

void census_row(double lambda, double core_frac, double window,
                NodeId n) {
  const auto params =
      core::PaluParams::solve_hubs(lambda, core_frac, 0.2, 2.2, window);
  Rng rng(5);
  const auto net = core::generate_underlying(params, n, rng);
  const auto observed = core::generate_observed(net, params, rng);
  const auto census = graph::classify_topology(observed);
  Count visible = 0;
  for (const Degree d : observed.degrees()) visible += (d > 0);
  const auto comp = core::observed_composition(params);
  const double measured_link_share =
      static_cast<double>(census.unattached_links) /
      static_cast<double>(visible);
  std::printf(
      "%6.1f %5.2f %5.2f | %9llu %9llu %7llu %9llu %9llu %9llu | "
      "%9.5f %9.5f\n",
      lambda, core_frac, window,
      static_cast<unsigned long long>(census.isolated_nodes),
      static_cast<unsigned long long>(census.unattached_links),
      static_cast<unsigned long long>(census.star_components),
      static_cast<unsigned long long>(census.star_leaves),
      static_cast<unsigned long long>(census.core_components),
      static_cast<unsigned long long>(census.core_leaves),
      measured_link_share, comp.unattached_link_share);
}

void print_fig2() {
  std::printf("=== Figure 2: traffic topology census (N=200k scale) ===\n");
  std::printf("lambda     C     p | isolated  un.links   stars st.leaves "
              "core.cmp  co.leaves | meas.link  pred.link\n");
  for (const double lambda : {1.0, 3.0, 8.0}) {
    for (const double window : {0.3, 0.7, 1.0}) {
      census_row(lambda, 0.35, window, 200000);
    }
  }
  // Core-heavy vs star-heavy contrast at fixed window.
  std::printf("--- composition contrast at p = 0.7 ---\n");
  for (const double core_frac : {0.1, 0.4, 0.7}) {
    census_row(2.0, core_frac, 0.7, 200000);
  }
  std::printf("\n");
}

void BM_ClassifyTopology(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto params = core::PaluParams::solve_hubs(3.0, 0.35, 0.2, 2.2, 0.7);
  Rng rng(6);
  const auto net = core::generate_underlying(params, n, rng);
  const auto observed = core::generate_observed(net, params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::classify_topology(observed));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(observed.num_nodes()));
}
BENCHMARK(BM_ClassifyTopology)->Arg(50000)->Arg(200000)->Arg(800000);

void BM_ConnectedComponents(benchmark::State& state) {
  const auto params = core::PaluParams::solve_hubs(3.0, 0.35, 0.2, 2.2, 0.7);
  Rng rng(7);
  const auto net = core::generate_underlying(
      params, static_cast<NodeId>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::connected_components(net.graph));
  }
}
BENCHMARK(BM_ConnectedComponents)->Arg(50000)->Arg(200000);

}  // namespace

int main(int argc, char** argv) {
  print_fig2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
