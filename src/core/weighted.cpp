#include "palu/core/weighted.hpp"

#include <algorithm>

#include "palu/common/error.hpp"
#include "palu/rng/distributions.hpp"

namespace palu::core {

std::vector<Count> assign_edge_weights(Rng& rng, const graph::Graph& g,
                                       const WeightModel& model) {
  std::vector<Count> weights;
  weights.reserve(g.num_edges());
  switch (model.law) {
    case WeightModel::Law::kZeta: {
      PALU_CHECK(model.param > 1.0,
                 "assign_edge_weights: zeta weights need gamma > 1");
      rng::BoundedZipfSampler zipf(model.param, model.wmax);
      for (std::size_t i = 0; i < g.num_edges(); ++i) {
        weights.push_back(zipf(rng));
      }
      break;
    }
    case WeightModel::Law::kGeometric: {
      PALU_CHECK(model.param > 0.0 && model.param <= 1.0,
                 "assign_edge_weights: geometric weights need 0 < q <= 1");
      for (std::size_t i = 0; i < g.num_edges(); ++i) {
        weights.push_back(rng::sample_geometric(rng, model.param));
      }
      break;
    }
  }
  return weights;
}

stats::DegreeHistogram link_weight_histogram(
    const std::vector<Count>& weights) {
  stats::DegreeHistogram h;
  for (const Count w : weights) h.add(w);
  return h;
}

stats::DegreeHistogram node_strength_histogram(
    const graph::Graph& g, const std::vector<Count>& weights) {
  PALU_CHECK(weights.size() == g.num_edges(),
             "node_strength_histogram: one weight per edge required");
  std::vector<Count> strength(g.num_nodes(), 0);
  const auto& edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    strength[edges[i].u] += weights[i];
    strength[edges[i].v] += weights[i];
  }
  return stats::DegreeHistogram::from_degrees(strength);
}

double predicted_strength_tail_exponent(double degree_alpha,
                                        const WeightModel& model) {
  if (model.law == WeightModel::Law::kZeta) {
    return std::min(degree_alpha, model.param);
  }
  return degree_alpha;  // light-tailed weights: degrees dominate
}

}  // namespace palu::core
