# Empty dependencies file for theory_consistency_test.
# This may be replaced when dependencies are built.
