// Sweep-throughput benchmark: fast path vs. legacy path, with a JSON
// artifact so the perf trajectory is tracked from PR 2 onward.
//
// Timing TU (tools/timing_files.txt): steady_clock reads time the two
// paths; the sweep itself is seed-driven and stays reproducible.
//
// Runs the same Monte-Carlo window sweep twice — once through the legacy
// per-window SparseCountMatrix path and once through the WindowAccumulator
// fast path — verifies the merged histograms are identical, and writes
// BENCH_sweep.json:
//
//   {
//     "bench": "sweep",
//     "config": {"windows", "nvalid", "nodes", "edges", "quantity",
//                "seed", "pool_threads"},
//     "legacy": {"seconds", "packets_per_sec",
//                "timings_cpu_ns": {"sampling", "accumulation", "binning"},
//                "timings_max_ns": {... slowest worker ...},
//                "metrics": {... obs registry snapshot for the run ...}},
//     "fast":   {... same shape ...},
//     "speedup": fast.packets_per_sec / legacy.packets_per_sec,
//     "identical": true|false
//   }
//
// Each run records into its own obs::Registry, so the metrics block is
// per-run (not cumulative across the two paths).
//
// Default config is the acceptance workload (64 windows × 1e6 packets);
// `--smoke` shrinks it to seconds so ctest can keep the binary honest.
// Exit code is non-zero when the two paths disagree.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "palu/cli/args.hpp"
#include "palu/palu.hpp"

namespace {

using namespace palu;

struct RunResult {
  double seconds = 0.0;
  double packets_per_sec = 0.0;
  traffic::SweepStageTimings timings;
  stats::DegreeHistogram merged;
  std::string metrics_json;  // this run's registry, already serialized
};

RunResult run_sweep(const graph::Graph& g, Count n_valid,
                    std::size_t windows, traffic::Quantity quantity,
                    std::uint64_t seed, ThreadPool& pool, bool fast_path) {
  obs::Registry registry;
  traffic::SweepOptions opts;
  opts.fast_path = fast_path;
  opts.metrics = &registry;
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep = traffic::sweep_windows(g, traffic::RateModel{}, n_valid,
                                      windows, quantity, seed, pool, opts);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.packets_per_sec =
      static_cast<double>(n_valid) * static_cast<double>(windows) /
      out.seconds;
  out.timings = sweep.timings;
  out.merged = std::move(sweep.merged);
  std::ostringstream metrics;
  obs::write_json(metrics, registry.snapshot());
  out.metrics_json = std::move(metrics).str();
  return out;
}

// Re-indents a serialized JSON document to sit at nesting depth 2.
std::string indent_block(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  for (const char c : json) {
    out += c;
    if (c == '\n') out += "  ";
  }
  while (!out.empty() && (out.back() == ' ' || out.back() == '\n')) {
    out.pop_back();
  }
  return out;
}

void write_run_json(std::ostream& out, const char* name,
                    const RunResult& r) {
  out << "  \"" << name << "\": {\"seconds\": " << r.seconds
      << ", \"packets_per_sec\": " << r.packets_per_sec
      << ",\n    \"timings_cpu_ns\": {\"sampling\": "
      << r.timings.sampling_cpu_ns
      << ", \"accumulation\": " << r.timings.accumulation_cpu_ns
      << ", \"binning\": " << r.timings.binning_cpu_ns
      << "},\n    \"timings_max_ns\": {\"sampling\": "
      << r.timings.sampling_max_ns
      << ", \"accumulation\": " << r.timings.accumulation_max_ns
      << ", \"binning\": " << r.timings.binning_max_ns
      << "},\n    \"metrics\": " << indent_block(r.metrics_json)
      << "},\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = cli::Args::parse(argc, argv, 1);
  const bool smoke = args.get_flag("smoke");
  const auto windows = static_cast<std::size_t>(
      args.get_int("windows", smoke ? 4 : 64));
  const auto n_valid =
      static_cast<Count>(args.get_int("nvalid", smoke ? 20000 : 1000000));
  const auto nodes = static_cast<NodeId>(
      args.get_int("nodes", smoke ? 20000 : 150000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 29));
  const std::string out_path =
      args.get_string("out", "BENCH_sweep.json");

  const auto params = core::PaluParams::solve_hubs(6.0, 0.35, 0.2, 2.3,
                                                   1.0);
  Rng rng(17);
  const auto net = core::generate_underlying(params, nodes, rng);
  const auto quantity = traffic::Quantity::kUndirectedDegree;
  ThreadPool pool;  // default: one worker per hardware thread

  std::printf("bench_sweep: %zu windows x %llu packets, %llu nodes, "
              "%zu edges, %zu pool threads\n",
              windows, static_cast<unsigned long long>(n_valid),
              static_cast<unsigned long long>(net.graph.num_nodes()),
              net.graph.num_edges(), pool.size());

  const RunResult legacy = run_sweep(net.graph, n_valid, windows, quantity,
                                     seed, pool, /*fast_path=*/false);
  const RunResult fast = run_sweep(net.graph, n_valid, windows, quantity,
                                   seed, pool, /*fast_path=*/true);
  const bool identical = legacy.merged.sorted() == fast.merged.sorted() &&
                         legacy.merged.total() == fast.merged.total();
  const double speedup = fast.packets_per_sec / legacy.packets_per_sec;

  std::printf("legacy: %.3fs (%.2fM packets/s)\n", legacy.seconds,
              legacy.packets_per_sec / 1e6);
  std::printf("fast:   %.3fs (%.2fM packets/s)\n", fast.seconds,
              fast.packets_per_sec / 1e6);
  std::printf("speedup: %.2fx, identical: %s\n", speedup,
              identical ? "true" : "false");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"sweep\",\n";
  out << "  \"config\": {\"windows\": " << windows
      << ", \"nvalid\": " << n_valid << ", \"nodes\": " << nodes
      << ", \"edges\": " << net.graph.num_edges() << ", \"quantity\": \""
      << traffic::quantity_name(quantity) << "\", \"seed\": " << seed
      << ", \"pool_threads\": " << pool.size() << "},\n";
  write_run_json(out, "legacy", legacy);
  write_run_json(out, "fast", fast);
  out << "  \"speedup\": " << speedup << ",\n";
  out << "  \"identical\": " << (identical ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: fast path diverged from the legacy path\n");
    return 1;
  }
  return 0;
}
