file(REMOVE_RECURSE
  "CMakeFiles/botnet_census.dir/botnet_census.cpp.o"
  "CMakeFiles/botnet_census.dir/botnet_census.cpp.o.d"
  "botnet_census"
  "botnet_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botnet_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
