// The analysis passes behind palu_lint.  Each pass is a pure function
// from a FileScan (plus whatever cross-file state it declares) to a list
// of violations; the driver owns file collection, suppression filtering,
// and reporting.  See DESIGN.md §5h for the rule catalog.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"
#include "analyze/token.hpp"

namespace palu::analyze {

// ------------------------------------------------------------ core rules
//
// The five regex-era rules, re-grounded on the token stream: string and
// comment contents can no longer trip them, and `::now()` matches however
// it is spelled token-wise.

struct CoreRuleOptions {
  const std::set<std::string>* registry = nullptr;  ///< failpoint names
  std::string registry_path;
};

void run_core_rules(const FileScan& scan, const CoreRuleOptions& opts,
                    std::set<std::string>* seen_failpoints,
                    std::vector<Violation>* out);

// --------------------------------------------------------- include graph
//
// The declared layer DAG (tools/layers.txt): one line per directory,
//   <dir>: <allowed direct deps...>
// listed in topological order.  A file under include/palu/<dir>/ or
// src/<dir>/ may #include "palu/<dep>/..." only for declared deps (plus
// its own directory).  The declaration itself is validated: unknown or
// stale directories and cycles are violations, mirroring the failpoint
// and timing registries.

struct LayerConfig {
  /// dir -> allowed direct dependencies.
  std::map<std::string, std::set<std::string>> deps;
  /// Declaration order, for the DOT dump.
  std::vector<std::string> order;
  std::string path;
  bool loaded = false;
};

bool load_layers(const std::string& path, LayerConfig* config);

/// Checks the declaration against the tree rooted at `repo_root`:
/// every declared name must exist as include/palu/<dir> or src/<dir>
/// (stale entries are violations), every dep must itself be declared,
/// every on-disk palu directory must be declared, and the declared graph
/// must be acyclic.
void validate_layers(const LayerConfig& config,
                     const std::filesystem::path& repo_root,
                     std::vector<Violation>* out);

/// Maps a path to its layer directory ("" when the file is outside the
/// layered tree: tools, bench, tests, the umbrella header).
std::string layer_dir_of(const std::filesystem::path& path,
                         const LayerConfig& config);

/// Observed `#include "palu/..."` edges: (from dir, to dir) -> count.
using EdgeSet = std::map<std::pair<std::string, std::string>, std::size_t>;

void check_includes(const FileScan& scan, const LayerConfig& config,
                    EdgeSet* edges, std::vector<Violation>* out);

/// Graphviz DOT rendering of the observed include graph, one node per
/// declared directory, edges labelled with include counts.
std::string dot_include_graph(const LayerConfig& config,
                              const EdgeSet& edges);

// ------------------------------------------------------- lock discipline
//
// Token-level lock-discipline heuristic (DESIGN.md §5h):
//   lock-guarded-by   a class with a std::mutex / std::shared_mutex
//                     member must annotate every sibling data member
//                     with PALU_GUARDED_BY / PALU_PT_GUARDED_BY
//                     (std::atomic, condition variables, threads, and
//                     const members are exempt by construction);
//   lock-discipline   a method of such a class that references a guarded
//                     member must take a lock in its body (lock_guard /
//                     unique_lock / scoped_lock / shared_lock / .lock())
//                     or carry PALU_REQUIRES; constructors and
//                     destructors are exempt (no concurrent access
//                     before/after the object's lifetime).

struct MethodBody {
  std::string class_name;
  std::string name;
  std::size_t line = 0;        ///< of the method header
  std::size_t body_begin = 0;  ///< token index past the opening '{'
  std::size_t body_end = 0;    ///< token index of the closing '}'
  bool has_requires = false;
  bool ctor_dtor = false;
};

struct ClassInfo {
  std::string name;
  std::vector<std::string> mutex_members;
  std::set<std::string> guarded_members;
  /// Unannotated data members; escalated to violations only when the
  /// class turns out to hold a mutex.
  std::vector<Violation> unguarded;
};

/// Phase A: collects class definitions and method bodies (in-class and
/// out-of-line) from one file into the cross-file registry.
void scan_classes(const FileScan& scan,
                  std::map<std::string, ClassInfo>* classes,
                  std::vector<MethodBody>* methods);

/// Phase B: emits lock-guarded-by violations for `scan`'s classes and
/// lock-discipline violations for `methods` defined in `scan`.
void check_lock_discipline(const FileScan& scan,
                           const std::map<std::string, ClassInfo>& classes,
                           const std::vector<MethodBody>& methods,
                           std::vector<Violation>* out);

// ------------------------------------------------------------- hot paths
//
// Registry name-lookups (`x.counter(...)` / `x->histogram(...)` whose
// first argument is a metric *name* — a string literal or an
// obs::names:: constant) take the registry mutex and walk a map; the
// PR-4 convention hoists them out of hot loops and keeps only the
// returned handle's relaxed-atomic recording inside.  This pass bans the
// lookup form lexically inside for/while/do bodies.  Calls whose first
// argument is not a name (e.g. WindowAccumulator::histogram(quantity))
// are not lookups and are ignored.

void check_hot_paths(const FileScan& scan, std::vector<Violation>* out);

}  // namespace palu::analyze
