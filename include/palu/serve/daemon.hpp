// The crash-only streaming estimation daemon behind `palu_tool serve`.
//
// Three actors, two threads plus the caller:
//
//   ingest thread:  tails the input (file tail / pipe / stdin) through a
//                   TraceTailReader and pushes TailRecords into the
//                   bounded queue under the configured backpressure
//                   policy.
//   fit thread:     pops records into a WindowAccumulator; at every N_V
//                   boundary it histograms the window, refits both lanes
//                   of the WindowedStreamingEstimator (warm-started),
//                   publishes one result line, and checkpoints.
//   supervisor:     the caller's thread inside run() — polls for
//                   signals, enforces the drain deadline, writes metrics
//                   snapshots on an interval, and finalizes state.
//
// Both worker stages run under run_stage(): a palu::DataError is fatal
// (bad input, exit 3), any other failure restarts the stage with capped
// exponential backoff, and a stage that keeps failing without making
// progress gives the daemon up with exit 1.  Fit failures are not stage
// failures: the estimator degrades to stale-but-tagged parameters and
// the service keeps running.  Four failpoints (serve.ingest, serve.fit,
// serve.checkpoint, serve.restore) make every one of those paths
// deterministically testable.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "palu/core/streaming.hpp"
#include "palu/io/tail.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/serve/checkpoint.hpp"
#include "palu/serve/options.hpp"
#include "palu/serve/queue.hpp"
#include "palu/store/writer.hpp"
#include "palu/traffic/window_accumulator.hpp"

namespace palu::serve {

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeOptions opts);

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Runs the daemon to completion (EOF, --max-windows, signal, or a
  /// fatal failure).  Returns the process exit code under the documented
  /// contract: 0 clean, 1 a stage gave up after max_stage_restarts,
  /// 3 unrecoverable input data error.
  int run();

  /// Asks the daemon to drain and exit (what SIGINT/SIGTERM trigger);
  /// callable from any thread.
  void request_stop() noexcept { stop_.store(true); }

  /// Result lines published so far (monotone while running).
  std::uint64_t windows_published() const noexcept {
    return published_.load();
  }

  /// Estimator state; stable only after run() returns.
  const core::WindowedStreamingEstimator& estimator() const noexcept {
    return estimator_;
  }

  /// Why the daemon exited non-zero (empty on clean exit).
  const std::string& fatal_message() const noexcept {
    return fatal_message_;
  }

 private:
  bool stopping() const noexcept;
  void fatal(int code, const std::string& message);
  void run_stage(const char* name, obs::Counter& restarts,
                 const std::function<std::uint64_t()>& progress,
                 const std::function<void()>& body);
  void interruptible_sleep_ms(double ms);

  void ingest_stage();
  void ingest_body();
  bool deliver(std::vector<io::TailRecord>& records);

  void fit_stage();
  void fit_body();
  void boundary();
  void publish_line(std::size_t index, std::uint64_t offset,
                    const core::StreamingRefit& refit,
                    const char* degraded);

  Checkpoint make_checkpoint() const;
  void do_checkpoint();
  void try_restore();
  void write_snapshot();

  void supervise();

  ServeOptions opts_;
  obs::Registry& registry_;
  core::WindowedStreamingEstimator estimator_;
  traffic::WindowAccumulator acc_;
  BoundedRecordQueue queue_;
  std::unique_ptr<io::TraceTailReader> reader_;

  // Cross-thread coordination.
  std::atomic<bool> stop_{false};
  std::atomic<bool> ingest_done_{false};
  std::atomic<bool> fit_done_{false};
  std::atomic<int> fatal_exit_{0};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> records_pushed_{0};

  // Fit-thread state (touched by run() only before start / after join).
  std::uint64_t window_fill_ = 0;
  std::uint64_t packets_total_ = 0;
  std::uint64_t last_offset_ = 0;
  std::uint64_t last_boundary_offset_ = 0;
  std::uint64_t windows_since_checkpoint_ = 0;
  std::optional<core::StreamingRefit> last_published_;
  std::uint64_t resume_offset_ = 0;
  std::string fatal_message_;

  // Window recorder (--record): owned by the fit thread after start;
  // reset on the first append failure so recording can never take the
  // daemon down.  The export buffer is fit-thread scratch.
  std::unique_ptr<store::WindowStoreWriter> recorder_;
  std::vector<traffic::EdgePacketCounts> record_buf_;

  // Metric handles, resolved once against the selected registry.
  obs::Counter& packets_counter_;
  obs::Counter& windows_counter_;
  obs::Counter& stale_counter_;
  obs::Counter& deadline_counter_;
  obs::Gauge& queue_depth_gauge_;
  obs::Counter& drop_oldest_counter_;
  obs::Counter& drop_newest_counter_;
  obs::Counter& ingest_restarts_;
  obs::Counter& fit_restarts_;
  obs::Counter& checkpoint_writes_;
  obs::Counter& checkpoint_failures_;
  obs::Gauge& checkpoint_age_gauge_;
  obs::Counter& restore_ok_;
  obs::Counter& restore_failed_;
  obs::Gauge& staleness_gauge_;
  obs::Counter& snapshot_writes_;
};

}  // namespace palu::serve
