// Deterministic fault injection for ingest and estimation testing.
//
// Two layers:
//
//  * A trace corruptor that damages a clean "src dst" text capture the way
//    real trunk logs get damaged — flipped bits, truncated lines,
//    duplicated / dropped records, interleaved garbage, negative ids,
//    uint64-overflowing ids — with every decision drawn from a seeded RNG,
//    so a corruption run is exactly reproducible.
//
//  * Seeded failpoints (palu/common/failpoint.hpp) that force
//    ConvergenceError inside iterative routines ("fit.levmar",
//    "fit.nelder_mead") and sweep workers ("traffic.sweep_window").
//
// Header-only and test-oriented: nothing here is linked into the library
// proper, and the umbrella header deliberately does not include it.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "palu/common/failpoint.hpp"
#include "palu/rng/xoshiro.hpp"

namespace palu::testing {

/// Which damage kinds the corruptor may apply (all on by default).
struct CorruptionOptions {
  /// Per-line probability of being selected for corruption.
  double rate = 0.05;
  bool bit_flips = true;    ///< flip one bit of one byte in the line
  bool truncation = true;   ///< cut the line at a random byte
  bool duplication = true;  ///< emit the (valid) line twice
  bool drops = true;        ///< omit the line entirely
  bool garbage = true;      ///< replace with a line of printable junk
  bool negatives = true;    ///< prefix the line with '-'
  bool overflow = true;     ///< left-pad the first token past uint64 range
};

/// What the corruptor did, for asserting against IngestReports.
struct CorruptionSummary {
  std::size_t lines_seen = 0;       ///< substantive input lines
  std::size_t lines_corrupted = 0;  ///< damaged in place (still emitted)
  std::size_t lines_duplicated = 0;
  std::size_t lines_dropped = 0;    ///< omitted from the output
  std::size_t garbage_lines = 0;    ///< junk lines emitted
};

namespace detail {

inline std::string make_garbage_line(Rng& rng) {
  // No '#' (would read as a comment) and no digits (could parse as ids):
  // every garbage line must be substantive and unparseable.
  static constexpr std::string_view kJunk = "!@$%^&*()_+abcdefXYZ<>?;:~";
  const std::size_t len = 3 + rng.uniform_index(20);
  std::string line;
  line.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    line.push_back(kJunk[rng.uniform_index(kJunk.size())]);
  }
  return line;
}

}  // namespace detail

/// Corrupts a clean trace (or edge-list) text deterministically: the same
/// (input, options, seed) triple always yields the same output.  Blank and
/// '#'-comment lines pass through untouched so the damage lands on
/// records, like it does in practice.
inline std::string corrupt_trace(const std::string& clean,
                                 const CorruptionOptions& opts,
                                 std::uint64_t seed,
                                 CorruptionSummary* summary = nullptr) {
  Rng rng(seed);
  CorruptionSummary local;
  std::ostringstream out;
  std::istringstream in(clean);

  // Collect the enabled damage kinds once so the per-line draw is uniform
  // over what is actually allowed.
  enum Kind { kFlip, kTruncate, kDuplicate, kDrop, kGarbage, kNegative,
              kOverflow };
  std::vector<Kind> kinds;
  if (opts.bit_flips) kinds.push_back(kFlip);
  if (opts.truncation) kinds.push_back(kTruncate);
  if (opts.duplication) kinds.push_back(kDuplicate);
  if (opts.drops) kinds.push_back(kDrop);
  if (opts.garbage) kinds.push_back(kGarbage);
  if (opts.negatives) kinds.push_back(kNegative);
  if (opts.overflow) kinds.push_back(kOverflow);

  std::string line;
  while (std::getline(in, line)) {
    const bool substantive =
        !line.empty() && line.find_first_not_of(" \t\r") !=
                             std::string::npos &&
        line[line.find_first_not_of(" \t\r")] != '#';
    if (!substantive || kinds.empty() || !rng.bernoulli(opts.rate)) {
      out << line << '\n';
      continue;
    }
    ++local.lines_seen;
    switch (kinds[rng.uniform_index(kinds.size())]) {
      case kFlip: {
        std::string damaged = line;
        const std::size_t pos = rng.uniform_index(damaged.size());
        damaged[pos] = static_cast<char>(
            damaged[pos] ^ static_cast<char>(1 << rng.uniform_index(7)));
        out << damaged << '\n';
        ++local.lines_corrupted;
        break;
      }
      case kTruncate: {
        const std::size_t keep = rng.uniform_index(line.size());
        out << line.substr(0, keep) << '\n';
        ++local.lines_corrupted;
        break;
      }
      case kDuplicate:
        out << line << '\n' << line << '\n';
        ++local.lines_duplicated;
        break;
      case kDrop:
        ++local.lines_dropped;
        break;
      case kGarbage:
        out << detail::make_garbage_line(rng) << '\n';
        ++local.garbage_lines;
        break;
      case kNegative:
        out << '-' << line << '\n';
        ++local.lines_corrupted;
        break;
      case kOverflow:
        // 25 leading digits overflow uint64 no matter what follows.
        out << "9999999999999999999999999" << line << '\n';
        ++local.lines_corrupted;
        break;
    }
  }
  if (summary != nullptr) *summary = local;
  return out.str();
}

/// Arms the failpoint that makes Levenberg–Marquardt diverge.
inline void force_levmar_divergence(int fires = -1, int skip = 0) {
  failpoints::arm("fit.levmar", fires, skip);
}

/// Arms the failpoint that makes Nelder–Mead diverge.
inline void force_nelder_mead_divergence(int fires = -1, int skip = 0) {
  failpoints::arm("fit.nelder_mead", fires, skip);
}

/// Arms the failpoint inside sweep_windows workers.  With a single-thread
/// pool, `skip = k` fails exactly window k.
inline void force_sweep_window_failure(int fires = 1, int skip = 0) {
  failpoints::arm("traffic.sweep_window", fires, skip);
}

/// RAII teardown: disarms every failpoint on scope exit.
class FailpointGuard {
 public:
  FailpointGuard() = default;
  ~FailpointGuard() { failpoints::disarm_all(); }
  FailpointGuard(const FailpointGuard&) = delete;
  FailpointGuard& operator=(const FailpointGuard&) = delete;
};

}  // namespace palu::testing
