// Property-style fault-injection suite: corrupted traces through the
// policy-aware readers, seeded failpoints through the degraded-mode fit
// ladder and the window sweep.  Everything here is deterministic — the
// corruptor and the failpoints both run off fixed seeds.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/common/failpoint.hpp"
#include "palu/common/result.hpp"
#include "palu/core/estimate.hpp"
#include "palu/graph/generators.hpp"
#include "palu/io/csv.hpp"
#include "palu/io/trace.hpp"
#include "palu/math/gamma.hpp"
#include "palu/stats/histogram.hpp"
#include "palu/testing/fault_injection.hpp"
#include "palu/traffic/window_pipeline.hpp"

namespace palu {
namespace {

// A clean synthetic capture: 400 "src dst" lines with a comment header,
// ids drawn deterministically.
std::string clean_trace_text() {
  std::ostringstream out;
  out << "# palu trace\n";
  Rng rng(1234);
  for (int i = 0; i < 400; ++i) {
    out << rng.uniform_index(500) << ' ' << rng.uniform_index(500) << '\n';
  }
  return out.str();
}

io::TraceReadResult read_with(const std::string& text, ErrorPolicy policy,
                              std::size_t budget = ~std::size_t{0}) {
  std::istringstream in(text);
  IngestOptions opts;
  opts.policy = policy;
  opts.max_bad_lines = budget;
  return io::read_trace(in, opts);
}

// ------------------------------------------------------------ corruptor

TEST(FaultInjection, CorruptorIsDeterministicForFixedSeed) {
  const std::string clean = clean_trace_text();
  testing::CorruptionOptions opts;
  opts.rate = 0.3;
  testing::CorruptionSummary s1, s2;
  const std::string a = testing::corrupt_trace(clean, opts, 99, &s1);
  const std::string b = testing::corrupt_trace(clean, opts, 99, &s2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(s1.lines_seen, s2.lines_seen);
  EXPECT_GT(s1.lines_seen, 0u);
  // A different seed damages different lines.
  EXPECT_NE(a, testing::corrupt_trace(clean, opts, 100));
}

TEST(FaultInjection, CorruptorLeavesCommentsAndBlanksAlone) {
  testing::CorruptionOptions opts;
  opts.rate = 1.0;  // every substantive line is damaged
  testing::CorruptionSummary s;
  const std::string out =
      testing::corrupt_trace("# header\n\n1 2\n", opts, 5, &s);
  EXPECT_EQ(s.lines_seen, 1u);
  EXPECT_EQ(out.rfind("# header\n\n", 0), 0u);
}

// ----------------------------------------------------- ingest policies

TEST(FaultInjection, StrictPolicyThrowsWithLineNumber) {
  testing::CorruptionOptions opts;
  opts.rate = 1.0;
  // Negative-only corruption: every record line becomes "-src dst".
  opts.bit_flips = opts.truncation = opts.duplication = opts.drops =
      opts.garbage = opts.overflow = false;
  const std::string bad =
      testing::corrupt_trace(clean_trace_text(), opts, 7);
  try {
    read_with(bad, ErrorPolicy::kStrict);
    FAIL() << "strict ingest of a corrupt trace must throw";
  } catch (const DataError& e) {
    const std::string what = e.what();
    // First record sits on line 2 (line 1 is the comment header).
    EXPECT_NE(what.find("malformed line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("negative"), std::string::npos) << what;
  }
}

TEST(FaultInjection, ReportInvariantHoldsAcrossSeedsAndPolicies) {
  const std::string clean = clean_trace_text();
  testing::CorruptionOptions opts;
  opts.rate = 0.2;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::string bad = testing::corrupt_trace(clean, opts, seed);
    for (const ErrorPolicy policy :
         {ErrorPolicy::kSkip, ErrorPolicy::kRepair}) {
      const auto result = read_with(bad, policy);
      const IngestReport& r = result.report;
      // The invariant: every substantive line is kept, repaired or
      // dropped — nothing double-counted, nothing lost.
      EXPECT_EQ(r.lines_read,
                r.records_kept + r.lines_repaired + r.lines_dropped)
          << "seed " << seed << " policy " << to_string(policy);
      EXPECT_EQ(result.packets.size(), r.records_kept + r.lines_repaired);
      if (policy == ErrorPolicy::kSkip) {
        EXPECT_EQ(r.lines_repaired, 0u);
      }
      if (r.lines_dropped > 0) {
        ASSERT_TRUE(r.first_error.has_value());
        EXPECT_GE(r.first_error->line_number, 1u);
        EXPECT_FALSE(r.first_error->message.empty());
      }
    }
  }
}

TEST(FaultInjection, SkipReadsAreDeterministicForFixedSeed) {
  const std::string bad = testing::corrupt_trace(
      clean_trace_text(), testing::CorruptionOptions{}, 42);
  const auto a = read_with(bad, ErrorPolicy::kSkip);
  const auto b = read_with(bad, ErrorPolicy::kSkip);
  EXPECT_EQ(a.packets.size(), b.packets.size());
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.report.lines_dropped, b.report.lines_dropped);
}

TEST(FaultInjection, RepairKeepsAtLeastAsManyRecordsAsSkip) {
  testing::CorruptionOptions opts;
  opts.rate = 0.3;
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const std::string bad =
        testing::corrupt_trace(clean_trace_text(), opts, seed);
    const auto skip = read_with(bad, ErrorPolicy::kSkip);
    const auto repair = read_with(bad, ErrorPolicy::kRepair);
    EXPECT_GE(repair.packets.size(), skip.packets.size()) << "seed "
                                                          << seed;
    EXPECT_LE(repair.report.lines_dropped, skip.report.lines_dropped);
  }
}

TEST(FaultInjection, ErrorBudgetExhaustionThrowsUnderSkip) {
  testing::CorruptionOptions opts;
  opts.rate = 0.5;
  const std::string bad =
      testing::corrupt_trace(clean_trace_text(), opts, 3);
  // Sanity: unlimited budget sees more than two bad lines.
  ASSERT_GT(read_with(bad, ErrorPolicy::kSkip).report.lines_dropped, 2u);
  try {
    read_with(bad, ErrorPolicy::kSkip, /*budget=*/2);
    FAIL() << "budget of 2 must not survive a 50%-corrupt trace";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("error budget"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultInjection, CleanInputIsCleanUnderEveryPolicy) {
  const std::string clean = clean_trace_text();
  std::istringstream legacy_in(clean);
  const auto legacy = io::read_trace(legacy_in);
  for (const ErrorPolicy policy : {ErrorPolicy::kStrict, ErrorPolicy::kSkip,
                                   ErrorPolicy::kRepair}) {
    const auto result = read_with(clean, policy);
    EXPECT_TRUE(result.report.clean());
    EXPECT_EQ(result.report.records_kept, 400u);
    EXPECT_EQ(result.packets, legacy);
  }
}

TEST(FaultInjection, FivePercentCorruptTraceStillFitsUnderSkip) {
  // The acceptance scenario: a 5%-corrupt capture ingests under kSkip,
  // reports its drops, and the surviving records still histogram.
  testing::CorruptionOptions opts;
  opts.rate = 0.05;
  const std::string bad =
      testing::corrupt_trace(clean_trace_text(), opts, 2026);
  const auto result = read_with(bad, ErrorPolicy::kSkip);
  EXPECT_FALSE(result.report.clean());
  EXPECT_GT(result.packets.size(), 350u);
  stats::DegreeHistogram fan_out;
  std::map<NodeId, Count> out_deg;
  for (const auto& p : result.packets) ++out_deg[p.src];
  for (const auto& [node, deg] : out_deg) fan_out.add(deg);
  EXPECT_GT(fan_out.total(), 0u);
}

TEST(FaultInjection, EdgeListAndCsvReadersShareTheInvariant) {
  testing::CorruptionOptions opts;
  opts.rate = 0.25;
  {
    std::ostringstream edges;
    edges << "# nodes=40\n";
    for (int u = 0; u < 39; ++u) edges << u << ' ' << (u + 1) << '\n';
    const std::string bad = testing::corrupt_trace(edges.str(), opts, 5);
    std::istringstream in(bad);
    IngestOptions io_opts;
    io_opts.policy = ErrorPolicy::kRepair;
    const auto result = io::read_edge_list(in, io_opts);
    const IngestReport& r = result.report;
    EXPECT_EQ(r.lines_read,
              r.records_kept + r.lines_repaired + r.lines_dropped);
    EXPECT_EQ(result.graph.num_edges(), r.records_kept + r.lines_repaired);
  }
  {
    std::ostringstream csv;
    csv << "# histogram\n";
    for (int d = 1; d <= 60; ++d) csv << d << ',' << (200 / d) << '\n';
    const std::string bad = testing::corrupt_trace(csv.str(), opts, 6);
    std::istringstream in(bad);
    IngestOptions io_opts;
    io_opts.policy = ErrorPolicy::kSkip;
    const auto result = io::read_histogram_csv(in, io_opts);
    const IngestReport& r = result.report;
    EXPECT_EQ(r.lines_read,
              r.records_kept + r.lines_repaired + r.lines_dropped);
  }
}

// ------------------------------------------------------------ failpoints

TEST(FaultInjection, FailpointFiresOnScheduleAndDisarms) {
  testing::FailpointGuard guard;
  failpoints::arm("test.site", /*fires=*/2, /*skip=*/1);
  auto hit = []() { PALU_FAILPOINT("test.site"); };
  EXPECT_NO_THROW(hit());                  // skipped
  EXPECT_THROW(hit(), ConvergenceError);   // fire 1
  EXPECT_THROW(hit(), ConvergenceError);   // fire 2
  EXPECT_NO_THROW(hit());                  // window exhausted
  EXPECT_EQ(failpoints::hit_count("test.site"), 4);
  failpoints::disarm_all();
  EXPECT_FALSE(failpoints::any_armed());
  EXPECT_NO_THROW(hit());
}

// An exact simplified-PALU histogram (same fixture as the estimate tests):
// mass(1) = c + l + u·μ(e^μ+1), mass(d≥2) = c·d^{−α} + u·μ^d/d!.
stats::DegreeHistogram exact_law_histogram() {
  const double c = 0.30, l = 0.25, u = 0.04, mu = 2.5, alpha = 2.2;
  stats::DegreeHistogram hist;
  const double scale = 4.0e9;
  const double p1 = c + l + u * mu * (std::exp(mu) + 1.0);
  hist.add(1, static_cast<Count>(std::llround(p1 * scale)));
  for (Degree d = 2; d <= (1u << 14); ++d) {
    double share = c * std::pow(static_cast<double>(d), -alpha);
    share += u * std::exp(static_cast<double>(d) * std::log(mu) -
                          math::log_factorial(d));
    const auto count = static_cast<Count>(std::llround(share * scale));
    if (count > 0) hist.add(d, count);
  }
  return hist;
}

core::PaluFitOptions exact_law_fit_options() {
  core::PaluFitOptions opts;
  opts.tail_min = 16;  // keep the μ≈2.5 bump out of the tail fit
  return opts;
}

TEST(FaultInjection, ForcedLevMarDivergenceStillYieldsTaggedFit) {
  const auto hist = exact_law_histogram();
  const auto clean = core::robust_fit_palu(hist, exact_law_fit_options());
  ASSERT_TRUE(clean.ok());

  testing::FailpointGuard guard;
  testing::force_levmar_divergence();
  const auto degraded =
      core::robust_fit_palu(hist, exact_law_fit_options());
  ASSERT_TRUE(degraded.ok());
  EXPECT_NE(degraded.stage, fit::RobustStage::kLevMar);
  // The acceptance bound: the degraded path stays within 10% of the
  // clean-path parameters.
  EXPECT_NEAR(degraded.fit.alpha, clean.fit.alpha,
              0.10 * clean.fit.alpha);
  EXPECT_NEAR(degraded.fit.c, clean.fit.c, 0.10 * clean.fit.c);
  EXPECT_NEAR(degraded.fit.mu, clean.fit.mu, 0.10 * clean.fit.mu);
  // The LM stage must be present in the diagnostics as a failure.
  bool saw_levmar_failure = false;
  for (const auto& d : degraded.diagnostics) {
    if (d.stage == fit::RobustStage::kLevMar && !d.succeeded &&
        !d.error.empty()) {
      saw_levmar_failure = true;
    }
  }
  EXPECT_TRUE(saw_levmar_failure);
}

TEST(FaultInjection, BothOptimizersForcedDownFallsBackToMoments) {
  const auto hist = exact_law_histogram();
  const auto base = core::fit_palu(hist, exact_law_fit_options());

  testing::FailpointGuard guard;
  testing::force_levmar_divergence();
  testing::force_nelder_mead_divergence();
  const auto degraded =
      core::robust_fit_palu(hist, exact_law_fit_options());
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded.stage, fit::RobustStage::kMoments);
  // kMoments is the staged pipeline untouched: exact equality.
  EXPECT_EQ(degraded.fit.alpha, base.alpha);
  EXPECT_EQ(degraded.fit.c, base.c);
  EXPECT_EQ(degraded.fit.mu, base.mu);
  EXPECT_EQ(degraded.fit.u, base.u);
  EXPECT_EQ(degraded.fit.l, base.l);
}

TEST(FaultInjection, UnfittableHistogramDegradesInsteadOfThrowing) {
  // Empty and single-point histograms are bad data, not crashes: the
  // robust driver reports kFailed with the reason instead of throwing.
  const auto empty = core::robust_fit_palu(stats::DegreeHistogram{});
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.stage, fit::RobustStage::kFailed);
  EXPECT_FALSE(empty.error.empty());

  stats::DegreeHistogram lone;
  lone.add(3, 10);
  const auto thin = core::robust_fit_palu(lone);
  EXPECT_FALSE(thin.ok());
  EXPECT_FALSE(thin.error.empty());
}

TEST(FaultInjection, DegradedFitIsDeterministic) {
  const auto hist = exact_law_histogram();
  testing::FailpointGuard guard;
  testing::force_levmar_divergence();
  const auto a = core::robust_fit_palu(hist, exact_law_fit_options());
  failpoints::disarm_all();
  testing::force_levmar_divergence();
  const auto b = core::robust_fit_palu(hist, exact_law_fit_options());
  EXPECT_EQ(a.stage, b.stage);
  EXPECT_EQ(a.fit.alpha, b.fit.alpha);
  EXPECT_EQ(a.fit.mu, b.fit.mu);
}

// ---------------------------------------------------------- window sweep

TEST(FaultInjection, SweepFailureCarriesWindowIndex) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.01);
  ThreadPool pool(1);  // FIFO pool: windows execute in index order
  testing::FailpointGuard guard;
  testing::force_sweep_window_failure(/*fires=*/1, /*skip=*/2);
  try {
    traffic::sweep_windows(g, traffic::RateModel{}, 1000, 6,
                           traffic::Quantity::kSourceFanOut, 42, pool);
    FAIL() << "strict sweep must rethrow the window failure";
  } catch (const traffic::SweepWindowError& e) {
    EXPECT_EQ(e.window(), 2u);
    EXPECT_NE(std::string(e.what()).find("window 2"), std::string::npos);
  }
}

TEST(FaultInjection, SweepBudgetToleratesBadWindows) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.01);
  ThreadPool pool(2);
  testing::FailpointGuard guard;
  testing::force_sweep_window_failure(/*fires=*/2, /*skip=*/0);
  traffic::SweepOptions opts;
  opts.max_failed_windows = 2;
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, 1000, 8,
      traffic::Quantity::kSourceFanOut, 42, pool, opts);
  EXPECT_EQ(sweep.failures.size(), 2u);
  EXPECT_EQ(sweep.windows, 6u);
  EXPECT_EQ(sweep.windows_skipped, 0u);
  EXPECT_FALSE(sweep.cancelled);
  for (const auto& f : sweep.failures) {
    EXPECT_LT(f.window, 8u);
    EXPECT_FALSE(f.error.empty());
  }
}

TEST(FaultInjection, SweepBudgetOverflowRethrowsWithContext) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.01);
  ThreadPool pool(2);
  testing::FailpointGuard guard;
  testing::force_sweep_window_failure(/*fires=*/4, /*skip=*/0);
  traffic::SweepOptions opts;
  opts.max_failed_windows = 1;
  try {
    traffic::sweep_windows(g, traffic::RateModel{}, 1000, 8,
                           traffic::Quantity::kSourceFanOut, 42, pool,
                           opts);
    FAIL() << "4 failures against a budget of 1 must throw";
  } catch (const traffic::SweepWindowError& e) {
    EXPECT_NE(std::string(e.what()).find("budget 1"), std::string::npos)
        << e.what();
  }
}

TEST(FaultInjection, SweepCancellationReturnsPartialResult) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.01);
  ThreadPool pool(2);
  std::atomic<bool> cancel{true};  // cancelled before any window starts
  traffic::SweepOptions opts;
  opts.cancel = &cancel;
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, 1000, 6,
      traffic::Quantity::kSourceFanOut, 42, pool, opts);
  EXPECT_TRUE(sweep.cancelled);
  EXPECT_EQ(sweep.windows, 0u);
  EXPECT_EQ(sweep.windows_skipped, 6u);
  EXPECT_TRUE(sweep.failures.empty());
}

TEST(FaultInjection, SweepWithoutFaultsMatchesStrictOverload) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.01);
  ThreadPool pool(3);
  const auto strict = traffic::sweep_windows(
      g, traffic::RateModel{}, 2000, 4,
      traffic::Quantity::kSourceFanOut, 9, pool);
  traffic::SweepOptions opts;
  opts.max_failed_windows = 3;
  const auto tolerant = traffic::sweep_windows(
      g, traffic::RateModel{}, 2000, 4,
      traffic::Quantity::kSourceFanOut, 9, pool, opts);
  EXPECT_EQ(strict.merged.total(), tolerant.merged.total());
  EXPECT_EQ(strict.max_value, tolerant.max_value);
  EXPECT_TRUE(tolerant.failures.empty());
}

}  // namespace
}  // namespace palu
