// Kolmogorov–Smirnov tests with asymptotic p-values.
//
// Complements the CSN bootstrap: the Kolmogorov distribution gives a fast
// (asymptotic, slightly conservative for discrete data) significance level
// for an observed KS distance, and the two-sample variant answers the
// operational question "did the traffic distribution change between these
// two windows?" without any model.
#pragma once

#include <cmath>

#include "palu/common/types.hpp"
#include "palu/stats/distribution.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::fit {

/// Kolmogorov survival function Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²};
/// the limiting P[√n·D_n > λ].  Q(0) = 1, decreasing to 0.
double kolmogorov_survival(double lambda);

struct KsTestResult {
  double statistic = 0.0;  // sup |F₁ − F₂|
  double p_value = 1.0;    // asymptotic, conservative for discrete data
  double effective_n = 0.0;
};

/// One-sample test of a histogram against a model cdf callable.
template <typename ModelCdf>
KsTestResult ks_test_one_sample(const stats::DegreeHistogram& h,
                                ModelCdf&& cdf) {
  const auto dist = stats::EmpiricalDistribution::from_histogram(h);
  KsTestResult out;
  out.statistic = stats::ks_distance(dist, cdf);
  out.effective_n = static_cast<double>(dist.sample_size());
  out.p_value =
      kolmogorov_survival(std::sqrt(out.effective_n) * out.statistic);
  return out;
}

/// Two-sample test between histograms (effective n = n₁n₂/(n₁+n₂)).
KsTestResult ks_test_two_sample(const stats::DegreeHistogram& a,
                                const stats::DegreeHistogram& b);

}  // namespace palu::fit
