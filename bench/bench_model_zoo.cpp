// Section VII — "determining if there is a better fitting model than the
// Zipf–Mandelbrot distribution".
//
// Regenerates the model-selection experiment the conclusion calls for:
// fit the whole discrete model zoo to (a) a PALU observed degree sample,
// (b) a webcrawl-style core-only sample, and (c) a bot-heavy sample, rank
// by AIC, and run Vuong tests between the top contenders.  Then times the
// per-family fits.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "palu/palu.hpp"

namespace {

using namespace palu;

stats::DegreeHistogram palu_sample(std::uint64_t seed) {
  const auto params = core::PaluParams::solve_hubs(4.0, 0.35, 0.25, 2.2,
                                                   0.7);
  Rng rng(seed);
  return core::sample_observed_degrees(params, 300000, rng);
}

stats::DegreeHistogram core_only_sample(std::uint64_t seed) {
  // Webcrawl analogue (i): the PA core without leaves/stars, fully
  // observed.
  Rng rng(seed);
  const auto g = graph::zeta_degree_core(rng, 150000, 2.2, 10000);
  return stats::DegreeHistogram::from_degrees(g.degrees());
}

stats::DegreeHistogram crawl_sample(std::uint64_t seed) {
  // Webcrawl analogue (ii): an actual BFS crawl over the full PALU
  // underlying network — the crawler's degree view is supernode-biased
  // and blind to unattached components (Section II's account of why
  // crawl-era studies saw clean power laws).
  const auto params = core::PaluParams::solve_hubs(4.0, 0.35, 0.25, 2.2,
                                                   1.0);
  Rng rng(seed);
  const auto net = core::generate_underlying(params, 300000, rng);
  const auto crawl = graph::bfs_crawl(rng, net.graph, 60000);
  return graph::crawl_view_degrees(net.graph, crawl);
}

stats::DegreeHistogram bot_heavy_sample(std::uint64_t seed) {
  const auto params = core::PaluParams::solve_hubs(9.0, 0.1, 0.1, 2.2,
                                                   1.0);
  Rng rng(seed);
  return core::sample_observed_degrees(params, 300000, rng);
}

void print_ranking(const char* label, const stats::DegreeHistogram& h) {
  std::printf("--- %s (n=%llu, support=%zu, d_max=%llu) ---\n", label,
              static_cast<unsigned long long>(h.total()),
              h.support_size(),
              static_cast<unsigned long long>(h.max_degree()));
  const auto ranking = fit::fit_all_models(h);
  std::printf("%-18s %14s %14s %10s  params\n", "family", "logL", "AIC",
              "dAIC");
  for (const auto& entry : ranking) {
    std::printf("%-18s %14.1f %14.1f %10.1f  ", entry.family.c_str(),
                entry.log_likelihood, entry.aic, entry.delta_aic);
    for (const auto& [name, value] : entry.parameters) {
      std::printf("%s=%.4g ", name.c_str(), value);
    }
    std::printf("\n");
  }
  // Vuong test: ZM vs each alternative.
  const auto zm = fit::fit_zipf_mandelbrot_model(h);
  const auto zeta = fit::fit_zeta_model(h);
  const auto lognormal = fit::fit_lognormal_model(h);
  const auto cutoff = fit::fit_powerlaw_cutoff_model(h);
  const auto report = [&](const char* name,
                          const fit::DiscreteModel& other) {
    const auto v = fit::vuong_test(*zm, other, h);
    std::printf("vuong ZM vs %-16s z=%+7.2f  p=%.3g  -> %s\n", name,
                v.statistic, v.p_two_sided,
                v.statistic > 2.0
                    ? "ZM better"
                    : (v.statistic < -2.0 ? "ZM worse" : "tie"));
  };
  report("zeta", *zeta);
  report("lognormal", *lognormal);
  report("powerlaw-cutoff", *cutoff);
  // And the decisive one: does the paper's own law beat ZM here?
  const auto palu_model = fit::fit_palu_mixture_model(h);
  const auto v = fit::vuong_test(*palu_model, *zm, h);
  std::printf("vuong PALU-mixture vs ZM     z=%+7.2f  p=%.3g  -> %s\n",
              v.statistic, v.p_two_sided,
              v.statistic > 2.0
                  ? "PALU better"
                  : (v.statistic < -2.0 ? "ZM better" : "tie"));
  std::printf("\n");
}

void print_experiment() {
  std::printf("=== Model zoo: is anything better than Zipf-Mandelbrot? "
              "===\n\n");
  print_ranking("PALU observed degrees", palu_sample(100));
  print_ranking("webcrawl-style core only", core_only_sample(200));
  print_ranking("BFS crawl of PALU network", crawl_sample(250));
  print_ranking("bot-heavy observed degrees", bot_heavy_sample(300));
}

void BM_FitFamily(benchmark::State& state) {
  static const auto h = palu_sample(400);
  const int family = static_cast<int>(state.range(0));
  for (auto _ : state) {
    switch (family) {
      case 0:
        benchmark::DoNotOptimize(fit::fit_zeta_model(h));
        break;
      case 1:
        benchmark::DoNotOptimize(fit::fit_zipf_mandelbrot_model(h));
        break;
      case 2:
        benchmark::DoNotOptimize(fit::fit_powerlaw_cutoff_model(h));
        break;
      case 3:
        benchmark::DoNotOptimize(fit::fit_lognormal_model(h));
        break;
      case 4:
        benchmark::DoNotOptimize(fit::fit_geometric_model(h));
        break;
      default:
        break;
    }
  }
  static constexpr const char* kNames[] = {
      "zeta", "zipf-mandelbrot", "powerlaw-cutoff", "lognormal",
      "geometric"};
  state.SetLabel(kNames[family]);
}
BENCHMARK(BM_FitFamily)->DenseRange(0, 4);

void BM_VuongTest(benchmark::State& state) {
  static const auto h = palu_sample(500);
  static const auto zm = fit::fit_zipf_mandelbrot_model(h);
  static const auto zeta = fit::fit_zeta_model(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::vuong_test(*zm, *zeta, h));
  }
}
BENCHMARK(BM_VuongTest);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
