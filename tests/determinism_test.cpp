// Determinism and regression pins: fixed seeds must reproduce identical
// structures across runs (and catch accidental RNG-consumption changes).
#include <gtest/gtest.h>

#include "palu/core/generator.hpp"
#include "palu/graph/generators.hpp"
#include "palu/rng/xoshiro.hpp"
#include "palu/traffic/stream.hpp"

namespace palu {
namespace {

TEST(Determinism, XoshiroGoldenOutputs) {
  // Pin the first outputs for the default seeding path: any change to the
  // engine or the seeding is a breaking change for reproducibility.
  Rng rng(42);
  const std::uint64_t first = rng();
  const std::uint64_t second = rng();
  Rng replay(42);
  EXPECT_EQ(replay(), first);
  EXPECT_EQ(replay(), second);
  EXPECT_NE(first, second);
  // splitmix64 is pinned by its published constants.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
}

TEST(Determinism, GraphGeneratorsReproduce) {
  Rng a(7), b(7);
  const auto g1 = graph::zeta_degree_core(a, 5000, 2.2, 500);
  const auto g2 = graph::zeta_degree_core(b, 5000, 2.2, 500);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_EQ(g1.edges(), g2.edges());
}

TEST(Determinism, UnderlyingNetworkReproduces) {
  const auto params = core::PaluParams::solve_hubs(3.0, 0.4, 0.2, 2.2,
                                                   0.7);
  Rng a(11), b(11);
  const auto n1 = core::generate_underlying(params, 30000, a);
  const auto n2 = core::generate_underlying(params, 30000, b);
  EXPECT_EQ(n1.graph.num_nodes(), n2.graph.num_nodes());
  EXPECT_EQ(n1.graph.edges(), n2.graph.edges());
  EXPECT_EQ(n1.hub_begin, n2.hub_begin);
}

TEST(Determinism, StreamsReproduce) {
  Rng gen_rng(13);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.02);
  traffic::SyntheticTrafficGenerator s1(g, traffic::RateModel{}, Rng(17));
  traffic::SyntheticTrafficGenerator s2(g, traffic::RateModel{}, Rng(17));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(s1.next(), s2.next()) << "packet " << i;
  }
}

TEST(Determinism, ForkStreamsAreStable) {
  // fork(i) of an identical parent state must match across instances.
  Rng a(23), b(23);
  Rng fa = a.fork(5);
  Rng fb = b.fork(5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(fa(), fb());
}

TEST(Determinism, ForkGoldenOutputs) {
  // Pins the fork derivation itself.  PR 2 intentionally changed fork()
  // to mix all four parent state words (the old derivation read word 0
  // only, so parents agreeing on that word forked identical streams);
  // these constants pin the NEW derivation — any further change to forked
  // streams is a deliberate reproducibility break and must update them.
  Rng rng(42);
  Rng child = rng.fork(3);
  EXPECT_EQ(child(), 0xb2dcca158061247cULL);
  EXPECT_EQ(child(), 0xe0f15497573cf1a8ULL);
  Rng other = Rng(7).fork(1);
  EXPECT_EQ(other(), 0x917604a071031bc2ULL);
}

}  // namespace
}  // namespace palu
