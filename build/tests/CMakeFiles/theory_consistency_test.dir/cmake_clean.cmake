file(REMOVE_RECURSE
  "CMakeFiles/theory_consistency_test.dir/theory_consistency_test.cpp.o"
  "CMakeFiles/theory_consistency_test.dir/theory_consistency_test.cpp.o.d"
  "theory_consistency_test"
  "theory_consistency_test.pdb"
  "theory_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
