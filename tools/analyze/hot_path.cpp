// Hot-path registration pass: bans Registry name-lookups inside loop
// bodies (rule hot-path-registration).  See passes.hpp for the contract.
#include "analyze/passes.hpp"

namespace palu::analyze {
namespace {

bool punct_at(const std::vector<Token>& toks, std::size_t i,
              const char* text) {
  return i < toks.size() && toks[i].kind == TokKind::kPunct &&
         toks[i].text == text;
}
bool ident_at(const std::vector<Token>& toks, std::size_t i,
              const char* text) {
  return i < toks.size() && toks[i].kind == TokKind::kIdent &&
         toks[i].text == text;
}

std::size_t skip_parens(const std::vector<Token>& toks, std::size_t i) {
  std::size_t depth = 0;
  for (; i < toks.size(); ++i) {
    if (punct_at(toks, i, "(")) ++depth;
    else if (punct_at(toks, i, ")") && --depth == 0) return i + 1;
  }
  return toks.size();
}

// Is the first argument of the call whose '(' sits at `open` a metric
// *name* — a string literal, or an expression mentioning the repo's
// obs::names:: constants?  Handle-recording calls like
// `acc_.histogram(quantity)` pass neither test and are not lookups.
bool first_arg_is_name(const std::vector<Token>& toks, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (punct_at(toks, i, "(")) {
      ++depth;
      continue;
    }
    if (punct_at(toks, i, ")")) {
      if (--depth == 0) return false;
      continue;
    }
    if (depth == 1 && punct_at(toks, i, ",")) return false;
    if (toks[i].kind == TokKind::kString) return true;
    if (ident_at(toks, i, "names")) return true;
  }
  return false;
}

// Loop frames: braced loop bodies, plain braces, and brace-less
// single-statement loop bodies (popped at the next ';' or at the close
// of a block that ends the statement).
enum class Frame { kBrace, kLoopBrace, kLoopStmt };

}  // namespace

void check_hot_paths(const FileScan& scan, std::vector<Violation>* out) {
  const std::vector<Token>& toks = scan.toks.code;
  const std::string file = scan.path.string();
  std::vector<Frame> frames;
  std::size_t loop_depth = 0;

  auto push_loop_body = [&](std::size_t i) -> std::size_t {
    // `i` points just past the loop header (after `for (...)`,
    // `while (...)`, or `do`); classify the body shape.
    if (punct_at(toks, i, "{")) {
      frames.push_back(Frame::kLoopBrace);
      ++loop_depth;
      return i + 1;
    }
    frames.push_back(Frame::kLoopStmt);
    ++loop_depth;
    return i;
  };
  auto pop_frame = [&](Frame f) {
    if (f != Frame::kBrace) --loop_depth;
  };
  auto pop_loop_stmts = [&] {
    while (!frames.empty() && frames.back() == Frame::kLoopStmt) {
      pop_frame(frames.back());
      frames.pop_back();
    }
  };

  for (std::size_t i = 0; i < toks.size();) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent &&
        (t.text == "for" || t.text == "while") &&
        punct_at(toks, i + 1, "(")) {
      i = push_loop_body(skip_parens(toks, i + 1));
      continue;
    }
    if (t.kind == TokKind::kIdent && t.text == "do") {
      i = push_loop_body(i + 1);
      continue;
    }
    if (punct_at(toks, i, "{")) {
      frames.push_back(Frame::kBrace);
      ++i;
      continue;
    }
    if (punct_at(toks, i, "}")) {
      if (!frames.empty()) {
        pop_frame(frames.back());
        frames.pop_back();
      }
      // A block that closes also ends any enclosing brace-less loop
      // statement (`for (...) if (x) { ... }`).
      pop_loop_stmts();
      ++i;
      continue;
    }
    if (punct_at(toks, i, ";")) {
      pop_loop_stmts();
      ++i;
      continue;
    }
    if (loop_depth > 0 &&
        (punct_at(toks, i, ".") || punct_at(toks, i, "->")) &&
        i + 2 < toks.size() && toks[i + 1].kind == TokKind::kIdent &&
        (toks[i + 1].text == "counter" || toks[i + 1].text == "gauge" ||
         toks[i + 1].text == "histogram") &&
        punct_at(toks, i + 2, "(") &&
        first_arg_is_name(toks, i + 2)) {
      out->push_back(
          {file, toks[i + 1].line, kRuleHotPath,
           "Registry::" + toks[i + 1].text +
               "(name) inside a loop body takes the registry lock and "
               "walks the series map per iteration; hoist the lookup "
               "before the loop and record through the returned handle"});
      i += 2;
      continue;
    }
    ++i;
  }
}

}  // namespace palu::analyze
