#include "palu/math/stable.hpp"

#include <algorithm>
#include <cmath>

namespace palu::math {

double expm1_minus_x(double x) {
  if (std::abs(x) < 1e-4) {
    // x²/2 · (1 + x/3 + x²/12 + x³/60); next term is O(x⁴/360) relative.
    return 0.5 * x * x *
           (1.0 + x / 3.0 + x * x / 12.0 + x * x * x / 60.0);
  }
  return std::expm1(x) - x;
}

double xlogy(double x, double y) {
  if (x == 0.0) return 0.0;
  return x * std::log(y);
}

double log1p_minus_x(double x) {
  if (std::abs(x) < 1e-4) {
    // −x²/2 + x³/3 − x⁴/4 …
    return x * x * (-0.5 + x * (1.0 / 3.0 + x * (-0.25)));
  }
  return std::log1p(x) - x;
}

double log_add_exp(double a, double b) {
  const double m = std::max(a, b);
  if (!std::isfinite(m)) return m;  // both -inf (or a nan propagates)
  return m + std::log1p(std::exp(std::min(a, b) - m));
}

double rel_diff(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  return std::abs(a - b) / scale;
}

}  // namespace palu::math
