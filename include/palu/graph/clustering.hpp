// Clustering coefficients (Section VII future work: "deeper study into the
// degree distribution and clustering coefficients").
//
// Local coefficient: c(v) = triangles(v) / (deg(v)·(deg(v)−1)/2) on the
// simple graph (self-loops and multi-edges removed first).  Global
// (transitivity): 3·triangles / wedges.  Triangle counting intersects
// sorted neighbor lists along rank-ordered edges — O(Σ deg^{3/2})-ish,
// comfortably fast at the node scales the experiments use.
#pragma once

#include <vector>

#include "palu/common/types.hpp"
#include "palu/graph/graph.hpp"

namespace palu::graph {

struct ClusteringSummary {
  double average_local = 0.0;  // mean c(v) over nodes with deg >= 2
  double global = 0.0;         // 3·triangles / wedges
  Count triangles = 0;
  Count wedges = 0;            // paths of length 2 (ordered center count)
  Count eligible_nodes = 0;    // nodes with deg >= 2
};

/// Per-node local clustering coefficients (0 for deg < 2 nodes).
/// The input is simplified internally.
std::vector<double> local_clustering(const Graph& g);

/// Triangle/wedge census and the two standard summary coefficients.
ClusteringSummary clustering_summary(const Graph& g);

}  // namespace palu::graph
