// Unit tests for palu/math: zeta family, gamma family, stable helpers, and
// the Λ moment-ratio function.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "palu/common/error.hpp"
#include "palu/math/gamma.hpp"
#include "palu/math/lambda_ratio.hpp"
#include "palu/math/lambertw.hpp"
#include "palu/math/stable.hpp"
#include "palu/math/zeta.hpp"

namespace palu::math {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(RiemannZeta, KnownValues) {
  EXPECT_NEAR(riemann_zeta(2.0), kPi * kPi / 6.0, 1e-12);
  EXPECT_NEAR(riemann_zeta(4.0), std::pow(kPi, 4) / 90.0, 1e-12);
  EXPECT_NEAR(riemann_zeta(6.0), std::pow(kPi, 6) / 945.0, 1e-12);
  // Apéry's constant.
  EXPECT_NEAR(riemann_zeta(3.0), 1.2020569031595942854, 1e-12);
}

TEST(RiemannZeta, PaperParameterRange) {
  // Section IV: 1.202 <= ζ(α) <= 2.612 for α ∈ [1.5, 3].
  EXPECT_NEAR(riemann_zeta(1.5), 2.6123753486854883, 1e-10);
  EXPECT_NEAR(riemann_zeta(3.0), 1.2020569031595943, 1e-10);
  for (double a = 1.5; a <= 3.0; a += 0.1) {
    const double z = riemann_zeta(a);
    EXPECT_GE(z, 1.202);
    EXPECT_LE(z, 2.6124);
  }
}

TEST(RiemannZeta, MonotoneDecreasing) {
  double prev = riemann_zeta(1.05);
  for (double s = 1.1; s < 10.0; s += 0.05) {
    const double z = riemann_zeta(s);
    EXPECT_LT(z, prev) << "at s=" << s;
    prev = z;
  }
}

TEST(RiemannZeta, ApproachesOneForLargeS) {
  EXPECT_NEAR(riemann_zeta(30.0), 1.0 + std::pow(2.0, -30.0), 1e-12);
}

TEST(RiemannZeta, RejectsDomainErrors) {
  EXPECT_THROW(riemann_zeta(1.0), InvalidArgument);
  EXPECT_THROW(riemann_zeta(0.5), InvalidArgument);
}

TEST(HurwitzZeta, ReducesToRiemannAtQOne) {
  for (double s : {1.5, 2.0, 2.5, 3.0}) {
    EXPECT_NEAR(hurwitz_zeta(s, 1.0), riemann_zeta(s), 1e-12);
  }
}

TEST(HurwitzZeta, KnownHalfValue) {
  // ζ(2, 1/2) = π²/2.
  EXPECT_NEAR(hurwitz_zeta(2.0, 0.5), kPi * kPi / 2.0, 1e-11);
}

TEST(HurwitzZeta, RecurrenceRelation) {
  // ζ(s, q) = ζ(s, q+1) + q^{-s}.
  for (double s : {1.7, 2.3, 3.1}) {
    for (double q : {0.25, 1.0, 3.5, 40.0}) {
      EXPECT_NEAR(hurwitz_zeta(s, q),
                  hurwitz_zeta(s, q + 1.0) + std::pow(q, -s), 1e-12)
          << "s=" << s << " q=" << q;
    }
  }
}

TEST(HurwitzZeta, MatchesDirectSummation) {
  // Brute-force tail with enough terms for s comfortably > 1.
  const double s = 3.5, q = 2.75;
  double direct = 0.0;
  for (int n = 0; n < 200000; ++n) direct += std::pow(n + q, -s);
  EXPECT_NEAR(hurwitz_zeta(s, q), direct, 1e-10);
}

TEST(TruncatedZeta, SmallExactSums) {
  EXPECT_DOUBLE_EQ(truncated_zeta(2.0, 1), 1.0);
  EXPECT_NEAR(truncated_zeta(2.0, 2), 1.25, 1e-14);
  EXPECT_NEAR(truncated_zeta(2.0, 3), 1.25 + 1.0 / 9.0, 1e-14);
  EXPECT_NEAR(truncated_zeta(1.0, 4), 1.0 + 0.5 + 1.0 / 3.0 + 0.25, 1e-14);
}

TEST(TruncatedZeta, ConsistentWithZetaMinusTail) {
  for (double s : {1.6, 2.0, 2.8}) {
    for (std::uint64_t dmax : {10ull, 1000ull, 100000ull}) {
      const double expected =
          riemann_zeta(s) -
          hurwitz_zeta(s, static_cast<double>(dmax) + 1.0);
      EXPECT_NEAR(truncated_zeta(s, dmax), expected, 1e-11)
          << "s=" << s << " dmax=" << dmax;
    }
  }
}

TEST(TruncatedZeta, HarmonicNumbers) {
  // s = 1: H_n.
  double h = 0.0;
  for (int n = 1; n <= 10000; ++n) h += 1.0 / n;
  EXPECT_NEAR(truncated_zeta(1.0, 10000), h, 1e-10);
}

TEST(TruncatedZeta, SubOnePowerSums) {
  // s = 0.5 partial sum vs direct.
  double direct = 0.0;
  for (int n = 1; n <= 50000; ++n) direct += 1.0 / std::sqrt(n);
  EXPECT_NEAR(truncated_zeta(0.5, 50000), direct, 1e-8 * direct);
}

TEST(ShiftedTruncatedZeta, MatchesDirectLoop) {
  for (double s : {0.8, 1.0, 2.2}) {
    for (double q : {0.0, 0.37, 5.0}) {
      double direct = 0.0;
      for (int d = 1; d <= 3000; ++d) direct += std::pow(d + q, -s);
      EXPECT_NEAR(shifted_truncated_zeta(s, q, 3000), direct,
                  1e-10 * direct)
          << "s=" << s << " q=" << q;
    }
  }
}

TEST(ShiftedTruncatedZeta, ZeroOffsetEqualsTruncated) {
  EXPECT_NEAR(shifted_truncated_zeta(2.0, 0.0, 500),
              truncated_zeta(2.0, 500), 1e-13);
}

TEST(ZetaTail, ComplementsTruncated) {
  const double s = 2.4;
  EXPECT_NEAR(truncated_zeta(s, 99) + zeta_tail(s, 100), riemann_zeta(s),
              1e-12);
}

TEST(LogGamma, KnownValues) {
  EXPECT_NEAR(log_gamma(0.5), std::log(std::sqrt(kPi)), 1e-12);
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-13);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-13);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(log_gamma(10.0), std::log(362880.0), 1e-11);
}

TEST(LogGamma, ReflectionBranch) {
  // x < 0.5 uses the reflection formula; Γ(1/4)Γ(3/4) = π/sin(π/4).
  EXPECT_NEAR(log_gamma(0.25) + log_gamma(0.75),
              std::log(kPi / std::sin(kPi / 4.0)), 1e-11);
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW(log_gamma(0.0), InvalidArgument);
  EXPECT_THROW(log_gamma(-1.5), InvalidArgument);
}

TEST(LogFactorial, MatchesCumulativeLogs) {
  double acc = 0.0;
  for (std::uint64_t n = 1; n <= 2000; ++n) {
    acc += std::log(static_cast<double>(n));
    EXPECT_NEAR(log_factorial(n), acc, 1e-9 * std::max(1.0, acc))
        << "n=" << n;
  }
  EXPECT_DOUBLE_EQ(log_factorial(0), 0.0);
}

TEST(LogBinomialCoefficient, ExactSmallValues) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-10);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 5)), 252.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(52, 5)), 2598960.0, 1e-3);
  EXPECT_THROW(log_binomial_coefficient(3, 4), InvalidArgument);
}

TEST(PoissonPmf, NormalizesAndHasCorrectMean) {
  for (double lambda : {0.3, 1.0, 4.5, 12.0}) {
    double total = 0.0, mean = 0.0;
    for (std::uint64_t k = 0; k < 200; ++k) {
      const double p = poisson_pmf(k, lambda);
      total += p;
      mean += static_cast<double>(k) * p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "lambda=" << lambda;
    EXPECT_NEAR(mean, lambda, 1e-10) << "lambda=" << lambda;
  }
}

TEST(PoissonPmf, ZeroLambdaIsPointMass) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(3, 0.0), 0.0);
}

TEST(BinomialPmf, NormalizesAndHasCorrectMean) {
  const std::uint64_t n = 40;
  for (double p : {0.05, 0.3, 0.77}) {
    double total = 0.0, mean = 0.0;
    for (std::uint64_t k = 0; k <= n; ++k) {
      const double w = binomial_pmf(k, n, p);
      total += w;
      mean += static_cast<double>(k) * w;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(mean, static_cast<double>(n) * p, 1e-10);
  }
}

TEST(BinomialPmf, DegenerateEdges) {
  EXPECT_DOUBLE_EQ(binomial_pmf(0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(3, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(11, 10, 0.5), 0.0);
}

TEST(StableHelpers, Expm1MinusX) {
  EXPECT_NEAR(expm1_minus_x(1.0), std::exp(1.0) - 2.0, 1e-14);
  // Tiny x: series branch vs exact quadratic leading term.
  const double x = 1e-8;
  EXPECT_NEAR(expm1_minus_x(x), 0.5 * x * x, 1e-24);
  EXPECT_GT(expm1_minus_x(1e-6), 0.0);
  EXPECT_NEAR(expm1_minus_x(-0.5), std::exp(-0.5) - 0.5, 1e-14);
}

TEST(StableHelpers, XlogyConvention) {
  EXPECT_DOUBLE_EQ(xlogy(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(xlogy(2.0, std::exp(1.0)), 2.0);
}

TEST(StableHelpers, LogAddExp) {
  EXPECT_NEAR(log_add_exp(0.0, 0.0), std::log(2.0), 1e-14);
  EXPECT_NEAR(log_add_exp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-10);
  EXPECT_NEAR(log_add_exp(-1000.0, 0.0), 0.0, 1e-12);
}

TEST(StableHelpers, RelDiff) {
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
  EXPECT_NEAR(rel_diff(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_NEAR(rel_diff(-2.0, 2.0), 2.0, 1e-12);
}

TEST(LambdaMomentRatio, LimitAtZeroIsTwo) {
  EXPECT_NEAR(lambda_moment_ratio(0.0), 2.0, 1e-12);
  // Paper Taylor expansion: g(Λ) ≈ 2 + Λ/3 near 0.
  EXPECT_NEAR(lambda_moment_ratio(0.01), 2.0 + 0.01 / 3.0, 1e-5);
  EXPECT_NEAR(lambda_moment_ratio(0.001), 2.0 + 0.001 / 3.0, 1e-7);
}

TEST(LambdaMomentRatio, ClosedFormSpotCheck) {
  // g(1) = 1 + 1/(e − 2).
  EXPECT_NEAR(lambda_moment_ratio(1.0),
              1.0 + 1.0 / (std::exp(1.0) - 2.0), 1e-12);
}

TEST(LambdaMomentRatio, StrictlyIncreasing) {
  double prev = lambda_moment_ratio(0.0);
  for (double x = 0.05; x < 60.0; x += 0.05) {
    const double g = lambda_moment_ratio(x);
    EXPECT_GT(g, prev) << "x=" << x;
    prev = g;
  }
}

TEST(LambdaMomentRatio, AsymptoticallyLinear) {
  EXPECT_NEAR(lambda_moment_ratio(800.0), 800.0, 1e-9);
}

TEST(LambdaMomentRatio, DerivativeMatchesFiniteDifference) {
  for (double x : {0.05, 0.5, 2.0, 10.0, 35.0, 50.0}) {
    const double h = 1e-6 * std::max(1.0, x);
    const double fd =
        (lambda_moment_ratio(x + h) - lambda_moment_ratio(x - h)) /
        (2.0 * h);
    EXPECT_NEAR(lambda_moment_ratio_derivative(x), fd,
                1e-5 * std::max(1.0, std::abs(fd)))
        << "x=" << x;
  }
}

class LambdaInverseRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(LambdaInverseRoundTrip, InvertsExactly) {
  const double x = GetParam();
  const double r = lambda_moment_ratio(x);
  EXPECT_NEAR(invert_lambda_moment_ratio(r), x,
              1e-8 * std::max(1.0, x));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LambdaInverseRoundTrip,
                         ::testing::Values(1e-6, 1e-3, 0.05, 0.2, 0.7, 1.0,
                                           2.0, 3.5, 5.0, 8.0, 13.0, 20.0,
                                           54.0, 120.0));

TEST(LambdaInverse, BoundaryAndErrors) {
  EXPECT_DOUBLE_EQ(invert_lambda_moment_ratio(2.0), 0.0);
  EXPECT_THROW(invert_lambda_moment_ratio(1.99), InvalidArgument);
}

TEST(LambdaInverse, ClampsRoundingNoiseBelowTwoToZero) {
  // Noisy empirical ratios from the excess-moment sums can land an exact
  // r = 2 a few ulps below it; that sliver is Λ = 0, not an error.
  EXPECT_DOUBLE_EQ(invert_lambda_moment_ratio(2.0 - 1e-10), 0.0);
  EXPECT_DOUBLE_EQ(invert_lambda_moment_ratio(
                       std::nextafter(2.0, 0.0)),
                   0.0);
  EXPECT_DOUBLE_EQ(invert_lambda_moment_ratio(2.0 - 1e-9), 0.0);
  // Anything past the documented slack is still a domain error.
  EXPECT_THROW(invert_lambda_moment_ratio(2.0 - 1.1e-9), InvalidArgument);
}

// ------------------------------------------------------------ Lambert W

TEST(LambertW, ReferenceValues) {
  // Pinned against a 60-digit Decimal Newton evaluation of w·e^w = x
  // (independent implementation, MAGPIE-style reference table).
  const struct {
    double x, w;
  } kRefs[] = {
      {1.0, 0.56714329040978387300},    // the omega constant
      {10.0, 1.74552800274069938307},
      {100.0, 3.38563014029005018489},
      {0.5, 0.35173371124919582602},
      {2.0, 0.85260550201372549135},
      {1e6, 11.38335808614005262200},
      {1e-3, 0.00099900149733853089},
      {700.0, 4.95140829490515652715},
      {-0.1, -0.11183255915896296483},
      {-0.2, -0.25917110181907374506},
      {-0.3, -0.48940222718021496904},
      {-0.35, -0.71663881645607385059},
  };
  for (const auto& ref : kRefs) {
    EXPECT_NEAR(lambert_w0(ref.x), ref.w,
                1e-14 * std::max(1.0, std::abs(ref.w)))
        << "x=" << ref.x;
  }
  EXPECT_DOUBLE_EQ(lambert_w0(0.0), 0.0);
  EXPECT_NEAR(lambert_w0(std::exp(1.0)), 1.0, 1e-14);
}

TEST(LambertW, DefiningIdentityAcrossTheDomain) {
  // w·e^w must reproduce x to a few ulps everywhere the real branch
  // exists, including the awkward stretch just above −1/e.
  for (double x = -0.367; x <= 0.5; x += 0.0031) {
    const double w = lambert_w0(x);
    EXPECT_NEAR(w * std::exp(w), x, 4e-15 * (1.0 + std::abs(x)))
        << "x=" << x;
  }
  for (double x = 1.0; x < 1e8; x *= 3.7) {
    const double w = lambert_w0(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-13 * x) << "x=" << x;
  }
}

TEST(LambertW, BranchPointAndDomainErrors) {
  // At the branch point itself W = −1; double(−1/e) sits a hair above the
  // exact −1/e, so the rounded result lands within √ε of −1.
  const double w = lambert_w0(-std::exp(-1.0));
  EXPECT_GE(w, -1.0);
  EXPECT_LE(w, -0.99999997);
  EXPECT_THROW(lambert_w0(-0.368), InvalidArgument);
  EXPECT_THROW(lambert_w0(-1.0), InvalidArgument);
  EXPECT_TRUE(std::isnan(lambert_w0(
      std::numeric_limits<double>::quiet_NaN())));
}

// -------------------------------------------- derivative branch seams

TEST(LambdaMomentRatioDerivative, SeriesAccurateDeepInSmallLambda) {
  // Regression: the exact branch's two ~4/Λ terms cancel to O(1), so its
  // relative error grows like ε/Λ — about 1e-9 at Λ = 1e-6, where the
  // series/exact seam used to sit.  The extended series is exact there:
  // g'(1e-6) = 1/3 + 1e-6/9 + ... pinned to full double precision.
  const double l = 1e-6;
  const double series = 1.0 / 3.0 + l / 9.0 + l * l / 90.0;
  EXPECT_NEAR(lambda_moment_ratio_derivative(l), series, 1e-12 * series);
  EXPECT_NEAR(lambda_moment_ratio_derivative(0.0), 1.0 / 3.0, 1e-16);
}

TEST(LambdaMomentRatioDerivative, BranchSeamsAreContinuous) {
  // Compare at nextafter-adjacent points across each branch seam: the
  // function's own slope contributes ~1e-18 over one ulp, so any mismatch
  // beyond 1e-12 relative is branch drift, not curvature.  (Measuring at
  // seam·(1 ± 1e-9) instead would see g''·ΔΛ ≈ 2e-11 and mask the bug.)
  for (const double seam : {0.1, 40.0}) {
    const double below =
        lambda_moment_ratio_derivative(std::nextafter(seam, 0.0));
    const double at = lambda_moment_ratio_derivative(seam);
    EXPECT_NEAR(below, at, 1e-12 * std::abs(at)) << "seam=" << seam;
  }
}

// ------------------------------------------------- inverter round trip

TEST(LambdaInverse, DenseRoundTripToFullPrecision) {
  // Regression for the silent midpoint fallback: the inverter must now
  // recover Λ (and satisfy g(Λ̂) = r) to 1e-12 relative across the whole
  // operating range, Lambert-W seed included — a collapsed bracket can no
  // longer smuggle out an unverified midpoint.
  for (double x = 0.0; x <= 700.0; x += 0.1) {
    const double r = lambda_moment_ratio(x);
    const double inv = invert_lambda_moment_ratio(r);
    EXPECT_NEAR(inv, x, 1e-12 * std::max(1.0, x)) << "x=" << x;
    EXPECT_NEAR(lambda_moment_ratio(inv), r,
                1e-12 * (1.0 + std::abs(r)))
        << "x=" << x;
  }
}

TEST(LambdaInverse, NonFiniteRatioIsRejected) {
  // A NaN ratio poisoned the old bracket arithmetic into returning an
  // arbitrary midpoint; it must surface as a domain error instead.
  EXPECT_THROW(
      invert_lambda_moment_ratio(std::numeric_limits<double>::quiet_NaN()),
      InvalidArgument);
}

}  // namespace
}  // namespace palu::math
