#include "palu/obs/metrics.hpp"

// palu-lint: allow-file(hot-path-registration)
// preregister_palu_metrics exists to pay every name-lookup once, at
// startup, so scrapes see stable series from the first export; its
// registration loops are the one place where looking metrics up by name
// inside a loop is the point rather than a hot-path bug.

#include <bit>

#include "palu/common/error.hpp"
#include "palu/obs/names.hpp"

namespace palu::obs {

std::uint32_t Histogram::bucket_index(std::uint64_t v) noexcept {
  if (v <= 1) return 0;
  const auto i = static_cast<std::uint32_t>(std::bit_width(v - 1));
  return i < kNumBuckets ? i : kNumBuckets - 1;
}

std::uint64_t Histogram::bucket_upper(std::uint32_t i) noexcept {
  return std::uint64_t{1} << i;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

bool name_start_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool name_char(char c) noexcept {
  return name_start_char(c) || (c >= '0' && c <= '9');
}

// Renders labels into the series key: name{k="v",...}.  Values are kept
// verbatim here (the key only needs to be injective); exporters escape.
std::string series_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += labels[i].first;
    key += "=\"";
    key += labels[i].second;
    key += '"';
  }
  key += '}';
  return key;
}

}  // namespace

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty() || !name_start_char(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!name_char(c)) return false;
  }
  return true;
}

bool valid_label_name(std::string_view key) noexcept {
  if (key.empty() || key[0] == ':' || !name_start_char(key[0])) return false;
  for (char c : key.substr(1)) {
    if (c == ':' || !name_char(c)) return false;
  }
  return true;
}

Registry::Series& Registry::find_or_create(Kind kind, std::string_view name,
                                           const Labels& labels,
                                           std::string_view help) {
  if (!valid_metric_name(name)) {
    throw InvalidArgument("obs: invalid metric name '" + std::string(name) +
                          "'");
  }
  for (const auto& [key, value] : labels) {
    (void)value;
    if (!valid_label_name(key)) {
      throw InvalidArgument("obs: invalid label name '" + key + "' on '" +
                            std::string(name) + "'");
    }
  }
  std::string key = series_key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [kind_it, kind_inserted] =
      kind_by_name_.emplace(std::string(name), kind);
  if (!kind_inserted && kind_it->second != kind) {
    throw InvalidArgument("obs: metric '" + std::string(name) +
                          "' already registered with a different kind");
  }
  auto it = series_.find(key);
  if (it == series_.end()) {
    Series s;
    s.kind = kind;
    s.name = std::string(name);
    s.labels = labels;
    switch (kind) {
      case Kind::kCounter:
        s.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        s.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        s.histogram = std::make_unique<Histogram>();
        break;
    }
    it = series_.emplace(std::move(key), std::move(s)).first;
  }
  if (!help.empty()) {
    help_.emplace(std::string(name), std::string(help));
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name, const Labels& labels,
                           std::string_view help) {
  return *find_or_create(Kind::kCounter, name, labels, help).counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels,
                       std::string_view help) {
  return *find_or_create(Kind::kGauge, name, labels, help).gauge;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels,
                               std::string_view help) {
  return *find_or_create(Kind::kHistogram, name, labels, help).histogram;
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, s] : series_) {
    (void)key;
    switch (s.kind) {
      case Kind::kCounter:
        snap.counters.push_back({s.name, s.labels, s.counter->value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({s.name, s.labels, s.gauge->value()});
        break;
      case Kind::kHistogram: {
        HistogramSample h;
        h.name = s.name;
        h.labels = s.labels;
        h.count = s.histogram->count();
        h.sum = s.histogram->sum();
        std::uint32_t last = 0;
        for (std::uint32_t i = 0; i < Histogram::kNumBuckets; ++i) {
          if (s.histogram->bucket_count(i) > 0) last = i + 1;
        }
        h.buckets.reserve(last);
        for (std::uint32_t i = 0; i < last; ++i) {
          h.buckets.push_back(s.histogram->bucket_count(i));
        }
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  snap.help = help_;
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, s] : series_) {
    (void)key;
    switch (s.kind) {
      case Kind::kCounter:
        s.counter->reset();
        break;
      case Kind::kGauge:
        s.gauge->reset();
        break;
      case Kind::kHistogram:
        s.histogram->reset();
        break;
    }
  }
}

std::size_t Registry::num_series() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

void preregister_palu_metrics(Registry& r) {
  static constexpr const char* kReaders[] = {"read_trace", "read_edge_list",
                                             "read_histogram_csv"};
  static constexpr const char* kLineOutcomes[] = {"kept", "repaired",
                                                  "dropped"};
  for (const char* reader : kReaders) {
    r.counter(names::kIngestReads, {{"reader", reader}},
              "Calls into a policy-aware reader");
    for (const char* outcome : kLineOutcomes) {
      r.counter(names::kIngestLines, {{"reader", reader}, {"outcome", outcome}},
                "Per-line ingest dispositions");
    }
    r.counter(names::kIngestBudgetExhausted, {{"reader", reader}},
              "Reads aborted after exhausting max_bad_lines");
  }

  r.counter(names::kSweepRuns, {}, "sweep_windows invocations");
  for (const char* outcome : {"completed", "failed", "skipped"}) {
    r.counter(names::kSweepWindows, {{"outcome", outcome}},
              "Per-window sweep dispositions");
  }
  r.counter(names::kSweepCancelled, {}, "Sweeps that observed cancellation");
  r.counter(names::kSweepDeadlineExpired, {},
            "Sweeps that hit their wall-clock deadline");
  r.counter(names::kSweepFailpointTrips, {},
            "Window failures caused by an armed failpoint");
  r.gauge(names::kSweepPoolThreads, {},
          "Worker count of the pool driving the most recent sweep");
  r.gauge(names::kSweepShardsPerWindow, {},
          "Sub-accumulators per window of the most recent sweep");
  r.counter(names::kSweepShardsMerged, {},
            "Intra-window shard merges performed");
  for (const char* path : {"fast", "legacy"}) {
    for (const char* stage : {"sampling", "accumulation", "binning"}) {
      r.histogram(names::kSweepStageDurationNs,
                  {{"path", path}, {"stage", stage}},
                  "Per-worker CPU nanoseconds spent in each sweep stage");
    }
  }
  r.histogram(names::kSweepDurationNs, {},
              "End-to-end wall nanoseconds per sweep_windows call");

  for (const char* stage : {"levmar", "nelder-mead", "moments"}) {
    r.counter(names::kFitStageAttempts, {{"stage", stage}},
              "Optimizer attempts per fit-ladder stage");
    r.counter(names::kFitStageSuccess, {{"stage", stage}},
              "Accepted results per fit-ladder stage");
    r.histogram(names::kFitStageIterations, {{"stage", stage}},
                "Iterations consumed per fit-ladder attempt");
  }
  for (const char* stage : {"levmar", "nelder-mead", "moments", "failed"}) {
    r.counter(names::kFitResults, {{"stage", stage}},
              "Fit-ladder rung each robust_fit_palu call returned from");
  }
  r.counter(names::kFitBaseRetries, {},
            "Base-fit retries during tail relaxation in robust_fit_palu");

  r.counter(names::kIngestReads, {{"reader", "trace_tail"}},
            "Calls into a policy-aware reader");
  for (const char* outcome : {"kept", "repaired", "dropped"}) {
    r.counter(names::kIngestLines,
              {{"reader", "trace_tail"}, {"outcome", outcome}},
              "Per-line ingest dispositions");
  }
  r.counter(names::kIngestBudgetExhausted, {{"reader", "trace_tail"}},
            "Reads aborted after exhausting max_bad_lines");

  r.counter(names::kStoreBlocksWritten, {},
            "Window blocks appended by capture writers");
  r.counter(names::kStoreBytesWritten, {},
            "Bytes written by capture writers");
  r.counter(names::kStoreBlocksRead, {},
            "Window blocks read and decoded by replay readers");
  r.counter(names::kStoreBytesRead, {}, "Bytes read by replay readers");
  r.counter(names::kStoreChecksumFailures, {},
            "Blocks or manifests rejected for a bad magic, size, or "
            "checksum");
  r.counter(names::kStoreTornTails, {},
            "Store opens that met a torn tail (missing/corrupt manifest)");
  r.histogram(names::kStoreDecodeNs, {},
              "Per-block varint/delta decode nanoseconds on the replay "
              "path");

  r.counter(names::kServePackets, {},
            "Packets admitted into the serve window accumulator");
  r.counter(names::kServeWindowsFitted, {},
            "Window boundaries processed by the serve daemon");
  r.counter(names::kServeWindowsStale, {},
            "Windows whose tumbling lane degraded to stale parameters");
  r.counter(names::kServeDeadlineMisses, {},
            "Windows served from the previous fit after a deadline miss");
  r.gauge(names::kServeQueueDepth, {},
          "Records currently queued between ingest and fit");
  for (const char* policy : {"drop-oldest", "drop-newest"}) {
    r.counter(names::kServeQueueDropped, {{"policy", policy}},
              "Records shed by the queue backpressure policy");
  }
  for (const char* stage : {"ingest", "fit"}) {
    r.counter(names::kServeStageRestarts, {{"stage", stage}},
              "Supervised serve stage restarts");
  }
  r.counter(names::kServeCheckpointWrites, {},
            "Checkpoints written successfully");
  r.counter(names::kServeCheckpointFailures, {},
            "Checkpoint writes that failed (service kept running)");
  r.gauge(names::kServeCheckpointAge, {},
          "Window boundaries since the last successful checkpoint");
  for (const char* outcome : {"ok", "failed"}) {
    r.counter(names::kServeRestores, {{"outcome", outcome}},
              "Checkpoint restore attempts at serve startup");
  }
  r.gauge(names::kServeStaleness, {},
          "Consecutive windows the tumbling lane has been stale");
  r.counter(names::kServeSnapshotWrites, {},
            "Metrics snapshot files written by the serve daemon");
}

}  // namespace palu::obs
