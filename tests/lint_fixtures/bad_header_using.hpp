// Fixture: `using namespace` at namespace scope in a header must trip the
// hygiene rule.
// palu-lint-expect: header-using-namespace
#pragma once

#include <string>

using namespace std;

inline string greet() { return "hi"; }
