// Zeta-family special functions needed by power-law models.
//
// The paper normalizes the preferential-attachment core degree law by the
// Riemann zeta function ζ(α) (Section IV) and the modified Zipf–Mandelbrot
// model by truncated Hurwitz-style sums Σ_{d=1}^{dmax} (d+δ)^{-α}
// (Section II-B).  All functions here are evaluated with Euler–Maclaurin
// tail corrections and are accurate to ~1e-12 over the parameter ranges the
// models use (α ∈ [1.01, 64], δ ≥ 0).
#pragma once

#include <cstdint>

namespace palu::math {

/// Riemann zeta ζ(s) = Σ_{n≥1} n^{-s}, for s > 1.
/// Throws palu::InvalidArgument for s <= 1 (the series diverges).
double riemann_zeta(double s);

/// Hurwitz zeta ζ(s, q) = Σ_{n≥0} (n+q)^{-s}, for s > 1, q > 0.
double hurwitz_zeta(double s, double q);

/// Truncated zeta Σ_{d=1}^{dmax} d^{-s}; the generalized harmonic number
/// H(dmax, s).  Valid for any real s when dmax is finite.
double truncated_zeta(double s, std::uint64_t dmax);

/// Σ_{d=1}^{dmax} (d+q)^{-s}: the normalizer of the modified Zipf–Mandelbrot
/// model with offset q = δ.  Requires s > 0, q > -1, dmax >= 1.
/// Computed as ζ(s, 1+q) − ζ(s, dmax+1+q) when s > 1 (exact tail
/// cancellation); by Euler–Maclaurin partial summation otherwise.
double shifted_truncated_zeta(double s, double q, std::uint64_t dmax);

/// Tail sum Σ_{n≥n0} n^{-s} = ζ(s, n0), convenience wrapper (s > 1, n0 ≥ 1).
double zeta_tail(double s, std::uint64_t n0);

}  // namespace palu::math
