#include "palu/core/params.hpp"

#include <cmath>

#include "palu/common/error.hpp"

namespace palu::core {

double PaluParams::constraint_residual() const {
  return core + leaves + hubs * (1.0 + lambda - std::exp(-lambda)) - 1.0;
}

void PaluParams::validate(double tolerance) const {
  PALU_CHECK(lambda >= 0.0 && lambda <= 20.0,
             "PaluParams: lambda must be in [0, 20]");
  PALU_CHECK(core >= 0.0 && core <= 1.0, "PaluParams: C must be in [0, 1]");
  PALU_CHECK(leaves >= 0.0 && leaves <= 1.0,
             "PaluParams: L must be in [0, 1]");
  PALU_CHECK(hubs >= 0.0 && hubs <= 1.0, "PaluParams: U must be in [0, 1]");
  PALU_CHECK(alpha > 1.0 && alpha <= 3.5,
             "PaluParams: alpha must be in (1, 3.5]");
  PALU_CHECK(window > 0.0 && window <= 1.0,
             "PaluParams: p must be in (0, 1]");
  PALU_CHECK(std::abs(constraint_residual()) <= tolerance,
             "PaluParams: C + L + U(1 + lambda - e^-lambda) != 1");
}

PaluParams PaluParams::solve_hubs(double lambda, double core, double leaves,
                                  double alpha, double window) {
  PALU_CHECK(core + leaves < 1.0,
             "PaluParams::solve_hubs: requires C + L < 1");
  PaluParams p;
  p.lambda = lambda;
  p.core = core;
  p.leaves = leaves;
  p.alpha = alpha;
  p.window = window;
  const double star_mass = 1.0 + lambda - std::exp(-lambda);
  p.hubs = (1.0 - core - leaves) / star_mass;
  p.validate();
  return p;
}

PaluParams PaluParams::at_window(double new_window) const {
  PaluParams p = *this;
  p.window = new_window;
  p.validate();
  return p;
}

}  // namespace palu::core
