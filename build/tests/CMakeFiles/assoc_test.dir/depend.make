# Empty dependencies file for assoc_test.
# This may be replaced when dependencies are built.
