// Columnar window store suite (DESIGN.md §5j): format primitives, writer
// canonicalization, and the two acceptance properties of capture/replay —
// (1) replaying a captured sweep is byte-identical to the original
// WindowSweepResult for every quantity, seed, and shard count, and
// (2) a capture killed mid-file is detected at open and cleanly truncated
// to its intact prefix under the ErrorPolicy budget machinery, never a
// crash.  Includes the io.capture_write / io.replay_read failpoints and
// the serve daemon's --record tee.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/common/failpoint.hpp"
#include "palu/common/result.hpp"
#include "palu/graph/generators.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"
#include "palu/serve/daemon.hpp"
#include "palu/serve/options.hpp"
#include "palu/stats/log_binning.hpp"
#include "palu/store/format.hpp"
#include "palu/store/reader.hpp"
#include "palu/store/writer.hpp"
#include "palu/testing/fault_injection.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/stream.hpp"
#include "palu/traffic/window_accumulator.hpp"
#include "palu/traffic/window_pipeline.hpp"

namespace palu {
namespace {

constexpr std::array<traffic::Quantity, 6> kEveryQuantity = {
    traffic::Quantity::kSourcePackets,
    traffic::Quantity::kSourceFanOut,
    traffic::Quantity::kLinkPackets,
    traffic::Quantity::kDestinationFanIn,
    traffic::Quantity::kDestinationPackets,
    traffic::Quantity::kUndirectedDegree};

void expect_identical(const stats::DegreeHistogram& a,
                      const stats::DegreeHistogram& b,
                      const std::string& context) {
  EXPECT_EQ(a.total(), b.total()) << context;
  EXPECT_EQ(a.weighted_total(), b.weighted_total()) << context;
  EXPECT_EQ(a.sorted(), b.sorted()) << context;
}

// Fresh store directory per test, inside gtest's temp root.
std::string store_dir(const std::string& stem) {
  const std::string dir = ::testing::TempDir() + "palu_store_" + stem;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

IngestOptions skip_opts(std::size_t budget = ~std::size_t{0}) {
  IngestOptions opts;
  opts.policy = ErrorPolicy::kSkip;
  opts.max_bad_lines = budget;
  return opts;
}

class StoreTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoints::disarm_all(); }
};

// ---------------------------------------------------------------------
// format primitives
// ---------------------------------------------------------------------

TEST(StoreFormat, VarintRoundTripsAcrossWidths) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  0xDEADBEEFULL,
                                  ~std::uint64_t{0}};
  std::vector<unsigned char> buf;
  for (const std::uint64_t v : values) {
    buf.clear();
    store::put_varint(buf, v);
    EXPECT_LE(buf.size(), store::kMaxVarintBytes);
    std::uint64_t back = 0;
    const unsigned char* end =
        store::get_varint(buf.data(), buf.data() + buf.size(), back);
    ASSERT_NE(end, nullptr) << v;
    EXPECT_EQ(end, buf.data() + buf.size()) << v;
    EXPECT_EQ(back, v);
  }
}

TEST(StoreFormat, VarintRejectsTruncationAndOverlength) {
  std::vector<unsigned char> buf;
  store::put_varint(buf, ~std::uint64_t{0});  // 10 bytes
  std::uint64_t v = 0;
  // Every strict prefix is truncated.
  for (std::size_t n = 0; n < buf.size(); ++n) {
    EXPECT_EQ(store::get_varint(buf.data(), buf.data() + n, v), nullptr);
  }
  // An 11-byte continuation run can encode nothing.
  const std::vector<unsigned char> overlong(11, 0x80);
  EXPECT_EQ(store::get_varint(overlong.data(),
                              overlong.data() + overlong.size(), v),
            nullptr);
}

TEST(StoreFormat, ZigzagIsAnInvolutionOnDeltas) {
  for (const std::int64_t d : {std::int64_t{0}, std::int64_t{1},
                               std::int64_t{-1}, std::int64_t{12345},
                               std::int64_t{-12345},
                               std::int64_t{1} << 62,
                               -(std::int64_t{1} << 62)}) {
    EXPECT_EQ(store::zigzag_decode(store::zigzag_encode(d)), d);
    // Small magnitudes must stay small so one-byte varints dominate.
    if (d >= -64 && d < 64) {
      EXPECT_LT(store::zigzag_encode(d), 128u);
    }
  }
}

// ---------------------------------------------------------------------
// writer canonicalization + reader round trip
// ---------------------------------------------------------------------

TEST_F(StoreTest, WriterCanonicalizesUnsortedDuplicatedZeroPaddedInput) {
  const std::string dir = store_dir("canonical");
  {
    store::WriterOptions wopts;
    wopts.node_domain = 100;
    wopts.seed = 42;
    store::WindowStoreWriter writer(dir, wopts);
    // Out of order, reversed endpoints, a duplicate pair split across
    // directions, zero rows, and a self-pair.
    const std::vector<traffic::EdgePacketCounts> raw = {
        {9, 3, 2, 5},    // reversed: canonical (3, 9, 5, 2)
        {1, 2, 0, 0},    // zero row: dropped
        {7, 7, 4, 0},    // self-pair
        {2, 1, 3, 1},    // canonical (1, 2, 1, 3)
        {3, 9, 1, 1},    // coalesces with the reversed record
        {1, 2, 0, 0},    // another zero row
    };
    writer.append(0, 1234, raw);
    writer.finish();
    const auto stats = writer.stats();
    EXPECT_EQ(stats.blocks, 1u);
    EXPECT_EQ(stats.records, 3u);
  }
  store::WindowStoreReader reader(dir);
  ASSERT_EQ(reader.num_windows(), 1u);
  EXPECT_EQ(reader.header().seed, 42u);
  EXPECT_EQ(reader.header().node_domain, 100u);
  std::vector<std::byte> buf;
  std::vector<traffic::EdgePacketCounts> out;
  EXPECT_EQ(reader.read_window(0, buf, out), 1234u);
  const std::vector<traffic::EdgePacketCounts> expected = {
      {1, 2, 1, 3}, {3, 9, 6, 3}, {7, 7, 4, 0}};
  EXPECT_EQ(out, expected);
  EXPECT_TRUE(reader.open_report().clean());
}

TEST_F(StoreTest, EmptyStoreAndEmptyWindowsRoundTrip) {
  const std::string dir = store_dir("empty");
  {
    store::WriterOptions wopts;
    wopts.node_domain = 10;
    store::WindowStoreWriter writer(dir, wopts);
    const std::vector<traffic::EdgePacketCounts> none;
    writer.append(0, 500, none);  // a window that saw no traffic
    writer.finish();
    writer.finish();  // idempotent
    EXPECT_THROW(writer.append(1, 1, none), Error);
  }
  store::WindowStoreReader reader(dir);
  ASSERT_EQ(reader.num_windows(), 1u);
  std::vector<std::byte> buf;
  std::vector<traffic::EdgePacketCounts> out{{1, 1, 1, 0}};
  EXPECT_EQ(reader.read_window(0, buf, out), 500u);
  EXPECT_TRUE(out.empty());
}

TEST_F(StoreTest, DomainWidensToAppendedDataAtFinish) {
  const std::string dir = store_dir("widen");
  {
    store::WriterOptions wopts;
    wopts.node_domain = 1;  // the serve recorder's placeholder
    store::WindowStoreWriter writer(dir, wopts);
    const std::vector<traffic::EdgePacketCounts> w0 = {{4, 9000, 3, 1}};
    const std::vector<traffic::EdgePacketCounts> w1 = {{2, 5, 1, 0}};
    writer.append(0, 10, w0);
    writer.append(1, 10, w1);
    writer.finish();
  }
  store::WindowStoreReader reader(dir);
  EXPECT_EQ(reader.header().node_domain, 9001u);
}

TEST_F(StoreTest, ReaderRejectsNonStores) {
  EXPECT_THROW(store::WindowStoreReader("/nonexistent/store/dir"),
               DataError);
  const std::string dir = store_dir("notastore");
  write_file(store::WindowStoreWriter::store_file(dir), "short");
  EXPECT_THROW((store::WindowStoreReader(dir)), DataError);
  std::string junk(200, '\xAB');
  write_file(store::WindowStoreWriter::store_file(dir), junk);
  EXPECT_THROW((store::WindowStoreReader(dir)), DataError);
}

// ---------------------------------------------------------------------
// capture -> replay fidelity (the tentpole acceptance property)
// ---------------------------------------------------------------------

traffic::SweepOptions sweep_opts(bool counts, std::size_t shards = 1,
                                 traffic::WindowCaptureSink* capture =
                                     nullptr) {
  traffic::SweepOptions opts;
  if (counts) opts.synthesis = traffic::SynthesisMode::kMultinomial;
  if (shards > 1) {
    opts.shard_mode = traffic::ShardMode::kIntraWindow;
    opts.shards_per_window = shards;
  }
  opts.capture = capture;
  return opts;
}

void expect_sweep_identical(const traffic::WindowSweepResult& a,
                            const traffic::WindowSweepResult& b,
                            const std::string& context) {
  expect_identical(a.merged, b.merged, context);
  EXPECT_EQ(a.max_value, b.max_value) << context;
  EXPECT_EQ(a.windows, b.windows) << context;
  EXPECT_EQ(a.ensemble.mean(), b.ensemble.mean()) << context;
  EXPECT_EQ(a.ensemble.stddev(), b.ensemble.stddev()) << context;
}

TEST_F(StoreTest, CountsSweepReplaysByteIdenticalAcrossSeedsAndShards) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 600, 0.02);
  ThreadPool pool(2);
  for (const std::uint64_t seed : {3ull, 17ull, 91ull}) {
    // One capture per seed: the store is quantity-agnostic (full pair
    // counts), so every quantity below replays from the same bytes.
    const std::string dir = store_dir("rt_" + std::to_string(seed));
    store::WriterOptions wopts;
    wopts.node_domain = g.num_nodes();
    wopts.seed = seed;
    store::WindowStoreWriter writer(dir, wopts);
    const auto captured = traffic::sweep_windows(
        g, traffic::RateModel{}, 5000, 6,
        traffic::Quantity::kUndirectedDegree, seed, pool,
        sweep_opts(/*counts=*/true, 1, &writer));
    writer.finish();
    // The capture tee must not perturb the sweep it observes.
    const auto baseline_ud = traffic::sweep_windows(
        g, traffic::RateModel{}, 5000, 6,
        traffic::Quantity::kUndirectedDegree, seed, pool,
        sweep_opts(/*counts=*/true));
    expect_sweep_identical(captured, baseline_ud,
                           "capture tee, seed " + std::to_string(seed));
    // <= 8 stored bytes per canonical (pair, count) record.
    const auto stats = writer.stats();
    ASSERT_GT(stats.records, 0u);
    EXPECT_LE(static_cast<double>(stats.payload_bytes) /
                  static_cast<double>(stats.records),
              8.0);

    store::WindowStoreReader reader(dir);
    ASSERT_EQ(reader.num_windows(), 6u);
    EXPECT_EQ(reader.node_domain(), g.num_nodes());
    for (const auto q : kEveryQuantity) {
      const auto baseline = traffic::sweep_windows(
          g, traffic::RateModel{}, 5000, 6, q, seed, pool,
          sweep_opts(/*counts=*/true));
      for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        const auto replayed = traffic::sweep_windows(
            reader, 6, q, pool, sweep_opts(/*counts=*/false, shards));
        expect_sweep_identical(
            replayed, baseline,
            std::string(traffic::quantity_name(q)) + " seed " +
                std::to_string(seed) + " shards " +
                std::to_string(shards));
      }
    }
  }
}

TEST_F(StoreTest, PacketFastPathCaptureReplaysIdentically) {
  // Packet-mode windows export from the hash-mode accumulator (per-cell
  // records the writer coalesces); the replay must still be exact.
  Rng gen_rng(11);
  const auto g = graph::erdos_renyi(gen_rng, 400, 0.02);
  ThreadPool pool(2);
  const std::string dir = store_dir("packet");
  store::WriterOptions wopts;
  wopts.node_domain = g.num_nodes();
  store::WindowStoreWriter writer(dir, wopts);
  const auto captured = traffic::sweep_windows(
      g, traffic::RateModel{}, 4000, 5, traffic::Quantity::kLinkPackets,
      23, pool, sweep_opts(/*counts=*/false, 1, &writer));
  writer.finish();
  store::WindowStoreReader reader(dir);
  for (const auto q : kEveryQuantity) {
    const auto baseline =
        traffic::sweep_windows(g, traffic::RateModel{}, 4000, 5, q, 23,
                               pool, sweep_opts(/*counts=*/false));
    const auto replayed =
        traffic::sweep_windows(reader, 5, q, pool, sweep_opts(false));
    expect_sweep_identical(replayed, baseline,
                           "packet capture, " +
                               std::string(traffic::quantity_name(q)));
  }
}

TEST_F(StoreTest, ShardedCaptureReplaysIdentically) {
  // Capturing a sharded sweep exports from the merged shard-0
  // accumulator; the store content must equal an unsharded capture.
  Rng gen_rng(13);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.02);
  ThreadPool pool(2);
  const std::string dir = store_dir("shardedcap");
  store::WriterOptions wopts;
  wopts.node_domain = g.num_nodes();
  store::WindowStoreWriter writer(dir, wopts);
  traffic::sweep_windows(g, traffic::RateModel{}, 4000, 5,
                         traffic::Quantity::kUndirectedDegree, 31, pool,
                         sweep_opts(/*counts=*/true, 4, &writer));
  writer.finish();
  store::WindowStoreReader reader(dir);
  const auto baseline = traffic::sweep_windows(
      g, traffic::RateModel{}, 4000, 5,
      traffic::Quantity::kUndirectedDegree, 31, pool,
      sweep_opts(/*counts=*/true));
  const auto replayed = traffic::sweep_windows(
      reader, 5, traffic::Quantity::kUndirectedDegree, pool,
      sweep_opts(false));
  expect_sweep_identical(replayed, baseline, "sharded capture");
}

// ---------------------------------------------------------------------
// torn tails, corrupt blocks, short manifests
// ---------------------------------------------------------------------

// A 5-window store plus its manifest geometry, for surgical truncation.
struct SealedStore {
  std::string dir;
  std::string file;
  std::string bytes;
  std::vector<store::ManifestEntry> manifest;  // ascending window index
};

SealedStore make_sealed_store(const std::string& stem) {
  SealedStore s;
  s.dir = store_dir(stem);
  store::WriterOptions wopts;
  wopts.node_domain = 64;
  store::WindowStoreWriter writer(s.dir, wopts);
  Rng rng(5);
  std::vector<traffic::EdgePacketCounts> records;
  for (std::size_t t = 0; t < 5; ++t) {
    records.clear();
    while (records.size() < 40) {
      NodeId u = rng.uniform_index(64);
      NodeId v = rng.uniform_index(64);
      if (u > v) std::swap(u, v);
      const bool dup =
          std::any_of(records.begin(), records.end(),
                      [&](const traffic::EdgePacketCounts& r) {
                        return r.u == u && r.v == v;
                      });
      if (dup) continue;
      records.push_back({u, v, rng.uniform_index(9) + 1, 0});
    }
    writer.append(t, 1000 + t, records);
  }
  writer.finish();
  s.file = store::WindowStoreWriter::store_file(s.dir);
  s.bytes = read_file(s.file);
  store::WindowStoreReader reader(s.dir);
  s.manifest = reader.manifest();
  return s;
}

TEST_F(StoreTest, TornTailAtBlockBoundaryRecoversThePrefix) {
  const auto s = make_sealed_store("torn_boundary");
  // Kill the capture right after block 3: no manifest, no trailer.
  const auto& m3 = s.manifest[3];
  write_file(s.file,
             s.bytes.substr(0, static_cast<std::size_t>(m3.offset)));
  // Strict: typed failure, not a crash.
  EXPECT_THROW(store::WindowStoreReader(s.dir), DataError);
  // Skip: the intact prefix is recovered and the torn tail charged.
  obs::Registry registry;
  auto opts = skip_opts();
  opts.metrics = &registry;
  store::WindowStoreReader reader(s.dir, opts);
  ASSERT_EQ(reader.num_windows(), 3u);
  EXPECT_FALSE(reader.open_report().clean());
  EXPECT_EQ(reader.open_report().lines_dropped, 1u);
  std::vector<std::byte> buf;
  std::vector<traffic::EdgePacketCounts> out;
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(reader.read_window(t, buf, out), 1000u + t);
    EXPECT_EQ(out.size(), 40u);
  }
  const auto snap = registry.snapshot();
  std::uint64_t torn = 0;
  for (const auto& c : snap.counters) {
    if (c.name == obs::names::kStoreTornTails) torn = c.value;
  }
  EXPECT_EQ(torn, 1u);
}

TEST_F(StoreTest, TornTailMidBlockRecoversWholeBlocksOnly) {
  const auto s = make_sealed_store("torn_midblock");
  const auto& m2 = s.manifest[2];
  write_file(s.file, s.bytes.substr(0, static_cast<std::size_t>(
                                           m2.offset + m2.block_bytes / 2)));
  store::WindowStoreReader reader(s.dir, skip_opts());
  EXPECT_EQ(reader.num_windows(), 2u);
  EXPECT_EQ(reader.open_report().lines_dropped, 1u);
}

TEST_F(StoreTest, TornTailExceedingBudgetThrowsEvenUnderSkip) {
  const auto s = make_sealed_store("torn_budget");
  write_file(s.file, s.bytes.substr(0, static_cast<std::size_t>(
                                           s.manifest[1].offset)));
  EXPECT_THROW(store::WindowStoreReader(s.dir, skip_opts(/*budget=*/0)),
               DataError);
}

TEST_F(StoreTest, ShortManifestFallsBackToBlockScan) {
  const auto s = make_sealed_store("short_manifest");
  // Chop into the manifest region: trailer gone, entries incomplete.
  write_file(s.file, s.bytes.substr(0, s.bytes.size() - 30));
  EXPECT_THROW(store::WindowStoreReader(s.dir), DataError);
  store::WindowStoreReader reader(s.dir, skip_opts());
  // Every block is intact, so recovery finds all five windows.
  EXPECT_EQ(reader.num_windows(), 5u);
  EXPECT_EQ(reader.open_report().lines_dropped, 1u);
}

TEST_F(StoreTest, CorruptBlockChecksumIsATypedPerWindowError) {
  const auto s = make_sealed_store("corrupt");
  // Flip one payload byte inside block 2; the manifest stays valid.
  std::string bytes = s.bytes;
  const std::size_t victim = static_cast<std::size_t>(
      s.manifest[2].offset + store::kBlockHeaderBytes + 5);
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
  write_file(s.file, bytes);

  obs::Registry registry;
  IngestOptions opts;
  opts.metrics = &registry;
  store::WindowStoreReader reader(s.dir, opts);  // manifest intact
  ASSERT_EQ(reader.num_windows(), 5u);
  std::vector<std::byte> buf;
  std::vector<traffic::EdgePacketCounts> out;
  EXPECT_EQ(reader.read_window(1, buf, out), 1001u);
  EXPECT_THROW(reader.read_window(2, buf, out), DataError);
  EXPECT_EQ(reader.read_window(3, buf, out), 1003u);
  std::uint64_t failures = 0;
  for (const auto& c : registry.snapshot().counters) {
    if (c.name == obs::names::kStoreChecksumFailures) failures = c.value;
  }
  EXPECT_EQ(failures, 1u);

  // Replay sweep: the corrupt window charges max_failed_windows exactly
  // like a synthesis failure...
  ThreadPool pool(1);
  auto sweep_o = sweep_opts(false);
  sweep_o.max_failed_windows = 1;
  const auto swept = traffic::sweep_windows(
      reader, 5, traffic::Quantity::kUndirectedDegree, pool, sweep_o);
  ASSERT_EQ(swept.failures.size(), 1u);
  EXPECT_EQ(swept.failures[0].window, 2u);
  EXPECT_EQ(swept.windows, 4u);
  // ...and a zero budget rethrows with the window index attached.
  try {
    traffic::sweep_windows(reader, 5,
                           traffic::Quantity::kUndirectedDegree, pool,
                           sweep_opts(false));
    FAIL() << "corrupt block must surface under a zero failure budget";
  } catch (const traffic::SweepWindowError& e) {
    EXPECT_EQ(e.window(), 2u);
  }
}

// ---------------------------------------------------------------------
// failpoints
// ---------------------------------------------------------------------

TEST_F(StoreTest, CaptureWriteFailpointChargesTheWindowBudget) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 300, 0.02);
  ThreadPool pool(1);  // FIFO: windows append in index order
  const std::string dir = store_dir("fp_capture");
  store::WriterOptions wopts;
  wopts.node_domain = g.num_nodes();
  store::WindowStoreWriter writer(dir, wopts);
  testing::FailpointGuard guard;
  failpoints::arm("io.capture_write", /*fires=*/1, /*skip=*/1);
  auto opts = sweep_opts(/*counts=*/true, 1, &writer);
  opts.max_failed_windows = 1;
  const auto swept = traffic::sweep_windows(
      g, traffic::RateModel{}, 2000, 4,
      traffic::Quantity::kUndirectedDegree, 9, pool, opts);
  writer.finish();
  ASSERT_EQ(swept.failures.size(), 1u);
  EXPECT_EQ(swept.failures[0].window, 1u);
  // The surviving three windows replay cleanly.
  store::WindowStoreReader reader(dir);
  EXPECT_EQ(reader.num_windows(), 3u);
  const auto replayed = traffic::sweep_windows(
      reader, 3, traffic::Quantity::kUndirectedDegree, pool,
      sweep_opts(false));
  EXPECT_EQ(replayed.windows, 3u);
}

TEST_F(StoreTest, ReplayReadFailpointChargesTheWindowBudget) {
  const auto s = make_sealed_store("fp_replay");
  store::WindowStoreReader reader(s.dir);
  ThreadPool pool(1);
  testing::FailpointGuard guard;
  failpoints::arm("io.replay_read", /*fires=*/1, /*skip=*/2);
  auto opts = sweep_opts(false);
  opts.max_failed_windows = 1;
  const auto swept = traffic::sweep_windows(
      reader, 5, traffic::Quantity::kSourcePackets, pool, opts);
  ASSERT_EQ(swept.failures.size(), 1u);
  EXPECT_EQ(swept.failures[0].window, 2u);
  EXPECT_EQ(swept.windows, 4u);

  failpoints::arm("io.replay_read", /*fires=*/1, /*skip=*/0);
  EXPECT_THROW(
      traffic::sweep_windows(reader, 5, traffic::Quantity::kSourcePackets,
                             pool, sweep_opts(false)),
      traffic::SweepWindowError);
}

// ---------------------------------------------------------------------
// serve --record
// ---------------------------------------------------------------------

TEST_F(StoreTest, ServeRecordedWindowsMatchDirectAccumulation) {
  // The daemon tees every fitted window into the store; the recorded
  // pair counts must equal accumulating the same trace slices directly,
  // and the header domain must cover the trace's ids.
  Rng grng(19);
  const auto g = graph::barabasi_albert(grng, 300, 2);
  traffic::SyntheticTrafficGenerator gen(g, traffic::RateModel{}, Rng(20));
  std::vector<traffic::Packet> packets(6000);
  gen.next_batch(packets);
  const std::string trace = ::testing::TempDir() + "palu_store_serve.txt";
  {
    std::ofstream out(trace, std::ios::trunc);
    for (const auto& p : packets) out << p.src << ' ' << p.dst << '\n';
  }
  const std::string dir = store_dir("serve_record");

  serve::ServeOptions opts;
  opts.input_path = trace;
  opts.window_packets = 2000;
  opts.record_path = dir;
  opts.install_signal_handlers = false;
  std::ostringstream lines;
  opts.out = &lines;
  obs::Registry registry;
  opts.metrics = &registry;
  serve::ServeDaemon daemon(std::move(opts));
  ASSERT_EQ(daemon.run(), 0);
  ASSERT_EQ(daemon.windows_published(), 3u);

  store::WindowStoreReader reader(dir);
  ASSERT_EQ(reader.num_windows(), 3u);
  NodeId max_id = 0;
  for (const auto& p : packets) max_id = std::max({max_id, p.src, p.dst});
  EXPECT_GE(reader.node_domain(), max_id + 1);

  std::vector<std::byte> buf;
  std::vector<traffic::EdgePacketCounts> recorded;
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(reader.read_window(t, buf, recorded), 2000u);
    traffic::WindowAccumulator from_store;
    from_store.begin_window();
    from_store.ingest_counts(recorded);
    traffic::WindowAccumulator direct;
    direct.begin_window();
    direct.add_packets(std::span<const traffic::Packet>(
        packets.data() + t * 2000, 2000));
    EXPECT_EQ(from_store.total(), direct.total()) << "window " << t;
    for (const auto q : kEveryQuantity) {
      expect_identical(from_store.histogram(q), direct.histogram(q),
                       "serve window " + std::to_string(t) + " " +
                           std::string(traffic::quantity_name(q)));
    }
  }
}

}  // namespace
}  // namespace palu
