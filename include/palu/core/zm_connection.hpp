// Section VI: the Zipf–Mandelbrot connection, Eq. (5).
//
// Replacing the Poisson star bump (Λ/d)^d by a geometric tail r^{1−d}
// turns the simplified PALU degree law into the one-parameter family
//
//     PALU(d) ∝ d^{−α} + r^{1−d} · ((1+δ)^{−α} − 1)
//
// whose amplitude is pinned to the Zipf–Mandelbrot parameters through
// u/c = (1+δ)^{−α} − 1.  Varying r sweeps a family of curves (Fig 4) that
// approaches the ZM distribution; the map back to generative parameters is
//     (1+δ)^{−α} = (U/C)·e^{−λp}·ζ(α)·p^{−α} + 1.
#pragma once

#include <cstdint>

#include "palu/common/types.hpp"
#include "palu/core/params.hpp"
#include "palu/stats/log_binning.hpp"

namespace palu::core {

/// u/c implied by ZM parameters: (1+δ)^{−α} − 1 (negative for δ > 0).
double u_over_c_from_delta(double alpha, double delta);

/// δ implied by u/c: (u/c + 1)^{−1/α} − 1; requires u/c > −1.
double delta_from_u_over_c(double alpha, double u_over_c);

/// δ implied by generative parameters (Section VI closing relation).
double delta_from_params(const PaluParams& params);

/// The Eq.-(5) curve normalized over d = 1..dmax.
class PaluZmCurve {
 public:
  /// Requires alpha > 0, delta > −1, r > 1, dmax >= 1, and a non-negative
  /// pmf over the support (throws palu::InvalidArgument otherwise).
  PaluZmCurve(double alpha, double delta, double r, Degree dmax);

  double alpha() const noexcept { return alpha_; }
  double delta() const noexcept { return delta_; }
  double r() const noexcept { return r_; }
  Degree dmax() const noexcept { return dmax_; }

  /// Unnormalized d^{−α} + β·r^{1−d} with β = (1+δ)^{−α} − 1.
  double unnormalized(Degree d) const;

  double pmf(Degree d) const;
  double cdf(Degree d) const;

  /// Pooled D(d_i) over bins 0..bin(dmax), by exact partial sums.
  stats::LogBinned pooled() const;

 private:
  /// Σ_{d=1}^{x} of the unnormalized curve (geometric + zeta partial sums).
  double partial_sum(Degree x) const;

  double alpha_;
  double delta_;
  double r_;
  double beta_;  // (1+δ)^{−α} − 1
  Degree dmax_;
  double normalizer_;
};

/// Fits r so the pooled PaluZmCurve best matches the pooled ZM(α, δ, dmax)
/// distribution in least squares — the Fig-4 "PALU tends to ZM" sweep.
/// Returns the best r and the residual SSE.
struct RFitResult {
  double r = 0.0;
  double sse = 0.0;
};
RFitResult fit_r_to_zipf_mandelbrot(double alpha, double delta, Degree dmax);

}  // namespace palu::core
