# Empty dependencies file for gof_bootstrap_test.
# This may be replaced when dependencies are built.
