file(REMOVE_RECURSE
  "CMakeFiles/core_extensions_test.dir/core_extensions_test.cpp.o"
  "CMakeFiles/core_extensions_test.dir/core_extensions_test.cpp.o.d"
  "core_extensions_test"
  "core_extensions_test.pdb"
  "core_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
