# Empty dependencies file for bench_estimator_recovery.
# This may be replaced when dependencies are built.
