// PALU model parameters (Section III-A).
//
// The underlying network has three parts: a preferential-attachment core
// with power-law exponent α; degree-1 leaves attached to the core; and
// "unattached" star components whose leaf counts are iid Po(λ).  C, L, U
// are node proportions — C of core nodes, L of leaves, U of star hubs —
// normalized so that expected node mass is 1:
//
//     C + L + U·(1 + λ − e^{−λ}) = 1
//
// (each hub brings itself, λ expected leaves, minus the e^{−λ} chance of
// being an invisible isolated hub).  The observed network keeps each edge
// independently with probability p (the window-size parameter); λ, C, L,
// U, α are window-invariant, only p grows with the window.
#pragma once

namespace palu::core {

struct PaluParams {
  double lambda = 1.0;  ///< mean star leaf count, λ ∈ [0, 20]
  double core = 0.5;    ///< C: core node proportion
  double leaves = 0.2;  ///< L: leaf node proportion
  double hubs = 0.1;    ///< U: star-hub proportion
  double alpha = 2.0;   ///< core power-law exponent, α ∈ (1.5, 3]
  double window = 1.0;  ///< p: edge retention probability ∈ (0, 1]

  /// C + L + U(1 + λ − e^{−λ}) − 1; zero when normalized.
  double constraint_residual() const;

  /// Throws palu::InvalidArgument when any parameter is outside its
  /// documented domain or the normalization constraint is violated beyond
  /// `tolerance`.
  void validate(double tolerance = 1e-9) const;

  /// Builds a normalized parameter set by solving the constraint for U
  /// given λ, C, L (requires C + L < 1 and λ, C, L, α, p in-domain).
  static PaluParams solve_hubs(double lambda, double core, double leaves,
                               double alpha, double window);

  /// Same parameter set at a different window size (the paper's invariance:
  /// only p changes across windows).
  PaluParams at_window(double new_window) const;
};

}  // namespace palu::core
