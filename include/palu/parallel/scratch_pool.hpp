// Reusable per-worker scratch slots for parallel loops.
//
// parallel_for bodies run on whichever pool worker grabs the chunk, so
// expensive per-worker state (arena-style accumulators, cached samplers)
// cannot live in function locals without being rebuilt every chunk, and
// thread_locals would leak state across unrelated loops sharing the pool.
// A ScratchPool hands each concurrent body invocation an exclusive slot
// and reclaims it when the lease is dropped; slots are constructed lazily,
// so at most max-concurrency slots ever exist regardless of chunk count.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/common/thread_annotations.hpp"

namespace palu {

template <typename T>
class ScratchPool {
 public:
  using Factory = std::function<std::unique_ptr<T>()>;

  /// `factory` builds one slot; called at most once per concurrently
  /// running lease (not per acquire — released slots are reused).
  explicit ScratchPool(Factory factory) : factory_(std::move(factory)) {}

  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// Exclusive handle on one slot; returns the slot on destruction.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          slot_(std::move(other.slot_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (pool_ != nullptr && slot_ != nullptr) {
        pool_->release(std::move(slot_));
      }
    }

    T& operator*() noexcept { return *slot_; }
    T* operator->() noexcept { return slot_.get(); }

   private:
    friend class ScratchPool;
    Lease(ScratchPool* pool, std::unique_ptr<T> slot)
        : pool_(pool), slot_(std::move(slot)) {}

    ScratchPool* pool_;
    std::unique_ptr<T> slot_;
  };

  /// Grabs an idle slot, constructing a fresh one only when none is free.
  Lease acquire() PALU_EXCLUDES(mutex_) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<T> slot = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(slot));
      }
    }
    std::unique_ptr<T> slot = factory_();  // factory runs outside the lock
    PALU_CHECK(slot != nullptr, "ScratchPool: factory returned null slot");
    // Counted only after the factory succeeds, so a throwing factory does
    // not inflate slots_created() with slots that never existed.
    created_.fetch_add(1, std::memory_order_relaxed);
    return Lease(this, std::move(slot));
  }

  /// Slots constructed so far (free + leased); mainly for tests.
  std::size_t slots_created() const noexcept {
    return created_.load(std::memory_order_relaxed);
  }

 private:
  void release(std::unique_ptr<T> slot) PALU_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(slot));
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<T>> free_ PALU_GUARDED_BY(mutex_);
  const Factory factory_;  // immutable after construction; safe unguarded
  std::atomic<std::size_t> created_{0};
};

}  // namespace palu
