# Empty dependencies file for palu_math.
# This may be replaced when dependencies are built.
