#!/bin/sh
# Signal-drain acceptance for `palu_tool serve` (DESIGN.md §5f).
#
# A follow-mode daemon is parked on a fully-written trace (EOF polling,
# so it never exits on its own).  Once every window has been served we
# send SIGTERM and require, within the drain deadline: exit code 0, all
# published result lines intact, a final checkpoint at the last window
# boundary, and a final metrics snapshot whose Prometheus sibling passes
# the strict exposition validator.
#
# Usage: serve_sigterm_test.sh /path/to/palu_tool
set -eu

TOOL="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$TOOL" generate --nodes 2000 --packets 12000 --seed 11 > "$DIR/trace.txt"

"$TOOL" serve --trace "$DIR/trace.txt" --follow --window 3000 \
    --poll-interval-ms 20 --checkpoint "$DIR/ck.txt" \
    --snapshot "$DIR/snap.json" --snapshot-interval-ms 100 \
    > "$DIR/out.txt" 2> "$DIR/err.txt" &
PID=$!

# Wait (bounded) for all four windows to be published.
i=0
while [ "$(grep -c '^window=' "$DIR/out.txt" 2>/dev/null || true)" -lt 4 ]
do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "FAIL: windows not published in time" >&2
        cat "$DIR/err.txt" >&2
        kill -9 "$PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done

kill -TERM "$PID"

# The daemon must exit within the drain deadline (5s default) + margin.
j=0
while kill -0 "$PID" 2>/dev/null; do
    j=$((j + 1))
    if [ "$j" -gt 80 ]; then
        echo "FAIL: did not exit within the drain budget" >&2
        kill -9 "$PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
RC=0
wait "$PID" || RC=$?
if [ "$RC" -ne 0 ]; then
    echo "FAIL: drained exit code $RC != 0" >&2
    cat "$DIR/err.txt" >&2
    exit 1
fi

# All four result lines survived the drain.
[ "$(grep -c '^window=' "$DIR/out.txt")" -eq 4 ] || {
    echo "FAIL: published lines lost in drain" >&2
    exit 1
}
# Final checkpoint flushed at the last boundary.
grep -q '^input offset [0-9]* packets 12000 published 4$' "$DIR/ck.txt" || {
    echo "FAIL: final checkpoint missing or not at the last boundary" >&2
    cat "$DIR/ck.txt" >&2
    exit 1
}
# Final snapshot flushed and valid.
[ -s "$DIR/snap.json" ] || { echo "FAIL: snapshot missing" >&2; exit 1; }
"$TOOL" check-metrics --prom "$DIR/snap.prom"

echo "serve sigterm drain: OK"
