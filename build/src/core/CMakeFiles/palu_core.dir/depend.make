# Empty dependencies file for palu_core.
# This may be replaced when dependencies are built.
