// Small dense row-major matrix/vector kit.
//
// palu's optimizers solve tiny normal-equation systems (2–5 parameters for
// the Zipf–Mandelbrot and PALU fits), so this is a deliberately compact
// dense implementation — no expression templates, no BLAS — with the two
// factorizations the fitters need: Cholesky (for SPD normal equations with
// Levenberg–Marquardt damping) and Householder QR (for plain least squares).
#pragma once

#include <cstddef>
#include <vector>

#include "palu/common/error.hpp"

namespace palu::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    PALU_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    PALU_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const noexcept { return data_; }

  Matrix transposed() const;

  /// this · other
  Matrix multiply(const Matrix& other) const;

  /// this · v
  Vector multiply(const Vector& v) const;

  /// thisᵀ · this (the Gram matrix of the columns), computed symmetric.
  Matrix gram() const;

  /// thisᵀ · v
  Vector transpose_multiply(const Vector& v) const;

  /// Max |a_ij − b_ij|.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
/// Throws palu::ConvergenceError if A is not (numerically) SPD.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a);

  /// Solves A·x = b.
  Vector solve(const Vector& b) const;

  /// log det A.
  double log_determinant() const;

  const Matrix& lower() const noexcept { return l_; }

 private:
  Matrix l_;
};

/// Householder QR of an m×n matrix with m >= n; solves least squares
/// min ‖A·x − b‖₂.
class HouseholderQr {
 public:
  explicit HouseholderQr(const Matrix& a);

  /// Least-squares solution of A·x ≈ b (b has m entries, x has n).
  Vector solve(const Vector& b) const;

  /// |r_kk| of the triangular factor; zero signals rank deficiency.
  double min_abs_diag() const;

 private:
  Matrix qr_;          // Householder vectors below the diagonal, R on/above
  Vector tau_;         // reflector scales
  std::size_t m_ = 0;
  std::size_t n_ = 0;
};

/// Dot product; sizes must agree.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v);

}  // namespace palu::linalg
