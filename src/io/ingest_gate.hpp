// Internal per-line bookkeeping shared by the policy-aware io readers.
// Not installed: the public surface is IngestOptions/IngestReport.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "palu/common/result.hpp"
#include "palu/io/parse.hpp"

namespace palu::io::detail {

/// Applies one ErrorPolicy to a stream of per-line verdicts: throws under
/// kStrict, otherwise counts drops/repairs, pins the first error, and
/// enforces the error budget.
class IngestGate {
 public:
  IngestGate(const char* context, const IngestOptions& opts,
             IngestReport& report)
      : context_(context), opts_(opts), report_(report) {}

  /// A malformed line with nothing salvageable.
  void drop(std::size_t line_number, const std::string& message,
            const std::string& line) {
    if (opts_.policy == ErrorPolicy::kStrict) {
      throw DataError(std::string(context_) + ": malformed line " +
                      std::to_string(line_number) + ": " + message +
                      " (line: '" + line + "')");
    }
    ++report_.lines_dropped;
    note_error(line_number, message, line);
    check_budget();
  }

  /// A malformed line salvaged under kRepair.
  void repaired(std::size_t line_number, const std::string& message,
                const std::string& line) {
    ++report_.lines_repaired;
    note_error(line_number, message, line);
    check_budget();
  }

 private:
  void note_error(std::size_t line_number, const std::string& message,
                  const std::string& line) {
    if (!report_.first_error) {
      report_.first_error = IngestError{line_number, message, line};
    }
  }

  void check_budget() {
    const std::size_t bad = report_.lines_dropped + report_.lines_repaired;
    if (bad > opts_.max_bad_lines) {
      std::string what = std::string(context_) +
                         ": error budget exhausted (" + std::to_string(bad) +
                         " bad lines > max_bad_lines=" +
                         std::to_string(opts_.max_bad_lines) + ")";
      if (report_.first_error) {
        what += "; first error at line " +
                std::to_string(report_.first_error->line_number) + ": " +
                report_.first_error->message;
      }
      throw DataError(what);
    }
  }

  const char* context_;
  const IngestOptions& opts_;
  IngestReport& report_;
};

/// Salvage helper for kRepair: extracts the values of up to `want` digit
/// runs in `body` that parse cleanly as uint64 (overlong runs that would
/// overflow are passed over).
inline std::vector<std::uint64_t> salvage_u64(std::string_view body,
                                              std::size_t want) {
  std::vector<std::uint64_t> out;
  std::size_t i = 0;
  while (i < body.size() && out.size() < want) {
    if (body[i] < '0' || body[i] > '9') {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < body.size() && body[j] >= '0' && body[j] <= '9') ++j;
    const auto parsed = parse_u64(body.substr(i, j - i));
    if (parsed.ok()) out.push_back(parsed.value());
    i = j;
  }
  return out;
}

}  // namespace palu::io::detail
