// Fixture: a failpoint site whose name is missing from tools/failpoints.txt
// must trip the registry rule.
// palu-lint-expect: failpoint-registry
#include "palu/common/failpoint.hpp"

void poke() { PALU_FAILPOINT("lint.fixture.unregistered"); }
