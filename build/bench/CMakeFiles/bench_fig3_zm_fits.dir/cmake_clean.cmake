file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_zm_fits.dir/bench_fig3_zm_fits.cpp.o"
  "CMakeFiles/bench_fig3_zm_fits.dir/bench_fig3_zm_fits.cpp.o.d"
  "bench_fig3_zm_fits"
  "bench_fig3_zm_fits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_zm_fits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
