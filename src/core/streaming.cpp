#include "palu/core/streaming.hpp"

#include "palu/common/error.hpp"

namespace palu::core {

void StreamingPaluEstimator::add_window(
    const stats::DegreeHistogram& window) {
  merged_.merge(window);
  ++windows_;
  try {
    latest_ = fit_palu(merged_, opts_);
    history_.push_back(*latest_);
  } catch (const DataError&) {
    // Aggregate still too thin (e.g. tail shorter than tail_min); keep
    // accumulating.
  }
}

const PaluFit& StreamingPaluEstimator::current() const {
  if (!latest_) {
    throw DataError(
        "StreamingPaluEstimator: no fittable aggregate yet");
  }
  return *latest_;
}

}  // namespace palu::core
