#include "palu/core/anomaly.hpp"

#include "palu/common/error.hpp"
#include "palu/stats/distribution.hpp"

namespace palu::core {

void WindowAnomalyDetector::add_baseline(
    const stats::DegreeHistogram& window) {
  baseline_.merge(window);
}

AnomalyScore WindowAnomalyDetector::score(
    const stats::DegreeHistogram& window) const {
  if (baseline_.empty()) {
    throw DataError("WindowAnomalyDetector: no baseline accumulated");
  }
  AnomalyScore out;
  const auto ks = fit::ks_test_two_sample(baseline_, window);
  out.ks_statistic = ks.statistic;
  out.ks_p_value = ks.p_value;
  out.flagged = ks.p_value < opts_.p_threshold;

  // Baseline fit: cache while the baseline is unchanged.
  if (!baseline_fit_ || baseline_total_at_fit_ != baseline_.total()) {
    try {
      baseline_fit_ = fit_palu(baseline_, opts_.fit);
      baseline_total_at_fit_ = baseline_.total();
    } catch (const DataError&) {
      baseline_fit_.reset();
    }
  }
  if (baseline_fit_) {
    out.mu_baseline =
        baseline_fit_->mu_identifiable ? baseline_fit_->mu : 0.0;
  }
  try {
    const auto window_fit = fit_palu(window, opts_.fit);
    out.mu_window = window_fit.mu_identifiable ? window_fit.mu : 0.0;
  } catch (const DataError&) {
    out.mu_window = 0.0;
  }
  out.d1_baseline = stats::EmpiricalDistribution::from_histogram(baseline_)
                        .mass_at_one();
  out.d1_window =
      stats::EmpiricalDistribution::from_histogram(window).mass_at_one();
  return out;
}

}  // namespace palu::core
