// Unit tests for palu/rng: engine determinism and exactness of the discrete
// samplers (moment checks and chi-square-style pmf comparisons).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/math/gamma.hpp"
#include "palu/math/zeta.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/rng/xoshiro.hpp"

namespace palu::rng {
namespace {

TEST(Xoshiro, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Rng rng(7);
  double mean = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  mean /= kN;
  EXPECT_NEAR(mean, 0.5, 0.005);
}

TEST(Xoshiro, UniformPositiveNeverZero) {
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_GT(rng.uniform_positive(), 0.0);
    ASSERT_LE(rng.uniform_positive(), 1.0);
  }
}

TEST(Xoshiro, UniformIndexIsUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 7;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kN = 700000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_index(kBuckets)];
  const double expected = static_cast<double>(kN) / kBuckets;
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 5.0 * std::sqrt(expected))
        << "bucket " << b;
  }
}

TEST(Xoshiro, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng c0 = parent.fork(0);
  Rng c1 = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c0() == c1());
  EXPECT_EQ(equal, 0);
  // fork is const: the parent state is untouched.
  Rng parent2(5);
  (void)parent2.fork(0);
  Rng parent3(5);
  EXPECT_EQ(parent2(), parent3());
}

TEST(Xoshiro, StateRoundTripsThroughFromState) {
  Rng original(99);
  for (int i = 0; i < 17; ++i) (void)original();
  Rng restored = Rng::from_state(original.state());
  for (int i = 0; i < 64; ++i) ASSERT_EQ(restored(), original());
  // The all-zero fixed point degrades to the default-seeded engine
  // instead of emitting zeros forever.
  Rng fallback = Rng::from_state({0, 0, 0, 0});
  EXPECT_NE(fallback(), 0u);
}

TEST(Xoshiro, ForkMixesAllStateWords) {
  // Regression (PR 2): fork() used to derive children from state word 0
  // alone, so any two parents agreeing on that single word forked
  // bit-identical child streams.
  const std::uint64_t shared = 0x0123456789abcdefULL;
  Rng a = Rng::from_state({shared, 11, 22, 33});
  Rng b = Rng::from_state({shared, 44, 55, 66});
  Rng child_a = a.fork(7);
  Rng child_b = b.fork(7);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child_a() == child_b());
  EXPECT_EQ(equal, 0);
  // Sibling scenario from the bug report: a jumped copy keeps a related
  // state; its children must not track the original's children either.
  Rng parent(123);
  Rng sibling = parent;
  sibling.jump();
  Rng cp = parent.fork(0);
  Rng cs = sibling.fork(0);
  equal = 0;
  for (int i = 0; i < 64; ++i) equal += (cp() == cs());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, JumpChangesState) {
  Rng a(3), b(3);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVarianceMatch) {
  const double lambda = GetParam();
  Rng rng(101);
  constexpr int kN = 400000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const auto k = static_cast<double>(sample_poisson(rng, lambda));
    sum += k;
    sum2 += k * k;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  const double se = std::sqrt(lambda / kN);
  EXPECT_NEAR(mean, lambda, 6.0 * se) << "lambda=" << lambda;
  EXPECT_NEAR(var, lambda, 0.03 * lambda + 6.0 * se) << "lambda=" << lambda;
}

// Spans both the inversion (λ < 10) and PTRS (λ >= 10) paths.
INSTANTIATE_TEST_SUITE_P(Sweep, PoissonMoments,
                         ::testing::Values(0.1, 0.9, 3.0, 9.5, 10.5, 20.0,
                                           54.4, 200.0));

TEST(Poisson, PmfAgreement) {
  // Frequency vs analytic pmf at a PTRS-path λ.
  const double lambda = 14.0;
  Rng rng(303);
  constexpr int kN = 500000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kN; ++i) ++counts[sample_poisson(rng, lambda)];
  for (std::uint64_t k = 6; k <= 24; ++k) {
    const double expected = math::poisson_pmf(k, lambda) * kN;
    ASSERT_GT(expected, 100.0);
    EXPECT_NEAR(counts[k], expected, 6.0 * std::sqrt(expected))
        << "k=" << k;
  }
}

TEST(Poisson, ZeroLambda) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

TEST(Poisson, RejectsNegative) {
  Rng rng(1);
  EXPECT_THROW(sample_poisson(rng, -1.0), palu::InvalidArgument);
}

struct BinomialCase {
  std::uint64_t n;
  double p;
};

class BinomialMoments : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialMoments, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(505);
  constexpr int kN = 300000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const auto k = static_cast<double>(sample_binomial(rng, n, p));
    sum += k;
    sum2 += k * k;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  const double m = static_cast<double>(n) * p;
  const double v = m * (1.0 - p);
  EXPECT_NEAR(mean, m, 6.0 * std::sqrt(v / kN) + 1e-9);
  EXPECT_NEAR(var, v, 0.03 * v + 1e-9);
}

// Covers inversion (n·p < 10), BTRS (n·p >= 10), and the p > 0.5 mirror.
INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialMoments,
    ::testing::Values(BinomialCase{10, 0.05}, BinomialCase{10, 0.5},
                      BinomialCase{100, 0.02}, BinomialCase{100, 0.3},
                      BinomialCase{100, 0.92}, BinomialCase{5000, 0.004},
                      BinomialCase{5000, 0.4}, BinomialCase{1000000, 0.001}));

TEST(Binomial, DegenerateEdges) {
  Rng rng(1);
  EXPECT_EQ(sample_binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(sample_binomial(rng, 50, 0.0), 0u);
  EXPECT_EQ(sample_binomial(rng, 50, 1.0), 50u);
  EXPECT_THROW(sample_binomial(rng, 10, 1.5), palu::InvalidArgument);
}

TEST(Binomial, NeverExceedsN) {
  Rng rng(77);
  for (int i = 0; i < 50000; ++i) {
    EXPECT_LE(sample_binomial(rng, 37, 0.9), 37u);
  }
}

TEST(Poisson, AlgorithmBoundaryIsSeamless) {
  // λ just below and above the inversion/PTRS switch must produce the
  // same law; compare mean and a head pmf between the two.
  constexpr int kN = 400000;
  const auto sample_mean_and_p8 = [](double lambda, std::uint64_t seed) {
    Rng rng(seed);
    double sum = 0.0;
    int at8 = 0;
    for (int i = 0; i < kN; ++i) {
      const auto k = sample_poisson(rng, lambda);
      sum += static_cast<double>(k);
      at8 += (k == 8);
    }
    return std::pair<double, double>(sum / kN,
                                     static_cast<double>(at8) / kN);
  };
  const auto below = sample_mean_and_p8(9.99, 1);
  const auto above = sample_mean_and_p8(10.01, 2);
  EXPECT_NEAR(below.first, 9.99, 0.05);
  EXPECT_NEAR(above.first, 10.01, 0.05);
  EXPECT_NEAR(below.second, math::poisson_pmf(8, 9.99), 0.005);
  EXPECT_NEAR(above.second, math::poisson_pmf(8, 10.01), 0.005);
}

TEST(Zipf, SteepModeBoundaryIsSeamless) {
  // α just below / above the sequential-inversion switch (8.0).
  constexpr int kN = 200000;
  const auto head_mass = [](double alpha, std::uint64_t seed) {
    BoundedZipfSampler zipf(alpha, 2, 1000);
    Rng rng(seed);
    int at2 = 0;
    for (int i = 0; i < kN; ++i) at2 += (zipf(rng) == 2);
    return static_cast<double>(at2) / kN;
  };
  const double below = head_mass(7.95, 3);
  const double above = head_mass(8.05, 4);
  // Analytic P(2) over [2, 1000] ≈ 1/(1 + (2/3)^α + ...).
  const auto p2 = [](double alpha) {
    double z = 0.0;
    for (int d = 2; d <= 1000; ++d) z += std::pow(d, -alpha);
    return std::pow(2.0, -alpha) / z;
  };
  EXPECT_NEAR(below, p2(7.95), 0.005);
  EXPECT_NEAR(above, p2(8.05), 0.005);
}

TEST(Geometric, MeanMatches) {
  Rng rng(909);
  for (double q : {0.1, 0.45, 0.9}) {
    constexpr int kN = 300000;
    double sum = 0.0;
    std::uint64_t minv = ~0ull;
    for (int i = 0; i < kN; ++i) {
      const auto k = sample_geometric(rng, q);
      sum += static_cast<double>(k);
      minv = std::min(minv, k);
    }
    EXPECT_EQ(minv, 1u) << "support starts at 1";
    EXPECT_NEAR(sum / kN, 1.0 / q, 0.02 / q);
  }
}

TEST(Geometric, DegenerateOne) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_geometric(rng, 1.0), 1u);
}

struct ZipfCase {
  double alpha;
  std::uint64_t dmin;
  std::uint64_t dmax;
};

class ZipfExactness : public ::testing::TestWithParam<ZipfCase> {};

TEST_P(ZipfExactness, FrequenciesMatchPmf) {
  const auto [alpha, dmin, dmax] = GetParam();
  BoundedZipfSampler zipf(alpha, dmin, dmax);
  Rng rng(606);
  constexpr int kN = 400000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t d = zipf(rng);
    ASSERT_GE(d, dmin);
    ASSERT_LE(d, dmax);
    ++counts[d];
  }
  // Normalizer over [dmin, dmax].
  double z = 0.0;
  for (std::uint64_t d = dmin; d <= std::min(dmax, dmin + 2000); ++d) {
    z += std::pow(static_cast<double>(d), -alpha);
  }
  if (dmax > dmin + 2000) {
    z += math::hurwitz_zeta(alpha, static_cast<double>(dmin + 2001)) -
         math::hurwitz_zeta(alpha, static_cast<double>(dmax) + 1.0);
  }
  for (std::uint64_t d = dmin; d < dmin + 12 && d <= dmax; ++d) {
    const double expected =
        kN * std::pow(static_cast<double>(d), -alpha) / z;
    if (expected < 50.0) continue;
    EXPECT_NEAR(counts[d], expected, 6.0 * std::sqrt(expected))
        << "d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfExactness,
    ::testing::Values(ZipfCase{1.5, 1, 1000000}, ZipfCase{2.0, 1, 1000},
                      ZipfCase{3.0, 1, 100000}, ZipfCase{2.5, 7, 5000},
                      ZipfCase{1.1, 1, 50}, ZipfCase{2.0, 100, 100000},
                      // steep-exponent sequential-inversion path
                      ZipfCase{9.5, 1, 1000}, ZipfCase{12.0, 3, 500}));

TEST(Zipf, SingletonDomain) {
  BoundedZipfSampler zipf(2.0, 5, 5);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf(rng), 5u);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(BoundedZipfSampler(0.0, 10), palu::InvalidArgument);
  EXPECT_THROW(BoundedZipfSampler(2.0, 0), palu::InvalidArgument);
  EXPECT_THROW(BoundedZipfSampler(2.0, 10, 5), palu::InvalidArgument);
}

TEST(Alias, MatchesWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasSampler alias(weights);
  Rng rng(808);
  constexpr int kN = 400000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kN; ++i) ++counts[alias(rng)];
  for (std::size_t i = 0; i < 4; ++i) {
    const double expected = kN * weights[i] / 10.0;
    EXPECT_NEAR(counts[i], expected, 6.0 * std::sqrt(expected));
  }
}

TEST(Alias, OffsetShiftsSupport) {
  AliasSampler alias({1.0, 1.0}, /*offset=*/100);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto v = alias(rng);
    EXPECT_TRUE(v == 100 || v == 101);
  }
}

TEST(Alias, HandlesZeroWeightEntries) {
  AliasSampler alias({0.0, 5.0, 0.0});
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(alias(rng), 1u);
}

TEST(Alias, RejectsDegenerateInputs) {
  EXPECT_THROW(AliasSampler({}), palu::InvalidArgument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), palu::InvalidArgument);
  EXPECT_THROW(AliasSampler({-1.0, 2.0}), palu::InvalidArgument);
}

}  // namespace
}  // namespace palu::rng
