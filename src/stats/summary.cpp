#include "palu/stats/summary.hpp"

#include <cmath>

#include "palu/common/error.hpp"

namespace palu::stats {

DistributionSummary summarize(const DegreeHistogram& h) {
  PALU_CHECK(!h.empty(), "summarize: empty histogram");
  const auto entries = h.sorted();
  DistributionSummary out;
  out.observations = h.total();
  out.min = entries.front().first;
  out.max = entries.back().first;
  const double n = static_cast<double>(out.observations);
  out.mean = static_cast<double>(h.weighted_total()) / n;
  double m2 = 0.0;
  for (const auto& [d, c] : entries) {
    const double dev = static_cast<double>(d) - out.mean;
    m2 += static_cast<double>(c) * dev * dev;
  }
  out.variance = m2 / n;
  // Gini over sorted values: G = (2·Σ_i i·x_(i) / (n·Σx)) − (n+1)/n with
  // 1-based ranks; runs over grouped counts without expanding.
  const double total_mass = static_cast<double>(h.weighted_total());
  if (total_mass > 0.0) {
    double rank_weighted = 0.0;  // Σ over observations of rank·value
    double rank_before = 0.0;    // observations strictly below this group
    for (const auto& [d, c] : entries) {
      const double cd = static_cast<double>(c);
      // Ranks occupied by this group: rank_before+1 .. rank_before+c;
      // their sum is c·rank_before + c(c+1)/2.
      rank_weighted += static_cast<double>(d) *
                       (cd * rank_before + 0.5 * cd * (cd + 1.0));
      rank_before += cd;
    }
    out.gini =
        2.0 * rank_weighted / (n * total_mass) - (n + 1.0) / n;
  }
  return out;
}

Degree quantile(const DegreeHistogram& h, double q) {
  PALU_CHECK(!h.empty(), "quantile: empty histogram");
  PALU_CHECK(q >= 0.0 && q <= 1.0, "quantile: q out of [0, 1]");
  const auto entries = h.sorted();
  const double target = q * static_cast<double>(h.total());
  double seen = 0.0;
  for (const auto& [d, c] : entries) {
    seen += static_cast<double>(c);
    if (seen >= target) return d;
  }
  return entries.back().first;
}

double top_share(const DegreeHistogram& h, double top_fraction) {
  PALU_CHECK(!h.empty(), "top_share: empty histogram");
  PALU_CHECK(top_fraction > 0.0 && top_fraction <= 1.0,
             "top_share: fraction out of (0, 1]");
  const auto entries = h.sorted();
  const double total_mass = static_cast<double>(h.weighted_total());
  PALU_CHECK(total_mass > 0.0, "top_share: zero total mass");
  double budget =
      top_fraction * static_cast<double>(h.total());  // observations
  double mass = 0.0;
  for (auto it = entries.rbegin(); it != entries.rend() && budget > 0.0;
       ++it) {
    const double take = std::min(budget, static_cast<double>(it->second));
    mass += take * static_cast<double>(it->first);
    budget -= take;
  }
  return mass / total_mass;
}

}  // namespace palu::stats
