// Fixture: an explicitly sanctioned cross-layer include.
// palu-lint-expect-clean
// palu-lint: allow(include-layering) -- exercising the suppression path
#include "palu/serve/daemon.hpp"

int layered_ok() { return 2; }
