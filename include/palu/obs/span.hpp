// RAII trace spans: measure a scope once, deliver the duration to a sink.
//
// A TraceSpan reads std::chrono::steady_clock at construction and again
// at stop()/destruction, then hands the elapsed nanoseconds to either a
// Histogram (registry-backed latency series) or a plain uint64_t
// accumulator (the per-worker stage totals in the sweep hot loop, where
// even a relaxed atomic per batch would be too much).  Both clock reads
// live in src/obs/span.cpp — the single lint-allowlisted timing TU of
// the obs subsystem — so the determinism rule stays enforceable
// tree-wide (DESIGN.md §5c).
#pragma once

#include <cstdint>

namespace palu::obs {

class Histogram;

class TraceSpan {
 public:
  /// Span that observes its duration into a latency histogram.
  explicit TraceSpan(Histogram& sink) noexcept;
  /// Span that adds its duration to a caller-owned accumulator, which
  /// must outlive the span.
  explicit TraceSpan(std::uint64_t& accumulator_ns) noexcept;

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early; idempotent.  Returns the elapsed nanoseconds
  /// delivered to the sink (0 on repeat calls).
  std::uint64_t stop() noexcept;

  ~TraceSpan() { stop(); }

 private:
  Histogram* histogram_ = nullptr;
  std::uint64_t* accumulator_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool stopped_ = false;
};

}  // namespace palu::obs
