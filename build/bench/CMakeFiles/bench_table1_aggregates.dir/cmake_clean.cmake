file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_aggregates.dir/bench_table1_aggregates.cpp.o"
  "CMakeFiles/bench_table1_aggregates.dir/bench_table1_aggregates.cpp.o.d"
  "bench_table1_aggregates"
  "bench_table1_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
