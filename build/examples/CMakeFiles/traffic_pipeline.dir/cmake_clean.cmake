file(REMOVE_RECURSE
  "CMakeFiles/traffic_pipeline.dir/traffic_pipeline.cpp.o"
  "CMakeFiles/traffic_pipeline.dir/traffic_pipeline.cpp.o.d"
  "traffic_pipeline"
  "traffic_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
