#include "palu/math/vexp.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

#include "palu/common/error.hpp"

namespace palu::math {
namespace {

// ---------------------------------------------------------------------------
// exp kernel: x = (64k + j)·(ln2/64) + r, e^x = 2^k · 2^{j/64} · e^r.
// ---------------------------------------------------------------------------

// 64/ln2 and a hi/lo split of ln2 (hi has ~21 trailing zero bits, so
// dividing by 64 keeps the split exact and kd·kLn2Hi rounds to nothing for
// the |kd| ≤ 2^17 this kernel range produces).
constexpr double kInvLn2Times64 = 92.332482616893656943;
constexpr double kLn2HiSplit = 6.93147180369123816490e-01;
constexpr double kLn2LoSplit = 1.90821492927058770002e-10;
constexpr double kLn2Hi = kLn2HiSplit / 64.0;
constexpr double kLn2Lo = kLn2LoSplit / 64.0;
// |x| beyond this routes to libm: keeps 2^k strictly inside the normal
// exponent range so the final scaling is a single bit-built multiply.
constexpr double kExpKernelRange = 700.0;

const std::array<double, 64>& exp2_table() {
  static const std::array<double, 64> table = [] {
    std::array<double, 64> t{};
    for (int j = 0; j < 64; ++j) t[j] = std::exp2(j / 64.0);
    return t;
  }();
  return table;
}

// Requires |x| <= kExpKernelRange.
inline double exp_kernel(double x, const std::array<double, 64>& table) {
  const double t = x * kInvLn2Times64;
  const double kd = std::nearbyint(t);
  const auto k = static_cast<std::int64_t>(kd);
  // r = x − kd·ln2/64 via the split constant; |r| ≤ ln2/128 + rounding.
  const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
  // Degree-5 Taylor kernel: truncation r⁶/720 ≈ 2.3e-17 relative.
  const double p =
      1.0 +
      r * (1.0 +
           r * (0.5 + r * (1.0 / 6.0 +
                           r * (1.0 / 24.0 + r * (1.0 / 120.0)))));
  const std::int64_t e = (k >> 6) + 1023;  // biased exponent, always normal
  const double scale = std::bit_cast<double>(static_cast<std::uint64_t>(e)
                                             << 52);
  return table[static_cast<std::size_t>(k & 63)] * p * scale;
}

// ---------------------------------------------------------------------------
// log1p kernel: 2·atanh(s) with s = x/(2+x) near 0, else an exact 1+x
// reduction (Sterbenz on [−1, −0.5]) through a bit-level frexp.
// ---------------------------------------------------------------------------

// atanh series on s² ≤ 0.0295: atanh(s)/s = 1 + s²/3 + s⁴/5 + …; eleven
// terms leave truncation below 2e-17 relative at both range edges.
inline double atanh_over_s(double z) {
  return 1.0 +
         z * (1.0 / 3.0 +
              z * (1.0 / 5.0 +
                   z * (1.0 / 7.0 +
                        z * (1.0 / 9.0 +
                             z * (1.0 / 11.0 +
                                  z * (1.0 / 13.0 +
                                       z * (1.0 / 15.0 +
                                            z * (1.0 / 17.0 +
                                                 z * (1.0 / 19.0 +
                                                      z * (1.0 /
                                                           21.0))))))))));
}

constexpr double kLn2HiFull = 6.93147180369123816490e-01;  // ln2 hi/lo split
constexpr double kLn2LoFull = 1.90821492927058770002e-10;

// Requires x > −1, finite.
inline double log1p_kernel(double x) {
  if (x >= -0.25 && x <= 0.5) {
    const double s = x / (2.0 + x);
    return 2.0 * s * atanh_over_s(s * s);
  }
  // u = 1 + x is exact on [−1, −0.5] (Sterbenz) and ≤ 0.5 ulp elsewhere in
  // this branch; u is always a positive normal double (the nearest
  // representable x above −1 already gives u ≈ 1.1e-16).
  const double u = 1.0 + x;
  const auto bits = std::bit_cast<std::uint64_t>(u);
  int e = static_cast<int>(bits >> 52) - 1022;
  double m = std::bit_cast<double>((bits & 0x000FFFFFFFFFFFFFULL) |
                                   0x3FE0000000000000ULL);  // m ∈ [0.5, 1)
  if (m < 0.70710678118654752) {  // centre m in [√½, √2): |s| ≤ 0.1716
    m *= 2.0;
    e -= 1;
  }
  const double s = (m - 1.0) / (m + 1.0);
  const double ed = static_cast<double>(e);
  return ed * kLn2HiFull + (2.0 * s * atanh_over_s(s * s) + ed * kLn2LoFull);
}

// ---------------------------------------------------------------------------
// Probe grid + first-use budget gate.
// ---------------------------------------------------------------------------

double ulp_diff(double got, double ref) {
  if (got == ref) return 0.0;
  if (std::isnan(got) || std::isnan(ref)) return 1e30;
  const double mag = std::fabs(ref);
  const double ulp = std::nextafter(mag, 1e308) - mag;
  return std::fabs(got - ref) / ulp;
}

bool kernels_within_budget() {
  static const bool ok = vexp_probe_max_ulp() <= kVexpUlpBudget &&
                         vlog1p_probe_max_ulp() <= kVexpUlpBudget;
  return ok;
}

}  // namespace

double vexp_probe_max_ulp() {
  const auto& table = exp2_table();
  double worst = 0.0;
  // 4096 evenly spaced points across the kernel range plus a fine sweep
  // around 0, where the expectation path spends most of its arguments.
  for (int i = 0; i <= 4096; ++i) {
    const double x = -kExpKernelRange + i * (2.0 * kExpKernelRange / 4096.0);
    worst = std::max(worst, ulp_diff(exp_kernel(x, table), std::exp(x)));
  }
  for (int i = -1000; i <= 1000; ++i) {
    const double x = i * 1e-3;
    worst = std::max(worst, ulp_diff(exp_kernel(x, table), std::exp(x)));
  }
  return worst;
}

double vlog1p_probe_max_ulp() {
  double worst = 0.0;
  // Log-spaced magnitudes on both sides of 0 and a dense sweep of the
  // (−1, 0) visibility range, including points hugging −1.
  for (int i = -1060; i <= 1020; ++i) {
    const double x = std::ldexp(1.0, i / 2);
    worst = std::max(worst, ulp_diff(log1p_kernel(x), std::log1p(x)));
  }
  for (int i = 1; i <= 2000; ++i) {
    const double x = -i * (1.0 / 2001.0);
    worst = std::max(worst, ulp_diff(log1p_kernel(x), std::log1p(x)));
  }
  for (int i = 2; i <= 52; ++i) {
    const double x = std::ldexp(1.0, -i) - 1.0;  // −1 + 2^{−i}
    worst = std::max(worst, ulp_diff(log1p_kernel(x), std::log1p(x)));
  }
  for (int i = 1; i <= 3000; ++i) {  // dense positive sweep across the seams
    const double x = i * 1e-3;
    worst = std::max(worst, ulp_diff(log1p_kernel(x), std::log1p(x)));
  }
  return worst;
}

bool vexp_kernel_active() { return kernels_within_budget(); }

void vexp(std::span<const double> x, std::span<double> out) {
  const std::size_t n = x.size();
  PALU_CHECK(out.size() == n, "vexp: input/output spans must match");
  if (!kernels_within_budget()) {
    for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(x[i]);
    return;
  }
  const auto& table = exp2_table();
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    if (xi >= -kExpKernelRange && xi <= kExpKernelRange) {
      out[i] = exp_kernel(xi, table);
    } else {
      out[i] = std::exp(xi);  // overflow/underflow/NaN semantics from libm
    }
  }
}

void vlog1p(std::span<const double> x, std::span<double> out) {
  const std::size_t n = x.size();
  PALU_CHECK(out.size() == n, "vlog1p: input/output spans must match");
  if (!kernels_within_budget()) {
    for (std::size_t i = 0; i < n; ++i) out[i] = std::log1p(x[i]);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    if (xi > -1.0 && std::isfinite(xi)) {
      out[i] = log1p_kernel(xi);
    } else {
      out[i] = std::log1p(xi);  // −1 → −inf, < −1 → NaN, ±inf/NaN from libm
    }
  }
}

}  // namespace palu::math
