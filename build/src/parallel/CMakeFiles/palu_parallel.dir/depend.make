# Empty dependencies file for palu_parallel.
# This may be replaced when dependencies are built.
