// Fixture: this file sits in layer "math"; including serve crosses the
// DAG upward (edge math -> serve is not declared in tools/layers.txt).
// The common include is declared and must not fire.
// palu-lint-expect: include-layering
#include "palu/common/config.hpp"
#include "palu/serve/daemon.hpp"

int layered() { return 1; }
