// Weighted least-squares line fit y ≈ intercept + slope·x.
//
// Section IV of the paper estimates α and log(c) by linear regression on a
// log-log plot of the degree distribution, and Section IV-A shows the
// log-binned slope is 1−α instead of −α; both claims are exercised through
// this fitter.
#pragma once

#include <span>

namespace palu::fit {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  double slope_stderr = 0.0;
  double intercept_stderr = 0.0;
  std::size_t n = 0;
};

/// Ordinary least squares; requires at least 2 distinct x values.
LinearFit linear_regression(std::span<const double> x,
                            std::span<const double> y);

/// Weighted least squares with per-point weights w >= 0 (at least two
/// points with positive weight and distinct x required).
LinearFit weighted_linear_regression(std::span<const double> x,
                                     std::span<const double> y,
                                     std::span<const double> w);

}  // namespace palu::fit
