// Blocked parallel loops and reductions on top of ThreadPool.
//
// These helpers split an index range [begin, end) into contiguous chunks and
// run one task per chunk.  Chunking (rather than one task per index) keeps
// queue traffic negligible for the fine-grained loops used in histogramming
// and Monte-Carlo sweeps.  The first exception thrown by any chunk is
// rethrown on the calling thread after all chunks finish.
#pragma once

#include <cstddef>
#include <future>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/parallel/thread_pool.hpp"

namespace palu {

/// Partition of [begin, end) handed to one parallel task.
struct IndexRange {
  std::size_t begin;
  std::size_t end;  // exclusive
  std::size_t size() const noexcept { return end - begin; }
};

namespace detail {
/// Computes the chunk list for a range; at most 4 chunks per worker so the
/// pool can load-balance uneven chunks, never chunks smaller than `grain`
/// (a trailing remainder shorter than one grain is folded into the final
/// chunk; the single chunk covering a range shorter than `grain` is the
/// one exception).
std::vector<IndexRange> make_chunks(std::size_t begin, std::size_t end,
                                    std::size_t grain, std::size_t workers);
}  // namespace detail

/// Runs `body(IndexRange)` over [begin, end) on `pool`.  Runs inline when
/// the range fits in a single grain or the pool has one worker.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, Body&& body) {
  PALU_CHECK(begin <= end, "parallel_for: inverted range");
  if (begin == end) return;
  const auto chunks = detail::make_chunks(begin, end, grain, pool.size());
  if (chunks.size() == 1) {
    body(chunks.front());
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(chunks.size());
  for (const IndexRange& r : chunks) {
    futs.push_back(pool.submit([r, &body]() { body(r); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Convenience overload using the global pool with a default grain.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body) {
  parallel_for(ThreadPool::global(), begin, end, /*grain=*/1024,
               std::forward<Body>(body));
}

/// Parallel reduction: `chunk_fn(IndexRange) -> T` computes a partial value
/// per chunk, `combine(T, T) -> T` folds partials in chunk order (so
/// non-commutative but associative combines are fine).
template <typename T, typename ChunkFn, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, T identity, ChunkFn&& chunk_fn,
                  Combine&& combine) {
  PALU_CHECK(begin <= end, "parallel_reduce: inverted range");
  if (begin == end) return identity;
  const auto chunks = detail::make_chunks(begin, end, grain, pool.size());
  if (chunks.size() == 1) {
    return combine(std::move(identity), chunk_fn(chunks.front()));
  }
  std::vector<std::future<T>> futs;
  futs.reserve(chunks.size());
  for (const IndexRange& r : chunks) {
    futs.push_back(pool.submit([r, &chunk_fn]() { return chunk_fn(r); }));
  }
  T acc = std::move(identity);
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      acc = combine(std::move(acc), f.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return acc;
}

}  // namespace palu
