// Synthetic packet streams (the substitution for WIDE/CAIDA captures).
//
// The paper's pipeline consumes fixed-size windows of N_V valid packets cut
// from a trunk capture.  We replay that collection process against a known
// underlying network: each edge gets a long-term traffic rate, packets are
// drawn rate-proportionally, and windows of exactly N_V packets are
// aggregated into A_t.  Because a window sees an edge only if at least one
// of its packets lands inside, growing N_V raises the PALU window
// parameter p exactly as Section III describes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/graph/graph.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/rng/xoshiro.hpp"
#include "palu/traffic/packet.hpp"
#include "palu/traffic/sparse_matrix.hpp"

namespace palu::traffic {

/// How per-edge long-term traffic rates are assigned.
struct RateModel {
  enum class Kind {
    kUniform,   // all edges equally chatty
    kPareto,    // heavy-tailed rates: rate = (1/u)^{1/tail}
    kDegreeProduct,  // rate ∝ (deg u · deg v): busy hosts chat more
  };
  Kind kind = Kind::kPareto;
  double pareto_tail = 1.5;  // smaller = heavier tail
};

/// Draws one long-term rate per edge of `g` according to `model`
/// (unnormalized; the generator normalizes).  Splitting rate assignment
/// from packet drawing lets many windows share one traffic matrix while
/// using independent packet RNG streams.
std::vector<double> make_edge_rates(const graph::Graph& g,
                                    const RateModel& model, Rng rng);

/// Read-only view of the merged unordered-pair support the count-space and
/// expectation paths share: parallel edges and both orientations collapsed
/// into one entry per pair, weights normalized (Σ weight = 1), and the
/// pair's exact forward (u → v) mixture probability.  Spans alias the
/// owning generator and are invalidated by its destruction or move.
struct PairSupportView {
  std::span<const NodeId> u;
  std::span<const NodeId> v;
  std::span<const double> weight;
  std::span<const double> forward_prob;

  std::size_t size() const noexcept { return u.size(); }
};

class SyntheticTrafficGenerator {
 public:
  /// Builds a generator over `underlying`'s edges.  The graph must have at
  /// least one edge.  Packets are emitted in the stored edge direction with
  /// probability `forward_prob` (0.5 = symmetric conversations).
  SyntheticTrafficGenerator(const graph::Graph& underlying,
                            const RateModel& rates, Rng rng,
                            double forward_prob = 0.5);

  /// Same, with precomputed per-edge rates (one per edge, non-negative
  /// with positive sum); `rng` drives packet draws only.
  SyntheticTrafficGenerator(const graph::Graph& underlying,
                            std::vector<double> rates, Rng rng,
                            double forward_prob = 0.5);

  /// Next valid packet in the stream.
  Packet next();

  /// Fills `out` with the next out.size() valid packets.  Identical RNG
  /// consumption order to calling next() repeatedly — streams stay
  /// byte-for-byte reproducible — but batched so the sweep fast path
  /// amortizes call overhead and keeps the alias tables hot.
  void next_batch(std::span<Packet> out);

  /// Replaces the packet RNG without rebuilding edges, rates, or the alias
  /// sampler.  The stream then matches a freshly constructed generator
  /// handed the same rng — the sweep fast path's way of reusing one
  /// generator across windows with independent per-window streams.
  void reseed(Rng rng) noexcept { rng_ = rng; }

  /// Count-space window synthesis: one whole window of `n_valid` packets
  /// drawn directly as per-pair packet counts, replacing n_valid
  /// individual draws with O(num_edges) work — the cost is (near-)
  /// independent of the window size, which is what makes the paper's
  /// p → 1 regime (N_V up to 1e8) sweepable.
  ///
  /// Exactness: under iid rate-proportional draws the per-edge counts of
  /// a window are exactly Multinomial(n_valid, rates), and each edge's
  /// direction split is Binomial(count, forward_prob).  Edges sharing an
  /// unordered endpoint pair (parallel edges, both orientations) are
  /// merged into one support pair with summed weight and the exact
  /// per-pair forward probability, so `out` never repeats a pair.
  ///
  /// `out` is resized to the full merged-pair support, in a fixed
  /// deterministic order, with forward == backward == 0 rows for pairs
  /// that drew no packets; repeated calls reuse its capacity.  Emitting
  /// the whole support keeps every per-window pass (here and in the
  /// consumers) at a size that depends only on the graph, so per-window
  /// cost stays flat as N_V grows instead of tracking the active-pair
  /// count.  Consumes the same RNG as next()/next_batch() but in a
  /// different order: a counts window is distributionally equivalent to
  /// a packet window for the same seed, not byte-identical.
  void next_window_counts(Count n_valid, std::vector<EdgePacketCounts>& out);

  /// The merged-pair support in its fixed deterministic order (built
  /// lazily, same structure next_window_counts samples from).  This is
  /// what the analytic expectation path (traffic/expected_window.hpp)
  /// evaluates: per-pair visibilities 1 − (1 − weight)^{N_V} follow
  /// directly from the returned weights.
  PairSupportView pair_support();

  /// Aggregates the next `n_valid` packets into a window matrix A_t.
  SparseCountMatrix window(Count n_valid);

  /// Aggregates `count` consecutive windows of `n_valid` packets each.
  std::vector<SparseCountMatrix> windows(Count n_valid, std::size_t count);

  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Per-edge rates normalized to sum 1 (compensated summation, so the
  /// heavy-tailed Pareto vectors of the default RateModel keep their
  /// small rates' mass), in edge order.
  const std::vector<double>& rates() const noexcept { return rates_; }

  /// Probability that a specific edge receives >= 1 packet in a window of
  /// n_valid packets: 1 − (1 − rate_e)^{n_valid}.  Averaged over edges this
  /// is the effective PALU window parameter p for the window size.
  /// Memoized per n_valid (forward_prob is fixed per generator): the O(E)
  /// log1p/expm1 pass runs once per distinct window size, so sweep setup
  /// and the Table-I benches stop paying it per call.  The memo makes
  /// const calls non-reentrant: do not call concurrently on one instance.
  /// Throws palu::InvalidArgument on a moved-from generator (empty rate
  /// vector); a rate of exactly 1 (one edge holding all mass) and
  /// n_valid == 0 are handled exactly instead of producing NaN.
  double expected_edge_visibility(Count n_valid) const;

  /// Expected unique *directed* links in a window of n_valid packets (the
  /// Table-I count: an edge active both ways contributes two (src, dst)
  /// cells):  Σ_e [(1 − (1 − f·r_e)^{N}) + (1 − (1 − (1−f)·r_e)^{N})]
  /// with f = forward_prob.  Memoized like expected_edge_visibility, with
  /// the same empty-generator and boundary-rate guarantees.
  double expected_unique_links(Count n_valid) const;

 private:
  /// Count-space support: one entry per distinct unordered endpoint pair,
  /// with parallel edges' weights merged and the pair's exact forward
  /// (u → v) probability.  Built lazily on the first next_window_counts
  /// call; packet-space users never pay for it.
  struct CountsSupport {
    rng::MultinomialSampler sampler;  // over merged pair weights
    std::vector<NodeId> u, v;         // canonical orientation per pair
    std::vector<double> weight;       // merged pair weights (sum 1)
    std::vector<double> forward_prob; // P[packet on pair flows u → v]
    std::vector<Count> counts;        // scratch: one multinomial draw
  };
  void build_counts_support();

  std::vector<graph::Edge> edges_;
  std::vector<double> rates_;       // normalized to sum 1
  std::optional<rng::AliasSampler> sampler_;
  std::optional<CountsSupport> counts_support_;
  Rng rng_;
  double forward_prob_;
  // Memo caches for the expected_* closed forms, keyed by n_valid (small
  // linear-probe lists: sweeps query a handful of window sizes, many
  // times each).
  mutable std::vector<std::pair<Count, double>> visibility_memo_;
  mutable std::vector<std::pair<Count, double>> unique_links_memo_;
};

}  // namespace palu::traffic
