// Real-branch Lambert W: the inverse of w ↦ w·e^w on [−1, ∞).
//
// W₀ is the standard companion of moment-ratio inversions: the Λ equation
// g(Λ) = r of lambda_ratio.hpp rearranges (drop one O(r−Λ) term) to
//
//     (r − Λ)·e^{−(r−Λ)} = e^{−r}·r²   ⇒   Λ ≈ r + W₀(−r²·e^{−r}),
//
// which seeds Newton within a few percent of the root for r ≳ 4 instead of
// the first-order guess 3(r − 2).  The implementation is the classical
// scheme: a regime-selected starting value (Taylor series near 0, a
// branch-point √ series near −1/e, log-asymptotics for large x) polished by
// Halley iteration to full double precision.
#pragma once

namespace palu::math {

/// Principal branch W₀(x) for x ≥ −1/e: the unique w ≥ −1 with w·e^w = x.
/// Arguments within a few ulp below −1/e (rounding of the branch point)
/// clamp to W₀(−1/e) = −1; anything further below throws
/// palu::InvalidArgument.  NaN propagates.
double lambert_w0(double x);

}  // namespace palu::math
