#include "palu/traffic/quantities.hpp"

#include <unordered_map>

#include "palu/common/error.hpp"

namespace palu::traffic {

std::string_view quantity_name(Quantity q) {
  switch (q) {
    case Quantity::kSourcePackets: return "source_packets";
    case Quantity::kSourceFanOut: return "source_fanout";
    case Quantity::kLinkPackets: return "link_packets";
    case Quantity::kDestinationFanIn: return "destination_fanin";
    case Quantity::kDestinationPackets: return "destination_packets";
    case Quantity::kUndirectedDegree: return "undirected_degree";
  }
  return "unknown";
}

stats::DegreeHistogram quantity_histogram(const SparseCountMatrix& a,
                                          Quantity q) {
  stats::DegreeHistogram h;
  switch (q) {
    case Quantity::kSourcePackets:
      for (const auto& [id, m] : a.source_marginals()) h.add(m.packets);
      break;
    case Quantity::kSourceFanOut:
      for (const auto& [id, m] : a.source_marginals()) h.add(m.fan);
      break;
    case Quantity::kLinkPackets:
      a.for_each_cell(
          [&h](NodeId, NodeId, Count packets) { h.add(packets); });
      break;
    case Quantity::kDestinationFanIn:
      for (const auto& [id, m] : a.destination_marginals()) h.add(m.fan);
      break;
    case Quantity::kDestinationPackets:
      for (const auto& [id, m] : a.destination_marginals()) h.add(m.packets);
      break;
    case Quantity::kUndirectedDegree:
      return undirected_degree_histogram(a);
  }
  return h;
}

graph::Graph window_to_graph(const SparseCountMatrix& a,
                             std::vector<NodeId>* id_map) {
  std::unordered_map<NodeId, NodeId> remap;
  graph::Graph g(0);
  if (id_map) id_map->clear();
  const auto id_of = [&](NodeId raw) {
    const auto [it, inserted] = remap.try_emplace(raw, g.num_nodes());
    if (inserted) {
      g.add_nodes(1);
      if (id_map) id_map->push_back(raw);
    }
    return it->second;
  };
  for (const auto& e : a.entries()) {
    if (e.src == e.dst) continue;
    g.add_edge(id_of(e.src), id_of(e.dst));
  }
  return g.simplified();
}

stats::DegreeHistogram undirected_degree_histogram(
    const SparseCountMatrix& a) {
  // Distinct counterparties per node, both directions merged; a node that
  // both sends to and receives from the same peer counts that peer once.
  // Each unordered pair {s, d} is credited exactly once via a reverse-cell
  // lookup — no per-node peer sets and no sorted entries() snapshot.
  std::unordered_map<NodeId, Count> degree;
  degree.reserve(a.nnz());
  a.for_each_cell([&](NodeId src, NodeId dst, Count) {
    if (src == dst) return;  // self-traffic adds no network edge
    // The (min, max) orientation owns the pair; the mirror cell, when it
    // exists, only counts if its partner is absent.
    if (src > dst && a.at(dst, src) != 0) return;
    ++degree[src];
    ++degree[dst];
  });
  stats::DegreeHistogram h;
  for (const auto& [node, d] : degree) h.add(d);
  return h;
}

}  // namespace palu::traffic
