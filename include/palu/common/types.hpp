// Fundamental identifier and count types used across the palu library.
#pragma once

#include <cstdint>

namespace palu {

/// Identifier of a network node (source or destination endpoint).
using NodeId = std::uint64_t;

/// Degree of a node, or any small count aggregated from a traffic window.
using Degree = std::uint64_t;

/// Count of packets / edges / nodes; large enough for trillion-scale windows.
using Count = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = ~NodeId{0};

}  // namespace palu
