// Unit tests for the DMS tunable-exponent growth core, the webcrawl
// sampler, and the streaming PALU estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "palu/common/error.hpp"
#include "palu/core/generator.hpp"
#include "palu/core/streaming.hpp"
#include "palu/fit/powerlaw_mle.hpp"
#include "palu/graph/components.hpp"
#include "palu/graph/crawl.hpp"
#include "palu/graph/generators.hpp"
#include "palu/stats/distribution.hpp"

namespace palu {
namespace {

// ------------------------------------------------------------------ DMS

TEST(DmsAttachment, ZeroAttractivenessMatchesBaEdgeBudget) {
  Rng rng(1);
  const NodeId n = 5000;
  const graph::Graph g = graph::dms_attachment(rng, n, 3, 0.0);
  EXPECT_EQ(g.num_edges(), 6u + (n - 4) * 3u);
  const auto deg = g.degrees();
  EXPECT_EQ(*std::min_element(deg.begin(), deg.end()), 3u);
  // Grown graphs are connected.
  const auto census = graph::classify_topology(g);
  EXPECT_EQ(census.total_components() + census.isolated_nodes, 1u);
}

struct DmsCase {
  NodeId m;
  double a;
  double expected_alpha;  // 3 + a/m
};

class DmsExponent : public ::testing::TestWithParam<DmsCase> {};

TEST_P(DmsExponent, TailExponentTracksTheory) {
  const auto [m, a, expected] = GetParam();
  Rng rng(2);
  const graph::Graph g = graph::dms_attachment(rng, 60000, m, a);
  const auto h = stats::DegreeHistogram::from_degrees(g.degrees());
  const auto fitted = fit::fit_power_law_fixed_xmin(h, 2 * m + 2);
  EXPECT_NEAR(fitted.alpha, expected, 0.25)
      << "m=" << m << " a=" << a;
}

// a > 0 (α > 3) converges to its asymptotic slope too slowly for a tight
// finite-size check; the paper's range α ∈ (2, 3) (a < 0) is what we pin.
INSTANTIATE_TEST_SUITE_P(Sweep, DmsExponent,
                         ::testing::Values(DmsCase{2, 0.0, 3.0},
                                           DmsCase{2, -1.0, 2.5},
                                           DmsCase{2, -1.6, 2.2},
                                           DmsCase{3, -1.5, 2.5},
                                           DmsCase{1, -0.5, 2.5}));

TEST(DmsAttachment, RejectsBadParameters) {
  Rng rng(3);
  EXPECT_THROW(graph::dms_attachment(rng, 100, 0, 0.0), InvalidArgument);
  EXPECT_THROW(graph::dms_attachment(rng, 3, 3, 0.0), InvalidArgument);
  EXPECT_THROW(graph::dms_attachment(rng, 100, 2, -2.0), InvalidArgument);
}

// ---------------------------------------------------------------- crawl

TEST(BfsCrawl, RespectsBudgetAndInducesSubgraph) {
  Rng rng(4);
  const auto g = graph::barabasi_albert(rng, 5000, 2);
  const auto crawl = graph::bfs_crawl(rng, g, 500);
  EXPECT_EQ(crawl.visited.size(), 500u);
  EXPECT_EQ(crawl.subgraph.num_nodes(), 500u);
  EXPECT_GE(crawl.seed_count, 1u);
  // Every induced edge's endpoints are visited nodes with matching ids.
  for (const auto& e : crawl.subgraph.edges()) {
    ASSERT_LT(e.u, crawl.visited.size());
    ASSERT_LT(e.v, crawl.visited.size());
  }
}

TEST(BfsCrawl, ExhaustsSmallGraphs) {
  Rng rng(5);
  graph::Graph g(10);
  g.add_edge(0, 1);
  const auto crawl = graph::bfs_crawl(rng, g, 100);
  EXPECT_EQ(crawl.visited.size(), 10u);
  // Disconnected nodes require fresh seeds.
  EXPECT_GE(crawl.seed_count, 8u);
}

TEST(BfsCrawl, OversamplesSupernodes) {
  // The paper: webcrawls naturally sample the core/supernodes.  Compare
  // the crawl view's mean degree with the population mean.
  const auto params = core::PaluParams::solve_hubs(3.0, 0.3, 0.3, 2.1,
                                                   1.0);
  Rng rng(6);
  const auto net = core::generate_underlying(params, 100000, rng);
  const auto crawl = graph::bfs_crawl(rng, net.graph, 5000);
  const auto crawl_view =
      stats::EmpiricalDistribution::from_histogram(
          graph::crawl_view_degrees(net.graph, crawl));
  const auto population = stats::EmpiricalDistribution::from_histogram(
      stats::DegreeHistogram::from_degrees(net.graph.degrees()));
  EXPECT_GT(crawl_view.mean(), 1.5 * population.mean());
  // And it under-represents degree-1 nodes (leaves + star leaves).
  EXPECT_LT(crawl_view.mass_at_one(), population.mass_at_one());
}

TEST(BfsCrawl, MissesUnattachedComponents) {
  // A single-seed crawl that stays within its component sees zero
  // unattached links even when the network is full of them.
  const auto params = core::PaluParams::solve_hubs(1.0, 0.2, 0.1, 2.1,
                                                   1.0);
  Rng rng(7);
  const auto net = core::generate_underlying(params, 50000, rng);
  // Budget small enough that one core seed suffices whenever the seed
  // lands in the giant core (retry seeds until it does).
  graph::CrawlResult crawl;
  for (int attempt = 0; attempt < 50; ++attempt) {
    crawl = graph::bfs_crawl(rng, net.graph, 2000);
    if (crawl.seed_count == 1) break;
  }
  ASSERT_EQ(crawl.seed_count, 1u);
  const auto census = graph::classify_topology(crawl.subgraph);
  EXPECT_EQ(census.unattached_links, 0u);
}

TEST(BfsCrawl, ValidatesArguments) {
  Rng rng(8);
  EXPECT_THROW(graph::bfs_crawl(rng, graph::Graph(5), 0),
               InvalidArgument);
  EXPECT_THROW(graph::bfs_crawl(rng, graph::Graph(0), 10),
               InvalidArgument);
}

// ------------------------------------------------------------ streaming

TEST(StreamingEstimator, ConvergesToBatchFit) {
  const auto params = core::PaluParams::solve_hubs(4.0, 0.35, 0.25, 2.2,
                                                   0.8);
  Rng rng(9);
  core::StreamingPaluEstimator streaming;
  stats::DegreeHistogram batch;
  for (int w = 0; w < 6; ++w) {
    Rng wrng = rng.fork(w + 1);
    const auto h = core::sample_observed_degrees(params, 60000, wrng);
    streaming.add_window(h);
    batch.merge(h);
  }
  EXPECT_EQ(streaming.windows_seen(), 6u);
  ASSERT_TRUE(streaming.has_fit());
  const auto batch_fit = core::fit_palu(batch);
  EXPECT_DOUBLE_EQ(streaming.current().alpha, batch_fit.alpha);
  EXPECT_DOUBLE_EQ(streaming.current().mu, batch_fit.mu);
  EXPECT_EQ(streaming.aggregate().total(), batch.total());
}

TEST(StreamingEstimator, HistoryTracksEveryRefit) {
  const auto params = core::PaluParams::solve_hubs(4.0, 0.35, 0.25, 2.2,
                                                   0.8);
  Rng rng(10);
  core::StreamingPaluEstimator streaming;
  for (int w = 0; w < 4; ++w) {
    Rng wrng = rng.fork(w + 100);
    streaming.add_window(
        core::sample_observed_degrees(params, 40000, wrng));
  }
  EXPECT_EQ(streaming.history().size(), 4u);
  // Estimates should tighten: later alphas at least as close to truth on
  // average (weak check: last within band).
  EXPECT_NEAR(streaming.history().back().alpha, params.alpha, 0.35);
}

TEST(StreamingEstimator, HistoryCapBoundsRetainedRefits) {
  // Regression: history_ grew without bound, one PaluFit per refit, so a
  // long-lived streaming estimator leaked memory linearly in windows.
  // With a cap the newest entries are kept and the trajectory matches the
  // uncapped run's tail; cap 0 (the default) keeps everything.
  const auto params = core::PaluParams::solve_hubs(4.0, 0.35, 0.25, 2.2,
                                                   0.8);
  Rng rng(12);
  core::StreamingPaluEstimator uncapped;
  core::StreamingPaluEstimator capped({}, /*history_cap=*/3);
  EXPECT_EQ(capped.history_cap(), 3u);
  for (int w = 0; w < 7; ++w) {
    Rng wrng = rng.fork(w + 200);
    const auto h = core::sample_observed_degrees(params, 40000, wrng);
    Rng wrng_again = rng.fork(w + 200);
    const auto h_again =
        core::sample_observed_degrees(params, 40000, wrng_again);
    uncapped.add_window(h);
    capped.add_window(h_again);
  }
  ASSERT_EQ(uncapped.history().size(), 7u);
  ASSERT_EQ(capped.history().size(), 3u);
  // The cap drops oldest-first: the retained entries are exactly the
  // uncapped run's last three, in order.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(capped.history()[i].alpha,
                     uncapped.history()[4 + i].alpha);
    EXPECT_DOUBLE_EQ(capped.history()[i].mu, uncapped.history()[4 + i].mu);
  }
  // Aggregate state (and thus the live fit) is unaffected by the cap.
  EXPECT_DOUBLE_EQ(capped.current().alpha, uncapped.current().alpha);
  EXPECT_EQ(capped.aggregate().total(), uncapped.aggregate().total());
}

TEST(StreamingEstimator, AbsorbsThinWindowsSilently) {
  core::StreamingPaluEstimator streaming;
  stats::DegreeHistogram thin;
  thin.add(1, 5);
  thin.add(2, 2);
  streaming.add_window(thin);  // unfittable: no tail support
  EXPECT_EQ(streaming.windows_seen(), 1u);
  EXPECT_FALSE(streaming.has_fit());
  EXPECT_THROW(streaming.current(), DataError);
}

TEST(StreamingEstimator, DriftShowsUpInHistory) {
  // Feed windows from a low-λ regime, then a high-λ regime: the μ
  // trajectory must move up.
  Rng rng(11);
  core::StreamingPaluEstimator calm_then_botty;
  const auto calm = core::PaluParams::solve_hubs(1.0, 0.35, 0.25, 2.2,
                                                 1.0);
  const auto botty = core::PaluParams::solve_hubs(8.0, 0.35, 0.25, 2.2,
                                                  1.0);
  for (int w = 0; w < 3; ++w) {
    Rng wrng = rng.fork(w + 1);
    calm_then_botty.add_window(
        core::sample_observed_degrees(calm, 80000, wrng));
  }
  const double mu_before = calm_then_botty.current().mu;
  for (int w = 0; w < 6; ++w) {
    Rng wrng = rng.fork(w + 50);
    calm_then_botty.add_window(
        core::sample_observed_degrees(botty, 80000, wrng));
  }
  const double mu_after = calm_then_botty.current().mu;
  EXPECT_GT(mu_after, 2.0 * mu_before);
}

}  // namespace
}  // namespace palu
