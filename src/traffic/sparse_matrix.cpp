#include "palu/traffic/sparse_matrix.hpp"

#include <algorithm>

namespace palu::traffic {

SparseCountMatrix SparseCountMatrix::from_packets(
    std::span<const Packet> window) {
  SparseCountMatrix a;
  a.cells_.reserve(window.size());
  for (const Packet& p : window) a.add(p.src, p.dst);
  return a;
}

void SparseCountMatrix::add(NodeId src, NodeId dst, Count count) {
  if (count == 0) return;
  cells_[{src, dst}] += count;
  total_ += count;
}

Count SparseCountMatrix::at(NodeId src, NodeId dst) const {
  const auto it = cells_.find({src, dst});
  return it == cells_.end() ? 0 : it->second;
}

std::vector<SparseCountMatrix::Entry> SparseCountMatrix::entries() const {
  std::vector<Entry> out;
  out.reserve(cells_.size());
  for (const auto& [key, count] : cells_) {
    out.push_back(Entry{key.first, key.second, count});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.src < b.src || (a.src == b.src && a.dst < b.dst);
  });
  return out;
}

std::unordered_map<NodeId, SparseCountMatrix::Marginal>
SparseCountMatrix::source_marginals() const {
  std::unordered_map<NodeId, Marginal> out;
  out.reserve(cells_.size());
  for (const auto& [key, count] : cells_) {
    Marginal& m = out[key.first];
    m.packets += count;
    ++m.fan;
  }
  return out;
}

std::unordered_map<NodeId, SparseCountMatrix::Marginal>
SparseCountMatrix::destination_marginals() const {
  std::unordered_map<NodeId, Marginal> out;
  out.reserve(cells_.size());
  for (const auto& [key, count] : cells_) {
    Marginal& m = out[key.second];
    m.packets += count;
    ++m.fan;
  }
  return out;
}

}  // namespace palu::traffic
