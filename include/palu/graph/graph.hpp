// Undirected multigraph as an edge list with node count.
//
// The paper treats traffic networks as undirected for the degree analysis
// (Section III) — "Using a directed model has a small impact on the overall
// degree distribution analysis."  Self-loops and parallel edges can arise
// from the configuration-model core builder; helpers below expose both raw
// and simplified views.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "palu/common/types.hpp"

namespace palu::graph {

struct Edge {
  NodeId u;
  NodeId v;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(NodeId num_nodes) : num_nodes_(num_nodes) {}
  Graph(NodeId num_nodes, std::vector<Edge> edges);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Appends an edge; endpoints must be < num_nodes().
  void add_edge(NodeId u, NodeId v);

  /// Appends `count` fresh isolated nodes, returning the first new id.
  NodeId add_nodes(NodeId count);

  /// Per-node degree (self-loops count 2, parallel edges count each).
  std::vector<Degree> degrees() const;

  /// Copy with self-loops and duplicate edges removed (edges are
  /// canonicalized u <= v before deduplication).
  Graph simplified() const;

  /// Compressed sparse row adjacency (neighbor lists), built on demand.
  struct Adjacency {
    std::vector<std::size_t> offsets;  // size num_nodes + 1
    std::vector<NodeId> neighbors;
    std::size_t degree(NodeId v) const {
      return offsets[v + 1] - offsets[v];
    }
  };
  Adjacency adjacency() const;

  /// Disjoint union: appends `other`'s nodes and edges after this graph's,
  /// returning the id offset assigned to `other`'s node 0.
  NodeId append_disjoint(const Graph& other);

 private:
  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace palu::graph
