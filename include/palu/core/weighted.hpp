// Weighted-edge extension (Section VII future work: "extend to the case of
// weighted edges where potential weights could be the number of packets or
// number of bytes sent along a link").
//
// Each observed edge is dressed with an iid positive integer weight — the
// long-term packet (or byte) count of the link.  Two laws are provided:
// a heavy-tailed bounded zeta (elephant flows) and a geometric (light
// tail).  The module exposes the two Fig-1-style weighted quantities: the
// link-weight histogram and the node-strength histogram (strength = sum of
// incident edge weights), plus the predicted strength tail exponent
// min(α, γ): whichever is heavier of the degree tail (many links) and the
// weight tail (one elephant link) dominates a node's strength.
#pragma once

#include <vector>

#include "palu/common/types.hpp"
#include "palu/graph/graph.hpp"
#include "palu/rng/xoshiro.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::core {

struct WeightModel {
  enum class Law {
    kZeta,       // P(w) ∝ w^{-gamma}, w ∈ [1, wmax]
    kGeometric,  // P(w) = q(1-q)^{w-1}; param = q
  };
  Law law = Law::kZeta;
  double param = 2.0;       // gamma for kZeta, q for kGeometric
  Count wmax = 1u << 20;    // zeta truncation
};

/// One iid weight per edge of `g`, in edge order.
std::vector<Count> assign_edge_weights(Rng& rng, const graph::Graph& g,
                                       const WeightModel& model);

/// Histogram of the link weights themselves (the "link packets" quantity).
stats::DegreeHistogram link_weight_histogram(
    const std::vector<Count>& weights);

/// Histogram of per-node strengths Σ incident weights (the weighted
/// analogue of the degree distribution; degree-0 nodes are dropped).
stats::DegreeHistogram node_strength_histogram(
    const graph::Graph& g, const std::vector<Count>& weights);

/// Predicted pmf tail exponent of the strength distribution when the
/// degree law has exponent `degree_alpha`: min(α, γ) for zeta weights
/// (heavy weights can dominate), α for geometric weights (light tail).
double predicted_strength_tail_exponent(double degree_alpha,
                                        const WeightModel& model);

}  // namespace palu::core
