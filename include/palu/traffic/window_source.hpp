// Abstract window providers and consumers for the sweep pipeline.
//
// A WindowSource replaces synthesis: sweep_windows pulls pre-computed
// per-pair packet counts for each window index instead of sampling them
// from a graph.  A WindowCaptureSink is the inverse tee — the sweep (or
// the serve daemon) pushes every accumulated window into it so a later
// run can replay the exact same ensemble without re-synthesis.  Both
// interfaces live in the traffic layer so the pipeline depends only on
// the contract; the columnar on-disk implementation is palu::store.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/traffic/packet.hpp"

namespace palu::traffic {

/// Supplier of stored windows, addressed by window index.
///
/// Thread-safety contract: `read_window` may be called concurrently from
/// multiple sweep workers for *distinct* indices; implementations must not
/// share mutable per-call state across calls (callers pass their own
/// scratch buffers).
class WindowSource {
 public:
  virtual ~WindowSource() = default;

  /// Number of stored windows (valid indices are [0, num_windows())).
  virtual std::size_t num_windows() const = 0;

  /// Node-id domain the stored windows were produced over; replay shard
  /// routing partitions [0, node_domain()) exactly like the original run.
  virtual NodeId node_domain() const = 0;

  /// Decodes window `index` into `out` as (u,v,count) records sorted by
  /// (u, v) with forward + backward >= 1 for every record, using `buf` as
  /// reusable byte scratch.  Returns the window's valid-packet total
  /// N_V.  Throws palu::DataError on a corrupt or missing block.
  virtual Count read_window(std::size_t index, std::vector<std::byte>& buf,
                            std::vector<EdgePacketCounts>& out) = 0;
};

/// Consumer of accumulated windows (capture tee).
///
/// Thread-safety contract: `append` may be called concurrently from
/// multiple sweep workers; implementations serialize internally.
/// Records may arrive unsorted and may include zero-count rows (full
/// support emissions from the counts path); sinks canonicalize.
class WindowCaptureSink {
 public:
  virtual ~WindowCaptureSink() = default;

  /// Archives one window.  `window_index` orders the replay; `n_valid` is
  /// the window's valid-packet total N_V.
  virtual void append(std::size_t window_index, Count n_valid,
                      std::span<const EdgePacketCounts> records) = 0;
};

}  // namespace palu::traffic
