// A valid packet: one (source, destination) observation in the stream.
#pragma once

#include "palu/common/types.hpp"

namespace palu::traffic {

struct Packet {
  NodeId src;
  NodeId dst;
  friend bool operator==(const Packet&, const Packet&) = default;
};

}  // namespace palu::traffic
