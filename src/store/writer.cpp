#include "palu/store/writer.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "palu/common/error.hpp"
#include "palu/common/failpoint.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"

namespace palu::store {

namespace {

std::string errno_text() {
  return std::strerror(errno) != nullptr ? std::strerror(errno) : "?";
}

}  // namespace

std::string WindowStoreWriter::store_file(const std::string& dir) {
  return (std::filesystem::path(dir) / "windows.palustore").string();
}

WindowStoreWriter::WindowStoreWriter(const std::string& dir,
                                     const WriterOptions& opts)
    : blocks_written_(
          (opts.metrics != nullptr ? *opts.metrics : obs::default_registry())
              .counter(obs::names::kStoreBlocksWritten)),
      bytes_written_(
          (opts.metrics != nullptr ? *opts.metrics : obs::default_registry())
              .counter(obs::names::kStoreBytesWritten)) {
  PALU_CHECK(opts.node_domain >= 1,
             "WindowStoreWriter: node_domain must be >= 1");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw DataError("store: cannot create directory '" + dir +
                    "': " + ec.message());
  }
  const std::string path = store_file(dir);
  std::lock_guard<std::mutex> lock(mutex_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw DataError("store: cannot create '" + path + "': " + errno_text());
  }
  node_domain_ = opts.node_domain;
  encode_buf_.clear();
  put_u64(encode_buf_, kFileMagic);
  put_u32(encode_buf_, kEndianTag);
  put_u32(encode_buf_, kFormatVersion);
  put_u64(encode_buf_, opts.node_domain);
  put_u64(encode_buf_, opts.seed);
  put_u64(encode_buf_, 0);  // reserved
  write_bytes(encode_buf_.data(), encode_buf_.size());
  offset_ = kFileHeaderBytes;
  stats_.file_bytes = kFileHeaderBytes;
}

WindowStoreWriter::~WindowStoreWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an unsealable store is exactly the
    // torn-tail shape the reader's recovery path handles.
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void WindowStoreWriter::write_bytes(const void* data, std::size_t n)
    PALU_REQUIRES(mutex_) {
  if (n == 0) return;
  if (std::fwrite(data, 1, n, file_) != n) {
    throw DataError("store: write failed: " + errno_text());
  }
}

void WindowStoreWriter::append(
    std::size_t window_index, Count n_valid,
    std::span<const traffic::EdgePacketCounts> records) {
  std::lock_guard<std::mutex> lock(mutex_);
  PALU_CHECK(file_ != nullptr && !finished_,
             "WindowStoreWriter::append: store already finished");
  PALU_FAILPOINT("io.capture_write");

  // Canonicalize: keep only rows that saw traffic, lower endpoint first,
  // sorted by (u, v), one record per unordered pair.  Zero rows are the
  // counts path's full-support emissions; dropping them is content-neutral
  // (they contribute to no histogram or marginal).
  sort_buf_.clear();
  sort_buf_.reserve(records.size());
  for (const traffic::EdgePacketCounts& r : records) {
    if (r.forward + r.backward == 0) continue;
    if (r.u <= r.v) {
      sort_buf_.push_back(r);
    } else {
      sort_buf_.push_back({r.v, r.u, r.backward, r.forward});
    }
  }
  std::sort(sort_buf_.begin(), sort_buf_.end(),
            [](const traffic::EdgePacketCounts& a,
               const traffic::EdgePacketCounts& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  std::size_t kept = 0;
  for (std::size_t i = 0; i < sort_buf_.size(); ++i) {
    if (kept > 0 && sort_buf_[kept - 1].u == sort_buf_[i].u &&
        sort_buf_[kept - 1].v == sort_buf_[i].v) {
      sort_buf_[kept - 1].forward += sort_buf_[i].forward;
      sort_buf_[kept - 1].backward += sort_buf_[i].backward;
    } else {
      sort_buf_[kept++] = sort_buf_[i];
    }
  }
  sort_buf_.resize(kept);
  // Canonical records have v >= u, so v alone bounds the id domain.
  for (const traffic::EdgePacketCounts& r : sort_buf_) {
    node_domain_ = std::max<std::uint64_t>(node_domain_, r.v + 1);
  }

  // Encode: per-record (Δu varint, zigzag Δv varint, forward, backward),
  // delta base (0, 0) per block.
  encode_buf_.clear();
  NodeId prev_u = 0;
  NodeId prev_v = 0;
  for (const traffic::EdgePacketCounts& r : sort_buf_) {
    put_varint(encode_buf_, r.u - prev_u);
    put_varint(encode_buf_,
               zigzag_encode(static_cast<std::int64_t>(r.v) -
                             static_cast<std::int64_t>(prev_v)));
    put_varint(encode_buf_, r.forward);
    put_varint(encode_buf_, r.backward);
    prev_u = r.u;
    prev_v = r.v;
  }
  const std::uint64_t checksum =
      checksum64(encode_buf_.data(), encode_buf_.size());

  std::vector<unsigned char> header;
  header.reserve(kBlockHeaderBytes);
  put_u32(header, kBlockMagic);
  put_u32(header, kAllQuantitiesMask);
  put_u64(header, window_index);
  put_u64(header, n_valid);
  put_u32(header, static_cast<std::uint32_t>(kept));
  put_u32(header, static_cast<std::uint32_t>(encode_buf_.size()));
  put_u64(header, checksum);

  write_bytes(header.data(), header.size());
  write_bytes(encode_buf_.data(), encode_buf_.size());

  const std::uint64_t block_bytes = kBlockHeaderBytes + encode_buf_.size();
  manifest_.push_back(ManifestEntry{window_index, offset_, block_bytes});
  offset_ += block_bytes;
  ++stats_.blocks;
  stats_.records += kept;
  stats_.payload_bytes += encode_buf_.size();
  stats_.file_bytes += block_bytes;
  blocks_written_.inc();
  bytes_written_.inc(block_bytes);
}

void WindowStoreWriter::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_ || file_ == nullptr) return;

  std::sort(manifest_.begin(), manifest_.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.window_index < b.window_index;
            });
  const std::uint64_t manifest_offset = offset_;
  encode_buf_.clear();
  put_u32(encode_buf_, kManifestMagic);
  put_u32(encode_buf_, 0);  // reserved
  put_u64(encode_buf_, manifest_.size());
  std::vector<unsigned char> entries;
  entries.reserve(manifest_.size() * kManifestEntryBytes);
  for (const ManifestEntry& e : manifest_) {
    put_u64(entries, e.window_index);
    put_u64(entries, e.offset);
    put_u64(entries, e.block_bytes);
  }
  put_u64(entries, checksum64(entries.data(), entries.size()));
  write_bytes(encode_buf_.data(), encode_buf_.size());
  write_bytes(entries.data(), entries.size());

  encode_buf_.clear();
  put_u64(encode_buf_, manifest_offset);
  put_u64(encode_buf_, manifest_.size());
  put_u64(encode_buf_, kTrailerMagic);
  write_bytes(encode_buf_.data(), encode_buf_.size());

  const std::uint64_t tail_bytes =
      kManifestHeaderBytes + entries.size() + kTrailerBytes;
  offset_ += tail_bytes;
  stats_.file_bytes += tail_bytes;
  bytes_written_.inc(tail_bytes);

  // Seal the header's node domain, widened over the appended data (a
  // producer that could not know the domain up front passed 1).
  if (std::fseek(file_, kFileHeaderDomainOffset, SEEK_SET) != 0) {
    throw DataError("store: seek failed: " + errno_text());
  }
  encode_buf_.clear();
  put_u64(encode_buf_, node_domain_);
  write_bytes(encode_buf_.data(), encode_buf_.size());

  if (std::fflush(file_) != 0) {
    throw DataError("store: flush failed: " + errno_text());
  }
  std::FILE* f = std::exchange(file_, nullptr);
  finished_ = true;
  if (std::fclose(f) != 0) {
    throw DataError("store: close failed: " + errno_text());
  }
}

WindowStoreWriter::Stats WindowStoreWriter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace palu::store
