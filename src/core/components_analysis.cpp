#include "palu/core/components_analysis.hpp"

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/graph/components.hpp"
#include "palu/math/gamma.hpp"

namespace palu::core {

double star_component_size_share(const PaluParams& params, NodeId size) {
  params.validate();
  PALU_CHECK(size >= 2, "star_component_size_share: requires size >= 2");
  const double mu = params.lambda * params.window;
  PALU_CHECK(mu > 0.0, "star_component_size_share: requires lambda·p > 0");
  const double visible = -std::expm1(-mu);  // 1 − e^{−μ}
  return math::poisson_pmf(size - 1, mu) / visible;
}

stats::DegreeHistogram small_component_size_histogram(
    const graph::Graph& observed, NodeId max_size) {
  PALU_CHECK(max_size >= 2,
             "small_component_size_histogram: requires max_size >= 2");
  stats::DegreeHistogram h;
  for (const auto& comp : graph::connected_components(observed)) {
    if (comp.nodes < 2 || comp.nodes > max_size) continue;
    h.add(comp.nodes);
  }
  return h;
}

IsolatedEstimate estimate_isolated(const PaluFit& fit, double window) {
  PALU_CHECK(window > 0.0 && window <= 1.0,
             "estimate_isolated: window out of (0, 1]");
  if (!fit.mu_identifiable || fit.mu <= 0.0 || fit.u <= 0.0) {
    throw DataError(
        "estimate_isolated: fit has no identifiable star bump");
  }
  IsolatedEstimate out;
  out.invisible_hubs_per_visible = fit.u;
  out.implied_lambda = fit.mu / window;
  out.underlying_isolated_per_visible =
      fit.u * std::exp(fit.mu - out.implied_lambda);
  return out;
}

}  // namespace palu::core
