#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "palu::palu_common" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_common.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_common )
list(APPEND _cmake_import_check_files_for_palu::palu_common "${_IMPORT_PREFIX}/lib/libpalu_common.a" )

# Import target "palu::palu_parallel" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_parallel APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_parallel PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_parallel.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_parallel )
list(APPEND _cmake_import_check_files_for_palu::palu_parallel "${_IMPORT_PREFIX}/lib/libpalu_parallel.a" )

# Import target "palu::palu_math" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_math APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_math PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_math.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_math )
list(APPEND _cmake_import_check_files_for_palu::palu_math "${_IMPORT_PREFIX}/lib/libpalu_math.a" )

# Import target "palu::palu_rng" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_rng APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_rng PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_rng.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_rng )
list(APPEND _cmake_import_check_files_for_palu::palu_rng "${_IMPORT_PREFIX}/lib/libpalu_rng.a" )

# Import target "palu::palu_linalg" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_linalg APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_linalg PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_linalg.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_linalg )
list(APPEND _cmake_import_check_files_for_palu::palu_linalg "${_IMPORT_PREFIX}/lib/libpalu_linalg.a" )

# Import target "palu::palu_stats" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_stats APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_stats PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_stats.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_stats )
list(APPEND _cmake_import_check_files_for_palu::palu_stats "${_IMPORT_PREFIX}/lib/libpalu_stats.a" )

# Import target "palu::palu_graph" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_graph APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_graph PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_graph.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_graph )
list(APPEND _cmake_import_check_files_for_palu::palu_graph "${_IMPORT_PREFIX}/lib/libpalu_graph.a" )

# Import target "palu::palu_fit" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_fit APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_fit PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_fit.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_fit )
list(APPEND _cmake_import_check_files_for_palu::palu_fit "${_IMPORT_PREFIX}/lib/libpalu_fit.a" )

# Import target "palu::palu_traffic" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_traffic APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_traffic PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_traffic.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_traffic )
list(APPEND _cmake_import_check_files_for_palu::palu_traffic "${_IMPORT_PREFIX}/lib/libpalu_traffic.a" )

# Import target "palu::palu_io" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_io APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_io PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_io.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_io )
list(APPEND _cmake_import_check_files_for_palu::palu_io "${_IMPORT_PREFIX}/lib/libpalu_io.a" )

# Import target "palu::palu_cli" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_cli APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_cli PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_cli.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_cli )
list(APPEND _cmake_import_check_files_for_palu::palu_cli "${_IMPORT_PREFIX}/lib/libpalu_cli.a" )

# Import target "palu::palu_core" for configuration "RelWithDebInfo"
set_property(TARGET palu::palu_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(palu::palu_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpalu_core.a"
  )

list(APPEND _cmake_import_check_targets palu::palu_core )
list(APPEND _cmake_import_check_files_for_palu::palu_core "${_IMPORT_PREFIX}/lib/libpalu_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
