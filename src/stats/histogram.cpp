#include "palu/stats/histogram.hpp"

#include <algorithm>

namespace palu::stats {

void DegreeHistogram::add(Degree d, Count c) {
  if (c == 0) return;
  counts_[d] += c;
  total_ += c;
  weighted_total_ += d * c;
}

DegreeHistogram DegreeHistogram::from_degrees(
    std::span<const Degree> degrees) {
  DegreeHistogram h;
  for (Degree d : degrees) {
    if (d > 0) h.add(d);
  }
  return h;
}

void DegreeHistogram::merge(const DegreeHistogram& other) {
  for (const auto& [d, c] : other.counts_) add(d, c);
}

Count DegreeHistogram::at(Degree d) const {
  const auto it = counts_.find(d);
  return it == counts_.end() ? 0 : it->second;
}

Degree DegreeHistogram::max_degree() const {
  Degree m = 0;
  for (const auto& [d, c] : counts_) m = std::max(m, d);
  return m;
}

std::vector<std::pair<Degree, Count>> DegreeHistogram::sorted() const {
  std::vector<std::pair<Degree, Count>> out(counts_.begin(), counts_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace palu::stats
