file(REMOVE_RECURSE
  "CMakeFiles/palu_stats.dir/chisq.cpp.o"
  "CMakeFiles/palu_stats.dir/chisq.cpp.o.d"
  "CMakeFiles/palu_stats.dir/distribution.cpp.o"
  "CMakeFiles/palu_stats.dir/distribution.cpp.o.d"
  "CMakeFiles/palu_stats.dir/histogram.cpp.o"
  "CMakeFiles/palu_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/palu_stats.dir/log_binning.cpp.o"
  "CMakeFiles/palu_stats.dir/log_binning.cpp.o.d"
  "CMakeFiles/palu_stats.dir/summary.cpp.o"
  "CMakeFiles/palu_stats.dir/summary.cpp.o.d"
  "libpalu_stats.a"
  "libpalu_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
