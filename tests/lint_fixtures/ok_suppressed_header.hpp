// Fixture: both header-hygiene rules silenced by explicit allowances — a
// file-level one for the missing #pragma once and a line-level one for
// the function-local `using namespace`.
// palu-lint: allow-file(header-pragma-once) -- fixture for the suppressor
// palu-lint-expect-clean

#include <string>

inline std::string shout() {
  using namespace std;  // palu-lint: allow(header-using-namespace)
  return string("ok");
}
