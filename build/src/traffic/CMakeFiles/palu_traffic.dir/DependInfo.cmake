
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/aggregates.cpp" "src/traffic/CMakeFiles/palu_traffic.dir/aggregates.cpp.o" "gcc" "src/traffic/CMakeFiles/palu_traffic.dir/aggregates.cpp.o.d"
  "/root/repo/src/traffic/assoc.cpp" "src/traffic/CMakeFiles/palu_traffic.dir/assoc.cpp.o" "gcc" "src/traffic/CMakeFiles/palu_traffic.dir/assoc.cpp.o.d"
  "/root/repo/src/traffic/quantities.cpp" "src/traffic/CMakeFiles/palu_traffic.dir/quantities.cpp.o" "gcc" "src/traffic/CMakeFiles/palu_traffic.dir/quantities.cpp.o.d"
  "/root/repo/src/traffic/sparse_matrix.cpp" "src/traffic/CMakeFiles/palu_traffic.dir/sparse_matrix.cpp.o" "gcc" "src/traffic/CMakeFiles/palu_traffic.dir/sparse_matrix.cpp.o.d"
  "/root/repo/src/traffic/stream.cpp" "src/traffic/CMakeFiles/palu_traffic.dir/stream.cpp.o" "gcc" "src/traffic/CMakeFiles/palu_traffic.dir/stream.cpp.o.d"
  "/root/repo/src/traffic/window_pipeline.cpp" "src/traffic/CMakeFiles/palu_traffic.dir/window_pipeline.cpp.o" "gcc" "src/traffic/CMakeFiles/palu_traffic.dir/window_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/palu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/palu_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/palu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/palu_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/palu_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
