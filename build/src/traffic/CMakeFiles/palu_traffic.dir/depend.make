# Empty dependencies file for palu_traffic.
# This may be replaced when dependencies are built.
