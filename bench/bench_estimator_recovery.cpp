// Section IV-B — parameter-recovery study for the PALU estimation
// pipeline.
//
// Generates observed networks with known constants, runs fit_palu across
// many independent replicates, and reports per-parameter bias and spread —
// the study the paper sketches but does not tabulate.  Then times the full
// estimation pipeline.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <mutex>
#include <vector>

#include "palu/palu.hpp"

namespace {

using namespace palu;

struct Stats {
  double mean = 0.0;
  double sd = 0.0;
};

Stats summarize(const std::vector<double>& xs) {
  Stats s;
  for (const double x : xs) s.mean += x;
  s.mean /= static_cast<double>(xs.size());
  for (const double x : xs) s.sd += (x - s.mean) * (x - s.mean);
  s.sd = std::sqrt(s.sd / static_cast<double>(xs.size() - 1));
  return s;
}

void recovery_study(const core::PaluParams& params, NodeId n,
                    int replicates) {
  const auto k = core::simplified_constants(params);
  std::vector<double> alphas, cs, mus, us, ls;
  ThreadPool pool;
  std::mutex mu_lock;
  parallel_for(pool, 0, static_cast<std::size_t>(replicates), 1,
               [&](IndexRange range) {
                 for (std::size_t rep = range.begin; rep < range.end;
                      ++rep) {
                   Rng rng(5000 + rep * 7919);
                   const auto h =
                       core::sample_observed_degrees(params, n, rng);
                   const auto fit = core::fit_palu(h);
                   std::lock_guard<std::mutex> g(mu_lock);
                   alphas.push_back(fit.alpha);
                   cs.push_back(fit.c);
                   mus.push_back(fit.mu);
                   us.push_back(fit.u);
                   ls.push_back(fit.l);
                 }
               });
  const auto row = [](const char* name, double truth,
                      const std::vector<double>& xs) {
    const Stats s = summarize(xs);
    std::printf("%-8s %10.5f %10.5f %10.5f %9.1f%%\n", name, truth, s.mean,
                s.sd, truth != 0.0 ? 100.0 * (s.mean - truth) / truth
                                   : 0.0);
  };
  std::printf("%-8s %10s %10s %10s %9s\n", "param", "truth", "est.mean",
              "est.sd", "bias");
  row("alpha", params.alpha, alphas);
  row("c", k.c, cs);
  row("mu", k.mu, mus);
  row("u", k.u, us);
  row("l", k.l, ls);
}

// Samples directly from the simplified law (2)-(4) — no generator, no
// approximation gap — so any residual bias belongs to the estimator alone.
void recovery_from_exact_law(double c, double l, double u, double mu,
                             double alpha, Count draws, int replicates) {
  const Degree dmax = 1u << 14;
  std::vector<double> weights;
  weights.reserve(dmax);
  weights.push_back(c + l + u * mu * (std::exp(mu) + 1.0));
  for (Degree d = 2; d <= dmax; ++d) {
    weights.push_back(
        c * std::pow(static_cast<double>(d), -alpha) +
        u * std::exp(static_cast<double>(d) * std::log(mu) -
                     math::log_factorial(d)));
  }
  double total = 0.0;
  for (const double w : weights) total += w;
  const rng::AliasSampler sampler(weights, /*offset=*/1);

  std::vector<double> alphas, cs, mus, us, ls;
  for (int rep = 0; rep < replicates; ++rep) {
    Rng rng(9000 + static_cast<std::uint64_t>(rep) * 6151);
    stats::DegreeHistogram h;
    for (Count i = 0; i < draws; ++i) h.add(sampler(rng));
    const auto fit = core::fit_palu(h);
    alphas.push_back(fit.alpha);
    cs.push_back(fit.c);
    mus.push_back(fit.mu);
    us.push_back(fit.u);
    ls.push_back(fit.l);
  }
  const auto row = [&](const char* name, double truth,
                       const std::vector<double>& xs) {
    const Stats s = summarize(xs);
    std::printf("%-8s %10.5f %10.5f %10.5f %9.1f%%\n", name, truth, s.mean,
                s.sd, 100.0 * (s.mean - truth) / truth);
  };
  std::printf("%-8s %10s %10s %10s %9s\n", "param", "truth", "est.mean",
              "est.sd", "bias");
  row("alpha", alpha, alphas);
  row("c", c / total, cs);
  row("mu", mu, mus);
  row("u", u / total, us);
  row("l", l / total, ls);
}

void print_recovery() {
  std::printf("=== Section IV-B estimator recovery ===\n\n");
  std::printf("--- estimator-only bias: 1M iid draws from the simplified "
              "law itself (16 reps) ---\n");
  recovery_from_exact_law(0.30, 0.25, 0.04, 2.5, 2.2, 1'000'000, 16);
  std::printf("\nBelow, \"truth\" is the PAPER-FORM constant "
              "(Cp^a/zeta(a)V etc.); the c and l gaps there\nmix estimator "
              "error with the paper's own approximations (integral-vs-sum "
              "V, Bin(D,p)=Dp,\nleaf anchors inflating core degrees) — "
              "bench_theory_vs_sim quantifies those separately.\n");
  std::printf("\n(generative recovery: 24 replicates, 200k nodes each)\n");
  std::printf("--- moderate stars: lambda=4, p=0.8, alpha=2.2 ---\n");
  recovery_study(core::PaluParams::solve_hubs(4.0, 0.35, 0.25, 2.2, 0.8),
                 200000, 24);
  std::printf("\n--- star-dominated: lambda=8, p=0.9, alpha=2.5 ---\n");
  recovery_study(core::PaluParams::solve_hubs(8.0, 0.25, 0.15, 2.5, 0.9),
                 200000, 24);
  std::printf("\n--- thin window: lambda=6, p=0.3, alpha=2.0 ---\n");
  recovery_study(core::PaluParams::solve_hubs(6.0, 0.4, 0.2, 2.0, 0.3),
                 200000, 24);
  std::printf("\n");
}

void BM_FitPaluPipeline(benchmark::State& state) {
  const auto params =
      core::PaluParams::solve_hubs(4.0, 0.35, 0.25, 2.2, 0.8);
  Rng rng(1);
  const auto h = core::sample_observed_degrees(
      params, static_cast<NodeId>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fit_palu(h));
  }
}
BENCHMARK(BM_FitPaluPipeline)->Arg(50000)->Arg(200000);

void BM_SampleObservedDegrees(benchmark::State& state) {
  const auto params =
      core::PaluParams::solve_hubs(4.0, 0.35, 0.25, 2.2, 0.8);
  Rng rng(2);
  const auto n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sample_observed_degrees(params, n, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SampleObservedDegrees)->Arg(50000)->Arg(200000);

}  // namespace

int main(int argc, char** argv) {
  print_recovery();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
