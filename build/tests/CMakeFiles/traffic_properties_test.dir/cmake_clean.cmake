file(REMOVE_RECURSE
  "CMakeFiles/traffic_properties_test.dir/traffic_properties_test.cpp.o"
  "CMakeFiles/traffic_properties_test.dir/traffic_properties_test.cpp.o.d"
  "traffic_properties_test"
  "traffic_properties_test.pdb"
  "traffic_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
