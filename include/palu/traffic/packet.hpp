// Per-observation records of the synthetic stream: a single valid packet
// (packet-space synthesis) and one support pair's whole-window packet
// counts (count-space synthesis).
#pragma once

#include "palu/common/types.hpp"

namespace palu::traffic {

struct Packet {
  NodeId src;
  NodeId dst;
  friend bool operator==(const Packet&, const Packet&) = default;
};

/// One active support pair of a count-space window: `forward` packets
/// flowed u → v and `backward` flowed v → u.  Emitted only for pairs that
/// saw traffic (forward + backward >= 1); self-pairs (u == v) carry all
/// of their packets in `forward`.
struct EdgePacketCounts {
  NodeId u;
  NodeId v;
  Count forward;
  Count backward;
  friend bool operator==(const EdgePacketCounts&,
                         const EdgePacketCounts&) = default;
};

}  // namespace palu::traffic
