// The traffic window matrix A_t of Section II.
//
// At time t, N_V consecutive valid packets are aggregated into a sparse
// matrix A_t(i, j) = number of packets from source i to destination j, with
// Σ_ij A_t(i, j) = N_V.  Every Fig-1 network quantity and every Table-I
// aggregate is computed from this object.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/traffic/packet.hpp"

namespace palu::traffic {

class SparseCountMatrix {
 public:
  SparseCountMatrix() = default;

  /// Aggregates a window of packets.
  static SparseCountMatrix from_packets(std::span<const Packet> window);

  /// Adds `count` packets on the (src, dst) link.
  void add(NodeId src, NodeId dst, Count count = 1);

  /// Number of stored links (the nnz of A_t).
  std::size_t nnz() const noexcept { return cells_.size(); }

  /// Packet count of a specific link, 0 if absent.
  Count at(NodeId src, NodeId dst) const;

  /// Σ_ij A_t(i, j): total packets in the window.
  Count total() const noexcept { return total_; }

  struct Entry {
    NodeId src;
    NodeId dst;
    Count packets;
  };

  /// Snapshot of all links, sorted by (src, dst) for deterministic output.
  std::vector<Entry> entries() const;

  /// Visits every stored link once, in unspecified order:
  /// `visit(NodeId src, NodeId dst, Count packets)`.  The allocation- and
  /// sort-free path for order-insensitive reductions (histogramming);
  /// callers needing deterministic order use entries().
  template <typename Visitor>
  void for_each_cell(Visitor&& visit) const {
    for (const auto& [key, count] : cells_) {
      visit(key.first, key.second, count);
    }
  }

  /// Row marginals: per-source (total packets, distinct destinations).
  struct Marginal {
    Count packets = 0;
    Count fan = 0;  // distinct counterparties
  };
  std::unordered_map<NodeId, Marginal> source_marginals() const;
  std::unordered_map<NodeId, Marginal> destination_marginals() const;

 private:
  struct PairHash {
    std::size_t operator()(const std::pair<NodeId, NodeId>& p) const {
      // splitmix-style mix of the two ids.
      std::uint64_t h = p.first * 0x9e3779b97f4a7c15ULL;
      h ^= p.second + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  std::unordered_map<std::pair<NodeId, NodeId>, Count, PairHash> cells_;
  Count total_ = 0;
};

}  // namespace palu::traffic
