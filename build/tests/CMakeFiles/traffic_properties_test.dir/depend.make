# Empty dependencies file for traffic_properties_test.
# This may be replaced when dependencies are built.
