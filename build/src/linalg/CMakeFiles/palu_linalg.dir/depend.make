# Empty dependencies file for palu_linalg.
# This may be replaced when dependencies are built.
