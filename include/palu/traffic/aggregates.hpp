// Table I: aggregate network properties of a traffic window.
//
// The paper gives each aggregate in two equivalent notations — summation
// (entry-wise) and matrix (using the zero-norm | |₀ that maps nonzeros
// to 1, with 1ᵀ·A·1 style contractions).  Both are implemented so the
// Table-I bench can cross-check them; `summation` walks entries directly,
// `matrix` materializes the |A|₀ masks and 1-vector contractions.
#pragma once

#include "palu/common/types.hpp"
#include "palu/traffic/sparse_matrix.hpp"

namespace palu::traffic {

struct Aggregates {
  Count valid_packets = 0;       // 1ᵀ A 1
  Count unique_links = 0;        // 1ᵀ |A|₀ 1
  Count unique_sources = 0;      // |1ᵀ Aᵀ|₀ 1  (rows with nonzero sum)
  Count unique_destinations = 0; // |1ᵀ A|₀ 1   (cols with nonzero sum)
  Count max_link_packets = 0;    // heaviest link (used for d_max checks)

  friend bool operator==(const Aggregates&, const Aggregates&) = default;
};

/// Summation-notation evaluation (single pass over stored entries).
Aggregates aggregates_summation(const SparseCountMatrix& a);

/// Matrix-notation evaluation: forms |A|₀ and the 1-vector contractions
/// explicitly, as in Table I's right column.
Aggregates aggregates_matrix(const SparseCountMatrix& a);

}  // namespace palu::traffic
