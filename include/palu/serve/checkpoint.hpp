// Crash-recovery state for the serve daemon.
//
// A checkpoint captures everything needed to resume estimation at a
// window boundary: the input-stream byte offset of the boundary, the
// complete WindowedStreamingEstimator state (both lanes plus the sliding
// horizon histograms), and a fingerprint of the configuration that
// produced it.  Restoring a checkpoint and replaying the stream from
// `input_offset` yields fits byte-identical to an uninterrupted run —
// doubles are serialized as C99 hexfloats so the round trip is exact.
//
// Durability: save() writes to `path + ".tmp"`, fsyncs, and renames, so
// a crash mid-write leaves the previous checkpoint intact (crash-only
// design: the daemon never needs a clean shutdown to restart safely).
// load() verifies a trailing FNV-1a checksum and the format version, and
// throws palu::DataError on any corruption — the daemon treats that as
// "no checkpoint" and starts fresh rather than dying.
#pragma once

#include <cstdint>
#include <string>

#include "palu/core/streaming.hpp"

namespace palu::serve {

struct Checkpoint {
  /// Input-stream byte offset of the window boundary this state is
  /// consistent with; resuming seeks here.
  std::uint64_t input_offset = 0;
  /// Packets consumed up to the boundary (diagnostics only).
  std::uint64_t packets_ingested = 0;
  /// Published window lines up to the boundary.
  std::uint64_t windows_published = 0;

  // Configuration fingerprint: a checkpoint only restores into a daemon
  // with the same windowing setup (estimation state under a different
  // N_V or quantity would be silently wrong).
  std::uint64_t window_packets = 0;
  std::string quantity;
  std::size_t sliding_horizon = 0;
  bool warm_start = true;

  core::StreamingState estimator;
};

/// Atomically writes `ck` to `path` (tmp + fsync + rename).  Throws
/// palu::Error when the file cannot be written.
void save_checkpoint(const std::string& path, const Checkpoint& ck);

/// Reads and verifies a checkpoint.  Throws palu::DataError on a
/// missing, truncated, corrupt, or version-mismatched file.
Checkpoint load_checkpoint(const std::string& path);

}  // namespace palu::serve
