#include "palu/io/trace.hpp"

#include <algorithm>
#include <charconv>
#include <string>
#include <string_view>

#include "palu/common/error.hpp"

namespace palu::io {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void malformed(std::size_t line_number,
                            const std::string& line) {
  throw DataError("read_trace: malformed line " +
                  std::to_string(line_number) + ": '" + line + "'");
}

NodeId parse_id(std::string_view token, std::size_t line_number,
                const std::string& line) {
  NodeId value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    malformed(line_number, line);
  }
  return value;
}

}  // namespace

std::vector<traffic::Packet> read_trace(std::istream& in) {
  std::vector<traffic::Packet> packets;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view body = trim(line);
    if (body.empty() || body.front() == '#') continue;
    const std::size_t split = body.find_first_of(" \t");
    if (split == std::string_view::npos) malformed(line_number, line);
    const std::string_view src_tok = trim(body.substr(0, split));
    const std::string_view dst_tok = trim(body.substr(split));
    if (src_tok.empty() || dst_tok.empty()) malformed(line_number, line);
    packets.push_back(
        traffic::Packet{parse_id(src_tok, line_number, line),
                        parse_id(dst_tok, line_number, line)});
  }
  return packets;
}

void write_trace(std::ostream& out,
                 std::span<const traffic::Packet> pkts) {
  out << "# palu packet trace: one 'src dst' pair per line\n";
  for (const traffic::Packet& p : pkts) {
    out << p.src << ' ' << p.dst << '\n';
  }
}

void write_edge_list(std::ostream& out, const graph::Graph& g) {
  out << "# nodes=" << g.num_nodes() << '\n';
  for (const graph::Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

graph::Graph read_edge_list(std::istream& in) {
  std::vector<graph::Edge> edges;
  NodeId declared_nodes = 0;
  bool have_declaration = false;
  NodeId max_endpoint = 0;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view body = trim(line);
    if (body.empty()) continue;
    if (body.front() == '#') {
      const std::size_t pos = body.find("nodes=");
      if (pos != std::string_view::npos) {
        declared_nodes =
            parse_id(trim(body.substr(pos + 6)), line_number, line);
        have_declaration = true;
      }
      continue;
    }
    const std::size_t split = body.find_first_of(" \t");
    if (split == std::string_view::npos) malformed(line_number, line);
    const NodeId u = parse_id(trim(body.substr(0, split)), line_number,
                              line);
    const NodeId v = parse_id(trim(body.substr(split)), line_number,
                              line);
    max_endpoint = std::max({max_endpoint, u, v});
    edges.push_back(graph::Edge{u, v});
  }
  const NodeId nodes =
      have_declaration ? declared_nodes
                       : (edges.empty() ? 0 : max_endpoint + 1);
  if (have_declaration && !edges.empty() && max_endpoint >= nodes) {
    throw DataError(
        "read_edge_list: endpoint exceeds the declared node count");
  }
  return graph::Graph(nodes, std::move(edges));
}

}  // namespace palu::io
