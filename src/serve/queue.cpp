#include "palu/serve/queue.hpp"

#include <utility>

#include "palu/common/error.hpp"

namespace palu::serve {

BackpressurePolicy parse_backpressure(std::string_view text) {
  if (text == "block") return BackpressurePolicy::kBlock;
  if (text == "drop-oldest") return BackpressurePolicy::kDropOldest;
  if (text == "drop-newest") return BackpressurePolicy::kDropNewest;
  throw InvalidArgument("unknown backpressure policy '" +
                        std::string(text) +
                        "' (expected block|drop-oldest|drop-newest)");
}

std::string_view to_string(BackpressurePolicy policy) noexcept {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kDropOldest:
      return "drop-oldest";
    case BackpressurePolicy::kDropNewest:
      return "drop-newest";
  }
  return "block";
}

BoundedRecordQueue::BoundedRecordQueue(std::size_t capacity,
                                       BackpressurePolicy policy)
    : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

BoundedRecordQueue::PushResult BoundedRecordQueue::push(
    io::TailRecord record) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_ || aborted_) return PushResult::kClosed;
  PushResult result = PushResult::kOk;
  if (items_.size() >= capacity_) {
    switch (policy_) {
      case BackpressurePolicy::kBlock:
        not_full_.wait(lock, [&] {
          return items_.size() < capacity_ || closed_ || aborted_;
        });
        if (closed_ || aborted_) return PushResult::kClosed;
        break;
      case BackpressurePolicy::kDropOldest:
        items_.pop_front();
        ++dropped_;
        result = PushResult::kDroppedOldest;
        break;
      case BackpressurePolicy::kDropNewest:
        ++dropped_;
        return PushResult::kDroppedNewest;
    }
  }
  items_.push_back(std::move(record));
  lock.unlock();
  not_empty_.notify_one();
  return result;
}

bool BoundedRecordQueue::pop(io::TailRecord& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] {
    return !items_.empty() || closed_ || aborted_;
  });
  if (aborted_ || items_.empty()) return false;
  out = items_.front();
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void BoundedRecordQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void BoundedRecordQueue::abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    aborted_ = true;
    items_.clear();
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t BoundedRecordQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

bool BoundedRecordQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::uint64_t BoundedRecordQueue::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

}  // namespace palu::serve
