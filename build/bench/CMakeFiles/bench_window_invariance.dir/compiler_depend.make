# Empty compiler generated dependencies file for bench_window_invariance.
# This may be replaced when dependencies are built.
