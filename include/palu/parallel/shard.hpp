// Contiguous node-id range sharding.
//
// The sweep's intra-window mode partitions a window's accumulation by
// node-id range across K sub-accumulators whose contents merge
// associatively.  The routing function here is the single source of truth
// for that partition: shard s owns the block [s·B, (s+1)·B) ∩ [0, domain)
// with B = ceil(domain / K), so the ranges tile [0, domain) and every id
// maps to exactly one shard (trailing shards may be empty when K does not
// divide the domain — an empty shard merges as a no-op).  Determinism of
// the sharded sweep reduces to this function being a pure partition: the
// merged union of per-shard state is then content-identical to unsharded
// accumulation no matter how ids arrive.
#pragma once

#include <algorithm>
#include <cstddef>

#include "palu/common/types.hpp"

namespace palu::parallel {

/// Ids per shard under the block partition of [0, domain) into `shards`
/// ranges; always >= 1 so the routing division is well defined.
inline NodeId shard_block(std::size_t shards, NodeId domain) noexcept {
  if (shards <= 1 || domain == 0) return domain > 0 ? domain : 1;
  return domain / shards + (domain % shards != 0 ? 1 : 0);
}

/// Maps a node id to its shard.  Ids at or beyond the domain (never
/// produced by the synthetic generators, but cheap to defend) land in the
/// last shard.  `shards == 0` is treated as 1.
inline std::size_t shard_of(NodeId id, std::size_t shards,
                            NodeId domain) noexcept {
  if (shards <= 1 || domain == 0) return 0;
  if (id >= domain) return shards - 1;
  return std::min<std::size_t>(
      static_cast<std::size_t>(id / shard_block(shards, domain)),
      shards - 1);
}

/// Half-open id range [begin, end) owned by shard `s`; the ranges for
/// s = 0..shards−1 tile [0, domain).
struct ShardRange {
  NodeId begin = 0;
  NodeId end = 0;
};

inline ShardRange shard_range(std::size_t s, std::size_t shards,
                              NodeId domain) noexcept {
  if (shards <= 1) return ShardRange{0, domain};
  const NodeId block = shard_block(shards, domain);
  // block <= domain, so s·block stays far below the NodeId range for any
  // realistic shard count; clamp to the domain for the tail.
  const NodeId lo = std::min<NodeId>(static_cast<NodeId>(s) * block, domain);
  const NodeId hi =
      std::min<NodeId>(static_cast<NodeId>(s + 1) * block, domain);
  return ShardRange{lo, hi};
}

}  // namespace palu::parallel
