#include "palu/common/error.hpp"

#include <sstream>

namespace palu::detail {

[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PALU_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

[[noreturn]] void throw_assert_failure(const char* expr, const char* file,
                                       int line) {
  std::ostringstream os;
  os << "PALU_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  throw Error(os.str());
}

}  // namespace palu::detail
