// Random graph generators: the building blocks of the PALU underlying
// network (Section III/V) plus the classic baselines the paper references.
#pragma once

#include <cstdint>

#include "palu/common/types.hpp"
#include "palu/graph/graph.hpp"
#include "palu/rng/xoshiro.hpp"

namespace palu::graph {

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `m` existing nodes chosen proportionally to
/// degree (repeated-endpoint list trick; duplicate targets are re-drawn).
/// Produces the paper's "core" archetype with exponent ≈ 3.
Graph barabasi_albert(Rng& rng, NodeId num_nodes, NodeId edges_per_node);

/// Growth-process preferential attachment with initial attractiveness
/// (Dorogovtsev–Mendes–Samukhin): newcomers attach proportionally to
/// (degree + a), giving degree exponent α = 3 + a/m.  a ∈ (−m, ∞): a = 0
/// recovers Barabási–Albert (α = 3); negative a reaches the paper's
/// α ∈ (2, 3) range with a genuinely grown (connected) core.
Graph dms_attachment(Rng& rng, NodeId num_nodes, NodeId edges_per_node,
                     double attractiveness);

/// Power-law core with tunable exponent: node degrees are drawn iid from
/// the bounded zeta law P(d) ∝ d^{-alpha}, d ∈ [1, dmax] — exactly the
/// d^{-α}/ζ(α) degree law the PALU core assumes (Section V) — and wired by
/// an erased configuration model (self-loops and duplicate edges dropped).
/// alpha ∈ (1.5, 3] matches the paper's observed range.
Graph zeta_degree_core(Rng& rng, NodeId num_nodes, double alpha,
                       Degree dmax);

/// Erdős–Rényi G(n, p): every unordered pair independently with
/// probability p (geometric edge skipping, O(edges) expected).
Graph erdos_renyi(Rng& rng, NodeId num_nodes, double p);

/// Star forest: `num_stars` hub nodes, each with Po(lambda) fresh leaves —
/// the PALU unattached component (Section V).  Hubs that draw 0 leaves
/// remain isolated nodes.
Graph star_forest(Rng& rng, Count num_stars, double lambda);

/// The observed-network sampler: keeps each edge of `g` independently with
/// probability p (node set unchanged).  This is the Erdős–Rényi random
/// subnetwork step of Section V.
Graph bernoulli_edge_sample(Rng& rng, const Graph& g, double p);

/// Hybrid preferential-attachment + Erdős–Rényi model (Section VII future
/// work: "combining preferential attachment with the Erdos-Renyi model"):
/// a Barabási–Albert backbone of `num_nodes`/`edges_per_node` overlaid
/// with G(n, p_er) random edges.  The ER overlay thickens the low-degree
/// head while the PA backbone keeps the power-law tail.
Graph pa_er_hybrid(Rng& rng, NodeId num_nodes, NodeId edges_per_node,
                   double p_er);

/// Degree-preserving randomization (the configuration-model null): applies
/// `swaps` random double-edge swaps (u,v),(x,y) → (u,y),(x,v), rejecting
/// swaps that would create self-loops.  Destroys higher-order structure
/// (clustering, assortativity) while keeping every degree — the classic
/// null model for asking whether an observed clustering level is explained
/// by degrees alone.
Graph rewire_degree_preserving(Rng& rng, const Graph& g, Count swaps);

/// Degree-preserving connection: merges every edge-bearing component into
/// the largest one by 2-edge swaps ((u,v),(x,y) → (u,x),(v,y)), which keep
/// every node degree exactly.  Isolated (edge-free) nodes are untouched.
/// Used to make configuration-model cores connected, matching the paper's
/// preferential-attachment core whose growth process guarantees a single
/// component.
Graph connect_by_edge_swap(Rng& rng, const Graph& g);

}  // namespace palu::graph
