// Trace analysis: the ingestion path a downstream user runs on real data.
//
// Reads a packet trace ("src dst" per line) from a file or, with no
// argument, synthesizes one in-memory to demonstrate the format.  The
// trace is cut into equal-N_V windows (Section II), each window's degree
// quantity is pooled, the modified Zipf–Mandelbrot model and the full
// model zoo are fit, and everything is exported as CSV next to the
// human-readable report.
//
//   build/examples/trace_analysis [trace_file [n_valid]]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "palu/palu.hpp"

namespace {

std::vector<palu::traffic::Packet> load_or_synthesize(int argc,
                                                      char** argv) {
  using namespace palu;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      std::exit(1);
    }
    return io::read_trace(in);
  }
  // No file: synthesize a PALU-driven stream and round-trip it through
  // the trace format so the example also documents the format itself.
  const auto params =
      core::PaluParams::solve_hubs(3.0, 0.4, 0.25, 2.1, 1.0);
  Rng rng(99);
  const auto net = core::generate_underlying(params, 40000, rng);
  traffic::RateModel rates;
  rates.kind = traffic::RateModel::Kind::kPareto;
  traffic::SyntheticTrafficGenerator stream(net.graph, rates, Rng(101));
  std::vector<traffic::Packet> packets;
  packets.reserve(400000);
  for (int i = 0; i < 400000; ++i) packets.push_back(stream.next());
  std::stringstream round_trip;
  io::write_trace(round_trip, packets);
  return io::read_trace(round_trip);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace palu;
  const auto packets = load_or_synthesize(argc, argv);
  const Count n_valid =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000;
  std::printf("trace: %zu packets; windows of N_V=%llu\n", packets.size(),
              static_cast<unsigned long long>(n_valid));
  if (packets.size() < n_valid) {
    std::fprintf(stderr, "trace smaller than one window\n");
    return 1;
  }

  // Cut consecutive windows and pool the undirected degree quantity.
  stats::BinnedEnsemble ensemble;
  stats::DegreeHistogram merged;
  Degree dmax = 0;
  const std::size_t num_windows = packets.size() / n_valid;
  for (std::size_t t = 0; t < num_windows; ++t) {
    const std::span<const traffic::Packet> slice(
        packets.data() + t * n_valid, n_valid);
    const auto window = traffic::SparseCountMatrix::from_packets(slice);
    const auto h = traffic::undirected_degree_histogram(window);
    dmax = std::max(dmax, h.max_degree());
    ensemble.add(stats::LogBinned::from_histogram(h));
    merged.merge(h);
  }
  std::printf("aggregated %zu windows; degree support %zu, d_max %llu\n",
              num_windows, merged.support_size(),
              static_cast<unsigned long long>(dmax));

  // Modified ZM fit on the mean pooled distribution with sigma weights.
  fit::ZmFitOptions zm_opts;
  zm_opts.bin_sigma = ensemble.stddev();
  const auto zm = fit::fit_zipf_mandelbrot(
      stats::LogBinned(ensemble.mean()), dmax, zm_opts);
  std::printf("modified Zipf-Mandelbrot: alpha=%.3f delta=%+.3f%s\n",
              zm.alpha, zm.delta, zm.converged ? "" : " (not converged)");

  // Model zoo on the merged histogram.
  const auto ranking = fit::fit_all_models(merged);
  std::printf("model ranking by AIC:\n");
  for (const auto& entry : ranking) {
    std::printf("  %-18s dAIC=%8.1f\n", entry.family.c_str(),
                entry.delta_aic);
  }

  // PALU constants.
  const auto palu_fit = core::fit_palu(merged);
  std::printf("PALU constants: alpha=%.3f c=%.4f mu=%.3f u=%.5f l=%.4f\n",
              palu_fit.alpha, palu_fit.c, palu_fit.mu, palu_fit.u,
              palu_fit.l);

  // CSV exports for plotting.
  std::printf("\n--- pooled.csv ---\n");
  io::write_pooled_csv(std::cout, stats::LogBinned(ensemble.mean()),
                       ensemble.stddev());
  std::printf("--- models.csv ---\n");
  io::write_model_comparison_csv(std::cout, ranking);
  return 0;
}
