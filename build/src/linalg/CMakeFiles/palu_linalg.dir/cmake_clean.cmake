file(REMOVE_RECURSE
  "CMakeFiles/palu_linalg.dir/matrix.cpp.o"
  "CMakeFiles/palu_linalg.dir/matrix.cpp.o.d"
  "libpalu_linalg.a"
  "libpalu_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
