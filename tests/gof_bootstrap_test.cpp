// Unit tests for the incomplete gamma functions, chi-square GOF on pooled
// distributions, bootstrap confidence intervals, and the parallel window
// sweep pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/core/estimate.hpp"
#include "palu/core/generator.hpp"
#include "palu/core/params.hpp"
#include "palu/core/theory.hpp"
#include "palu/fit/bootstrap.hpp"
#include "palu/fit/powerlaw_mle.hpp"
#include "palu/fit/zipf_mandelbrot.hpp"
#include "palu/graph/generators.hpp"
#include "palu/math/incomplete_gamma.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/stats/chisq.hpp"
#include "palu/traffic/window_pipeline.hpp"

namespace palu {
namespace {

// ------------------------------------------------------ incomplete gamma

TEST(IncompleteGamma, KnownValues) {
  // P(1, x) = 1 − e^{−x}.
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(math::regularized_gamma_p(1.0, x), -std::expm1(-x), 1e-12);
  }
  // P(1/2, x) = erf(√x).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(math::regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)),
                1e-12);
  }
}

TEST(IncompleteGamma, ComplementsSumToOne) {
  for (double a : {0.3, 1.0, 2.5, 17.0}) {
    for (double x : {0.01, 0.5, 2.0, 30.0, 200.0}) {
      EXPECT_NEAR(math::regularized_gamma_p(a, x) +
                      math::regularized_gamma_q(a, x),
                  1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(IncompleteGamma, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.0; x < 20.0; x += 0.25) {
    const double p = math::regularized_gamma_p(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

TEST(IncompleteGamma, BoundaryAndErrors) {
  EXPECT_DOUBLE_EQ(math::regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(math::regularized_gamma_q(2.0, 0.0), 1.0);
  EXPECT_THROW(math::regularized_gamma_p(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(math::regularized_gamma_q(1.0, -1.0), InvalidArgument);
}

TEST(ChiSquaredSurvival, MatchesKnownQuantiles) {
  // Classic table values: P[χ²₁ > 3.841] ≈ 0.05, P[χ²₅ > 11.07] ≈ 0.05.
  EXPECT_NEAR(math::chi_squared_survival(3.841, 1.0), 0.05, 2e-4);
  EXPECT_NEAR(math::chi_squared_survival(11.0705, 5.0), 0.05, 2e-4);
  EXPECT_NEAR(math::chi_squared_survival(2.0, 2.0), std::exp(-1.0), 1e-12);
}

// -------------------------------------------------------------- chisq gof

stats::LogBinned pooled_from_zm(double alpha, double delta, Degree dmax) {
  return fit::ZipfMandelbrot(alpha, delta, dmax).pooled();
}

TEST(ChiSquare, AcceptsTrueModel) {
  // Sample from a ZM law, pool, test against the exact model masses.
  Rng rng(1);
  const Degree dmax = 4096;
  const fit::ZipfMandelbrot zm(2.0, 1.0, dmax);
  std::vector<double> weights(dmax);
  for (Degree d = 1; d <= dmax; ++d) weights[d - 1] = zm.pmf(d);
  rng::AliasSampler sampler(weights, 1);
  stats::DegreeHistogram h;
  const Count n = 50000;
  for (Count i = 0; i < n; ++i) h.add(sampler(rng));
  const auto observed = stats::LogBinned::from_histogram(h);
  const auto result =
      stats::chi_square_pooled(observed, zm.pooled(), n, 0);
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_GE(result.bins_used, 8u);
}

TEST(ChiSquare, RejectsWrongModel) {
  Rng rng(2);
  const Degree dmax = 4096;
  const fit::ZipfMandelbrot truth(2.0, 5.0, dmax);
  std::vector<double> weights(dmax);
  for (Degree d = 1; d <= dmax; ++d) weights[d - 1] = truth.pmf(d);
  rng::AliasSampler sampler(weights, 1);
  stats::DegreeHistogram h;
  const Count n = 50000;
  for (Count i = 0; i < n; ++i) h.add(sampler(rng));
  const auto observed = stats::LogBinned::from_histogram(h);
  // Test against a ZM with the wrong offset.
  const auto result = stats::chi_square_pooled(
      observed, pooled_from_zm(2.0, 0.0, dmax), n, 0);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquare, MergesSparseTailBins) {
  // A tail bin with expectation << min_expected must be merged, not
  // counted alone.
  const stats::LogBinned observed({0.6, 0.3, 0.08, 0.02});
  const stats::LogBinned model({0.6, 0.3, 0.0999, 0.0001});
  const auto result = stats::chi_square_pooled(observed, model, 100, 0);
  EXPECT_LT(result.bins_used, 4u);
  EXPECT_GE(result.dof, 1.0);
}

TEST(ChiSquare, DegenerateInputsThrow) {
  const stats::LogBinned two({0.5, 0.5});
  EXPECT_THROW(stats::chi_square_pooled(two, two, 0, 0), InvalidArgument);
  EXPECT_THROW(stats::chi_square_pooled(two, two, 100, 5),
               InvalidArgument);  // dof would be negative
  const stats::LogBinned one({1.0});
  EXPECT_THROW(stats::chi_square_pooled(one, one, 100, 0),
               InvalidArgument);
}

// -------------------------------------------------------------- bootstrap

TEST(Bootstrap, CoversTrueAlphaOnZetaSample) {
  Rng sample_rng(3);
  rng::BoundedZipfSampler zipf(2.2, 1u << 18);
  stats::DegreeHistogram h;
  for (int i = 0; i < 20000; ++i) h.add(zipf(sample_rng));
  Rng rng(4);
  ThreadPool pool(2);
  fit::BootstrapOptions opts;
  opts.replicates = 60;
  const auto ci = fit::bootstrap_ci(
      h,
      [](const stats::DegreeHistogram& sample) {
        return fit::fit_power_law_fixed_xmin(sample, 1).alpha;
      },
      rng, pool, opts);
  EXPECT_EQ(ci.replicates_used, 60);
  EXPECT_LT(ci.lower, ci.upper);
  EXPECT_GT(ci.std_error, 0.0);
  // The interval must straddle the point estimate and (with margin) the
  // truth.
  EXPECT_LE(ci.lower, ci.estimate);
  EXPECT_GE(ci.upper, ci.estimate);
  EXPECT_LT(ci.lower - 0.05, 2.2);
  EXPECT_GT(ci.upper + 0.05, 2.2);
}

TEST(Bootstrap, WiderIntervalsForSmallerSamples) {
  rng::BoundedZipfSampler zipf(2.0, 1u << 16);
  const auto run = [&](Count n, std::uint64_t seed) {
    Rng sample_rng(seed);
    stats::DegreeHistogram h;
    for (Count i = 0; i < n; ++i) h.add(zipf(sample_rng));
    Rng rng(seed + 1);
    ThreadPool pool(2);
    fit::BootstrapOptions opts;
    opts.replicates = 40;
    return fit::bootstrap_ci(
        h,
        [](const stats::DegreeHistogram& sample) {
          return fit::fit_power_law_fixed_xmin(sample, 1).alpha;
        },
        rng, pool, opts);
  };
  const auto small = run(1000, 10);
  const auto large = run(50000, 20);
  EXPECT_GT(small.std_error, 2.0 * large.std_error);
}

TEST(Bootstrap, SkipsDegenerateReplicatesButReports) {
  // A statistic that throws on every replicate must raise DataError.
  stats::DegreeHistogram h;
  h.add(1, 100);
  h.add(2, 50);
  Rng rng(5);
  ThreadPool pool(2);
  EXPECT_THROW(
      fit::bootstrap_ci(
          h,
          [](const stats::DegreeHistogram&) -> double {
            throw DataError("always fails");
          },
          rng, pool),
      DataError);
}

TEST(Bootstrap, MultiStatisticSharesResamplingPass) {
  rng::BoundedZipfSampler zipf(2.0, 1u << 16);
  Rng sample_rng(30);
  stats::DegreeHistogram h;
  for (int i = 0; i < 15000; ++i) h.add(zipf(sample_rng));
  Rng rng(31);
  ThreadPool pool(2);
  fit::BootstrapOptions opts;
  opts.replicates = 30;
  const auto both = fit::bootstrap_ci_multi(
      h,
      [](const stats::DegreeHistogram& sample) {
        const auto fitted = fit::fit_power_law_fixed_xmin(sample, 1);
        return std::vector<double>{fitted.alpha, fitted.ks_statistic};
      },
      rng, pool, opts);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0].replicates_used, 30);
  EXPECT_EQ(both[1].replicates_used, 30);
  EXPECT_NEAR(both[0].estimate, 2.0, 0.1);
  EXPECT_GT(both[1].estimate, 0.0);
  EXPECT_LT(both[0].lower, both[0].upper);
}

TEST(Bootstrap, PaluFitCiCoversTruth) {
  const auto params = core::PaluParams::solve_hubs(4.0, 0.35, 0.25, 2.2,
                                                   0.8);
  Rng gen_rng(32);
  const auto h = core::sample_observed_degrees(params, 150000, gen_rng);
  Rng rng(33);
  ThreadPool pool(2);
  fit::BootstrapOptions opts;
  opts.replicates = 30;
  const auto ci = core::bootstrap_palu_fit(h, rng, pool, opts);
  const auto k = core::simplified_constants(params);
  // The window-invariant parameters' intervals should cover (or nearly
  // cover) the theory values.
  EXPECT_LT(ci.alpha.lower - 0.15, params.alpha);
  EXPECT_GT(ci.alpha.upper + 0.15, params.alpha);
  EXPECT_LT(ci.mu.lower - 0.3, k.mu);
  EXPECT_GT(ci.mu.upper + 0.3, k.mu);
  EXPECT_GT(ci.c.std_error, 0.0);
  EXPECT_GT(ci.l.upper, ci.l.lower);
}

TEST(Bootstrap, ValidatesOptions) {
  stats::DegreeHistogram h;
  h.add(1, 10);
  Rng rng(6);
  ThreadPool pool(1);
  fit::BootstrapOptions opts;
  opts.replicates = 5;
  const auto stat = [](const stats::DegreeHistogram&) { return 1.0; };
  EXPECT_THROW(fit::bootstrap_ci(h, stat, rng, pool, opts),
               InvalidArgument);
  opts.replicates = 20;
  opts.confidence = 1.5;
  EXPECT_THROW(fit::bootstrap_ci(h, stat, rng, pool, opts),
               InvalidArgument);
}

// --------------------------------------------------------- window sweep

TEST(WindowSweep, DeterministicAndComplete) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 2000, 0.004);
  ThreadPool pool(3);
  const auto a = traffic::sweep_windows(g, traffic::RateModel{}, 5000, 6,
                                        traffic::Quantity::kSourceFanOut,
                                        /*seed=*/42, pool);
  const auto b = traffic::sweep_windows(g, traffic::RateModel{}, 5000, 6,
                                        traffic::Quantity::kSourceFanOut,
                                        /*seed=*/42, pool);
  EXPECT_EQ(a.windows, 6u);
  EXPECT_EQ(a.merged.total(), b.merged.total());
  EXPECT_EQ(a.max_value, b.max_value);
  EXPECT_EQ(a.ensemble.mean(), b.ensemble.mean());
  EXPECT_EQ(a.ensemble.stddev(), b.ensemble.stddev());
}

TEST(WindowSweep, SeedChangesResults) {
  Rng gen_rng(8);
  const auto g = graph::erdos_renyi(gen_rng, 2000, 0.004);
  ThreadPool pool(2);
  const auto a = traffic::sweep_windows(g, traffic::RateModel{}, 5000, 4,
                                        traffic::Quantity::kSourceFanOut,
                                        1, pool);
  const auto b = traffic::sweep_windows(g, traffic::RateModel{}, 5000, 4,
                                        traffic::Quantity::kSourceFanOut,
                                        2, pool);
  EXPECT_NE(a.ensemble.mean(), b.ensemble.mean());
}

TEST(WindowSweep, MatchesSequentialSemantics) {
  // Mean pooled mass from the sweep should be statistically consistent
  // with a sequential single-generator run (same underlying rates law).
  Rng gen_rng(9);
  const auto g = graph::zeta_degree_core(gen_rng, 5000, 2.0, 500);
  ThreadPool pool(3);
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, 20000, 8,
      traffic::Quantity::kSourceFanOut, 11, pool);
  traffic::SyntheticTrafficGenerator seq(g, traffic::RateModel{}, Rng(12));
  stats::BinnedEnsemble sequential;
  for (int t = 0; t < 8; ++t) {
    sequential.add(stats::LogBinned::from_histogram(
        traffic::quantity_histogram(seq.window(20000),
                                    traffic::Quantity::kSourceFanOut)));
  }
  const auto m1 = sweep.ensemble.mean();
  const auto m2 = sequential.mean();
  for (std::size_t i = 0; i < std::min(m1.size(), m2.size()); ++i) {
    EXPECT_NEAR(m1[i], m2[i], 0.05 + 0.3 * m2[i]) << "bin " << i;
  }
}

TEST(WindowSweep, ValidatesArguments) {
  Rng gen_rng(10);
  const auto g = graph::erdos_renyi(gen_rng, 100, 0.1);
  ThreadPool pool(1);
  EXPECT_THROW(traffic::sweep_windows(g, traffic::RateModel{}, 0, 4,
                                      traffic::Quantity::kSourceFanOut, 1,
                                      pool),
               InvalidArgument);
  EXPECT_THROW(traffic::sweep_windows(g, traffic::RateModel{}, 100, 0,
                                      traffic::Quantity::kSourceFanOut, 1,
                                      pool),
               InvalidArgument);
}

}  // namespace
}  // namespace palu
