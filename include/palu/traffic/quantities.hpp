// The five streaming network quantities of Figure 1.
//
// From each window matrix A_t the paper histograms:
//   - source packets:       per-source total packets   (row sums)
//   - source fan-out:       per-source distinct destinations (row nnz)
//   - link packets:         per-link packet counts     (entry values)
//   - destination fan-in:   per-destination distinct sources (col nnz)
//   - destination packets:  per-destination total packets (col sums)
// Each yields a degree-style histogram whose pooled distribution is what
// Fig 3 fits with the modified Zipf–Mandelbrot model.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "palu/graph/graph.hpp"
#include "palu/stats/histogram.hpp"
#include "palu/traffic/sparse_matrix.hpp"

namespace palu::traffic {

enum class Quantity {
  kSourcePackets,
  kSourceFanOut,
  kLinkPackets,
  kDestinationFanIn,
  kDestinationPackets,
  /// Distinct counterparties in either direction — the quantity the PALU
  /// model predicts directly (not one of the five Fig-1 panels).
  kUndirectedDegree,
};

/// The five Fig-1 quantities (excludes kUndirectedDegree).
inline constexpr std::array<Quantity, 5> kAllQuantities = {
    Quantity::kSourcePackets, Quantity::kSourceFanOut,
    Quantity::kLinkPackets, Quantity::kDestinationFanIn,
    Quantity::kDestinationPackets};

std::string_view quantity_name(Quantity q);

/// Histogram of one quantity over a window.
stats::DegreeHistogram quantity_histogram(const SparseCountMatrix& a,
                                          Quantity q);

/// The undirected degree histogram of the observed network induced by the
/// window: node degree = distinct counterparties in either direction
/// (source fan-out and destination fan-in merged per node).  This is the
/// quantity the PALU model predicts directly.
stats::DegreeHistogram undirected_degree_histogram(
    const SparseCountMatrix& a);

/// The observed network a window induces: one node per endpoint id seen
/// (renumbered contiguously), one undirected simple edge per communicating
/// pair (self-traffic dropped).  `id_map`, when non-null, receives the
/// subgraph-id → original-id mapping.
graph::Graph window_to_graph(const SparseCountMatrix& a,
                             std::vector<NodeId>* id_map = nullptr);

}  // namespace palu::traffic
