#include "palu/graph/crawl.hpp"

#include <deque>
#include <unordered_map>

#include "palu/common/error.hpp"

namespace palu::graph {

CrawlResult bfs_crawl(Rng& rng, const Graph& g, NodeId budget) {
  PALU_CHECK(budget >= 1, "bfs_crawl: requires a positive budget");
  PALU_CHECK(g.num_nodes() >= 1, "bfs_crawl: empty graph");
  const auto adj = g.adjacency();

  CrawlResult out;
  std::unordered_map<NodeId, NodeId> new_id;  // original -> subgraph id
  std::deque<NodeId> frontier;
  const NodeId target = std::min<NodeId>(budget, g.num_nodes());
  out.visited.reserve(target);

  const auto visit = [&](NodeId v) {
    const auto [it, inserted] = new_id.try_emplace(
        v, static_cast<NodeId>(out.visited.size()));
    if (inserted) {
      out.visited.push_back(v);
      frontier.push_back(v);
    }
    return inserted;
  };

  while (out.visited.size() < target) {
    if (frontier.empty()) {
      // Fresh seed: uniformly random unvisited node (rejection; the
      // visited fraction is small for crawl-style budgets).
      ++out.seed_count;
      bool seeded = false;
      for (int attempt = 0; attempt < 64; ++attempt) {
        if (visit(rng.uniform_index(g.num_nodes()))) {
          seeded = true;
          break;
        }
      }
      if (!seeded) {
        // Nearly everything is visited: take the first unvisited node.
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          if (visit(v)) break;
        }
      }
      continue;
    }
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (std::size_t i = adj.offsets[v];
         i < adj.offsets[v + 1] && out.visited.size() < target; ++i) {
      visit(adj.neighbors[i]);
    }
  }

  out.subgraph = Graph(static_cast<NodeId>(out.visited.size()));
  for (const Edge& e : g.edges()) {
    const auto iu = new_id.find(e.u);
    if (iu == new_id.end()) continue;
    const auto iv = new_id.find(e.v);
    if (iv == new_id.end()) continue;
    out.subgraph.add_edge(iu->second, iv->second);
  }
  return out;
}

stats::DegreeHistogram crawl_view_degrees(const Graph& g,
                                          const CrawlResult& crawl) {
  const auto degrees = g.degrees();
  stats::DegreeHistogram h;
  for (const NodeId original : crawl.visited) {
    if (degrees[original] > 0) h.add(degrees[original]);
  }
  return h;
}

}  // namespace palu::graph
