// Quickstart: generate a PALU network, observe it through a window, and
// recover the model constants from the observed degree distribution.
//
//   build/examples/quickstart [node_scale]
#include <cstdio>
#include <cstdlib>

#include "palu/palu.hpp"

int main(int argc, char** argv) {
  using namespace palu;
  const NodeId n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;

  // 1. Pick underlying-model parameters (Section III-A).  solve_hubs fills
  //    in U from the node-mass constraint C + L + U(1 + λ − e^{−λ}) = 1.
  const core::PaluParams params = core::PaluParams::solve_hubs(
      /*lambda=*/4.0, /*core=*/0.35, /*leaves=*/0.25, /*alpha=*/2.2,
      /*window=*/0.6);
  std::printf("underlying model: lambda=%.2f C=%.3f L=%.3f U=%.3f "
              "alpha=%.2f p=%.2f\n",
              params.lambda, params.core, params.leaves, params.hubs,
              params.alpha, params.window);

  // 2. Realize the underlying network and sample the observed subnetwork
  //    (every edge kept independently with probability p).
  Rng rng(2026);
  const core::UnderlyingNetwork net =
      core::generate_underlying(params, n, rng);
  const graph::Graph observed = core::generate_observed(net, params, rng);
  std::printf("underlying: %llu nodes, %zu edges; observed kept %zu edges\n",
              static_cast<unsigned long long>(net.graph.num_nodes()),
              net.graph.num_edges(), observed.num_edges());

  // 3. Census of the observed topology (the Figure-2 structures).
  const graph::TopologyCensus census = graph::classify_topology(observed);
  std::printf("census: %llu isolated, %llu unattached links, %llu stars, "
              "%llu core components (largest %llu nodes)\n",
              static_cast<unsigned long long>(census.isolated_nodes),
              static_cast<unsigned long long>(census.unattached_links),
              static_cast<unsigned long long>(census.star_components),
              static_cast<unsigned long long>(census.core_components),
              static_cast<unsigned long long>(census.largest_component));

  // 4. Fit the PALU constants back from the observed degree histogram
  //    (the Section IV-B pipeline) and compare with the theory values.
  const auto h = stats::DegreeHistogram::from_degrees(observed.degrees());
  const core::PaluFit fit = core::fit_palu(h);
  const core::SimplifiedConstants k = core::simplified_constants(params);
  std::printf("constant   theory     fitted\n");
  std::printf("alpha      %8.4f  %8.4f\n", params.alpha, fit.alpha);
  std::printf("c          %8.4f  %8.4f\n", k.c, fit.c);
  std::printf("mu (=lam*p)%8.4f  %8.4f\n", k.mu, fit.mu);
  std::printf("u          %8.4f  %8.4f\n", k.u, fit.u);
  std::printf("l          %8.4f  %8.4f\n", k.l, fit.l);
  std::printf("tail R^2 = %.4f over %zu points\n", fit.tail_r_squared,
              fit.tail_points);
  return 0;
}
