#include "palu/common/result.hpp"

#include <sstream>

namespace palu {

ErrorPolicy parse_error_policy(std::string_view text) {
  if (text == "strict") return ErrorPolicy::kStrict;
  if (text == "skip") return ErrorPolicy::kSkip;
  if (text == "repair") return ErrorPolicy::kRepair;
  throw InvalidArgument("parse_error_policy: expected strict|skip|repair, "
                        "got '" + std::string(text) + "'");
}

std::string_view to_string(ErrorPolicy policy) noexcept {
  switch (policy) {
    case ErrorPolicy::kStrict: return "strict";
    case ErrorPolicy::kSkip: return "skip";
    case ErrorPolicy::kRepair: return "repair";
  }
  return "unknown";
}

std::string IngestReport::summary() const {
  std::ostringstream os;
  os << "read=" << lines_read << " kept=" << records_kept
     << " repaired=" << lines_repaired << " dropped=" << lines_dropped;
  if (first_error) {
    os << " first_error=line " << first_error->line_number << ": "
       << first_error->message;
  }
  return os.str();
}

}  // namespace palu
