// Fixture: a backslash-newline splice extends a // comment onto the \
   next physical line, so this text is comment too: std::rand(); \
   std::random_device rd; time(nullptr);
// palu-lint-expect-clean
#include <cstdint>

/* A block comment mentioning ::now() and `throw std::logic_error` is
   equally inert. */
std::uint32_t two() { return 2; }
