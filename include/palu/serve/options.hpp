// Configuration surface of the streaming estimation daemon.
//
// Every knob of `palu_tool serve` lives here so the daemon is fully
// scriptable from tests (construct ServeOptions directly, no CLI) and
// the CLI layer is a thin flag parser.  Durations are millisecond
// doubles; 0 disables the feature where noted.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "palu/common/result.hpp"
#include "palu/core/streaming.hpp"
#include "palu/traffic/quantities.hpp"

namespace palu::obs {
class Registry;
}

namespace palu::serve {

/// What the ingest stage does when the bounded queue is full.
enum class BackpressurePolicy {
  kBlock,       ///< ingest waits for the fit stage (lossless, default)
  kDropOldest,  ///< evict the oldest queued record to admit the new one
  kDropNewest,  ///< discard the incoming record
};

/// "block" | "drop-oldest" | "drop-newest"; throws palu::InvalidArgument
/// on anything else.
BackpressurePolicy parse_backpressure(std::string_view text);

/// Inverse of parse_backpressure.
std::string_view to_string(BackpressurePolicy policy) noexcept;

struct ServeOptions {
  // --- input -----------------------------------------------------------
  /// Packet-trace path; "-" reads stdin (pipe mode).
  std::string input_path = "-";
  /// Tail-follow a growing file: at EOF, poll for appended bytes instead
  /// of finishing.  Ignored for stdin (a pipe ends when the writer does).
  bool follow = false;
  /// Per-line malformed-input policy (read_trace semantics).
  IngestOptions ingest;

  // --- windowing and fitting -------------------------------------------
  /// N_V: packets per tumbling window.
  std::uint64_t window_packets = 100000;
  /// Which Fig-1 quantity each window histograms.
  traffic::Quantity quantity = traffic::Quantity::kUndirectedDegree;
  /// Estimator knobs (sliding horizon, warm start, ladder options).
  core::StreamingOptions streaming;
  /// Stop after this many fitted windows; 0 = run until EOF or signal.
  std::uint64_t max_windows = 0;
  /// Per-window fit deadline in ms; a window whose refit overruns is
  /// served from the previous published fit, tagged degraded=deadline.
  /// 0 disables (and keeps output fully deterministic).
  double fit_deadline_ms = 0.0;

  // --- queue ------------------------------------------------------------
  std::size_t queue_capacity = 65536;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  // --- checkpoint / restore --------------------------------------------
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Write a checkpoint every this many window boundaries (>= 1).
  std::uint64_t checkpoint_every = 1;
  /// Restore from checkpoint_path before serving (fresh start when the
  /// file is missing, corrupt, or from an incompatible configuration).
  bool restore = false;

  // --- observability ----------------------------------------------------
  /// Metrics snapshot file (JSON; a sibling .prom is written alongside);
  /// empty disables interval snapshots.
  std::string snapshot_path;
  double snapshot_interval_ms = 1000.0;
  /// Metrics sink; nullptr routes to obs::default_registry().
  obs::Registry* metrics = nullptr;
  /// Result-line sink; nullptr means std::cout.
  std::ostream* out = nullptr;

  // --- recording --------------------------------------------------------
  /// Window-store directory (palu::store): every fitted window's pair
  /// counts are archived so the run can be replayed with `palu_tool
  /// replay`.  Empty disables recording.  The store is truncated at
  /// startup (including under --restore); a recording failure logs to
  /// stderr and disables the recorder — it never takes the daemon down.
  std::string record_path;

  // --- supervision ------------------------------------------------------
  /// Restarts a stage may consume without making progress before the
  /// daemon gives up (exit 1).
  std::uint64_t max_stage_restarts = 5;
  double backoff_initial_ms = 10.0;
  double backoff_max_ms = 1000.0;
  /// Tail-follow and supervisor poll tick.
  double poll_interval_ms = 50.0;
  /// SIGINT/SIGTERM drain budget: how long the fit stage gets to empty
  /// the queue before it is aborted.
  double drain_deadline_ms = 5000.0;
  /// Install SIGINT/SIGTERM handlers in run() (tests use request_stop()).
  bool install_signal_handlers = true;
};

}  // namespace palu::serve
