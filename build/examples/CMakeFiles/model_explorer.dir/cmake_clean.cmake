file(REMOVE_RECURSE
  "CMakeFiles/model_explorer.dir/model_explorer.cpp.o"
  "CMakeFiles/model_explorer.dir/model_explorer.cpp.o.d"
  "model_explorer"
  "model_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
