// Error handling primitives shared by every palu module.
//
// The library throws exceptions derived from `palu::Error` for programmer
// errors (bad arguments, violated invariants) and for numerical failures
// (non-converged fits).  Hot loops use PALU_ASSERT, which compiles to nothing
// in NDEBUG builds; API boundaries use PALU_CHECK, which is always on.
#pragma once

#include <stdexcept>
#include <string>

namespace palu {

/// Base class for all exceptions thrown by the palu library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes an argument outside its documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an iterative numerical routine fails to converge.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// Thrown when data handed to an estimator is unusable (empty, degenerate).
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
[[noreturn]] void throw_assert_failure(const char* expr, const char* file,
                                       int line);
}  // namespace detail

}  // namespace palu

/// Always-on precondition check; throws palu::InvalidArgument on failure.
#define PALU_CHECK(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::palu::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (false)

/// Debug-only invariant check; disabled under NDEBUG.
#ifdef NDEBUG
#define PALU_ASSERT(expr) ((void)0)
#else
#define PALU_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::palu::detail::throw_assert_failure(#expr, __FILE__, __LINE__); \
    }                                                                  \
  } while (false)
#endif
