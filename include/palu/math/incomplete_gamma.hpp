// Regularized incomplete gamma functions P(a, x) and Q(a, x).
//
// Needed for chi-square goodness-of-fit p-values on pooled distributions:
// P[χ²_k > x] = Q(k/2, x/2).  Series expansion for x < a + 1, Lentz
// continued fraction otherwise — the classic numerically stable split.
#pragma once

namespace palu::math {

/// Lower regularized incomplete gamma P(a, x) = γ(a, x)/Γ(a); a > 0,
/// x >= 0.
double regularized_gamma_p(double a, double x);

/// Upper regularized incomplete gamma Q(a, x) = 1 − P(a, x).
double regularized_gamma_q(double a, double x);

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: P[χ² > x].
double chi_squared_survival(double x, double dof);

}  // namespace palu::math
