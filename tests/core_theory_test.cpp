// Unit tests for palu/core theory: the Section IV closed forms.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "palu/common/error.hpp"
#include "palu/core/theory.hpp"
#include "palu/fit/linreg.hpp"
#include "palu/math/zeta.hpp"

namespace palu::core {
namespace {

PaluParams typical_params() {
  return PaluParams::solve_hubs(/*lambda=*/2.0, /*core=*/0.4,
                                /*leaves=*/0.25, /*alpha=*/2.2,
                                /*window=*/0.6);
}

TEST(ObservedComposition, MatchesHandComputedV) {
  const PaluParams p = typical_params();
  const auto comp = observed_composition(p);
  const double mu = p.lambda * p.window;
  const double expected_v =
      p.core * std::pow(p.window, p.alpha - 1.0) /
          ((p.alpha - 1.0) * math::riemann_zeta(p.alpha)) +
      p.leaves * p.window + p.hubs * (1.0 + mu - std::exp(-mu));
  EXPECT_NEAR(comp.visible_mass, expected_v, 1e-14);
}

TEST(ObservedComposition, SharesSumToOne) {
  // core + leaf + unattached shares partition the visible nodes.
  for (double window : {0.1, 0.5, 1.0}) {
    const PaluParams p = typical_params().at_window(window);
    const auto comp = observed_composition(p);
    EXPECT_NEAR(
        comp.core_share + comp.leaf_share + comp.unattached_share, 1.0,
        1e-12)
        << "p=" << window;
  }
}

TEST(ObservedComposition, UnattachedLinksAreSubsetOfUnattached) {
  const auto comp = observed_composition(typical_params());
  EXPECT_GT(comp.unattached_link_share, 0.0);
  EXPECT_LT(comp.unattached_link_share, comp.unattached_share);
}

TEST(ObservedComposition, SmallWindowFavorsUnattached) {
  // As p → 0 the core visibility scales as p^{α−1} (faster than linear for
  // α > 2), so leaves/unattached dominate small windows — the paper's
  // motivation for why trunk windows see structures webcrawls miss.
  const PaluParams p = typical_params();
  const auto tiny = observed_composition(p.at_window(0.01));
  const auto full = observed_composition(p.at_window(1.0));
  EXPECT_LT(tiny.core_share, full.core_share);
  EXPECT_GT(tiny.unattached_share, full.unattached_share);
}

TEST(SimplifiedConstants, DefinitionsHold) {
  const PaluParams p = typical_params();
  const auto k = simplified_constants(p);
  const auto comp = observed_composition(p);
  const double v = comp.visible_mass;
  const double mu = p.lambda * p.window;
  EXPECT_NEAR(k.c,
              p.core * std::pow(p.window, p.alpha) /
                  (math::riemann_zeta(p.alpha) * v),
              1e-14);
  EXPECT_NEAR(k.l, p.leaves * p.window / v, 1e-14);
  EXPECT_NEAR(k.u, p.hubs * std::exp(-mu) / v, 1e-14);
  EXPECT_NEAR(k.mu, mu, 1e-14);
  EXPECT_NEAR(k.lambda_cap, std::numbers::e * mu, 1e-14);
}

TEST(DegreeShare, MatchesSimplifiedConstantsForLargeD) {
  // Eq. (4): share(d) ≈ c·d^{−α} for d >= 10 (star bump long dead).
  const PaluParams p = typical_params();
  const auto k = simplified_constants(p);
  for (Degree d : {16u, 64u, 256u, 4096u}) {
    const double expected =
        k.c * std::pow(static_cast<double>(d), -p.alpha);
    EXPECT_NEAR(degree_share(p, d), expected, 1e-6 * expected)
        << "d=" << d;
  }
}

TEST(DegreeShare, DegreeOneDecomposition) {
  const PaluParams p = typical_params();
  const auto k = simplified_constants(p);
  const double mu = k.mu;
  // share(1) = c + l + (U/V)·μ·(1 + e^{−μ}); (U/V) = u·e^{μ}.
  const double star_part = k.u * std::exp(mu) * mu * (1.0 + std::exp(-mu));
  EXPECT_NEAR(degree_share(p, 1), k.c + k.l + star_part, 1e-13);
}

TEST(DegreeShare, PositiveAndDecreasingTail) {
  const PaluParams p = typical_params();
  double prev = degree_share(p, 10);
  for (Degree d = 11; d < 200; ++d) {
    const double s = degree_share(p, d);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, prev) << "d=" << d;
    prev = s;
  }
}

TEST(DegreeShare, StarBumpVisibleAtModerateD) {
  // With a large λ·p, the Poisson bump must push share(d) above the pure
  // core power law around d ≈ λp.
  const PaluParams p =
      PaluParams::solve_hubs(12.0, 0.2, 0.05, 2.5, 1.0);
  const auto k = simplified_constants(p);
  const Degree bump_center = 12;
  const double core_only =
      k.c * std::pow(static_cast<double>(bump_center), -p.alpha);
  EXPECT_GT(degree_share(p, bump_center), 2.0 * core_only);
}

TEST(DegreeShare, RequiresPositiveDegree) {
  EXPECT_THROW(degree_share(typical_params(), 0), InvalidArgument);
}

TEST(DegreeSharePaperApprox, CloseToExactWhenLogDLarge) {
  // Section IV: the (Λ/d)^d form is "very good when log(d) > 1" — by then
  // both star terms are negligible and the core term dominates.
  const PaluParams p = typical_params();
  for (Degree d : {8u, 16u, 64u}) {
    const double exact = degree_share(p, d);
    const double approx = degree_share_paper_approx(p, d);
    EXPECT_NEAR(approx, exact, 0.05 * exact) << "d=" << d;
  }
}

TEST(DegreeSharePaperApprox, OverestimatesPoissonBump) {
  // (Λ/d)^d = (eμ/d)^d exceeds μ^d/d! by the Stirling factor √(2πd); the
  // approximation is an upper bound on the star term.
  const PaluParams p = PaluParams::solve_hubs(8.0, 0.3, 0.1, 2.0, 1.0);
  for (Degree d : {4u, 8u, 12u}) {
    EXPECT_GE(degree_share_paper_approx(p, d), degree_share(p, d))
        << "d=" << d;
  }
}

TEST(PooledTheory, MatchesDirectDegreeShareSums) {
  const PaluParams p = typical_params();
  const auto pooled = pooled_theory(p, 8);
  // Bin 0 = share(1); bins 1..4 checked by brute force.
  EXPECT_NEAR(pooled[0], degree_share(p, 1), 1e-12);
  for (std::uint32_t i = 1; i <= 4; ++i) {
    double direct = 0.0;
    for (Degree d = (Degree{1} << (i - 1)) + 1; d <= (Degree{1} << i);
         ++d) {
      direct += degree_share(p, d);
    }
    EXPECT_NEAR(pooled[i], direct, 1e-9) << "bin " << i;
  }
}

TEST(PooledTheory, TotalMassMatchesPaperInconsistency) {
  // Summing the paper's degree law gives (C·p^α + L·p + U(1+μ−e^{−μ}))/V,
  // which differs from 1 because the Bin(D,p) ≈ D·p core approximations in
  // Section IV are not mutually consistent.  The pooled theory must land
  // exactly on that value — and stay within ~10% of 1 for typical params.
  const PaluParams p = typical_params();
  const auto pooled = pooled_theory(p, 40);
  const double mu = p.lambda * p.window;
  const double v = observed_composition(p).visible_mass;
  const double expected =
      (p.core * std::pow(p.window, p.alpha) + p.leaves * p.window +
       p.hubs * (1.0 + mu - std::exp(-mu))) /
      v;
  EXPECT_NEAR(pooled.total_mass(), expected, 5e-3);
  EXPECT_NEAR(pooled.total_mass(), 1.0, 0.1);
}

TEST(ExactTheory, DegreeSharesSumToOne) {
  // The exact binomial-thinning forms ARE self-consistent: Σ_d share(d)=1.
  const PaluParams p = typical_params();
  const Degree core_dmax = 1u << 14;
  double total = 0.0;
  for (Degree d = 1; d <= core_dmax; ++d) {
    const double s = degree_share_exact(p, d, core_dmax);
    total += s;
    if (d > 64 && s < 1e-12) {
      // Close the power-law tail analytically: beyond here the share is
      // essentially c_exact·d^{−α}; bound the remainder.
      break;
    }
  }
  EXPECT_NEAR(total, 1.0, 2e-3);
}

TEST(ExactTheory, UnnormalizedMassesMatchPaperAtFullWindow) {
  // At p = 1 thinning is the identity, so the exact and paper *masses*
  // (share × V) agree term by term; the shares themselves differ because
  // the paper's V replaces Σ_{d≥1} d^{−α} by ∫_1^∞ x^{−α} dx.
  const PaluParams p = typical_params().at_window(1.0);
  const Degree core_dmax = 1u << 20;
  const double v_exact = visible_mass_exact(p, core_dmax);
  const double v_paper = observed_composition(p).visible_mass;
  for (Degree d : {1u, 2u, 5u, 17u, 100u}) {
    const double exact_mass = degree_share_exact(p, d, core_dmax) * v_exact;
    const double paper_mass = degree_share(p, d) * v_paper;
    EXPECT_NEAR(exact_mass, paper_mass, 0.02 * paper_mass) << "d=" << d;
  }
}

TEST(ExactTheory, PaperVisibleMassIsIntegralApproximation) {
  // At p = 1 the exact core visible mass is C (every positive-degree node
  // survives), while the paper's integral form gives C/((α−1)ζ(α)).
  const PaluParams p = typical_params().at_window(1.0);
  const double exact = visible_mass_exact(p, 1u << 20);
  const double leaf_star = p.leaves * p.window +
                           p.hubs * (1.0 + p.lambda -
                                     std::exp(-p.lambda));
  EXPECT_NEAR(exact, p.core + leaf_star, 1e-6);
  const double paper = observed_composition(p).visible_mass;
  EXPECT_NEAR(paper,
              p.core / ((p.alpha - 1.0) * math::riemann_zeta(p.alpha)) +
                  leaf_star,
              1e-12);
}

TEST(PooledTheory, TailSlopeIsOneMinusAlpha) {
  // Section IV-A: regression of log D(d_i) on log d_i over large bins has
  // slope 1 − α, NOT −α.
  const PaluParams p = typical_params();
  const auto pooled = pooled_theory(p, 26);
  std::vector<double> x, y;
  for (std::uint32_t i = 10; i < 24; ++i) {
    x.push_back(std::log(static_cast<double>(Degree{1} << i)));
    y.push_back(std::log(pooled[i]));
  }
  const auto fit = fit::linear_regression(x, y);
  EXPECT_NEAR(fit.slope, 1.0 - p.alpha, 0.02);
  EXPECT_NEAR(fit.slope, pooled_tail_slope(p), 0.02);
}

TEST(ExactTheory, ExactCompositionSumsToOneAndBoundsPaper) {
  const PaluParams p = typical_params();
  const auto exact = observed_composition_exact(p, 1u << 14);
  EXPECT_NEAR(exact.core_share + exact.leaf_share +
                  exact.unattached_share,
              1.0, 1e-12);
  // Exact core visibility exceeds the paper's integral form (which
  // undercounts the d^{-α} sum by replacing it with an integral).
  const auto paper = observed_composition(p);
  EXPECT_GT(exact.visible_mass, paper.visible_mass);
  EXPECT_GT(exact.core_share, paper.core_share);
}

TEST(WindowInvariance, ConstantsScaleWithPAsDerived) {
  // λ, C, L, U, α are window-invariant; check how the derived constants
  // move with p: μ = λp is linear in p, and c·V = C·p^α/ζ(α).
  const PaluParams base = typical_params();
  const auto k1 = simplified_constants(base.at_window(0.3));
  const auto k2 = simplified_constants(base.at_window(0.6));
  EXPECT_NEAR(k2.mu / k1.mu, 2.0, 1e-12);
  const double v1 = observed_composition(base.at_window(0.3)).visible_mass;
  const double v2 = observed_composition(base.at_window(0.6)).visible_mass;
  EXPECT_NEAR((k2.c * v2) / (k1.c * v1), std::pow(2.0, base.alpha), 1e-9);
}

}  // namespace
}  // namespace palu::core
