#include "palu/math/zeta.hpp"

#include <cmath>
#include <cstdint>

#include "palu/common/error.hpp"

namespace palu::math {
namespace {

// Euler–Maclaurin tail: Σ_{n≥0} (x0+n)^{-s} for x0 reasonably large
// (callers arrange x0 >= ~32 so the B8 truncation error is < 1e-15).
double em_infinite_tail(double s, double x0) {
  const double inv = 1.0 / x0;
  const double xs = std::pow(x0, -s);
  double sum = xs * x0 / (s - 1.0);  // ∫_{x0}^∞ x^{-s} dx = x0^{1-s}/(s-1)
  sum += 0.5 * xs;
  const double s1 = s, s2 = s + 1.0, s3 = s + 2.0, s4 = s + 3.0;
  const double s5 = s + 4.0, s6 = s + 5.0, s7 = s + 6.0;
  double deriv = s1 * xs * inv;  // |f'(x0)| up to sign
  sum += deriv / 12.0;
  deriv *= s2 * s3 * inv * inv;
  sum -= deriv / 720.0;
  deriv *= s4 * s5 * inv * inv;
  sum += deriv / 30240.0;
  deriv *= s6 * s7 * inv * inv;
  sum -= deriv / 1209600.0;
  return sum;
}

// Signed odd-derivative ladder used by the finite-range Euler–Maclaurin.
// Returns Σ_k B_{2k}/(2k)! [f^{(2k-1)}(hi) − f^{(2k-1)}(lo)] for
// f(x) = (x+a)^{-s}, truncated after B8.
double em_bernoulli_terms(double s, double a, double lo, double hi) {
  const double xl = lo + a, xh = hi + a;
  const double il = 1.0 / xl, ih = 1.0 / xh;
  double dl = -s * std::pow(xl, -s - 1.0);
  double dh = -s * std::pow(xh, -s - 1.0);
  double sum = (dh - dl) / 12.0;
  const double c1 = (s + 1.0) * (s + 2.0);
  dl *= c1 * il * il;
  dh *= c1 * ih * ih;
  sum -= (dh - dl) / 720.0;
  const double c2 = (s + 3.0) * (s + 4.0);
  dl *= c2 * il * il;
  dh *= c2 * ih * ih;
  sum += (dh - dl) / 30240.0;
  const double c3 = (s + 5.0) * (s + 6.0);
  dl *= c3 * il * il;
  dh *= c3 * ih * ih;
  sum -= (dh - dl) / 1209600.0;
  return sum;
}

// ∫_{lo}^{hi} (x+a)^{-s} dx, handling the logarithmic case s == 1.
double power_integral(double s, double a, double lo, double hi) {
  const double xl = lo + a, xh = hi + a;
  if (s == 1.0) return std::log(xh / xl);
  return (std::pow(xh, 1.0 - s) - std::pow(xl, 1.0 - s)) / (1.0 - s);
}

// Σ_{d=lo}^{hi} (d+a)^{-s} for arbitrary real s > 0 and a > -lo.
// Direct summation below the crossover, Euler–Maclaurin above it.
double power_sum_range(double s, double a, std::uint64_t lo,
                       std::uint64_t hi) {
  PALU_ASSERT(lo <= hi);
  // Direct-sum until the argument is large enough for Euler–Maclaurin.
  constexpr double kEmStart = 48.0;
  constexpr std::uint64_t kDirectMax = 4096;
  double sum = 0.0;
  std::uint64_t d = lo;
  while (d <= hi &&
         (static_cast<double>(d) + a < kEmStart || hi - d < kDirectMax)) {
    sum += std::pow(static_cast<double>(d) + a, -s);
    ++d;
  }
  if (d > hi) return sum;
  // Euler–Maclaurin over [d, hi]:
  //   Σ = ∫ + (f(d)+f(hi))/2 + Bernoulli corrections.
  const double flo = std::pow(static_cast<double>(d) + a, -s);
  const double fhi = std::pow(static_cast<double>(hi) + a, -s);
  sum += power_integral(s, a, static_cast<double>(d),
                        static_cast<double>(hi));
  sum += 0.5 * (flo + fhi);
  sum += em_bernoulli_terms(s, a, static_cast<double>(d),
                            static_cast<double>(hi));
  return sum;
}

}  // namespace

double hurwitz_zeta(double s, double q) {
  PALU_CHECK(s > 1.0, "hurwitz_zeta: requires s > 1");
  PALU_CHECK(q > 0.0, "hurwitz_zeta: requires q > 0");
  // Sum directly until n+q >= 48, then close with the infinite tail.
  double sum = 0.0;
  double x = q;
  while (x < 48.0) {
    sum += std::pow(x, -s);
    x += 1.0;
  }
  return sum + em_infinite_tail(s, x);
}

double riemann_zeta(double s) {
  PALU_CHECK(s > 1.0, "riemann_zeta: requires s > 1");
  return hurwitz_zeta(s, 1.0);
}

double truncated_zeta(double s, std::uint64_t dmax) {
  PALU_CHECK(dmax >= 1, "truncated_zeta: requires dmax >= 1");
  return power_sum_range(s, 0.0, 1, dmax);
}

double shifted_truncated_zeta(double s, double q, std::uint64_t dmax) {
  PALU_CHECK(s > 0.0, "shifted_truncated_zeta: requires s > 0");
  PALU_CHECK(q > -1.0, "shifted_truncated_zeta: requires q > -1");
  PALU_CHECK(dmax >= 1, "shifted_truncated_zeta: requires dmax >= 1");
  return power_sum_range(s, q, 1, dmax);
}

double zeta_tail(double s, std::uint64_t n0) {
  PALU_CHECK(s > 1.0, "zeta_tail: requires s > 1");
  PALU_CHECK(n0 >= 1, "zeta_tail: requires n0 >= 1");
  return hurwitz_zeta(s, static_cast<double>(n0));
}

}  // namespace palu::math
