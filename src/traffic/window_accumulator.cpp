#include "palu/traffic/window_accumulator.hpp"

#include <algorithm>

#include "palu/common/error.hpp"

namespace palu::traffic {

namespace {
constexpr std::size_t kInitialCapacity = std::size_t{1} << 10;
// The live-slot lists hold 32-bit indices, so tables cap at 2^32 slots.
constexpr std::size_t kMaxCapacity = std::size_t{1} << 32;
// Count-space windows use dense NodeId-indexed marginal arrays only while
// the id range stays within a small factor of the active pair count;
// beyond that (sparse ids) the records replay through the hash tables.
constexpr std::size_t kDenseNodeFactor = 8;
constexpr std::size_t kDenseNodeFloor = 4096;
// Histogram values below this accumulate in a dense value-indexed array;
// rarer larger values (a single pair can carry ~N_V packets) go through a
// small overflow list so the scratch never balloons.
constexpr Count kDenseValueCap = Count{1} << 22;
}  // namespace

WindowAccumulator::WindowAccumulator() {
  cells_.resize(kInitialCapacity);
  cell_epoch_.assign(kInitialCapacity, 0);
  cell_mask_ = kInitialCapacity - 1;
  cell_grow_at_ = kInitialCapacity - kInitialCapacity / 4;
  nodes_.resize(kInitialCapacity);
  node_epoch_.assign(kInitialCapacity, 0);
  node_mask_ = kInitialCapacity - 1;
  node_grow_at_ = kInitialCapacity - kInitialCapacity / 4;
}

std::uint64_t WindowAccumulator::mix_cell(NodeId src, NodeId dst) noexcept {
  std::uint64_t h = src * 0x9e3779b97f4a7c15ULL;
  h ^= dst + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  // murmur3 finalizer: linear probing needs well-mixed low bits.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

std::uint64_t WindowAccumulator::mix_node(NodeId id) noexcept {
  std::uint64_t h = id + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

void WindowAccumulator::begin_window() {
  live_cells_.clear();
  total_ = 0;
  counts_mode_ = false;
  counts_nnz_ = 0;
  pair_spans_.clear();
  if (++epoch_ == 0) {
    // The 32-bit stamp wrapped: stamps from 2^32 windows ago could alias
    // the new epoch, so take the rare O(capacity) clear.
    std::fill(cell_epoch_.begin(), cell_epoch_.end(), 0u);
    epoch_ = 1;
  }
}

void WindowAccumulator::add(NodeId src, NodeId dst, Count count) {
  if (count == 0) return;
  if (live_cells_.size() >= cell_grow_at_) grow_cells();
  const std::size_t slot = find_or_insert_cell(src, dst);
  cells_[slot].count += count;
  total_ += count;
}

void WindowAccumulator::add_packets(std::span<const Packet> packets) {
  for (const Packet& p : packets) add(p.src, p.dst);
}

void WindowAccumulator::ingest_counts(std::span<const EdgePacketCounts> pairs) {
  Count total = 0;
  std::size_t nnz = 0;
  NodeId max_id = 0;
  for (const EdgePacketCounts& pc : pairs) {
    total += pc.forward + pc.backward;
    nnz += static_cast<std::size_t>(pc.forward > 0) +
           static_cast<std::size_t>(pc.backward > 0);
    max_id = std::max({max_id, pc.u, pc.v});
  }
  const std::size_t dense_nodes = static_cast<std::size_t>(max_id) + 1;
  if (!pairs.empty() &&
      dense_nodes > kDenseNodeFactor * pairs.size() + kDenseNodeFloor) {
    // Ids too sparse for dense marginals: replay through the hash tables.
    for (const EdgePacketCounts& pc : pairs) {
      add(pc.u, pc.v, pc.forward);
      add(pc.v, pc.u, pc.backward);
    }
    return;
  }
  counts_mode_ = true;
  counts_nnz_ = nnz;
  counts_dense_nodes_ = dense_nodes;
  total_ = total;
  pair_spans_.clear();
  pair_spans_.push_back(pairs);
  if (node_packets_dense_.size() < dense_nodes) {
    node_packets_dense_.assign(dense_nodes, 0);
    node_fan_dense_.assign(dense_nodes, 0);
  }
}

void WindowAccumulator::demote_counts_to_hash() {
  // Leaving counts mode: replay the record views through the hash tables.
  // Content-exact (the counts-mode histograms equal a hash replay of the
  // same records — pinned by AccumulatorCountsModeMatchesHashReplay), and
  // the cell table is untouched since begin_window() in counts mode, so
  // add() starts from an empty current window.
  std::vector<std::span<const EdgePacketCounts>> spans;
  spans.swap(pair_spans_);
  counts_mode_ = false;
  counts_nnz_ = 0;
  total_ = 0;
  for (const auto& span : spans) {
    for (const EdgePacketCounts& pc : span) {
      add(pc.u, pc.v, pc.forward);
      add(pc.v, pc.u, pc.backward);
    }
  }
}

void WindowAccumulator::merge(const WindowAccumulator& other) {
  if (other.counts_mode_) {
    if (counts_mode_) {
      // counts ⊕ counts: marginal state is additive, so the merge is pure
      // bookkeeping — adopt the other's record views and take the union
      // of the dense id ranges.  Growing with zeros preserves the all-zero
      // invariant the histogram passes rely on.
      for (const auto& span : other.pair_spans_) {
        if (!span.empty()) pair_spans_.push_back(span);
      }
      counts_nnz_ += other.counts_nnz_;
      total_ += other.total_;
      counts_dense_nodes_ =
          std::max(counts_dense_nodes_, other.counts_dense_nodes_);
      if (node_packets_dense_.size() < counts_dense_nodes_) {
        node_packets_dense_.resize(counts_dense_nodes_, 0);
        node_fan_dense_.resize(counts_dense_nodes_, 0);
      }
      return;
    }
    // hash ⊕ counts: expand the other's records into directed cells.
    for (const auto& span : other.pair_spans_) {
      for (const EdgePacketCounts& pc : span) {
        add(pc.u, pc.v, pc.forward);
        add(pc.v, pc.u, pc.backward);
      }
    }
    return;
  }
  if (counts_mode_) demote_counts_to_hash();
  // hash ⊕ hash: replay the other's live cells (insertion order — every
  // cell carries a positive count, so each replay lands once).
  for (const std::uint32_t slot : other.live_cells_) {
    const Cell& c = other.cells_[slot];
    add(c.src, c.dst, c.count);
  }
}

void WindowAccumulator::export_counts(
    std::vector<EdgePacketCounts>& out) const {
  if (counts_mode_) {
    for (const auto& span : pair_spans_) {
      for (const EdgePacketCounts& pc : span) {
        if (pc.forward + pc.backward == 0) continue;
        out.push_back(pc);
      }
    }
    return;
  }
  // Hash mode: every live cell carries a positive count on one directed
  // link; canonicalize each to lower-endpoint-first (self-pairs keep all
  // packets in `forward`, matching the counts generator's convention).
  for (const std::uint32_t slot : live_cells_) {
    const Cell& c = cells_[slot];
    if (c.src <= c.dst) {
      out.push_back(EdgePacketCounts{c.src, c.dst, c.count, 0});
    } else {
      out.push_back(EdgePacketCounts{c.dst, c.src, 0, c.count});
    }
  }
}

Count WindowAccumulator::at(NodeId src, NodeId dst) const {
  if (counts_mode_) {
    // Cold path (tests, spot checks): one scan over the unique pairs.
    for (const auto& span : pair_spans_) {
      for (const EdgePacketCounts& pc : span) {
        if (pc.u == src && pc.v == dst) return pc.forward;
        if (pc.u == dst && pc.v == src) return pc.backward;
      }
    }
    return 0;
  }
  const std::size_t slot = find_cell(src, dst);
  return slot == kNpos ? 0 : cells_[slot].count;
}

std::size_t WindowAccumulator::find_cell(NodeId src,
                                         NodeId dst) const noexcept {
  std::size_t i = mix_cell(src, dst) & cell_mask_;
  for (;;) {
    if (cell_epoch_[i] != epoch_) return kNpos;
    const Cell& c = cells_[i];
    if (c.src == src && c.dst == dst) return i;
    i = (i + 1) & cell_mask_;
  }
}

std::size_t WindowAccumulator::find_or_insert_cell(NodeId src, NodeId dst) {
  std::size_t i = mix_cell(src, dst) & cell_mask_;
  for (;;) {
    if (cell_epoch_[i] != epoch_) {
      cell_epoch_[i] = epoch_;
      cells_[i] = Cell{src, dst, 0};
      live_cells_.push_back(static_cast<std::uint32_t>(i));
      return i;
    }
    const Cell& c = cells_[i];
    if (c.src == src && c.dst == dst) return i;
    i = (i + 1) & cell_mask_;
  }
}

void WindowAccumulator::grow_cells() {
  const std::size_t new_capacity = (cell_mask_ + 1) * 2;
  PALU_CHECK(new_capacity <= kMaxCapacity,
             "WindowAccumulator: cell table exceeds 2^32 slots");
  std::vector<Cell> live;
  live.reserve(live_cells_.size());
  for (const std::uint32_t slot : live_cells_) live.push_back(cells_[slot]);
  cells_.assign(new_capacity, Cell{});
  cell_epoch_.assign(new_capacity, 0u);
  cell_mask_ = new_capacity - 1;
  cell_grow_at_ = new_capacity - new_capacity / 4;
  epoch_ = 1;
  live_cells_.clear();
  for (const Cell& c : live) {
    const std::size_t slot = find_or_insert_cell(c.src, c.dst);
    cells_[slot].count = c.count;
  }
}

void WindowAccumulator::begin_node_pass() {
  live_nodes_.clear();
  if (++node_pass_ == 0) {
    std::fill(node_epoch_.begin(), node_epoch_.end(), 0u);
    node_pass_ = 1;
  }
}

WindowAccumulator::NodeSlot& WindowAccumulator::node_slot(NodeId id) {
  if (live_nodes_.size() >= node_grow_at_) grow_nodes();
  std::size_t i = mix_node(id) & node_mask_;
  for (;;) {
    if (node_epoch_[i] != node_pass_) {
      node_epoch_[i] = node_pass_;
      nodes_[i] = NodeSlot{id, 0, 0};
      live_nodes_.push_back(static_cast<std::uint32_t>(i));
      return nodes_[i];
    }
    if (nodes_[i].id == id) return nodes_[i];
    i = (i + 1) & node_mask_;
  }
}

void WindowAccumulator::grow_nodes() {
  const std::size_t new_capacity = (node_mask_ + 1) * 2;
  PALU_CHECK(new_capacity <= kMaxCapacity,
             "WindowAccumulator: node table exceeds 2^32 slots");
  std::vector<NodeSlot> live;
  live.reserve(live_nodes_.size());
  for (const std::uint32_t slot : live_nodes_) live.push_back(nodes_[slot]);
  nodes_.assign(new_capacity, NodeSlot{});
  node_epoch_.assign(new_capacity, 0u);
  node_mask_ = new_capacity - 1;
  node_grow_at_ = new_capacity - new_capacity / 4;
  node_pass_ = 1;
  live_nodes_.clear();
  for (const NodeSlot& n : live) node_slot(n.id) = n;
}

stats::DegreeHistogram WindowAccumulator::histogram(Quantity q) {
  if (counts_mode_) return histogram_counts(q);
  stats::DegreeHistogram h;
  switch (q) {
    case Quantity::kLinkPackets:
      for (const std::uint32_t slot : live_cells_) {
        h.add(cells_[slot].count);
      }
      return h;
    case Quantity::kSourcePackets:
    case Quantity::kSourceFanOut: {
      begin_node_pass();
      for (const std::uint32_t slot : live_cells_) {
        const Cell& c = cells_[slot];
        NodeSlot& n = node_slot(c.src);
        n.packets += c.count;
        ++n.fan;
      }
      const bool want_packets = q == Quantity::kSourcePackets;
      for (const std::uint32_t slot : live_nodes_) {
        h.add(want_packets ? nodes_[slot].packets : nodes_[slot].fan);
      }
      return h;
    }
    case Quantity::kDestinationPackets:
    case Quantity::kDestinationFanIn: {
      begin_node_pass();
      for (const std::uint32_t slot : live_cells_) {
        const Cell& c = cells_[slot];
        NodeSlot& n = node_slot(c.dst);
        n.packets += c.count;
        ++n.fan;
      }
      const bool want_packets = q == Quantity::kDestinationPackets;
      for (const std::uint32_t slot : live_nodes_) {
        h.add(want_packets ? nodes_[slot].packets : nodes_[slot].fan);
      }
      return h;
    }
    case Quantity::kUndirectedDegree: {
      // Same pair-owned-once rule as undirected_degree_histogram: the
      // (min, max) orientation credits both endpoints; the mirror cell
      // counts only when its partner is absent.
      begin_node_pass();
      for (const std::uint32_t slot : live_cells_) {
        const Cell& c = cells_[slot];
        if (c.src == c.dst) continue;
        if (c.src > c.dst && find_cell(c.dst, c.src) != kNpos) continue;
        ++node_slot(c.src).fan;
        ++node_slot(c.dst).fan;
      }
      for (const std::uint32_t slot : live_nodes_) {
        h.add(nodes_[slot].fan);
      }
      return h;
    }
  }
  return h;
}

void WindowAccumulator::add_value(Count v) {
  if (v >= kDenseValueCap) {
    overflow_values_.push_back(v);
    return;
  }
  if (v >= value_count_.size()) {
    value_count_.resize(std::max<std::size_t>(v + 1, value_count_.size() * 2),
                        0);
  }
  if (value_count_[v]++ == 0) touched_values_.push_back(v);
}

stats::DegreeHistogram WindowAccumulator::drain_value_scratch() {
  stats::DegreeHistogram h;
  for (const Count v : touched_values_) {
    h.add(v, value_count_[v]);
    value_count_[v] = 0;
  }
  touched_values_.clear();
  for (const Count v : overflow_values_) h.add(v);
  overflow_values_.clear();
  return h;
}

stats::DegreeHistogram WindowAccumulator::emit_dense_nodes(
    bool want_packets) {
  // Linear sweep over the dense id range: every pass increments fan when
  // it credits a node, so fan > 0 marks exactly the touched nodes, and
  // re-zeroing restores the all-zero invariant.  The sweep is a fixed
  // graph-sized cost — cheaper than touched-list bookkeeping once most
  // nodes are active, and N_V-independent either way.
  for (std::size_t id = 0; id < counts_dense_nodes_; ++id) {
    const Count fan = node_fan_dense_[id];
    if (fan == 0) continue;
    add_value(want_packets ? node_packets_dense_[id] : fan);
    node_packets_dense_[id] = 0;
    node_fan_dense_[id] = 0;
  }
  return drain_value_scratch();
}

stats::DegreeHistogram WindowAccumulator::histogram_counts(Quantity q) {
  // Each record expands to the directed cells (u, v, forward) and
  // (v, u, backward); pairs are unique, so — unlike the hash path — no
  // mirror lookups are needed anywhere, including kUndirectedDegree.
  switch (q) {
    case Quantity::kLinkPackets:
      for (const auto& span : pair_spans_) {
        for (const EdgePacketCounts& pc : span) {
          if (pc.forward > 0) add_value(pc.forward);
          if (pc.backward > 0) add_value(pc.backward);
        }
      }
      return drain_value_scratch();
    case Quantity::kSourcePackets:
    case Quantity::kSourceFanOut:
      for (const auto& span : pair_spans_) {
        for (const EdgePacketCounts& pc : span) {
          if (pc.forward > 0) {
            node_packets_dense_[pc.u] += pc.forward;
            ++node_fan_dense_[pc.u];
          }
          if (pc.backward > 0) {
            node_packets_dense_[pc.v] += pc.backward;
            ++node_fan_dense_[pc.v];
          }
        }
      }
      return emit_dense_nodes(q == Quantity::kSourcePackets);
    case Quantity::kDestinationPackets:
    case Quantity::kDestinationFanIn:
      for (const auto& span : pair_spans_) {
        for (const EdgePacketCounts& pc : span) {
          if (pc.forward > 0) {
            node_packets_dense_[pc.v] += pc.forward;
            ++node_fan_dense_[pc.v];
          }
          if (pc.backward > 0) {
            node_packets_dense_[pc.u] += pc.backward;
            ++node_fan_dense_[pc.u];
          }
        }
      }
      return emit_dense_nodes(q == Quantity::kDestinationPackets);
    case Quantity::kUndirectedDegree:
      // Pair-owned-once comes for free: every record IS one unordered
      // pair, so each endpoint is credited exactly once per active pair.
      // Zero rows (the support pairs that drew no packets this window)
      // carry no degree.
      for (const auto& span : pair_spans_) {
        for (const EdgePacketCounts& pc : span) {
          if (pc.u == pc.v || (pc.forward | pc.backward) == 0) continue;
          ++node_fan_dense_[pc.u];
          ++node_fan_dense_[pc.v];
        }
      }
      return emit_dense_nodes(false);
  }
  return stats::DegreeHistogram{};
}

}  // namespace palu::traffic
