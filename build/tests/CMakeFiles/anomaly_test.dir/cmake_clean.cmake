file(REMOVE_RECURSE
  "CMakeFiles/anomaly_test.dir/anomaly_test.cpp.o"
  "CMakeFiles/anomaly_test.dir/anomaly_test.cpp.o.d"
  "anomaly_test"
  "anomaly_test.pdb"
  "anomaly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
