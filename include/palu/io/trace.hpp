// Plain-text packet traces: the library's ingestion path for real data.
//
// Format: one packet per line, "src dst" as unsigned 64-bit ids, blank
// lines and '#'-prefixed comments ignored.  This is the de-facto exchange
// format of anonymized flow logs once IPs are mapped to integer ids; a
// WIDE/CAIDA-style capture exported this way drops straight into the
// Section II window pipeline.
//
// Real captures are noisy, so every reader has a policy-aware overload:
// under ErrorPolicy::kSkip malformed lines are counted and dropped, under
// kRepair the reader salvages the first two unsigned integer tokens it can
// find on the line (bit-flipped separators, glued third columns) and only
// drops lines with nothing salvageable.  Both enforce
// IngestOptions::max_bad_lines as an error budget.  The legacy overloads
// are exactly kStrict.
#pragma once

#include <istream>
#include <ostream>
#include <span>
#include <vector>

#include "palu/common/result.hpp"
#include "palu/graph/graph.hpp"
#include "palu/traffic/packet.hpp"

namespace palu::io {

/// Parses a trace; throws palu::DataError with the line number on
/// malformed input (equivalent to the kStrict policy).
std::vector<traffic::Packet> read_trace(std::istream& in);

/// Packets plus the structured account of what was read/dropped/repaired.
struct TraceReadResult {
  std::vector<traffic::Packet> packets;
  IngestReport report;
};

/// Policy-aware trace reader.  kStrict throws on the first malformed line;
/// kSkip and kRepair throw only when the error budget is exhausted.
TraceReadResult read_trace(std::istream& in, const IngestOptions& opts);

/// Writes packets one per line, with a format header comment.
void write_trace(std::ostream& out, std::span<const traffic::Packet> pkts);

/// Writes a graph as "u v" edge lines, preceded by a "# nodes=N" directive
/// so isolated nodes survive the round trip.
void write_edge_list(std::ostream& out, const graph::Graph& g);

/// Parses an edge list.  A leading "# nodes=N" comment fixes the node
/// count; otherwise it is max endpoint + 1.  Throws palu::DataError on
/// malformed lines or endpoints out of the declared range.
graph::Graph read_edge_list(std::istream& in);

/// Graph plus the ingest account.  Under kSkip/kRepair, edges whose
/// endpoints exceed a "# nodes=N" declaration are dropped (and counted)
/// instead of aborting the parse.
struct EdgeListReadResult {
  graph::Graph graph;
  IngestReport report;
};

/// Policy-aware edge-list reader.
EdgeListReadResult read_edge_list(std::istream& in,
                                  const IngestOptions& opts);

}  // namespace palu::io
