// Streaming PALU estimation.
//
// The paper's data arrive as an endless sequence of fixed-N_V windows;
// an operator wants running parameter estimates, not a one-shot batch
// fit.  This accumulator merges window histograms as they arrive, refits
// the Section IV-B constants after each, and keeps the trajectory so
// drift (e.g. a botnet ramping up the star density) is visible as a time
// series of (α, μ, u, l).
#pragma once

#include <optional>
#include <vector>

#include "palu/core/estimate.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::core {

class StreamingPaluEstimator {
 public:
  explicit StreamingPaluEstimator(PaluFitOptions opts = {})
      : opts_(opts) {}

  /// Folds one window's degree histogram into the running aggregate and
  /// refits.  Windows whose aggregate is still too thin to fit (DataError
  /// from the pipeline) are absorbed without producing a snapshot.
  void add_window(const stats::DegreeHistogram& window);

  std::size_t windows_seen() const noexcept { return windows_; }

  /// Latest successful fit; throws palu::DataError when no window has
  /// produced a fittable aggregate yet.
  const PaluFit& current() const;

  bool has_fit() const noexcept { return latest_.has_value(); }

  /// One entry per successful refit, in arrival order.
  const std::vector<PaluFit>& history() const noexcept { return history_; }

  /// The merged histogram backing the current fit.
  const stats::DegreeHistogram& aggregate() const noexcept {
    return merged_;
  }

 private:
  PaluFitOptions opts_;
  stats::DegreeHistogram merged_;
  std::optional<PaluFit> latest_;
  std::vector<PaluFit> history_;
  std::size_t windows_ = 0;
};

}  // namespace palu::core
