// Fixture: a same-line suppression silences the typed-error rule.
// palu-lint-expect-clean
#include <stdexcept>

void fail() {
  throw std::runtime_error("boundary");  // palu-lint: allow(typed-error)
}
