#include "palu/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/graph/components.hpp"
#include "palu/rng/distributions.hpp"

namespace palu::graph {

Graph barabasi_albert(Rng& rng, NodeId num_nodes, NodeId edges_per_node) {
  PALU_CHECK(edges_per_node >= 1, "barabasi_albert: requires m >= 1");
  PALU_CHECK(num_nodes > edges_per_node,
             "barabasi_albert: requires n > m");
  Graph g(num_nodes);
  // Repeated-endpoint list: each edge contributes both endpoints, so a
  // uniform draw from the list is a degree-proportional draw.
  std::vector<NodeId> endpoint_pool;
  endpoint_pool.reserve(2 * num_nodes * edges_per_node);
  // Seed: a (m+1)-clique so every early node has positive degree.
  const NodeId seed = edges_per_node + 1;
  for (NodeId u = 0; u < seed; ++u) {
    for (NodeId v = u + 1; v < seed; ++v) {
      g.add_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  std::vector<NodeId> targets;
  targets.reserve(edges_per_node);
  for (NodeId v = seed; v < num_nodes; ++v) {
    targets.clear();
    while (targets.size() < edges_per_node) {
      const NodeId t =
          endpoint_pool[rng.uniform_index(endpoint_pool.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      g.add_edge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return g;
}

Graph dms_attachment(Rng& rng, NodeId num_nodes, NodeId edges_per_node,
                     double attractiveness) {
  PALU_CHECK(edges_per_node >= 1, "dms_attachment: requires m >= 1");
  PALU_CHECK(num_nodes > edges_per_node, "dms_attachment: requires n > m");
  PALU_CHECK(attractiveness > -static_cast<double>(edges_per_node),
             "dms_attachment: requires a > -m");
  Graph g(num_nodes);
  std::vector<NodeId> endpoint_pool;
  std::vector<Degree> degree(num_nodes, 0);
  const NodeId seed = edges_per_node + 1;
  for (NodeId u = 0; u < seed; ++u) {
    for (NodeId v = u + 1; v < seed; ++v) {
      g.add_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
      ++degree[u];
      ++degree[v];
    }
  }
  std::vector<NodeId> targets;
  for (NodeId v = seed; v < num_nodes; ++v) {
    targets.clear();
    while (targets.size() < edges_per_node) {
      NodeId t;
      if (attractiveness >= 0.0) {
        // P ∝ k + a as a mixture of degree-proportional and uniform.
        const double degree_mass =
            static_cast<double>(endpoint_pool.size());
        const double uniform_mass =
            attractiveness * static_cast<double>(v);
        if (rng.uniform() * (degree_mass + uniform_mass) < degree_mass) {
          t = endpoint_pool[rng.uniform_index(endpoint_pool.size())];
        } else {
          t = rng.uniform_index(v);
        }
      } else {
        // a < 0: rejection from the degree-proportional envelope with
        // acceptance 1 + a/k (valid since k >= m > -a).
        for (;;) {
          t = endpoint_pool[rng.uniform_index(endpoint_pool.size())];
          const double accept =
              1.0 + attractiveness / static_cast<double>(degree[t]);
          if (rng.uniform() < accept) break;
        }
      }
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      g.add_edge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
      ++degree[v];
      ++degree[t];
    }
  }
  return g;
}

Graph zeta_degree_core(Rng& rng, NodeId num_nodes, double alpha,
                       Degree dmax) {
  PALU_CHECK(num_nodes >= 2, "zeta_degree_core: requires n >= 2");
  PALU_CHECK(alpha > 1.0, "zeta_degree_core: requires alpha > 1");
  rng::BoundedZipfSampler zipf(alpha, dmax);
  // Draw the degree sequence, then build half-edge stubs.
  std::vector<Degree> degree(num_nodes);
  Count stub_count = 0;
  for (NodeId v = 0; v < num_nodes; ++v) {
    degree[v] = zipf(rng);
    stub_count += degree[v];
  }
  if (stub_count % 2 == 1) {
    // Parity fix: one extra stub on a uniformly random node.
    ++degree[rng.uniform_index(num_nodes)];
    ++stub_count;
  }
  std::vector<NodeId> stubs;
  stubs.reserve(stub_count);
  for (NodeId v = 0; v < num_nodes; ++v) {
    for (Degree k = 0; k < degree[v]; ++k) stubs.push_back(v);
  }
  // Fisher–Yates pairing; erased configuration model (self-loops and
  // duplicate edges are dropped, a vanishing fraction for alpha > 2 and a
  // small, degree-preserving-in-distribution fraction otherwise).
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.uniform_index(i)]);
  }
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(stubs.size() / 2);
  Graph g(num_nodes);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    NodeId u = stubs[i];
    NodeId v = stubs[i + 1];
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (u << 32) | v;
    if (num_nodes <= (NodeId{1} << 32)) {
      if (!seen.insert(key).second) continue;
    }
    g.add_edge(u, v);
  }
  return g;
}

Graph erdos_renyi(Rng& rng, NodeId num_nodes, double p) {
  PALU_CHECK(p >= 0.0 && p <= 1.0, "erdos_renyi: requires 0 <= p <= 1");
  Graph g(num_nodes);
  if (p == 0.0 || num_nodes < 2) return g;
  // Geometric skipping over the lexicographic pair stream (Batagelj–Brandes).
  const double log_q = std::log1p(-p);
  const double total_pairs =
      0.5 * static_cast<double>(num_nodes) *
      static_cast<double>(num_nodes - 1);
  double index = -1.0;
  for (;;) {
    const double skip =
        p < 1.0 ? std::floor(std::log(rng.uniform_positive()) / log_q) : 0.0;
    index += skip + 1.0;
    if (index >= total_pairs) break;
    // Decode linear index into (u, v), u < v.
    const auto idx = static_cast<std::uint64_t>(index);
    const double uf =
        std::floor((-1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(idx))) /
                   2.0);
    auto u = static_cast<NodeId>(uf);
    // Guard rounding of the inverse triangular formula.
    while ((u + 1) * (u + 2) / 2 <= idx) ++u;
    while (u * (u + 1) / 2 > idx) --u;
    const NodeId v = static_cast<NodeId>(idx - u * (u + 1) / 2);
    g.add_edge(u + 1, v);  // pair (u+1, v) with v <= u
  }
  return g;
}

Graph star_forest(Rng& rng, Count num_stars, double lambda) {
  PALU_CHECK(lambda >= 0.0, "star_forest: requires lambda >= 0");
  Graph g(num_stars);
  for (NodeId hub = 0; hub < num_stars; ++hub) {
    const std::uint64_t leaves = rng::sample_poisson(rng, lambda);
    if (leaves == 0) continue;
    const NodeId first = g.add_nodes(leaves);
    for (std::uint64_t k = 0; k < leaves; ++k) {
      g.add_edge(hub, first + k);
    }
  }
  return g;
}

Graph pa_er_hybrid(Rng& rng, NodeId num_nodes, NodeId edges_per_node,
                   double p_er) {
  Graph g = barabasi_albert(rng, num_nodes, edges_per_node);
  const Graph overlay = erdos_renyi(rng, num_nodes, p_er);
  for (const Edge& e : overlay.edges()) g.add_edge(e.u, e.v);
  return g.simplified();
}

Graph rewire_degree_preserving(Rng& rng, const Graph& g, Count swaps) {
  std::vector<Edge> edges = g.edges();
  if (edges.size() < 2) return g;
  for (Count s = 0; s < swaps; ++s) {
    const std::size_t i = rng.uniform_index(edges.size());
    std::size_t j = rng.uniform_index(edges.size());
    if (i == j) continue;
    Edge& a = edges[i];
    Edge& b = edges[j];
    // (u,v),(x,y) → (u,y),(x,v); skip if a self-loop would appear.
    if (a.u == b.v || b.u == a.v) continue;
    std::swap(a.v, b.v);
  }
  return Graph(g.num_nodes(), std::move(edges));
}

Graph connect_by_edge_swap(Rng& rng, const Graph& g) {
  // A swap (u,v),(x,y) → (u,x),(v,y) preserves all degrees; it merges the
  // two components fully when the giant-side edge lies on a cycle.  In a
  // forest #components = V − E is invariant under swaps, so merging spends
  // one giant cycle per fragment — heavy-tailed configuration-model giants
  // carry far more cycles than fragments.  Random edge picks occasionally
  // hit bridges and merely reshuffle; iterating a few rounds converges.
  std::vector<Edge> edges = g.edges();
  if (edges.size() < 2) return g;
  for (int round = 0; round < 64; ++round) {
    UnionFind uf(g.num_nodes());
    for (const Edge& e : edges) uf.unite(e.u, e.v);
    std::unordered_map<NodeId, std::vector<std::size_t>> comp_edges;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      comp_edges[uf.find(edges[i].u)].push_back(i);
    }
    if (comp_edges.size() <= 1) break;
    NodeId giant_root = comp_edges.begin()->first;
    for (const auto& [root, idxs] : comp_edges) {
      if (idxs.size() > comp_edges[giant_root].size()) giant_root = root;
    }
    const auto& giant_idxs = comp_edges[giant_root];
    for (const auto& [root, idxs] : comp_edges) {
      if (root == giant_root) continue;
      Edge& es = edges[idxs[rng.uniform_index(idxs.size())]];
      Edge& eg = edges[giant_idxs[rng.uniform_index(giant_idxs.size())]];
      std::swap(es.v, eg.u);
    }
  }
  return Graph(g.num_nodes(), std::move(edges));
}

Graph bernoulli_edge_sample(Rng& rng, const Graph& g, double p) {
  PALU_CHECK(p >= 0.0 && p <= 1.0,
             "bernoulli_edge_sample: requires 0 <= p <= 1");
  Graph out(g.num_nodes());
  for (const Edge& e : g.edges()) {
    if (rng.bernoulli(p)) out.add_edge(e.u, e.v);
  }
  return out;
}

}  // namespace palu::graph
