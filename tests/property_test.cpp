// Property-based tests: invariants that must hold across randomized
// parameter grids, not just hand-picked cases.
//
// Includes the key distributional lemma of Section V — thinning a Poisson
// by a Bernoulli coin is Poisson: Bin(Po(λ), p) ~ Po(λp) — verified by
// simulation, plus normalization/monotonicity/consistency sweeps for the
// zeta functions, the ZM model, the pooled theory, and the estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "palu/core/estimate.hpp"
#include "palu/core/generator.hpp"
#include "palu/core/theory.hpp"
#include "palu/core/zm_connection.hpp"
#include "palu/fit/zipf_mandelbrot.hpp"
#include "palu/graph/components.hpp"
#include "palu/math/gamma.hpp"
#include "palu/math/lambda_ratio.hpp"
#include "palu/math/zeta.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/stats/log_binning.hpp"

namespace palu {
namespace {

// ------------------------------------------------- Section V thinning

class PoissonThinning
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PoissonThinning, BinomialOfPoissonIsPoisson) {
  const auto [lambda, p] = GetParam();
  Rng rng(1234);
  constexpr int kN = 200000;
  stats::DegreeHistogram thinned;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t y = rng::sample_poisson(rng, lambda);
    thinned.add(rng::sample_binomial(rng, y, p) + 1);  // +1: keep zeros
  }
  // Compare frequencies with Po(λp) pmf.
  const double mu = lambda * p;
  for (std::uint64_t k = 0; k <= 8; ++k) {
    const double expected = math::poisson_pmf(k, mu) * kN;
    if (expected < 50.0) continue;
    EXPECT_NEAR(static_cast<double>(thinned.at(k + 1)), expected,
                6.0 * std::sqrt(expected))
        << "lambda=" << lambda << " p=" << p << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PoissonThinning,
    ::testing::Combine(::testing::Values(0.5, 2.0, 6.0, 15.0),
                       ::testing::Values(0.2, 0.5, 0.9)));

// ---------------------------------------------------- zeta identities

class ZetaIdentity : public ::testing::TestWithParam<double> {};

TEST_P(ZetaIdentity, HeadPlusTailEqualsWhole) {
  const double s = GetParam();
  for (const std::uint64_t cut : {1ull, 7ull, 100ull, 12345ull}) {
    EXPECT_NEAR(math::truncated_zeta(s, cut) +
                    math::zeta_tail(s, cut + 1),
                math::riemann_zeta(s), 1e-11)
        << "s=" << s << " cut=" << cut;
  }
}

TEST_P(ZetaIdentity, ShiftedSumIsMonotoneInOffset) {
  const double s = GetParam();
  double prev = math::shifted_truncated_zeta(s, 0.0, 1000);
  for (double q = 0.5; q < 8.0; q += 0.5) {
    const double cur = math::shifted_truncated_zeta(s, q, 1000);
    EXPECT_LT(cur, prev) << "s=" << s << " q=" << q;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZetaIdentity,
                         ::testing::Values(1.2, 1.5, 2.0, 2.7, 3.0, 4.5));

// ---------------------------------------------------------- ZM model

class ZmProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ZmProperty, NormalizedMonotonePooledConsistent) {
  const auto [alpha, delta] = GetParam();
  const Degree dmax = 3000;
  const fit::ZipfMandelbrot zm(alpha, delta, dmax);
  // pmf monotone decreasing in d and positive.
  double prev = zm.pmf(1);
  double total = prev;
  for (Degree d = 2; d <= dmax; ++d) {
    const double p = zm.pmf(d);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, prev);
    total += p;
    prev = p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Pooling is a partition of the pmf: masses sum to 1.
  EXPECT_NEAR(zm.pooled().total_mass(), 1.0, 1e-9);
  // cdf hits 1 at dmax.
  EXPECT_NEAR(zm.cdf(dmax), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ZmProperty,
    ::testing::Combine(::testing::Values(1.3, 2.0, 2.9),
                       ::testing::Values(-0.5, 0.0, 1.0, 6.0)));

// -------------------------------------------------------- PALU theory

class PaluTheoryProperty
    : public ::testing::TestWithParam<
          std::tuple<double, double, double, double>> {};

TEST_P(PaluTheoryProperty, SharesAndConstantsBehave) {
  const auto [lambda, core_frac, alpha, window] = GetParam();
  const auto params = core::PaluParams::solve_hubs(lambda, core_frac, 0.15,
                                                   alpha, window);
  // Class shares partition the visible nodes.
  const auto comp = core::observed_composition(params);
  EXPECT_NEAR(comp.core_share + comp.leaf_share + comp.unattached_share,
              1.0, 1e-12);
  EXPECT_GT(comp.visible_mass, 0.0);
  EXPECT_LE(comp.unattached_link_share, comp.unattached_share + 1e-15);
  // Simplified constants positive; Λ = e·μ.
  const auto k = core::simplified_constants(params);
  EXPECT_GT(k.c, 0.0);
  EXPECT_GT(k.u, 0.0);
  EXPECT_GE(k.l, 0.0);
  EXPECT_NEAR(k.lambda_cap, std::exp(1.0) * k.mu, 1e-12);
  // Degree shares positive and eventually power-law decaying.
  for (Degree d = 1; d <= 64; ++d) {
    EXPECT_GT(core::degree_share(params, d), 0.0) << "d=" << d;
  }
  const double ratio = core::degree_share(params, 512) /
                       core::degree_share(params, 1024);
  EXPECT_NEAR(ratio, std::pow(2.0, alpha), 0.05 * std::pow(2.0, alpha));
  // Pooled theory masses are non-negative and bounded by the paper-form
  // total mass (which can exceed 1 by the documented integral-for-sum gap
  // in V; see core/theory.hpp).
  const double mu = params.lambda * params.window;
  const double paper_total =
      (params.core * std::pow(params.window, params.alpha) +
       params.leaves * params.window +
       params.hubs * (1.0 + mu - std::exp(-mu))) /
      comp.visible_mass;
  const auto pooled = core::pooled_theory(params, 16);
  for (std::size_t i = 0; i < pooled.num_bins(); ++i) {
    EXPECT_GE(pooled[i], 0.0);
    EXPECT_LE(pooled[i], paper_total + 1e-12);
  }
  EXPECT_LT(paper_total, 1.5);  // the gap stays O(1), never runaway
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PaluTheoryProperty,
    ::testing::Combine(::testing::Values(0.5, 3.0, 12.0),
                       ::testing::Values(0.2, 0.5),
                       ::testing::Values(1.8, 2.5),
                       ::testing::Values(0.25, 1.0)));

// ----------------------------------------------- window invariance law

class WindowScaling : public ::testing::TestWithParam<double> {};

TEST_P(WindowScaling, ConstantsScaleExactly) {
  // μ scales linearly in p and c·V scales as p^α — the exact functional
  // form behind "only p changes with window size".
  const double p = GetParam();
  const auto base = core::PaluParams::solve_hubs(4.0, 0.4, 0.2, 2.3, 1.0);
  const auto k_full = core::simplified_constants(base);
  const auto params = base.at_window(p);
  const auto k = core::simplified_constants(params);
  EXPECT_NEAR(k.mu, k_full.mu * p, 1e-12);
  const double v = core::observed_composition(params).visible_mass;
  const double v_full = core::observed_composition(base).visible_mass;
  EXPECT_NEAR(k.c * v, k_full.c * v_full * std::pow(p, base.alpha),
              1e-12);
  EXPECT_NEAR(k.l * v, k_full.l * v_full * p, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WindowScaling,
                         ::testing::Values(0.05, 0.2, 0.45, 0.7, 0.95));

// ---------------------------------------------- estimator consistency

class EstimatorConsistency : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorConsistency, AlphaAndMuWithinBandsAcrossSeeds) {
  const int seed = GetParam();
  const auto params = core::PaluParams::solve_hubs(5.0, 0.35, 0.2, 2.2,
                                                   0.8);
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const auto h = core::sample_observed_degrees(params, 250000, rng);
  const auto fit = core::fit_palu(h);
  const auto k = core::simplified_constants(params);
  EXPECT_NEAR(fit.alpha, params.alpha, 0.35) << "seed=" << seed;
  EXPECT_NEAR(fit.mu, k.mu, 0.25 * k.mu) << "seed=" << seed;
  EXPECT_TRUE(fit.mu_identifiable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorConsistency,
                         ::testing::Range(1, 9));

// ------------------------------------------------- ZM connection maps

class ZmConnectionProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZmConnectionProperty, DeltaMapsAreMutuallyInverse) {
  const double alpha = GetParam();
  for (double uc : {-0.9, -0.3, 0.0, 0.5, 4.0, 50.0}) {
    const double delta = core::delta_from_u_over_c(alpha, uc);
    EXPECT_GT(delta, -1.0);
    EXPECT_NEAR(core::u_over_c_from_delta(alpha, delta), uc,
                1e-9 * (1.0 + std::abs(uc)))
        << "alpha=" << alpha << " u/c=" << uc;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZmConnectionProperty,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0));

// ------------------------------------------- moment ratio global shape

TEST(MomentRatioProperty, InverseIsMonotoneToo) {
  double prev = 0.0;
  for (double r = 2.001; r < 40.0; r += 0.25) {
    const double x = math::invert_lambda_moment_ratio(r);
    EXPECT_GT(x, prev) << "r=" << r;
    EXPECT_NEAR(math::lambda_moment_ratio(x), r, 1e-9 * r);
    prev = x;
  }
}

// --------------------------------------------- census node partition

class CensusPartition : public ::testing::TestWithParam<int> {};

TEST_P(CensusPartition, ClassesPartitionTheNodeSet) {
  // isolated + 2·unattached_links + star nodes + core nodes == N for any
  // observed graph.
  const int seed = GetParam();
  const auto params = core::PaluParams::solve_hubs(
      2.0 + seed % 3, 0.3, 0.2, 2.2, 0.4 + 0.1 * (seed % 5));
  Rng rng(static_cast<std::uint64_t>(seed) * 7901 + 3);
  const auto net = core::generate_underlying(params, 50000, rng);
  const auto observed = core::generate_observed(net, params, rng);
  const auto census = graph::classify_topology(observed);
  const Count accounted =
      census.isolated_nodes + 2 * census.unattached_links +
      census.star_components + census.star_leaves + census.core_nodes;
  EXPECT_EQ(accounted, observed.num_nodes()) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CensusPartition, ::testing::Range(1, 7));

// ---------------------------------------------- pooling partition law

TEST(PoolingProperty, EveryHistogramPoolsToUnitMass) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    stats::DegreeHistogram h;
    const int support = 1 + static_cast<int>(rng.uniform_index(200));
    for (int i = 0; i < support; ++i) {
      h.add(1 + rng.uniform_index(1 << 16),
            1 + rng.uniform_index(1000));
    }
    const auto pooled = stats::LogBinned::from_histogram(h);
    EXPECT_NEAR(pooled.total_mass(), 1.0, 1e-9) << "trial " << trial;
    // Bin count consistent with the max degree.
    EXPECT_EQ(pooled.num_bins(),
              stats::LogBinned::bin_index(h.max_degree()) + 1);
  }
}

}  // namespace
}  // namespace palu
