file(REMOVE_RECURSE
  "libpalu_math.a"
)
