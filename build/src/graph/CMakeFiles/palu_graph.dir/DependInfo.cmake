
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/clustering.cpp" "src/graph/CMakeFiles/palu_graph.dir/clustering.cpp.o" "gcc" "src/graph/CMakeFiles/palu_graph.dir/clustering.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/graph/CMakeFiles/palu_graph.dir/components.cpp.o" "gcc" "src/graph/CMakeFiles/palu_graph.dir/components.cpp.o.d"
  "/root/repo/src/graph/crawl.cpp" "src/graph/CMakeFiles/palu_graph.dir/crawl.cpp.o" "gcc" "src/graph/CMakeFiles/palu_graph.dir/crawl.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/palu_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/palu_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/palu_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/palu_graph.dir/graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/palu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/palu_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/palu_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/palu_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
