// Named scenario presets used across examples, benches, and docs.
//
// Each returns a normalized PaluParams capturing one of the traffic
// archetypes the paper's narrative distinguishes.  Window defaults to 1
// (full observation); call .at_window(p) to shrink it.
#pragma once

#include "palu/core/params.hpp"

namespace palu::core::scenarios {

/// Core-dominated backbone traffic: most node mass in the PA core, light
/// star activity — the regime where a single power law almost works.
inline PaluParams backbone() {
  return PaluParams::solve_hubs(/*lambda=*/1.5, /*core=*/0.55,
                                /*leaves=*/0.15, /*alpha=*/2.0,
                                /*window=*/1.0);
}

/// Access-network style traffic with a heavy leaf population hanging off
/// the core supernodes.
inline PaluParams leafy_site() {
  return PaluParams::solve_hubs(/*lambda=*/3.0, /*core=*/0.3,
                                /*leaves=*/0.4, /*alpha=*/2.2,
                                /*window=*/1.0);
}

/// Bot-heavy traffic: star hubs dominate the node mass (scanners, C2
/// beacons) — the regime whose D(d_i) the Zipf–Mandelbrot model cannot
/// fit (the paper's Fig-3 upper-right panel).
inline PaluParams bot_heavy() {
  return PaluParams::solve_hubs(/*lambda=*/9.0, /*core=*/0.1,
                                /*leaves=*/0.1, /*alpha=*/2.2,
                                /*window=*/1.0);
}

/// The paper's "typical" mixed regime used as the default in most of this
/// library's experiments.
inline PaluParams mixed() {
  return PaluParams::solve_hubs(/*lambda=*/4.0, /*core=*/0.35,
                                /*leaves=*/0.25, /*alpha=*/2.2,
                                /*window=*/1.0);
}

}  // namespace palu::core::scenarios
