// Figure 4 — PALU model curve families vs base Zipf–Mandelbrot.
//
// Regenerates the figure's panels: for α ∈ {2.0, 2.5, 3.0} (top to
// bottom) with a fixed δ per panel, sweep the geometric parameter r and
// print the pooled PALU(d) family next to the base ZM differential
// cumulative distribution, plus the best-fit r and its residual — showing
// the family tending to ZM exactly as Section VI claims.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "palu/palu.hpp"

namespace {

using namespace palu;

void print_panel(double alpha, double delta, Degree dmax) {
  const fit::ZipfMandelbrot zm(alpha, delta, dmax);
  const auto zm_pooled = zm.pooled();
  const auto best = core::fit_r_to_zipf_mandelbrot(alpha, delta, dmax);
  std::printf("--- panel alpha=%.1f delta=%.2f (best r=%.4f, sse=%.2e) "
              "---\n",
              alpha, delta, best.r, best.sse);
  // Negative β (δ > 0) forbids small r: d^{−α} + β·r^{1−d} >= 0 requires
  // r >= (|β|·d^α)^{1/(d−1)} for every d >= 2.
  double r_min = 1.0;
  const double beta = core::u_over_c_from_delta(alpha, delta);
  if (beta < 0.0) {
    for (Degree d = 2; d <= 16; ++d) {
      const double dd = static_cast<double>(d);
      r_min = std::max(
          r_min, std::pow(-beta * std::pow(dd, alpha), 1.0 / (dd - 1.0)));
    }
  }
  const double r_values[] = {r_min * 1.05 + 0.10, r_min * 1.6 + 0.4,
                             r_min * 3.2 + 1.0, best.r};
  std::printf("  d_i      ZM        ");
  for (const double r : r_values) std::printf("r=%-7.3f ", r);
  std::printf("\n");
  const std::uint32_t nbins = stats::LogBinned::bin_index(dmax) + 1;
  std::vector<stats::LogBinned> family;
  for (const double r : r_values) {
    family.push_back(core::PaluZmCurve(alpha, delta, r, dmax).pooled());
  }
  for (std::uint32_t i = 0; i < nbins; ++i) {
    std::printf("  %-8llu %.3e",
                static_cast<unsigned long long>(
                    stats::LogBinned::bin_upper(i)),
                zm_pooled[i]);
    for (const auto& pooled : family) {
      std::printf(" %.3e", i < pooled.num_bins() ? pooled[i] : 0.0);
    }
    std::printf("\n");
  }
  // Family-wide distance to ZM as r varies: demonstrates convergence.
  std::printf("  max|PALU-ZM| per r: ");
  for (const auto& pooled : family) {
    double worst = 0.0;
    for (std::uint32_t i = 0; i < nbins; ++i) {
      const double m = i < pooled.num_bins() ? pooled[i] : 0.0;
      worst = std::max(worst, std::abs(zm_pooled[i] - m));
    }
    std::printf("%.2e ", worst);
  }
  std::printf("\n\n");
}

void print_fig4() {
  std::printf("=== Figure 4: PALU(d) curve families vs Zipf-Mandelbrot "
              "===\n\n");
  const Degree dmax = 1u << 12;
  print_panel(2.0, 0.5, dmax);
  print_panel(2.0, 2.0, dmax);
  print_panel(2.5, 1.0, dmax);
  print_panel(3.0, 0.5, dmax);
  print_panel(3.0, 3.0, dmax);
}

void BM_PaluCurvePooled(benchmark::State& state) {
  const core::PaluZmCurve curve(2.5, 1.0, 2.0,
                                static_cast<Degree>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.pooled());
  }
}
BENCHMARK(BM_PaluCurvePooled)->Arg(1 << 12)->Arg(1 << 20);

void BM_FitRToZm(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::fit_r_to_zipf_mandelbrot(2.5, 1.0, 1u << 12));
  }
}
BENCHMARK(BM_FitRToZm);

}  // namespace

int main(int argc, char** argv) {
  print_fig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
