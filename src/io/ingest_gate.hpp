// Internal per-line bookkeeping shared by the policy-aware io readers.
// Not installed: the public surface is IngestOptions/IngestReport.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "palu/common/result.hpp"
#include "palu/io/parse.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"

namespace palu::io::detail {

/// Applies one ErrorPolicy to a stream of per-line verdicts: throws under
/// kStrict, otherwise counts drops/repairs, pins the first error, and
/// enforces the error budget.  Also the readers' metrics chokepoint: the
/// palu_ingest_* counter handles are resolved once here (against whatever
/// registry the options selected), labelled by the reader's context, so
/// the per-line loops never touch the registry mutex.  Counters are
/// monotone across a process; the IngestReport is the per-call record —
/// in particular read_edge_list's late declared-range check unwinds
/// report fields for edges reclassified as drops, while the counters keep
/// both the original disposition and the drop (an event log, not a
/// snapshot).
class IngestGate {
 public:
  IngestGate(const char* context, const IngestOptions& opts,
             IngestReport& report)
      : context_(context),
        opts_(opts),
        report_(report),
        registry_(opts.metrics != nullptr ? *opts.metrics
                                          : obs::default_registry()),
        kept_counter_(registry_.counter(
            obs::names::kIngestLines,
            {{"reader", context}, {"outcome", "kept"}})),
        repaired_counter_(registry_.counter(
            obs::names::kIngestLines,
            {{"reader", context}, {"outcome", "repaired"}})),
        dropped_counter_(registry_.counter(
            obs::names::kIngestLines,
            {{"reader", context}, {"outcome", "dropped"}})),
        budget_counter_(registry_.counter(obs::names::kIngestBudgetExhausted,
                                          {{"reader", context}})) {
    registry_.counter(obs::names::kIngestReads, {{"reader", context}}).inc();
  }

  /// A well-formed line accepted as-is.
  void kept() {
    ++report_.records_kept;
    kept_counter_.inc();
  }

  /// A malformed line with nothing salvageable.  Counted as dropped even
  /// under kStrict, where it also aborts the read.
  void drop(std::size_t line_number, const std::string& message,
            const std::string& line) {
    dropped_counter_.inc();
    if (opts_.policy == ErrorPolicy::kStrict) {
      throw DataError(std::string(context_) + ": malformed line " +
                      std::to_string(line_number) + ": " + message +
                      " (line: '" + line + "')");
    }
    ++report_.lines_dropped;
    note_error(line_number, message, line);
    check_budget();
  }

  /// A malformed line salvaged under kRepair.
  void repaired(std::size_t line_number, const std::string& message,
                const std::string& line) {
    repaired_counter_.inc();
    ++report_.lines_repaired;
    note_error(line_number, message, line);
    check_budget();
  }

 private:
  void note_error(std::size_t line_number, const std::string& message,
                  const std::string& line) {
    if (!report_.first_error) {
      report_.first_error = IngestError{line_number, message, line};
    }
  }

  void check_budget() {
    const std::size_t bad = report_.lines_dropped + report_.lines_repaired;
    if (bad > opts_.max_bad_lines) {
      std::string what = std::string(context_) +
                         ": error budget exhausted (" + std::to_string(bad) +
                         " bad lines > max_bad_lines=" +
                         std::to_string(opts_.max_bad_lines) + ")";
      if (report_.first_error) {
        what += "; first error at line " +
                std::to_string(report_.first_error->line_number) + ": " +
                report_.first_error->message;
      }
      budget_counter_.inc();
      throw DataError(what);
    }
  }

  const char* context_;
  const IngestOptions& opts_;
  IngestReport& report_;
  obs::Registry& registry_;
  obs::Counter& kept_counter_;
  obs::Counter& repaired_counter_;
  obs::Counter& dropped_counter_;
  obs::Counter& budget_counter_;
};

/// Salvage helper for kRepair: extracts the values of up to `want` digit
/// runs in `body` that parse cleanly as uint64 (overlong runs that would
/// overflow are passed over).
inline std::vector<std::uint64_t> salvage_u64(std::string_view body,
                                              std::size_t want) {
  std::vector<std::uint64_t> out;
  std::size_t i = 0;
  while (i < body.size() && out.size() < want) {
    if (body[i] < '0' || body[i] > '9') {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < body.size() && body[j] >= '0' && body[j] <= '9') ++j;
    const auto parsed = parse_u64(body.substr(i, j - i));
    if (parsed.ok()) out.push_back(parsed.value());
    i = j;
  }
  return out;
}

}  // namespace palu::io::detail
