
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fit/bootstrap.cpp" "src/fit/CMakeFiles/palu_fit.dir/bootstrap.cpp.o" "gcc" "src/fit/CMakeFiles/palu_fit.dir/bootstrap.cpp.o.d"
  "/root/repo/src/fit/brent.cpp" "src/fit/CMakeFiles/palu_fit.dir/brent.cpp.o" "gcc" "src/fit/CMakeFiles/palu_fit.dir/brent.cpp.o.d"
  "/root/repo/src/fit/ks_test.cpp" "src/fit/CMakeFiles/palu_fit.dir/ks_test.cpp.o" "gcc" "src/fit/CMakeFiles/palu_fit.dir/ks_test.cpp.o.d"
  "/root/repo/src/fit/levmar.cpp" "src/fit/CMakeFiles/palu_fit.dir/levmar.cpp.o" "gcc" "src/fit/CMakeFiles/palu_fit.dir/levmar.cpp.o.d"
  "/root/repo/src/fit/linreg.cpp" "src/fit/CMakeFiles/palu_fit.dir/linreg.cpp.o" "gcc" "src/fit/CMakeFiles/palu_fit.dir/linreg.cpp.o.d"
  "/root/repo/src/fit/model_zoo.cpp" "src/fit/CMakeFiles/palu_fit.dir/model_zoo.cpp.o" "gcc" "src/fit/CMakeFiles/palu_fit.dir/model_zoo.cpp.o.d"
  "/root/repo/src/fit/nelder_mead.cpp" "src/fit/CMakeFiles/palu_fit.dir/nelder_mead.cpp.o" "gcc" "src/fit/CMakeFiles/palu_fit.dir/nelder_mead.cpp.o.d"
  "/root/repo/src/fit/powerlaw_mle.cpp" "src/fit/CMakeFiles/palu_fit.dir/powerlaw_mle.cpp.o" "gcc" "src/fit/CMakeFiles/palu_fit.dir/powerlaw_mle.cpp.o.d"
  "/root/repo/src/fit/zipf_mandelbrot.cpp" "src/fit/CMakeFiles/palu_fit.dir/zipf_mandelbrot.cpp.o" "gcc" "src/fit/CMakeFiles/palu_fit.dir/zipf_mandelbrot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/palu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/palu_math.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/palu_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/palu_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/palu_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/palu_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
