// The bounded ingest queue between the tail reader and the fit stage.
//
// A single-producer/single-consumer handoff with an explicit
// backpressure policy: kBlock makes the producer wait (lossless), the
// two drop policies shed load and count every shed record so the
// operator sees data loss as a first-class metric rather than a silent
// gap.  close() ends the stream gracefully (consumers drain what is
// queued); abort() is the drain-deadline hammer (pending and future
// pops return immediately).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "palu/common/thread_annotations.hpp"
#include "palu/io/tail.hpp"
#include "palu/serve/options.hpp"

namespace palu::serve {

class BoundedRecordQueue {
 public:
  enum class PushResult {
    kOk,            ///< record admitted
    kDroppedOldest, ///< admitted; the oldest queued record was evicted
    kDroppedNewest, ///< record discarded
    kClosed,        ///< queue closed or aborted; record discarded
  };

  BoundedRecordQueue(std::size_t capacity, BackpressurePolicy policy);

  /// Producer side.  Under kBlock this waits while the queue is full
  /// (until a pop, close, or abort).
  PushResult push(io::TailRecord record);

  /// Consumer side: blocks until a record, close-with-empty-queue, or
  /// abort.  Returns false when the stream has ended.
  bool pop(io::TailRecord& out);

  /// No more pushes; pops drain the remaining records then return false.
  void close();

  /// Discards queued records and wakes everyone; both ends see the
  /// stream as ended immediately.
  void abort();

  std::size_t depth() const;
  bool closed() const;
  /// Records shed by the drop policies since construction.
  std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  const BackpressurePolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<io::TailRecord> items_ PALU_GUARDED_BY(mutex_);
  bool closed_ PALU_GUARDED_BY(mutex_) = false;
  bool aborted_ PALU_GUARDED_BY(mutex_) = false;
  std::uint64_t dropped_ PALU_GUARDED_BY(mutex_) = 0;
};

}  // namespace palu::serve
