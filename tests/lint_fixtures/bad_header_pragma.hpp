// Fixture: a header without #pragma once must trip the hygiene rule.
// palu-lint-expect: header-pragma-once

inline int forty_two() { return 42; }
