// Equations (1)–(4) — Section IV predictions vs Monte-Carlo simulation.
//
// Regenerates the paper's analytical checklist: visible-node composition,
// unattached-link share, degree-1 share, and the degree-d law, measured
// over many independent observed networks and compared against (a) the
// paper's approximate closed forms and (b) this library's exact
// binomial-thinning forms.  Prints relative errors for both so the
// approximation gap is visible; then times the closed-form evaluators.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "palu/palu.hpp"

namespace {

using namespace palu;

struct SimMeasurement {
  double core_share = 0.0;
  double leaf_share = 0.0;
  double star_share = 0.0;
  double link_share = 0.0;
  std::vector<double> degree_share;  // index d, up to 16
  Count visible = 0;
};

SimMeasurement simulate(const core::PaluParams& params, NodeId n,
                        int replicates, std::uint64_t seed,
                        Degree core_dmax) {
  SimMeasurement m;
  m.degree_share.assign(17, 0.0);
  double core = 0, leaf = 0, star = 0, links = 0, visible = 0;
  for (int rep = 0; rep < replicates; ++rep) {
    Rng rng(seed + static_cast<std::uint64_t>(rep) * 1000003ull);
    core::GeneratorOptions opts;
    opts.core_dmax = core_dmax;
    const auto net = core::generate_underlying(params, n, rng, opts);
    const auto observed = core::generate_observed(net, params, rng);
    const auto deg = observed.degrees();
    for (NodeId v = 0; v < observed.num_nodes(); ++v) {
      if (deg[v] == 0) continue;
      visible += 1.0;
      if (v < net.core_end) {
        core += 1.0;
      } else if (v < net.leaf_end) {
        leaf += 1.0;
      } else {
        star += 1.0;
      }
      if (deg[v] <= 16) m.degree_share[deg[v]] += 1.0;
    }
    links += static_cast<double>(
        graph::classify_topology(observed).unattached_links);
  }
  m.core_share = core / visible;
  m.leaf_share = leaf / visible;
  m.star_share = star / visible;
  m.link_share = links / visible;
  for (double& s : m.degree_share) s /= visible;
  m.visible = static_cast<Count>(visible);
  return m;
}

void print_comparison() {
  const auto params =
      core::PaluParams::solve_hubs(4.0, 0.4, 0.2, 2.2, 0.6);
  const Degree core_dmax = 1u << 12;
  std::printf("=== Section IV predictions vs Monte-Carlo (8 x 150k nodes) "
              "===\n");
  std::printf("params: lambda=%.1f C=%.3f L=%.3f U=%.3f alpha=%.1f p=%.1f\n",
              params.lambda, params.core, params.leaves, params.hubs,
              params.alpha, params.window);
  const SimMeasurement sim = simulate(params, 150000, 8, 31, core_dmax);
  const auto comp = core::observed_composition(params);

  const auto row = [](const char* name, double measured, double paper) {
    std::printf("%-24s %10.5f %10.5f %8.1f%%\n", name, measured, paper,
                100.0 * (paper - measured) / measured);
  };
  std::printf("%-24s %10s %10s %9s\n", "quantity", "simulated",
              "paper-form", "rel.err");
  row("core share", sim.core_share, comp.core_share);
  row("leaf share", sim.leaf_share, comp.leaf_share);
  row("unattached share", sim.star_share, comp.unattached_share);
  row("unattached-link share", sim.link_share, comp.unattached_link_share);

  std::printf("\ndegree-d law: simulated vs paper-approx vs exact-thinned\n");
  std::printf("%4s %12s %12s %12s\n", "d", "simulated", "paper", "exact");
  for (Degree d = 1; d <= 12; ++d) {
    std::printf("%4llu %12.6f %12.6f %12.6f\n",
                static_cast<unsigned long long>(d), sim.degree_share[d],
                core::degree_share(params, d),
                core::degree_share_exact(params, d, core_dmax));
  }
  std::printf("\nReading: the exact binomial-thinning column tracks the "
              "simulation to Monte-Carlo noise;\nthe paper's closed forms "
              "carry their documented O(1) integral-approximation gaps.\n\n");

  // Pooled comparison: measured D(d_i) vs paper pooled theory vs exact.
  stats::DegreeHistogram merged;
  for (int rep = 0; rep < 4; ++rep) {
    Rng rng(900 + rep * 31);
    core::GeneratorOptions opts;
    opts.core_dmax = core_dmax;
    const auto net = core::generate_underlying(params, 150000, rng, opts);
    const auto observed = core::generate_observed(net, params, rng);
    merged.merge(
        stats::DegreeHistogram::from_degrees(observed.degrees()));
  }
  const auto measured = stats::LogBinned::from_histogram(merged);
  const auto paper_pooled = core::pooled_theory(params, 12);
  const auto exact_pooled =
      core::pooled_theory_exact(params, 12, core_dmax);
  std::printf("pooled D(d_i): measured vs paper vs exact-thinned\n");
  std::printf("%6s %12s %12s %12s\n", "d_i", "measured", "paper",
              "exact");
  for (std::uint32_t i = 0; i < 10; ++i) {
    std::printf("%6llu %12.6f %12.6f %12.6f\n",
                static_cast<unsigned long long>(
                    stats::LogBinned::bin_upper(i)),
                i < measured.num_bins() ? measured[i] : 0.0,
                paper_pooled[i], exact_pooled[i]);
  }
  std::printf("\n");
}

void BM_DegreeSharePaper(benchmark::State& state) {
  const auto params = core::PaluParams::solve_hubs(4.0, 0.4, 0.2, 2.2, 0.6);
  Degree d = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::degree_share(params, d));
    d = d < 64 ? d + 1 : 1;
  }
}
BENCHMARK(BM_DegreeSharePaper);

void BM_DegreeShareExact(benchmark::State& state) {
  const auto params = core::PaluParams::solve_hubs(4.0, 0.4, 0.2, 2.2, 0.6);
  Degree d = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::degree_share_exact(params, d, 1u << 12));
    d = d < 64 ? d + 1 : 1;
  }
}
BENCHMARK(BM_DegreeShareExact);

void BM_PooledTheory(benchmark::State& state) {
  const auto params = core::PaluParams::solve_hubs(4.0, 0.4, 0.2, 2.2, 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::pooled_theory(params, static_cast<std::uint32_t>(
                                        state.range(0))));
  }
}
BENCHMARK(BM_PooledTheory)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
