// Deep accuracy tests for the math substrate: identity-based checks that
// need no memorized constants, plus a standard optimizer battery.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/fit/brent.hpp"
#include "palu/fit/levmar.hpp"
#include "palu/fit/nelder_mead.hpp"
#include "palu/math/binmass.hpp"
#include "palu/math/gamma.hpp"
#include "palu/math/incomplete_gamma.hpp"
#include "palu/math/vexp.hpp"
#include "palu/math/zeta.hpp"
#include "palu/rng/xoshiro.hpp"

namespace palu {
namespace {

// ------------------------------------------------------ gamma identities

TEST(GammaIdentities, RecurrenceAcrossRandomArguments) {
  // ln Γ(x+1) = ln Γ(x) + ln x.
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double x = 0.05 + 30.0 * rng.uniform();
    EXPECT_NEAR(math::log_gamma(x + 1.0),
                math::log_gamma(x) + std::log(x),
                1e-11 * (1.0 + std::abs(math::log_gamma(x))))
        << "x=" << x;
  }
}

TEST(GammaIdentities, LegendreDuplication) {
  // Γ(2x) = Γ(x)·Γ(x+1/2)·2^{2x−1}/√π, in log form.
  for (double x : {0.3, 0.75, 1.0, 2.5, 7.0, 19.5}) {
    const double lhs = math::log_gamma(2.0 * x);
    const double rhs = math::log_gamma(x) + math::log_gamma(x + 0.5) +
                       (2.0 * x - 1.0) * std::log(2.0) -
                       0.5 * std::log(std::numbers::pi);
    EXPECT_NEAR(lhs, rhs, 1e-10 * (1.0 + std::abs(lhs))) << "x=" << x;
  }
}

TEST(GammaIdentities, ReflectionAcrossSmallArguments) {
  // Γ(x)Γ(1−x) = π / sin(πx) for x ∈ (0, 1).
  for (double x : {0.05, 0.2, 0.35, 0.45}) {
    const double lhs = math::log_gamma(x) + math::log_gamma(1.0 - x);
    const double rhs =
        std::log(std::numbers::pi / std::sin(std::numbers::pi * x));
    EXPECT_NEAR(lhs, rhs, 1e-11) << "x=" << x;
  }
}

TEST(IncompleteGammaIdentities, RecurrenceInA) {
  // P(a+1, x) = P(a, x) − x^a e^{−x}/Γ(a+1).
  for (double a : {0.5, 1.0, 3.0, 8.0}) {
    for (double x : {0.2, 1.0, 4.0, 20.0}) {
      const double correction =
          std::exp(a * std::log(x) - x - math::log_gamma(a + 1.0));
      EXPECT_NEAR(math::regularized_gamma_p(a + 1.0, x),
                  math::regularized_gamma_p(a, x) - correction, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(IncompleteGammaIdentities, ChiSquareAdditivityViaConvolution) {
  // χ²₂ survival is exactly e^{−x/2}; χ²₄(x) relates by the Erlang form
  // Q(2, x/2) = e^{−x/2}(1 + x/2).
  for (double x : {0.5, 2.0, 7.0, 18.0}) {
    EXPECT_NEAR(math::chi_squared_survival(x, 2.0), std::exp(-0.5 * x),
                1e-12);
    EXPECT_NEAR(math::chi_squared_survival(x, 4.0),
                std::exp(-0.5 * x) * (1.0 + 0.5 * x), 1e-12);
  }
}

// ------------------------------------------------------ zeta identities

TEST(ZetaIdentities, EulerProductSpotCheck) {
  // ζ(s)·Π_{p ≤ 97} (1 − p^{−s}) ≈ 1 for s where the tail primes are
  // negligible (large s).
  const double s = 8.0;
  double prod = math::riemann_zeta(s);
  for (const int p :
       {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59,
        61, 67, 71, 73, 79, 83, 89, 97}) {
    prod *= 1.0 - std::pow(static_cast<double>(p), -s);
  }
  EXPECT_NEAR(prod, 1.0, 1e-10);
}

TEST(ZetaIdentities, DirichletEtaRelation) {
  // η(s) = Σ (−1)^{n−1} n^{−s} = (1 − 2^{1−s})·ζ(s).
  for (double s : {1.5, 2.0, 3.0, 5.0}) {
    double eta = 0.0;
    for (int n = 1; n < 500000; ++n) {
      eta += (n % 2 == 1 ? 1.0 : -1.0) * std::pow(n, -s);
    }
    EXPECT_NEAR(eta, (1.0 - std::pow(2.0, 1.0 - s)) *
                         math::riemann_zeta(s),
                1e-6)
        << "s=" << s;
  }
}

TEST(ZetaIdentities, HurwitzRationalSplitting) {
  // ζ(s, 1/2) + ζ(s, 1) = 2^s ζ(s)  (split over even/odd integers).
  for (double s : {1.4, 2.0, 3.3}) {
    EXPECT_NEAR(math::hurwitz_zeta(s, 0.5) + math::hurwitz_zeta(s, 1.0),
                std::pow(2.0, s) * math::riemann_zeta(s),
                1e-10 * std::pow(2.0, s) * math::riemann_zeta(s))
        << "s=" << s;
  }
}

// --------------------------------------------------- optimizer battery

TEST(OptimizerBattery, BrentRootsOfTranscendentals) {
  // x = cos(x): Dottie number ≈ 0.7390851332151607.
  const double dottie = fit::brent_root(
      [](double x) { return x - std::cos(x); }, 0.0, 1.0);
  EXPECT_NEAR(dottie, 0.7390851332151607, 1e-10);
  // Lambert W(1): x·e^x = 1 at x ≈ 0.5671432904097838.
  const double omega = fit::brent_root(
      [](double x) { return x * std::exp(x) - 1.0; }, 0.0, 1.0);
  EXPECT_NEAR(omega, 0.5671432904097838, 1e-10);
}

TEST(OptimizerBattery, NelderMeadBooth) {
  const auto booth = [](const std::vector<double>& v) {
    const double a = v[0] + 2.0 * v[1] - 7.0;
    const double b = 2.0 * v[0] + v[1] - 5.0;
    return a * a + b * b;
  };
  const auto res = fit::nelder_mead(booth, {0.0, 0.0});
  EXPECT_NEAR(res.x[0], 1.0, 1e-5);
  EXPECT_NEAR(res.x[1], 3.0, 1e-5);
}

TEST(OptimizerBattery, NelderMeadBeale) {
  const auto beale = [](const std::vector<double>& v) {
    const double x = v[0], y = v[1];
    const double a = 1.5 - x + x * y;
    const double b = 2.25 - x + x * y * y;
    const double c = 2.625 - x + x * y * y * y;
    return a * a + b * b + c * c;
  };
  const auto res = fit::nelder_mead(beale, {1.0, 1.0});
  EXPECT_NEAR(res.x[0], 3.0, 1e-3);
  EXPECT_NEAR(res.x[1], 0.5, 1e-3);
}

TEST(OptimizerBattery, NelderMeadHimmelblauReachesAZero) {
  const auto himmelblau = [](const std::vector<double>& v) {
    const double x = v[0], y = v[1];
    const double a = x * x + y - 11.0;
    const double b = x + y * y - 7.0;
    return a * a + b * b;
  };
  // Four global minima, all with value 0; any is acceptable.
  const auto res = fit::nelder_mead(himmelblau, {0.0, 0.0});
  EXPECT_LT(res.value, 1e-8);
}

TEST(OptimizerBattery, LevMarFitsSinusoid) {
  // y = A·sin(ω t + φ) with A=1.5, ω=2, φ=0.5.
  std::vector<double> t, y;
  for (int i = 0; i < 60; ++i) {
    t.push_back(0.1 * i);
    y.push_back(1.5 * std::sin(2.0 * 0.1 * i + 0.5));
  }
  const auto residuals = [&](const std::vector<double>& p) {
    std::vector<double> r(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      r[i] = p[0] * std::sin(p[1] * t[i] + p[2]) - y[i];
    }
    return r;
  };
  const auto res = fit::levenberg_marquardt(residuals, {1.0, 1.8, 0.0});
  EXPECT_NEAR(res.x[0], 1.5, 1e-5);
  EXPECT_NEAR(res.x[1], 2.0, 1e-5);
  EXPECT_NEAR(res.x[2], 0.5, 1e-5);
}

TEST(OptimizerBattery, LevMarPowellSingular) {
  // Powell's singular function: minimum 0 at the origin with a singular
  // Hessian — a classic stress test for damping.
  const auto residuals = [](const std::vector<double>& p) {
    return std::vector<double>{
        p[0] + 10.0 * p[1], std::sqrt(5.0) * (p[2] - p[3]),
        (p[1] - 2.0 * p[2]) * (p[1] - 2.0 * p[2]),
        std::sqrt(10.0) * (p[0] - p[3]) * (p[0] - p[3])};
  };
  const auto res =
      fit::levenberg_marquardt(residuals, {3.0, -1.0, 0.0, 1.0});
  EXPECT_LT(res.chi_squared, 1e-8);
}

TEST(OptimizerBattery, BrentMinimizeZetaLikelihoodShape) {
  // The 1-D negative log-likelihood used by the power-law MLE is convex
  // in α; Brent must land on the stationary point where the derivative
  // flips sign.
  const double sum_log_d = 0.9;  // per-observation Σ ln d
  const auto nll = [&](double alpha) {
    return std::log(math::riemann_zeta(alpha)) + alpha * sum_log_d;
  };
  const double alpha_star = fit::brent_minimize(nll, 1.05, 20.0);
  const double h = 1e-5;
  EXPECT_LT(nll(alpha_star), nll(alpha_star + 10.0 * h));
  EXPECT_LT(nll(alpha_star), nll(alpha_star - 10.0 * h));
}

// -------------------------------------------------- vexp kernel budget

TEST(VexpKernels, ProbesStayWithinTheUlpBudget) {
  // The accuracy contract the expectation path relies on: the dense
  // libm-referenced probes must come in under the budget that gates the
  // kernels at runtime (today they measure ~2–3 ulp against budget 8;
  // regressions in the reduction constants or polynomials show up here
  // long before they would move a histogram).
  EXPECT_LE(math::vexp_probe_max_ulp(), math::kVexpUlpBudget);
  EXPECT_LE(math::vlog1p_probe_max_ulp(), math::kVexpUlpBudget);
  EXPECT_TRUE(math::vexp_kernel_active());
}

TEST(VexpKernels, MatchesLibmEdgeCases) {
  const std::vector<double> xs = {0.0,   -0.0, 1.0,   -1.0,  700.0,
                                  -700.0, 701.0, -745.0, 1e-300, 0.5};
  std::vector<double> out(xs.size());
  math::vexp(xs, out);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double ref = std::exp(xs[i]);
    EXPECT_NEAR(out[i], ref, 4e-15 * std::abs(ref)) << "x=" << xs[i];
  }
  const std::vector<double> ys = {0.0,  -0.5, -1.0, 0.25,
                                  1e-18, -0.999999, 1e6, 3.0};
  std::vector<double> lout(ys.size());
  math::vlog1p(ys, lout);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double ref = std::log1p(ys[i]);
    if (std::isinf(ref)) {
      EXPECT_EQ(lout[i], ref) << "y=" << ys[i];
    } else {
      EXPECT_NEAR(lout[i], ref, 4e-15 * (1.0 + std::abs(ref)))
          << "y=" << ys[i];
    }
  }
}

TEST(VexpKernels, AliasedSpansAreSupported) {
  std::vector<double> buf = {-0.25, 0.0, 0.5, 3.0};
  const std::vector<double> copy = buf;
  math::vlog1p(buf, buf);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_DOUBLE_EQ(buf[i], std::log1p(copy[i]));
  }
}

// ------------------------------------------- binmass ladder cross-checks

TEST(BinMass, BinomialExactWalkMatchesSaddlepointLadder) {
  // Same distribution folded twice: once with thresholds that force the
  // exact pmf walk, once with the span limit at 0 so every boundary goes
  // through the Edgeworth/Lugannani–Rice ladder.  The ladder owes the
  // exact tier every bin to ~1e-5 absolute (documented per-entity budget
  // 1e-4, DESIGN.md §5i).
  math::BinMassOptions exact;
  exact.exact_span_limit = 1e18;
  math::BinMassOptions approx;
  approx.exact_span_limit = 0.0;
  // Only σ ≳ 6.4 cases: below that the ±40σ span fits the default
  // exact_span_limit, so the ladder never serves them in production and
  // owes them nothing.
  for (const double p : {2e-3, 5e-2, 0.5, 0.97}) {
    for (const std::uint64_t n :
         {std::uint64_t{50000}, std::uint64_t{1000000}}) {
      std::vector<double> be(64, 0.0), ba(64, 0.0);
      const double ve = math::binomial_log2_bins(n, p, be, exact);
      const double va = math::binomial_log2_bins(n, p, ba, approx);
      EXPECT_NEAR(ve, va, 1e-12) << "n=" << n << " p=" << p;
      for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_NEAR(be[i], ba[i], 1e-4) << "n=" << n << " p=" << p
                                        << " bin=" << i;
      }
    }
  }
}

TEST(BinMass, ModeSeededWalkCoversNarrowHighMeanMarginals) {
  // Regression for the walk-seed underflow: n=2000, p=0.99 has μ=1980,
  // σ≈4.4, span 360 < 512 → exact tier, and lo≈1798 > 0.  Seeding the
  // ratio recurrence at the lo edge evaluates a pmf of ~e^{-800},
  // underflows to an exact 0, and the recurrence never recovers — every
  // bin got zero mass while the function still reported visibility 1.
  std::vector<double> bins(64, 0.0);
  const double visible = math::binomial_log2_bins(2000, 0.99, bins);
  EXPECT_NEAR(visible, 1.0, 1e-15);
  double total = 0.0;
  for (const double b : bins) total += b;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(bins[11], 1.0, 1e-12);  // (1024, 2048] holds μ=1980
}

TEST(BinMass, PoissonBinomialDpMatchesSaddlepointLadder) {
  // Heterogeneous visibilities, DP vs moment-ladder fold of the same
  // vector (the DP is exact; the ladder carries the approximation).
  Rng rng(7);
  std::vector<double> probs(300);
  for (double& pi : probs) pi = 0.9 * rng.uniform() + 0.05;
  math::BinMassOptions dp;
  dp.pb_exact_max_terms = 400;
  math::BinMassOptions approx;
  approx.pb_exact_max_terms = 0;
  math::BinMassScratch scratch;
  std::vector<double> bd(64, 0.0), ba(64, 0.0);
  const double vd =
      math::poisson_binomial_log2_bins(probs, bd, scratch, dp);
  const double va =
      math::poisson_binomial_log2_bins(probs, ba, scratch, approx);
  EXPECT_NEAR(vd, va, 1e-12);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(bd[i], ba[i], 1e-4) << "bin=" << i;
  }
  // CDF ladder vs the DP-summed CDF at the bin edges actually used.
  double cum = 0.0;
  std::vector<double> pmf(probs.size() + 1, 0.0);
  pmf[0] = 1.0;
  for (const double pi : probs) {
    for (std::size_t j = pmf.size() - 1; j-- > 0;) {
      pmf[j + 1] += pmf[j] * pi;
      pmf[j] *= 1.0 - pi;
    }
  }
  for (const double m : {64.0, 128.0, 160.0, 192.0, 256.0}) {
    cum = 0.0;
    for (std::size_t d = 0; d <= static_cast<std::size_t>(m); ++d) {
      cum += pmf[d];
    }
    EXPECT_NEAR(math::poisson_binomial_cdf_approx(probs, m), cum, 2e-4)
        << "m=" << m;
  }
}

TEST(BinMass, ExactTiersAndEdgeCases) {
  // Bin convention matches stats::LogBinned: bin 0 = {1}, bin i =
  // (2^{i−1}, 2^i].
  EXPECT_EQ(math::log2_bin_index(1, 64), 0u);
  EXPECT_EQ(math::log2_bin_index(2, 64), 1u);
  EXPECT_EQ(math::log2_bin_index(3, 64), 2u);
  EXPECT_EQ(math::log2_bin_index(4, 64), 2u);
  EXPECT_EQ(math::log2_bin_index(5, 64), 3u);
  EXPECT_EQ(math::log2_bin_index(1u << 20, 8), 7u);  // saturating top bin

  // Small binomial folded exactly: mass and visibility are closed-form.
  std::vector<double> bins(64, 0.0);
  const double visible = math::binomial_log2_bins(4, 0.5, bins);
  EXPECT_NEAR(visible, 1.0 - 0.0625, 1e-15);
  EXPECT_NEAR(bins[0], 0.25, 1e-15);            // P[X=1]
  EXPECT_NEAR(bins[1], 0.375, 1e-15);           // P[X=2]
  EXPECT_NEAR(bins[2], 0.25 + 0.0625, 1e-15);   // P[X∈{3,4}]

  // Degenerate cases.
  std::fill(bins.begin(), bins.end(), 0.0);
  EXPECT_EQ(math::binomial_log2_bins(0, 0.3, bins), 0.0);
  EXPECT_EQ(math::binomial_log2_bins(10, 0.0, bins), 0.0);
  EXPECT_EQ(math::binomial_log2_bins(8, 1.0, bins), 1.0);
  EXPECT_DOUBLE_EQ(bins[3], 1.0);  // point mass at 8
  math::BinMassScratch scratch;
  EXPECT_EQ(math::poisson_binomial_log2_bins({}, bins, scratch), 0.0);
}

}  // namespace
}  // namespace palu
