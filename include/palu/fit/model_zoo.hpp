// Discrete heavy-tail model zoo and model selection.
//
// The paper's conclusion asks whether "there is a better fitting model
// than the Zipf–Mandelbrot distribution" (Section VII).  This module makes
// that question answerable: a family of discrete candidate models over
// d = 1..dmax — pure zeta, modified Zipf–Mandelbrot, power law with
// exponential cutoff, discrete lognormal, geometric — each fit by maximum
// likelihood, compared by AIC and by Vuong's likelihood-ratio test (the
// comparison CSN recommend for empirical power laws).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "palu/common/types.hpp"
#include "palu/parallel/thread_pool.hpp"
#include "palu/stats/distribution.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::fit {

/// A fitted discrete distribution on {1, ..., dmax}.
class DiscreteModel {
 public:
  virtual ~DiscreteModel() = default;

  virtual std::string_view family() const = 0;

  /// Fitted parameter values, for reporting.
  virtual std::vector<std::pair<std::string, double>> parameters()
      const = 0;

  /// Number of free parameters (for AIC).
  virtual std::size_t num_parameters() const = 0;

  /// log p(d); requires 1 <= d <= dmax of the fit.
  virtual double log_pmf(Degree d) const = 0;

  double pmf(Degree d) const;

  /// Total log-likelihood over a histogram.
  double log_likelihood(const stats::DegreeHistogram& h) const;

  /// Akaike information criterion: 2k − 2·logL.
  double aic(const stats::DegreeHistogram& h) const;

  /// Bayesian information criterion: k·ln n − 2·logL — the sample-size-
  /// aware penalty (AIC barely penalizes extra parameters at trunk-window
  /// sample sizes).
  double bic(const stats::DegreeHistogram& h) const;
};

/// Which families fit_all_models should include.
struct ModelZooOptions {
  bool zeta = true;            // p ∝ d^{-α}
  bool zipf_mandelbrot = true; // p ∝ (d+δ)^{-α}
  bool powerlaw_cutoff = true; // p ∝ d^{-α}·e^{-β d}
  bool lognormal = true;       // p ∝ exp(−(ln d − m)²/2s²)/d
  bool geometric = true;       // p ∝ q^{d}
  /// The paper's own simplified law as a 4-parameter mixture density:
  /// w₁·1{d=1} (leaves + one-leaf hubs) + w₂·zeta(α) (core) +
  /// w₃·Po(μ | d ≥ 2) (star hubs).  Lets the zoo ask whether PALU itself
  /// beats the empirical Zipf–Mandelbrot on streaming data.
  bool palu_mixture = true;
};

/// MLE fit of one family to a histogram over d = 1..dmax (dmax defaults to
/// the histogram max).  Throws palu::DataError on empty data and
/// palu::ConvergenceError when the optimizer fails.
std::unique_ptr<DiscreteModel> fit_zeta_model(
    const stats::DegreeHistogram& h, Degree dmax = 0);
std::unique_ptr<DiscreteModel> fit_zipf_mandelbrot_model(
    const stats::DegreeHistogram& h, Degree dmax = 0);
std::unique_ptr<DiscreteModel> fit_powerlaw_cutoff_model(
    const stats::DegreeHistogram& h, Degree dmax = 0);
std::unique_ptr<DiscreteModel> fit_lognormal_model(
    const stats::DegreeHistogram& h, Degree dmax = 0);
std::unique_ptr<DiscreteModel> fit_geometric_model(
    const stats::DegreeHistogram& h, Degree dmax = 0);
std::unique_ptr<DiscreteModel> fit_palu_mixture_model(
    const stats::DegreeHistogram& h, Degree dmax = 0);

/// One ranked entry of a model-zoo comparison.
struct ModelComparison {
  std::string family;
  std::vector<std::pair<std::string, double>> parameters;
  double log_likelihood = 0.0;
  double aic = 0.0;
  double delta_aic = 0.0;  // aic − best aic
  double bic = 0.0;
  double delta_bic = 0.0;  // bic − best bic
};

/// Fits every enabled family and ranks by AIC (best first).
std::vector<ModelComparison> fit_all_models(
    const stats::DegreeHistogram& h, Degree dmax = 0,
    const ModelZooOptions& opts = {});

/// Same ranking with the per-family fits running concurrently on `pool`
/// (families are independent optimizations).
std::vector<ModelComparison> fit_all_models_parallel(
    const stats::DegreeHistogram& h, ThreadPool& pool, Degree dmax = 0,
    const ModelZooOptions& opts = {});

/// Vuong's non-nested likelihood-ratio test between two fitted models.
/// Positive `statistic` favors `a`; |statistic| > ~2 is conventionally
/// significant.  `p_two_sided` is the normal-approximation p-value.
struct VuongResult {
  double statistic = 0.0;
  double p_two_sided = 1.0;
};
VuongResult vuong_test(const DiscreteModel& a, const DiscreteModel& b,
                       const stats::DegreeHistogram& h);

}  // namespace palu::fit
