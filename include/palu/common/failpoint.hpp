// Deterministic failpoints for fault-injection testing.
//
// Iterative numerical routines and sweep workers are instrumented with
// PALU_FAILPOINT("site.name").  In production nothing is armed and the
// macro costs one relaxed atomic load.  Tests arm a site by name to make
// it throw palu::ConvergenceError on chosen hits, which exercises the
// degraded-mode paths (fit::robust fallback chain, sweep_windows failure
// accounting) without having to construct pathological inputs.
#pragma once

#include <atomic>
#include <exception>
#include <string_view>

namespace palu {
namespace failpoints {

/// Arms `name`: the first `skip` hits pass through, then the next `fires`
/// hits throw (fires < 0 = every subsequent hit).  Re-arming a name resets
/// its counters.  Thread-safe.
void arm(std::string_view name, int fires = -1, int skip = 0);

/// Disarms one site (no-op if not armed).
void disarm(std::string_view name);

/// Disarms every site; call from test teardown.
void disarm_all();

/// Arms sites from a spec string: a comma-separated list of
/// `name[:fires[:skip]]` clauses (fires defaults to -1 = unbounded, skip
/// to 0).  This is the out-of-process arming path — `palu_tool` reads it
/// from the PALU_FAILPOINT environment variable so CI can inject faults
/// into a subprocess it cannot call arm() in.  Throws
/// palu::InvalidArgument on a malformed spec.
void arm_from_spec(std::string_view spec);

/// True when at least one site is armed (fast path for the macro).
bool any_armed() noexcept;

/// Hits observed at `name` since it was armed (0 if not armed).
int hit_count(std::string_view name);

/// True iff `e` was thrown by a firing failpoint site — lets failure
/// accounting (sweep metrics) distinguish injected faults from organic
/// ones without a dedicated exception type, which would leak the
/// fault-injection machinery into every catch signature.
bool is_failpoint_error(const std::exception& e) noexcept;

}  // namespace failpoints

namespace detail {
/// Slow path: records a hit at `name` and throws palu::ConvergenceError
/// when the site's fire window is open.
void failpoint_hit(const char* name);
}  // namespace detail

}  // namespace palu

/// Instrument a site.  Compiled in always: the disarmed cost is one atomic
/// load, so release builds keep the same control flow the tests exercise.
#define PALU_FAILPOINT(name)                                       \
  do {                                                             \
    if (::palu::failpoints::any_armed()) {                         \
      ::palu::detail::failpoint_hit(name);                         \
    }                                                              \
  } while (false)
