# Empty dependencies file for core_estimate_test.
# This may be replaced when dependencies are built.
