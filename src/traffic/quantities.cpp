#include "palu/traffic/quantities.hpp"

#include <unordered_map>
#include <unordered_set>

#include "palu/common/error.hpp"

namespace palu::traffic {

std::string_view quantity_name(Quantity q) {
  switch (q) {
    case Quantity::kSourcePackets: return "source_packets";
    case Quantity::kSourceFanOut: return "source_fanout";
    case Quantity::kLinkPackets: return "link_packets";
    case Quantity::kDestinationFanIn: return "destination_fanin";
    case Quantity::kDestinationPackets: return "destination_packets";
    case Quantity::kUndirectedDegree: return "undirected_degree";
  }
  return "unknown";
}

stats::DegreeHistogram quantity_histogram(const SparseCountMatrix& a,
                                          Quantity q) {
  stats::DegreeHistogram h;
  switch (q) {
    case Quantity::kSourcePackets:
      for (const auto& [id, m] : a.source_marginals()) h.add(m.packets);
      break;
    case Quantity::kSourceFanOut:
      for (const auto& [id, m] : a.source_marginals()) h.add(m.fan);
      break;
    case Quantity::kLinkPackets:
      for (const auto& e : a.entries()) h.add(e.packets);
      break;
    case Quantity::kDestinationFanIn:
      for (const auto& [id, m] : a.destination_marginals()) h.add(m.fan);
      break;
    case Quantity::kDestinationPackets:
      for (const auto& [id, m] : a.destination_marginals()) h.add(m.packets);
      break;
    case Quantity::kUndirectedDegree:
      return undirected_degree_histogram(a);
  }
  return h;
}

graph::Graph window_to_graph(const SparseCountMatrix& a,
                             std::vector<NodeId>* id_map) {
  std::unordered_map<NodeId, NodeId> remap;
  graph::Graph g(0);
  if (id_map) id_map->clear();
  const auto id_of = [&](NodeId raw) {
    const auto [it, inserted] = remap.try_emplace(raw, g.num_nodes());
    if (inserted) {
      g.add_nodes(1);
      if (id_map) id_map->push_back(raw);
    }
    return it->second;
  };
  for (const auto& e : a.entries()) {
    if (e.src == e.dst) continue;
    g.add_edge(id_of(e.src), id_of(e.dst));
  }
  return g.simplified();
}

stats::DegreeHistogram undirected_degree_histogram(
    const SparseCountMatrix& a) {
  // Distinct counterparties per node, both directions merged; a node that
  // both sends to and receives from the same peer counts that peer once.
  std::unordered_map<NodeId, std::unordered_set<NodeId>> peers;
  for (const auto& e : a.entries()) {
    if (e.src == e.dst) continue;  // self-traffic adds no network edge
    peers[e.src].insert(e.dst);
    peers[e.dst].insert(e.src);
  }
  stats::DegreeHistogram h;
  for (const auto& [node, set] : peers) h.add(set.size());
  return h;
}

}  // namespace palu::traffic
