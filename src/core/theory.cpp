#include "palu/core/theory.hpp"

#include <cmath>
#include <numbers>

#include "palu/common/error.hpp"
#include "palu/math/gamma.hpp"
#include "palu/math/zeta.hpp"

namespace palu::core {
namespace {

// Shared intermediate values for the Section IV formulas.
struct Pieces {
  double zeta_alpha;   // ζ(α)
  double mu;           // λ·p
  double exp_neg_mu;   // e^{−λp}
  double core_vis;     // C·p^{α−1} / ((α−1)·ζ(α))
  double core_amp;     // C·p^α / ζ(α)
  double leaf_vis;     // L·p
  double star_vis;     // U·(1 + λp − e^{−λp})
  double v;            // total visible mass
};

Pieces make_pieces(const PaluParams& params) {
  params.validate();
  Pieces w{};
  w.zeta_alpha = math::riemann_zeta(params.alpha);
  w.mu = params.lambda * params.window;
  w.exp_neg_mu = std::exp(-w.mu);
  w.core_vis = params.core * std::pow(params.window, params.alpha - 1.0) /
               ((params.alpha - 1.0) * w.zeta_alpha);
  w.core_amp =
      params.core * std::pow(params.window, params.alpha) / w.zeta_alpha;
  w.leaf_vis = params.leaves * params.window;
  w.star_vis = params.hubs * (1.0 + w.mu - w.exp_neg_mu);
  w.v = w.core_vis + w.leaf_vis + w.star_vis;
  return w;
}

}  // namespace

ObservedComposition observed_composition(const PaluParams& params) {
  const Pieces w = make_pieces(params);
  ObservedComposition out;
  out.visible_mass = w.v;
  out.core_share = w.core_vis / w.v;
  out.leaf_share = w.leaf_vis / w.v;
  out.unattached_share = w.star_vis / w.v;
  out.unattached_link_share = params.hubs * w.mu * w.exp_neg_mu / w.v;
  return out;
}

SimplifiedConstants simplified_constants(const PaluParams& params) {
  const Pieces w = make_pieces(params);
  SimplifiedConstants out;
  out.c = w.core_amp / w.v;
  out.l = w.leaf_vis / w.v;
  out.u = params.hubs * w.exp_neg_mu / w.v;
  out.mu = w.mu;
  out.lambda_cap = std::numbers::e * w.mu;
  return out;
}

double degree_share(const PaluParams& params, Degree d) {
  PALU_CHECK(d >= 1, "degree_share: requires d >= 1");
  const Pieces w = make_pieces(params);
  if (d == 1) {
    // Core degree-1 + leaves + star leaves + hubs with exactly one leaf.
    return (w.core_amp + w.leaf_vis +
            params.hubs * w.mu * (1.0 + w.exp_neg_mu)) /
           w.v;
  }
  const double core_term =
      w.core_amp * std::pow(static_cast<double>(d), -params.alpha);
  // Hubs with exactly d retained leaves: U·e^{−μ}·μ^d/d!.
  const double star_term =
      w.mu > 0.0 ? params.hubs * math::poisson_pmf(d, w.mu) : 0.0;
  return (core_term + star_term) / w.v;
}

double degree_share_paper_approx(const PaluParams& params, Degree d) {
  PALU_CHECK(d >= 2, "degree_share_paper_approx: requires d >= 2");
  const SimplifiedConstants k = simplified_constants(params);
  const double dd = static_cast<double>(d);
  return k.c * std::pow(dd, -params.alpha) +
         k.u * std::pow(k.lambda_cap / dd, dd);
}

namespace {

// E_D[ P(Bin(D, p) = d) ] with D ~ D^{−α}/Z on [1, dmax]: the exact
// binomial-thinned core degree mass.  O(width of the Bin(D, p) = d ridge).
double core_thinned_degree_mass(double alpha, double p, Degree d,
                                Degree dmax) {
  if (p >= 1.0) {
    if (d < 1 || d > dmax) return 0.0;
    return std::pow(static_cast<double>(d), -alpha) /
           math::truncated_zeta(alpha, dmax);
  }
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  const double z = math::truncated_zeta(alpha, dmax);
  double sum = 0.0;
  const Degree d_start = std::max<Degree>(d, 1);
  const double ridge = static_cast<double>(d) / p;
  for (Degree big_d = d_start; big_d <= dmax; ++big_d) {
    const double bd = static_cast<double>(big_d);
    const double log_term =
        -alpha * std::log(bd) +
        math::log_binomial_coefficient(big_d, d) +
        static_cast<double>(d) * log_p +
        static_cast<double>(big_d - d) * log_q;
    const double term = std::exp(log_term);
    sum += term;
    if (bd > ridge && term < sum * 1e-16) break;
  }
  return sum / z;
}

Degree effective_core_dmax(Degree core_dmax) {
  return core_dmax > 0 ? core_dmax : (Degree{1} << 30);
}

}  // namespace

double visible_mass_exact(const PaluParams& params, Degree core_dmax) {
  const Pieces w = make_pieces(params);
  const Degree dmax = effective_core_dmax(core_dmax);
  // P[Bin(D, p) = 0] = E[q^D].
  const double invisible = core_thinned_degree_mass(
      params.alpha, params.window, 0, dmax);
  return params.core * (1.0 - invisible) + w.leaf_vis + w.star_vis;
}

ObservedComposition observed_composition_exact(const PaluParams& params,
                                               Degree core_dmax) {
  const Pieces w = make_pieces(params);
  const Degree dmax = effective_core_dmax(core_dmax);
  const double invisible = core_thinned_degree_mass(
      params.alpha, params.window, 0, dmax);
  ObservedComposition out;
  const double core_vis = params.core * (1.0 - invisible);
  out.visible_mass = core_vis + w.leaf_vis + w.star_vis;
  out.core_share = core_vis / out.visible_mass;
  out.leaf_share = w.leaf_vis / out.visible_mass;
  out.unattached_share = w.star_vis / out.visible_mass;
  out.unattached_link_share =
      params.hubs * w.mu * w.exp_neg_mu / out.visible_mass;
  return out;
}

double degree_share_exact(const PaluParams& params, Degree d,
                          Degree core_dmax) {
  PALU_CHECK(d >= 1, "degree_share_exact: requires d >= 1");
  const Pieces w = make_pieces(params);
  const Degree dmax = effective_core_dmax(core_dmax);
  const double v = visible_mass_exact(params, core_dmax);
  double mass = params.core * core_thinned_degree_mass(
                                  params.alpha, params.window, d, dmax);
  if (d == 1) {
    mass += w.leaf_vis +
            params.hubs * w.mu * (1.0 + w.exp_neg_mu);
  } else if (w.mu > 0.0) {
    mass += params.hubs * math::poisson_pmf(d, w.mu);
  }
  return mass / v;
}

stats::LogBinned pooled_theory_exact(const PaluParams& params,
                                     std::uint32_t nbins,
                                     Degree core_dmax) {
  PALU_CHECK(nbins >= 1 && nbins <= 14,
             "pooled_theory_exact: nbins must be in [1, 14]");
  const Pieces w = make_pieces(params);
  const Degree dmax = effective_core_dmax(core_dmax);
  const double v = visible_mass_exact(params, core_dmax);
  std::vector<double> mass(nbins, 0.0);
  for (std::uint32_t i = 0; i < nbins; ++i) {
    const Degree lo = i == 0 ? 1 : (Degree{1} << (i - 1)) + 1;
    const Degree hi = Degree{1} << i;
    double bin = 0.0;
    for (Degree d = lo; d <= hi; ++d) {
      double m = params.core * core_thinned_degree_mass(
                                   params.alpha, params.window, d, dmax);
      if (d == 1) {
        m += w.leaf_vis + params.hubs * w.mu * (1.0 + w.exp_neg_mu);
      } else if (w.mu > 0.0) {
        m += params.hubs * math::poisson_pmf(d, w.mu);
      }
      bin += m;
    }
    mass[i] = bin / v;
  }
  return stats::LogBinned(std::move(mass));
}

stats::LogBinned pooled_theory(const PaluParams& params,
                               std::uint32_t nbins) {
  PALU_CHECK(nbins >= 1 && nbins < 63, "pooled_theory: bad bin count");
  const Pieces w = make_pieces(params);
  std::vector<double> mass(nbins, 0.0);
  // Bin 0 is exactly {d = 1}.
  mass[0] = (w.core_amp + w.leaf_vis +
             params.hubs * w.mu * (1.0 + w.exp_neg_mu)) /
            w.v;
  for (std::uint32_t i = 1; i < nbins; ++i) {
    const Degree lo = (Degree{1} << (i - 1)) + 1;
    const Degree hi = Degree{1} << i;
    // Core: exact partial zeta sums Σ_{d=lo}^{hi} d^{−α}.
    const double core_sum = w.core_amp *
        (math::truncated_zeta(params.alpha, hi) -
         math::truncated_zeta(params.alpha, lo - 1));
    // Stars: Poisson partial sum, cut off once terms underflow.
    double star_sum = 0.0;
    if (w.mu > 0.0) {
      for (Degree d = lo; d <= hi; ++d) {
        const double term = math::poisson_pmf(d, w.mu);
        star_sum += term;
        if (static_cast<double>(d) > w.mu && term < 1e-18) break;
      }
      star_sum *= params.hubs;
    }
    mass[i] = (core_sum + star_sum) / w.v;
  }
  return stats::LogBinned(std::move(mass));
}

}  // namespace palu::core
