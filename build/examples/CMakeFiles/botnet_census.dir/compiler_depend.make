# Empty compiler generated dependencies file for botnet_census.
# This may be replaced when dependencies are built.
