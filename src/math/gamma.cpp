#include "palu/math/gamma.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <vector>

#include "palu/common/error.hpp"

namespace palu::math {
namespace {

// Lanczos approximation (g = 7, 9 coefficients); relative error ~1e-13 on
// the positive real axis.
constexpr std::array<double, 9> kLanczos = {
    0.99999999999980993,     676.5203681218851,     -1259.1392167224028,
    771.32342877765313,      -176.61502916214059,   12.507343278686905,
    -0.13857109526572012,    9.9843695780195716e-6, 1.5056327351493116e-7};

const std::vector<double>& log_factorial_table() {
  static const std::vector<double> table = []() {
    std::vector<double> t(1025);
    t[0] = 0.0;
    for (std::size_t n = 1; n < t.size(); ++n) {
      t[n] = t[n - 1] + std::log(static_cast<double>(n));
    }
    return t;
  }();
  return table;
}

}  // namespace

double log_gamma(double x) {
  PALU_CHECK(x > 0.0, "log_gamma: requires x > 0");
  if (x < 0.5) {
    // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
    return std::log(std::numbers::pi / std::sin(std::numbers::pi * x)) -
           log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double a = kLanczos[0];
  for (std::size_t i = 1; i < kLanczos.size(); ++i) {
    a += kLanczos[i] / (z + static_cast<double>(i));
  }
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * std::numbers::pi) + (z + 0.5) * std::log(t) -
         t + std::log(a);
}

double log_factorial(std::uint64_t n) {
  const auto& table = log_factorial_table();
  if (n < table.size()) return table[n];
  return log_gamma(static_cast<double>(n) + 1.0);
}

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) {
  PALU_CHECK(k <= n, "log_binomial_coefficient: requires k <= n");
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double poisson_log_pmf(std::uint64_t k, double lambda) {
  PALU_CHECK(lambda > 0.0, "poisson_log_pmf: requires lambda > 0");
  return static_cast<double>(k) * std::log(lambda) - lambda -
         log_factorial(k);
}

double poisson_pmf(std::uint64_t k, double lambda) {
  PALU_CHECK(lambda >= 0.0, "poisson_pmf: requires lambda >= 0");
  if (lambda == 0.0) return k == 0 ? 1.0 : 0.0;
  return std::exp(poisson_log_pmf(k, lambda));
}

double binomial_log_pmf(std::uint64_t k, std::uint64_t n, double p) {
  PALU_CHECK(p > 0.0 && p < 1.0, "binomial_log_pmf: requires 0 < p < 1");
  PALU_CHECK(k <= n, "binomial_log_pmf: requires k <= n");
  return log_binomial_coefficient(n, k) +
         static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

double binomial_pmf(std::uint64_t k, std::uint64_t n, double p) {
  PALU_CHECK(p >= 0.0 && p <= 1.0, "binomial_pmf: requires 0 <= p <= 1");
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  return std::exp(binomial_log_pmf(k, n, p));
}

}  // namespace palu::math
