// The include-layer DAG pass (tools/layers.txt).
#include <fstream>
#include <functional>
#include <sstream>

#include "analyze/passes.hpp"

namespace fs = std::filesystem;

namespace palu::analyze {

bool load_layers(const std::string& path, LayerConfig* config) {
  std::ifstream in(path);
  if (!in) return false;
  config->path = path;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const std::size_t colon = line.find(':', begin);
    if (colon == std::string::npos) continue;  // validated later
    std::string dir = line.substr(begin, colon - begin);
    const auto dir_end = dir.find_last_not_of(" \t");
    dir = dir.substr(0, dir_end == std::string::npos ? 0 : dir_end + 1);
    std::set<std::string>& deps = config->deps[dir];
    config->order.push_back(dir);
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.insert(dep);
  }
  config->loaded = true;
  return true;
}

namespace {

bool dir_exists(const fs::path& repo_root, const std::string& dir) {
  std::error_code ec;
  return fs::is_directory(repo_root / "include" / "palu" / dir, ec) ||
         fs::is_directory(repo_root / "src" / dir, ec);
}

}  // namespace

void validate_layers(const LayerConfig& config, const fs::path& repo_root,
                     std::vector<Violation>* out) {
  if (!config.loaded) return;
  // Duplicate declarations.
  std::set<std::string> seen;
  for (const std::string& dir : config.order) {
    if (!seen.insert(dir).second) {
      out->push_back({config.path, 0, kRuleIncludeLayering,
                      "layer \"" + dir +
                          "\" is declared more than once in the layer "
                          "registry"});
    }
  }
  for (const auto& [dir, deps] : config.deps) {
    // Stale entries: a declared layer whose directory is gone, mirroring
    // the failpoint/timing registry contract.
    if (!dir_exists(repo_root, dir)) {
      out->push_back({config.path, 0, kRuleIncludeLayering,
                      "layer registry entry \"" + dir +
                          "\" matches no include/palu/ or src/ "
                          "directory; delete the entry or restore the "
                          "directory so the DAG stays auditable"});
    }
    for (const std::string& dep : deps) {
      if (config.deps.count(dep) == 0) {
        out->push_back({config.path, 0, kRuleIncludeLayering,
                        "layer \"" + dir + "\" depends on \"" + dep +
                            "\", which is not itself declared in the "
                            "layer registry"});
      }
    }
  }
  // Every on-disk palu directory must be declared, so a new subsystem
  // cannot silently join the tree outside the DAG.
  for (const char* side : {"include/palu", "src"}) {
    std::error_code ec;
    fs::directory_iterator it(repo_root / side, ec);
    if (ec) continue;
    for (const auto& entry : it) {
      if (!entry.is_directory()) continue;
      const std::string name = entry.path().filename().string();
      if (config.deps.count(name) == 0) {
        out->push_back({config.path, 0, kRuleIncludeLayering,
                        "directory " + std::string(side) + "/" + name +
                            " is not declared in the layer registry; "
                            "add it (with its allowed deps) so the DAG "
                            "stays complete"});
      }
    }
  }
  // Cycle check over the declared graph.  With every observed edge
  // required to be declared, an acyclic declaration proves the observed
  // include graph acyclic too.
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::function<bool(const std::string&)> dfs =
      [&](const std::string& dir) -> bool {
    state[dir] = 1;
    auto it = config.deps.find(dir);
    if (it != config.deps.end()) {
      for (const std::string& dep : it->second) {
        if (config.deps.count(dep) == 0) continue;
        if (state[dep] == 1) return false;
        if (state[dep] == 0 && !dfs(dep)) return false;
      }
    }
    state[dir] = 2;
    return true;
  };
  for (const auto& [dir, deps] : config.deps) {
    if (state[dir] == 0 && !dfs(dir)) {
      out->push_back({config.path, 0, kRuleIncludeLayering,
                      "the declared layer graph contains a cycle "
                      "through \"" + dir +
                          "\"; layers must form a DAG"});
      break;
    }
  }
}

std::string layer_dir_of(const fs::path& path, const LayerConfig& config) {
  const std::string p = path.generic_string();
  for (const auto& [dir, deps] : config.deps) {
    if (p.find("/include/palu/" + dir + "/") != std::string::npos ||
        p.find("/src/" + dir + "/") != std::string::npos ||
        p.rfind("include/palu/" + dir + "/", 0) == 0 ||
        p.rfind("src/" + dir + "/", 0) == 0) {
      return dir;
    }
  }
  return "";
}

void check_includes(const FileScan& scan, const LayerConfig& config,
                    EdgeSet* edges, std::vector<Violation>* out) {
  if (!config.loaded) return;
  const std::vector<Token>& toks = scan.toks.code;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kDirective ||
        toks[i].text != "#include" ||
        toks[i + 1].kind != TokKind::kString) {
      continue;
    }
    const std::string& inc = toks[i + 1].text;
    if (inc.rfind("palu/", 0) != 0) continue;
    const std::size_t slash = inc.find('/', 5);
    // `palu/palu.hpp` and friends have no subdirectory; the umbrella is
    // an external-consumer convenience, not a layer.
    const std::string dep = slash == std::string::npos
                                ? inc.substr(5)
                                : inc.substr(5, slash - 5);
    if (scan.layer_dir.empty()) continue;  // tools/bench/tests: exempt
    if (dep == scan.layer_dir) continue;   // intra-layer includes are free
    (*edges)[{scan.layer_dir, dep}] += 1;
    const auto it = config.deps.find(scan.layer_dir);
    if (it == config.deps.end() || it->second.count(dep) == 0) {
      out->push_back(
          {scan.path.string(), toks[i].line, kRuleIncludeLayering,
           "layer \"" + scan.layer_dir + "\" must not include \"" + inc +
               "\": edge " + scan.layer_dir + " -> " + dep +
               " is not declared in " + config.path +
               " (declare it below the arrow's target or break the "
               "dependency)"});
    }
  }
}

std::string dot_include_graph(const LayerConfig& config,
                              const EdgeSet& edges) {
  std::ostringstream os;
  os << "// Generated by palu_lint --dump-include-graph; layers from\n"
     << "// " << config.path << ".  Render: dot -Tsvg.\n"
     << "digraph palu_layers {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"Helvetica\"];\n";
  std::set<std::string> emitted;
  for (const std::string& dir : config.order) {
    if (emitted.insert(dir).second) {
      os << "  \"" << dir << "\";\n";
    }
  }
  for (const auto& [edge, count] : edges) {
    os << "  \"" << edge.first << "\" -> \"" << edge.second
       << "\" [label=\"" << count << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace palu::analyze
