#include "palu/stats/log_binning.hpp"

#include <bit>
#include <cmath>

#include "palu/common/error.hpp"

namespace palu::stats {

std::uint32_t LogBinned::bin_index(Degree d) {
  PALU_CHECK(d >= 1, "LogBinned::bin_index: requires d >= 1");
  // Smallest i with 2^i >= d, i.e. ceil(log2(d)):
  // bit_width(d−1) is exact for integers (d=1 → 0, d=2 → 1, d=3,4 → 2, …).
  // Degrees past 2^63 would need bin 64, whose upper edge overflows
  // Degree; they saturate into the top representable bin instead so that
  // from_histogram never builds a bin it cannot describe.
  const auto i = static_cast<std::uint32_t>(std::bit_width(d - 1));
  return i < kMaxBins ? i : kMaxBins - 1;
}

Degree LogBinned::bin_upper(std::uint32_t i) {
  PALU_CHECK(i < kMaxBins,
             "LogBinned::bin_upper: bin index overflows 64-bit");
  return Degree{1} << i;
}

Degree LogBinned::bin_lower_exclusive(std::uint32_t i) {
  if (i == 0) return 0;
  return Degree{1} << (i - 1);
}

LogBinned LogBinned::from_histogram(const DegreeHistogram& h) {
  const auto entries = h.sorted();
  Count total = 0;
  std::uint32_t nbins = 0;
  for (const auto& [d, c] : entries) {
    if (d == 0) continue;
    total += c;
    nbins = std::max(nbins, bin_index(d) + 1);
  }
  if (total == 0) {
    throw DataError("LogBinned::from_histogram: no positive-degree mass");
  }
  std::vector<double> mass(nbins, 0.0);
  for (const auto& [d, c] : entries) {
    if (d == 0) continue;
    mass[bin_index(d)] +=
        static_cast<double>(c) / static_cast<double>(total);
  }
  return LogBinned(std::move(mass));
}

double LogBinned::total_mass() const {
  double acc = 0.0;
  for (double m : mass_) acc += m;
  return acc;
}

void BinnedEnsemble::resize(std::size_t nbins) {
  if (nbins > mean_.size()) {
    // Bins absent from all earlier windows held exactly 0 in each of them,
    // so extending mean/m2 with zeros keeps the Welford state consistent.
    mean_.resize(nbins, 0.0);
    m2_.resize(nbins, 0.0);
  }
}

void BinnedEnsemble::add(const LogBinned& window) {
  resize(window.num_bins());
  ++count_;
  const double n = static_cast<double>(count_);
  for (std::size_t i = 0; i < mean_.size(); ++i) {
    const double x = i < window.num_bins() ? window[i] : 0.0;
    const double delta = x - mean_[i];
    mean_[i] += delta / n;
    m2_[i] += delta * (x - mean_[i]);
  }
}

std::vector<double> BinnedEnsemble::mean() const { return mean_; }

std::vector<double> BinnedEnsemble::stddev() const {
  std::vector<double> out(mean_.size(), 0.0);
  if (count_ >= 2) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = std::sqrt(m2_[i] / static_cast<double>(count_ - 1));
    }
  }
  return out;
}

}  // namespace palu::stats
