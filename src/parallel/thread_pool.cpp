#include "palu/parallel/thread_pool.hpp"

#include <algorithm>

#include "palu/common/error.hpp"
#include "palu/parallel/parallel_for.hpp"

namespace palu {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  try {
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this]() { worker_loop(); });
    }
  } catch (...) {
    // Thread creation failed part-way (resource exhaustion).  The
    // destructor will not run for a throwing constructor, so the workers
    // already spun up must be stopped here or their std::thread
    // destructors call std::terminate.
    shutdown();
    throw;
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() noexcept {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PALU_CHECK(!stopping_, "ThreadPool: submit after shutdown");
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Tasks reach workers wrapped in packaged_task, so exceptions are
    // captured into their futures.  The guard is belt-and-braces: an
    // exception escaping a task must degrade to a lost result, never to
    // std::terminate taking the whole pool (and process) down.
    try {
      task();
    } catch (...) {
    }
  }
}

namespace detail {

std::vector<IndexRange> make_chunks(std::size_t begin, std::size_t end,
                                    std::size_t grain, std::size_t workers) {
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  std::size_t target_chunks = std::max<std::size_t>(1, workers * 4);
  std::size_t chunk = std::max(grain, (n + target_chunks - 1) / target_chunks);
  std::vector<IndexRange> out;
  out.reserve(n / chunk + 1);
  std::size_t lo = begin;
  while (lo < end) {
    std::size_t hi = lo + chunk;
    // A remainder shorter than one grain is folded into this chunk instead
    // of becoming its own undersized tail range.
    if (hi >= end || end - hi < grain) hi = end;
    out.push_back(IndexRange{lo, hi});
    lo = hi;
  }
  return out;
}

}  // namespace detail
}  // namespace palu
