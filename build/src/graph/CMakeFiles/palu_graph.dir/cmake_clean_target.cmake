file(REMOVE_RECURSE
  "libpalu_graph.a"
)
