#!/bin/sh
# Formatting gate for changed files only.
#
# Runs clang-format --dry-run over the C++ sources that differ from the
# merge base with the main branch (or, on a shallow/detached checkout, the
# working-tree changes), so formatting drift can't creep into new work
# while untouched legacy files stay out of scope.  Exits 77 ("skip" to
# ctest) when clang-format or git metadata is unavailable — the CI clang
# job is the authoritative run.
#
# Usage: check_format.sh <repo-root>
set -u

root=${1:?usage: check_format.sh <repo-root>}
cd "$root" || exit 2

if ! command -v clang-format >/dev/null 2>&1; then
    echo "check_format: clang-format not found; skipping" >&2
    exit 77
fi
if ! git rev-parse --git-dir >/dev/null 2>&1; then
    echo "check_format: not a git checkout; skipping" >&2
    exit 77
fi

base=$(git merge-base origin/main HEAD 2>/dev/null ||
       git merge-base main HEAD 2>/dev/null || true)
if [ -n "$base" ]; then
    files=$(git diff --name-only --diff-filter=ACMR "$base" -- \
            '*.cpp' '*.cc' '*.hpp' '*.h')
else
    files=$(git diff --name-only --diff-filter=ACMR HEAD -- \
            '*.cpp' '*.cc' '*.hpp' '*.h')
fi

[ -z "$files" ] && { echo "check_format: no changed C++ files"; exit 0; }

status=0
for f in $files; do
    [ -f "$f" ] || continue
    if ! clang-format --dry-run --Werror "$f"; then
        status=1
    fi
done
exit $status
