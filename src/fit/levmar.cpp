#include "palu/fit/levmar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "palu/common/error.hpp"
#include "palu/common/failpoint.hpp"
#include "palu/linalg/matrix.hpp"

namespace palu::fit {
namespace {

double sum_squares(const std::vector<double>& r) {
  double acc = 0.0;
  for (double v : r) acc += v * v;
  return acc;
}

}  // namespace

LevMarResult levenberg_marquardt(
    const std::function<std::vector<double>(const std::vector<double>&)>&
        residuals,
    std::vector<double> x0, const LevMarOptions& opts) {
  PALU_CHECK(!x0.empty(), "levenberg_marquardt: empty start point");
  PALU_FAILPOINT("fit.levmar");
  const std::size_t n = x0.size();

  LevMarResult result;
  result.x = std::move(x0);
  std::vector<double> r = residuals(result.x);
  const std::size_t m = r.size();
  PALU_CHECK(m >= n, "levenberg_marquardt: fewer residuals than parameters");
  result.chi_squared = sum_squares(r);

  double damping = opts.initial_damping;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Forward-difference Jacobian.
    linalg::Matrix jac(m, n);
    bool jacobian_ok = true;
    for (std::size_t j = 0; j < n; ++j) {
      const double h =
          opts.fd_step * std::max(1.0, std::abs(result.x[j]));
      std::vector<double> xp = result.x;
      xp[j] += h;
      std::vector<double> rp;
      try {
        rp = residuals(xp);
      } catch (const InvalidArgument&) {
        // Step off-domain: difference backwards instead.
        xp[j] = result.x[j] - h;
        rp = residuals(xp);
        for (std::size_t i = 0; i < m; ++i) {
          jac(i, j) = (r[i] - rp[i]) / h;
        }
        continue;
      }
      if (rp.size() != m) {
        jacobian_ok = false;
        break;
      }
      for (std::size_t i = 0; i < m; ++i) {
        jac(i, j) = (rp[i] - r[i]) / h;
      }
    }
    PALU_CHECK(jacobian_ok,
               "levenberg_marquardt: residual length changed mid-fit");

    const std::vector<double> grad = jac.transpose_multiply(r);
    double gmax = 0.0;
    for (double g : grad) gmax = std::max(gmax, std::abs(g));
    if (gmax <= opts.gradient_tolerance) {
      result.converged = true;
      break;
    }

    const linalg::Matrix jtj = jac.gram();
    bool accepted = false;
    for (int attempt = 0; attempt < 40 && !accepted; ++attempt) {
      linalg::Matrix damped = jtj;
      for (std::size_t k = 0; k < n; ++k) {
        damped(k, k) += damping * std::max(jtj(k, k), 1e-12);
      }
      std::vector<double> step;
      try {
        step = linalg::Cholesky(damped).solve(grad);
      } catch (const ConvergenceError&) {
        damping *= opts.damping_up;
        continue;
      }
      std::vector<double> x_new = result.x;
      double step_norm = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        x_new[k] -= step[k];
        step_norm += step[k] * step[k];
      }
      step_norm = std::sqrt(step_norm);
      std::vector<double> r_new;
      double chi_new = std::numeric_limits<double>::infinity();
      try {
        r_new = residuals(x_new);
        if (r_new.size() == m) chi_new = sum_squares(r_new);
      } catch (const InvalidArgument&) {
        // off-domain: treat as rejected
      }
      if (chi_new < result.chi_squared) {
        result.x = std::move(x_new);
        r = std::move(r_new);
        const double improvement = result.chi_squared - chi_new;
        result.chi_squared = chi_new;
        damping = std::max(damping / opts.damping_down, 1e-14);
        accepted = true;
        if (step_norm <= opts.step_tolerance ||
            improvement <= opts.step_tolerance * (1.0 + chi_new)) {
          result.converged = true;
        }
      } else {
        damping *= opts.damping_up;
      }
    }
    if (!accepted || result.converged) {
      // No productive step available (or converged): stop.
      result.converged = result.converged || !accepted;
      break;
    }
  }
  return result;
}

}  // namespace palu::fit
