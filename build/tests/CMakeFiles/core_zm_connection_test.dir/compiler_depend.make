# Empty compiler generated dependencies file for core_zm_connection_test.
# This may be replaced when dependencies are built.
