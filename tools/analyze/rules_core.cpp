// The five regex-era rules, re-implemented on the shared token stream.
#include "analyze/passes.hpp"

namespace palu::analyze {
namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

}  // namespace

void run_core_rules(const FileScan& scan, const CoreRuleOptions& opts,
                    std::set<std::string>* seen_failpoints,
                    std::vector<Violation>* out) {
  const std::string file = scan.path.string();
  const std::vector<Token>& toks = scan.toks.code;
  bool saw_pragma_once = false;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    auto next = [&](std::size_t k) -> const Token& {
      static const Token kNone;
      return i + k < toks.size() ? toks[i + k] : kNone;
    };

    // header-pragma-once: `#pragma once` anywhere in the file.
    if (t.kind == TokKind::kDirective && t.text == "#pragma" &&
        is_ident(next(1), "once")) {
      saw_pragma_once = true;
    }

    // failpoint-registry: PALU_FAILPOINT("name") with a literal name.
    // The macro definition's non-literal argument is skipped by
    // construction, and the identifier inside a string (this file, for
    // instance) is a string token, not an identifier.
    if (is_ident(t, "PALU_FAILPOINT") && is_punct(next(1), "(") &&
        next(2).kind == TokKind::kString) {
      const std::string& name = next(2).text;
      seen_failpoints->insert(name);
      if (opts.registry != nullptr && opts.registry->count(name) == 0) {
        out->push_back({file, t.line, kRuleFailpoint,
                        "failpoint \"" + name +
                            "\" is not registered in " + opts.registry_path +
                            "; add it so fault-injection coverage stays "
                            "auditable"});
      }
    }

    // typed-error: `throw std::...` in library code.
    if (is_ident(t, "throw") && is_ident(next(1), "std") &&
        is_punct(next(2), "::")) {
      out->push_back({file, t.line, kRuleTypedError,
                      "library code must throw the typed errors from "
                      "common/error.hpp (palu::InvalidArgument, DataError, "
                      "ConvergenceError, ...), not bare std exceptions"});
    }

    // determinism: the banned nondeterminism sources.
    if (is_ident(t, "std") && is_punct(next(1), "::") &&
        is_ident(next(2), "rand")) {
      out->push_back({file, t.line, kRuleDeterminism,
                      "banned nondeterminism source `std::rand`: "
                      "seed-stable sweeps must draw from palu::Rng, not "
                      "the C PRNG"});
    }
    if (is_ident(t, "random_device")) {
      out->push_back({file, t.line, kRuleDeterminism,
                      "banned nondeterminism source `random_device`: "
                      "nondeterministic seeding breaks reproducible "
                      "sweeps"});
    }
    if (is_ident(t, "time") && is_punct(next(1), "(") &&
        (is_ident(next(2), "nullptr") || is_ident(next(2), "NULL")) &&
        is_punct(next(3), ")")) {
      out->push_back({file, t.line, kRuleDeterminism,
                      "banned nondeterminism source `time(nullptr)`: "
                      "wall-clock seeding breaks reproducible sweeps"});
    }
    if (is_punct(t, "::") && is_ident(next(1), "now") &&
        is_punct(next(2), "(") && is_punct(next(3), ")")) {
      out->push_back({file, t.line, kRuleDeterminism,
                      "banned nondeterminism source `::now()`: clock "
                      "reads are timing instrumentation; list the file "
                      "in tools/timing_files.txt (or carry a palu-lint "
                      "allow comment) explaining why results stay "
                      "seed-stable"});
    }

    // header-using-namespace.
    if (scan.header && is_ident(t, "using") &&
        is_ident(next(1), "namespace")) {
      out->push_back({file, t.line, kRuleUsingNamespace,
                      "`using namespace` in a header leaks into every "
                      "includer; qualify names instead (function-local "
                      "uses may carry a suppression comment)"});
    }
  }

  if (scan.header && !saw_pragma_once &&
      !(toks.empty() && scan.toks.comments.empty())) {
    out->push_back({file, 1, kRulePragmaOnce,
                    "header is missing #pragma once"});
  }
}

}  // namespace palu::analyze
