// Error policies and non-throwing results for resilient pipelines.
//
// Real trunk captures are messy: a multi-hour WIDE/CAIDA-style sweep must
// not die on one corrupt packet record.  Ingest entry points therefore take
// an ErrorPolicy — Strict preserves the library's original throw-on-first-
// fault behaviour, Skip drops malformed records under a configurable error
// budget, Repair additionally salvages what it can — and return a
// structured IngestReport alongside the parsed value.  Result<T> is the
// value-or-error carrier used where a failure is an expected outcome rather
// than a programmer error.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "palu/common/error.hpp"

namespace palu::obs {
class Registry;
}

namespace palu {

/// What an ingest routine does when it meets a malformed record.
enum class ErrorPolicy {
  kStrict,  ///< throw palu::DataError on the first malformed record
  kSkip,    ///< drop malformed records, counting them against the budget
  kRepair,  ///< salvage malformed records where possible, else drop them
};

/// "strict" | "skip" | "repair" (case-sensitive); throws
/// palu::InvalidArgument on anything else.
ErrorPolicy parse_error_policy(std::string_view text);

/// Inverse of parse_error_policy.
std::string_view to_string(ErrorPolicy policy) noexcept;

/// Knobs shared by every policy-aware ingest routine.
struct IngestOptions {
  ErrorPolicy policy = ErrorPolicy::kStrict;
  /// Error budget: once dropped + repaired records exceed this, even Skip
  /// and Repair throw palu::DataError (a stream that is mostly garbage is
  /// a different problem than a stream with a few bad lines).
  std::size_t max_bad_lines = ~std::size_t{0};
  /// Metrics sink for the palu_ingest_* counter families (reads, per-line
  /// kept/repaired/dropped, budget exhaustion); nullptr routes to
  /// obs::default_registry().  The IngestReport stays the authoritative
  /// per-call record — counters aggregate across calls.
  obs::Registry* metrics = nullptr;
};

/// Context of the first malformed record met during an ingest pass.
struct IngestError {
  std::size_t line_number = 0;
  std::string message;  ///< what was wrong (includes the offending token)
  std::string text;     ///< the raw line
};

/// Structured outcome of one ingest pass.  Invariant:
///   lines_read == records_kept + lines_repaired + lines_dropped
/// where lines_read counts substantive lines (blank lines and '#' comments
/// are never counted) and the parsed output holds records_kept +
/// lines_repaired records.
struct IngestReport {
  std::size_t lines_read = 0;
  std::size_t records_kept = 0;
  std::size_t lines_repaired = 0;
  std::size_t lines_dropped = 0;
  std::optional<IngestError> first_error;

  /// True when every substantive line parsed cleanly.
  bool clean() const noexcept {
    return lines_repaired == 0 && lines_dropped == 0;
  }
  /// One-line human-readable summary ("read=... kept=... ...").
  std::string summary() const;
};

/// Value-or-error carrier for expected failures (parse results, fallback
/// chains).  Unlike exceptions, a Result in the error state costs nothing
/// to produce in a hot ingest loop.
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-*)

  /// Failure with a diagnostic message.
  static Result failure(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// The held value; throws palu::Error if this is a failure.
  const T& value() const& {
    require_ok();
    return *value_;
  }
  T& value() & {
    require_ok();
    return *value_;
  }
  T&& value() && {
    require_ok();
    return *std::move(value_);
  }

  /// The value, or `fallback` when this is a failure.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Diagnostic message; empty for a success.
  const std::string& error() const noexcept { return error_; }

 private:
  Result() = default;
  void require_ok() const {
    if (!ok()) {
      throw Error("Result::value called on a failure: " + error_);
    }
  }

  std::optional<T> value_;
  std::string error_;
};

}  // namespace palu
