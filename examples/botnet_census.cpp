// Bot-traffic lens: the paper attributes leaves and unattached links
// largely to bot traffic.  This example compares two underlying networks —
// a "clean" core-dominated one and a "bot-heavy" one with many stars — and
// shows how the observed topology census and the fitted Zipf–Mandelbrot
// offset δ separate them at every window size.
//
//   build/examples/botnet_census [node_scale]
#include <cstdio>
#include <cstdlib>

#include "palu/palu.hpp"

namespace {

void profile(const char* name, const palu::core::PaluParams& base,
             palu::NodeId n) {
  using namespace palu;
  std::printf("\n=== %s (lambda=%.1f, C=%.2f, L=%.2f, U=%.3f) ===\n", name,
              base.lambda, base.core, base.leaves, base.hubs);
  std::printf("%6s  %12s  %10s  %10s  %10s\n", "p", "unatt.links",
              "link_share", "D(1)", "zm_delta");
  for (const double p : {0.25, 0.5, 1.0}) {
    const core::PaluParams params = base.at_window(p);
    Rng rng(42);
    const auto net = core::generate_underlying(params, n, rng);
    const auto observed = core::generate_observed(net, params, rng);
    const auto census = graph::classify_topology(observed);
    const auto h = stats::DegreeHistogram::from_degrees(observed.degrees());
    const auto dist = stats::EmpiricalDistribution::from_histogram(h);

    const double visible = static_cast<double>(dist.sample_size());
    const double link_share =
        2.0 * static_cast<double>(census.unattached_links) / visible;

    const auto pooled = stats::LogBinned::from_histogram(h);
    const auto zm =
        fit::fit_zipf_mandelbrot(pooled, dist.max_value());
    std::printf("%6.2f  %12llu  %10.4f  %10.4f  %10.3f\n", p,
                static_cast<unsigned long long>(census.unattached_links),
                link_share, dist.mass_at_one(), zm.delta);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace palu;
  const NodeId n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150000;

  // Clean network: most node mass in the PA core, few stars.
  const auto clean =
      core::PaluParams::solve_hubs(/*lambda=*/1.0, /*core=*/0.7,
                                   /*leaves=*/0.1, /*alpha=*/2.1,
                                   /*window=*/1.0);
  // Bot-heavy network: star hubs and leaves dominate (scanners, C2 beacons
  // touching few unique peers each).
  const auto botty =
      core::PaluParams::solve_hubs(/*lambda=*/1.5, /*core=*/0.15,
                                   /*leaves=*/0.25, /*alpha=*/2.1,
                                   /*window=*/1.0);
  profile("clean backbone", clean, n);
  profile("bot-heavy", botty, n);
  std::printf("\nReading: at every window size the bot-heavy network shows "
              "a far higher unattached-link share and\nmore degree-1 mass "
              "D(1) — the deviation the red dots in the paper's Fig 3 mark "
              "at d=1.\n");
  return 0;
}
