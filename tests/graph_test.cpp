// Unit tests for palu/graph: graph kit, components/census, generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "palu/common/error.hpp"
#include "palu/fit/linreg.hpp"
#include "palu/graph/components.hpp"
#include "palu/graph/generators.hpp"
#include "palu/graph/graph.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::graph {
namespace {

TEST(Graph, DegreesCountBothEndpoints) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 1);  // self-loop counts 2
  const auto deg = g.degrees();
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[1], 4u);
  EXPECT_EQ(deg[2], 1u);
  EXPECT_EQ(deg[3], 0u);
}

TEST(Graph, AddEdgeValidatesEndpoints) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), palu::InvalidArgument);
}

TEST(Graph, SimplifiedRemovesLoopsAndDuplicates) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // duplicate after canonicalization
  g.add_edge(2, 2);  // self-loop
  g.add_edge(1, 2);
  const Graph s = g.simplified();
  EXPECT_EQ(s.num_edges(), 2u);
  EXPECT_EQ(s.num_nodes(), 3u);
}

TEST(Graph, AdjacencyMatchesEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const auto adj = g.adjacency();
  EXPECT_EQ(adj.degree(0), 2u);
  EXPECT_EQ(adj.degree(1), 1u);
  EXPECT_EQ(adj.degree(3), 1u);
  // Node 0's neighbors are {1, 2} in some order.
  std::vector<NodeId> n0(adj.neighbors.begin() + adj.offsets[0],
                         adj.neighbors.begin() + adj.offsets[1]);
  std::sort(n0.begin(), n0.end());
  EXPECT_EQ(n0, (std::vector<NodeId>{1, 2}));
}

TEST(Graph, AppendDisjointOffsetsIds) {
  Graph a(2);
  a.add_edge(0, 1);
  Graph b(3);
  b.add_edge(0, 2);
  const NodeId offset = a.append_disjoint(b);
  EXPECT_EQ(offset, 2u);
  EXPECT_EQ(a.num_nodes(), 5u);
  EXPECT_EQ(a.num_edges(), 2u);
  EXPECT_EQ(a.edges()[1].u, 2u);
  EXPECT_EQ(a.edges()[1].v, 4u);
}

TEST(UnionFind, MergesAndCounts) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already merged
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_EQ(uf.component_size(2), 3u);
  EXPECT_EQ(uf.component_size(4), 1u);
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(3));
}

TEST(ConnectedComponents, FindsAllShapes) {
  // 0-1-2 path, 3-4 pair, 5 isolated.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  auto comps = connected_components(g);
  ASSERT_EQ(comps.size(), 3u);
  std::sort(comps.begin(), comps.end(),
            [](const ComponentInfo& a, const ComponentInfo& b) {
              return a.nodes > b.nodes;
            });
  EXPECT_EQ(comps[0].nodes, 3u);
  EXPECT_EQ(comps[0].edges, 2u);
  EXPECT_EQ(comps[1].nodes, 2u);
  EXPECT_EQ(comps[1].edges, 1u);
  EXPECT_EQ(comps[2].nodes, 1u);
  EXPECT_EQ(comps[2].edges, 0u);
}

TEST(TopologyCensus, ClassifiesFigureTwoShapes) {
  // Build: 1 isolated node, 2 unattached links, 1 star (hub+3 leaves),
  // 1 core (triangle with a hanging leaf).
  Graph g(0);
  g.add_nodes(1);            // node 0: isolated
  NodeId n = g.add_nodes(4); // 1-2, 3-4: unattached links
  g.add_edge(n, n + 1);
  g.add_edge(n + 2, n + 3);
  n = g.add_nodes(4);        // star: hub 5, leaves 6,7,8
  g.add_edge(n, n + 1);
  g.add_edge(n, n + 2);
  g.add_edge(n, n + 3);
  n = g.add_nodes(4);        // triangle 9,10,11 + leaf 12
  g.add_edge(n, n + 1);
  g.add_edge(n + 1, n + 2);
  g.add_edge(n, n + 2);
  g.add_edge(n + 2, n + 3);

  const TopologyCensus census = classify_topology(g);
  EXPECT_EQ(census.isolated_nodes, 1u);
  EXPECT_EQ(census.unattached_links, 2u);
  EXPECT_EQ(census.star_components, 1u);
  EXPECT_EQ(census.star_leaves, 3u);
  EXPECT_EQ(census.core_components, 1u);
  EXPECT_EQ(census.core_nodes, 4u);
  EXPECT_EQ(census.core_leaves, 1u);
  EXPECT_EQ(census.largest_component, 4u);
  EXPECT_EQ(census.total_components(), 4u);
}

TEST(TopologyCensus, PathIsNotAStar) {
  // A 4-node path is a tree but has no hub covering all edges.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const TopologyCensus census = classify_topology(g);
  EXPECT_EQ(census.star_components, 0u);
  EXPECT_EQ(census.core_components, 1u);
}

TEST(TopologyCensus, ThreeNodePathIsAStar) {
  // hub with two leaves == 3-node path; both views are the same graph.
  Graph g(3);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  const TopologyCensus census = classify_topology(g);
  EXPECT_EQ(census.star_components, 1u);
  EXPECT_EQ(census.star_leaves, 2u);
}

TEST(KCore, KnownSmallGraphs) {
  // K4: every node is in the 3-core.
  Graph k4(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) k4.add_edge(u, v);
  }
  for (const Degree c : k_core_numbers(k4)) EXPECT_EQ(c, 3u);
  // Star: everything peels at 1, including the hub.
  Graph star(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) star.add_edge(0, leaf);
  for (const Degree c : k_core_numbers(star)) EXPECT_EQ(c, 1u);
  // Triangle with tail: triangle 2, tail 1.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const auto core = k_core_numbers(g);
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
}

TEST(KCore, MonotoneUnderPeelingInvariant) {
  // Every node's core number is at most its degree, and the k-core
  // subgraph induced by {v : core(v) >= k} has min degree >= k inside.
  Rng rng(61);
  const Graph g = barabasi_albert(rng, 3000, 3).simplified();
  const auto core = k_core_numbers(g);
  const auto deg = g.degrees();
  Degree kmax = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(core[v], deg[v]);
    kmax = std::max(kmax, core[v]);
  }
  EXPECT_GE(kmax, 3u);  // BA m=3 has a 3-core
  // Check the defining property at k = kmax.
  std::vector<Degree> internal(g.num_nodes(), 0);
  for (const Edge& e : g.edges()) {
    if (core[e.u] >= kmax && core[e.v] >= kmax) {
      ++internal[e.u];
      ++internal[e.v];
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (core[v] >= kmax) {
      EXPECT_GE(internal[v], kmax) << "node " << v;
    }
  }
}

TEST(KCore, EmptyAndEdgelessGraphs) {
  EXPECT_TRUE(k_core_numbers(Graph(0)).empty());
  const auto core = k_core_numbers(Graph(7));
  for (const Degree c : core) EXPECT_EQ(c, 0u);
}

TEST(LargestComponent, ExtractsGiantWithMapping) {
  // 0-1-2 triangle + 3-4 pair + 5 isolated.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  std::vector<NodeId> ids;
  const Graph giant = largest_component(g, &ids);
  EXPECT_EQ(giant.num_nodes(), 3u);
  EXPECT_EQ(giant.num_edges(), 3u);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[2], 2u);
}

TEST(LargestComponent, DegenerateInputs) {
  EXPECT_EQ(largest_component(Graph(0)).num_nodes(), 0u);
  // All-isolated graph: any single node qualifies.
  const Graph lone = largest_component(Graph(4));
  EXPECT_EQ(lone.num_nodes(), 1u);
  EXPECT_EQ(lone.num_edges(), 0u);
}

TEST(LargestComponent, CoversMostOfAConnectedGraph) {
  Rng rng(71);
  const Graph g = barabasi_albert(rng, 2000, 2);
  const Graph giant = largest_component(g);
  EXPECT_EQ(giant.num_nodes(), g.num_nodes());
  EXPECT_EQ(giant.num_edges(), g.num_edges());
}

TEST(Assortativity, StarIsPerfectlyDisassortative) {
  Graph star(6);
  for (NodeId leaf = 1; leaf < 6; ++leaf) star.add_edge(0, leaf);
  EXPECT_NEAR(degree_assortativity(star), -1.0, 1e-12);
}

TEST(Assortativity, RegularGraphIsDegenerate) {
  // Cycle: all degrees equal → zero variance → defined as 0.
  Graph cycle(6);
  for (NodeId v = 0; v < 6; ++v) cycle.add_edge(v, (v + 1) % 6);
  EXPECT_DOUBLE_EQ(degree_assortativity(cycle), 0.0);
}

TEST(Assortativity, PaStyleGraphsAreDisassortative) {
  Rng rng(67);
  const Graph g = barabasi_albert(rng, 10000, 2);
  EXPECT_LT(degree_assortativity(g), -0.02);
  // ER is neutral.
  const Graph er = erdos_renyi(rng, 5000, 0.002);
  EXPECT_NEAR(degree_assortativity(er), 0.0, 0.05);
}

TEST(BarabasiAlbert, DegreeSumAndConnectivity) {
  Rng rng(42);
  const NodeId n = 2000;
  const Graph g = barabasi_albert(rng, n, 3);
  // Seed clique of 4 contributes 6 edges, then 3 per node.
  EXPECT_EQ(g.num_edges(), 6u + (n - 4) * 3u);
  const auto census = classify_topology(g);
  EXPECT_EQ(census.total_components() + census.isolated_nodes, 1u);
  // Minimum degree is m (every newcomer brings 3 edges).
  const auto deg = g.degrees();
  EXPECT_EQ(*std::min_element(deg.begin(), deg.end()), 3u);
}

TEST(BarabasiAlbert, ProducesHeavyTail) {
  Rng rng(7);
  const Graph g = barabasi_albert(rng, 20000, 2);
  const auto deg = g.degrees();
  const Degree dmax = *std::max_element(deg.begin(), deg.end());
  // BA supernodes grow ~ sqrt(n); far beyond any Poisson-like tail.
  EXPECT_GT(dmax, 100u);
}

TEST(BarabasiAlbert, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(barabasi_albert(rng, 3, 0), palu::InvalidArgument);
  EXPECT_THROW(barabasi_albert(rng, 3, 3), palu::InvalidArgument);
}

TEST(ZetaDegreeCore, DegreeLawMatchesBoundedZeta) {
  Rng rng(11);
  const double alpha = 2.5;
  const NodeId n = 60000;
  const Graph g = zeta_degree_core(rng, n, alpha, 1000);
  const auto deg = g.degrees();
  // Log-log regression on the realized degree pmf for d in [1, 32]:
  // slope should be near −α.  (The erased configuration model perturbs
  // high degrees only.)
  std::vector<double> counts(40, 0.0);
  for (const Degree d : deg) {
    if (d >= 1 && d < counts.size()) counts[d] += 1.0;
  }
  std::vector<double> x, y;
  for (Degree d = 1; d <= 32; ++d) {
    if (counts[d] < 10) continue;
    x.push_back(std::log(static_cast<double>(d)));
    y.push_back(std::log(counts[d]));
  }
  ASSERT_GE(x.size(), 6u);
  const auto fit = fit::linear_regression(x, y);
  EXPECT_NEAR(fit.slope, -alpha, 0.12);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(ZetaDegreeCore, RespectsDegreeCap) {
  Rng rng(13);
  const Graph g = zeta_degree_core(rng, 5000, 1.8, 50);
  const auto deg = g.degrees();
  // Erased configuration model can only reduce degrees; parity fix adds at
  // most one.
  EXPECT_LE(*std::max_element(deg.begin(), deg.end()), 51u);
}

TEST(ErdosRenyi, EdgeCountMatchesExpectation) {
  Rng rng(17);
  const NodeId n = 2000;
  const double p = 0.002;
  const Graph g = erdos_renyi(rng, n, p);
  const double expected = p * 0.5 * n * (n - 1);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              6.0 * std::sqrt(expected));
  // No self-loops or out-of-range nodes.
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.u, e.v);
    EXPECT_LT(e.u, n);
    EXPECT_LT(e.v, n);
  }
}

TEST(ErdosRenyi, NoDuplicateEdges) {
  Rng rng(19);
  const Graph g = erdos_renyi(rng, 300, 0.05);
  const Graph s = g.simplified();
  EXPECT_EQ(g.num_edges(), s.num_edges());
}

TEST(ErdosRenyi, DegenerateProbabilities) {
  Rng rng(1);
  EXPECT_EQ(erdos_renyi(rng, 100, 0.0).num_edges(), 0u);
  const Graph full = erdos_renyi(rng, 40, 1.0);
  EXPECT_EQ(full.num_edges(), 40u * 39u / 2u);
}

TEST(StarForest, LeafCountsArePoisson) {
  Rng rng(23);
  const Count hubs = 50000;
  const double lambda = 3.0;
  const Graph g = star_forest(rng, hubs, lambda);
  // Expected total leaves = hubs·λ.
  const double expected_edges = static_cast<double>(hubs) * lambda;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected_edges,
              6.0 * std::sqrt(expected_edges));
  // Isolated-hub fraction ≈ e^{−λ} (Section V's invisible nodes).
  const auto census = classify_topology(g);
  EXPECT_NEAR(static_cast<double>(census.isolated_nodes),
              std::exp(-lambda) * static_cast<double>(hubs),
              6.0 * std::sqrt(std::exp(-lambda) * hubs));
  // Every non-isolated component is a star (or a 2-node link).
  EXPECT_EQ(census.core_components, 0u);
}

TEST(StarForest, ZeroLambdaIsAllIsolated) {
  Rng rng(29);
  const Graph g = star_forest(rng, 100, 0.0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_nodes(), 100u);
}

TEST(BernoulliEdgeSample, ThinningIsBinomial) {
  Rng rng(31);
  Graph g(1000);
  for (NodeId i = 0; i + 1 < 1000; ++i) g.add_edge(i, i + 1);
  const double p = 0.3;
  const Graph thinned = bernoulli_edge_sample(rng, g, p);
  EXPECT_EQ(thinned.num_nodes(), g.num_nodes());
  EXPECT_NEAR(static_cast<double>(thinned.num_edges()), 999 * p,
              6.0 * std::sqrt(999 * p * (1 - p)));
}

TEST(ConnectByEdgeSwap, PreservesEveryDegree) {
  Rng rng(41);
  const Graph g = zeta_degree_core(rng, 20000, 2.2, 500);
  const Graph connected = connect_by_edge_swap(rng, g);
  EXPECT_EQ(connected.num_edges(), g.num_edges());
  EXPECT_EQ(connected.degrees(), g.degrees());
}

TEST(ConnectByEdgeSwap, YieldsSingleEdgeBearingComponent) {
  Rng rng(43);
  const Graph g = zeta_degree_core(rng, 20000, 2.2, 500);
  const Graph connected = connect_by_edge_swap(rng, g);
  const auto comps = connected_components(connected);
  std::size_t with_edges = 0;
  for (const auto& c : comps) with_edges += (c.edges > 0);
  EXPECT_EQ(with_edges, 1u);
}

TEST(ConnectByEdgeSwap, HandlesAlreadyConnectedAndTinyGraphs) {
  Rng rng(47);
  Graph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  const Graph same = connect_by_edge_swap(rng, path);
  EXPECT_EQ(same.num_edges(), 2u);
  EXPECT_EQ(same.degrees(), path.degrees());

  Graph single(2);
  single.add_edge(0, 1);
  EXPECT_EQ(connect_by_edge_swap(rng, single).num_edges(), 1u);
  EXPECT_EQ(connect_by_edge_swap(rng, Graph(5)).num_edges(), 0u);
}

TEST(ConnectByEdgeSwap, ForestsCannotMergeButStayValid) {
  // #components = V − E is a swap invariant on forests, so two tree pairs
  // can never merge degree-preservingly; the routine must terminate and
  // leave a valid graph with untouched degrees (isolated nodes included).
  Rng rng(53);
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  // nodes 4, 5 isolated
  const Graph out = connect_by_edge_swap(rng, g);
  EXPECT_EQ(out.num_edges(), 2u);
  EXPECT_EQ(out.degrees(), g.degrees());
  const auto census = classify_topology(out);
  EXPECT_EQ(census.isolated_nodes, 2u);
  EXPECT_EQ(census.unattached_links, 2u);
}

TEST(BernoulliEdgeSample, ExtremesKeepAllOrNone) {
  Rng rng(37);
  Graph g(10);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(bernoulli_edge_sample(rng, g, 1.0).num_edges(), 2u);
  EXPECT_EQ(bernoulli_edge_sample(rng, g, 0.0).num_edges(), 0u);
}

}  // namespace
}  // namespace palu::graph
