// ThreadSanitizer-targeted stress for the sweep fast path and its
// resilience machinery (DESIGN.md §5c).
//
// These tests pass on any build, but their point is the
// `-DPALU_SANITIZE=thread` tree: they drive sweep_windows with
// cancellation flips, wall-clock timeouts, armed failpoints, several
// sweeps sharing the process-global failpoint registry, and concurrent
// sweeps recording into one obs::Registry — all at once —
// so TSan can observe every cross-thread edge the pipeline claims is
// synchronized.  Assertions here are consistency invariants (every
// window accounted for exactly once), not timing expectations: on a
// loaded or single-core machine a cancel may land after the sweep is
// already done, and that must also be a pass.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "palu/common/failpoint.hpp"
#include "palu/graph/generators.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"
#include "palu/parallel/scratch_pool.hpp"
#include "palu/parallel/thread_pool.hpp"
#include "palu/traffic/window_pipeline.hpp"

namespace palu {
namespace {

graph::Graph stress_graph() {
  Rng rng(42);
  return graph::erdos_renyi(rng, 200, 0.05);
}

// windows finished, tolerated, and skipped must partition the request —
// the core no-lost-no-duplicated-window invariant of the sweep.
void expect_partitioned(const traffic::WindowSweepResult& r,
                        std::size_t requested) {
  EXPECT_EQ(r.windows + r.failures.size() + r.windows_skipped, requested);
}

TEST(TsanStress, SweepSurvivesConcurrentCancellation) {
  const auto g = stress_graph();
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    std::atomic<bool> cancel{false};
    traffic::SweepOptions opts;
    opts.cancel = &cancel;
    opts.max_failed_windows = 32;
    std::thread canceller([&cancel]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      cancel.store(true, std::memory_order_relaxed);
    });
    const auto result = traffic::sweep_windows(
        g, traffic::RateModel{}, 2000, 32,
        traffic::Quantity::kSourcePackets,
        static_cast<std::uint64_t>(round) + 1, pool, opts);
    canceller.join();
    expect_partitioned(result, 32);
    EXPECT_EQ(result.cancelled, result.windows_skipped > 0);
  }
}

TEST(TsanStress, SweepTimeoutRacesWorkersCleanly) {
  const auto g = stress_graph();
  ThreadPool pool(4);
  traffic::SweepOptions opts;
  opts.timeout = std::chrono::milliseconds(5);
  opts.max_failed_windows = 64;
  const auto result = traffic::sweep_windows(
      g, traffic::RateModel{}, 4000, 64,
      traffic::Quantity::kLinkPackets, 7, pool, opts);
  expect_partitioned(result, 64);
}

TEST(TsanStress, ConcurrentSweepsShareFailpointRegistry) {
  // Two sweeps on separate pools while a third thread keeps re-arming and
  // disarming the shared failpoint site: the registry's internal
  // synchronization and the sweeps' failure accounting must both hold.
  const auto g = stress_graph();
  std::atomic<bool> stop_arming{false};
  std::thread armer([&stop_arming]() {
    while (!stop_arming.load(std::memory_order_relaxed)) {
      failpoints::arm("traffic.sweep_window", /*fires=*/2, /*skip=*/3);
      std::this_thread::yield();
      failpoints::disarm("traffic.sweep_window");
    }
  });

  auto run_sweep = [&g](std::uint64_t seed) {
    ThreadPool pool(2);
    traffic::SweepOptions opts;
    opts.max_failed_windows = 24;  // tolerate every injected failure
    const auto result = traffic::sweep_windows(
        g, traffic::RateModel{}, 1500, 24,
        traffic::Quantity::kDestinationFanIn, seed, pool, opts);
    expect_partitioned(result, 24);
  };
  std::thread a([&run_sweep]() { run_sweep(11); });
  std::thread b([&run_sweep]() { run_sweep(23); });
  a.join();
  b.join();
  stop_arming.store(true, std::memory_order_relaxed);
  armer.join();
  failpoints::disarm_all();
}

TEST(TsanStress, ConcurrentSweepsShareOneMetricsRegistry) {
  // Two sweeps recording into the SAME obs::Registry while a reader
  // thread keeps snapshotting it: registration (mutex), recording
  // (relaxed atomics), and snapshotting must all be race-free, and the
  // shared counters must end at the exact two-sweep totals.
  const auto g = stress_graph();
  obs::Registry registry;
  std::atomic<bool> stop_reading{false};
  std::thread reader([&registry, &stop_reading]() {
    while (!stop_reading.load(std::memory_order_relaxed)) {
      // snapshot() performs the racing reads TSan is here to watch; the
      // only invariant mid-flight is that the series set never shrinks.
      const auto snap = registry.snapshot();
      EXPECT_LE(snap.counters.size(), registry.num_series());
      std::this_thread::yield();
    }
  });

  auto run_sweep = [&g, &registry](std::uint64_t seed) {
    ThreadPool pool(2);
    traffic::SweepOptions opts;
    opts.metrics = &registry;
    const auto result = traffic::sweep_windows(
        g, traffic::RateModel{}, 1500, 12,
        traffic::Quantity::kUndirectedDegree, seed, pool, opts);
    expect_partitioned(result, 12);
  };
  std::thread a([&run_sweep]() { run_sweep(5); });
  std::thread b([&run_sweep]() { run_sweep(31); });
  a.join();
  b.join();
  stop_reading.store(true, std::memory_order_relaxed);
  reader.join();

  const auto snap = registry.snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == obs::names::kSweepRuns) {
      EXPECT_EQ(c.value, 2u);
    }
    if (c.name == obs::names::kSweepWindows && !c.labels.empty() &&
        c.labels.front().second == "completed") {
      EXPECT_EQ(c.value, 24u);
    }
  }
}

TEST(TsanStress, ConcurrentCountsSweepsShareOneMetricsRegistry) {
  // The count-space path (PR 5) on the same contract as the packet path:
  // two counts sweeps recording into one registry while a third thread
  // snapshots, exercising the MultinomialSampler (shared per-worker via
  // ScratchPool leases), ingest_counts, and the path=counts stage
  // histograms under TSan.
  const auto g = stress_graph();
  obs::Registry registry;
  std::atomic<bool> stop_reading{false};
  std::thread reader([&registry, &stop_reading]() {
    while (!stop_reading.load(std::memory_order_relaxed)) {
      const auto snap = registry.snapshot();
      EXPECT_LE(snap.counters.size(), registry.num_series());
      std::this_thread::yield();
    }
  });

  auto run_sweep = [&g, &registry](std::uint64_t seed) {
    ThreadPool pool(2);
    traffic::SweepOptions opts;
    opts.synthesis = traffic::SynthesisMode::kMultinomial;
    opts.metrics = &registry;
    const auto result = traffic::sweep_windows(
        g, traffic::RateModel{}, 30000, 12,
        traffic::Quantity::kUndirectedDegree, seed, pool, opts);
    expect_partitioned(result, 12);
    EXPECT_EQ(result.windows, 12u);
  };
  std::thread a([&run_sweep]() { run_sweep(5); });
  std::thread b([&run_sweep]() { run_sweep(31); });
  a.join();
  b.join();
  stop_reading.store(true, std::memory_order_relaxed);
  reader.join();

  const auto snap = registry.snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == obs::names::kSweepRuns) {
      EXPECT_EQ(c.value, 2u);
    }
    if (c.name == obs::names::kSweepWindows && !c.labels.empty() &&
        c.labels.front().second == "completed") {
      EXPECT_EQ(c.value, 24u);
    }
  }
}

TEST(TsanStress, CountsSweepSurvivesArmedFailpoints) {
  // The two new failpoints ("rng.multinomial", "traffic.window_counts")
  // flip concurrently with two running counts sweeps; every injected
  // failure must be tolerated by the budget and accounted exactly once.
  const auto g = stress_graph();
  std::atomic<bool> stop_arming{false};
  std::thread armer([&stop_arming]() {
    while (!stop_arming.load(std::memory_order_relaxed)) {
      failpoints::arm("traffic.window_counts", /*fires=*/2, /*skip=*/3);
      failpoints::arm("rng.multinomial", /*fires=*/1, /*skip=*/7);
      std::this_thread::yield();
      failpoints::disarm("traffic.window_counts");
      failpoints::disarm("rng.multinomial");
    }
  });

  auto run_sweep = [&g](std::uint64_t seed) {
    ThreadPool pool(2);
    traffic::SweepOptions opts;
    opts.synthesis = traffic::SynthesisMode::kMultinomial;
    opts.max_failed_windows = 24;  // tolerate every injected failure
    const auto result = traffic::sweep_windows(
        g, traffic::RateModel{}, 1500, 24,
        traffic::Quantity::kDestinationFanIn, seed, pool, opts);
    expect_partitioned(result, 24);
  };
  std::thread a([&run_sweep]() { run_sweep(11); });
  std::thread b([&run_sweep]() { run_sweep(23); });
  a.join();
  b.join();
  stop_arming.store(true, std::memory_order_relaxed);
  armer.join();
  failpoints::disarm_all();
}

TEST(TsanStress, IntraWindowShardingSurvivesArmedFailpoints) {
  // Intra-window sharding (PR 7): each window's accumulation fans out over
  // four sub-accumulators that merge behind the "traffic.shard_merge"
  // failpoint.  Two sharded sweeps (one per synthesis path) race an armer
  // thread flipping the merge and window failpoints; every injected merge
  // failure must surface as a tolerated window failure, with the
  // no-lost-no-duplicated-window invariant intact.
  const auto g = stress_graph();
  std::atomic<bool> stop_arming{false};
  std::thread armer([&stop_arming]() {
    while (!stop_arming.load(std::memory_order_relaxed)) {
      failpoints::arm("traffic.shard_merge", /*fires=*/2, /*skip=*/5);
      failpoints::arm("traffic.sweep_window", /*fires=*/1, /*skip=*/7);
      std::this_thread::yield();
      failpoints::disarm("traffic.shard_merge");
      failpoints::disarm("traffic.sweep_window");
    }
  });

  auto run_sweep = [&g](std::uint64_t seed, traffic::SynthesisMode mode) {
    ThreadPool pool(2);
    traffic::SweepOptions opts;
    opts.synthesis = mode;
    opts.shard_mode = traffic::ShardMode::kIntraWindow;
    opts.shards_per_window = 4;
    opts.max_failed_windows = 24;  // tolerate every injected failure
    const auto result = traffic::sweep_windows(
        g, traffic::RateModel{}, 1500, 24,
        traffic::Quantity::kUndirectedDegree, seed, pool, opts);
    expect_partitioned(result, 24);
  };
  std::thread a([&run_sweep]() {
    run_sweep(11, traffic::SynthesisMode::kPacket);
  });
  std::thread b([&run_sweep]() {
    run_sweep(23, traffic::SynthesisMode::kMultinomial);
  });
  a.join();
  b.join();
  stop_arming.store(true, std::memory_order_relaxed);
  armer.join();
  failpoints::disarm_all();
}

TEST(TsanStress, FaultInjectedSweepIsDeterministicUnderBudget) {
  // A failpoint armed to fire exactly 3 times plus a failure budget: the
  // failure COUNT is deterministic even with 4 workers racing over which
  // windows absorb the fires, and no window may be lost or double-counted.
  const auto g = stress_graph();
  failpoints::arm("traffic.sweep_window", /*fires=*/3, /*skip=*/5);
  ThreadPool pool(4);
  traffic::SweepOptions opts;
  opts.max_failed_windows = 16;
  const auto result = traffic::sweep_windows(
      g, traffic::RateModel{}, 1000, 16,
      traffic::Quantity::kSourceFanOut, 3, pool, opts);
  failpoints::disarm_all();
  expect_partitioned(result, 16);
  EXPECT_EQ(result.failures.size(), 3u);
}

TEST(TsanStress, ScratchPoolLeaseChurnAcrossPools) {
  // Lease churn from two independent thread pools against one scratch
  // pool — the pattern sweep_windows uses, at higher contention.
  ScratchPool<std::vector<int>> scratch(
      []() { return std::make_unique<std::vector<int>>(256, 0); });
  ThreadPool pool_a(3);
  ThreadPool pool_b(3);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 48; ++i) {
    auto work = [&scratch, i]() {
      auto lease = scratch.acquire();
      (*lease)[static_cast<std::size_t>(i) % lease->size()] += 1;
    };
    futs.push_back(i % 2 == 0 ? pool_a.submit(work) : pool_b.submit(work));
  }
  for (auto& f : futs) f.get();
  EXPECT_GE(scratch.slots_created(), 1u);
  EXPECT_LE(scratch.slots_created(), 6u);  // bounded by max concurrency
}

TEST(TsanStress, SubmitStormFromManyThreads) {
  // External threads hammering ThreadPool::submit while workers drain:
  // exercises the queue_/stopping_ mutex discipline end to end.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &done]() {
      std::vector<std::future<void>> futs;
      for (int i = 0; i < 50; ++i) {
        futs.push_back(pool.submit([&done]() {
          done.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      for (auto& f : futs) f.get();
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(done.load(), 200);
}

}  // namespace
}  // namespace palu
