// Cross-cutting traffic invariants: identities connecting the Fig-1
// quantities, Table-I aggregates, the associative-array algebra, and the
// stream machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "palu/graph/generators.hpp"
#include "palu/traffic/aggregates.hpp"
#include "palu/traffic/assoc.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/sparse_matrix.hpp"
#include "palu/traffic/stream.hpp"

namespace palu::traffic {
namespace {

SparseCountMatrix random_window(std::uint64_t seed, Count n_valid) {
  Rng gen_rng(seed);
  const auto g = graph::zeta_degree_core(gen_rng, 4000, 2.0, 400);
  SyntheticTrafficGenerator stream(g, RateModel{}, Rng(seed + 1));
  return stream.window(n_valid);
}

TEST(QuantityIdentities, HistogramTotalsMatchAggregates) {
  const auto window = random_window(1, 30000);
  const auto agg = aggregates_summation(window);
  // #source-packet observations == unique sources; same for destinations.
  EXPECT_EQ(quantity_histogram(window, Quantity::kSourcePackets).total(),
            agg.unique_sources);
  EXPECT_EQ(quantity_histogram(window, Quantity::kSourceFanOut).total(),
            agg.unique_sources);
  EXPECT_EQ(
      quantity_histogram(window, Quantity::kDestinationPackets).total(),
      agg.unique_destinations);
  EXPECT_EQ(
      quantity_histogram(window, Quantity::kDestinationFanIn).total(),
      agg.unique_destinations);
  // #link-packet observations == unique links.
  EXPECT_EQ(quantity_histogram(window, Quantity::kLinkPackets).total(),
            agg.unique_links);
}

TEST(QuantityIdentities, MassConservation) {
  const auto window = random_window(2, 20000);
  const auto agg = aggregates_summation(window);
  // Σ d·n(d) over source packets == N_V; over link packets == N_V; over
  // fan-out == unique links.
  EXPECT_EQ(
      quantity_histogram(window, Quantity::kSourcePackets)
          .weighted_total(),
      agg.valid_packets);
  EXPECT_EQ(
      quantity_histogram(window, Quantity::kDestinationPackets)
          .weighted_total(),
      agg.valid_packets);
  EXPECT_EQ(
      quantity_histogram(window, Quantity::kLinkPackets).weighted_total(),
      agg.valid_packets);
  EXPECT_EQ(
      quantity_histogram(window, Quantity::kSourceFanOut)
          .weighted_total(),
      agg.unique_links);
  EXPECT_EQ(
      quantity_histogram(window, Quantity::kDestinationFanIn)
          .weighted_total(),
      agg.unique_links);
}

TEST(QuantityIdentities, UndirectedDegreeBounds) {
  const auto window = random_window(3, 20000);
  // Undirected degree of a node is at most fan-out + fan-in mass-wise:
  // total undirected degree mass <= 2 · unique links.
  const auto und = quantity_histogram(window, Quantity::kUndirectedDegree);
  const auto agg = aggregates_summation(window);
  EXPECT_LE(und.weighted_total(), 2 * agg.unique_links);
  EXPECT_GE(und.weighted_total(), agg.unique_links);
}

TEST(AssocConsistency, MatchesSparseCountMatrix) {
  const auto window = random_window(4, 10000);
  AssocArray assoc;
  for (const auto& e : window.entries()) {
    assoc.add(e.src, e.dst, static_cast<double>(e.packets));
  }
  EXPECT_EQ(assoc.nnz(), window.nnz());
  EXPECT_DOUBLE_EQ(assoc.sum(), static_cast<double>(window.total()));
  // Row sums match source marginals.
  const auto rows = assoc.row_sums();
  for (const auto& [src, marginal] : window.source_marginals()) {
    EXPECT_DOUBLE_EQ(rows.at(src),
                     static_cast<double>(marginal.packets));
  }
  // Transpose duality: col sums of A == row sums of Aᵀ.
  const auto cols = assoc.col_sums().sorted();
  const auto t_rows = assoc.transposed().row_sums().sorted();
  EXPECT_EQ(cols, t_rows);
}

TEST(AssocConsistency, ZeroNormHadamardMask) {
  // A ∘ |A|₀ = A: masking by the own-support indicator is the identity.
  const auto window = random_window(5, 5000);
  AssocArray assoc;
  for (const auto& e : window.entries()) {
    assoc.add(e.src, e.dst, static_cast<double>(e.packets));
  }
  const AssocArray masked = assoc.hadamard(assoc.zero_norm());
  EXPECT_EQ(masked.sorted().size(), assoc.sorted().size());
  EXPECT_DOUBLE_EQ(masked.sum(), assoc.sum());
}

TEST(StreamProperties, SharedRatesMakeWindowsExchangeable) {
  Rng gen_rng(6);
  const auto g = graph::erdos_renyi(gen_rng, 1000, 0.01);
  const auto rates =
      make_edge_rates(g, RateModel{}, Rng(7));
  // Two generators over the same rates but different packet streams give
  // statistically matching windows (compare total unique links within a
  // generous band).
  SyntheticTrafficGenerator s1(g, rates, Rng(8));
  SyntheticTrafficGenerator s2(g, rates, Rng(9));
  const auto w1 = s1.window(20000);
  const auto w2 = s2.window(20000);
  const double l1 = static_cast<double>(w1.nnz());
  const double l2 = static_cast<double>(w2.nnz());
  EXPECT_NEAR(l1, l2, 6.0 * std::sqrt(l1));
}

TEST(StreamProperties, MakeEdgeRatesIsDeterministic) {
  Rng gen_rng(10);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.02);
  RateModel pareto;
  pareto.kind = RateModel::Kind::kPareto;
  const auto r1 = make_edge_rates(g, pareto, Rng(11));
  const auto r2 = make_edge_rates(g, pareto, Rng(11));
  EXPECT_EQ(r1, r2);
  const auto r3 = make_edge_rates(g, pareto, Rng(12));
  EXPECT_NE(r1, r3);
}

TEST(StreamProperties, VisibilityBoundsAndMonotonicity) {
  Rng gen_rng(13);
  const auto g = graph::erdos_renyi(gen_rng, 800, 0.01);
  SyntheticTrafficGenerator stream(g, RateModel{}, Rng(14));
  double prev = 0.0;
  for (Count nv = 1; nv <= (1u << 22); nv *= 4) {
    const double v = stream.expected_edge_visibility(nv);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

TEST(StreamProperties, ExplicitRatesValidateInput) {
  Rng gen_rng(15);
  const auto g = graph::erdos_renyi(gen_rng, 100, 0.05);
  std::vector<double> wrong_size(g.num_edges() + 3, 1.0);
  EXPECT_THROW(SyntheticTrafficGenerator(g, wrong_size, Rng(16)),
               palu::InvalidArgument);
  std::vector<double> negative(g.num_edges(), 1.0);
  negative[0] = -1.0;
  EXPECT_THROW(SyntheticTrafficGenerator(g, negative, Rng(17)),
               palu::InvalidArgument);
  std::vector<double> zeros(g.num_edges(), 0.0);
  EXPECT_THROW(SyntheticTrafficGenerator(g, zeros, Rng(18)),
               palu::InvalidArgument);
}

TEST(StreamProperties, ExpectedUniqueLinksMatchesMeasured) {
  Rng gen_rng(20);
  const auto g = graph::zeta_degree_core(gen_rng, 3000, 2.0, 300);
  traffic::RateModel rates;
  rates.kind = RateModel::Kind::kPareto;
  SyntheticTrafficGenerator stream(g, rates, Rng(21));
  SyntheticTrafficGenerator probe(g, rates, Rng(21));
  for (const Count nv : {2000u, 20000u, 200000u}) {
    const auto window = stream.window(nv);
    const double predicted = probe.expected_unique_links(nv);
    const double measured = static_cast<double>(window.nnz());
    EXPECT_NEAR(measured, predicted,
                6.0 * std::sqrt(predicted) + 0.01 * predicted)
        << "N_V=" << nv;
  }
}

TEST(StreamProperties, ExpectedUniqueLinksRespectsDirectionality) {
  // forward_prob = 1: one (src, dst) cell per active edge; at 0.5 the
  // same rates promise (up to 2×) more directed cells for big windows.
  graph::Graph g(2);
  g.add_edge(0, 1);
  const std::vector<double> rate = {1.0};
  SyntheticTrafficGenerator one_way(g, rate, Rng(22),
                                    /*forward_prob=*/1.0);
  SyntheticTrafficGenerator two_way(g, rate, Rng(23),
                                    /*forward_prob=*/0.5);
  EXPECT_NEAR(one_way.expected_unique_links(100), 1.0, 1e-12);
  EXPECT_NEAR(two_way.expected_unique_links(100), 2.0, 1e-12);
}

TEST(QuantityIdentities, AggregatesInvariantUnderEntryOrder) {
  // Rebuilding the matrix from its own (sorted) entries reproduces the
  // aggregates — the hash iteration order cannot leak into results.
  const auto window = random_window(19, 8000);
  SparseCountMatrix rebuilt;
  for (const auto& e : window.entries()) {
    rebuilt.add(e.src, e.dst, e.packets);
  }
  EXPECT_EQ(aggregates_summation(window), aggregates_summation(rebuilt));
  EXPECT_EQ(aggregates_matrix(window), aggregates_matrix(rebuilt));
}

}  // namespace
}  // namespace palu::traffic
