#include "palu/graph/components.hpp"

#include <algorithm>
#include <unordered_map>

#include "palu/common/error.hpp"

namespace palu::graph {

UnionFind::UnionFind(NodeId n)
    : parent_(n), size_(n, 1), components_(n) {
  for (NodeId i = 0; i < n; ++i) parent_[i] = i;
}

NodeId UnionFind::find(NodeId x) {
  PALU_ASSERT(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(NodeId a, NodeId b) {
  NodeId ra = find(a);
  NodeId rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --components_;
  return true;
}

NodeId UnionFind::component_size(NodeId x) { return size_[find(x)]; }

std::vector<ComponentInfo> connected_components(const Graph& g) {
  UnionFind uf(g.num_nodes());
  for (const Edge& e : g.edges()) uf.unite(e.u, e.v);
  const std::vector<Degree> deg = g.degrees();
  std::unordered_map<NodeId, std::size_t> root_to_index;
  std::vector<ComponentInfo> comps;
  auto index_of = [&](NodeId root) {
    const auto [it, inserted] = root_to_index.try_emplace(root, comps.size());
    if (inserted) comps.emplace_back();
    return it->second;
  };
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ComponentInfo& c = comps[index_of(uf.find(v))];
    ++c.nodes;
    c.max_degree = std::max(c.max_degree, deg[v]);
  }
  for (const Edge& e : g.edges()) {
    ++comps[index_of(uf.find(e.u))].edges;
  }
  return comps;
}

Graph largest_component(const Graph& g, std::vector<NodeId>* id_map) {
  if (id_map) id_map->clear();
  if (g.num_nodes() == 0) return g;
  UnionFind uf(g.num_nodes());
  for (const Edge& e : g.edges()) uf.unite(e.u, e.v);
  // Root with the most nodes.
  std::unordered_map<NodeId, NodeId> sizes;
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++sizes[uf.find(v)];
  NodeId best_root = uf.find(0);
  for (const auto& [root, count] : sizes) {
    if (count > sizes[best_root]) best_root = root;
  }
  std::unordered_map<NodeId, NodeId> remap;
  Graph out(0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (uf.find(v) != best_root) continue;
    remap.emplace(v, out.add_nodes(1));
    if (id_map) id_map->push_back(v);
  }
  for (const Edge& e : g.edges()) {
    const auto iu = remap.find(e.u);
    if (iu == remap.end()) continue;
    out.add_edge(iu->second, remap.at(e.v));
  }
  return out;
}

std::vector<Degree> k_core_numbers(const Graph& g) {
  const Graph s = g.simplified();
  const auto adj = s.adjacency();
  const NodeId n = s.num_nodes();
  std::vector<Degree> degree(n);
  Degree max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = adj.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort nodes by degree (Matula–Beck / Batagelj–Zaveršnik).
  std::vector<NodeId> bin_start(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bin_start[degree[v] + 1];
  for (std::size_t i = 1; i < bin_start.size(); ++i) {
    bin_start[i] += bin_start[i - 1];
  }
  std::vector<NodeId> order(n);      // nodes sorted by current degree
  std::vector<NodeId> position(n);   // node -> index in order
  {
    std::vector<NodeId> cursor(bin_start.begin(), bin_start.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      order[position[v]] = v;
      ++cursor[degree[v]];
    }
  }
  std::vector<Degree> core(degree);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId v = order[i];
    core[v] = degree[v];
    for (std::size_t e = adj.offsets[v]; e < adj.offsets[v + 1]; ++e) {
      const NodeId u = adj.neighbors[e];
      if (degree[u] <= degree[v]) continue;
      // Move u one bucket down: swap it with the first node of its bin.
      const NodeId du = degree[u];
      const NodeId pu = position[u];
      const NodeId pw = bin_start[du];
      const NodeId w = order[pw];
      if (u != w) {
        std::swap(order[pu], order[pw]);
        position[u] = pw;
        position[w] = pu;
      }
      ++bin_start[du];
      --degree[u];
    }
  }
  return core;
}

double degree_assortativity(const Graph& g) {
  const Graph s = g.simplified();
  if (s.num_edges() < 2) return 0.0;
  const auto deg = s.degrees();
  // Pearson correlation over the 2m ordered endpoint pairs.
  double sum_x = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  const double m2 = 2.0 * static_cast<double>(s.num_edges());
  for (const Edge& e : s.edges()) {
    const double a = static_cast<double>(deg[e.u]);
    const double b = static_cast<double>(deg[e.v]);
    sum_x += a + b;
    sum_xx += a * a + b * b;
    sum_xy += 2.0 * a * b;
  }
  const double mean = sum_x / m2;
  const double var = sum_xx / m2 - mean * mean;
  if (var <= 0.0) return 0.0;
  const double cov = sum_xy / m2 - mean * mean;
  return cov / var;
}

TopologyCensus classify_topology(const Graph& g) {
  UnionFind uf(g.num_nodes());
  for (const Edge& e : g.edges()) uf.unite(e.u, e.v);
  const std::vector<Degree> deg = g.degrees();

  // Per-component tallies keyed by root.
  struct Tally {
    NodeId nodes = 0;
    Count edges = 0;
    Degree max_degree = 0;
    Count degree_one = 0;
  };
  std::unordered_map<NodeId, Tally> tallies;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    Tally& t = tallies[uf.find(v)];
    ++t.nodes;
    t.max_degree = std::max(t.max_degree, deg[v]);
    if (deg[v] == 1) ++t.degree_one;
  }
  for (const Edge& e : g.edges()) ++tallies[uf.find(e.u)].edges;

  TopologyCensus census;
  for (const auto& [root, t] : tallies) {
    census.largest_component =
        std::max<Count>(census.largest_component, t.nodes);
    if (t.nodes == 1) {
      ++census.isolated_nodes;
    } else if (t.nodes == 2 && t.edges == 1) {
      ++census.unattached_links;
    } else if (t.edges == t.nodes - 1 &&
               t.max_degree == t.nodes - 1) {
      // A tree whose hub touches every edge: a star (paper's "supernode
      // leaves connected to a supernode" when large).
      ++census.star_components;
      census.star_leaves += t.degree_one;
    } else {
      ++census.core_components;
      census.core_nodes += t.nodes;
      census.core_leaves += t.degree_one;
    }
  }
  return census;
}

}  // namespace palu::graph
