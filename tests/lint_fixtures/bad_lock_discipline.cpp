// Fixture: a method that reads a PALU_GUARDED_BY member without taking
// the lock or declaring PALU_REQUIRES.  add() (lock_guard) and
// locked_sum() (PALU_REQUIRES) are compliant and must not fire.
// palu-lint-expect: lock-discipline
#include <mutex>

#include "palu/common/thread_annotations.hpp"

class Tracker {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ += v;
  }

  int peek() const { return total_; }

  int locked_sum() const PALU_REQUIRES(mutex_) { return total_; }

 private:
  mutable std::mutex mutex_;
  int total_ PALU_GUARDED_BY(mutex_) = 0;
};
