#include "palu/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace palu::linalg {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  PALU_CHECK(cols_ == other.rows_, "Matrix::multiply: shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Vector Matrix::multiply(const Vector& v) const {
  PALU_CHECK(cols_ == v.size(), "Matrix::multiply: vector size mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = (*this)(r, i);
      if (a == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) {
        g(i, j) += a * (*this)(r, j);
      }
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Vector Matrix::transpose_multiply(const Vector& v) const {
  PALU_CHECK(rows_ == v.size(),
             "Matrix::transpose_multiply: vector size mismatch");
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double x = v[r];
    if (x == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += (*this)(r, c) * x;
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  PALU_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_,
             "Matrix::max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  PALU_CHECK(a.rows() == a.cols(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (!(diag > 0.0)) {
      throw ConvergenceError("Cholesky: matrix is not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      l_(i, j) = sum / ljj;
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  PALU_CHECK(b.size() == n, "Cholesky::solve: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {  // forward: L·y = b
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {  // back: Lᵀ·x = y
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l_(k, ii) * x[k];
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

double Cholesky::log_determinant() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

HouseholderQr::HouseholderQr(const Matrix& a)
    : qr_(a), m_(a.rows()), n_(a.cols()) {
  PALU_CHECK(m_ >= n_, "HouseholderQr: requires rows >= cols");
  tau_.assign(n_, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    // Norm of the k-th column below (and including) the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m_; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;  // exactly zero column; flagged by min_abs_diag
    // Match the sign of the pivot so the +1 below grows the reflector head.
    if (qr_(k, k) < 0.0) norm = -norm;
    for (std::size_t i = k; i < m_; ++i) qr_(i, k) /= norm;
    qr_(k, k) += 1.0;
    tau_[k] = -norm;  // R's diagonal entry
    // Apply reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n_; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m_; ++i) s += qr_(i, k) * qr_(i, j);
      s = -s / qr_(k, k);
      for (std::size_t i = k; i < m_; ++i) qr_(i, j) += s * qr_(i, k);
    }
  }
}

Vector HouseholderQr::solve(const Vector& b) const {
  PALU_CHECK(b.size() == m_, "HouseholderQr::solve: size mismatch");
  Vector y = b;
  // y ← Qᵀ·b
  for (std::size_t k = 0; k < n_; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = 0.0;
    for (std::size_t i = k; i < m_; ++i) s += qr_(i, k) * y[i];
    s = -s / qr_(k, k);
    for (std::size_t i = k; i < m_; ++i) y[i] += s * qr_(i, k);
  }
  // Back-substitute R·x = y[0..n).
  Vector x(n_);
  for (std::size_t kk = n_; kk-- > 0;) {
    PALU_CHECK(tau_[kk] != 0.0, "HouseholderQr::solve: rank-deficient");
    double sum = y[kk];
    for (std::size_t j = kk + 1; j < n_; ++j) sum -= qr_(kk, j) * x[j];
    x[kk] = sum / tau_[kk];
  }
  return x;
}

double HouseholderQr::min_abs_diag() const {
  double m = std::abs(tau_.empty() ? 0.0 : tau_[0]);
  for (double t : tau_) m = std::min(m, std::abs(t));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  PALU_CHECK(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

}  // namespace palu::linalg
