#include "palu/math/binmass.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "palu/common/error.hpp"
#include "palu/math/gamma.hpp"
#include "palu/math/stable.hpp"

namespace palu::math {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;
constexpr double kInvSqrt2Pi = 0.39894228040143267794;

double normal_cdf(double z) { return 0.5 * std::erfc(-z * kInvSqrt2); }
double normal_pdf(double z) { return kInvSqrt2Pi * std::exp(-0.5 * z * z); }

/// Φ(z) with the first Edgeworth (skewness) correction — the "normal" tier.
double edgeworth_cdf(double z, double gamma3) {
  const double f =
      normal_cdf(z) - normal_pdf(z) * gamma3 * (z * z - 1.0) / 6.0;
  return std::clamp(f, 0.0, 1.0);
}

/// Lattice Lugannani–Rice CDF from saddle t̂, K(t̂), K''(t̂) at the
/// (continuity-corrected) evaluation point x.  Callers keep |t̂| away from
/// 0 by routing central boundaries through the normal tier.
double lugannani_rice(double t, double cgf, double cgf_pp, double x) {
  double w = std::sqrt(std::max(0.0, 2.0 * (t * x - cgf)));
  if (t < 0.0) w = -w;
  const double u = t * std::sqrt(cgf_pp);
  if (w == 0.0 || u == 0.0) return 0.5;  // saddle at the mean; callers avoid
  const double f = normal_cdf(w) + normal_pdf(w) * (1.0 / w - 1.0 / u);
  return std::clamp(f, 0.0, 1.0);
}

/// Binomial(n, p) CDF at real boundary m through the normal/saddlepoint
/// ladder.  Requires p ∈ (0, 1).
double binomial_cdf_ladder(std::uint64_t n, double p, double m,
                           const BinMassOptions& opts) {
  const double nd = static_cast<double>(n);
  if (m < 0.0) return 0.0;
  if (m >= nd) return 1.0;
  const double x = m + 0.5;  // lattice continuity correction
  if (x >= nd) return 1.0;
  const double mu = nd * p;
  const double sigma = std::sqrt(mu * (1.0 - p));
  const double z = (x - mu) / sigma;
  if (z <= -opts.tail_z_cut) return 0.0;
  if (z >= opts.tail_z_cut) return 1.0;
  if (std::abs(z) <= opts.normal_z_max) {
    return edgeworth_cdf(z, (1.0 - 2.0 * p) / sigma);
  }
  // Closed-form saddle: e^t̂ = a(1−p)/((1−a)p) with a = x/n, giving
  // K(t̂) = n·log((1−p)/(1−a)) and K''(t̂) = n·a(1−a).
  const double a = x / nd;
  const double t = std::log(a / (1.0 - a)) + std::log((1.0 - p) / p);
  const double cgf = nd * (std::log1p(-p) - std::log1p(-a));
  return lugannani_rice(t, cgf, nd * a * (1.0 - a), x);
}

struct PbMoments {
  double mu = 0.0;
  double s2 = 0.0;
  double m3 = 0.0;
  double sum_log1m = 0.0;  // Σ log1p(−π); −inf when some π = 1
};

PbMoments pb_moments(std::span<const double> probs) {
  PbMoments m;
  for (const double pi : probs) {
    PALU_ASSERT(pi >= 0.0 && pi <= 1.0);
    const double q = 1.0 - pi;
    m.mu += pi;
    m.s2 += pi * q;
    m.m3 += pi * q * (q - pi);
    m.sum_log1m += std::log1p(-pi);
  }
  return m;
}

/// Poisson-binomial CDF at real boundary m via the same ladder; `mom` are
/// the precomputed moments of `probs`.  Requires s2 > 0.
double pb_cdf_ladder(std::span<const double> probs, const PbMoments& mom,
                     double m, const BinMassOptions& opts) {
  const double kd = static_cast<double>(probs.size());
  if (m < 0.0) return 0.0;
  if (m >= kd) return 1.0;
  const double x = m + 0.5;
  if (x >= kd) return 1.0;
  const double sigma = std::sqrt(mom.s2);
  const double z = (x - mom.mu) / sigma;
  if (z <= -opts.tail_z_cut) return 0.0;
  if (z >= opts.tail_z_cut) return 1.0;
  if (std::abs(z) <= opts.normal_z_max) {
    return edgeworth_cdf(z, mom.m3 / (mom.s2 * sigma));
  }
  // Saddle by Newton on K'(t) = x, seeded with the Gaussian saddle.
  double t = std::clamp((x - mom.mu) / mom.s2, -600.0, 600.0);
  double cgf = 0.0;
  double cgf_pp = 0.0;
  for (int iter = 0; iter < 32; ++iter) {
    const double em1 = std::expm1(t);
    const double et = em1 + 1.0;
    cgf = 0.0;
    cgf_pp = 0.0;
    double cgf_p = 0.0;
    for (const double pi : probs) {
      const double den = 1.0 + pi * em1;
      const double s = pi * et / den;
      cgf += std::log1p(pi * em1);
      cgf_p += s;
      cgf_pp += s * (1.0 - s);
    }
    const double h = cgf_p - x;
    if (std::abs(h) <= 1e-10 * (1.0 + x) || cgf_pp <= 0.0) break;
    t = std::clamp(t - h / cgf_pp, -600.0, 600.0);
  }
  return lugannani_rice(t, cgf, cgf_pp, x);
}

/// Folds a distribution known only through edge CDFs into the bins:
/// bins[i] += F(u_i) − F(u_{i−1}) over the bin range that can hold mass
/// given support [lo, hi].  F(0) is supplied exactly by the caller.
template <typename CdfFn>
void fold_from_cdf(std::span<double> bins, double lo, double hi,
                   double cdf_at_zero, CdfFn&& cdf) {
  const std::size_t nbins = bins.size();
  const std::size_t last = nbins - 1;
  const auto first_d = static_cast<std::uint64_t>(std::max(lo, 1.0));
  const auto last_d =
      static_cast<std::uint64_t>(std::clamp(hi, 1.0, 9.0e18));
  std::size_t b_lo = log2_bin_index(first_d, nbins);
  const std::size_t b_hi = log2_bin_index(last_d, nbins);
  // F at the lower edge of bin b_lo (edge value 2^{b_lo−1}, or 0 for bin 0).
  double prev = b_lo == 0 ? cdf_at_zero
                          : cdf(std::ldexp(1.0, static_cast<int>(b_lo) - 1));
  for (std::size_t i = b_lo; i <= b_hi; ++i) {
    const double cur =
        i == last ? 1.0
                  : cdf(i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i)));
    bins[i] += std::max(0.0, cur - prev);
    prev = cur;
  }
}

}  // namespace

std::size_t log2_bin_index(std::uint64_t d, std::size_t nbins) {
  PALU_ASSERT(d >= 1 && nbins >= 1);
  const std::size_t idx =
      d <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(d - 1));
  return std::min(idx, nbins - 1);
}

double binomial_log2_bins(std::uint64_t n, double p, std::span<double> bins,
                          const BinMassOptions& opts) {
  PALU_CHECK(!bins.empty(), "binomial_log2_bins: needs at least one bin");
  PALU_CHECK(p >= 0.0 && p <= 1.0,
             "binomial_log2_bins: probability outside [0, 1]");
  if (n == 0 || p == 0.0) return 0.0;
  if (p >= 1.0) {  // degenerate: all n_valid packets land on this entity
    bins[log2_bin_index(n, bins.size())] += 1.0;
    return 1.0;
  }
  const double nd = static_cast<double>(n);
  // Exact by construction, independent of the approximation tier below.
  const double visible = -std::expm1(nd * std::log1p(-p));
  const double mu = nd * p;
  const double sigma = std::sqrt(mu * (1.0 - p));
  const double lo = std::max(0.0, mu - 40.0 * sigma - 4.0);
  const double hi = std::min(nd, mu + 40.0 * sigma + 4.0);
  if (hi - lo <= opts.exact_span_limit) {
    // Exact tier: ratio-recurrence pmf walk over the ±40σ support.  The
    // walk is seeded at the mode and recursed outward: seeding at the d0
    // edge underflows (the pmf at −40σ is ~e^{-800}, below the subnormal
    // floor) and a ratio recurrence can never recover from an exact zero,
    // which silently dropped ALL the mass of high-μ narrow-σ marginals.
    const auto d0 = static_cast<std::uint64_t>(lo);
    const auto d1 = static_cast<std::uint64_t>(hi);
    const std::uint64_t m0 = std::min(
        d1, std::max(d0, static_cast<std::uint64_t>(mu)));
    const double lp = log_binomial_coefficient(n, m0) +
                      xlogy(static_cast<double>(m0), p) +
                      (nd - static_cast<double>(m0)) * std::log1p(-p);
    const double pm0 = std::exp(lp);
    const double odds = p / (1.0 - p);
    double pm = pm0;
    for (std::uint64_t d = m0; d <= d1; ++d) {
      if (d >= 1) bins[log2_bin_index(d, bins.size())] += pm;
      pm *= odds * (nd - static_cast<double>(d)) /
            (static_cast<double>(d) + 1.0);
    }
    pm = pm0;
    for (std::uint64_t d = m0; d > d0; --d) {
      pm *= static_cast<double>(d) /
            (odds * (nd - static_cast<double>(d) + 1.0));
      if (d - 1 >= 1) bins[log2_bin_index(d - 1, bins.size())] += pm;
    }
    return visible;
  }
  fold_from_cdf(bins, lo, hi, 1.0 - visible, [&](double m) {
    return binomial_cdf_ladder(n, p, m, opts);
  });
  return visible;
}

double poisson_binomial_log2_bins(std::span<const double> probs,
                                  std::span<double> bins,
                                  BinMassScratch& scratch,
                                  const BinMassOptions& opts) {
  PALU_CHECK(!bins.empty(),
             "poisson_binomial_log2_bins: needs at least one bin");
  const std::size_t k = probs.size();
  if (k == 0) return 0.0;
  if (k <= opts.pb_exact_max_terms) {
    // Exact DP over the indicator convolution, O(k²).
    auto& pmf = scratch.pmf;
    pmf.assign(k + 1, 0.0);
    pmf[0] = 1.0;
    std::size_t cur = 0;
    for (const double pi : probs) {
      PALU_ASSERT(pi >= 0.0 && pi <= 1.0);
      for (std::size_t j = cur + 1; j-- > 0;) {
        const double carry = pmf[j] * pi;
        pmf[j] -= carry;
        if (j + 1 <= k) pmf[j + 1] += carry;
      }
      ++cur;
    }
    for (std::size_t d = 1; d <= k; ++d) {
      bins[log2_bin_index(d, bins.size())] += pmf[d];
    }
    return 1.0 - pmf[0];
  }
  const PbMoments mom = pb_moments(probs);
  const double visible = -std::expm1(mom.sum_log1m);
  if (mom.s2 < 1e-12) {
    // Degenerate: every π is (numerically) 0 or 1 — a point mass.
    const auto d = static_cast<std::uint64_t>(std::llround(mom.mu));
    if (d >= 1) bins[log2_bin_index(d, bins.size())] += 1.0;
    return visible;
  }
  const double sigma = std::sqrt(mom.s2);
  const double lo = std::max(0.0, mom.mu - 40.0 * sigma - 4.0);
  const double hi =
      std::min(static_cast<double>(k), mom.mu + 40.0 * sigma + 4.0);
  fold_from_cdf(bins, lo, hi, 1.0 - visible, [&](double m) {
    return pb_cdf_ladder(probs, mom, m, opts);
  });
  return visible;
}

double binomial_cdf_approx(std::uint64_t n, double p, double m,
                           const BinMassOptions& opts) {
  PALU_CHECK(p >= 0.0 && p <= 1.0,
             "binomial_cdf_approx: probability outside [0, 1]");
  if (n == 0) return 1.0;
  if (p == 0.0) return m >= 0.0 ? 1.0 : 0.0;
  if (p >= 1.0) return m >= static_cast<double>(n) ? 1.0 : 0.0;
  return binomial_cdf_ladder(n, p, m, opts);
}

double poisson_binomial_cdf_approx(std::span<const double> probs, double m,
                                   const BinMassOptions& opts) {
  if (probs.empty()) return m >= 0.0 ? 1.0 : 0.0;
  const PbMoments mom = pb_moments(probs);
  if (mom.s2 < 1e-12) {
    return m >= std::round(mom.mu) ? 1.0 : 0.0;
  }
  return pb_cdf_ladder(probs, mom, m, opts);
}

}  // namespace palu::math
