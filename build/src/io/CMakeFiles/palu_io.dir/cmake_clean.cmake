file(REMOVE_RECURSE
  "CMakeFiles/palu_io.dir/csv.cpp.o"
  "CMakeFiles/palu_io.dir/csv.cpp.o.d"
  "CMakeFiles/palu_io.dir/trace.cpp.o"
  "CMakeFiles/palu_io.dir/trace.cpp.o.d"
  "libpalu_io.a"
  "libpalu_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
