# Empty compiler generated dependencies file for palu_tool.
# This may be replaced when dependencies are built.
