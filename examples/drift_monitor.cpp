// Drift monitoring: the operational loop the paper's framing implies.
//
// A stream of traffic windows is watched by (a) the streaming PALU
// estimator, whose μ trajectory tracks the star density (bot activity),
// and (b) a two-sample KS test between each window and a calm baseline.
// Midway through, the underlying network shifts from a calm profile to a
// bot-heavy one; both monitors must flag it.
//
//   build/examples/drift_monitor [windows_per_phase]
#include <cstdio>
#include <cstdlib>

#include "palu/palu.hpp"

int main(int argc, char** argv) {
  using namespace palu;
  const int per_phase = argc > 1 ? std::atoi(argv[1]) : 5;

  const auto calm =
      core::PaluParams::solve_hubs(1.0, 0.45, 0.2, 2.2, 1.0);
  const auto botty =
      core::PaluParams::solve_hubs(8.0, 0.2, 0.2, 2.2, 1.0);

  Rng rng(2027);
  core::StreamingPaluEstimator monitor;
  core::WindowAnomalyDetector detector;

  std::printf("%6s %8s %10s %10s %12s %10s %8s\n", "window", "phase",
              "alpha_hat", "mu_hat", "ks_vs_base", "ks_p", "D(1)");
  for (int w = 0; w < 2 * per_phase; ++w) {
    const bool bot_phase = w >= per_phase;
    const auto& params = bot_phase ? botty : calm;
    Rng wrng = rng.fork(w + 1);
    const auto h = core::sample_observed_degrees(params, 80000, wrng);
    // A window the estimator or detector cannot digest is logged and
    // dropped; the monitor keeps running on the remaining stream.
    try {
      monitor.add_window(h);
    } catch (const Error& e) {
      std::printf("%6d  estimator skipped window: %s\n", w, e.what());
    }

    double ks = 0.0, p = 1.0, d1 = 0.0;
    bool flagged = false;
    if (detector.has_baseline()) {
      try {
        const auto score = detector.score(h);
        ks = score.ks_statistic;
        p = score.ks_p_value;
        d1 = score.d1_window;
        flagged = score.flagged;
      } catch (const Error& e) {
        std::printf("%6d  detector skipped window: %s\n", w, e.what());
      }
    }
    if (w < per_phase) detector.add_baseline(h);

    const bool fitted = monitor.has_fit();
    std::printf("%6d %8s %10.3f %10.3f %12.4f %10.2e %8.4f%s\n", w,
                bot_phase ? "BOT" : "calm",
                fitted ? monitor.current().alpha : 0.0,
                fitted ? monitor.current().mu : 0.0, ks, p, d1,
                flagged ? "  <-- drift flagged" : "");
  }

  std::printf("\nisolated-node extrapolation at the end of the run:\n");
  try {
    const auto est =
        core::estimate_isolated(monitor.current(), /*window=*/1.0);
    std::printf("  implied lambda=%.2f; invisible hubs per visible node="
                "%.5f\n",
                est.implied_lambda, est.invisible_hubs_per_visible);
  } catch (const Error& e) {
    std::printf("  (not identifiable: %s)\n", e.what());
  }
  return 0;
}
