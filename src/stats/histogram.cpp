#include "palu/stats/histogram.hpp"

#include <algorithm>
#include <string>

#include "palu/common/error.hpp"

namespace palu::stats {

void DegreeHistogram::add(Degree d, Count c) {
  if (c == 0) return;
  // Check every running total before committing anything: a hostile
  // histogram (e.g. a repaired CSV with d ≈ c ≈ 2^40) must throw rather
  // than wrap weighted_total_ silently, and a failed add must leave the
  // histogram untouched.
  Count mass = 0;
  Count new_total = 0;
  Count new_weighted = 0;
  if (__builtin_mul_overflow(d, c, &mass) ||
      __builtin_add_overflow(total_, c, &new_total) ||
      __builtin_add_overflow(weighted_total_, mass, &new_weighted)) {
    throw DataError("DegreeHistogram::add: totals overflow 64 bits at d=" +
                    std::to_string(d) + ", count=" + std::to_string(c));
  }
  counts_[d] += c;  // bounded by total_, which was just proven to fit
  total_ = new_total;
  weighted_total_ = new_weighted;
}

DegreeHistogram DegreeHistogram::from_degrees(
    std::span<const Degree> degrees) {
  DegreeHistogram h;
  for (Degree d : degrees) {
    if (d > 0) h.add(d);
  }
  return h;
}

void DegreeHistogram::merge(const DegreeHistogram& other) {
  for (const auto& [d, c] : other.counts_) add(d, c);
}

Count DegreeHistogram::at(Degree d) const {
  const auto it = counts_.find(d);
  return it == counts_.end() ? 0 : it->second;
}

Degree DegreeHistogram::max_degree() const {
  Degree m = 0;
  for (const auto& [d, c] : counts_) m = std::max(m, d);
  return m;
}

std::vector<std::pair<Degree, Count>> DegreeHistogram::sorted() const {
  std::vector<std::pair<Degree, Count>> out(counts_.begin(), counts_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace palu::stats
