// Fixture: library code throwing a bare std exception must trip the
// typed-error rule.
// palu-lint-expect: typed-error
#include <stdexcept>

void fail() { throw std::runtime_error("not a palu typed error"); }
