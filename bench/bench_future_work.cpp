// Section VII future-work experiments, implemented:
//
// 1. Clustering coefficients across generators (PALU observed, BA, ER,
//    PA+ER hybrid) — "deeper study into ... clustering coefficients".
// 2. Directed observation — quantifies the Section III claim that a
//    directed model has "small impact" on the degree analysis.
// 3. Weighted edges — strength-distribution tail exponents vs the
//    min(α, γ) prediction, for packet-like weight laws.
// 4. Small-component size law and the isolated-node extrapolation —
//    "explore the existence and importance of isolated nodes".
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "palu/palu.hpp"

namespace {

using namespace palu;

core::PaluParams base_params() {
  return core::PaluParams::solve_hubs(4.0, 0.35, 0.2, 2.2, 0.7);
}

void experiment_clustering() {
  std::printf("--- 1. clustering / assortativity / core depth (30k-node "
              "graphs) ---\n");
  std::printf("%-26s %10s %10s %10s %8s %8s\n", "graph", "avg.local",
              "global", "triangles", "assort", "max.core");
  const auto row = [](const char* name, const graph::Graph& g) {
    const auto s = graph::clustering_summary(g);
    const auto core = graph::k_core_numbers(g);
    Degree kmax = 0;
    for (const Degree c : core) kmax = std::max(kmax, c);
    std::printf("%-26s %10.5f %10.5f %10llu %+8.3f %8llu\n", name,
                s.average_local, s.global,
                static_cast<unsigned long long>(s.triangles),
                graph::degree_assortativity(g),
                static_cast<unsigned long long>(kmax));
  };
  Rng rng(1);
  const auto net = core::generate_underlying(base_params(), 30000, rng);
  row("PALU underlying", net.graph);
  row("PALU observed", core::generate_observed(net, base_params(), rng));
  const auto ba = graph::barabasi_albert(rng, 30000, 3);
  row("barabasi-albert m=3", ba);
  row("BA degree-preserving null",
      graph::rewire_degree_preserving(rng, ba, 20 * ba.num_edges()));
  row("erdos-renyi same density",
      graph::erdos_renyi(rng, 30000, 2.0e-4));
  row("pa+er hybrid", graph::pa_er_hybrid(rng, 30000, 2, 1.0e-4));
  std::printf("(the null row shows how much clustering the degree "
              "sequence alone forces)\n\n");
}

void experiment_directed() {
  std::printf("--- 2. directed vs undirected degree analysis ---\n");
  const auto params = base_params();
  Rng rng(2);
  const auto net = core::generate_underlying(params, 300000, rng);
  std::printf("%12s %10s %10s %10s %10s\n", "reciprocity", "alpha_in",
              "alpha_out", "alpha_und", "D(1)_in");
  for (const double reciprocity : {0.0, 0.5, 1.0}) {
    core::DirectedOptions opts;
    opts.reciprocity = reciprocity;
    Rng obs_rng(3);
    const auto obs = core::observe_directed(net, params, obs_rng, opts);
    const auto alpha_of = [](const stats::DegreeHistogram& h) {
      return fit::fit_power_law_fixed_xmin(h, 8).alpha;
    };
    const auto in_hist = obs.in_histogram();
    const auto dist =
        stats::EmpiricalDistribution::from_histogram(in_hist);
    std::printf("%12.1f %10.3f %10.3f %10.3f %10.4f\n", reciprocity,
                alpha_of(in_hist), alpha_of(obs.out_histogram()),
                alpha_of(obs.total_histogram()), dist.mass_at_one());
  }
  std::printf("(the paper's claim: same power-law story in all three "
              "columns)\n\n");
}

void experiment_weighted() {
  std::printf("--- 3. weighted edges: strength-tail exponents ---\n");
  Rng rng(4);
  const auto g = graph::zeta_degree_core(rng, 200000, 2.4, 5000);
  std::printf("%-26s %12s %12s\n", "weight law", "predicted", "measured");
  const auto run = [&](const char* name, const core::WeightModel& model) {
    Rng wrng(5);
    const auto w = core::assign_edge_weights(wrng, g, model);
    const auto strengths = core::node_strength_histogram(g, w);
    const auto fitted = fit::fit_power_law_fixed_xmin(strengths, 32);
    std::printf("%-26s %12.2f %12.2f\n", name,
                core::predicted_strength_tail_exponent(2.4, model),
                fitted.alpha);
  };
  core::WeightModel heavy;
  heavy.law = core::WeightModel::Law::kZeta;
  heavy.param = 1.7;
  run("zeta gamma=1.7 (elephants)", heavy);
  heavy.param = 3.5;
  run("zeta gamma=3.5 (light)", heavy);
  core::WeightModel geo;
  geo.law = core::WeightModel::Law::kGeometric;
  geo.param = 0.2;
  run("geometric q=0.2", geo);
  std::printf("(strength tail follows min(alpha, gamma): elephant flows "
              "flatten it)\n\n");
}

void experiment_components() {
  std::printf("--- 4. small components + isolated-node extrapolation "
              "---\n");
  const auto params = base_params();
  Rng rng(6);
  const auto net = core::generate_underlying(params, 300000, rng);
  const auto observed = core::generate_observed(net, params, rng);
  const auto sizes = core::small_component_size_histogram(observed, 12);
  const auto dist = stats::EmpiricalDistribution::from_histogram(sizes);
  std::printf("size   measured   star-theory\n");
  for (NodeId s = 2; s <= 8; ++s) {
    std::printf("%4llu   %8.5f   %11.5f\n",
                static_cast<unsigned long long>(s),
                dist.probability_at(s),
                core::star_component_size_share(params, s));
  }
  const auto h = stats::DegreeHistogram::from_degrees(observed.degrees());
  const auto fit = core::fit_palu(h);
  const auto est = core::estimate_isolated(fit, params.window);
  const double v = core::observed_composition(params).visible_mass;
  std::printf("isolated extrapolation: lambda_hat=%.2f (true %.2f); "
              "underlying isolated/visible=%.5f (true %.5f)\n\n",
              est.implied_lambda, params.lambda,
              est.underlying_isolated_per_visible,
              params.hubs * std::exp(-params.lambda) / v);
}

void experiment_crawl_vs_window() {
  std::printf("--- 5. observation bias: BFS crawl vs trunk window ---\n");
  const auto params = core::PaluParams::solve_hubs(4.0, 0.35, 0.25, 2.2,
                                                   1.0);
  Rng rng(10);
  const auto net = core::generate_underlying(params, 250000, rng);
  // Trunk view: the full observed network's degree law.
  const auto trunk_h =
      stats::DegreeHistogram::from_degrees(net.graph.degrees());
  // Crawl view: BFS over the same network with a 20% node budget.
  const auto crawl = graph::bfs_crawl(rng, net.graph, 90000);
  const auto crawl_h = graph::crawl_view_degrees(net.graph, crawl);

  const auto report = [](const char* name,
                         const stats::DegreeHistogram& h) {
    const auto dist = stats::EmpiricalDistribution::from_histogram(h);
    const auto zm = fit::fit_zipf_mandelbrot_mle(h);
    const auto s = stats::summarize(h);
    std::printf("%-14s D(1)=%.4f  mean=%.2f  gini=%.3f  zm alpha=%.3f "
                "delta=%+.3f\n",
                name, dist.mass_at_one(), s.mean, s.gini, zm.alpha,
                zm.delta);
  };
  report("trunk window", trunk_h);
  report("BFS crawl", crawl_h);
  std::printf("(crawls suppress degree-1 mass and flip the ZM offset "
              "positive — the Section II account\nof why crawl-era "
              "studies saw clean single-exponent power laws)\n\n");
}

void BM_ClusteringSummary(benchmark::State& state) {
  Rng rng(7);
  const auto g = graph::barabasi_albert(
      rng, static_cast<NodeId>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::clustering_summary(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_ClusteringSummary)->Arg(10000)->Arg(50000);

void BM_ObserveDirected(benchmark::State& state) {
  const auto params = base_params();
  Rng rng(8);
  const auto net = core::generate_underlying(
      params, static_cast<NodeId>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::observe_directed(net, params, rng));
  }
}
BENCHMARK(BM_ObserveDirected)->Arg(50000)->Arg(200000);

void BM_AssignWeights(benchmark::State& state) {
  Rng rng(9);
  const auto g = graph::zeta_degree_core(rng, 100000, 2.4, 2000);
  const core::WeightModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::assign_edge_weights(rng, g, model));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_AssignWeights);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Future-work experiments (Section VII) ===\n\n");
  experiment_clustering();
  experiment_directed();
  experiment_weighted();
  experiment_components();
  experiment_crawl_vs_window();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
