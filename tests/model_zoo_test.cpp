// Unit tests for the discrete model zoo and model selection (the paper's
// "is there a better model than Zipf–Mandelbrot?" machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/core/generator.hpp"
#include "palu/fit/model_zoo.hpp"
#include "palu/fit/zipf_mandelbrot.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/rng/xoshiro.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::fit {
namespace {

stats::DegreeHistogram zeta_sample(double alpha, Count n,
                                   std::uint64_t seed) {
  rng::BoundedZipfSampler zipf(alpha, 1u << 20);
  Rng rng(seed);
  stats::DegreeHistogram h;
  for (Count i = 0; i < n; ++i) h.add(zipf(rng));
  return h;
}

stats::DegreeHistogram geometric_sample(double q, Count n,
                                        std::uint64_t seed) {
  Rng rng(seed);
  stats::DegreeHistogram h;
  for (Count i = 0; i < n; ++i) h.add(rng::sample_geometric(rng, q));
  return h;
}

stats::DegreeHistogram lognormal_sample(double m, double s, Count n,
                                        std::uint64_t seed) {
  Rng rng(seed);
  stats::DegreeHistogram h;
  for (Count i = 0; i < n; ++i) {
    // Box–Muller normal, exponentiated and rounded up to >= 1.
    const double u1 = rng.uniform_positive();
    const double u2 = rng.uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double x = std::exp(m + s * z);
    h.add(std::max<Degree>(1, static_cast<Degree>(std::llround(x))));
  }
  return h;
}

TEST(ModelZoo, EveryFamilyNormalizes) {
  stats::DegreeHistogram h;
  for (Degree d = 1; d <= 100; ++d) h.add(d, 101 - d);
  const Degree dmax = 100;
  const auto check = [&](const DiscreteModel& model) {
    double total = 0.0;
    for (Degree d = 1; d <= dmax; ++d) total += model.pmf(d);
    EXPECT_NEAR(total, 1.0, 1e-8) << model.family();
  };
  check(*fit_zeta_model(h, dmax));
  check(*fit_zipf_mandelbrot_model(h, dmax));
  check(*fit_powerlaw_cutoff_model(h, dmax));
  check(*fit_lognormal_model(h, dmax));
  check(*fit_geometric_model(h, dmax));
}

TEST(ModelZoo, NormalizersHandleHugeSupport) {
  // dmax >> head: exercises the Simpson / Gaussian tail branches.
  stats::DegreeHistogram h;
  h.add(1, 100);
  h.add(10, 20);
  h.add(100000, 1);
  const Degree dmax = 1u << 20;
  const auto check = [&](const DiscreteModel& model) {
    // Spot-integrate: cdf-ish partial sums must stay within [0, 1].
    double total = 0.0;
    for (Degree d = 1; d <= 4096; ++d) total += model.pmf(d);
    EXPECT_GE(total, 0.0) << model.family();
    EXPECT_LE(total, 1.0 + 1e-6) << model.family();
  };
  check(*fit_zeta_model(h, dmax));
  check(*fit_powerlaw_cutoff_model(h, dmax));
  check(*fit_lognormal_model(h, dmax));
}

TEST(ModelZoo, ZetaMleMatchesPowerLawRecovery) {
  const auto h = zeta_sample(2.3, 50000, 3);
  const auto model = fit_zeta_model(h);
  EXPECT_EQ(model->family(), "zeta");
  EXPECT_NEAR(model->parameters()[0].second, 2.3, 0.05);
}

TEST(ModelZoo, GeometricMleRecoversQ) {
  const auto h = geometric_sample(0.35, 50000, 5);
  const auto model = fit_geometric_model(h);
  EXPECT_NEAR(model->parameters()[0].second, 0.35, 0.01);
}

TEST(ModelZoo, LognormalMleRecoversParameters) {
  const auto h = lognormal_sample(2.0, 0.7, 60000, 7);
  const auto model = fit_lognormal_model(h);
  const auto params = model->parameters();
  EXPECT_NEAR(params[0].second, 2.0, 0.1);   // mu
  EXPECT_NEAR(params[1].second, 0.7, 0.08);  // sigma
}

TEST(ModelZoo, CutoffModelDetectsExponentialTruncation) {
  // Sample zeta then thin the tail with e^{−βd}: the cutoff fit should
  // find a clearly positive β where pure zeta data would give ~0.
  Rng rng(11);
  rng::BoundedZipfSampler zipf(1.8, 1u << 16);
  stats::DegreeHistogram h;
  const double beta_true = 0.02;
  Count kept = 0;
  while (kept < 40000) {
    const Degree d = zipf(rng);
    if (rng.uniform() <
        std::exp(-beta_true * static_cast<double>(d))) {
      h.add(d);
      ++kept;
    }
  }
  const auto model = fit_powerlaw_cutoff_model(h);
  const auto params = model->parameters();
  EXPECT_NEAR(params[0].second, 1.8, 0.15);        // alpha
  EXPECT_NEAR(params[1].second, beta_true, 0.01);  // beta
}

TEST(ModelZoo, AicRanksTrueFamilyFirstOnZetaData) {
  const auto h = zeta_sample(2.0, 40000, 13);
  const auto ranking = fit_all_models(h);
  ASSERT_GE(ranking.size(), 4u);
  // Zeta or one of its supersets (ZM with δ≈0, cutoff with β≈0) wins; the
  // geometric must be far behind on heavy-tailed data.
  EXPECT_NE(ranking.front().family, "geometric");
  EXPECT_EQ(ranking.back().family, "geometric");
  EXPECT_DOUBLE_EQ(ranking.front().delta_aic, 0.0);
  for (const auto& entry : ranking) {
    EXPECT_GE(entry.delta_aic, 0.0);
  }
}

TEST(ModelZoo, AicPrefersGeometricFamilyOnGeometricData) {
  // powerlaw-cutoff nests the geometric (α = 0), so the two can tie within
  // χ² noise; the requirement is that the geometric shape wins decisively
  // over the genuinely different families.
  const auto h = geometric_sample(0.2, 40000, 17);
  const auto ranking = fit_all_models(h);
  double geo_delta = 1e9, zeta_delta = 0.0, zm_delta = 0.0;
  for (const auto& entry : ranking) {
    if (entry.family == "geometric") geo_delta = entry.delta_aic;
    if (entry.family == "zeta") zeta_delta = entry.delta_aic;
    if (entry.family == "zipf-mandelbrot") zm_delta = entry.delta_aic;
  }
  EXPECT_LE(geo_delta, 2.5);
  EXPECT_GT(zeta_delta, 100.0);
  // ZM is not far behind: (d+δ)^{−α} with δ → ∞ tends to e^{−αd/δ}, an
  // exponential — so ZM can mimic geometric data, unlike pure zeta.  It
  // still pays its extra parameter.
  EXPECT_GT(zm_delta, geo_delta);
}

TEST(ModelZoo, ZipfMandelbrotWinsOnShiftedData) {
  // Sample from ZM with a strong offset: pure zeta cannot express the
  // flattened head, so ZM must beat it decisively.
  Rng rng(19);
  const Degree dmax = 1u << 14;
  std::vector<double> weights(dmax);
  for (Degree d = 1; d <= dmax; ++d) {
    weights[d - 1] = std::pow(static_cast<double>(d) + 5.0, -2.0);
  }
  rng::AliasSampler sampler(weights, 1);
  stats::DegreeHistogram h;
  for (int i = 0; i < 60000; ++i) h.add(sampler(rng));

  const auto zm = fit_zipf_mandelbrot_model(h, dmax);
  const auto zeta = fit_zeta_model(h, dmax);
  EXPECT_GT(zm->log_likelihood(h), zeta->log_likelihood(h));
  EXPECT_NEAR(zm->parameters()[0].second, 2.0, 0.15);   // alpha
  EXPECT_NEAR(zm->parameters()[1].second, 5.0, 1.0);    // delta

  const auto vuong = vuong_test(*zm, *zeta, h);
  EXPECT_GT(vuong.statistic, 2.0);
  EXPECT_LT(vuong.p_two_sided, 0.05);
}

TEST(ModelZoo, VuongIsAntisymmetricAndNullOnSelf) {
  const auto h = zeta_sample(2.0, 10000, 23);
  const auto zeta = fit_zeta_model(h);
  const auto geo = fit_geometric_model(h);
  const auto ab = vuong_test(*zeta, *geo, h);
  const auto ba = vuong_test(*geo, *zeta, h);
  EXPECT_NEAR(ab.statistic, -ba.statistic, 1e-10);
  const auto self = vuong_test(*zeta, *zeta, h);
  EXPECT_DOUBLE_EQ(self.statistic, 0.0);
  EXPECT_DOUBLE_EQ(self.p_two_sided, 1.0);
}

TEST(ModelZoo, AicPenalizesExtraParameters) {
  // On true-zeta data, ZM's extra δ gains ~nothing in likelihood, so AIC
  // must rank it behind (or at most tied with) plain zeta.
  const auto h = zeta_sample(2.5, 30000, 29);
  const auto zeta = fit_zeta_model(h);
  const auto zm = fit_zipf_mandelbrot_model(h);
  EXPECT_GE(zm->log_likelihood(h), zeta->log_likelihood(h) - 1e-6);
  EXPECT_GE(zm->aic(h), zeta->aic(h) - 0.5);
}

TEST(ModelZoo, PaluMixtureNormalizes) {
  stats::DegreeHistogram h;
  for (Degree d = 1; d <= 200; ++d) h.add(d, 201 - d);
  const auto model = fit_palu_mixture_model(h, 200);
  double total = 0.0;
  for (Degree d = 1; d <= 200; ++d) total += model->pmf(d);
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_EQ(model->family(), "palu-mixture");
  EXPECT_EQ(model->num_parameters(), 4u);
}

TEST(ModelZoo, PaluMixtureBeatsZmOnPaluData) {
  // The headline question: on data generated by the PALU process, the
  // paper's own law should out-fit the empirical Zipf–Mandelbrot.
  const auto params =
      core::PaluParams::solve_hubs(6.0, 0.35, 0.25, 2.2, 0.9);
  Rng rng(31);
  const auto h = core::sample_observed_degrees(params, 250000, rng);
  const auto palu_model = fit_palu_mixture_model(h);
  const auto zm = fit_zipf_mandelbrot_model(h);
  EXPECT_GT(palu_model->log_likelihood(h), zm->log_likelihood(h));
  const auto vuong = vuong_test(*palu_model, *zm, h);
  EXPECT_GT(vuong.statistic, 2.0);
  // And its fitted μ lands near the true λ·p.
  const auto fitted = palu_model->parameters();
  double mu_hat = 0.0;
  for (const auto& [name, value] : fitted) {
    if (name == "mu") mu_hat = value;
  }
  EXPECT_NEAR(mu_hat, 6.0 * 0.9, 1.2);
}

TEST(ModelZoo, PaluMixtureDegeneratesGracefullyOnPureZeta) {
  // On pure power-law data the mixture should switch its bump weight off
  // and match zeta's likelihood (within the 3 extra parameters' slack).
  const auto h = zeta_sample(2.2, 40000, 37);
  const auto palu_model = fit_palu_mixture_model(h);
  const auto zeta = fit_zeta_model(h);
  EXPECT_GE(palu_model->log_likelihood(h),
            zeta->log_likelihood(h) - 1.0);
  const auto vuong = vuong_test(*palu_model, *zeta, h);
  EXPECT_LT(std::abs(vuong.statistic), 2.5);
}

TEST(ModelZoo, RejectsDegenerateInputs) {
  stats::DegreeHistogram empty;
  EXPECT_THROW(fit_zeta_model(empty), DataError);
  EXPECT_THROW(fit_all_models(empty), DataError);
  stats::DegreeHistogram h;
  h.add(50, 10);
  EXPECT_THROW(fit_zeta_model(h, 10), InvalidArgument);  // dmax < max d
  ModelZooOptions none;
  none.zeta = none.zipf_mandelbrot = none.powerlaw_cutoff =
      none.lognormal = none.geometric = none.palu_mixture = false;
  stats::DegreeHistogram ok;
  ok.add(1, 5);
  ok.add(2, 3);
  EXPECT_THROW(fit_all_models(ok, 0, none), InvalidArgument);
}

TEST(ModelZoo, BicPenalizesHarderThanAicAtScale) {
  const auto h = zeta_sample(2.0, 30000, 43);
  const auto zeta = fit_zeta_model(h);
  const auto zm = fit_zipf_mandelbrot_model(h);
  // Identical-likelihood nesting: the BIC gap between the 2-parameter ZM
  // and the 1-parameter zeta must exceed the AIC gap by ln(n) − 2.
  const double aic_gap = zm->aic(h) - zeta->aic(h);
  const double bic_gap = zm->bic(h) - zeta->bic(h);
  EXPECT_NEAR(bic_gap - aic_gap,
              std::log(static_cast<double>(h.total())) - 2.0, 1e-9);
}

TEST(ModelZoo, RankingCarriesBicDeltas) {
  const auto h = zeta_sample(2.4, 15000, 47);
  const auto ranking = fit_all_models(h);
  bool some_zero = false;
  for (const auto& entry : ranking) {
    EXPECT_GE(entry.delta_bic, 0.0);
    some_zero = some_zero || entry.delta_bic == 0.0;
    // ln(15000) > 2, so BIC's penalty strictly exceeds AIC's.
    EXPECT_GT(entry.bic, entry.aic);
  }
  EXPECT_TRUE(some_zero);
}

TEST(ModelZoo, ParallelRankingMatchesSequential) {
  const auto h = zeta_sample(2.1, 20000, 41);
  ThreadPool pool(3);
  const auto seq = fit_all_models(h);
  const auto par = fit_all_models_parallel(h, pool);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].family, par[i].family);
    EXPECT_DOUBLE_EQ(seq[i].aic, par[i].aic);
  }
}

TEST(ModelZoo, LogPmfRangeChecks) {
  stats::DegreeHistogram h;
  for (Degree d = 1; d <= 50; ++d) h.add(d, 51 - d);
  const auto model = fit_zeta_model(h, 50);
  EXPECT_THROW(model->log_pmf(0), InvalidArgument);
  EXPECT_THROW(model->log_pmf(51), InvalidArgument);
}

}  // namespace
}  // namespace palu::fit
