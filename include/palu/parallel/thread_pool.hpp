// A fixed-size worker pool with a blocking task queue.
//
// The pool is intentionally simple: palu's parallel workloads (per-window
// statistics, bootstrap replicates, Monte-Carlo sweeps) are embarrassingly
// parallel with coarse tasks, so a mutex-guarded queue is plenty and keeps
// the implementation auditable.  All parallelism in the library is explicit
// and routed through this type.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "palu/common/thread_annotations.hpp"

namespace palu {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers.  `num_threads == 0` selects
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers; outstanding tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `task` and returns a future for its completion.  Exceptions
  /// thrown by the task are delivered through the future.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& task) {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> fut = packaged->get_future();
    enqueue([packaged]() { (*packaged)(); });
    return fut;
  }

  /// A process-wide default pool, created on first use.  Library entry
  /// points that accept an optional pool fall back to this one.
  static ThreadPool& global();

 private:
  void enqueue(std::function<void()> fn) PALU_EXCLUDES(mutex_);
  void worker_loop() PALU_EXCLUDES(mutex_);
  void shutdown() noexcept PALU_EXCLUDES(mutex_);

  // workers_ is written only before the pool is visible to callers
  // (constructor) and read while no worker can be running (destructor),
  // so it needs no guard; everything the workers share goes under mutex_.
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::deque<std::function<void()>> queue_ PALU_GUARDED_BY(mutex_);
  std::condition_variable cv_;
  bool stopping_ PALU_GUARDED_BY(mutex_) = false;
};

}  // namespace palu
