#include "palu/io/csv.hpp"

#include <iomanip>

#include "palu/common/error.hpp"
#include "palu/io/parse.hpp"
#include "ingest_gate.hpp"

namespace palu::io {

void write_distribution_csv(std::ostream& out,
                            const stats::EmpiricalDistribution& dist) {
  out << "d,pmf,cdf\n";
  const auto& support = dist.support();
  const auto& pmf = dist.pmf();
  const auto& cdf = dist.cdf();
  const auto flags = out.flags();
  out << std::setprecision(12);
  for (std::size_t i = 0; i < support.size(); ++i) {
    out << support[i] << ',' << pmf[i] << ',' << cdf[i] << '\n';
  }
  out.flags(flags);
}

void write_pooled_csv(std::ostream& out, const stats::LogBinned& pooled,
                      std::span<const double> sigma) {
  PALU_CHECK(sigma.empty() || sigma.size() == pooled.num_bins(),
             "write_pooled_csv: sigma size mismatch");
  out << (sigma.empty() ? "bin,d_i,mass\n" : "bin,d_i,mass,sigma\n");
  const auto flags = out.flags();
  out << std::setprecision(12);
  for (std::size_t i = 0; i < pooled.num_bins(); ++i) {
    out << i << ','
        << stats::LogBinned::bin_upper(static_cast<std::uint32_t>(i))
        << ',' << pooled[i];
    if (!sigma.empty()) out << ',' << sigma[i];
    out << '\n';
  }
  out.flags(flags);
}

void write_model_comparison_csv(
    std::ostream& out, std::span<const fit::ModelComparison> ranking) {
  out << "family,log_likelihood,aic,delta_aic,bic,delta_bic,parameters\n";
  const auto flags = out.flags();
  out << std::setprecision(10);
  for (const auto& entry : ranking) {
    out << entry.family << ',' << entry.log_likelihood << ',' << entry.aic
        << ',' << entry.delta_aic << ',' << entry.bic << ','
        << entry.delta_bic << ',';
    bool first = true;
    for (const auto& [name, value] : entry.parameters) {
      if (!first) out << ';';
      out << name << '=' << value;
      first = false;
    }
    out << '\n';
  }
  out.flags(flags);
}

void write_panel_csv(std::ostream& out, std::span<const double> measured,
                     std::span<const double> sigma,
                     const stats::LogBinned& model) {
  PALU_CHECK(sigma.size() == measured.size(),
             "write_panel_csv: sigma size mismatch");
  out << "bin,d_i,measured,sigma,model\n";
  const auto flags = out.flags();
  out << std::setprecision(12);
  const std::size_t rows = std::max(measured.size(), model.num_bins());
  for (std::size_t i = 0; i < rows; ++i) {
    out << i << ','
        << stats::LogBinned::bin_upper(static_cast<std::uint32_t>(i))
        << ',' << (i < measured.size() ? measured[i] : 0.0) << ','
        << (i < sigma.size() ? sigma[i] : 0.0) << ','
        << (i < model.num_bins() ? model[i] : 0.0) << '\n';
  }
  out.flags(flags);
}

void write_histogram_csv(std::ostream& out,
                         const stats::DegreeHistogram& h) {
  out << "d,count\n";
  for (const auto& [d, c] : h.sorted()) {
    out << d << ',' << c << '\n';
  }
}

namespace {

/// Parses one "d,count" row; failures name the offending token.
Result<std::pair<Degree, Count>> parse_histogram_row(
    const std::string& body) {
  using Row = std::pair<Degree, Count>;
  const std::size_t comma = body.find(',');
  if (comma == std::string::npos || comma == 0 ||
      comma + 1 >= body.size()) {
    return Result<Row>::failure("expected 'd,count'");
  }
  const auto d = parse_u64(body.substr(0, comma));
  if (!d.ok()) return Result<Row>::failure(d.error());
  const auto c = parse_u64(body.substr(comma + 1));
  if (!c.ok()) return Result<Row>::failure(c.error());
  return Row{d.value(), c.value()};
}

}  // namespace

HistogramReadResult read_histogram_csv(std::istream& in,
                                       const IngestOptions& opts) {
  HistogramReadResult out;
  detail::IngestGate gate("read_histogram_csv", opts, out.report);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Trim CR and surrounding spaces.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    std::size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    const std::string body = line.substr(start);
    if (body.empty() || body.front() == '#') continue;
    if (line_number == 1 && body == "d,count") continue;
    ++out.report.lines_read;
    const auto row = parse_histogram_row(body);
    if (row.ok()) {
      gate.kept();
      out.histogram.add(row.value().first, row.value().second);
      continue;
    }
    if (opts.policy == ErrorPolicy::kRepair) {
      const auto salvaged = detail::salvage_u64(body, 2);
      if (salvaged.size() == 2) {
        gate.repaired(line_number, row.error(), line);
        out.histogram.add(salvaged[0], salvaged[1]);
        continue;
      }
    }
    gate.drop(line_number, row.error(), line);
  }
  return out;
}

stats::DegreeHistogram read_histogram_csv(std::istream& in) {
  return read_histogram_csv(in, IngestOptions{}).histogram;
}

}  // namespace palu::io
