# Empty dependencies file for sampling_models_test.
# This may be replaced when dependencies are built.
