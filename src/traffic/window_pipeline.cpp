#include "palu/traffic/window_pipeline.hpp"

// palu-lint: allow-file(determinism) -- steady_clock reads here feed the
// SweepStageTimings diagnostics and the wall-clock timeout; no analysis
// result (histograms, ensembles, d_max) ever depends on the clock.

#include <algorithm>
#include <chrono>
#include <optional>
#include <vector>

#include "palu/common/failpoint.hpp"
#include "palu/parallel/parallel_for.hpp"
#include "palu/parallel/scratch_pool.hpp"
#include "palu/traffic/window_accumulator.hpp"

namespace palu::traffic {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

/// Per-worker sweep scratch: one generator (edges + alias tables built
/// once, reseeded per window), one arena-reused accumulator, one packet
/// batch buffer.  Leased from a ScratchPool so whatever worker picks up a
/// chunk reuses an existing arena instead of rebuilding per window.
struct SweepScratch {
  SyntheticTrafficGenerator gen;
  WindowAccumulator acc;
  std::vector<Packet> buf;
};

constexpr std::size_t kPacketBatch = 8192;

stats::DegreeHistogram run_window_fast(SweepScratch& scratch, Count n_valid,
                                       Quantity quantity,
                                       SweepStageTimings& timings) {
  scratch.acc.begin_window();
  if (scratch.buf.size() < kPacketBatch) scratch.buf.resize(kPacketBatch);
  Count left = n_valid;
  while (left > 0) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<Count>(left, kPacketBatch));
    const auto t0 = Clock::now();
    scratch.gen.next_batch(std::span<Packet>(scratch.buf.data(), n));
    const auto t1 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      scratch.acc.add(scratch.buf[i].src, scratch.buf[i].dst);
    }
    const auto t2 = Clock::now();
    timings.sampling_ns += ns_between(t0, t1);
    timings.accumulation_ns += ns_between(t1, t2);
    left -= n;
  }
  const auto t0 = Clock::now();
  stats::DegreeHistogram h = scratch.acc.histogram(quantity);
  timings.binning_ns += ns_between(t0, Clock::now());
  return h;
}

}  // namespace

WindowSweepResult sweep_windows(const graph::Graph& underlying,
                                const RateModel& rates, Count n_valid,
                                std::size_t num_windows, Quantity quantity,
                                std::uint64_t seed, ThreadPool& pool,
                                const SweepOptions& opts) {
  PALU_CHECK(num_windows >= 1, "sweep_windows: need at least one window");
  PALU_CHECK(n_valid >= 1, "sweep_windows: need at least one packet");

  // Per-window slots: exactly one of histogram / error is set afterwards;
  // neither set means the window was skipped (cancellation or timeout).
  //
  // Thread-safety invariant (checked by tsan_stress_test): each worker
  // writes only the slots for its own window indices, and the reduce loop
  // below reads them only after parallel_for has joined every chunk's
  // future, which establishes the necessary happens-before.  These vectors
  // therefore need no mutex; all cross-window signalling goes through the
  // atomics beneath them.
  std::vector<std::optional<stats::DegreeHistogram>> histograms(
      num_windows);
  std::vector<std::optional<std::string>> errors(num_windows);
  std::atomic<bool> stop_new_windows{false};

  const bool has_deadline = opts.timeout.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + opts.timeout;
  const auto should_stop = [&]() {
    if (stop_new_windows.load(std::memory_order_relaxed)) return true;
    if (opts.cancel != nullptr &&
        opts.cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  };

  const Rng base(seed);
  // One shared traffic matrix: every window sees the same long-term
  // per-edge rates; only the packet draws differ between windows.
  const std::vector<double> shared_rates =
      make_edge_rates(underlying, rates, base.fork(0));

  // Fast path: per-worker scratch slots; each slot pays the edge copy and
  // alias-table build once and is reseeded per window, versus the legacy
  // path's per-window generator construction.
  std::optional<ScratchPool<SweepScratch>> scratch;
  if (opts.fast_path) {
    scratch.emplace([&underlying, &shared_rates]() {
      return std::make_unique<SweepScratch>(SweepScratch{
          SyntheticTrafficGenerator(underlying, shared_rates, Rng(0)),
          WindowAccumulator{},
          {}});
    });
  }

  std::atomic<std::uint64_t> sampling_ns{0};
  std::atomic<std::uint64_t> accumulation_ns{0};
  std::atomic<std::uint64_t> binning_ns{0};

  parallel_for(pool, 0, num_windows, /*grain=*/1, [&](IndexRange range) {
    SweepStageTimings local;
    std::optional<ScratchPool<SweepScratch>::Lease> lease;
    if (opts.fast_path) lease.emplace(scratch->acquire());
    for (std::size_t t = range.begin; t < range.end; ++t) {
      if (should_stop()) break;  // leave the remaining slots unset
      try {
        PALU_FAILPOINT("traffic.sweep_window");
        if (opts.fast_path) {
          (*lease)->gen.reseed(base.fork(t + 1));
          histograms[t] =
              run_window_fast(**lease, n_valid, quantity, local);
        } else {
          SyntheticTrafficGenerator stream(underlying, shared_rates,
                                           base.fork(t + 1));
          const auto t0 = Clock::now();
          const SparseCountMatrix window = stream.window(n_valid);
          const auto t1 = Clock::now();
          histograms[t] = quantity_histogram(window, quantity);
          local.sampling_ns += ns_between(t0, t1);
          local.binning_ns += ns_between(t1, Clock::now());
        }
      } catch (const std::exception& e) {
        errors[t] = e.what();
        if (opts.max_failed_windows == 0) {
          // Strict mode: no point producing more windows for a sweep
          // that is already lost.
          stop_new_windows.store(true, std::memory_order_relaxed);
        }
      }
    }
    sampling_ns.fetch_add(local.sampling_ns, std::memory_order_relaxed);
    accumulation_ns.fetch_add(local.accumulation_ns,
                              std::memory_order_relaxed);
    binning_ns.fetch_add(local.binning_ns, std::memory_order_relaxed);
  });

  WindowSweepResult out;
  const auto reduce_start = Clock::now();
  for (std::size_t t = 0; t < num_windows; ++t) {
    if (errors[t]) {
      if (opts.max_failed_windows == 0) {
        throw SweepWindowError(t, *errors[t]);
      }
      out.failures.push_back(WindowFailure{t, std::move(*errors[t])});
      continue;
    }
    if (!histograms[t]) {
      ++out.windows_skipped;
      continue;
    }
    const stats::DegreeHistogram& h = *histograms[t];
    out.max_value = std::max(out.max_value, h.max_degree());
    out.ensemble.add(stats::LogBinned::from_histogram(h));
    out.merged.merge(h);
    ++out.windows;
  }
  out.cancelled = out.windows_skipped > 0;
  if (out.failures.size() > opts.max_failed_windows) {
    const WindowFailure& first = out.failures.front();
    throw SweepWindowError(
        first.window,
        first.error + " (" + std::to_string(out.failures.size()) +
            " windows failed, budget " +
            std::to_string(opts.max_failed_windows) + ")");
  }
  out.timings.sampling_ns = sampling_ns.load(std::memory_order_relaxed);
  out.timings.accumulation_ns =
      accumulation_ns.load(std::memory_order_relaxed);
  out.timings.binning_ns = binning_ns.load(std::memory_order_relaxed) +
                           ns_between(reduce_start, Clock::now());
  return out;
}

WindowSweepResult sweep_windows(const graph::Graph& underlying,
                                const RateModel& rates, Count n_valid,
                                std::size_t num_windows, Quantity quantity,
                                std::uint64_t seed, ThreadPool& pool) {
  return sweep_windows(underlying, rates, n_valid, num_windows, quantity,
                       seed, pool, SweepOptions{});
}

}  // namespace palu::traffic
