#include "palu/fit/model_zoo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <tuple>

#include "palu/common/error.hpp"
#include "palu/fit/brent.hpp"
#include "palu/fit/nelder_mead.hpp"
#include "palu/math/gamma.hpp"
#include "palu/math/zeta.hpp"

namespace palu::fit {
namespace {

Degree resolve_dmax(const stats::DegreeHistogram& h, Degree dmax) {
  if (h.empty() || h.max_degree() == 0) {
    throw DataError("model zoo: empty histogram");
  }
  const Degree measured = h.max_degree();
  if (dmax == 0) return measured;
  PALU_CHECK(dmax >= measured,
             "model zoo: dmax smaller than the observed maximum");
  return dmax;
}

// Σ_{d=1}^{dmax} d^{−α}·e^{−βd}, exact head + log-substituted Simpson tail.
double cutoff_normalizer(double alpha, double beta, Degree dmax) {
  constexpr Degree kHead = 4096;
  double acc = 0.0;
  const Degree head_end = std::min<Degree>(dmax, kHead);
  for (Degree d = 1; d <= head_end; ++d) {
    acc += std::exp(-alpha * std::log(static_cast<double>(d)) -
                    beta * static_cast<double>(d));
  }
  if (dmax <= kHead) return acc;
  if (beta * static_cast<double>(kHead) > 45.0) return acc;  // dead tail
  // ∫ x^{−α} e^{−βx} dx over [kHead + 0.5, dmax + 0.5], t = ln x.
  const double t_lo = std::log(static_cast<double>(kHead) + 0.5);
  const double t_hi = std::log(static_cast<double>(dmax) + 0.5);
  constexpr int kPanels = 512;  // even
  const double step = (t_hi - t_lo) / kPanels;
  const auto f = [&](double t) {
    const double x = std::exp(t);
    return std::exp(t * (1.0 - alpha) - beta * x);
  };
  double integral = f(t_lo) + f(t_hi);
  for (int i = 1; i < kPanels; ++i) {
    integral += f(t_lo + step * i) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  integral *= step / 3.0;
  return acc + integral;
}

// Σ_{d=1}^{dmax} exp(−(ln d − m)² / 2s²)/d, exact head + Gaussian tail.
double lognormal_normalizer(double m, double s, Degree dmax) {
  constexpr Degree kHead = 4096;
  double acc = 0.0;
  const Degree head_end = std::min<Degree>(dmax, kHead);
  for (Degree d = 1; d <= head_end; ++d) {
    const double z = (std::log(static_cast<double>(d)) - m) / s;
    acc += std::exp(-0.5 * z * z) / static_cast<double>(d);
  }
  if (dmax <= kHead) return acc;
  // ∫ exp(−(ln x − m)²/2s²)/x dx = s·√(2π)·[Φ(z_hi) − Φ(z_lo)].
  const double z_lo =
      (std::log(static_cast<double>(kHead) + 0.5) - m) / s;
  const double z_hi =
      (std::log(static_cast<double>(dmax) + 0.5) - m) / s;
  const double phi_diff =
      0.5 * (std::erfc(z_lo / std::numbers::sqrt2) -
             std::erfc(z_hi / std::numbers::sqrt2));
  return acc + s * std::sqrt(2.0 * std::numbers::pi) * phi_diff;
}

// ------------------------------------------------------------- families

class ZetaModel final : public DiscreteModel {
 public:
  ZetaModel(double alpha, Degree dmax)
      : alpha_(alpha),
        dmax_(dmax),
        log_z_(std::log(math::truncated_zeta(alpha, dmax))) {}

  std::string_view family() const override { return "zeta"; }
  std::size_t num_parameters() const override { return 1; }
  std::vector<std::pair<std::string, double>> parameters() const override {
    return {{"alpha", alpha_}};
  }
  double log_pmf(Degree d) const override {
    PALU_CHECK(d >= 1 && d <= dmax_, "zeta: d out of range");
    return -alpha_ * std::log(static_cast<double>(d)) - log_z_;
  }

 private:
  double alpha_;
  Degree dmax_;
  double log_z_;
};

class ZipfMandelbrotModel final : public DiscreteModel {
 public:
  ZipfMandelbrotModel(double alpha, double delta, Degree dmax)
      : alpha_(alpha),
        delta_(delta),
        dmax_(dmax),
        log_z_(std::log(
            math::shifted_truncated_zeta(alpha, delta, dmax))) {}

  std::string_view family() const override { return "zipf-mandelbrot"; }
  std::size_t num_parameters() const override { return 2; }
  std::vector<std::pair<std::string, double>> parameters() const override {
    return {{"alpha", alpha_}, {"delta", delta_}};
  }
  double log_pmf(Degree d) const override {
    PALU_CHECK(d >= 1 && d <= dmax_, "zipf-mandelbrot: d out of range");
    return -alpha_ * std::log(static_cast<double>(d) + delta_) - log_z_;
  }

 private:
  double alpha_;
  double delta_;
  Degree dmax_;
  double log_z_;
};

class PowerLawCutoffModel final : public DiscreteModel {
 public:
  PowerLawCutoffModel(double alpha, double beta, Degree dmax)
      : alpha_(alpha),
        beta_(beta),
        dmax_(dmax),
        log_z_(std::log(cutoff_normalizer(alpha, beta, dmax))) {}

  std::string_view family() const override { return "powerlaw-cutoff"; }
  std::size_t num_parameters() const override { return 2; }
  std::vector<std::pair<std::string, double>> parameters() const override {
    return {{"alpha", alpha_}, {"beta", beta_}};
  }
  double log_pmf(Degree d) const override {
    PALU_CHECK(d >= 1 && d <= dmax_, "powerlaw-cutoff: d out of range");
    return -alpha_ * std::log(static_cast<double>(d)) -
           beta_ * static_cast<double>(d) - log_z_;
  }

 private:
  double alpha_;
  double beta_;
  Degree dmax_;
  double log_z_;
};

class LognormalModel final : public DiscreteModel {
 public:
  LognormalModel(double m, double s, Degree dmax)
      : m_(m),
        s_(s),
        dmax_(dmax),
        log_z_(std::log(lognormal_normalizer(m, s, dmax))) {}

  std::string_view family() const override { return "lognormal"; }
  std::size_t num_parameters() const override { return 2; }
  std::vector<std::pair<std::string, double>> parameters() const override {
    return {{"mu", m_}, {"sigma", s_}};
  }
  double log_pmf(Degree d) const override {
    PALU_CHECK(d >= 1 && d <= dmax_, "lognormal: d out of range");
    const double ld = std::log(static_cast<double>(d));
    const double z = (ld - m_) / s_;
    return -0.5 * z * z - ld - log_z_;
  }

 private:
  double m_;
  double s_;
  Degree dmax_;
  double log_z_;
};

class GeometricModel final : public DiscreteModel {
 public:
  GeometricModel(double q, Degree dmax)
      : q_(q),
        dmax_(dmax),
        // Σ_{d=1}^{dmax} (1−q)^{d−1} = (1 − (1−q)^{dmax}) / q.
        log_z_(std::log(-std::expm1(static_cast<double>(dmax) *
                                    std::log1p(-q))) -
               std::log(q)) {}

  std::string_view family() const override { return "geometric"; }
  std::size_t num_parameters() const override { return 1; }
  std::vector<std::pair<std::string, double>> parameters() const override {
    return {{"q", q_}};
  }
  double log_pmf(Degree d) const override {
    PALU_CHECK(d >= 1 && d <= dmax_, "geometric: d out of range");
    return static_cast<double>(d - 1) * std::log1p(-q_) - log_z_;
  }

 private:
  double q_;
  Degree dmax_;
  double log_z_;
};

class PaluMixtureModel final : public DiscreteModel {
 public:
  /// Weights must lie on the simplex; α > 0; μ > 0.
  PaluMixtureModel(double w_atom, double w_zeta, double w_poisson,
                   double alpha, double mu, Degree dmax)
      : w_atom_(w_atom),
        w_zeta_(w_zeta),
        w_poisson_(w_poisson),
        alpha_(alpha),
        mu_(mu),
        dmax_(dmax),
        zeta_norm_(math::truncated_zeta(alpha, dmax)) {
    // Poisson conditioned on 2 <= d <= dmax.
    double mass = 0.0;
    for (Degree d = 2; d <= dmax; ++d) {
      const double term = math::poisson_pmf(d, mu);
      mass += term;
      if (static_cast<double>(d) > mu && term < 1e-18) break;
    }
    poisson_norm_ = mass;
  }

  std::string_view family() const override { return "palu-mixture"; }
  std::size_t num_parameters() const override { return 4; }
  std::vector<std::pair<std::string, double>> parameters() const override {
    return {{"w_atom", w_atom_},
            {"w_zeta", w_zeta_},
            {"w_poisson", w_poisson_},
            {"alpha", alpha_},
            {"mu", mu_}};
  }
  double log_pmf(Degree d) const override {
    PALU_CHECK(d >= 1 && d <= dmax_, "palu-mixture: d out of range");
    double p = w_zeta_ * std::pow(static_cast<double>(d), -alpha_) /
               zeta_norm_;
    if (d == 1) {
      p += w_atom_;
    } else if (poisson_norm_ > 0.0) {
      p += w_poisson_ * math::poisson_pmf(d, mu_) / poisson_norm_;
    }
    return std::log(p);
  }

 private:
  double w_atom_;
  double w_zeta_;
  double w_poisson_;
  double alpha_;
  double mu_;
  Degree dmax_;
  double zeta_norm_;
  double poisson_norm_;
};

// Negative log-likelihood of a candidate model-builder over the histogram.
template <typename Build>
double nll_of(const stats::DegreeHistogram& h, Build&& build) {
  double acc = 0.0;
  std::unique_ptr<DiscreteModel> model;
  try {
    model = build();
  } catch (const Error&) {
    return std::numeric_limits<double>::infinity();
  }
  for (const auto& [d, count] : h.sorted()) {
    if (d == 0) continue;
    const double lp = model->log_pmf(d);
    if (!std::isfinite(lp)) {
      return std::numeric_limits<double>::infinity();
    }
    acc -= static_cast<double>(count) * lp;
  }
  return acc;
}

}  // namespace

double DiscreteModel::pmf(Degree d) const { return std::exp(log_pmf(d)); }

double DiscreteModel::log_likelihood(
    const stats::DegreeHistogram& h) const {
  double acc = 0.0;
  for (const auto& [d, count] : h.sorted()) {
    if (d == 0) continue;
    acc += static_cast<double>(count) * log_pmf(d);
  }
  return acc;
}

double DiscreteModel::aic(const stats::DegreeHistogram& h) const {
  return 2.0 * static_cast<double>(num_parameters()) -
         2.0 * log_likelihood(h);
}

double DiscreteModel::bic(const stats::DegreeHistogram& h) const {
  PALU_CHECK(h.total() > 0, "DiscreteModel::bic: empty histogram");
  return static_cast<double>(num_parameters()) *
             std::log(static_cast<double>(h.total())) -
         2.0 * log_likelihood(h);
}

std::unique_ptr<DiscreteModel> fit_zeta_model(
    const stats::DegreeHistogram& h, Degree dmax) {
  const Degree top = resolve_dmax(h, dmax);
  const auto nll = [&](double alpha) {
    return nll_of(h,
                  [&]() { return std::make_unique<ZetaModel>(alpha, top); });
  };
  const double alpha = brent_minimize(nll, 0.05, 30.0);
  return std::make_unique<ZetaModel>(alpha, top);
}

std::unique_ptr<DiscreteModel> fit_zipf_mandelbrot_model(
    const stats::DegreeHistogram& h, Degree dmax) {
  const Degree top = resolve_dmax(h, dmax);
  const auto objective = [&](const std::vector<double>& theta) {
    const double alpha = std::exp(theta[0]);
    const double delta = std::expm1(theta[1]);
    if (alpha < 0.05 || alpha > 40.0 || delta <= -1.0 + 1e-12 ||
        delta > 1e6) {
      return std::numeric_limits<double>::infinity();
    }
    return nll_of(h, [&]() {
      return std::make_unique<ZipfMandelbrotModel>(alpha, delta, top);
    });
  };
  const auto sol =
      nelder_mead(objective, {std::log(2.0), std::log1p(0.5)});
  return std::make_unique<ZipfMandelbrotModel>(
      std::exp(sol.x[0]), std::expm1(sol.x[1]), top);
}

std::unique_ptr<DiscreteModel> fit_powerlaw_cutoff_model(
    const stats::DegreeHistogram& h, Degree dmax) {
  const Degree top = resolve_dmax(h, dmax);
  const auto objective = [&](const std::vector<double>& theta) {
    const double alpha = theta[0];
    const double beta = std::exp(theta[1]);
    if (std::abs(alpha) > 30.0 || beta > 10.0 || beta < 1e-12) {
      return std::numeric_limits<double>::infinity();
    }
    return nll_of(h, [&]() {
      return std::make_unique<PowerLawCutoffModel>(alpha, beta, top);
    });
  };
  const auto sol = nelder_mead(objective, {2.0, std::log(1e-3)});
  return std::make_unique<PowerLawCutoffModel>(
      sol.x[0], std::exp(sol.x[1]), top);
}

std::unique_ptr<DiscreteModel> fit_lognormal_model(
    const stats::DegreeHistogram& h, Degree dmax) {
  const Degree top = resolve_dmax(h, dmax);
  const auto objective = [&](const std::vector<double>& theta) {
    const double m = theta[0];
    const double s = std::exp(theta[1]);
    if (std::abs(m) > 60.0 || s < 1e-4 || s > 50.0) {
      return std::numeric_limits<double>::infinity();
    }
    return nll_of(h, [&]() {
      return std::make_unique<LognormalModel>(m, s, top);
    });
  };
  const auto sol = nelder_mead(objective, {0.0, std::log(1.5)});
  return std::make_unique<LognormalModel>(sol.x[0], std::exp(sol.x[1]),
                                          top);
}

std::unique_ptr<DiscreteModel> fit_geometric_model(
    const stats::DegreeHistogram& h, Degree dmax) {
  const Degree top = resolve_dmax(h, dmax);
  const auto nll = [&](double logit_q) {
    const double q = 1.0 / (1.0 + std::exp(-logit_q));
    return nll_of(
        h, [&]() { return std::make_unique<GeometricModel>(q, top); });
  };
  const double logit = brent_minimize(nll, -25.0, 25.0);
  return std::make_unique<GeometricModel>(
      1.0 / (1.0 + std::exp(-logit)), top);
}

std::unique_ptr<DiscreteModel> fit_palu_mixture_model(
    const stats::DegreeHistogram& h, Degree dmax) {
  const Degree top = resolve_dmax(h, dmax);
  // θ = (ln α, ln μ, a_atom, a_poisson); weights via softmax against the
  // zeta component's fixed logit 0.
  const auto unpack = [&](const std::vector<double>& theta) {
    const double alpha = std::exp(theta[0]);
    const double mu = std::exp(theta[1]);
    const double e_atom = std::exp(theta[2]);
    const double e_po = std::exp(theta[3]);
    const double z = 1.0 + e_atom + e_po;
    return std::tuple<double, double, double, double, double>(
        e_atom / z, 1.0 / z, e_po / z, alpha, mu);
  };
  const auto objective = [&](const std::vector<double>& theta) {
    const auto [wa, wz, wp, alpha, mu] = unpack(theta);
    if (alpha < 0.05 || alpha > 40.0 || mu < 1e-3 || mu > 100.0 ||
        std::abs(theta[2]) > 30.0 || std::abs(theta[3]) > 30.0) {
      return std::numeric_limits<double>::infinity();
    }
    return nll_of(h, [&]() {
      return std::make_unique<PaluMixtureModel>(wa, wz, wp, alpha, mu,
                                                top);
    });
  };
  NelderMeadOptions nm;
  nm.max_iterations = 4000;
  nm.restarts = 2;
  // Seed the bump near the empirical mean degree so the optimizer starts
  // with a plausible Poisson location.
  double mean = 2.0;
  if (h.total() > 0) {
    mean = static_cast<double>(h.weighted_total()) /
           static_cast<double>(h.total());
  }
  const auto sol = nelder_mead(
      objective,
      {std::log(2.0), std::log(std::max(1.5, mean)), std::log(0.5),
       std::log(0.2)},
      nm);
  const auto [wa, wz, wp, alpha, mu] = unpack(sol.x);
  return std::make_unique<PaluMixtureModel>(wa, wz, wp, alpha, mu, top);
}

namespace {

using FamilyFitter = std::unique_ptr<DiscreteModel> (*)(
    const stats::DegreeHistogram&, Degree);

std::vector<FamilyFitter> enabled_fitters(const ModelZooOptions& opts) {
  std::vector<FamilyFitter> fitters;
  if (opts.zeta) fitters.push_back(&fit_zeta_model);
  if (opts.zipf_mandelbrot) fitters.push_back(&fit_zipf_mandelbrot_model);
  if (opts.powerlaw_cutoff) fitters.push_back(&fit_powerlaw_cutoff_model);
  if (opts.lognormal) fitters.push_back(&fit_lognormal_model);
  if (opts.geometric) fitters.push_back(&fit_geometric_model);
  if (opts.palu_mixture) fitters.push_back(&fit_palu_mixture_model);
  PALU_CHECK(!fitters.empty(), "fit_all_models: no family enabled");
  return fitters;
}

std::vector<ModelComparison> rank_models(
    const std::vector<std::unique_ptr<DiscreteModel>>& models,
    const stats::DegreeHistogram& h) {
  std::vector<ModelComparison> out;
  out.reserve(models.size());
  for (const auto& model : models) {
    ModelComparison entry;
    entry.family = std::string(model->family());
    entry.parameters = model->parameters();
    entry.log_likelihood = model->log_likelihood(h);
    entry.aic = model->aic(h);
    entry.bic = model->bic(h);
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const ModelComparison& a, const ModelComparison& b) {
              return a.aic < b.aic;
            });
  const double best_bic =
      std::min_element(out.begin(), out.end(),
                       [](const ModelComparison& a,
                          const ModelComparison& b) {
                         return a.bic < b.bic;
                       })
          ->bic;
  for (auto& entry : out) {
    entry.delta_aic = entry.aic - out.front().aic;
    entry.delta_bic = entry.bic - best_bic;
  }
  return out;
}

}  // namespace

std::vector<ModelComparison> fit_all_models(
    const stats::DegreeHistogram& h, Degree dmax,
    const ModelZooOptions& opts) {
  const auto fitters = enabled_fitters(opts);
  std::vector<std::unique_ptr<DiscreteModel>> models;
  models.reserve(fitters.size());
  for (const FamilyFitter fitter : fitters) {
    models.push_back(fitter(h, dmax));
  }
  return rank_models(models, h);
}

std::vector<ModelComparison> fit_all_models_parallel(
    const stats::DegreeHistogram& h, ThreadPool& pool, Degree dmax,
    const ModelZooOptions& opts) {
  const auto fitters = enabled_fitters(opts);
  std::vector<std::future<std::unique_ptr<DiscreteModel>>> futures;
  futures.reserve(fitters.size());
  for (const FamilyFitter fitter : fitters) {
    futures.push_back(
        pool.submit([fitter, &h, dmax]() { return fitter(h, dmax); }));
  }
  std::vector<std::unique_ptr<DiscreteModel>> models;
  models.reserve(futures.size());
  for (auto& f : futures) models.push_back(f.get());
  return rank_models(models, h);
}

VuongResult vuong_test(const DiscreteModel& a, const DiscreteModel& b,
                       const stats::DegreeHistogram& h) {
  double n = 0.0, mean = 0.0, m2 = 0.0;
  for (const auto& [d, count] : h.sorted()) {
    if (d == 0) continue;
    const double diff = a.log_pmf(d) - b.log_pmf(d);
    // Welford over `count` identical observations.
    const double cd = static_cast<double>(count);
    const double delta = diff - mean;
    n += cd;
    mean += delta * cd / n;
    m2 += cd * delta * (diff - mean);
  }
  PALU_CHECK(n >= 2.0, "vuong_test: needs at least 2 observations");
  const double var = m2 / n;
  VuongResult out;
  if (var <= 0.0) {
    // Identical pointwise likelihoods: no discrimination.
    out.statistic = 0.0;
    out.p_two_sided = 1.0;
    return out;
  }
  out.statistic = std::sqrt(n) * mean / std::sqrt(var);
  out.p_two_sided =
      std::erfc(std::abs(out.statistic) / std::numbers::sqrt2);
  return out;
}

}  // namespace palu::fit
