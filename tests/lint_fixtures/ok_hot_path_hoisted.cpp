// Fixture: the compliant shape — the name-lookup is hoisted out of the
// loop and only the returned handle records inside it.  The
// acc.histogram(x) call is a handle-style recording (its argument is a
// quantity, not a metric name) and must not fire.
// palu-lint-expect-clean
#include <vector>

#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"

struct Acc {
  void histogram(long v);
};

void pump(palu::obs::Registry& registry, Acc& acc,
          const std::vector<long>& xs) {
  palu::obs::Counter& runs = registry.counter(palu::obs::names::kSweepRuns);
  for (long x : xs) {
    runs.inc();
    acc.histogram(x);
  }
}
