// Minimal declarative command-line parser for the palu tool.
//
// Supports `--name value`, `--name=value`, and bare flags, with typed
// accessors and defaults.  Kept tiny on purpose — just enough for the
// `palu_tool` subcommands — but fully tested so tool behaviour is pinned.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace palu::cli {

class Args {
 public:
  /// Parses `argv[begin..argc)`; throws palu::InvalidArgument on an
  /// option with no value or an argument that is not an option.
  static Args parse(int argc, const char* const* argv, int begin = 1);

  bool has(const std::string& name) const;

  /// Typed lookups with defaults; throw palu::InvalidArgument when the
  /// value does not parse.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_flag(const std::string& name) const;

  /// Names seen on the command line (for unknown-option diagnostics).
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::optional<std::string>> values_;
};

}  // namespace palu::cli
