// Sweep-throughput benchmark: legacy vs. fast vs. counts synthesis, with
// a JSON artifact so the perf trajectory is tracked from PR 2 onward.
//
// Timing TU (tools/timing_files.txt): steady_clock reads time the paths;
// the sweeps themselves are seed-driven and stay reproducible.
//
// Runs the same Monte-Carlo window sweep four ways — the legacy
// per-window SparseCountMatrix path, the WindowAccumulator fast path, the
// count-space Multinomial path, and store replay (capture the counts
// ensemble once, then re-drive the sweep from decoded blocks) — verifies
// that legacy and fast merged
// histograms are identical (they share RNG consumption) and that a
// count-space window conserves packet mass exactly, then writes
// BENCH_sweep.json:
//
//   {
//     "bench": "sweep",
//     "config": {"windows", "nvalid", "nodes", "edges", "quantity",
//                "seed", "pool_threads"},
//     "legacy": {"seconds", "packets_per_sec",
//                "timings_cpu_ns": {"sampling", "accumulation", "binning"},
//                "timings_max_ns": {... slowest worker ...},
//                "metrics": {... obs registry snapshot for the run ...}},
//     "fast":   {... same shape ...},
//     "counts": {... same shape ...},
//     "speedup": fast.packets_per_sec / legacy.packets_per_sec,
//     "speedup_counts_vs_fast": counts pps / fast pps,
//     "speedup_counts_vs_legacy": counts pps / legacy pps,
//     "identical": true|false,           // legacy vs fast only
//     "counts_mass_conserved": true|false,
//     "scaling": {"windows", "points": [{"nvalid", "seconds_per_window"}],
//                 "ratios": [per-decade cost growth of the counts path]},
//     "shards": {"identical": true|false,   // every K byte-identical to K=1
//                "points": [{"shards", "seconds"}]},  // intra-window axis
//     "expected": {"points": [{"nvalid", "seconds_per_eval"}],
//                  "ratios": [...],   // flat ⇒ analytic cost is N_V-free
//                  "counts_sweep_seconds_over_expected_eval": X},
//     "replay": {... same shape as legacy/fast/counts ...},
//     "replay_store": {"windows", "records", "payload_bytes", "file_bytes",
//                      "payload_bytes_per_record", "bytes_per_window",
//                      "capture_seconds"},
//     "speedup_synthesis_vs_replay_per_window": X,  // stage cost replaced
//     "speedup_replay_vs_counts": X,   // whole-sweep wall ratio
//     "replay_identical": true|false   // replay (shards 1 and 4) vs capture
//   }
//
// Each run records into its own obs::Registry, so the metrics block is
// per-run (not cumulative across paths).  The counts path consumes RNG
// differently, so it is held to distributional equivalence (tested in
// sweep_counts_test) plus the exact mass check here, not byte identity.
//
// Default config is the acceptance workload (64 windows × 1e6 packets);
// `--smoke` shrinks it to seconds so ctest can keep the binary honest,
// `--counts-only` skips the slow packet paths (the counts smoke ctest),
// `--expected-only` runs just the analytic expectation axis (the
// expected smoke ctest), and `--replay-only` runs just the capture →
// replay axis (the replay smoke ctest).  Exit code is non-zero on any
// check failure.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "palu/cli/args.hpp"
#include "palu/palu.hpp"

namespace {

using namespace palu;

enum class Path { kLegacy, kFast, kCounts, kExpected };

struct RunResult {
  double seconds = 0.0;
  double packets_per_sec = 0.0;
  traffic::SweepStageTimings timings;
  stats::DegreeHistogram merged;
  std::string metrics_json;  // this run's registry, already serialized
  double expected_mass_total = -1.0;  // kExpected only: Σ mass (≈ 1)
};

RunResult run_sweep(const graph::Graph& g, Count n_valid,
                    std::size_t windows, traffic::Quantity quantity,
                    std::uint64_t seed, ThreadPool& pool, Path path,
                    std::size_t shards = 1,
                    traffic::WindowCaptureSink* capture = nullptr) {
  obs::Registry registry;
  traffic::SweepOptions opts;
  opts.fast_path = path != Path::kLegacy;
  if (path == Path::kCounts) {
    opts.synthesis = traffic::SynthesisMode::kMultinomial;
  }
  if (path == Path::kExpected) {
    opts.synthesis = traffic::SynthesisMode::kExpected;
  }
  if (shards > 1) {
    opts.shard_mode = traffic::ShardMode::kIntraWindow;
    opts.shards_per_window = shards;
  }
  opts.metrics = &registry;
  opts.capture = capture;
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep = traffic::sweep_windows(g, traffic::RateModel{}, n_valid,
                                      windows, quantity, seed, pool, opts);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.packets_per_sec =
      static_cast<double>(n_valid) * static_cast<double>(windows) /
      out.seconds;
  out.timings = sweep.timings;
  out.merged = std::move(sweep.merged);
  if (sweep.expected) {
    out.expected_mass_total = sweep.expected->mass.total_mass();
  }
  std::ostringstream metrics;
  obs::write_json(metrics, registry.snapshot());
  out.metrics_json = std::move(metrics).str();
  return out;
}

// Replay axis (PR 10): the same stage graph driven from a window store —
// block read + varint decode replaces synthesis, so the per-window cost
// is memory/IO bandwidth, not sampling.  The merged result must be
// byte-identical to the capturing sweep.
RunResult run_replay(store::WindowStoreReader& reader, std::size_t windows,
                     Count n_valid, traffic::Quantity quantity,
                     ThreadPool& pool, std::size_t shards = 1) {
  obs::Registry registry;
  traffic::SweepOptions opts;
  if (shards > 1) {
    opts.shard_mode = traffic::ShardMode::kIntraWindow;
    opts.shards_per_window = shards;
  }
  opts.metrics = &registry;
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep = traffic::sweep_windows(reader, windows, quantity, pool, opts);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.packets_per_sec =
      static_cast<double>(n_valid) * static_cast<double>(windows) /
      out.seconds;
  out.timings = sweep.timings;
  out.merged = std::move(sweep.merged);
  std::ostringstream metrics;
  obs::write_json(metrics, registry.snapshot());
  out.metrics_json = std::move(metrics).str();
  return out;
}

// One count-space window drawn directly: Σ (forward + backward) must equal
// n_valid exactly — the Multinomial split conserves packet mass by
// construction, so any drift is a bug, not noise.
bool counts_mass_conserved(const graph::Graph& g, Count n_valid,
                           std::uint64_t seed) {
  traffic::SyntheticTrafficGenerator gen(
      g, traffic::make_edge_rates(g, traffic::RateModel{}, Rng(seed)),
      Rng(seed + 1));
  std::vector<traffic::EdgePacketCounts> pairs;
  gen.next_window_counts(n_valid, pairs);
  Count total = 0;
  for (const auto& pc : pairs) total += pc.forward + pc.backward;
  return total == n_valid;
}

// Re-indents a serialized JSON document to sit at nesting depth 2.
std::string indent_block(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  for (const char c : json) {
    out += c;
    if (c == '\n') out += "  ";
  }
  while (!out.empty() && (out.back() == ' ' || out.back() == '\n')) {
    out.pop_back();
  }
  return out;
}

void write_run_json(std::ostream& out, const char* name,
                    const RunResult& r) {
  out << "  \"" << name << "\": {\"seconds\": " << r.seconds
      << ", \"packets_per_sec\": " << r.packets_per_sec
      << ",\n    \"timings_cpu_ns\": {\"sampling\": "
      << r.timings.sampling_cpu_ns
      << ", \"accumulation\": " << r.timings.accumulation_cpu_ns
      << ", \"binning\": " << r.timings.binning_cpu_ns
      << "},\n    \"timings_max_ns\": {\"sampling\": "
      << r.timings.sampling_max_ns
      << ", \"accumulation\": " << r.timings.accumulation_max_ns
      << ", \"binning\": " << r.timings.binning_max_ns
      << "},\n    \"metrics\": " << indent_block(r.metrics_json)
      << "},\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = cli::Args::parse(argc, argv, 1);
  const bool smoke = args.get_flag("smoke");
  const bool expected_only = args.get_flag("expected-only");
  const bool replay_only = args.get_flag("replay-only");
  const bool counts_only =
      args.get_flag("counts-only") || expected_only || replay_only;
  const auto windows = static_cast<std::size_t>(
      args.get_int("windows", smoke ? 4 : 64));
  const auto n_valid =
      static_cast<Count>(args.get_int("nvalid", smoke ? 20000 : 1000000));
  const auto nodes = static_cast<NodeId>(
      args.get_int("nodes", smoke ? 20000 : 150000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 29));
  const std::string out_path =
      args.get_string("out", "BENCH_sweep.json");
  const std::string store_dir =
      args.get_string("store-dir", out_path + ".store");

  const auto params = core::PaluParams::solve_hubs(6.0, 0.35, 0.2, 2.3,
                                                   1.0);
  Rng rng(17);
  const auto net = core::generate_underlying(params, nodes, rng);
  const auto quantity = traffic::Quantity::kUndirectedDegree;
  ThreadPool pool;  // default: one worker per hardware thread

  std::printf("bench_sweep: %zu windows x %llu packets, %llu nodes, "
              "%zu edges, %zu pool threads\n",
              windows, static_cast<unsigned long long>(n_valid),
              static_cast<unsigned long long>(net.graph.num_nodes()),
              net.graph.num_edges(), pool.size());

  const bool mass_ok = expected_only || replay_only ||
                       counts_mass_conserved(net.graph, n_valid, seed);
  if (!expected_only && !replay_only) {
    std::printf("counts mass conservation: %s\n", mass_ok ? "ok" : "FAIL");
  }

  RunResult legacy, fast;
  bool identical = true;
  if (!counts_only) {
    legacy = run_sweep(net.graph, n_valid, windows, quantity, seed, pool,
                       Path::kLegacy);
    fast = run_sweep(net.graph, n_valid, windows, quantity, seed, pool,
                     Path::kFast);
    identical = legacy.merged.sorted() == fast.merged.sorted() &&
                legacy.merged.total() == fast.merged.total();
    std::printf("legacy: %.3fs (%.2fM packets/s)\n", legacy.seconds,
                legacy.packets_per_sec / 1e6);
    std::printf("fast:   %.3fs (%.2fM packets/s)\n", fast.seconds,
                fast.packets_per_sec / 1e6);
  }
  const std::vector<Count> scaling_nvalid =
      smoke ? std::vector<Count>{10000, 100000}
            : std::vector<Count>{100000, 1000000, 10000000};
  const std::size_t scaling_windows = smoke ? 4 : 8;

  RunResult counts;
  bool counts_sane = true;
  std::vector<double> per_window;
  std::vector<double> ratios;
  const std::vector<std::size_t> shard_counts = {1, 2, 4};
  std::vector<double> shard_seconds;
  bool shards_identical = true;
  if (!expected_only && !replay_only) {
    counts = run_sweep(net.graph, n_valid, windows, quantity, seed, pool,
                       Path::kCounts);
    std::printf("counts: %.3fs (%.2fM packets/s)\n", counts.seconds,
                counts.packets_per_sec / 1e6);
    counts_sane = counts.merged.total() > 0;

    // Counts-path scaling axis: per-window cost vs. N_V (the whole point
    // of count-space synthesis is that this curve is nearly flat per
    // decade).
    for (const Count nv : scaling_nvalid) {
      const RunResult r = run_sweep(net.graph, nv, scaling_windows,
                                    quantity, seed, pool, Path::kCounts);
      per_window.push_back(r.seconds /
                           static_cast<double>(scaling_windows));
      std::printf("counts scaling: nvalid=%llu %.2fms/window\n",
                  static_cast<unsigned long long>(nv),
                  per_window.back() * 1e3);
    }
    for (std::size_t i = 1; i < per_window.size(); ++i) {
      ratios.push_back(per_window[i] / per_window[i - 1]);
      std::printf("counts scaling ratio (x10 packets): %.3fx\n",
                  ratios.back());
    }

    // Intra-window shard axis (PR 7): the counts sweep re-run with the
    // window's accumulation partitioned across K sub-accumulators.
    // Sharding must be a pure re-association — every K produces the
    // byte-identical merged histogram — so the axis records only where
    // the time goes.
    for (const std::size_t k : shard_counts) {
      const RunResult r = run_sweep(net.graph, n_valid, windows, quantity,
                                    seed, pool, Path::kCounts, k);
      shard_seconds.push_back(r.seconds);
      if (r.merged.sorted() != counts.merged.sorted() ||
          r.merged.total() != counts.merged.total()) {
        shards_identical = false;
      }
      std::printf("counts shards=%zu: %.3fs (%.2fM packets/s)%s\n", k,
                  r.seconds, r.packets_per_sec / 1e6,
                  shards_identical ? "" : "  DIVERGED");
    }
  }

  // Expected (analytic) axis (PR 9): one deterministic evaluation per
  // window size, no RNG.  The same N_V ladder as the counts axis, so the
  // two curves are directly comparable: expected cost should be flat in
  // N_V, and one evaluation replaces the whole sampled ensemble.
  std::vector<double> expected_per_eval;
  std::vector<double> expected_ratios;
  bool expected_sane = true;
  if (!replay_only) {
    for (const Count nv : scaling_nvalid) {
      const RunResult r = run_sweep(net.graph, nv, 1, quantity, seed, pool,
                                    Path::kExpected);
      expected_per_eval.push_back(r.seconds);
      if (std::abs(r.expected_mass_total - 1.0) > 1e-9) {
        expected_sane = false;
      }
      std::printf("expected: nvalid=%llu %.2fms/eval (mass=%.9f)\n",
                  static_cast<unsigned long long>(nv), r.seconds * 1e3,
                  r.expected_mass_total);
    }
    for (std::size_t i = 1; i < expected_per_eval.size(); ++i) {
      expected_ratios.push_back(expected_per_eval[i] /
                                expected_per_eval[i - 1]);
      std::printf("expected scaling ratio (x10 packets): %.3fx\n",
                  expected_ratios.back());
    }
  }
  // One analytic evaluation vs. the counts sweep it replaces — the
  // configured `windows`-window ensemble (64 by default, the ROADMAP
  // framing) costed at the top of the N_V ladder from the per-window
  // scaling measurements.
  double expected_speedup = 0.0;
  if (!expected_only && !per_window.empty()) {
    expected_speedup = per_window.back() * static_cast<double>(windows) /
                       expected_per_eval.back();
    std::printf("expected vs counts sweep at nvalid=%llu: %.1fx\n",
                static_cast<unsigned long long>(scaling_nvalid.back()),
                expected_speedup);
  }

  // Replay axis (PR 10): capture the counts ensemble once into a window
  // store, then drive the same sweep from the store — block read + varint
  // decode replaces synthesis.  Replay (shards 1 and 4) must reproduce
  // the capturing sweep byte-identically, and the store must stay under
  // 8 payload bytes per (pair, count) record.
  RunResult captured, replay;
  store::WindowStoreWriter::Stats wstats;
  bool replay_identical = true;
  double replay_speedup = 0.0;
  double replay_sweep_ratio = 0.0;
  double replay_bytes_per_record = 0.0;
  const bool run_replay_axis = replay_only || !counts_only;
  if (run_replay_axis) {
    store::WriterOptions wopts;
    wopts.node_domain = net.graph.num_nodes();
    wopts.seed = seed;
    {
      store::WindowStoreWriter writer(store_dir, wopts);
      captured = run_sweep(net.graph, n_valid, windows, quantity, seed,
                           pool, Path::kCounts, 1, &writer);
      writer.finish();
      wstats = writer.stats();
    }
    if (wstats.records > 0) {
      replay_bytes_per_record = static_cast<double>(wstats.payload_bytes) /
                                static_cast<double>(wstats.records);
    }
    std::printf("capture: %.3fs, store: %llu windows, %llu records, "
                "%llu B (%.2f payload B/record)\n",
                captured.seconds,
                static_cast<unsigned long long>(wstats.blocks),
                static_cast<unsigned long long>(wstats.records),
                static_cast<unsigned long long>(wstats.file_bytes),
                replay_bytes_per_record);

    store::WindowStoreReader reader(store_dir);
    replay = run_replay(reader, windows, n_valid, quantity, pool);
    const RunResult sharded =
        run_replay(reader, windows, n_valid, quantity, pool, 4);
    replay_identical =
        replay.merged.sorted() == captured.merged.sorted() &&
        replay.merged.total() == captured.merged.total() &&
        sharded.merged.sorted() == captured.merged.sorted() &&
        sharded.merged.total() == captured.merged.total();
    // The per-window acceptance ratio: what synthesis costs to produce a
    // window's records (the counts path's sampling stage) vs. what replay
    // pays instead (block read + checksum + decode, accounted in the same
    // stage slot).  Accumulation and binning are shared verbatim by both
    // paths, so this isolates the work the store actually replaces; the
    // whole-sweep wall ratio is reported alongside it.  In --replay-only
    // mode the capturing run is the synthesis baseline.
    const auto& synth = replay_only ? captured : counts;
    replay_speedup =
        static_cast<double>(synth.timings.sampling_cpu_ns) /
        static_cast<double>(replay.timings.sampling_cpu_ns);
    replay_sweep_ratio = synth.seconds / replay.seconds;
    const double sweep_ratio = replay_sweep_ratio;
    std::printf("replay: %.3fs (%.2fM packets/s, %.2fms/window), "
                "shards=4: %.3fs, identical: %s\n",
                replay.seconds, replay.packets_per_sec / 1e6,
                replay.seconds / static_cast<double>(windows) * 1e3,
                sharded.seconds, replay_identical ? "true" : "false");
    std::printf("per-window synthesis %.2fms vs replay read %.2fms: "
                "%.1fx (whole sweep: %.1fx)\n",
                static_cast<double>(synth.timings.sampling_cpu_ns) / 1e6 /
                    static_cast<double>(windows),
                static_cast<double>(replay.timings.sampling_cpu_ns) / 1e6 /
                    static_cast<double>(windows),
                replay_speedup, sweep_ratio);
  }

  if (!counts_only) {
    const double speedup = fast.packets_per_sec / legacy.packets_per_sec;
    const double counts_vs_fast =
        counts.packets_per_sec / fast.packets_per_sec;
    const double counts_vs_legacy =
        counts.packets_per_sec / legacy.packets_per_sec;
    std::printf("speedup fast/legacy: %.2fx, counts/fast: %.2fx, "
                "counts/legacy: %.2fx, identical: %s\n",
                speedup, counts_vs_fast, counts_vs_legacy,
                identical ? "true" : "false");

    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"sweep\",\n";
    out << "  \"config\": {\"windows\": " << windows
        << ", \"nvalid\": " << n_valid << ", \"nodes\": " << nodes
        << ", \"edges\": " << net.graph.num_edges() << ", \"quantity\": \""
        << traffic::quantity_name(quantity) << "\", \"seed\": " << seed
        << ", \"pool_threads\": " << pool.size() << "},\n";
    write_run_json(out, "legacy", legacy);
    write_run_json(out, "fast", fast);
    write_run_json(out, "counts", counts);
    out << "  \"speedup\": " << speedup << ",\n";
    out << "  \"speedup_counts_vs_fast\": " << counts_vs_fast << ",\n";
    out << "  \"speedup_counts_vs_legacy\": " << counts_vs_legacy << ",\n";
    out << "  \"identical\": " << (identical ? "true" : "false") << ",\n";
    out << "  \"counts_mass_conserved\": " << (mass_ok ? "true" : "false")
        << ",\n";
    out << "  \"scaling\": {\"windows\": " << scaling_windows
        << ", \"points\": [";
    for (std::size_t i = 0; i < scaling_nvalid.size(); ++i) {
      out << (i ? ", " : "") << "{\"nvalid\": " << scaling_nvalid[i]
          << ", \"seconds_per_window\": " << per_window[i] << "}";
    }
    out << "],\n    \"ratios\": [";
    for (std::size_t i = 0; i < ratios.size(); ++i) {
      out << (i ? ", " : "") << ratios[i];
    }
    out << "]},\n";
    out << "  \"shards\": {\"identical\": "
        << (shards_identical ? "true" : "false") << ", \"points\": [";
    for (std::size_t i = 0; i < shard_counts.size(); ++i) {
      out << (i ? ", " : "") << "{\"shards\": " << shard_counts[i]
          << ", \"seconds\": " << shard_seconds[i] << "}";
    }
    out << "]},\n";
    out << "  \"expected\": {\"points\": [";
    for (std::size_t i = 0; i < scaling_nvalid.size(); ++i) {
      out << (i ? ", " : "") << "{\"nvalid\": " << scaling_nvalid[i]
          << ", \"seconds_per_eval\": " << expected_per_eval[i] << "}";
    }
    out << "],\n    \"ratios\": [";
    for (std::size_t i = 0; i < expected_ratios.size(); ++i) {
      out << (i ? ", " : "") << expected_ratios[i];
    }
    out << "],\n    \"counts_sweep_seconds_over_expected_eval\": "
        << expected_speedup << "},\n";
    write_run_json(out, "replay", replay);
    out << "  \"replay_store\": {\"windows\": " << wstats.blocks
        << ", \"records\": " << wstats.records
        << ", \"payload_bytes\": " << wstats.payload_bytes
        << ", \"file_bytes\": " << wstats.file_bytes
        << ",\n    \"payload_bytes_per_record\": " << replay_bytes_per_record
        << ", \"bytes_per_window\": "
        << (wstats.blocks > 0
                ? static_cast<double>(wstats.file_bytes) /
                      static_cast<double>(wstats.blocks)
                : 0.0)
        << ", \"capture_seconds\": " << captured.seconds << "},\n";
    out << "  \"speedup_synthesis_vs_replay_per_window\": " << replay_speedup
        << ",\n";
    out << "  \"speedup_replay_vs_counts\": " << replay_sweep_ratio << ",\n";
    out << "  \"replay_identical\": "
        << (replay_identical ? "true" : "false") << "\n}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  bool ok = true;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: fast path diverged from the legacy path\n");
    ok = false;
  }
  if (!mass_ok) {
    std::fprintf(stderr,
                 "FAIL: counts window lost or invented packets\n");
    ok = false;
  }
  if (!counts_sane) {
    std::fprintf(stderr, "FAIL: counts sweep produced an empty result\n");
    ok = false;
  }
  if (!shards_identical) {
    std::fprintf(stderr,
                 "FAIL: intra-window sharding changed the merged result\n");
    ok = false;
  }
  if (!expected_sane) {
    std::fprintf(stderr,
                 "FAIL: expected mass does not sum to 1\n");
    ok = false;
  }
  if (!replay_identical) {
    std::fprintf(stderr,
                 "FAIL: replay diverged from the capturing sweep\n");
    ok = false;
  }
  if (run_replay_axis && replay_bytes_per_record > 8.0) {
    std::fprintf(stderr,
                 "FAIL: store exceeds 8 payload bytes per record\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
