file(REMOVE_RECURSE
  "CMakeFiles/palu_cli.dir/args.cpp.o"
  "CMakeFiles/palu_cli.dir/args.cpp.o.d"
  "libpalu_cli.a"
  "libpalu_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
