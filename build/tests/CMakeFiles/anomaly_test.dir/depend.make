# Empty dependencies file for anomaly_test.
# This may be replaced when dependencies are built.
