file(REMOVE_RECURSE
  "CMakeFiles/palu_graph.dir/clustering.cpp.o"
  "CMakeFiles/palu_graph.dir/clustering.cpp.o.d"
  "CMakeFiles/palu_graph.dir/components.cpp.o"
  "CMakeFiles/palu_graph.dir/components.cpp.o.d"
  "CMakeFiles/palu_graph.dir/crawl.cpp.o"
  "CMakeFiles/palu_graph.dir/crawl.cpp.o.d"
  "CMakeFiles/palu_graph.dir/generators.cpp.o"
  "CMakeFiles/palu_graph.dir/generators.cpp.o.d"
  "CMakeFiles/palu_graph.dir/graph.cpp.o"
  "CMakeFiles/palu_graph.dir/graph.cpp.o.d"
  "libpalu_graph.a"
  "libpalu_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
