// Clang thread-safety annotation macros.
//
// Concurrency invariants in palu (which mutex guards which member, which
// functions must be called with a lock held) are declared in the types
// themselves so `clang -Wthread-safety` can machine-check them instead of
// leaving lock discipline to code review.  Under any compiler without the
// attribute (gcc, msvc) every macro expands to nothing, so annotated code
// stays portable.  Enable checking with the PALU_WERROR_THREAD_SAFETY
// CMake option (clang only); see DESIGN.md §5c.
//
// Naming follows the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed to
// keep out of other libraries' way.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define PALU_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PALU_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Data member readable/writable only while holding `x`.
#define PALU_GUARDED_BY(x) PALU_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose pointee is guarded by `x` (the pointer itself may
/// be read freely).
#define PALU_PT_GUARDED_BY(x) PALU_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that may only be called while holding every listed capability.
#define PALU_REQUIRES(...) \
  PALU_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities and returns holding them.
#define PALU_ACQUIRE(...) \
  PALU_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities.
#define PALU_RELEASE(...) \
  PALU_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the listed capabilities
/// (deadlock prevention: it acquires them itself).
#define PALU_EXCLUDES(...) PALU_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Escape hatch for code whose safety the analysis cannot express
/// (e.g. handoff protocols); use with a justifying comment.
#define PALU_NO_THREAD_SAFETY_ANALYSIS \
  PALU_THREAD_ANNOTATION_(no_thread_safety_analysis)
