// Unit tests for the Kolmogorov survival function and the KS tests.
#include <gtest/gtest.h>

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/fit/ks_test.hpp"
#include "palu/fit/powerlaw_mle.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/rng/xoshiro.hpp"

namespace palu::fit {
namespace {

TEST(KolmogorovSurvival, KnownQuantiles) {
  // Classic table values of the Kolmogorov distribution.
  EXPECT_NEAR(kolmogorov_survival(1.3581), 0.05, 5e-4);
  EXPECT_NEAR(kolmogorov_survival(1.2238), 0.10, 5e-4);
  EXPECT_NEAR(kolmogorov_survival(1.6276), 0.01, 2e-4);
  EXPECT_DOUBLE_EQ(kolmogorov_survival(0.0), 1.0);
}

TEST(KolmogorovSurvival, MonotoneAndBranchesAgree) {
  double prev = 1.0;
  for (double lam = 0.05; lam < 3.0; lam += 0.05) {
    const double q = kolmogorov_survival(lam);
    EXPECT_LE(q, prev + 1e-12) << "lambda=" << lam;
    prev = q;
  }
  // The series-dual crossover at λ = 0.5 must be seamless: the two
  // evaluations differ only by the function's own slope (|Q'| < 1) over
  // the 2e-6 gap, not by a branch discontinuity.
  EXPECT_NEAR(kolmogorov_survival(0.499999),
              kolmogorov_survival(0.500001), 5e-6);
}

TEST(KolmogorovSurvival, RejectsNegative) {
  EXPECT_THROW(kolmogorov_survival(-0.1), palu::InvalidArgument);
}

TEST(KsOneSample, AcceptsTrueModelRejectsWrong) {
  Rng rng(1);
  rng::BoundedZipfSampler zipf(2.0, 1u << 18);
  stats::DegreeHistogram h;
  for (int i = 0; i < 30000; ++i) h.add(zipf(rng));
  const auto ok = ks_test_one_sample(h, [](Degree d) {
    return zeta_tail_cdf(2.0, 1, d);
  });
  // Discrete data make the asymptotic test conservative: the p-value
  // should not signal rejection for the true model.
  EXPECT_GT(ok.p_value, 0.05);
  const auto bad = ks_test_one_sample(h, [](Degree d) {
    return zeta_tail_cdf(3.0, 1, d);
  });
  EXPECT_LT(bad.p_value, 1e-10);
  EXPECT_GT(bad.statistic, ok.statistic);
}

TEST(KsTwoSample, SameLawIsNotFlagged) {
  Rng rng(2);
  rng::BoundedZipfSampler zipf(2.2, 1u << 16);
  stats::DegreeHistogram a, b;
  for (int i = 0; i < 20000; ++i) a.add(zipf(rng));
  for (int i = 0; i < 20000; ++i) b.add(zipf(rng));
  const auto res = ks_test_two_sample(a, b);
  EXPECT_GT(res.p_value, 0.01);
  EXPECT_NEAR(res.effective_n, 10000.0, 1.0);
}

TEST(KsTwoSample, DetectsDistributionShift) {
  Rng rng(3);
  rng::BoundedZipfSampler flat(1.8, 1u << 16);
  rng::BoundedZipfSampler steep(2.6, 1u << 16);
  stats::DegreeHistogram a, b;
  for (int i = 0; i < 20000; ++i) a.add(flat(rng));
  for (int i = 0; i < 20000; ++i) b.add(steep(rng));
  const auto res = ks_test_two_sample(a, b);
  EXPECT_LT(res.p_value, 1e-12);
  EXPECT_GT(res.statistic, 0.05);
}

TEST(KsTwoSample, SymmetricInArguments) {
  Rng rng(4);
  stats::DegreeHistogram a, b;
  for (int i = 0; i < 5000; ++i) {
    a.add(1 + rng.uniform_index(50));
    b.add(1 + rng.uniform_index(70));
  }
  const auto ab = ks_test_two_sample(a, b);
  const auto ba = ks_test_two_sample(b, a);
  EXPECT_DOUBLE_EQ(ab.statistic, ba.statistic);
  EXPECT_DOUBLE_EQ(ab.p_value, ba.p_value);
}

TEST(KsTwoSample, DisjointSupportsMaxOut) {
  stats::DegreeHistogram a, b;
  a.add(1, 100);
  a.add(2, 100);
  b.add(100, 100);
  b.add(200, 100);
  const auto res = ks_test_two_sample(a, b);
  EXPECT_DOUBLE_EQ(res.statistic, 1.0);
  EXPECT_LT(res.p_value, 1e-12);
}

}  // namespace
}  // namespace palu::fit
