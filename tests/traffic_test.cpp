// Unit tests for palu/traffic: window matrices, Table-I aggregates in both
// notations, Fig-1 quantities, and the synthetic stream generator.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/graph/generators.hpp"
#include "palu/stats/distribution.hpp"
#include "palu/traffic/aggregates.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/sparse_matrix.hpp"
#include "palu/traffic/stream.hpp"

namespace palu::traffic {
namespace {

SparseCountMatrix small_window() {
  // Sources {1, 2}; destinations {5, 6, 7}.
  SparseCountMatrix a;
  a.add(1, 5, 3);
  a.add(1, 6, 2);
  a.add(2, 5, 1);
  a.add(2, 7, 4);
  return a;
}

TEST(SparseCountMatrix, AccumulatesPackets) {
  SparseCountMatrix a;
  a.add(1, 2);
  a.add(1, 2, 4);
  a.add(3, 4);
  EXPECT_EQ(a.at(1, 2), 5u);
  EXPECT_EQ(a.at(3, 4), 1u);
  EXPECT_EQ(a.at(9, 9), 0u);
  EXPECT_EQ(a.total(), 6u);
  EXPECT_EQ(a.nnz(), 2u);
}

TEST(SparseCountMatrix, FromPacketsSumsToNv) {
  // Σ_ij A_t(i,j) = N_V (Section II).
  const std::vector<Packet> window = {{1, 2}, {1, 2}, {2, 1}, {3, 4}};
  const auto a = SparseCountMatrix::from_packets(window);
  EXPECT_EQ(a.total(), window.size());
  EXPECT_EQ(a.at(1, 2), 2u);
  EXPECT_EQ(a.at(2, 1), 1u);
}

TEST(SparseCountMatrix, EntriesSortedDeterministically) {
  const auto a = small_window();
  const auto e = a.entries();
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e[0].src, 1u);
  EXPECT_EQ(e[0].dst, 5u);
  EXPECT_EQ(e[3].src, 2u);
  EXPECT_EQ(e[3].dst, 7u);
}

TEST(SparseCountMatrix, Marginals) {
  const auto a = small_window();
  const auto rows = a.source_marginals();
  EXPECT_EQ(rows.at(1).packets, 5u);
  EXPECT_EQ(rows.at(1).fan, 2u);
  EXPECT_EQ(rows.at(2).packets, 5u);
  EXPECT_EQ(rows.at(2).fan, 2u);
  const auto cols = a.destination_marginals();
  EXPECT_EQ(cols.at(5).packets, 4u);
  EXPECT_EQ(cols.at(5).fan, 2u);
  EXPECT_EQ(cols.at(7).packets, 4u);
  EXPECT_EQ(cols.at(7).fan, 1u);
}

TEST(Aggregates, TableOneOnKnownWindow) {
  const auto a = small_window();
  const Aggregates agg = aggregates_summation(a);
  EXPECT_EQ(agg.valid_packets, 10u);
  EXPECT_EQ(agg.unique_links, 4u);
  EXPECT_EQ(agg.unique_sources, 2u);
  EXPECT_EQ(agg.unique_destinations, 3u);
  EXPECT_EQ(agg.max_link_packets, 4u);
}

TEST(Aggregates, SummationEqualsMatrixNotation) {
  // Table I's two columns must agree on any window.
  Rng rng(5);
  SparseCountMatrix a;
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.uniform_index(100), rng.uniform_index(200),
          1 + rng.uniform_index(5));
  }
  EXPECT_EQ(aggregates_summation(a), aggregates_matrix(a));
}

TEST(Aggregates, EmptyWindow) {
  const SparseCountMatrix a;
  const Aggregates agg = aggregates_summation(a);
  EXPECT_EQ(agg.valid_packets, 0u);
  EXPECT_EQ(agg.unique_links, 0u);
  EXPECT_EQ(aggregates_matrix(a), agg);
}

TEST(Quantities, NamesAreStable) {
  EXPECT_EQ(quantity_name(Quantity::kSourcePackets), "source_packets");
  EXPECT_EQ(quantity_name(Quantity::kLinkPackets), "link_packets");
}

TEST(Quantities, HistogramsOnKnownWindow) {
  const auto a = small_window();
  // Source packets: both sources sent 5.
  auto h = quantity_histogram(a, Quantity::kSourcePackets);
  EXPECT_EQ(h.at(5), 2u);
  EXPECT_EQ(h.total(), 2u);
  // Source fan-out: both sources reach 2 destinations.
  h = quantity_histogram(a, Quantity::kSourceFanOut);
  EXPECT_EQ(h.at(2), 2u);
  // Link packets: counts {3, 2, 1, 4}.
  h = quantity_histogram(a, Quantity::kLinkPackets);
  EXPECT_EQ(h.total(), 4u);
  for (Count c : {1u, 2u, 3u, 4u}) EXPECT_EQ(h.at(c), 1u);
  // Destination fan-in: dst 5 has 2 sources; 6 and 7 have 1 each.
  h = quantity_histogram(a, Quantity::kDestinationFanIn);
  EXPECT_EQ(h.at(2), 1u);
  EXPECT_EQ(h.at(1), 2u);
  // Destination packets: {4, 2, 4}.
  h = quantity_histogram(a, Quantity::kDestinationPackets);
  EXPECT_EQ(h.at(4), 2u);
  EXPECT_EQ(h.at(2), 1u);
}

TEST(Quantities, UndirectedDegreeMergesDirections) {
  SparseCountMatrix a;
  a.add(1, 2, 10);
  a.add(2, 1, 3);  // same pair, both directions: one undirected edge
  a.add(1, 3, 1);
  const auto h = undirected_degree_histogram(a);
  // Node 1 talks to {2, 3}; nodes 2, 3 talk to {1}.
  EXPECT_EQ(h.at(2), 1u);
  EXPECT_EQ(h.at(1), 2u);
}

TEST(Quantities, SelfTrafficIgnoredInDegrees) {
  SparseCountMatrix a;
  a.add(7, 7, 100);
  a.add(1, 2, 1);
  const auto h = undirected_degree_histogram(a);
  EXPECT_EQ(h.total(), 2u);  // only nodes 1 and 2
}

TEST(Stream, WindowHasExactlyNvPackets) {
  Rng rng(11);
  const auto g = graph::erdos_renyi(rng, 200, 0.05);
  SyntheticTrafficGenerator gen(g, RateModel{}, Rng(13));
  const auto a = gen.window(5000);
  EXPECT_EQ(a.total(), 5000u);
}

TEST(Stream, ConsecutiveWindowsDiffer) {
  Rng rng(17);
  const auto g = graph::erdos_renyi(rng, 100, 0.1);
  SyntheticTrafficGenerator gen(g, RateModel{}, Rng(19));
  const auto w = gen.windows(1000, 2);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].total(), 1000u);
  EXPECT_EQ(w[1].total(), 1000u);
  // Different windows should not aggregate identically.
  const auto to_triples = [](const SparseCountMatrix& m) {
    std::vector<std::tuple<NodeId, NodeId, Count>> t;
    for (const auto& e : m.entries()) t.emplace_back(e.src, e.dst, e.packets);
    return t;
  };
  EXPECT_NE(to_triples(w[0]), to_triples(w[1]));
}

TEST(Stream, UniformRatesCoverEdgesEvenly) {
  Rng rng(23);
  graph::Graph g(20);
  for (NodeId i = 0; i + 1 < 20; ++i) g.add_edge(i, i + 1);
  RateModel rates;
  rates.kind = RateModel::Kind::kUniform;
  SyntheticTrafficGenerator gen(g, rates, Rng(29));
  const auto a = gen.window(19000);
  // Each of the 19 edges expects 1000 packets (counting both directions).
  for (NodeId i = 0; i + 1 < 20; ++i) {
    const double both = static_cast<double>(a.at(i, i + 1) + a.at(i + 1, i));
    EXPECT_NEAR(both, 1000.0, 6.0 * std::sqrt(1000.0));
  }
}

TEST(Stream, ForwardProbabilityControlsDirection) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  RateModel rates;
  rates.kind = RateModel::Kind::kUniform;
  SyntheticTrafficGenerator gen(g, rates, Rng(31), /*forward_prob=*/1.0);
  const auto a = gen.window(500);
  EXPECT_EQ(a.at(0, 1), 500u);
  EXPECT_EQ(a.at(1, 0), 0u);
}

TEST(Stream, ParetoRatesAreHeavyTailed) {
  Rng rng(37);
  const auto g = graph::erdos_renyi(rng, 300, 0.05);
  RateModel rates;
  rates.kind = RateModel::Kind::kPareto;
  rates.pareto_tail = 1.2;
  SyntheticTrafficGenerator gen(g, rates, Rng(41));
  const auto a = gen.window(200000);
  // The heaviest link should dominate the mean link weight by a wide
  // margin — the supernode signature.
  const auto agg = aggregates_summation(a);
  const double mean_link = static_cast<double>(agg.valid_packets) /
                           static_cast<double>(agg.unique_links);
  EXPECT_GT(static_cast<double>(agg.max_link_packets), 20.0 * mean_link);
}

TEST(Stream, VisibilityGrowsWithWindowSize) {
  Rng rng(43);
  const auto g = graph::erdos_renyi(rng, 500, 0.02);
  SyntheticTrafficGenerator gen(g, RateModel{}, Rng(47));
  const double v_small = gen.expected_edge_visibility(100);
  const double v_mid = gen.expected_edge_visibility(10000);
  const double v_large = gen.expected_edge_visibility(10000000);
  EXPECT_LT(v_small, v_mid);
  EXPECT_LT(v_mid, v_large);
  EXPECT_GT(v_large, 0.99);
  EXPECT_GT(v_small, 0.0);
}

TEST(Stream, RejectsEdgelessGraph) {
  const graph::Graph g(10);
  EXPECT_THROW(SyntheticTrafficGenerator(g, RateModel{}, Rng(1)),
               palu::InvalidArgument);
}

TEST(Stream, VisibilityEdgeCases) {
  // n_valid == 0: zero packets see nothing — and must not evaluate
  // 0 · log1p(−r) = 0 · (−inf) = NaN for saturated rates.
  graph::Graph g(2);
  g.add_edge(0, 1);  // single edge → its rate carries all mass (rate == 1)
  SyntheticTrafficGenerator gen(g, RateModel{}, Rng(5));
  EXPECT_EQ(gen.expected_edge_visibility(0), 0.0);
  EXPECT_EQ(gen.expected_unique_links(0), 0.0);
  // rate == 1.0: visibility is exactly 1 for any n ≥ 1, not NaN and not
  // merely close to 1 through expm1(n · (−inf)).
  EXPECT_EQ(gen.expected_edge_visibility(1), 1.0);
  EXPECT_EQ(gen.expected_edge_visibility(1000000), 1.0);
}

TEST(Stream, MovedFromGeneratorRejectsVisibilityQueries) {
  // A moved-from generator holds an empty rate vector; 0/0 would memoize
  // NaN forever, so the query must throw a typed error instead.
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  SyntheticTrafficGenerator gen(g, RateModel{}, Rng(7));
  SyntheticTrafficGenerator sink = std::move(gen);
  EXPECT_THROW(gen.expected_edge_visibility(100), palu::InvalidArgument);
  EXPECT_THROW(gen.expected_unique_links(100), palu::InvalidArgument);
  // The move target still answers.
  EXPECT_GT(sink.expected_edge_visibility(100), 0.0);
}

TEST(Stream, DegreeProductRatesFavorHubs) {
  // Star: hub 0 with 50 leaves; hub participates in every conversation.
  graph::Graph g(51);
  for (NodeId leaf = 1; leaf <= 50; ++leaf) g.add_edge(0, leaf);
  RateModel rates;
  rates.kind = RateModel::Kind::kDegreeProduct;
  SyntheticTrafficGenerator gen(g, rates, Rng(53));
  const auto a = gen.window(10000);
  const auto rows = a.source_marginals();
  const auto cols = a.destination_marginals();
  Count hub_packets = 0;
  if (rows.contains(0)) hub_packets += rows.at(0).packets;
  if (cols.contains(0)) hub_packets += cols.at(0).packets;
  EXPECT_EQ(hub_packets, 10000u);  // hub on every packet (star topology)
}

}  // namespace
}  // namespace palu::traffic
