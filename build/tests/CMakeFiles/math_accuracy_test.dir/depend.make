# Empty dependencies file for math_accuracy_test.
# This may be replaced when dependencies are built.
