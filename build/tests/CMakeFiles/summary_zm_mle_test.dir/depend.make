# Empty dependencies file for summary_zm_mle_test.
# This may be replaced when dependencies are built.
