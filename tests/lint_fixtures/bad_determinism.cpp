// Fixture: the C PRNG must trip the determinism rule.
// palu-lint-expect: determinism
#include <cstdlib>

int roll() { return std::rand(); }
