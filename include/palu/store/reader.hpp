// Streaming window-store reader: the replay half of palu::store.
//
// Opening a store validates the file header and loads the manifest; a
// missing or corrupt manifest (torn tail from a killed capture) throws a
// typed palu::DataError under ErrorPolicy::kStrict, or is recovered under
// kSkip/kRepair by scanning the contiguous prefix of intact, checksummed
// blocks and charging the torn tail to the IngestReport error budget.
//
// read_window is the hot replay path: one positioned read per block
// (pread on a shared fd — thread-safe across sweep workers for distinct
// windows), checksum verify, then a tuned varint/delta decode straight
// into the caller's EdgePacketCounts buffer, ready for
// WindowAccumulator::ingest_counts.  Metric handles are resolved once at
// open; the per-block cost is one counter add and one histogram observe.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "palu/common/result.hpp"
#include "palu/common/types.hpp"
#include "palu/store/format.hpp"
#include "palu/traffic/window_source.hpp"

namespace palu::obs {
class Registry;
class Counter;
class Histogram;
}  // namespace palu::obs

namespace palu::store {

class WindowStoreReader final : public traffic::WindowSource {
 public:
  /// Opens the store in `dir` (see WindowStoreWriter::store_file).
  /// `opts.policy` governs torn-tail handling as described above;
  /// `opts.metrics` routes the palu_store_* read families (nullptr =
  /// obs::default_registry()).  Throws palu::DataError on a file that is
  /// not a window store, a version/endianness mismatch, a strict-mode
  /// torn tail, or a recovery that exceeds `opts.max_bad_lines`.
  explicit WindowStoreReader(const std::string& dir,
                             const IngestOptions& opts = {});
  ~WindowStoreReader() override;

  WindowStoreReader(const WindowStoreReader&) = delete;
  WindowStoreReader& operator=(const WindowStoreReader&) = delete;

  // ---- traffic::WindowSource ----
  std::size_t num_windows() const override { return manifest_.size(); }
  NodeId node_domain() const override {
    return static_cast<NodeId>(header_.node_domain);
  }
  /// Reads and decodes stored window `index` (ascending window-index
  /// order).  Returns the block's valid-packet total N_V; `out` holds
  /// the canonical sorted (u,v,count) records.  Thread-safe for
  /// concurrent calls.  Throws palu::DataError on a checksum mismatch or
  /// malformed payload.
  Count read_window(std::size_t index, std::vector<std::byte>& buf,
                    std::vector<traffic::EdgePacketCounts>& out) override;

  // ---- metadata ----
  const FileHeader& header() const noexcept { return header_; }
  /// Manifest entries in ascending window-index order (read_window's
  /// index space).
  const std::vector<ManifestEntry>& manifest() const noexcept {
    return manifest_;
  }
  /// Outcome of the open-time validation/recovery pass.
  const IngestReport& open_report() const noexcept { return report_; }

 private:
  void load_manifest(std::uint64_t file_size, const IngestOptions& opts);
  void recover_blocks(std::uint64_t file_size, const IngestOptions& opts,
                      const std::string& why);

  int fd_ = -1;
  std::string path_;
  FileHeader header_;
  std::vector<ManifestEntry> manifest_;
  IngestReport report_;

  obs::Counter& blocks_read_;
  obs::Counter& bytes_read_;
  obs::Counter& checksum_failures_;
  obs::Counter& torn_tails_;
  obs::Histogram& decode_ns_;
};

}  // namespace palu::store
