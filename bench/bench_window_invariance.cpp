// The PALU invariance claim, end to end through the traffic path.
//
// Section III: "for a given network, the parameters λ, C, L, U, and α
// should be the same regardless of the window size.  As the window size
// increases, the only parameter that will change is p."
//
// This bench drives the claim through the *full measurement pipeline*:
// one fixed underlying network, packet windows of growing N_V, the
// undirected degree quantity per window, and the Section IV-B estimator —
// reporting how the fitted (α, μ) move with N_V next to the effective
// window parameter p implied by the stream.  α should hold still while μ
// tracks p.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "palu/palu.hpp"

namespace {

using namespace palu;

struct Setup {
  core::PaluParams params;
  core::UnderlyingNetwork net;
  std::vector<double> rates;
};

const Setup& shared_setup() {
  static const Setup setup = []() {
    Setup s{core::PaluParams::solve_hubs(6.0, 0.35, 0.2, 2.3, 1.0),
            {},
            {}};
    Rng rng(17);
    s.net = core::generate_underlying(s.params, 150000, rng);
    traffic::RateModel rates;
    rates.kind = traffic::RateModel::Kind::kUniform;
    s.rates = traffic::make_edge_rates(s.net.graph, rates, rng.fork(1));
    return s;
  }();
  return setup;
}

void print_invariance() {
  const Setup& s = shared_setup();
  std::printf("=== Window-size invariance through the traffic pipeline "
              "===\n");
  std::printf("underlying: lambda=%.1f alpha=%.1f, %zu edges\n\n",
              s.params.lambda, s.params.alpha, s.net.graph.num_edges());
  std::printf("%10s %10s %10s %10s %10s %10s\n", "N_V", "p_eff",
              "alpha_hat", "mu_hat", "mu/p_eff", "D(1)");
  traffic::SyntheticTrafficGenerator probe(s.net.graph, s.rates, Rng(23));
  ThreadPool pool;
  for (const Count nv :
       {20000ull, 60000ull, 200000ull, 600000ull, 2000000ull}) {
    const double p_eff = probe.expected_edge_visibility(nv);
    const auto sweep = traffic::sweep_windows(
        s.net.graph, traffic::RateModel{traffic::RateModel::Kind::kUniform},
        nv, 4, traffic::Quantity::kUndirectedDegree, /*seed=*/29, pool);
    const auto dist =
        stats::EmpiricalDistribution::from_histogram(sweep.merged);
    const auto fit = core::fit_palu(sweep.merged);
    std::printf("%10llu %10.4f %10.3f %10.3f %10.3f %10.4f\n",
                static_cast<unsigned long long>(nv), p_eff, fit.alpha,
                fit.mu, fit.mu / (p_eff * s.params.lambda),
                dist.mass_at_one());
  }
  std::printf("\nReading: alpha_hat holds still while mu_hat tracks "
              "lambda*p_eff (ratio ~1); D(1)\nfalls as bigger windows "
              "reveal more of each node's neighborhood — the paper's\n"
              "'only p changes with window size'.\n\n");
}

void BM_SweepWindows(benchmark::State& state) {
  const Setup& s = shared_setup();
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads);
  std::uint64_t seed = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(traffic::sweep_windows(
        s.net.graph, traffic::RateModel{traffic::RateModel::Kind::kUniform},
        100000, 8, traffic::Quantity::kSourceFanOut, seed++, pool));
  }
  state.SetItemsProcessed(state.iterations() * 8 * 100000);
}
BENCHMARK(BM_SweepWindows)->Arg(1)->Arg(2)->Arg(4);

void BM_EffectiveVisibility(benchmark::State& state) {
  const Setup& s = shared_setup();
  traffic::SyntheticTrafficGenerator probe(s.net.graph, s.rates, Rng(31));
  Count nv = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(probe.expected_edge_visibility(nv));
    nv = nv < (1u << 22) ? nv * 2 : 1000;
  }
}
BENCHMARK(BM_EffectiveVisibility);

}  // namespace

int main(int argc, char** argv) {
  print_invariance();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
