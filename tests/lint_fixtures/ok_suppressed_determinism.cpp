// Fixture: a file-level allowance (the timing-instrumentation idiom used
// by window_pipeline.cpp and the benches) silences the determinism rule
// for the whole file.
// palu-lint: allow-file(determinism) -- fixture imitating timing code
// palu-lint-expect-clean
#include <chrono>

long long tick() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
