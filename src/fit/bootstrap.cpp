#include "palu/fit/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/parallel/parallel_for.hpp"
#include "palu/rng/distributions.hpp"

namespace palu::fit {
namespace {

BootstrapResult summarize_replicates(double estimate,
                                     std::vector<double> values,
                                     double confidence) {
  BootstrapResult out;
  out.estimate = estimate;
  out.replicates_used = static_cast<int>(values.size());
  std::sort(values.begin(), values.end());
  const double tail = 0.5 * (1.0 - confidence);
  const auto value_at = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    return values[static_cast<std::size_t>(std::llround(pos))];
  };
  out.lower = value_at(tail);
  out.upper = value_at(1.0 - tail);
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - mean) * (v - mean);
  out.std_error =
      std::sqrt(var / static_cast<double>(values.size() - 1));
  return out;
}

}  // namespace

std::vector<BootstrapResult> bootstrap_ci_multi(
    const stats::DegreeHistogram& h,
    const std::function<std::vector<double>(const stats::DegreeHistogram&)>&
        statistic,
    Rng& rng, ThreadPool& pool, const BootstrapOptions& opts) {
  PALU_CHECK(opts.replicates >= 10, "bootstrap_ci: need >= 10 replicates");
  PALU_CHECK(opts.confidence > 0.0 && opts.confidence < 1.0,
             "bootstrap_ci: confidence out of (0, 1)");
  PALU_CHECK(!h.empty(), "bootstrap_ci: empty histogram");

  const std::vector<double> point = statistic(h);
  PALU_CHECK(!point.empty(), "bootstrap_ci: statistic returned nothing");
  const std::size_t width = point.size();

  // Alias sampler over the empirical support.
  const auto entries = h.sorted();
  std::vector<double> weights;
  std::vector<Degree> values;
  weights.reserve(entries.size());
  values.reserve(entries.size());
  for (const auto& [d, c] : entries) {
    if (d == 0) continue;
    values.push_back(d);
    weights.push_back(static_cast<double>(c));
  }
  PALU_CHECK(!values.empty(), "bootstrap_ci: no positive-degree mass");
  const rng::AliasSampler sampler(weights);
  const Count n = h.total();

  std::vector<std::vector<double>> replicate_values(width);
  std::mutex lock;
  const Rng base = rng;
  parallel_for(
      pool, 0, static_cast<std::size_t>(opts.replicates), /*grain=*/1,
      [&](IndexRange range) {
        for (std::size_t rep = range.begin; rep < range.end; ++rep) {
          Rng local = base.fork(rep + 1);
          stats::DegreeHistogram resampled;
          for (Count i = 0; i < n; ++i) {
            resampled.add(values[sampler(local)]);
          }
          std::vector<double> stat;
          try {
            stat = statistic(resampled);
          } catch (const Error&) {
            continue;  // degenerate resample
          }
          if (stat.size() != width) continue;
          bool finite = true;
          for (const double v : stat) finite = finite && std::isfinite(v);
          if (!finite) continue;
          std::lock_guard<std::mutex> guard(lock);
          for (std::size_t k = 0; k < width; ++k) {
            replicate_values[k].push_back(stat[k]);
          }
        }
      });
  rng.jump();

  if (replicate_values.front().size() < 10) {
    throw DataError("bootstrap_ci: too few replicates survived refitting");
  }
  std::vector<BootstrapResult> out;
  out.reserve(width);
  for (std::size_t k = 0; k < width; ++k) {
    out.push_back(summarize_replicates(
        point[k], replicate_values[k], opts.confidence));
  }
  return out;
}

BootstrapResult bootstrap_ci(
    const stats::DegreeHistogram& h,
    const std::function<double(const stats::DegreeHistogram&)>& statistic,
    Rng& rng, ThreadPool& pool, const BootstrapOptions& opts) {
  const auto wrapped = [&statistic](const stats::DegreeHistogram& sample) {
    return std::vector<double>{statistic(sample)};
  };
  return bootstrap_ci_multi(h, wrapped, rng, pool, opts).front();
}

}  // namespace palu::fit
