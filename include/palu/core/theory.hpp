// Closed-form predictions for the observed network (Section IV).
//
// All quantities are ratios against the total number of *visible* nodes
// (degree >= 1 in the observed network).  V is the expected visible-node
// mass relative to the underlying normalization:
//
//   V = C·p^{α−1} / ((α−1)·ζ(α)) + L·p + U·(1 + λp − e^{−λp})
//
// Degree-distribution predictions (exact Poisson forms; the paper's
// (Λ/d)^d is a Stirling approximation of these):
//
//   share(1)    = [ C·p^α/ζ(α) + L·p + U·λp·(1 + e^{−λp}) ] / V
//   share(d>=2) = [ C·p^α/ζ(α) · d^{−α} + U·e^{−λp}·(λp)^d / d! ] / V
#pragma once

#include <cstdint>

#include "palu/common/types.hpp"
#include "palu/core/params.hpp"
#include "palu/stats/log_binning.hpp"

namespace palu::core {

/// Per-class composition of the observed network (node-count ratios).
struct ObservedComposition {
  double visible_mass = 0.0;      // V
  double core_share = 0.0;        // # core nodes / total
  double leaf_share = 0.0;        // # leaves / total
  double unattached_share = 0.0;  // # unattached (star) nodes / total
  double unattached_link_share = 0.0;  // # 2-node star components / total
};

/// The simplified constants of Section IV-B, all per-visible-node:
///   c = C·p^α / (ζ(α)·V), l = L·p / V, u = U·e^{−λp} / V, Λ = e·λ·p.
struct SimplifiedConstants {
  double c = 0.0;
  double l = 0.0;
  double u = 0.0;
  double lambda_cap = 0.0;  // Λ = e·λ·p
  double mu = 0.0;          // λ·p, the Poisson rate of visible star leaves
};

/// Evaluates V and the class shares for a parameter set.
ObservedComposition observed_composition(const PaluParams& params);

/// Evaluates c, l, u, Λ (and μ = λp).
SimplifiedConstants simplified_constants(const PaluParams& params);

/// share(d): expected fraction of visible nodes with observed degree d
/// (exact Poisson star term).  Requires d >= 1.
double degree_share(const PaluParams& params, Degree d);

/// The paper's Stirling-form approximation c·d^{−α} + u·(Λ/d)^d for d >= 2
/// (Eq. 3), provided for the fidelity ablation against `degree_share`.
double degree_share_paper_approx(const PaluParams& params, Degree d);

/// Log-binned theoretical distribution over bins 0..nbins−1 (bin i pools
/// degrees (2^{i−1}, 2^i]); core term by exact partial zeta sums, star term
/// summed until it underflows.  Mass is NOT renormalized over the binned
/// range — it already sums to ~1 when nbins covers the support.
stats::LogBinned pooled_theory(const PaluParams& params,
                               std::uint32_t nbins);

/// Section IV-A: the predicted log-log slope of pooled bin mass vs bin
/// upper edge for large bins is 1−α (not −α).  Returns that predicted
/// slope; trivial accessor used by benches/tests for self-documentation.
inline double pooled_tail_slope(const PaluParams& params) {
  return 1.0 - params.alpha;
}

// ---------------------------------------------------------------------
// Exact binomial-thinning predictions.
//
// The paper approximates Bin(D, p) ≈ D·p, which leaves its Section IV
// forms internally inconsistent (the degree-law amplitude C·p^α/ζ(α) does
// not sum to the visible-mass formula C·p^{α−1}/((α−1)ζ(α))).  The exact
// forms below mix the bounded-zeta underlying core degree D over the full
// Binomial(D, p) thinning law and are self-consistent: they are what the
// generative sampler actually converges to, and what the
// theory-vs-simulation bench validates.
// ---------------------------------------------------------------------

/// Exact visible mass: C·P[Bin(D, p) >= 1] + L·p + U·(1 + λp − e^{−λp}),
/// with D ~ zeta(α) truncated at `core_dmax` (0 = effectively unbounded).
double visible_mass_exact(const PaluParams& params, Degree core_dmax = 0);

/// Exact-thinning counterpart of observed_composition: same fields, with
/// the core visibility from the true Binomial mixture instead of the
/// paper's integral form.  Shares sum to 1 by construction.
ObservedComposition observed_composition_exact(const PaluParams& params,
                                               Degree core_dmax = 0);

/// Exact share of visible nodes with observed degree d >= 1.
double degree_share_exact(const PaluParams& params, Degree d,
                          Degree core_dmax = 0);

/// Log-binned exact-thinned theory (the self-consistent counterpart of
/// pooled_theory).  Cost grows with 2^nbins × the Bin(D, p) ridge width,
/// so nbins is capped at 14 — enough to cover the head and shoulder where
/// the thinning correction matters; the far tail is pure power law.
stats::LogBinned pooled_theory_exact(const PaluParams& params,
                                     std::uint32_t nbins,
                                     Degree core_dmax = 0);

}  // namespace palu::core
