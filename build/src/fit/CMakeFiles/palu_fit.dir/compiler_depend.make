# Empty compiler generated dependencies file for palu_fit.
# This may be replaced when dependencies are built.
