file(REMOVE_RECURSE
  "CMakeFiles/math_accuracy_test.dir/math_accuracy_test.cpp.o"
  "CMakeFiles/math_accuracy_test.dir/math_accuracy_test.cpp.o.d"
  "math_accuracy_test"
  "math_accuracy_test.pdb"
  "math_accuracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
