// Token-level lock-discipline heuristic (rules lock-guarded-by and
// lock-discipline).  See passes.hpp for the contract; the parser below is
// a deliberate approximation — it tracks class bodies, member
// declarations, and method bodies through balanced delimiters, but does
// not expand macros or instantiate templates.  Where the heuristic is
// wrong, the allow() suppressions are the designed escape hatch (and the
// stale-suppression pass keeps them honest).
#include "analyze/passes.hpp"

namespace palu::analyze {
namespace {

bool tok_is(const std::vector<Token>& toks, std::size_t i,
            TokKind kind, const char* text) {
  return i < toks.size() && toks[i].kind == kind && toks[i].text == text;
}
bool ident_at(const std::vector<Token>& toks, std::size_t i,
              const char* text) {
  return tok_is(toks, i, TokKind::kIdent, text);
}
bool punct_at(const std::vector<Token>& toks, std::size_t i,
              const char* text) {
  return tok_is(toks, i, TokKind::kPunct, text);
}

bool any_of(const std::string& s, std::initializer_list<const char*> set) {
  for (const char* v : set) {
    if (s == v) return true;
  }
  return false;
}

// Mutex-ish member types: owning one makes the class subject to the
// guarded-by rule.
bool mutex_type(const std::string& id) {
  return any_of(id, {"mutex", "shared_mutex", "recursive_mutex",
                     "timed_mutex", "recursive_timed_mutex",
                     "shared_timed_mutex"});
}

// Members that are synchronization primitives or lock-free by design and
// therefore exempt from PALU_GUARDED_BY.
bool exempt_type(const std::string& id) {
  return any_of(id, {"atomic", "atomic_bool", "atomic_flag", "atomic_int",
                     "atomic_uint64_t", "condition_variable",
                     "condition_variable_any", "thread", "jthread",
                     "once_flag", "stop_source", "stop_token"});
}

// The thread-annotation macros from common/thread_annotations.hpp.  The
// names are spelled as strings so this pass's own source cannot look like
// an annotated declaration to itself.
bool annotation_macro(const std::string& id) {
  return any_of(id, {"PALU_GUARDED_BY", "PALU_PT_GUARDED_BY",
                     "PALU_REQUIRES", "PALU_ACQUIRE", "PALU_RELEASE",
                     "PALU_EXCLUDES", "PALU_NO_THREAD_SAFETY_ANALYSIS"});
}

bool guard_annotation(const std::string& id) {
  return id == "PALU_GUARDED_BY" || id == "PALU_PT_GUARDED_BY";
}

class ClassScanner {
 public:
  ClassScanner(const FileScan& scan,
               std::map<std::string, ClassInfo>* classes,
               std::vector<MethodBody>* methods)
      : scan_(scan),
        toks_(scan.toks.code),
        classes_(classes),
        methods_(methods) {}

  void run() { walk_namespace_scope(0, toks_.size()); }

 private:
  // ---- balanced-delimiter helpers (all take the index of the opener and
  // return the index just past the matching closer, clamped to `end`).

  std::size_t skip_balanced(std::size_t i, std::size_t end,
                            const char* open, const char* close) const {
    std::size_t depth = 0;
    for (; i < end; ++i) {
      if (punct_at(toks_, i, open)) ++depth;
      else if (punct_at(toks_, i, close) && --depth == 0) return i + 1;
    }
    return end;
  }

  // Template-argument skip: from '<' to its matching '>' (heuristic:
  // parens and braces inside are balanced through; every '<'/'>' counts).
  // Identifiers met along the way are appended to `type_idents` so
  // std::array<std::atomic<...>, N> still reads as atomic-ish.
  std::size_t skip_angles(std::size_t i, std::size_t end,
                          std::vector<std::string>* type_idents) const {
    std::size_t depth = 0;
    for (; i < end; ++i) {
      if (punct_at(toks_, i, "<")) ++depth;
      else if (punct_at(toks_, i, ">") && --depth == 0) return i + 1;
      else if (punct_at(toks_, i, "(")) i = skip_balanced(i, end, "(", ")") - 1;
      else if (punct_at(toks_, i, "{")) i = skip_balanced(i, end, "{", "}") - 1;
      else if (toks_[i].kind == TokKind::kIdent && type_idents != nullptr) {
        type_idents->push_back(toks_[i].text);
      }
    }
    return end;
  }

  // ---- namespace / global scope -----------------------------------

  void walk_namespace_scope(std::size_t i, std::size_t end) {
    bool pending_namespace = false;
    while (i < end) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kIdent) {
        if (t.text == "namespace") {
          pending_namespace = true;
          ++i;
          continue;
        }
        if (t.text == "template" && punct_at(toks_, i + 1, "<")) {
          i = skip_angles(i + 1, end, nullptr);
          continue;
        }
        if (t.text == "enum") {
          i = skip_enum(i, end);
          continue;
        }
        if (t.text == "class" || t.text == "struct") {
          i = parse_class_head(i, end);
          continue;
        }
        // Out-of-line member definition: Qualified::name(...) ... { }
        const std::size_t after = try_out_of_line_method(i, end);
        if (after != i) {
          i = after;
          continue;
        }
        ++i;
        continue;
      }
      if (punct_at(toks_, i, "{")) {
        if (pending_namespace) {
          // Namespace braces are transparent: keep walking inside so the
          // classes within are discovered (the matching '}' is just
          // another closer on the way).
          pending_namespace = false;
          ++i;
          continue;
        }
        // Function body / initializer at namespace scope: opaque.
        i = skip_balanced(i, end, "{", "}");
        continue;
      }
      if (punct_at(toks_, i, ";")) pending_namespace = false;
      ++i;
    }
  }

  std::size_t skip_enum(std::size_t i, std::size_t end) const {
    ++i;  // 'enum'
    if (ident_at(toks_, i, "class") || ident_at(toks_, i, "struct")) ++i;
    while (i < end && !punct_at(toks_, i, "{") && !punct_at(toks_, i, ";")) {
      ++i;
    }
    if (punct_at(toks_, i, "{")) i = skip_balanced(i, end, "{", "}");
    return i;
  }

  // 'class'/'struct' at `i`; parses the head and, when a definition
  // follows, the body.  Returns the index past the head or body.
  std::size_t parse_class_head(std::size_t i, std::size_t end) {
    ++i;  // 'class' / 'struct'
    std::string name;
    if (i < end && toks_[i].kind == TokKind::kIdent &&
        !toks_[i].text.empty()) {
      name = toks_[i].text;
      ++i;
      if (punct_at(toks_, i, "<")) i = skip_angles(i, end, nullptr);
    }
    // Scan the rest of the head (final, base clause) to '{' or ';'.
    while (i < end && !punct_at(toks_, i, "{") && !punct_at(toks_, i, ";")) {
      if (punct_at(toks_, i, "(")) {
        // `class X` used in an expression/param — not a definition head.
        return i;
      }
      if (punct_at(toks_, i, "<")) {
        i = skip_angles(i, end, nullptr);
        continue;
      }
      ++i;
    }
    if (i >= end || punct_at(toks_, i, ";")) return i;  // fwd decl
    const std::size_t body_end = skip_balanced(i, end, "{", "}");
    if (!name.empty()) {
      parse_class_body(name, i + 1, body_end - 1);
    }
    return body_end;
  }

  // ---- class bodies -------------------------------------------------

  void parse_class_body(const std::string& class_name, std::size_t i,
                        std::size_t end) {
    ClassInfo& cls = (*classes_)[class_name];
    cls.name = class_name;
    while (i < end) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kIdent) {
        if (any_of(t.text, {"public", "private", "protected"}) &&
            punct_at(toks_, i + 1, ":")) {
          i += 2;
          continue;
        }
        if (t.text == "friend" || t.text == "using" ||
            t.text == "typedef") {
          while (i < end && !punct_at(toks_, i, ";")) ++i;
          ++i;
          continue;
        }
        if (t.text == "template" && punct_at(toks_, i + 1, "<")) {
          i = skip_angles(i + 1, end, nullptr);
          continue;
        }
        if (t.text == "enum") {
          i = skip_enum(i, end);
          if (punct_at(toks_, i, ";")) ++i;
          continue;
        }
        if (t.text == "class" || t.text == "struct") {
          i = parse_class_head(i, end);
          // Skip any trailing declarator and the ';'.
          while (i < end && !punct_at(toks_, i, ";")) ++i;
          ++i;
          continue;
        }
        i = parse_member_statement(class_name, &cls, i, end);
        continue;
      }
      ++i;
    }
  }

  // One member statement starting at `i`: a data member, a method
  // declaration, or a method definition.  Returns the index past it.
  std::size_t parse_member_statement(const std::string& class_name,
                                     ClassInfo* cls, std::size_t i,
                                     std::size_t end) {
    const std::size_t stmt_line = toks_[i].line;
    std::vector<std::string> type_idents;
    std::string last_ident;          // declarator-name candidate
    std::size_t last_ident_line = stmt_line;
    bool seen_paren = false;         // top-level '(' group (function-ish)
    bool seen_assign = false;
    bool assign_before_paren = false;
    bool has_guard_annotation = false;
    bool has_requires = false;
    bool dtor = false;
    std::string name_before_paren;   // method-name candidate

    while (i < end) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kIdent) {
        if (annotation_macro(t.text)) {
          has_guard_annotation |= guard_annotation(t.text);
          has_requires |= t.text == "PALU_REQUIRES";
          ++i;
          if (punct_at(toks_, i, "(")) i = skip_balanced(i, end, "(", ")");
          continue;
        }
        if ((t.text == "alignas" || t.text == "decltype" ||
             t.text == "noexcept") &&
            punct_at(toks_, i + 1, "(")) {
          i = skip_balanced(i + 1, end, "(", ")");
          continue;
        }
        type_idents.push_back(t.text);
        if (!seen_assign) {
          last_ident = t.text;
          last_ident_line = t.line;
        }
        ++i;
        if (punct_at(toks_, i, "<")) i = skip_angles(i, end, &type_idents);
        continue;
      }
      if (punct_at(toks_, i, "~")) {
        dtor = true;
        ++i;
        continue;
      }
      if (punct_at(toks_, i, "(")) {
        if (!seen_paren && !seen_assign) {
          seen_paren = true;
          name_before_paren = last_ident;
        }
        if (seen_assign && !seen_paren) assign_before_paren = true;
        i = skip_balanced(i, end, "(", ")");
        continue;
      }
      if (punct_at(toks_, i, "=")) {
        seen_assign = true;
        if (!seen_paren) assign_before_paren = true;
        ++i;
        continue;
      }
      if (punct_at(toks_, i, "[")) {
        i = skip_balanced(i, end, "[", "]");
        continue;
      }
      if (punct_at(toks_, i, "{")) {
        if (seen_paren && !assign_before_paren) {
          // Method definition: record the body and finish the statement.
          const std::size_t body_end = skip_balanced(i, end + 1, "{", "}");
          MethodBody m;
          m.class_name = class_name;
          m.name = name_before_paren;
          m.line = stmt_line;
          m.body_begin = i + 1;
          m.body_end = body_end > 0 ? body_end - 1 : i + 1;
          m.has_requires = has_requires;
          m.ctor_dtor = dtor || name_before_paren == class_name;
          methods_->push_back(std::move(m));
          return body_end;
        }
        // Brace initializer: part of the declaration.
        i = skip_balanced(i, end, "{", "}");
        continue;
      }
      if (punct_at(toks_, i, ";")) {
        ++i;
        break;
      }
      ++i;
    }

    // Statement ended at ';' — classify.
    const bool function_decl = seen_paren && !assign_before_paren;
    if (function_decl || last_ident.empty()) return i;
    bool has_specifier = false;
    bool is_mutex = false;
    bool is_exempt = false;
    bool is_const = false;
    for (std::size_t k = 0; k < type_idents.size(); ++k) {
      const std::string& id = type_idents[k];
      // The last identifier is the declarator name, not part of the type.
      const bool is_name_tok =
          k + 1 == type_idents.size() && id == last_ident;
      has_specifier |= any_of(id, {"static", "constexpr", "operator",
                                   "inline", "extern"});
      if (!is_name_tok) {
        is_mutex |= mutex_type(id);
        is_exempt |= exempt_type(id);
        is_const |= id == "const";
      }
    }
    if (has_specifier) return i;
    if (is_mutex) {
      cls->mutex_members.push_back(last_ident);
      return i;
    }
    if (has_guard_annotation) {
      cls->guarded_members.insert(last_ident);
      return i;
    }
    if (is_exempt || is_const) return i;
    cls->unguarded.push_back(
        {scan_.path.string(), last_ident_line, kRuleLockGuardedBy,
         "class " + class_name + " holds a mutex, so data member `" +
             last_ident +
             "` must declare its guard with PALU_GUARDED_BY / "
             "PALU_PT_GUARDED_BY (atomics, condition variables, threads, "
             "and const members are exempt)"});
    return i;
  }

  // ---- out-of-line method definitions -------------------------------

  // At `i` (an identifier): tries to match Qualified::name(...) and, when
  // a body follows, records it.  Returns the index past the definition,
  // or `i` unchanged when the shape does not match.
  std::size_t try_out_of_line_method(std::size_t i, std::size_t end) {
    std::string prev;       // component before the last '::'
    std::string name;       // last component
    bool dtor = false;
    std::size_t j = i;
    if (toks_[j].kind != TokKind::kIdent) return i;
    std::string current = toks_[j].text;
    ++j;
    if (punct_at(toks_, j, "<")) j = skip_angles(j, end, nullptr);
    if (!punct_at(toks_, j, "::")) return i;
    while (punct_at(toks_, j, "::")) {
      ++j;
      if (punct_at(toks_, j, "~")) {
        dtor = true;
        ++j;
      }
      if (j >= end || toks_[j].kind != TokKind::kIdent) return i;
      prev = current;
      current = toks_[j].text;
      ++j;
      if (punct_at(toks_, j, "<")) j = skip_angles(j, end, nullptr);
    }
    name = current;
    if (!punct_at(toks_, j, "(")) return i;
    const std::size_t stmt_line = toks_[i].line;
    j = skip_balanced(j, end, "(", ")");
    // Trailer: cv-qualifiers, noexcept(...), annotations, trailing
    // return, constructor init lists — up to '{' (definition), ';'
    // (declaration), or '=' (= default / = delete).
    bool has_requires = false;
    while (j < end && !punct_at(toks_, j, "{") &&
           !punct_at(toks_, j, ";") && !punct_at(toks_, j, "=")) {
      if (toks_[j].kind == TokKind::kIdent &&
          toks_[j].text == "PALU_REQUIRES") {
        has_requires = true;
      }
      if (punct_at(toks_, j, "(")) {
        j = skip_balanced(j, end, "(", ")");
        continue;
      }
      // Constructor member-init braces: X::X() : a_{1}, b_(2) { ... }
      if (punct_at(toks_, j, "{") ) break;
      if (tok_is(toks_, j, TokKind::kPunct, "{")) break;
      if (punct_at(toks_, j, "<")) {
        j = skip_angles(j, end, nullptr);
        continue;
      }
      if (tok_is(toks_, j, TokKind::kPunct, "{")) break;
      if (toks_[j].kind == TokKind::kPunct && toks_[j].text == "{") break;
      if (toks_[j].kind == TokKind::kPunct && toks_[j].text == "}") break;
      if (toks_[j].kind == TokKind::kPunct &&
          (toks_[j].text == "[")) {
        j = skip_balanced(j, end, "[", "]");
        continue;
      }
      ++j;
    }
    if (j >= end || !punct_at(toks_, j, "{")) {
      // Declaration or defaulted definition: consume to ';' so the walk
      // advances deterministically.
      while (j < end && !punct_at(toks_, j, ";")) ++j;
      return j < end ? j + 1 : end;
    }
    // Constructor init lists put brace-initializers before the body; the
    // body is the last balanced brace group of the statement.  Walk brace
    // groups until the one that is followed by neither ',' nor an
    // initializer continuation.
    std::size_t body_open = j;
    while (true) {
      const std::size_t close = skip_balanced(body_open, end, "{", "}");
      // Init-list groups are followed by ',' or another initializer
      // (identifier then '(' or '{'); a body is followed by anything
      // else (typically a new declaration or '}').
      if (close < end && punct_at(toks_, close, ",")) {
        std::size_t k = close + 1;
        while (k < end && !punct_at(toks_, k, "{") &&
               !punct_at(toks_, k, "(") && !punct_at(toks_, k, ";")) {
          ++k;
        }
        if (k < end && punct_at(toks_, k, "(")) {
          k = skip_balanced(k, end, "(", ")");
          while (k < end && !punct_at(toks_, k, "{")) ++k;
        }
        if (k < end && punct_at(toks_, k, "{")) {
          body_open = k;
          continue;
        }
      }
      MethodBody m;
      m.class_name = prev;
      m.name = name;
      m.line = stmt_line;
      m.body_begin = body_open + 1;
      m.body_end = close > 0 ? close - 1 : body_open + 1;
      m.has_requires = has_requires;
      m.ctor_dtor = dtor || name == prev;
      methods_->push_back(std::move(m));
      return close;
    }
  }

  const FileScan& scan_;
  const std::vector<Token>& toks_;
  std::map<std::string, ClassInfo>* classes_;
  std::vector<MethodBody>* methods_;
};

// Lock-acquisition fingerprints inside a method body.
bool body_takes_lock(const std::vector<Token>& toks, std::size_t begin,
                     std::size_t end) {
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (any_of(t.text, {"lock_guard", "unique_lock", "scoped_lock",
                        "shared_lock"})) {
      return true;
    }
    if ((t.text == "lock" || t.text == "try_lock" ||
         t.text == "lock_shared") &&
        i > 0 &&
        (punct_at(toks, i - 1, ".") || punct_at(toks, i - 1, "->")) &&
        punct_at(toks, i + 1, "(")) {
      return true;
    }
  }
  return false;
}

}  // namespace

void scan_classes(const FileScan& scan,
                  std::map<std::string, ClassInfo>* classes,
                  std::vector<MethodBody>* methods) {
  ClassScanner(scan, classes, methods).run();
}

void check_lock_discipline(const FileScan& scan,
                           const std::map<std::string, ClassInfo>& classes,
                           const std::vector<MethodBody>& methods,
                           std::vector<Violation>* out) {
  const std::string file = scan.path.string();
  for (const auto& [name, cls] : classes) {
    if (cls.mutex_members.empty()) continue;
    for (const Violation& v : cls.unguarded) {
      if (v.file == file) out->push_back(v);
    }
  }
  const std::vector<Token>& toks = scan.toks.code;
  for (const MethodBody& m : methods) {
    const auto it = classes.find(m.class_name);
    if (it == classes.end()) continue;
    const ClassInfo& cls = it->second;
    if (cls.mutex_members.empty() || cls.guarded_members.empty()) continue;
    if (m.ctor_dtor || m.has_requires) continue;
    if (body_takes_lock(toks, m.body_begin, m.body_end)) continue;
    for (std::size_t i = m.body_begin; i < m.body_end && i < toks.size();
         ++i) {
      if (toks[i].kind == TokKind::kIdent &&
          cls.guarded_members.count(toks[i].text) != 0) {
        out->push_back(
            {file, toks[i].line, kRuleLockDiscipline,
             m.class_name + "::" + m.name + " touches `" + toks[i].text +
                 "` (PALU_GUARDED_BY) without taking the lock in its "
                 "body or declaring PALU_REQUIRES"});
        break;  // one diagnostic per method is enough to act on
      }
    }
  }
}

}  // namespace palu::analyze
