# Empty compiler generated dependencies file for bench_fig3_zm_fits.
# This may be replaced when dependencies are built.
