// Streaming PALU estimation.
//
// The paper's data arrive as an endless sequence of fixed-N_V windows;
// an operator wants running parameter estimates, not a one-shot batch
// fit.  Two estimators live here:
//
//  - StreamingPaluEstimator: the original cumulative-aggregate tracker.
//    It merges every window histogram into one growing aggregate and
//    refits the Section IV-B constants after each, so the trajectory
//    converges to the batch fit as data accumulate.
//
//  - WindowedStreamingEstimator: the serve daemon's per-window engine.
//    Each window is fitted on its own (tumbling lane) and as part of a
//    bounded sliding horizon of recent windows (sliding lane), with the
//    robust LM → Nelder–Mead → moments ladder warm-started from the
//    previous window's parameters.  A window the ladder cannot fit — or
//    one force-degraded by the caller (fit deadline, injected fault) —
//    keeps the previous parameters tagged kStale instead of failing, so
//    the service degrades rather than dies.  The complete estimator
//    state (lanes + horizon) is exposed for checkpointing: restoring a
//    StreamingState and replaying the same windows reproduces the exact
//    fits of an uninterrupted run.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "palu/core/estimate.hpp"
#include "palu/fit/robust.hpp"
#include "palu/fit/zipf_mandelbrot.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::core {

class StreamingPaluEstimator {
 public:
  /// `history_cap` bounds the per-refit history: once more than
  /// `history_cap` refits have succeeded the oldest entries are dropped,
  /// so an unbounded stream cannot grow the estimator without limit.  The
  /// default 0 keeps the full history (the batch-caller behaviour).
  explicit StreamingPaluEstimator(PaluFitOptions opts = {},
                                  std::size_t history_cap = 0)
      : opts_(opts), history_cap_(history_cap) {}

  /// Folds one window's degree histogram into the running aggregate and
  /// refits.  Windows whose aggregate is still too thin to fit (DataError
  /// from the pipeline) are absorbed without producing a snapshot.
  void add_window(const stats::DegreeHistogram& window);

  std::size_t windows_seen() const noexcept { return windows_; }

  /// Latest successful fit; throws palu::DataError when no window has
  /// produced a fittable aggregate yet.
  const PaluFit& current() const;

  bool has_fit() const noexcept { return latest_.has_value(); }

  /// Entries per successful refit, in arrival order; at most history_cap()
  /// entries when a cap is set (oldest dropped first).
  const std::vector<PaluFit>& history() const noexcept { return history_; }

  /// Maximum retained history entries; 0 means unbounded.
  std::size_t history_cap() const noexcept { return history_cap_; }

  /// The merged histogram backing the current fit.
  const stats::DegreeHistogram& aggregate() const noexcept {
    return merged_;
  }

 private:
  PaluFitOptions opts_;
  std::size_t history_cap_ = 0;
  stats::DegreeHistogram merged_;
  std::optional<PaluFit> latest_;
  std::vector<PaluFit> history_;
  std::size_t windows_ = 0;
};

// ---------------------------------------------------------------------------
// Windowed streaming estimation (the `palu_tool serve` engine).
// ---------------------------------------------------------------------------

/// Knobs for the windowed estimator.
struct StreamingOptions {
  PaluFitOptions fit;
  fit::RobustFitOptions robust;
  /// Joint-polish degree cap forwarded to the robust ladder.
  Degree refine_max = 256;
  /// Windows merged into the sliding lane (>= 1).  The horizon is a
  /// bounded deque: window t's sliding fit sees windows
  /// [t − horizon + 1, t].
  std::size_t sliding_horizon = 4;
  /// Seed each window's ladder from the previous window's parameters.
  bool warm_start = true;
  /// Also fit the modified Zipf–Mandelbrot model per window.
  bool fit_zm = true;
};

/// Provenance of the parameters a lane currently serves.
enum class FitFreshness {
  kNone,   ///< no window has ever produced parameters on this lane
  kFresh,  ///< parameters come from the most recent window
  kStale,  ///< most recent window degraded; serving an older window's fit
};

std::string_view to_string(FitFreshness f) noexcept;

/// One lane's serveable state: the PALU parameters (and optionally the ZM
/// companion fit) plus how trustworthy they are right now.
struct StreamingFitSnapshot {
  PaluFit fit;
  fit::RobustStage stage = fit::RobustStage::kFailed;
  FitFreshness freshness = FitFreshness::kNone;
  /// The staged pipeline failed and the warm-start parameters served as
  /// the base fit (see RobustPaluFit::warm_base).
  bool warm_base = false;
  fit::ZmFitResult zm;
  bool zm_valid = false;
  /// Why the most recent window degraded this lane (empty when fresh).
  std::string error;

  bool has_fit() const noexcept {
    return freshness != FitFreshness::kNone;
  }
};

/// Outcome of one refit_window call: both lanes after folding the window.
struct StreamingRefit {
  std::size_t window_index = 0;  ///< 0-based index of the window just fed
  StreamingFitSnapshot window;   ///< tumbling lane (this window alone)
  StreamingFitSnapshot sliding;  ///< sliding lane (horizon merge)
  /// True when the tumbling lane got fresh parameters from this window.
  bool fresh = false;
};

/// The complete serializable estimator state.  restore()ing this and
/// replaying the same subsequent windows yields byte-identical fits to an
/// uninterrupted run — the contract the serve checkpoint relies on.
struct StreamingState {
  std::size_t windows = 0;        ///< windows folded so far
  std::size_t stale_windows = 0;  ///< refits that left the tumbling lane stale
  /// Consecutive refits (ending at the last window) that left the
  /// tumbling lane stale.  Part of the serializable state: the serve
  /// staleness gauge is derived from it, so a restore that dropped it
  /// would break the byte-identical-resume contract for metrics.
  std::size_t consecutive_stale = 0;
  StreamingFitSnapshot window_lane;
  StreamingFitSnapshot sliding_lane;
  /// Sliding horizon, oldest first (at most sliding_horizon entries).
  std::vector<stats::DegreeHistogram> horizon;
};

class WindowedStreamingEstimator {
 public:
  explicit WindowedStreamingEstimator(StreamingOptions opts = {});

  /// Folds one window histogram and refits both lanes.  When
  /// `forced_error` is non-empty the window is treated as un-fittable
  /// (deadline overrun, injected fault): the histogram still enters the
  /// horizon — so a later restore replay stays consistent — but both
  /// lanes keep their previous parameters tagged kStale.  Never throws
  /// for bad data; a window the ladder cannot fit degrades the same way.
  StreamingRefit refit_window(const stats::DegreeHistogram& window,
                              std::string_view forced_error = {});

  std::size_t windows_seen() const noexcept { return state_.windows; }
  std::size_t stale_windows() const noexcept {
    return state_.stale_windows;
  }
  /// Consecutive refits (ending now) that left the tumbling lane stale.
  /// Lives in StreamingState, so it survives checkpoint restore.
  std::size_t consecutive_stale() const noexcept {
    return state_.consecutive_stale;
  }

  const StreamingFitSnapshot& window_fit() const noexcept {
    return state_.window_lane;
  }
  const StreamingFitSnapshot& sliding_fit() const noexcept {
    return state_.sliding_lane;
  }

  const StreamingOptions& options() const noexcept { return opts_; }

  /// Snapshot of the complete state for checkpointing.
  StreamingState state() const;

  /// Replaces the estimator state (checkpoint restore).  Horizon entries
  /// beyond sliding_horizon are dropped oldest-first.
  void restore(StreamingState state);

 private:
  StreamingFitSnapshot fit_lane(const stats::DegreeHistogram& h,
                                const StreamingFitSnapshot& previous);
  static StreamingFitSnapshot degrade(const StreamingFitSnapshot& previous,
                                      std::string_view why);

  StreamingOptions opts_;
  StreamingState state_;
  std::deque<stats::DegreeHistogram> horizon_;
};

}  // namespace palu::core
