file(REMOVE_RECURSE
  "libpalu_parallel.a"
)
