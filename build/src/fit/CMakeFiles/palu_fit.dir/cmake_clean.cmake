file(REMOVE_RECURSE
  "CMakeFiles/palu_fit.dir/bootstrap.cpp.o"
  "CMakeFiles/palu_fit.dir/bootstrap.cpp.o.d"
  "CMakeFiles/palu_fit.dir/brent.cpp.o"
  "CMakeFiles/palu_fit.dir/brent.cpp.o.d"
  "CMakeFiles/palu_fit.dir/ks_test.cpp.o"
  "CMakeFiles/palu_fit.dir/ks_test.cpp.o.d"
  "CMakeFiles/palu_fit.dir/levmar.cpp.o"
  "CMakeFiles/palu_fit.dir/levmar.cpp.o.d"
  "CMakeFiles/palu_fit.dir/linreg.cpp.o"
  "CMakeFiles/palu_fit.dir/linreg.cpp.o.d"
  "CMakeFiles/palu_fit.dir/model_zoo.cpp.o"
  "CMakeFiles/palu_fit.dir/model_zoo.cpp.o.d"
  "CMakeFiles/palu_fit.dir/nelder_mead.cpp.o"
  "CMakeFiles/palu_fit.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/palu_fit.dir/powerlaw_mle.cpp.o"
  "CMakeFiles/palu_fit.dir/powerlaw_mle.cpp.o.d"
  "CMakeFiles/palu_fit.dir/zipf_mandelbrot.cpp.o"
  "CMakeFiles/palu_fit.dir/zipf_mandelbrot.cpp.o.d"
  "libpalu_fit.a"
  "libpalu_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palu_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
