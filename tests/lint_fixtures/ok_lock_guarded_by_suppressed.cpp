// Fixture: a justified unannotated member next to a mutex.
// palu-lint-expect-clean
#include <functional>
#include <mutex>
#include <vector>

#include "palu/common/thread_annotations.hpp"

class Cache {
 public:
  void put(int k) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(k);
  }

 private:
  std::mutex mutex_;
  std::vector<int> entries_ PALU_GUARDED_BY(mutex_);
  // Written only during construction, before the cache is shared.
  // palu-lint: allow(lock-guarded-by)
  std::function<int(int)> hasher_;
};
