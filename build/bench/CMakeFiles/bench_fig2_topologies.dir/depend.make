# Empty dependencies file for bench_fig2_topologies.
# This may be replaced when dependencies are built.
