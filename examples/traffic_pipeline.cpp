// The Section II measurement pipeline on a synthetic trunk capture:
// packet stream → equal-N_V windows → five Fig-1 quantities → binary
// log pooling with cross-window error bars → modified Zipf–Mandelbrot fits.
//
//   build/examples/traffic_pipeline [windows] [n_valid]
#include <cstdio>
#include <cstdlib>

#include "palu/palu.hpp"

int main(int argc, char** argv) {
  using namespace palu;
  const std::size_t num_windows =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const Count n_valid = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                 : 100000;

  // Underlying who-talks-to-whom network: PALU with a busy core.
  const core::PaluParams params = core::PaluParams::solve_hubs(
      /*lambda=*/3.0, /*core=*/0.4, /*leaves=*/0.25, /*alpha=*/2.0,
      /*window=*/1.0);
  Rng rng(7);
  const auto net = core::generate_underlying(params, 50000, rng);

  traffic::RateModel rates;
  rates.kind = traffic::RateModel::Kind::kPareto;
  rates.pareto_tail = 1.6;
  traffic::SyntheticTrafficGenerator stream(net.graph, rates, Rng(11));
  std::printf("stream over %zu underlying edges; %zu windows of N_V=%llu\n",
              stream.num_edges(), num_windows,
              static_cast<unsigned long long>(n_valid));
  std::printf("effective PALU window parameter p ~ %.4f\n",
              stream.expected_edge_visibility(n_valid));

  // One ensemble per Fig-1 quantity.  A quantity whose fit blows up is
  // reported and skipped — a monitoring run keeps its other panels.
  for (const auto q : traffic::kAllQuantities) {
    try {
      stats::BinnedEnsemble ensemble;
      Degree dmax = 0;
      traffic::SyntheticTrafficGenerator replay(net.graph, rates,
                                                Rng(11));
      for (std::size_t t = 0; t < num_windows; ++t) {
        const auto window = replay.window(n_valid);
        const auto h = traffic::quantity_histogram(window, q);
        dmax = std::max(dmax, h.max_degree());
        ensemble.add(stats::LogBinned::from_histogram(h));
      }
      fit::ZmFitOptions opts;
      opts.bin_sigma = ensemble.stddev();
      const auto zm = fit::fit_zipf_mandelbrot(
          stats::LogBinned(ensemble.mean()), dmax, opts);
      std::printf("%-22s d_max=%-8llu alpha=%.3f delta=%.3f sse=%.2e%s\n",
                  std::string(traffic::quantity_name(q)).c_str(),
                  static_cast<unsigned long long>(dmax), zm.alpha,
                  zm.delta, zm.objective,
                  zm.converged ? "" : "  (not converged)");
    } catch (const Error& e) {
      std::printf("%-22s skipped: %s\n",
                  std::string(traffic::quantity_name(q)).c_str(),
                  e.what());
    }
  }

  // Degraded-mode PALU constants over a window's undirected degrees: the
  // result is tagged with the optimizer stage that produced it.
  traffic::SyntheticTrafficGenerator degree_stream(net.graph, rates,
                                                   Rng(11));
  const auto robust = core::robust_fit_palu(traffic::quantity_histogram(
      degree_stream.window(n_valid), traffic::Quantity::kUndirectedDegree));
  if (robust.ok()) {
    std::printf("\npalu constants (stage=%s): alpha=%.3f c=%.4f mu=%.3f "
                "u=%.5f l=%.4f\n",
                std::string(fit::to_string(robust.stage)).c_str(),
                robust.fit.alpha, robust.fit.c, robust.fit.mu,
                robust.fit.u, robust.fit.l);
  } else {
    std::printf("\npalu constants: unavailable (%s)\n",
                robust.error.c_str());
  }

  // Table-I aggregates of the last window, cross-checked in both notations.
  traffic::SyntheticTrafficGenerator final_stream(net.graph, rates,
                                                  Rng(11));
  const auto window = final_stream.window(n_valid);
  const auto sum_form = traffic::aggregates_summation(window);
  const auto mat_form = traffic::aggregates_matrix(window);
  std::printf("\nTable I aggregates (summation == matrix notation: %s)\n",
              sum_form == mat_form ? "yes" : "NO");
  std::printf("  valid packets        %llu\n",
              static_cast<unsigned long long>(sum_form.valid_packets));
  std::printf("  unique links         %llu\n",
              static_cast<unsigned long long>(sum_form.unique_links));
  std::printf("  unique sources       %llu\n",
              static_cast<unsigned long long>(sum_form.unique_sources));
  std::printf("  unique destinations  %llu\n",
              static_cast<unsigned long long>(sum_form.unique_destinations));
  return 0;
}
