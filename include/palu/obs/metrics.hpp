// palu::obs — a lock-cheap metrics registry for the production pipeline.
//
// The paper's analysis is meant to run continuously over live trunk
// captures, so every hot layer (ingest, window sweeps, the fit ladder)
// records what it did into a Registry: monotone Counters, settable
// Gauges, and latency Histograms with fixed binary-log buckets — the same
// d_i = 2^i pooling idiom the paper uses for degree distributions
// (stats::LogBinned), applied to nanosecond durations and iteration
// counts.
//
// Concurrency contract: registration (name → metric object) takes a
// mutex and is expected once per call site, typically hoisted out of the
// hot loop; recording (inc / set / observe) is a relaxed atomic op per
// event, safe from any thread, and never allocates.  Metric references
// returned by the registry stay valid for the registry's lifetime.
//
// Determinism contract: the registry never reads a clock — durations
// enter it only through obs::TraceSpan (src/obs/span.cpp, the one
// lint-allowlisted timing file of the subsystem) or through values the
// caller already holds.  No analysis result ever depends on a metric.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "palu/common/thread_annotations.hpp"

namespace palu::obs {

/// Metric labels: (key, value) pairs, Prometheus-style.  Keys must match
/// [a-zA-Z_][a-zA-Z0-9_]*; values are free-form (escaped on export).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (pool sizes, configured budgets).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency/size histogram on binary-log edges: bucket 0
/// holds v <= 1 and bucket i holds v in (2^{i-1}, 2^i], mirroring
/// stats::LogBinned.  The top bucket (i = 63) saturates: it also absorbs
/// every value past 2^63, so no observation can fall outside the array.
class Histogram {
 public:
  static constexpr std::uint32_t kNumBuckets = 64;

  /// Bucket index of `v` under the saturating log2 layout above.
  static std::uint32_t bucket_index(std::uint64_t v) noexcept;

  /// Inclusive upper edge 2^i of bucket i (i < 64).  The top bucket's
  /// nominal edge understates its contents by design (saturation).
  static std::uint64_t bucket_upper(std::uint32_t i) noexcept;

  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(std::uint32_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// ------------------------------------------------------------ snapshots
//
// A snapshot is a plain-data copy of every registered series, sorted by
// (name, labels) so two registries fed identical event streams produce
// byte-identical snapshots — the property the fast-vs-legacy sweep
// equivalence suite asserts.

struct CounterSample {
  std::string name;
  Labels labels;
  std::uint64_t value = 0;
  bool operator==(const CounterSample&) const = default;
};

struct GaugeSample {
  std::string name;
  Labels labels;
  std::int64_t value = 0;
  bool operator==(const GaugeSample&) const = default;
};

struct HistogramSample {
  std::string name;
  Labels labels;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// Per-bucket (non-cumulative) counts, trimmed after the last
  /// non-empty bucket; bucket i spans (2^{i-1}, 2^i].
  std::vector<std::uint64_t> buckets;
  bool operator==(const HistogramSample&) const = default;
};

struct RegistrySnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  /// name → help text for the exporters.
  std::map<std::string, std::string> help;
};

// ------------------------------------------------------------- registry

/// Named metric store.  `counter`/`gauge`/`histogram` find-or-create the
/// series for (name, labels) and return a stable reference; re-requesting
/// an existing series with a different metric kind throws
/// palu::InvalidArgument, as does a name or label key that is not valid
/// under the Prometheus exposition grammar.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, const Labels& labels = {},
                   std::string_view help = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {},
               std::string_view help = {});
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       std::string_view help = {});

  /// Consistent point-in-time copy of every series (values are read with
  /// relaxed loads; each series is internally consistent, the set is
  /// whatever has been recorded when the snapshot walks it).
  RegistrySnapshot snapshot() const;

  /// Zeroes every value, keeping all registrations (test/bench isolation
  /// between runs without invalidating cached references).
  void reset_values();

  std::size_t num_series() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Kind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& find_or_create(Kind kind, std::string_view name,
                         const Labels& labels, std::string_view help)
      PALU_EXCLUDES(mutex_);

  mutable std::mutex mutex_;
  /// Keyed by name + rendered labels; std::map keeps snapshots sorted
  /// and node-based storage keeps Series addresses stable.
  std::map<std::string, Series> series_ PALU_GUARDED_BY(mutex_);
  std::map<std::string, std::string> help_ PALU_GUARDED_BY(mutex_);
  std::map<std::string, Kind> kind_by_name_ PALU_GUARDED_BY(mutex_);
};

/// Process-wide default sink.  Instrumented layers record here unless an
/// options struct routes them to a caller-owned registry.
Registry& default_registry();

/// True iff `name` matches the Prometheus metric-name grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*.
bool valid_metric_name(std::string_view name) noexcept;

/// True iff `key` matches the label-name grammar [a-zA-Z_][a-zA-Z0-9_]*.
bool valid_label_name(std::string_view key) noexcept;

}  // namespace palu::obs
