// Timing TU: steady_clock reads here feed the SweepStageTimings
// diagnostics, the obs duration histograms, and the wall-clock timeout;
// no analysis result (histograms, ensembles, d_max) ever depends on the
// clock.  Listed in tools/timing_files.txt for palu_lint's determinism
// rule.
#include "palu/traffic/window_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "palu/common/failpoint.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"
#include "palu/obs/span.hpp"
#include "palu/parallel/parallel_for.hpp"
#include "palu/parallel/scratch_pool.hpp"
#include "palu/parallel/shard.hpp"
#include "palu/traffic/window_accumulator.hpp"
#include "palu/traffic/window_source.hpp"

namespace palu::traffic {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

/// Per-worker sweep scratch: one generator (edges + alias tables built
/// once, reseeded per window; absent on replay sweeps, which have no
/// graph), one arena-reused accumulator, one packet batch buffer.
/// Leased from a ScratchPool so whatever worker picks up a chunk reuses
/// an existing arena instead of rebuilding per window.  Intra-window
/// sharding adds per-shard sub-accumulators and (on the counts/replay
/// paths) per-shard record buckets; replay adds a block byte buffer and
/// capture an export record buffer, all arena-reused the same way.
struct SweepScratch {
  std::optional<SyntheticTrafficGenerator> gen;
  WindowAccumulator acc;
  std::vector<Packet> buf;
  std::vector<EdgePacketCounts> pairs;  // counts/replay window records
  std::vector<EdgePacketCounts> export_buf;  // capture-tee staging
  std::vector<std::byte> io_buf;             // replay block bytes
  std::vector<WindowAccumulator> shard_accs;
  std::vector<std::vector<EdgePacketCounts>> shard_pairs;
};

constexpr std::size_t kPacketBatch = 8192;

/// Immutable per-sweep description of one window's work, shared by every
/// stage: window size, quantity, and how the accumulate stage shards
/// (shards == 1 means unsharded; domain is the node-id routing range).
struct WindowPlan {
  Count n_valid;
  Quantity quantity;
  std::size_t shards;
  NodeId domain;
};

/// Plain per-stage nanosecond totals, accumulated worker-locally in the
/// hot loop and folded into both SweepStageTimings views afterwards.
struct StageNs {
  std::uint64_t sampling = 0;
  std::uint64_t accumulation = 0;
  std::uint64_t binning = 0;

  void add(const StageNs& o) noexcept {
    sampling += o.sampling;
    accumulation += o.accumulation;
    binning += o.binning;
  }
};

/// Counter handles for one sweep call, resolved once against whichever
/// registry the options selected so the per-window hot path never touches
/// the registry's mutex.
struct SweepMetrics {
  obs::Counter& runs;
  obs::Counter& windows_completed;
  obs::Counter& windows_failed;
  obs::Counter& windows_skipped;
  obs::Counter& cancelled;
  obs::Counter& deadline_expired;
  obs::Counter& failpoint_trips;
  obs::Counter& shard_merges;
  obs::Gauge& pool_threads;
  obs::Gauge& shards_per_window;
  obs::Histogram& sweep_duration;
  obs::Histogram& stage_sampling;
  obs::Histogram& stage_accumulation;
  obs::Histogram& stage_binning;

  SweepMetrics(obs::Registry& r, const char* path)
      : runs(r.counter(obs::names::kSweepRuns)),
        windows_completed(r.counter(obs::names::kSweepWindows,
                                    {{"outcome", "completed"}})),
        windows_failed(
            r.counter(obs::names::kSweepWindows, {{"outcome", "failed"}})),
        windows_skipped(
            r.counter(obs::names::kSweepWindows, {{"outcome", "skipped"}})),
        cancelled(r.counter(obs::names::kSweepCancelled)),
        deadline_expired(r.counter(obs::names::kSweepDeadlineExpired)),
        failpoint_trips(r.counter(obs::names::kSweepFailpointTrips)),
        shard_merges(r.counter(obs::names::kSweepShardsMerged)),
        pool_threads(r.gauge(obs::names::kSweepPoolThreads)),
        shards_per_window(r.gauge(obs::names::kSweepShardsPerWindow)),
        sweep_duration(r.histogram(obs::names::kSweepDurationNs)),
        stage_sampling(stage_histogram(r, path, "sampling")),
        stage_accumulation(stage_histogram(r, path, "accumulation")),
        stage_binning(stage_histogram(r, path, "binning")) {}

  static obs::Histogram& stage_histogram(obs::Registry& r, const char* path,
                                         const char* stage) {
    return r.histogram(obs::names::kSweepStageDurationNs,
                       {{"path", path}, {"stage", stage}});
  }
};

// ---------------------------------------------------------------------
// Stage graph (DESIGN.md §5g).  Every window flows through
//
//   synthesize → accumulate → bin        (inside one pool worker)
//                                └→ fit/reduce  (serial, caller's thread)
//
// The runners below are the per-path instantiations of that graph.  The
// shard mode only changes how `accumulate` maps onto state: unsharded
// runners use the lease's single accumulator; sharded runners route the
// same drawn packets / count records by node-id range (parallel::shard_of)
// into K sub-accumulators and merge them before binning.  Synthesis is
// untouched either way, so RNG consumption — and therefore the result —
// is byte-identical across shard counts.  Merge time is charged to the
// accumulation stage.
// ---------------------------------------------------------------------

void ensure_shards(SweepScratch& scratch, std::size_t k) {
  if (scratch.shard_accs.size() < k) scratch.shard_accs.resize(k);
  if (scratch.shard_pairs.size() < k) scratch.shard_pairs.resize(k);
}

/// Merges sub-accumulators 1..k−1 into shard 0 and returns it; the
/// failpoint makes an injected merge failure degrade exactly like any
/// other per-window fault (budget, strict rethrow, metrics).
WindowAccumulator& merge_window_shards(SweepScratch& scratch, std::size_t k,
                                       std::uint64_t& merges) {
  WindowAccumulator& target = scratch.shard_accs[0];
  for (std::size_t s = 1; s < k; ++s) {
    PALU_FAILPOINT("traffic.shard_merge");
    target.merge(scratch.shard_accs[s]);
    ++merges;
  }
  return target;
}

stats::DegreeHistogram run_window_fast(SweepScratch& scratch, Count n_valid,
                                       Quantity quantity, StageNs& timings) {
  scratch.acc.begin_window();
  if (scratch.buf.size() < kPacketBatch) scratch.buf.resize(kPacketBatch);
  Count left = n_valid;
  while (left > 0) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<Count>(left, kPacketBatch));
    const auto t0 = Clock::now();
    scratch.gen->next_batch(std::span<Packet>(scratch.buf.data(), n));
    const auto t1 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      scratch.acc.add(scratch.buf[i].src, scratch.buf[i].dst);
    }
    const auto t2 = Clock::now();
    timings.sampling += ns_between(t0, t1);
    timings.accumulation += ns_between(t1, t2);
    left -= n;
  }
  const auto t0 = Clock::now();
  stats::DegreeHistogram h = scratch.acc.histogram(quantity);
  timings.binning += ns_between(t0, Clock::now());
  return h;
}

stats::DegreeHistogram run_window_fast_sharded(SweepScratch& scratch,
                                               const WindowPlan& plan,
                                               StageNs& timings,
                                               std::uint64_t& merges) {
  ensure_shards(scratch, plan.shards);
  for (std::size_t s = 0; s < plan.shards; ++s) {
    scratch.shard_accs[s].begin_window();
  }
  if (scratch.buf.size() < kPacketBatch) scratch.buf.resize(kPacketBatch);
  Count left = plan.n_valid;
  while (left > 0) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<Count>(left, kPacketBatch));
    const auto t0 = Clock::now();
    scratch.gen->next_batch(std::span<Packet>(scratch.buf.data(), n));
    const auto t1 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      const Packet& p = scratch.buf[i];
      scratch
          .shard_accs[parallel::shard_of(p.src, plan.shards, plan.domain)]
          .add(p.src, p.dst);
    }
    const auto t2 = Clock::now();
    timings.sampling += ns_between(t0, t1);
    timings.accumulation += ns_between(t1, t2);
    left -= n;
  }
  const auto m0 = Clock::now();
  WindowAccumulator& merged = merge_window_shards(scratch, plan.shards,
                                                  merges);
  const auto m1 = Clock::now();
  timings.accumulation += ns_between(m0, m1);
  stats::DegreeHistogram h = merged.histogram(plan.quantity);
  timings.binning += ns_between(m1, Clock::now());
  return h;
}

/// Accumulate + bin one record-space window already staged in
/// scratch.pairs — the shared back half of the counts-synthesis and
/// replay paths.  Sharded accumulation routes whole records by their
/// lower endpoint: pairs are unique, so the per-shard buckets are
/// disjoint and the merge is a pure union; bucket order preserves the
/// staged record order within each shard.
stats::DegreeHistogram bin_counts_window(SweepScratch& scratch,
                                         const WindowPlan& plan,
                                         StageNs& timings,
                                         std::uint64_t& merges) {
  const auto t1 = Clock::now();
  WindowAccumulator* acc = nullptr;
  if (plan.shards > 1) {
    ensure_shards(scratch, plan.shards);
    for (std::size_t s = 0; s < plan.shards; ++s) {
      scratch.shard_accs[s].begin_window();
      scratch.shard_pairs[s].clear();
    }
    for (const EdgePacketCounts& pc : scratch.pairs) {
      scratch
          .shard_pairs[parallel::shard_of(pc.u, plan.shards, plan.domain)]
          .push_back(pc);
    }
    for (std::size_t s = 0; s < plan.shards; ++s) {
      scratch.shard_accs[s].ingest_counts(std::span<const EdgePacketCounts>(
          scratch.shard_pairs[s].data(), scratch.shard_pairs[s].size()));
    }
    acc = &merge_window_shards(scratch, plan.shards, merges);
  } else {
    scratch.acc.begin_window();
    scratch.acc.ingest_counts(scratch.pairs);
    acc = &scratch.acc;
  }
  const auto t2 = Clock::now();
  stats::DegreeHistogram h = acc->histogram(plan.quantity);
  timings.accumulation += ns_between(t1, t2);
  timings.binning += ns_between(t2, Clock::now());
  return h;
}

stats::DegreeHistogram run_window_counts(SweepScratch& scratch,
                                         const WindowPlan& plan,
                                         StageNs& timings,
                                         std::uint64_t& merges) {
  const auto t0 = Clock::now();
  scratch.gen->next_window_counts(plan.n_valid, scratch.pairs);
  timings.sampling += ns_between(t0, Clock::now());
  return bin_counts_window(scratch, plan, timings, merges);
}

stats::DegreeHistogram run_window_replay(WindowSource& source,
                                         std::size_t window,
                                         SweepScratch& scratch,
                                         const WindowPlan& plan,
                                         StageNs& timings,
                                         std::uint64_t& merges) {
  const auto t0 = Clock::now();
  source.read_window(window, scratch.io_buf, scratch.pairs);
  timings.sampling += ns_between(t0, Clock::now());
  return bin_counts_window(scratch, plan, timings, merges);
}

/// The analytic path: one deterministic expected-window evaluation, no
/// RNG beyond the shared rate draw.  Stage accounting maps onto the same
/// graph as the sampled paths — the visibility pass (prepare) is the
/// "sampling" analogue, the marginal folding (evaluate) is
/// "accumulation", and the mass assembly/ensemble add is "binning" — so
/// the `{path="expected"}` stage histograms stay comparable.
WindowSweepResult sweep_expected(const graph::Graph& underlying,
                                 const RateModel& rates, Count n_valid,
                                 Quantity quantity, std::uint64_t seed,
                                 ThreadPool& pool,
                                 const SweepOptions& opts) {
  obs::Registry& registry =
      opts.metrics != nullptr ? *opts.metrics : obs::default_registry();
  SweepMetrics metrics(registry, "expected");
  metrics.runs.inc();
  metrics.pool_threads.set(static_cast<std::int64_t>(pool.size()));
  metrics.shards_per_window.set(1);
  obs::TraceSpan sweep_span(metrics.sweep_duration);

  WindowSweepResult out;
  if (opts.cancel != nullptr &&
      opts.cancel->load(std::memory_order_relaxed)) {
    out.cancelled = true;
    out.windows_skipped = 1;
    metrics.cancelled.inc();
    metrics.windows_skipped.inc(1);
    return out;
  }

  const Rng base(seed);
  const std::vector<double> shared_rates =
      make_edge_rates(underlying, rates, base.fork(0));
  try {
    SyntheticTrafficGenerator gen(underlying, shared_rates, Rng(0));
    StageNs local;
    const auto t0 = Clock::now();
    ExpectedWindowEvaluator eval(gen.pair_support());
    eval.prepare(n_valid);
    const auto t1 = Clock::now();
    ExpectedWindow win = eval.evaluate(quantity);
    const auto t2 = Clock::now();
    out.max_value = win.max_value;
    out.windows = 1;
    if (opts.expected_replicates == 0) out.ensemble.add(win.mass);
    out.expected = std::move(win);
    local.sampling = ns_between(t0, t1);
    local.accumulation = ns_between(t1, t2);
    local.binning = ns_between(t2, Clock::now());
    out.timings.sampling_cpu_ns = local.sampling;
    out.timings.accumulation_cpu_ns = local.accumulation;
    out.timings.binning_cpu_ns = local.binning;
    out.timings.sampling_max_ns = local.sampling;
    out.timings.accumulation_max_ns = local.accumulation;
    out.timings.binning_max_ns = local.binning;
    metrics.stage_sampling.observe(local.sampling);
    metrics.stage_accumulation.observe(local.accumulation);
    metrics.stage_binning.observe(local.binning);
    metrics.windows_completed.inc(1);
  } catch (const std::exception& e) {
    if (failpoints::is_failpoint_error(e)) metrics.failpoint_trips.inc(1);
    metrics.windows_failed.inc(1);
    if (opts.max_failed_windows == 0) throw SweepWindowError(0, e.what());
    out.failures.push_back(WindowFailure{0, e.what()});
    return out;
  }

  if (opts.expected_replicates > 0) {
    // Confidence bands: a counts-path sub-sweep whose per-window pooled
    // distributions fill the ensemble the deterministic result cannot.
    SweepOptions rep = opts;
    rep.synthesis = SynthesisMode::kMultinomial;
    rep.expected_replicates = 0;
    WindowSweepResult sampled =
        sweep_windows(underlying, rates, n_valid, opts.expected_replicates,
                      quantity, seed, pool, rep);
    out.ensemble = std::move(sampled.ensemble);
    for (WindowFailure& f : sampled.failures) {
      out.failures.push_back(std::move(f));
    }
    out.windows_skipped += sampled.windows_skipped;
    out.cancelled = out.cancelled || sampled.cancelled;
    out.timings.sampling_cpu_ns += sampled.timings.sampling_cpu_ns;
    out.timings.accumulation_cpu_ns += sampled.timings.accumulation_cpu_ns;
    out.timings.binning_cpu_ns += sampled.timings.binning_cpu_ns;
    out.timings.sampling_max_ns = std::max(out.timings.sampling_max_ns,
                                           sampled.timings.sampling_max_ns);
    out.timings.accumulation_max_ns =
        std::max(out.timings.accumulation_max_ns,
                 sampled.timings.accumulation_max_ns);
    out.timings.binning_max_ns = std::max(out.timings.binning_max_ns,
                                          sampled.timings.binning_max_ns);
  }
  return out;
}

/// Shared sweep core.  Exactly one of two shapes is active:
/// synthesize (`underlying`/`rates` non-null, `replay_src` null) or
/// replay (`replay_src` non-null; graph, rates, n_valid, and seed are
/// ignored).  The public overloads validate and dispatch.
WindowSweepResult sweep_impl(const graph::Graph* underlying,
                             const RateModel* rates,
                             WindowSource* replay_src, Count n_valid,
                             std::size_t num_windows, Quantity quantity,
                             std::uint64_t seed, ThreadPool& pool,
                             const SweepOptions& opts) {
  PALU_CHECK(num_windows >= 1, "sweep_windows: need at least one window");
  PALU_CHECK(opts.shards_per_window >= 1,
             "sweep_windows: shards_per_window must be >= 1");

  const bool replay = replay_src != nullptr;
  const bool counts_path =
      !replay && opts.synthesis == SynthesisMode::kMultinomial;
  const std::size_t shards = opts.shard_mode == ShardMode::kIntraWindow
                                 ? opts.shards_per_window
                                 : 1;
  // Intra-window sharding, replay, and capture always route through the
  // accumulator machinery; the legacy SparseCountMatrix path has no
  // mergeable state and nothing to export.
  const bool pooled_scratch = counts_path || replay || opts.fast_path ||
                              shards > 1 || opts.capture != nullptr;
  const WindowPlan plan{n_valid, quantity, shards,
                        replay ? replay_src->node_domain()
                               : underlying->num_nodes()};

  obs::Registry& registry =
      opts.metrics != nullptr ? *opts.metrics : obs::default_registry();
  SweepMetrics metrics(registry, replay        ? "replay"
                                 : counts_path ? "counts"
                                 : pooled_scratch ? "fast"
                                                  : "legacy");
  metrics.runs.inc();
  metrics.pool_threads.set(static_cast<std::int64_t>(pool.size()));
  metrics.shards_per_window.set(static_cast<std::int64_t>(shards));
  obs::TraceSpan sweep_span(metrics.sweep_duration);

  // Per-window slots: exactly one of histogram / error is set afterwards;
  // neither set means the window was skipped (cancellation or timeout).
  //
  // Thread-safety invariant (checked by tsan_stress_test): each worker
  // writes only the slots for its own window indices, and the reduce loop
  // below reads them only after parallel_for has joined every chunk's
  // future, which establishes the necessary happens-before.  These vectors
  // therefore need no mutex; all cross-window signalling goes through the
  // atomics beneath them.
  std::vector<std::optional<stats::DegreeHistogram>> histograms(
      num_windows);
  std::vector<std::optional<std::string>> errors(num_windows);
  std::atomic<bool> stop_new_windows{false};
  std::atomic<bool> cancel_seen{false};
  std::atomic<bool> deadline_seen{false};
  std::atomic<std::uint64_t> failpoint_trips{0};
  std::atomic<std::uint64_t> shard_merges{0};

  const bool has_deadline = opts.timeout.count() > 0;
  // Computed only when a deadline is set: unconditionally adding a
  // duration::max()-class timeout to now() overflows the time_point
  // (signed-overflow UB).  Oversized budgets clamp to the clock's
  // horizon, which is indistinguishable from unlimited.
  Clock::time_point deadline{};
  if (has_deadline) {
    const auto now = Clock::now();
    const auto headroom =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::time_point::max() - now);
    deadline = opts.timeout >= headroom ? Clock::time_point::max()
                                        : now + opts.timeout;
  }
  const auto should_stop = [&]() {
    if (stop_new_windows.load(std::memory_order_relaxed)) return true;
    if (opts.cancel != nullptr &&
        opts.cancel->load(std::memory_order_relaxed)) {
      cancel_seen.store(true, std::memory_order_relaxed);
      return true;
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      deadline_seen.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  const Rng base(seed);
  // One shared traffic matrix: every window sees the same long-term
  // per-edge rates; only the packet draws differ between windows.
  // Replay sweeps never touch the RNG or build a generator.
  const std::vector<double> shared_rates =
      replay ? std::vector<double>{}
             : make_edge_rates(*underlying, *rates, base.fork(0));

  // Fast and counts paths: per-worker scratch slots; each slot pays the
  // edge copy and alias-table build once (the counts support adds itself
  // lazily on a slot's first counts window) and is reseeded per window,
  // versus the legacy path's per-window generator construction.  Replay
  // slots hold only the accumulator arenas and byte/record buffers.
  std::optional<ScratchPool<SweepScratch>> scratch;
  if (pooled_scratch) {
    scratch.emplace([underlying, &shared_rates, replay]() {
      auto s = std::make_unique<SweepScratch>();
      if (!replay) {
        s->gen.emplace(*underlying, shared_rates, Rng(0));
      }
      return s;
    });
  }

  // Per-worker stage totals, flushed once per chunk (a worker can run
  // several chunks; map lookup + mutex per chunk is noise next to the
  // windows inside it).  Keeping totals per worker is what makes the
  // straggler view (`*_max_ns`) computable after the join.
  std::mutex worker_ns_mutex;
  std::map<std::thread::id, StageNs> worker_ns;

  parallel_for(pool, 0, num_windows, /*grain=*/1, [&](IndexRange range) {
    StageNs local;
    std::uint64_t local_merges = 0;
    std::optional<ScratchPool<SweepScratch>::Lease> lease;
    if (pooled_scratch) lease.emplace(scratch->acquire());
    for (std::size_t t = range.begin; t < range.end; ++t) {
      if (should_stop()) break;  // leave the remaining slots unset
      try {
        PALU_FAILPOINT("traffic.sweep_window");
        if (replay) {
          histograms[t] = run_window_replay(*replay_src, t, **lease, plan,
                                            local, local_merges);
        } else if (counts_path) {
          (*lease)->gen->reseed(base.fork(t + 1));
          histograms[t] =
              run_window_counts(**lease, plan, local, local_merges);
        } else if (pooled_scratch) {
          (*lease)->gen->reseed(base.fork(t + 1));
          histograms[t] =
              plan.shards > 1
                  ? run_window_fast_sharded(**lease, plan, local,
                                            local_merges)
                  : run_window_fast(**lease, n_valid, quantity, local);
        } else {
          SyntheticTrafficGenerator stream(*underlying, shared_rates,
                                           base.fork(t + 1));
          const auto t0 = Clock::now();
          const SparseCountMatrix window = stream.window(n_valid);
          const auto t1 = Clock::now();
          histograms[t] = quantity_histogram(window, quantity);
          local.sampling += ns_between(t0, t1);
          local.binning += ns_between(t1, Clock::now());
        }
        if (opts.capture != nullptr) {
          // Tee the accumulated window before the reduce.  The counts
          // path archives its staged records directly (full support;
          // the writer drops zero rows, which is content-neutral); the
          // packet paths export canonical records from whichever
          // accumulator holds the merged window.  Capture I/O is
          // charged to binning — it is an output stage.
          SweepScratch& sc = **lease;
          const auto c0 = Clock::now();
          if (counts_path) {
            opts.capture->append(
                t, n_valid,
                std::span<const EdgePacketCounts>(sc.pairs.data(),
                                                  sc.pairs.size()));
          } else {
            sc.export_buf.clear();
            const WindowAccumulator& acc =
                plan.shards > 1 ? sc.shard_accs[0] : sc.acc;
            acc.export_counts(sc.export_buf);
            opts.capture->append(
                t, n_valid,
                std::span<const EdgePacketCounts>(sc.export_buf.data(),
                                                  sc.export_buf.size()));
          }
          local.binning += ns_between(c0, Clock::now());
        }
      } catch (const std::exception& e) {
        if (failpoints::is_failpoint_error(e)) {
          failpoint_trips.fetch_add(1, std::memory_order_relaxed);
        }
        errors[t] = e.what();
        if (opts.max_failed_windows == 0) {
          // Strict mode: no point producing more windows for a sweep
          // that is already lost.
          stop_new_windows.store(true, std::memory_order_relaxed);
        }
      }
    }
    shard_merges.fetch_add(local_merges, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(worker_ns_mutex);
      worker_ns[std::this_thread::get_id()].add(local);
    }
  });

  // Fold per-worker totals into both timing views and the registry's
  // stage histograms (one observation per participating worker).
  WindowSweepResult out;
  for (const auto& [id, ns] : worker_ns) {
    (void)id;
    out.timings.sampling_cpu_ns += ns.sampling;
    out.timings.accumulation_cpu_ns += ns.accumulation;
    out.timings.binning_cpu_ns += ns.binning;
    out.timings.sampling_max_ns =
        std::max(out.timings.sampling_max_ns, ns.sampling);
    out.timings.accumulation_max_ns =
        std::max(out.timings.accumulation_max_ns, ns.accumulation);
    out.timings.binning_max_ns =
        std::max(out.timings.binning_max_ns, ns.binning);
    metrics.stage_sampling.observe(ns.sampling);
    metrics.stage_accumulation.observe(ns.accumulation);
    metrics.stage_binning.observe(ns.binning);
  }

  // Record window dispositions and stop causes before the strict/budget
  // throws below, so metrics describe failed sweeps too.
  std::size_t n_failed = 0, n_skipped = 0, n_completed = 0;
  for (std::size_t t = 0; t < num_windows; ++t) {
    if (errors[t]) {
      ++n_failed;
    } else if (!histograms[t]) {
      ++n_skipped;
    } else {
      ++n_completed;
    }
  }
  metrics.windows_completed.inc(n_completed);
  metrics.windows_failed.inc(n_failed);
  metrics.windows_skipped.inc(n_skipped);
  metrics.failpoint_trips.inc(
      failpoint_trips.load(std::memory_order_relaxed));
  metrics.shard_merges.inc(shard_merges.load(std::memory_order_relaxed));
  if (cancel_seen.load(std::memory_order_relaxed)) metrics.cancelled.inc();
  if (deadline_seen.load(std::memory_order_relaxed)) {
    metrics.deadline_expired.inc();
  }

  const auto reduce_start = Clock::now();
  for (std::size_t t = 0; t < num_windows; ++t) {
    if (errors[t]) {
      if (opts.max_failed_windows == 0) {
        throw SweepWindowError(t, *errors[t]);
      }
      out.failures.push_back(WindowFailure{t, std::move(*errors[t])});
      continue;
    }
    if (!histograms[t]) {
      ++out.windows_skipped;
      continue;
    }
    const stats::DegreeHistogram& h = *histograms[t];
    out.max_value = std::max(out.max_value, h.max_degree());
    out.ensemble.add(stats::LogBinned::from_histogram(h));
    out.merged.merge(h);
    ++out.windows;
  }
  out.cancelled = out.windows_skipped > 0;
  if (out.failures.size() > opts.max_failed_windows) {
    const WindowFailure& first = out.failures.front();
    throw SweepWindowError(
        first.window,
        first.error + " (" + std::to_string(out.failures.size()) +
            " windows failed, budget " +
            std::to_string(opts.max_failed_windows) + ")");
  }
  // The serial window-order reduce runs on this (single) thread, so its
  // cost goes into both the CPU and straggler views of binning.
  const std::uint64_t reduce_ns = ns_between(reduce_start, Clock::now());
  out.timings.binning_cpu_ns += reduce_ns;
  out.timings.binning_max_ns += reduce_ns;
  return out;
}

}  // namespace

WindowSweepResult sweep_windows(const graph::Graph& underlying,
                                const RateModel& rates, Count n_valid,
                                std::size_t num_windows, Quantity quantity,
                                std::uint64_t seed, ThreadPool& pool,
                                const SweepOptions& opts) {
  if (opts.source == SweepSource::kReplay) {
    PALU_CHECK(opts.replay != nullptr,
               "sweep_windows: source = kReplay needs SweepOptions::replay");
    return sweep_windows(*opts.replay, num_windows, quantity, pool, opts);
  }
  PALU_CHECK(n_valid >= 1, "sweep_windows: need at least one packet");
  if (opts.synthesis == SynthesisMode::kExpected) {
    PALU_CHECK(opts.capture == nullptr,
               "sweep_windows: capture does not compose with the analytic "
               "expected path (there are no per-window records to store)");
    // num_windows is deliberately not validated here: the analytic path
    // ignores it (there is exactly one deterministic evaluation).
    return sweep_expected(underlying, rates, n_valid, quantity, seed, pool,
                          opts);
  }
  return sweep_impl(&underlying, &rates, nullptr, n_valid, num_windows,
                    quantity, seed, pool, opts);
}

WindowSweepResult sweep_windows(const graph::Graph& underlying,
                                const RateModel& rates, Count n_valid,
                                std::size_t num_windows, Quantity quantity,
                                std::uint64_t seed, ThreadPool& pool) {
  return sweep_windows(underlying, rates, n_valid, num_windows, quantity,
                       seed, pool, SweepOptions{});
}

WindowSweepResult sweep_windows(WindowSource& source,
                                std::size_t num_windows, Quantity quantity,
                                ThreadPool& pool, const SweepOptions& opts) {
  PALU_CHECK(opts.capture == nullptr,
             "sweep_windows: capture does not compose with replay (the "
             "windows are already stored)");
  PALU_CHECK(num_windows <= source.num_windows(),
             "sweep_windows: replay source holds fewer windows than "
             "requested");
  return sweep_impl(nullptr, nullptr, &source, /*n_valid=*/1, num_windows,
                    quantity, /*seed=*/0, pool, opts);
}

}  // namespace palu::traffic
