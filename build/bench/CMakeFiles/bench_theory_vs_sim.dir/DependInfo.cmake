
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_theory_vs_sim.cpp" "bench/CMakeFiles/bench_theory_vs_sim.dir/bench_theory_vs_sim.cpp.o" "gcc" "bench/CMakeFiles/bench_theory_vs_sim.dir/bench_theory_vs_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/palu_io.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/palu_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/palu_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/palu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/palu_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/palu_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/palu_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/palu_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/palu_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/palu_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/palu_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/palu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
