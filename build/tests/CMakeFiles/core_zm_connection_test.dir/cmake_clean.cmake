file(REMOVE_RECURSE
  "CMakeFiles/core_zm_connection_test.dir/core_zm_connection_test.cpp.o"
  "CMakeFiles/core_zm_connection_test.dir/core_zm_connection_test.cpp.o.d"
  "core_zm_connection_test"
  "core_zm_connection_test.pdb"
  "core_zm_connection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_zm_connection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
