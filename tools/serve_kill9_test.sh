#!/bin/sh
# Crash-recovery acceptance for `palu_tool serve` (DESIGN.md §5f).
#
# The crash-only claim: a daemon killed with SIGKILL mid-service — no
# drain, no final flush — restarts with --restore at the last
# checkpointed window boundary, and every fit it publishes from there on
# is byte-identical to an uninterrupted run over the same trace.
#
# Usage: serve_kill9_test.sh /path/to/palu_tool
set -eu

TOOL="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$TOOL" generate --nodes 2000 --packets 30000 --seed 13 > "$DIR/trace.txt"

# Uninterrupted reference run: 6 windows.
"$TOOL" serve --trace "$DIR/trace.txt" --window 5000 > "$DIR/full.txt"
[ "$(grep -c '^window=' "$DIR/full.txt")" -eq 6 ] || {
    echo "FAIL: reference run did not publish 6 windows" >&2
    exit 1
}

# Interrupted run: the growing file holds only 3.5 windows, so the
# follow-mode daemon publishes 3 windows and parks at EOF mid-stream
# (half a window buffered, nothing clean about this stopping point).
# SIGKILL it there — no drain, no final checkpoint flush.
head -n 17500 "$DIR/trace.txt" > "$DIR/growing.txt"
"$TOOL" serve --trace "$DIR/growing.txt" --follow --window 5000 \
    --poll-interval-ms 20 --checkpoint "$DIR/ck.txt" \
    > "$DIR/part.txt" 2> "$DIR/part_err.txt" &
PID=$!
i=0
while [ "$(grep -c '^window=' "$DIR/part.txt" 2>/dev/null || true)" -lt 3 ]
do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "FAIL: interrupted run stalled" >&2
        cat "$DIR/part_err.txt" >&2
        kill -9 "$PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

# The writer finishes the stream, and the daemon restarts from the
# checkpoint to serve the rest of the trace.
cp "$DIR/trace.txt" "$DIR/growing.txt"
"$TOOL" serve --trace "$DIR/growing.txt" --window 5000 \
    --checkpoint "$DIR/ck.txt" --restore \
    > "$DIR/resume.txt" 2> "$DIR/resume_err.txt"
grep -q 'restored checkpoint' "$DIR/resume_err.txt" || {
    echo "FAIL: resume did not restore the checkpoint" >&2
    cat "$DIR/resume_err.txt" >&2
    exit 1
}

# The resumed run must pick up exactly at the checkpointed boundary
# (window 3): its lines are byte-identical to the reference run's
# trailing lines.
RESUMED=$(grep -c '^window=' "$DIR/resume.txt" || true)
if [ "$RESUMED" -ne 3 ]; then
    echo "FAIL: resumed run published $RESUMED windows (expected 3)" >&2
    cat "$DIR/resume_err.txt" >&2
    exit 1
fi
tail -n "$RESUMED" "$DIR/full.txt" > "$DIR/expected_tail.txt"
diff "$DIR/expected_tail.txt" "$DIR/resume.txt" || {
    echo "FAIL: resumed fits differ from the uninterrupted run" >&2
    exit 1
}

echo "serve kill-9 restore: OK (resumed $RESUMED of 6 windows)"

# Scenario 2 — the staleness gauge must survive the crash.  With every
# refit force-degraded (PALU_FAILPOINT=serve.fit with a huge fire budget)
# the consecutive-staleness streak grows by one per window, so the final
# gauge counts every window served since the last fresh fit.  A restored
# daemon must resume the streak where the killed one left off: reference
# (6 windows, one process) and interrupted-then-resumed (3 + 3 windows)
# runs must export the same palu_serve_staleness_windows.  A regression
# that zeroes the counter on restore makes the resumed gauge read 3.
FP="serve.fit:1000"

PALU_FAILPOINT="$FP" "$TOOL" serve --trace "$DIR/trace.txt" \
    --window 5000 --snapshot "$DIR/ref_snap.json" \
    > "$DIR/stale_full.txt" 2> "$DIR/stale_full_err.txt"
REF_GAUGE=$(awk '$1 == "palu_serve_staleness_windows" {print $2}' \
    "$DIR/ref_snap.prom")
[ "$REF_GAUGE" = "6" ] || {
    echo "FAIL: stale reference run exported gauge $REF_GAUGE (expected 6)" >&2
    exit 1
}

head -n 17500 "$DIR/trace.txt" > "$DIR/stale_growing.txt"
PALU_FAILPOINT="$FP" "$TOOL" serve --trace "$DIR/stale_growing.txt" \
    --follow --window 5000 --poll-interval-ms 20 \
    --checkpoint "$DIR/stale_ck.txt" \
    > "$DIR/stale_part.txt" 2> "$DIR/stale_part_err.txt" &
PID=$!
i=0
while [ "$(grep -c '^window=' "$DIR/stale_part.txt" 2>/dev/null || true)" -lt 3 ]
do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "FAIL: stale interrupted run stalled" >&2
        cat "$DIR/stale_part_err.txt" >&2
        kill -9 "$PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

cp "$DIR/trace.txt" "$DIR/stale_growing.txt"
PALU_FAILPOINT="$FP" "$TOOL" serve --trace "$DIR/stale_growing.txt" \
    --window 5000 --checkpoint "$DIR/stale_ck.txt" --restore \
    --snapshot "$DIR/resume_snap.json" \
    > "$DIR/stale_resume.txt" 2> "$DIR/stale_resume_err.txt"
grep -q 'restored checkpoint' "$DIR/stale_resume_err.txt" || {
    echo "FAIL: stale resume did not restore the checkpoint" >&2
    cat "$DIR/stale_resume_err.txt" >&2
    exit 1
}
RESUME_GAUGE=$(awk '$1 == "palu_serve_staleness_windows" {print $2}' \
    "$DIR/resume_snap.prom")
[ "$RESUME_GAUGE" = "$REF_GAUGE" ] || {
    echo "FAIL: restored staleness gauge $RESUME_GAUGE != reference $REF_GAUGE" >&2
    exit 1
}

echo "serve kill-9 staleness: OK (gauge $RESUME_GAUGE matches reference)"
