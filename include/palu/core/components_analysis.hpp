// Small-component structure and isolated-node extrapolation (Section VII
// future work: "explore the existence and importance of isolated nodes"
// and "define the large clusters of small disconnected components").
//
// In the observed PALU network every star component consists of its hub
// plus a Po(μ)-distributed number of visible leaves (μ = λp), so the size
// law of visible star components is
//
//     P(size = s) = Po(μ){s−1} / (1 − e^{−μ}),   s >= 2
//
// and the fitted constant u *is* the per-visible-node density of invisible
// (zero-visible-leaf) hubs at the current window — giving a principled
// estimate of nodes that exist but cannot be seen by traffic capture.
#pragma once

#include "palu/common/types.hpp"
#include "palu/core/estimate.hpp"
#include "palu/core/params.hpp"
#include "palu/graph/graph.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::core {

/// P(star component has `size` nodes | the star is visible), size >= 2.
double star_component_size_share(const PaluParams& params, NodeId size);

/// Histogram of observed component sizes up to `max_size` (inclusive),
/// skipping size-1 (isolated) components, which capture cannot see.
stats::DegreeHistogram small_component_size_histogram(
    const graph::Graph& observed, NodeId max_size);

/// Invisible-node extrapolation from fitted constants.
struct IsolatedEstimate {
  /// Hubs with zero visible leaves per visible node at this window; this
  /// is exactly the fitted u = U·e^{−μ}/V.
  double invisible_hubs_per_visible = 0.0;
  /// Hubs isolated in the *underlying* network (zero leaves at p = 1),
  /// per visible node: U·e^{−λ}/V = u·e^{μ − μ/p}, using λ = μ/p.
  double underlying_isolated_per_visible = 0.0;
  /// λ implied by the fit and the window: μ/p.
  double implied_lambda = 0.0;
};

/// Requires 0 < window <= 1 and an identifiable μ (throws palu::DataError
/// when the fit found no star bump to extrapolate from).
IsolatedEstimate estimate_isolated(const PaluFit& fit, double window);

}  // namespace palu::core
