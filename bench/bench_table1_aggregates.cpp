// Table I — Aggregate network properties.
//
// Regenerates the table's four aggregates (valid packets, unique links,
// unique sources, unique destinations) from synthetic traffic windows of
// several N_V, evaluating both the summation-notation and matrix-notation
// formulas and cross-checking that they agree, then times both paths.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "palu/palu.hpp"

namespace {

using namespace palu;

traffic::SparseCountMatrix make_window(Count n_valid) {
  Rng gen_rng(1);
  static const graph::Graph g =
      graph::zeta_degree_core(gen_rng, 50000, 2.0, 5000);
  traffic::RateModel rates;
  rates.kind = traffic::RateModel::Kind::kPareto;
  rates.pareto_tail = 1.5;
  traffic::SyntheticTrafficGenerator stream(g, rates, Rng(2));
  return stream.window(n_valid);
}

void print_table1() {
  std::printf("=== Table I: aggregate network properties ===\n");
  std::printf("%-10s %-15s %-13s %-13s %-15s %-15s %-8s\n", "N_V",
              "valid_packets", "unique_links", "links_pred",
              "unique_sources", "unique_dests", "agree");
  // A probe generator with the same rates predicts the unique-link
  // scaling law Σ_e (1 − (1 − r_e)^{N_V}).
  Rng gen_rng(1);
  const graph::Graph g =
      graph::zeta_degree_core(gen_rng, 50000, 2.0, 5000);
  traffic::RateModel rates;
  rates.kind = traffic::RateModel::Kind::kPareto;
  rates.pareto_tail = 1.5;
  traffic::SyntheticTrafficGenerator probe(g, rates, Rng(2));
  for (const Count nv : {10000ull, 100000ull, 1000000ull}) {
    const auto a = make_window(nv);
    const auto s = traffic::aggregates_summation(a);
    const auto m = traffic::aggregates_matrix(a);
    std::printf("%-10llu %-15llu %-13llu %-13.0f %-15llu %-15llu %-8s\n",
                static_cast<unsigned long long>(nv),
                static_cast<unsigned long long>(s.valid_packets),
                static_cast<unsigned long long>(s.unique_links),
                probe.expected_unique_links(nv),
                static_cast<unsigned long long>(s.unique_sources),
                static_cast<unsigned long long>(s.unique_destinations),
                s == m ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_AggregatesSummation(benchmark::State& state) {
  const auto a = make_window(static_cast<Count>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(traffic::aggregates_summation(a));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_AggregatesSummation)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_AggregatesMatrix(benchmark::State& state) {
  const auto a = make_window(static_cast<Count>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(traffic::aggregates_matrix(a));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_AggregatesMatrix)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_WindowAggregation(benchmark::State& state) {
  const auto nv = static_cast<Count>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_window(nv));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nv));
}
BENCHMARK(BM_WindowAggregation)->Arg(10000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
