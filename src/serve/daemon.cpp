#include "palu/serve/daemon.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <utility>

#include "palu/common/error.hpp"
#include "palu/common/failpoint.hpp"
#include "palu/obs/export.hpp"
#include "palu/obs/names.hpp"

namespace palu::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

// One flag for the whole process: POSIX signal dispositions are global,
// so a second concurrent daemon would share it anyway.  Tests run with
// install_signal_handlers = false and use request_stop().
std::atomic<bool> g_signal_stop{false};

extern "C" void serve_signal_handler(int) {
  g_signal_stop.store(true);
}

obs::Registry& pick_registry(const ServeOptions& opts) {
  return opts.metrics != nullptr ? *opts.metrics : obs::default_registry();
}

// Snapshot files are written tmp + rename so a concurrent scraper never
// reads a torn file; unlike checkpoints they are advisory, so a failed
// write degrades silently (the previous snapshot stays in place).
bool write_file_atomically(const std::string& path,
                           const std::function<void(std::ostream&)>& fill) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    fill(out);
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::string prom_sibling(const std::string& json_path) {
  const std::size_t slash = json_path.find_last_of('/');
  const std::size_t dot = json_path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return json_path + ".prom";
  }
  return json_path.substr(0, dot) + ".prom";
}

}  // namespace

ServeDaemon::ServeDaemon(ServeOptions opts)
    : opts_(std::move(opts)),
      registry_(pick_registry(opts_)),
      estimator_(opts_.streaming),
      queue_(opts_.queue_capacity, opts_.backpressure),
      packets_counter_(registry_.counter(obs::names::kServePackets)),
      windows_counter_(registry_.counter(obs::names::kServeWindowsFitted)),
      stale_counter_(registry_.counter(obs::names::kServeWindowsStale)),
      deadline_counter_(
          registry_.counter(obs::names::kServeDeadlineMisses)),
      queue_depth_gauge_(registry_.gauge(obs::names::kServeQueueDepth)),
      drop_oldest_counter_(registry_.counter(
          obs::names::kServeQueueDropped, {{"policy", "drop-oldest"}})),
      drop_newest_counter_(registry_.counter(
          obs::names::kServeQueueDropped, {{"policy", "drop-newest"}})),
      ingest_restarts_(registry_.counter(obs::names::kServeStageRestarts,
                                         {{"stage", "ingest"}})),
      fit_restarts_(registry_.counter(obs::names::kServeStageRestarts,
                                      {{"stage", "fit"}})),
      checkpoint_writes_(
          registry_.counter(obs::names::kServeCheckpointWrites)),
      checkpoint_failures_(
          registry_.counter(obs::names::kServeCheckpointFailures)),
      checkpoint_age_gauge_(
          registry_.gauge(obs::names::kServeCheckpointAge)),
      restore_ok_(registry_.counter(obs::names::kServeRestores,
                                    {{"outcome", "ok"}})),
      restore_failed_(registry_.counter(obs::names::kServeRestores,
                                        {{"outcome", "failed"}})),
      staleness_gauge_(registry_.gauge(obs::names::kServeStaleness)),
      snapshot_writes_(
          registry_.counter(obs::names::kServeSnapshotWrites)) {
  if (opts_.window_packets == 0) {
    throw InvalidArgument("serve: --window must be >= 1 packet");
  }
  if (opts_.checkpoint_every == 0) opts_.checkpoint_every = 1;
}

bool ServeDaemon::stopping() const noexcept {
  return stop_.load() || g_signal_stop.load() || fatal_exit_.load() != 0;
}

void ServeDaemon::fatal(int code, const std::string& message) {
  int expected = 0;
  if (fatal_exit_.compare_exchange_strong(expected, code)) {
    fatal_message_ = message;
  }
  stop_.store(true);
  // The hammer, not close(): a fatal daemon must not sit through a long
  // queue drain, and the blocked peer stage has to wake up now.
  queue_.abort();
}

void ServeDaemon::interruptible_sleep_ms(double ms) {
  const auto t0 = Clock::now();
  while (!stopping() && ms_since(t0) < ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void ServeDaemon::run_stage(
    const char* name, obs::Counter& restarts,
    const std::function<std::uint64_t()>& progress,
    const std::function<void()>& body) {
  double backoff_ms = opts_.backoff_initial_ms;
  std::uint64_t failures_without_progress = 0;
  std::uint64_t last_progress = progress();
  while (!stopping()) {
    try {
      body();
      return;  // clean completion (EOF, drain, max windows)
    } catch (const DataError& e) {
      // Unrecoverable input: retrying would re-read the same bad bytes.
      fatal(3, std::string("serve: ") + name + " stage: " + e.what());
      return;
    } catch (const std::exception& e) {
      const std::uint64_t now_progress = progress();
      if (now_progress != last_progress) {
        // The stage moved between failures — the fault is transient, so
        // the give-up and backoff clocks both rewind.
        failures_without_progress = 0;
        backoff_ms = opts_.backoff_initial_ms;
        last_progress = now_progress;
      }
      if (++failures_without_progress > opts_.max_stage_restarts) {
        fatal(1, std::string("serve: ") + name + " stage gave up after " +
                     std::to_string(opts_.max_stage_restarts) +
                     " restarts without progress: " + e.what());
        return;
      }
      restarts.inc();
      std::fprintf(stderr, "serve: %s stage failed (%s); restart in %gms\n",
                   name, e.what(), backoff_ms);
      interruptible_sleep_ms(backoff_ms);
      backoff_ms = std::min(backoff_ms * 2.0, opts_.backoff_max_ms);
    }
  }
}

// ---------------------------------------------------------------- ingest

bool ServeDaemon::deliver(std::vector<io::TailRecord>& records) {
  // The ingest counters track *admissions*: a drop-newest record was
  // never in the queue, and on kClosed only the prefix already delivered
  // counts — anything else skews the restart progress meter.
  std::uint64_t admitted = 0;
  bool open = true;
  for (const io::TailRecord& rec : records) {
    const auto result = queue_.push(rec);
    if (result == BoundedRecordQueue::PushResult::kClosed) {
      open = false;
      break;
    }
    if (result == BoundedRecordQueue::PushResult::kDroppedNewest) {
      drop_newest_counter_.inc();  // discarded, not admitted
      continue;
    }
    if (result == BoundedRecordQueue::PushResult::kDroppedOldest) {
      drop_oldest_counter_.inc();  // admitted; the queue head was shed
    }
    ++admitted;
  }
  packets_counter_.inc(admitted);
  records_pushed_.fetch_add(admitted);
  records.clear();
  queue_depth_gauge_.set(static_cast<std::int64_t>(queue_.depth()));
  return open;
}

void ServeDaemon::ingest_body() {
  const bool is_stdin = opts_.input_path == "-";
  std::ifstream file;
  if (!is_stdin) {
    // (Re)entry after a restart resumes at the last fully consumed line;
    // any partial fragment is dropped and re-read from the file.
    reader_->reset_at(reader_->consumed_offset());
    file.open(opts_.input_path, std::ios::binary);
    if (!file) {
      throw DataError("serve: cannot open input '" + opts_.input_path +
                      "'");
    }
    file.seekg(static_cast<std::streamoff>(reader_->consumed_offset()));
    if (!file) {
      throw DataError("serve: cannot seek input '" + opts_.input_path +
                      "' to offset " +
                      std::to_string(reader_->consumed_offset()));
    }
  }

  std::vector<io::TailRecord> records;
  char buf[65536];
  while (!stopping()) {
    // Probe before any byte is read: a firing ingest failpoint must not
    // consume (and thereby lose) stream data on the restart path.
    PALU_FAILPOINT("serve.ingest");
    if (is_stdin) {
      struct pollfd pfd {
        STDIN_FILENO, POLLIN, 0
      };
      const int pr =
          ::poll(&pfd, 1, static_cast<int>(opts_.poll_interval_ms));
      if (pr < 0) {
        if (errno == EINTR) continue;
        throw Error(std::string("serve: poll on stdin failed: ") +
                    std::strerror(errno));
      }
      if (pr == 0) continue;  // timeout: recheck the stop flag
      const ssize_t n = ::read(STDIN_FILENO, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw Error(std::string("serve: read on stdin failed: ") +
                    std::strerror(errno));
      }
      if (n == 0) {  // pipe closed: the stream is complete
        reader_->finish(records);
        deliver(records);
        return;
      }
      reader_->feed({buf, static_cast<std::size_t>(n)}, records);
      if (!deliver(records)) return;
    } else {
      file.read(buf, sizeof buf);
      const std::streamsize n = file.gcount();
      if (n > 0) {
        reader_->feed({buf, static_cast<std::size_t>(n)}, records);
        if (!deliver(records)) return;
      }
      if (file.eof()) {
        if (!opts_.follow) {
          reader_->finish(records);
          deliver(records);
          return;
        }
        // Tail mode: the file may grow; clear eof and poll.
        file.clear();
        interruptible_sleep_ms(opts_.poll_interval_ms);
      } else if (file.fail()) {
        throw Error("serve: read failed on '" + opts_.input_path + "'");
      }
    }
  }
}

void ServeDaemon::ingest_stage() {
  run_stage("ingest", ingest_restarts_,
            [this] { return records_pushed_.load(); },
            [this] { ingest_body(); });
  queue_.close();
  ingest_done_.store(true);
}

// ------------------------------------------------------------------- fit

void ServeDaemon::publish_line(std::size_t index, std::uint64_t offset,
                               const core::StreamingRefit& refit,
                               const char* degraded) {
  std::string line = "window=" + std::to_string(index) +
                     " offset=" + std::to_string(offset) +
                     " degraded=" + degraded;
  char buf[96];
  const auto add_num = [&](const char* key, double v) {
    std::snprintf(buf, sizeof buf, " %s=%.17g", key, v);
    line += buf;
  };
  const auto add_lane = [&](const char* prefix,
                            const core::StreamingFitSnapshot& lane) {
    line += ' ';
    line += prefix;
    line += "_state=";
    line += core::to_string(lane.freshness);
    line += ' ';
    line += prefix;
    line += "_stage=";
    line += fit::to_string(lane.stage);
    std::string key(prefix);
    const std::size_t base = key.size();
    const auto field = [&](const char* suffix, double v) {
      key.resize(base);
      key += suffix;
      add_num(key.c_str(), v);
    };
    field("_alpha", lane.fit.alpha);
    field("_c", lane.fit.c);
    field("_mu", lane.fit.mu);
    field("_u", lane.fit.u);
    field("_l", lane.fit.l);
    field("_zm_alpha", lane.zm.alpha);
    field("_zm_delta", lane.zm.delta);
  };
  add_lane("w", refit.window);
  add_lane("s", refit.sliding);
  std::ostream& out = opts_.out != nullptr ? *opts_.out : std::cout;
  out << line << '\n' << std::flush;
}

void ServeDaemon::boundary() {
  stats::DegreeHistogram hist = acc_.histogram(opts_.quantity);

  // An armed serve.fit failpoint degrades this window instead of killing
  // the stage: the estimator records it like any un-fittable window.
  std::string forced;
  bool forced_injected = false;
  try {
    PALU_FAILPOINT("serve.fit");
  } catch (const std::exception& e) {
    forced = e.what();
    forced_injected = failpoints::is_failpoint_error(e);
  }

  const bool deadline_on = opts_.fit_deadline_ms > 0.0;
  const auto t0 = Clock::now();
  core::StreamingRefit refit = estimator_.refit_window(hist, forced);
  const bool deadline_miss =
      deadline_on && ms_since(t0) > opts_.fit_deadline_ms;

  const char* degraded = "-";
  const core::StreamingRefit* to_publish = &refit;
  if (deadline_miss) {
    // Serve the previous published fit, tagged, rather than a result
    // that arrived too late to be trusted as live.
    degraded = "deadline";
    deadline_counter_.inc();
    if (last_published_) to_publish = &*last_published_;
  } else if (!forced.empty()) {
    degraded = forced_injected ? "injected" : "forced";
  } else if (!refit.fresh) {
    degraded = "fit";
  }
  publish_line(refit.window_index, last_offset_, *to_publish, degraded);
  if (!deadline_miss) last_published_ = refit;

  published_.fetch_add(1);
  windows_counter_.inc();
  if (!refit.fresh || deadline_miss) stale_counter_.inc();
  staleness_gauge_.set(
      static_cast<std::int64_t>(estimator_.consecutive_stale()));

  last_boundary_offset_ = last_offset_;
  if (!opts_.checkpoint_path.empty()) {
    ++windows_since_checkpoint_;
    checkpoint_age_gauge_.set(
        static_cast<std::int64_t>(windows_since_checkpoint_));
    if (windows_since_checkpoint_ >= opts_.checkpoint_every) {
      do_checkpoint();
    }
  }

  // Archive the fitted window before begin_window() retires it.  A
  // recording failure (disk full, armed io.capture_write failpoint)
  // disables the recorder and keeps serving: recording is an output tee,
  // never a reason to stop estimating.
  if (recorder_ != nullptr) {
    try {
      record_buf_.clear();
      acc_.export_counts(record_buf_);
      recorder_->append(refit.window_index, opts_.window_packets,
                        record_buf_);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: recording disabled: %s\n", e.what());
      recorder_.reset();
    }
  }

  acc_.begin_window();
  window_fill_ = 0;
}

void ServeDaemon::fit_body() {
  io::TailRecord rec;
  // A stop request does NOT end this loop: the drain contract
  // (options.hpp drain_deadline_ms) is that records queued at
  // SIGINT/SIGTERM are still fitted.  On stop the ingest stage exits and
  // close()s the queue, so pop() returns false once the backlog is
  // consumed; the supervisor's drain-deadline abort() bounds the drain.
  // Only a fatal abort skips straight out.
  while (fatal_exit_.load() == 0) {
    if (!queue_.pop(rec)) return;  // stream drained or aborted
    acc_.add(rec.packet.src, rec.packet.dst);
    ++packets_total_;
    ++window_fill_;
    last_offset_ = rec.end_offset;
    if (window_fill_ >= opts_.window_packets) {
      boundary();
      if (opts_.max_windows != 0 && published_.load() >= opts_.max_windows) {
        stop_.store(true);
        return;
      }
    }
  }
}

void ServeDaemon::fit_stage() {
  run_stage("fit", fit_restarts_, [this] { return published_.load(); },
            [this] { fit_body(); });
  fit_done_.store(true);
}

// --------------------------------------------------- checkpoint / restore

Checkpoint ServeDaemon::make_checkpoint() const {
  Checkpoint ck;
  ck.input_offset = last_boundary_offset_;
  ck.packets_ingested = packets_total_;
  ck.windows_published = published_.load();
  ck.window_packets = opts_.window_packets;
  ck.quantity = std::string(traffic::quantity_name(opts_.quantity));
  ck.sliding_horizon = opts_.streaming.sliding_horizon;
  ck.warm_start = opts_.streaming.warm_start;
  ck.estimator = estimator_.state();
  return ck;
}

void ServeDaemon::do_checkpoint() {
  try {
    PALU_FAILPOINT("serve.checkpoint");
    save_checkpoint(opts_.checkpoint_path, make_checkpoint());
    windows_since_checkpoint_ = 0;
    checkpoint_age_gauge_.set(0);
    checkpoint_writes_.inc();
  } catch (const std::exception& e) {
    // Degrade: the previous checkpoint (if any) stays valid on disk, so
    // a later crash recovers to an older boundary instead of none.
    checkpoint_failures_.inc();
    std::fprintf(stderr, "serve: checkpoint write failed: %s\n", e.what());
  }
}

void ServeDaemon::try_restore() {
  try {
    PALU_FAILPOINT("serve.restore");
    Checkpoint ck = load_checkpoint(opts_.checkpoint_path);
    if (ck.window_packets != opts_.window_packets ||
        ck.quantity != traffic::quantity_name(opts_.quantity) ||
        ck.sliding_horizon != opts_.streaming.sliding_horizon ||
        ck.warm_start != opts_.streaming.warm_start) {
      throw DataError(
          "serve: checkpoint configuration fingerprint mismatch "
          "(was the daemon reconfigured between runs?)");
    }
    resume_offset_ = ck.input_offset;
    last_boundary_offset_ = ck.input_offset;
    last_offset_ = ck.input_offset;
    packets_total_ = ck.packets_ingested;
    published_.store(ck.windows_published);
    estimator_.restore(std::move(ck.estimator));
    // The gauge normally updates at window boundaries; seed it from the
    // restored state so a resume that sees no further boundary still
    // exports the same staleness as the uninterrupted run it replaces.
    staleness_gauge_.set(
        static_cast<std::int64_t>(estimator_.consecutive_stale()));
    restore_ok_.inc();
    std::fprintf(stderr,
                 "serve: restored checkpoint at offset %llu (%llu windows)\n",
                 static_cast<unsigned long long>(resume_offset_),
                 static_cast<unsigned long long>(published_.load()));
  } catch (const std::exception& e) {
    // A missing/corrupt/mismatched checkpoint is a fresh start, never a
    // startup failure: the crash-only contract is that restart always
    // yields a serving daemon.
    restore_failed_.inc();
    resume_offset_ = 0;
    std::fprintf(stderr, "serve: restore failed (%s); starting fresh\n",
                 e.what());
  }
}

// ------------------------------------------------------------ supervisor

void ServeDaemon::write_snapshot() {
  if (opts_.snapshot_path.empty()) return;
  const obs::RegistrySnapshot snap = registry_.snapshot();
  const bool json_ok = write_file_atomically(
      opts_.snapshot_path,
      [&](std::ostream& out) { obs::write_json(out, snap); });
  const bool prom_ok = write_file_atomically(
      prom_sibling(opts_.snapshot_path),
      [&](std::ostream& out) { obs::write_prometheus(out, snap); });
  if (json_ok && prom_ok) snapshot_writes_.inc();
}

void ServeDaemon::supervise() {
  auto last_snapshot = Clock::now();
  std::optional<Clock::time_point> drain_started;
  while (!(ingest_done_.load() && fit_done_.load())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int>(std::max(1.0, std::min(50.0,
                                                opts_.poll_interval_ms)))));
    if (stopping() && !drain_started) {
      stop_.store(true);  // fold a signal into the internal flag
      drain_started = Clock::now();
    }
    if (fit_done_.load() && !ingest_done_.load()) {
      // The consumer is gone (max windows or fatal): a blocked producer
      // must not keep the daemon alive.
      stop_.store(true);
      queue_.abort();
    }
    if (drain_started &&
        ms_since(*drain_started) > opts_.drain_deadline_ms) {
      queue_.abort();
    }
    if (!opts_.snapshot_path.empty() &&
        ms_since(last_snapshot) >= opts_.snapshot_interval_ms) {
      write_snapshot();
      last_snapshot = Clock::now();
    }
  }
}

int ServeDaemon::run() {
  // Unconditionally: a daemon that installs no handlers must not inherit
  // a stop left behind by a signal-stopped predecessor in this process.
  g_signal_stop.store(false);
  if (opts_.install_signal_handlers) {
    std::signal(SIGINT, serve_signal_handler);
    std::signal(SIGTERM, serve_signal_handler);
  }

  if (opts_.restore && !opts_.checkpoint_path.empty()) try_restore();
  reader_ =
      std::make_unique<io::TraceTailReader>(opts_.ingest, resume_offset_);
  acc_.begin_window();
  if (!opts_.record_path.empty()) {
    // The daemon cannot know the trace's node domain up front; the
    // writer widens the placeholder to the recorded data at finish().
    store::WriterOptions wopts;
    wopts.node_domain = 1;
    wopts.metrics = &registry_;
    recorder_ = std::make_unique<store::WindowStoreWriter>(
        opts_.record_path, wopts);
  }

  std::thread ingest([this] { ingest_stage(); });
  std::thread fit([this] { fit_stage(); });
  supervise();
  ingest.join();
  fit.join();

  // Final state flush: the last boundary's checkpoint (if one is due)
  // and a terminal metrics snapshot, so a drained daemon leaves the same
  // artifacts a running one serves.
  if (!opts_.checkpoint_path.empty() && windows_since_checkpoint_ > 0 &&
      fatal_exit_.load() == 0) {
    do_checkpoint();
  }
  write_snapshot();
  // Seal the recording (manifest + trailer) even on a fatal exit: the
  // windows fitted so far are intact, and a torn tail is only for runs
  // the process never got to finish.
  if (recorder_ != nullptr) {
    try {
      recorder_->finish();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: record finish failed: %s\n", e.what());
    }
    recorder_.reset();
  }
  if (opts_.out != nullptr) {
    opts_.out->flush();
  } else {
    std::cout.flush();
  }

  const int code = fatal_exit_.load();
  if (code != 0) {
    std::fprintf(stderr, "serve: fatal: %s\n", fatal_message_.c_str());
  }
  return code;
}

}  // namespace palu::serve
