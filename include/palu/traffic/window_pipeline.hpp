// Parallel multi-window analysis.
//
// The Section II methodology aggregates many consecutive windows of N_V
// valid packets and studies the per-bin mean and σ across them.  Windows
// of the synthetic stream are exchangeable (the generator is stationary),
// so they can be produced and histogrammed in parallel, one deterministic
// RNG stream per window — the library's main multi-core path for the
// Fig-3-style sweeps.
//
// Sweeps are hardened for long production runs: a worker exception carries
// its window index back to the caller (SweepWindowError), a failure budget
// lets a sweep tolerate a bounded number of bad windows without losing the
// rest, and a cancellation flag / wall-clock timeout stops a stuck sweep
// cleanly between windows.
//
// Windows run by default through the WindowAccumulator fast path: flat
// arena-reused hash tables per worker (leased via ScratchPool), one cached
// generator per worker reseeded per window, batched packet draws, and
// single-pass histogramming.  Results are byte-identical to the legacy
// SparseCountMatrix path (SweepOptions::fast_path = false) for the same
// seed; stage timings land in WindowSweepResult::timings either way.
//
// Count-space synthesis (SweepOptions::synthesis = kMultinomial) goes one
// step further: each window is drawn whole as per-pair packet counts
// (Multinomial over edge rates + one direction Binomial per active pair),
// so per-window cost is O(num_edges) instead of O(n_valid).  Same law,
// different RNG consumption — counts sweeps are distributionally
// equivalent to packet sweeps, not byte-identical (see DESIGN.md §5e).
//
// Analytic synthesis (SweepOptions::synthesis = kExpected) drops the RNG
// entirely: one deterministic ExpectedWindowEvaluator pass produces the
// expected pooled histogram and Table-I aggregates in closed form —
// O(num_edges) once per window size, independent of both N_V and the
// window count (DESIGN.md §5i).  Sampled replicates for confidence bands
// are opt-in via SweepOptions::expected_replicates.
//
// The sweep body is an explicit stage graph — synthesize → accumulate →
// bin per window inside a worker, then a serial fit/reduce on the calling
// thread — with two selectable sharding modes for the accumulate stage
// (SweepOptions::shard_mode): concurrent windows (default) and
// intra-window node-range sharding across mergeable sub-accumulators
// (DESIGN.md §5g).  Both are byte-identical for the same seed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/common/types.hpp"
#include "palu/graph/graph.hpp"
#include "palu/parallel/thread_pool.hpp"
#include "palu/stats/histogram.hpp"
#include "palu/stats/log_binning.hpp"
#include "palu/traffic/expected_window.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/stream.hpp"

namespace palu::obs {
class Registry;
}

namespace palu::traffic {

class WindowSource;       // traffic/window_source.hpp
class WindowCaptureSink;  // traffic/window_source.hpp

/// Thrown when a sweep worker fails and the failure budget is zero; names
/// the window so operators can bisect a bad capture region.
class SweepWindowError : public Error {
 public:
  SweepWindowError(std::size_t window, const std::string& what)
      : Error("sweep_windows: window " + std::to_string(window) +
              " failed: " + what),
        window_(window) {}

  std::size_t window() const noexcept { return window_; }

 private:
  std::size_t window_;
};

/// One failed window of a tolerant sweep.
struct WindowFailure {
  std::size_t window = 0;
  std::string error;
};

/// How a sweep maps accumulation onto state (DESIGN.md §5g).  Both modes
/// run the same stage graph (synthesize → accumulate → bin → fit/reduce)
/// and produce byte-identical results for the same seed and synthesis
/// mode; they differ only in how the accumulate stage is sharded.
enum class ShardMode {
  /// One window per worker, one accumulator per worker — the default and
  /// today's concurrency axis (windows are exchangeable).
  kConcurrentWindows,
  /// Additionally partition each window's accumulation by node-id range
  /// across SweepOptions::shards_per_window sub-accumulators that are
  /// merged (WindowAccumulator::merge) before binning.  RNG consumption
  /// is untouched — only already-drawn packets / count records are
  /// routed — so the result is byte-identical to kConcurrentWindows.
  /// The packet path routes by Packet::src, the counts path by the
  /// record's lower endpoint (EdgePacketCounts::u).  Mergeable shard
  /// state is the prerequisite for splitting one huge window across
  /// cores or hosts; on this container's single core the shards run
  /// serially inside the owning worker.  Intra-window sharding always
  /// uses the WindowAccumulator machinery, even with fast_path = false.
  kIntraWindow,
};

/// How a sweep turns the traffic law into per-window histograms.
enum class SynthesisMode {
  /// Draw n_valid individual packets per window (default; the reference
  /// path — byte-identical between fast and legacy for the same seed).
  kPacket,
  /// Draw each window whole as per-pair counts via one Multinomial over
  /// the edge rates; O(num_edges) per window.  Distributionally
  /// equivalent to kPacket, not byte-identical.
  kMultinomial,
  /// No sampling at all: evaluate the expected pooled histogram and
  /// aggregates analytically (traffic/expected_window.hpp) — one
  /// deterministic O(num_edges) evaluation per window size, so the sweep
  /// cost is flat in both N_V and num_windows.  `num_windows` is ignored
  /// (the analytic result is what an infinite ensemble converges to);
  /// SweepOptions::expected_replicates adds optional sampled counts-path
  /// replicates so WindowSweepResult::ensemble carries σ bands.  The
  /// fast_path and shard knobs do not apply.
  kExpected,
};

/// Where a sweep's windows come from (DESIGN.md §5j).
enum class SweepSource {
  /// Synthesize windows from the graph + rate model per SynthesisMode
  /// (the default, and the only mode the graph overloads accept unless
  /// SweepOptions::replay is set).
  kSynthesize,
  /// Replay pre-computed windows from SweepOptions::replay (a
  /// palu::store reader or any other WindowSource).  Synthesis is
  /// skipped entirely: no generator build, no RNG, no packet
  /// materialization — each worker decodes straight into
  /// WindowAccumulator::ingest_counts.  The graph/rates/seed arguments
  /// and SynthesisMode are ignored; kExpected and `capture` do not
  /// compose with replay.
  kReplay,
};

/// Resilience and performance knobs for sweep_windows.
struct SweepOptions {
  /// Windows allowed to fail before the sweep itself fails.  0 preserves
  /// the strict behaviour: the first failure is rethrown as
  /// SweepWindowError with the window index attached.
  std::size_t max_failed_windows = 0;
  /// Route windows through the flat WindowAccumulator fast path (arena
  /// reuse, cached per-worker generators, batched draws).  Produces
  /// byte-identical results to the legacy SparseCountMatrix path for the
  /// same seed; off is the escape hatch for A/B comparison and debugging.
  /// Ignored when synthesis == kMultinomial (counts windows always use
  /// the pooled scratch).
  bool fast_path = true;
  /// Window synthesis strategy; kPacket keeps the packet-exact reference
  /// behaviour, kMultinomial switches to O(num_edges) count-space draws,
  /// kExpected to the closed-form expectation path.
  SynthesisMode synthesis = SynthesisMode::kPacket;
  /// kExpected only: sampled counts-path replicate windows folded into
  /// WindowSweepResult::ensemble for confidence bands.  0 (default) keeps
  /// the path fully deterministic: the ensemble then holds the expected
  /// mass as a single pseudo-window (σ = 0).
  std::size_t expected_replicates = 0;
  /// Accumulation sharding (see ShardMode).  kConcurrentWindows ignores
  /// shards_per_window.
  ShardMode shard_mode = ShardMode::kConcurrentWindows;
  /// Sub-accumulators per window under ShardMode::kIntraWindow; must be
  /// >= 1.  1 degenerates to the unsharded accumulate stage.
  std::size_t shards_per_window = 1;
  /// Cooperative cancellation: checked between windows; a cancelled sweep
  /// returns the windows finished so far with `cancelled` set.
  const std::atomic<bool>* cancel = nullptr;
  /// Wall-clock budget for the whole sweep; zero means unlimited.  Checked
  /// between windows (a worker stuck inside one window cannot be
  /// preempted, but no new window starts past the deadline).
  std::chrono::milliseconds timeout{0};
  /// Window provenance: kSynthesize draws windows, kReplay decodes them
  /// from `replay` (which must then be non-null).
  SweepSource source = SweepSource::kSynthesize;
  /// The stored-window supplier for source == kReplay.  Not owned; must
  /// outlive the sweep call.  Its node_domain() drives intra-window
  /// shard routing, so replaying a capture with --shards K is
  /// byte-identical to the capturing run at any K.
  WindowSource* replay = nullptr;
  /// Optional capture tee: every successfully accumulated window is
  /// appended (canonical per-pair counts) before the sweep reduces it.
  /// Not owned; must be thread-safe (workers append concurrently) and
  /// outlive the sweep call.  An append failure is charged to the
  /// window like any other per-window fault.  Capture always routes
  /// through the WindowAccumulator machinery (a fast_path = false sweep
  /// with capture set silently uses the fast path, which is
  /// byte-identical); it does not compose with kExpected or kReplay.
  WindowCaptureSink* capture = nullptr;
  /// Metrics sink for sweep counters and stage-duration histograms
  /// (palu_sweep_* families, see palu/obs/names.hpp).  nullptr routes to
  /// obs::default_registry(); point it at a caller-owned registry for
  /// per-run isolation (bench_sweep, the equivalence tests).
  obs::Registry* metrics = nullptr;
};

/// CPU nanoseconds per sweep stage, in two views.  `*_cpu_ns` is the sum
/// over all workers — total compute burned, which on a multi-worker pool
/// exceeds elapsed wall time.  `*_max_ns` is the largest single worker's
/// total for the stage — the straggler bound, i.e. the best lower bound
/// on the stage's wall-clock contribution this accounting can give
/// without per-stage barriers.  (An earlier revision reported the summed
/// values under a "wall-clock" label; both views exist so neither gets
/// misread again.)  On the legacy path packet draws and cell counting are
/// interleaved inside window(), so their combined time lands in the
/// sampling fields and the accumulation fields stay 0.  On the counts
/// path sampling covers the Multinomial + direction-split draws,
/// accumulation the ingest of the pair records.  The serial window-order
/// reduce runs on the calling thread and is added to both binning views.
struct SweepStageTimings {
  // Summed across workers (total CPU time per stage).
  std::uint64_t sampling_cpu_ns = 0;      // RNG + alias-sampler draws
  std::uint64_t accumulation_cpu_ns = 0;  // packet → (src, dst) counts
  std::uint64_t binning_cpu_ns = 0;       // histogramming + reduce

  // Slowest single worker per stage (straggler view).
  std::uint64_t sampling_max_ns = 0;
  std::uint64_t accumulation_max_ns = 0;
  std::uint64_t binning_max_ns = 0;
};

struct WindowSweepResult {
  stats::BinnedEnsemble ensemble;   // pooled D(d_i) mean/σ across windows
  stats::DegreeHistogram merged;    // all windows' quantity merged
  Degree max_value = 0;             // d_max over all windows (Eq. 1)
  std::size_t windows = 0;          // windows merged into the result
  std::vector<WindowFailure> failures;  // tolerated per-window failures
  std::size_t windows_skipped = 0;  // not attempted (cancel / timeout)
  bool cancelled = false;           // cancel flag or timeout fired
  SweepStageTimings timings;        // per-stage CPU sum + straggler max
  /// kExpected sweeps only: the analytic window (expected mass,
  /// per-bin expected entity counts, expected Table-I aggregates, and
  /// the median-of-max estimate mirrored into max_value).  The sampled
  /// paths leave it empty; `merged` stays empty on the expected path
  /// (there are no integer histograms to merge).
  std::optional<ExpectedWindow> expected;
};

/// Draws `num_windows` windows of `n_valid` packets each over
/// `underlying`, histograms `quantity` per window, and reduces in window
/// order (deterministic given `seed`).  Windows are processed in parallel
/// on `pool`; window t uses the RNG stream fork(seed, t).  Successful
/// windows are merged in index order regardless of which windows failed,
/// so the result for a given seed is reproducible under fault injection.
WindowSweepResult sweep_windows(const graph::Graph& underlying,
                                const RateModel& rates, Count n_valid,
                                std::size_t num_windows, Quantity quantity,
                                std::uint64_t seed, ThreadPool& pool,
                                const SweepOptions& opts);

/// Strict overload (empty SweepOptions): first window failure throws.
WindowSweepResult sweep_windows(const graph::Graph& underlying,
                                const RateModel& rates, Count n_valid,
                                std::size_t num_windows, Quantity quantity,
                                std::uint64_t seed, ThreadPool& pool);

/// Replay overload: drives the same stage graph from stored windows —
/// no graph, no rate model, no RNG.  Windows [0, num_windows) of
/// `source` are decoded in parallel on `pool` (num_windows must not
/// exceed source.num_windows()), accumulated (optionally intra-window
/// sharded per opts.shard_mode) and reduced in window order, so the
/// result is byte-identical to the capturing sweep for every quantity
/// and shard count.  opts.source/opts.replay are overridden; a per-
/// window DataError from the source (corrupt block) is charged against
/// opts.max_failed_windows exactly like a synthesis failure.
WindowSweepResult sweep_windows(WindowSource& source,
                                std::size_t num_windows, Quantity quantity,
                                ThreadPool& pool, const SweepOptions& opts);

}  // namespace palu::traffic
