// Unit tests for the core extensions: directed observation, weighted
// edges, and small-component / isolated-node analysis (Section VII future
// work implemented as library features).
#include <gtest/gtest.h>

#include <cmath>

#include "palu/common/error.hpp"
#include "palu/core/components_analysis.hpp"
#include "palu/core/directed.hpp"
#include "palu/core/estimate.hpp"
#include "palu/core/generator.hpp"
#include "palu/core/weighted.hpp"
#include "palu/fit/linreg.hpp"
#include "palu/fit/powerlaw_mle.hpp"
#include "palu/graph/generators.hpp"
#include "palu/stats/distribution.hpp"

namespace palu::core {
namespace {

PaluParams typical_params() {
  return PaluParams::solve_hubs(3.0, 0.4, 0.2, 2.2, 0.7);
}

// ------------------------------------------------------------- directed

TEST(Directed, ArcCountMatchesRetentionAndReciprocity) {
  const PaluParams p = typical_params();
  Rng rng(1);
  const auto net = generate_underlying(p, 100000, rng);
  DirectedOptions opts;
  opts.reciprocity = 0.3;
  const auto obs = observe_directed(net, p, rng, opts);
  // E[arcs] = |E|·p·(1 + reciprocity).
  const double expected = static_cast<double>(net.graph.num_edges()) *
                          p.window * (1.0 + opts.reciprocity);
  EXPECT_NEAR(static_cast<double>(obs.directed_edges), expected,
              6.0 * std::sqrt(expected));
}

TEST(Directed, InAndOutDegreesBalanceInAggregate) {
  const PaluParams p = typical_params();
  Rng rng(2);
  const auto net = generate_underlying(p, 60000, rng);
  const auto obs = observe_directed(net, p, rng);
  Count in_total = 0, out_total = 0;
  for (const Degree d : obs.in_degree) in_total += d;
  for (const Degree d : obs.out_degree) out_total += d;
  EXPECT_EQ(in_total, out_total);
  EXPECT_EQ(in_total, obs.directed_edges);
}

TEST(Directed, FullReciprocityMakesInEqualOut) {
  const PaluParams p = typical_params();
  Rng rng(3);
  const auto net = generate_underlying(p, 30000, rng);
  DirectedOptions opts;
  opts.reciprocity = 1.0;
  const auto obs = observe_directed(net, p, rng, opts);
  EXPECT_EQ(obs.in_degree, obs.out_degree);
}

TEST(Directed, TotalHistogramMatchesUndirectedObservation) {
  // With the same rng stream for retention, the undirected peer counts of
  // the directed observation must follow the same law as the undirected
  // pipeline; compare summary statistics across seeds.
  const PaluParams p = typical_params();
  Rng rng_a(4);
  const auto net = generate_underlying(p, 80000, rng_a);
  Rng rng_dir(5);
  const auto directed = observe_directed(net, p, rng_dir);
  const auto dist_dir = stats::EmpiricalDistribution::from_histogram(
      directed.total_histogram());
  Rng rng_und(6);
  const auto undirected = generate_observed(net, p, rng_und);
  const auto dist_und = stats::EmpiricalDistribution::from_histogram(
      stats::DegreeHistogram::from_degrees(undirected.degrees()));
  EXPECT_NEAR(dist_dir.mass_at_one(), dist_und.mass_at_one(), 0.01);
  EXPECT_NEAR(dist_dir.mean(), dist_und.mean(), 0.05 * dist_und.mean());
}

TEST(Directed, SmallImpactOnDegreeExponent) {
  // The paper's claim: directed analysis barely moves the exponent.  Fit
  // the tail exponent on in-, out-, and undirected histograms.
  const PaluParams p = typical_params();
  Rng rng(7);
  const auto net = generate_underlying(p, 200000, rng);
  const auto obs = observe_directed(net, p, rng);
  const auto alpha_of = [](const stats::DegreeHistogram& h) {
    return fit::fit_power_law_fixed_xmin(h, 8).alpha;
  };
  const double a_in = alpha_of(obs.in_histogram());
  const double a_out = alpha_of(obs.out_histogram());
  const double a_total = alpha_of(obs.total_histogram());
  EXPECT_NEAR(a_in, a_out, 0.1);
  // In/out degrees are ~half the undirected degree, which shifts the
  // bounded-tail MLE a little; "small impact" = within ~0.3.
  EXPECT_NEAR(a_in, a_total, 0.3);
}

TEST(Directed, RejectsBadReciprocity) {
  const PaluParams p = typical_params();
  Rng rng(8);
  const auto net = generate_underlying(p, 5000, rng);
  DirectedOptions opts;
  opts.reciprocity = 1.5;
  EXPECT_THROW(observe_directed(net, p, rng, opts), InvalidArgument);
}

// ------------------------------------------------------------- weighted

TEST(Weighted, OneWeightPerEdge) {
  Rng rng(9);
  const auto g = graph::erdos_renyi(rng, 500, 0.02);
  const auto w = assign_edge_weights(rng, g, WeightModel{});
  EXPECT_EQ(w.size(), g.num_edges());
  for (const Count x : w) EXPECT_GE(x, 1u);
}

TEST(Weighted, GeometricWeightsHaveRightMean) {
  Rng rng(10);
  graph::Graph g(2);
  for (int i = 0; i < 20000; ++i) g.add_edge(0, 1);
  WeightModel model;
  model.law = WeightModel::Law::kGeometric;
  model.param = 0.25;
  const auto w = assign_edge_weights(rng, g, model);
  double mean = 0.0;
  for (const Count x : w) mean += static_cast<double>(x);
  mean /= static_cast<double>(w.size());
  EXPECT_NEAR(mean, 4.0, 0.15);
}

TEST(Weighted, LinkWeightHistogramFollowsLaw) {
  Rng rng(11);
  graph::Graph g(2);
  for (int i = 0; i < 50000; ++i) g.add_edge(0, 1);
  WeightModel model;
  model.law = WeightModel::Law::kZeta;
  model.param = 2.5;
  const auto w = assign_edge_weights(rng, g, model);
  const auto h = link_weight_histogram(w);
  const auto fitted = fit::fit_power_law_fixed_xmin(h, 1);
  EXPECT_NEAR(fitted.alpha, 2.5, 0.08);
}

TEST(Weighted, StrengthReducesToDegreeForUnitWeights) {
  Rng rng(12);
  const auto g = graph::erdos_renyi(rng, 300, 0.03);
  const std::vector<Count> unit(g.num_edges(), 1);
  const auto strengths = node_strength_histogram(g, unit);
  const auto degrees =
      stats::DegreeHistogram::from_degrees(g.degrees());
  EXPECT_EQ(strengths.total(), degrees.total());
  for (const auto& [d, c] : degrees.sorted()) {
    EXPECT_EQ(strengths.at(d), c) << "d=" << d;
  }
}

TEST(Weighted, StrengthTailExponentPrediction) {
  WeightModel heavy;
  heavy.law = WeightModel::Law::kZeta;
  heavy.param = 1.6;
  EXPECT_DOUBLE_EQ(predicted_strength_tail_exponent(2.4, heavy), 1.6);
  heavy.param = 3.0;
  EXPECT_DOUBLE_EQ(predicted_strength_tail_exponent(2.4, heavy), 2.4);
  WeightModel light;
  light.law = WeightModel::Law::kGeometric;
  light.param = 0.5;
  EXPECT_DOUBLE_EQ(predicted_strength_tail_exponent(2.4, light), 2.4);
}

TEST(Weighted, HeavyWeightsFlattenStrengthTail) {
  // Degree law α≈2.6 with γ=1.7 weights: strength tail should follow the
  // weights (≈1.7), visibly flatter than the degree tail.
  Rng rng(13);
  const auto g = graph::zeta_degree_core(rng, 150000, 2.6, 2000);
  WeightModel model;
  model.law = WeightModel::Law::kZeta;
  model.param = 1.7;
  const auto w = assign_edge_weights(rng, g, model);
  const auto strengths = node_strength_histogram(g, w);
  const auto fitted = fit::fit_power_law_fixed_xmin(strengths, 32);
  EXPECT_NEAR(fitted.alpha,
              predicted_strength_tail_exponent(2.6, model), 0.25);
}

TEST(Weighted, SizeMismatchThrows) {
  Rng rng(14);
  const auto g = graph::erdos_renyi(rng, 100, 0.05);
  const std::vector<Count> wrong(g.num_edges() + 1, 1);
  EXPECT_THROW(node_strength_histogram(g, wrong), InvalidArgument);
  WeightModel bad;
  bad.law = WeightModel::Law::kZeta;
  bad.param = 0.9;
  EXPECT_THROW(assign_edge_weights(rng, g, bad), InvalidArgument);
}

// ----------------------------------------------------------- components

TEST(Components, StarSizeShareIsNormalizedConditionalPoisson) {
  const PaluParams p = typical_params();
  double total = 0.0;
  for (NodeId s = 2; s <= 100; ++s) {
    total += star_component_size_share(p, s);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Size 2 share = P(Po(μ) = 1)/(1 − e^{−μ}).
  const double mu = p.lambda * p.window;
  EXPECT_NEAR(star_component_size_share(p, 2),
              mu * std::exp(-mu) / (-std::expm1(-mu)), 1e-12);
}

TEST(Components, MeasuredSizesTrackTheoryInStarOnlyModel) {
  // Pure star model (no core, no leaves... keep a tiny core since the
  // generator requires one, then ignore sizes above the star range).
  const PaluParams p = PaluParams::solve_hubs(4.0, 0.02, 0.0, 2.0, 0.9);
  Rng rng(15);
  const auto net = generate_underlying(p, 300000, rng);
  const auto observed = generate_observed(net, p, rng);
  const auto sizes = small_component_size_histogram(observed, 30);
  const auto dist = stats::EmpiricalDistribution::from_histogram(sizes);
  for (NodeId s = 2; s <= 10; ++s) {
    const double predicted = star_component_size_share(p, s);
    const double measured = dist.probability_at(s);
    const double se =
        std::sqrt(predicted / static_cast<double>(dist.sample_size()));
    EXPECT_NEAR(measured, predicted, 6.0 * se + 0.02 * predicted)
        << "size " << s;
  }
}

TEST(Components, IsolatedEstimateFromGroundTruthConstants) {
  const PaluParams p = typical_params();
  const auto k = simplified_constants(p);
  PaluFit fit;
  fit.alpha = p.alpha;
  fit.c = k.c;
  fit.mu = k.mu;
  fit.u = k.u;
  fit.mu_identifiable = true;
  const auto est = estimate_isolated(fit, p.window);
  EXPECT_DOUBLE_EQ(est.invisible_hubs_per_visible, k.u);
  EXPECT_NEAR(est.implied_lambda, p.lambda, 1e-12);
  // U·e^{−λ}/V exactly.
  const double v = observed_composition(p).visible_mass;
  EXPECT_NEAR(est.underlying_isolated_per_visible,
              p.hubs * std::exp(-p.lambda) / v, 1e-12);
}

TEST(Components, IsolatedEstimateEndToEnd) {
  const PaluParams p = PaluParams::solve_hubs(5.0, 0.35, 0.15, 2.3, 0.8);
  Rng rng(16);
  const auto h = sample_observed_degrees(p, 400000, rng);
  const auto fit = fit_palu(h);
  const auto est = estimate_isolated(fit, p.window);
  const double v = observed_composition(p).visible_mass;
  const double truth = p.hubs * std::exp(-p.lambda) / v;
  EXPECT_NEAR(est.underlying_isolated_per_visible, truth, 0.5 * truth);
  EXPECT_NEAR(est.implied_lambda, p.lambda, 0.2 * p.lambda);
}

TEST(Components, DegenerateInputsThrow) {
  const PaluParams p = typical_params();
  EXPECT_THROW(star_component_size_share(p, 1), InvalidArgument);
  EXPECT_THROW(small_component_size_histogram(graph::Graph(5), 1),
               InvalidArgument);
  PaluFit unident;
  unident.mu_identifiable = false;
  EXPECT_THROW(estimate_isolated(unident, 0.5), DataError);
  PaluFit ok;
  ok.mu = 1.0;
  ok.u = 0.1;
  EXPECT_THROW(estimate_isolated(ok, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace palu::core
