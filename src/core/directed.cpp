#include "palu/core/directed.hpp"

#include "palu/common/error.hpp"

namespace palu::core {

stats::DegreeHistogram DirectedObserved::in_histogram() const {
  return stats::DegreeHistogram::from_degrees(in_degree);
}

stats::DegreeHistogram DirectedObserved::out_histogram() const {
  return stats::DegreeHistogram::from_degrees(out_degree);
}

stats::DegreeHistogram DirectedObserved::total_histogram() const {
  std::vector<Degree> total(in_degree.size(), 0);
  for (std::size_t v = 0; v < total.size(); ++v) {
    // Links are unique node pairs, so a node's peers split cleanly into
    // in-only, out-only, and reciprocal; reciprocal peers appear in both
    // tallies and the undirected peer count is in + out − reciprocal.
    // Reciprocal peers are tracked implicitly: the generator increments
    // both tallies once per peer, so in + out here double-counts exactly
    // the reciprocal ones.  total_ (below) corrects with the stored count.
    total[v] = in_degree[v] + out_degree[v] - reciprocal_[v];
  }
  return stats::DegreeHistogram::from_degrees(total);
}

DirectedObserved observe_directed(const UnderlyingNetwork& underlying,
                                  const PaluParams& params, Rng& rng,
                                  const DirectedOptions& opts) {
  params.validate();
  PALU_CHECK(opts.reciprocity >= 0.0 && opts.reciprocity <= 1.0,
             "observe_directed: reciprocity out of [0, 1]");
  DirectedObserved out;
  const NodeId n = underlying.graph.num_nodes();
  out.in_degree.assign(n, 0);
  out.out_degree.assign(n, 0);
  out.reciprocal_.assign(n, 0);
  for (const graph::Edge& e : underlying.graph.edges()) {
    if (!rng.bernoulli(params.window)) continue;
    if (rng.bernoulli(opts.reciprocity)) {
      ++out.out_degree[e.u];
      ++out.in_degree[e.v];
      ++out.out_degree[e.v];
      ++out.in_degree[e.u];
      ++out.reciprocal_[e.u];
      ++out.reciprocal_[e.v];
      out.directed_edges += 2;
    } else if (rng.bernoulli(0.5)) {
      ++out.out_degree[e.u];
      ++out.in_degree[e.v];
      ++out.directed_edges;
    } else {
      ++out.out_degree[e.v];
      ++out.in_degree[e.u];
      ++out.directed_edges;
    }
  }
  return out;
}

}  // namespace palu::core
