
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chisq.cpp" "src/stats/CMakeFiles/palu_stats.dir/chisq.cpp.o" "gcc" "src/stats/CMakeFiles/palu_stats.dir/chisq.cpp.o.d"
  "/root/repo/src/stats/distribution.cpp" "src/stats/CMakeFiles/palu_stats.dir/distribution.cpp.o" "gcc" "src/stats/CMakeFiles/palu_stats.dir/distribution.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/palu_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/palu_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/log_binning.cpp" "src/stats/CMakeFiles/palu_stats.dir/log_binning.cpp.o" "gcc" "src/stats/CMakeFiles/palu_stats.dir/log_binning.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/palu_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/palu_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/palu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/palu_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
