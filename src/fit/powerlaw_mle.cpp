#include "palu/fit/powerlaw_mle.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/fit/brent.hpp"
#include "palu/math/zeta.hpp"
#include "palu/parallel/parallel_for.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/stats/distribution.hpp"

namespace palu::fit {
namespace {

constexpr double kAlphaLo = 1.000001;
constexpr double kAlphaHi = 24.0;

// Tail view of a histogram: (degree, count) pairs with d >= xmin, sorted.
struct Tail {
  std::vector<std::pair<Degree, Count>> entries;
  Count n = 0;
  double sum_log_d = 0.0;
};

Tail make_tail(const stats::DegreeHistogram& h, Degree xmin) {
  Tail tail;
  for (const auto& [d, c] : h.sorted()) {
    if (d < xmin || d == 0) continue;
    tail.entries.emplace_back(d, c);
    tail.n += c;
    tail.sum_log_d +=
        static_cast<double>(c) * std::log(static_cast<double>(d));
  }
  return tail;
}

// Negative log-likelihood per observation for the zeta tail model.
double neg_log_likelihood(double alpha, const Tail& tail, Degree xmin) {
  const double nd = static_cast<double>(tail.n);
  return std::log(math::hurwitz_zeta(alpha, static_cast<double>(xmin))) +
         alpha * tail.sum_log_d / nd;
}

PowerLawFit fit_tail(const Tail& tail, Degree xmin) {
  if (tail.n < 2) {
    throw DataError("fit_power_law: fewer than 2 tail observations");
  }
  if (tail.entries.size() < 2) {
    throw DataError("fit_power_law: tail support is a single value");
  }
  const auto nll = [&](double alpha) {
    return neg_log_likelihood(alpha, tail, xmin);
  };
  const double alpha = brent_minimize(nll, kAlphaLo, kAlphaHi);
  PowerLawFit fit;
  fit.alpha = alpha;
  fit.xmin = xmin;
  fit.tail_size = tail.n;
  fit.log_likelihood = -nll(alpha) * static_cast<double>(tail.n);
  // Observed-information standard error via central second difference.
  const double h = 1e-4;
  const double d2 =
      (nll(alpha + h) - 2.0 * nll(alpha) + nll(alpha - h)) / (h * h);
  if (d2 > 0.0) {
    fit.alpha_stderr =
        1.0 / std::sqrt(d2 * static_cast<double>(tail.n));
  }
  // KS statistic of the tail against the fitted model.
  stats::DegreeHistogram tail_hist;
  for (const auto& [d, c] : tail.entries) tail_hist.add(d, c);
  const auto emp = stats::EmpiricalDistribution::from_histogram(tail_hist);
  fit.ks_statistic = stats::ks_distance(
      emp, [&](Degree d) { return zeta_tail_cdf(alpha, xmin, d); });
  return fit;
}

}  // namespace

double zeta_tail_cdf(double alpha, Degree xmin, Degree d) {
  if (d < xmin) return 0.0;
  const double total =
      math::hurwitz_zeta(alpha, static_cast<double>(xmin));
  const double above =
      math::hurwitz_zeta(alpha, static_cast<double>(d) + 1.0);
  return 1.0 - above / total;
}

PowerLawFit fit_power_law_fixed_xmin(const stats::DegreeHistogram& h,
                                     Degree xmin) {
  PALU_CHECK(xmin >= 1, "fit_power_law_fixed_xmin: requires xmin >= 1");
  return fit_tail(make_tail(h, xmin), xmin);
}

PowerLawFit fit_power_law(const stats::DegreeHistogram& h,
                          std::size_t max_xmin_candidates) {
  const auto entries = h.sorted();
  std::vector<Degree> candidates;
  for (const auto& [d, c] : entries) {
    if (d >= 1) candidates.push_back(d);
  }
  if (candidates.empty()) {
    throw DataError("fit_power_law: empty histogram");
  }
  // Keep the smallest candidates: large xmin leaves too little tail and the
  // CSN optimum is almost always near the head.
  if (candidates.size() > max_xmin_candidates) {
    candidates.resize(max_xmin_candidates);
  }
  std::optional<PowerLawFit> best;
  for (Degree xmin : candidates) {
    Tail tail = make_tail(h, xmin);
    if (tail.n < 2 || tail.entries.size() < 2) continue;
    const PowerLawFit fit = fit_tail(tail, xmin);
    if (!best || fit.ks_statistic < best->ks_statistic) best = fit;
  }
  if (!best) {
    throw DataError("fit_power_law: no viable xmin candidate");
  }
  return *best;
}

double bootstrap_gof_pvalue(const stats::DegreeHistogram& h,
                            const PowerLawFit& fit, int replicates,
                            Rng& rng, ThreadPool& pool) {
  PALU_CHECK(replicates > 0, "bootstrap_gof_pvalue: replicates must be > 0");
  // Split observations into head (d < xmin, resampled empirically) and tail
  // (drawn from the fitted zeta law) — CSN's semi-parametric bootstrap.
  std::vector<std::pair<Degree, Count>> head;
  Count head_n = 0;
  Count tail_n = 0;
  for (const auto& [d, c] : h.sorted()) {
    if (d == 0) continue;
    if (d < fit.xmin) {
      head.emplace_back(d, c);
      head_n += c;
    } else {
      tail_n += c;
    }
  }
  const Count total = head_n + tail_n;
  PALU_CHECK(total > 0, "bootstrap_gof_pvalue: empty histogram");
  std::vector<double> head_weights;
  head_weights.reserve(head.size());
  for (const auto& [d, c] : head) {
    head_weights.push_back(static_cast<double>(c));
  }
  std::optional<rng::AliasSampler> head_sampler;
  if (!head.empty()) head_sampler.emplace(head_weights);
  // Tail sampler: bounded zeta truncated far beyond any plausible draw.
  const Degree tail_cap =
      std::max<Degree>(h.max_degree() * 64, fit.xmin + (1u << 20));
  rng::BoundedZipfSampler tail_sampler(fit.alpha, fit.xmin, tail_cap);

  const double head_prob =
      static_cast<double>(head_n) / static_cast<double>(total);
  std::atomic<int> exceed_count{0};
  const auto base_rng = rng;
  parallel_for(
      pool, 0, static_cast<std::size_t>(replicates), /*grain=*/1,
      [&](IndexRange range) {
        for (std::size_t rep = range.begin; rep < range.end; ++rep) {
          Rng local = base_rng.fork(rep + 1);
          stats::DegreeHistogram synth;
          for (Count i = 0; i < total; ++i) {
            if (!head.empty() && local.uniform() < head_prob) {
              synth.add(head[(*head_sampler)(local)].first);
            } else {
              synth.add(tail_sampler(local));
            }
          }
          try {
            const PowerLawFit refit = fit_power_law(synth);
            if (refit.ks_statistic > fit.ks_statistic) {
              exceed_count.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const DataError&) {
            // Degenerate replicate (all mass on one value): counts as an
            // extreme deviation from the power law.
            exceed_count.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
  // Advance the caller's stream so subsequent draws differ from replicate 0.
  rng.jump();
  return static_cast<double>(exceed_count.load()) /
         static_cast<double>(replicates);
}

}  // namespace palu::fit
