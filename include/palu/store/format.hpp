// On-disk layout of the columnar window store (DESIGN.md §5j).
//
// A store file is: a 40-byte file header, then one block per window in
// append order, then a manifest (one entry per block), then a 24-byte
// trailer that locates the manifest.  All integers are little-endian;
// the header carries an endian tag so a big-endian reader fails loudly
// instead of decoding garbage.  Per-pair records inside a block are
// sorted by (u, v) and delta-encoded: u as a varint delta from the
// previous record's u, v as a zigzag-varint delta from the previous
// record's v, then the forward and backward packet counts as plain
// varints.  Every block and the manifest carry a 64-bit checksum
// (checksum64 below) so torn writes surface as typed DataError, never
// as silent bad windows.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace palu::store {

// ------------------------------------------------------------ constants

/// File magic, first 8 bytes: "PALUWST1".
inline constexpr std::uint64_t kFileMagic = 0x3154535755'4C4150ULL;
/// Endian tag stored as a u32; reads back as 0x04030201 on a
/// wrong-endian host.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
/// Format version this library writes and the only one it reads.
inline constexpr std::uint32_t kFormatVersion = 1;
/// Block magic "BLK1" (little-endian u32).
inline constexpr std::uint32_t kBlockMagic = 0x314B4C42u;
/// Manifest magic "MFT1" (little-endian u32).
inline constexpr std::uint32_t kManifestMagic = 0x3154464Du;
/// Trailer magic, last 8 bytes of the file: "PALUWEND".
inline constexpr std::uint64_t kTrailerMagic = 0x444E455755'4C4150ULL;

/// Fixed section sizes (serialized field-by-field, never memcpy'd
/// structs, so there is no padding to get wrong).
inline constexpr std::size_t kFileHeaderBytes = 40;
/// Offset of the node_domain field inside the file header (magic, endian
/// tag, and version precede it).  finish() rewrites it in place so
/// producers that cannot know the domain up front (the serve recorder)
/// can widen it to the data actually appended.
inline constexpr long kFileHeaderDomainOffset = 16;
inline constexpr std::size_t kBlockHeaderBytes = 40;
inline constexpr std::size_t kManifestEntryBytes = 24;
inline constexpr std::size_t kManifestHeaderBytes = 16;
inline constexpr std::size_t kTrailerBytes = 24;

/// All six window quantities are always covered by a stored block; the
/// mask exists so a future version can store partial coverage.
inline constexpr std::uint32_t kAllQuantitiesMask = 0x3Fu;

// ------------------------------------------------------------ checksum

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// One unaligned little-endian u64 load, as a real 8-byte load: the
/// shift-or idiom in get_u64 below is not reliably coalesced by gcc, and
/// the checksum walks every stored byte through this.
inline std::uint64_t load_le_u64(const unsigned char* p) noexcept {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  if constexpr (std::endian::native == std::endian::big) {
    w = __builtin_bswap64(w);
  }
  return w;
}

/// 64-bit payload checksum: the FNV-1a mix (xor then multiply by the FNV
/// prime) folded over four independent 64-bit little-endian word lanes,
/// 32 bytes per step, with the sub-32-byte tail absorbed byte-wise into
/// lane 0 and the total length mixed into the final fold.  Replay
/// verifies every block before decoding, so this runs over the whole
/// store per replay: four independent multiply chains pipeline where the
/// canonical byte-at-a-time FNV-1a serializes on one (~8x throughput on
/// one core).  Words are read as little-endian, so the value is
/// host-endianness-independent like the rest of the format.
inline std::uint64_t checksum64(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint64_t total = n;
  std::uint64_t h0 = kFnvOffset;
  std::uint64_t h1 = kFnvOffset ^ 0x9E3779B97F4A7C15ULL;
  std::uint64_t h2 = kFnvOffset ^ 0xC2B2AE3D27D4EB4FULL;
  std::uint64_t h3 = kFnvOffset ^ 0x165667B19E3779F9ULL;
  while (n >= 32) {
    h0 = (h0 ^ load_le_u64(p)) * kFnvPrime;
    h1 = (h1 ^ load_le_u64(p + 8)) * kFnvPrime;
    h2 = (h2 ^ load_le_u64(p + 16)) * kFnvPrime;
    h3 = (h3 ^ load_le_u64(p + 24)) * kFnvPrime;
    p += 32;
    n -= 32;
  }
  while (n > 0) {
    h0 = (h0 ^ *p++) * kFnvPrime;
    --n;
  }
  std::uint64_t h = (h0 ^ h1) * kFnvPrime;
  h = (h ^ h2) * kFnvPrime;
  h = (h ^ h3) * kFnvPrime;
  return (h ^ total) * kFnvPrime;
}

// ------------------------------------------------------ varint / zigzag
//
// LEB128 varints: 7 value bits per byte, high bit = continuation.  A
// u64 needs at most 10 bytes.  Signed deltas go through zigzag so small
// negative v-deltas stay short.

inline constexpr std::size_t kMaxVarintBytes = 10;

inline std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t u) noexcept {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/// Appends the varint encoding of `v` to `out` (raw byte vector).
template <typename ByteVec>
inline void put_varint(ByteVec& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<typename ByteVec::value_type>(
        static_cast<unsigned char>(v) | 0x80u));
    v >>= 7;
  }
  out.push_back(static_cast<typename ByteVec::value_type>(
      static_cast<unsigned char>(v)));
}

/// Decodes one varint from [p, end).  Returns the advanced pointer, or
/// nullptr on truncation / a varint longer than 10 bytes.  The loop is
/// branch-light: one compare per byte, no per-byte function calls.
inline const unsigned char* get_varint(const unsigned char* p,
                                       const unsigned char* end,
                                       std::uint64_t& v) noexcept {
  std::uint64_t out = 0;
  unsigned shift = 0;
  while (p != end && shift < 70) {
    const unsigned char byte = *p++;
    out |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      v = out;
      return p;
    }
    shift += 7;
  }
  return nullptr;
}

// ----------------------------------------------- fixed-width LE helpers

template <typename ByteVec>
inline void put_u32(ByteVec& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<typename ByteVec::value_type>(
        static_cast<unsigned char>(v >> (8 * i))));
  }
}

template <typename ByteVec>
inline void put_u64(ByteVec& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<typename ByteVec::value_type>(
        static_cast<unsigned char>(v >> (8 * i))));
  }
}

inline std::uint32_t get_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

inline std::uint64_t get_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

// ------------------------------------------------------- parsed headers

/// Decoded 40-byte file header.
struct FileHeader {
  std::uint64_t node_domain = 0;  ///< node-id domain of the producer
  std::uint64_t seed = 0;         ///< producer RNG seed (provenance only)
};

/// Decoded 40-byte block header (payload follows immediately).
struct BlockHeader {
  std::uint32_t quantity_mask = kAllQuantitiesMask;
  std::uint64_t window_index = 0;
  std::uint64_t n_valid = 0;       ///< window valid-packet total N_V
  std::uint32_t record_count = 0;  ///< (u,v,count) records in the payload
  std::uint32_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;  ///< checksum64 of the payload bytes
};

/// One manifest entry: where block `window_index` lives in the file.
struct ManifestEntry {
  std::uint64_t window_index = 0;
  std::uint64_t offset = 0;       ///< file offset of the block header
  std::uint64_t block_bytes = 0;  ///< header + payload
};

}  // namespace palu::store
