file(REMOVE_RECURSE
  "CMakeFiles/sampling_models_test.dir/sampling_models_test.cpp.o"
  "CMakeFiles/sampling_models_test.dir/sampling_models_test.cpp.o.d"
  "sampling_models_test"
  "sampling_models_test.pdb"
  "sampling_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
