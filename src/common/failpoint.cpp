#include "palu/common/failpoint.hpp"

#include <limits>
#include <map>
#include <mutex>
#include <string>

#include "palu/common/error.hpp"

namespace palu {
namespace {

struct FailpointState {
  int fires = -1;  // < 0: unbounded
  int skip = 0;
  int hits = 0;
  int fired = 0;
};

std::mutex g_mutex;
std::map<std::string, FailpointState, std::less<>>& registry() {
  static std::map<std::string, FailpointState, std::less<>> map;
  return map;
}
std::atomic<int> g_armed_count{0};

}  // namespace

namespace failpoints {

void arm(std::string_view name, int fires, int skip) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& map = registry();
  const auto it = map.find(name);
  if (it == map.end()) {
    map.emplace(std::string(name), FailpointState{fires, skip, 0, 0});
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  } else {
    it->second = FailpointState{fires, skip, 0, 0};
  }
}

void disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& map = registry();
  const auto it = map.find(name);
  if (it != map.end()) {
    map.erase(it);
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed_count.fetch_sub(static_cast<int>(registry().size()),
                          std::memory_order_relaxed);
  registry().clear();
}

void arm_from_spec(std::string_view spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view clause = spec.substr(start, comma - start);
    start = comma + 1;
    if (clause.empty()) continue;
    // name[:fires[:skip]]
    const std::size_t c1 = clause.find(':');
    const std::string_view name = clause.substr(0, c1);
    int fires = -1;
    int skip = 0;
    if (name.empty()) {
      throw InvalidArgument("failpoint spec clause '" +
                            std::string(clause) + "' has no site name");
    }
    const auto parse_int = [&clause](std::string_view tok) {
      if (tok.empty()) {
        throw InvalidArgument("failpoint spec clause '" +
                              std::string(clause) + "' has an empty field");
      }
      int sign = 1;
      std::size_t i = 0;
      if (tok[0] == '-') {
        sign = -1;
        i = 1;
      }
      if (i == tok.size()) {
        throw InvalidArgument("failpoint spec clause '" +
                              std::string(clause) +
                              "' has a sign with no digits");
      }
      int v = 0;
      for (; i < tok.size(); ++i) {
        if (tok[i] < '0' || tok[i] > '9') {
          throw InvalidArgument("failpoint spec clause '" +
                                std::string(clause) +
                                "' has a non-numeric field");
        }
        const int digit = tok[i] - '0';
        if (v > (std::numeric_limits<int>::max() - digit) / 10) {
          throw InvalidArgument("failpoint spec clause '" +
                                std::string(clause) +
                                "' has a numeric field out of range");
        }
        v = v * 10 + digit;
      }
      return sign * v;
    };
    if (c1 != std::string_view::npos) {
      const std::string_view rest = clause.substr(c1 + 1);
      const std::size_t c2 = rest.find(':');
      fires = parse_int(rest.substr(0, c2));
      if (c2 != std::string_view::npos) {
        skip = parse_int(rest.substr(c2 + 1));
      }
    }
    arm(name, fires, skip);
  }
}

bool any_armed() noexcept {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

int hit_count(std::string_view name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto& map = registry();
  const auto it = map.find(name);
  return it == map.end() ? 0 : it->second.hits;
}

bool is_failpoint_error(const std::exception& e) noexcept {
  // Matches the message shape produced by failpoint_hit below; kept in
  // one TU with the thrower so the two cannot drift apart silently.
  return std::string_view(e.what()).starts_with("failpoint '");
}

}  // namespace failpoints

namespace detail {

void failpoint_hit(const char* name) {
  bool fire = false;
  int hit = 0;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    auto& map = registry();
    const auto it = map.find(std::string_view(name));
    if (it == map.end()) return;
    FailpointState& s = it->second;
    hit = ++s.hits;
    if (s.hits > s.skip && (s.fires < 0 || s.fired < s.fires)) {
      ++s.fired;
      fire = true;
    }
  }
  // Throw outside the lock so the unwinder never holds the registry mutex.
  if (fire) {
    throw ConvergenceError("failpoint '" + std::string(name) +
                           "' fired (hit " + std::to_string(hit) + ")");
  }
}

}  // namespace detail
}  // namespace palu
