// Intra-window shard-merge equivalence (PR 7, DESIGN.md §5g).
//
// Sharding a window's accumulation by node-id range across K mergeable
// sub-accumulators must be a pure refactoring of state: for any quantity,
// seed, synthesis mode, and K ∈ {1, 2, 4, 8} the sweep result — merged
// histogram, BinnedEnsemble moments, d_max, and the metric trail — must
// be byte-identical to the unsharded path.  The suite also pins
// WindowAccumulator::merge itself across all of its mode combinations and
// the traffic.shard_merge failpoint's degrade semantics.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <string>
#include <vector>

#include "palu/common/failpoint.hpp"
#include "palu/graph/generators.hpp"
#include "palu/obs/metrics.hpp"
#include "palu/obs/names.hpp"
#include "palu/parallel/shard.hpp"
#include "palu/stats/log_binning.hpp"
#include "palu/testing/fault_injection.hpp"
#include "palu/traffic/quantities.hpp"
#include "palu/traffic/stream.hpp"
#include "palu/traffic/window_accumulator.hpp"
#include "palu/traffic/window_pipeline.hpp"

namespace palu {
namespace {

constexpr std::array<traffic::Quantity, 6> kEveryQuantity = {
    traffic::Quantity::kSourcePackets,
    traffic::Quantity::kSourceFanOut,
    traffic::Quantity::kLinkPackets,
    traffic::Quantity::kDestinationFanIn,
    traffic::Quantity::kDestinationPackets,
    traffic::Quantity::kUndirectedDegree};

constexpr std::array<std::size_t, 4> kShardCounts = {1, 2, 4, 8};

void expect_identical(const stats::DegreeHistogram& a,
                      const stats::DegreeHistogram& b,
                      const std::string& context) {
  EXPECT_EQ(a.total(), b.total()) << context;
  EXPECT_EQ(a.weighted_total(), b.weighted_total()) << context;
  EXPECT_EQ(a.sorted(), b.sorted()) << context;
}

// ---------------------------------------------------------------------
// shard routing
// ---------------------------------------------------------------------

TEST(ShardRouting, IsAPartitionOfTheDomain) {
  for (const std::size_t shards : {1u, 2u, 3u, 4u, 7u, 8u, 64u}) {
    for (const NodeId domain : {1ull, 5ull, 64ull, 1000ull, 4096ull}) {
      // Every id maps to exactly the shard whose range contains it.
      NodeId covered = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto r = parallel::shard_range(s, shards, domain);
        EXPECT_EQ(r.begin, covered);
        EXPECT_LE(r.begin, r.end);
        for (NodeId id = r.begin; id < r.end; ++id) {
          EXPECT_EQ(parallel::shard_of(id, shards, domain), s)
              << "id " << id << " shards " << shards << " domain "
              << domain;
        }
        covered = r.end;
      }
      EXPECT_EQ(covered, domain)
          << "shards " << shards << " domain " << domain;
      // Out-of-domain ids route to the last shard instead of indexing
      // out of bounds.
      EXPECT_EQ(parallel::shard_of(domain + 7, shards, domain), shards - 1);
    }
  }
}

// ---------------------------------------------------------------------
// WindowAccumulator::merge
// ---------------------------------------------------------------------

TEST(AccumulatorMerge, HashShardsMergeToUnshardedContent) {
  Rng rng(11);
  traffic::WindowAccumulator whole;
  std::array<traffic::WindowAccumulator, 4> shards;
  whole.begin_window();
  for (auto& s : shards) s.begin_window();
  constexpr NodeId kDomain = 96;
  for (Count i = 0; i < 6000; ++i) {
    const NodeId src = rng.uniform_index(kDomain);
    const NodeId dst = rng.uniform_index(kDomain);
    whole.add(src, dst);
    shards[parallel::shard_of(src, shards.size(), kDomain)].add(src, dst);
  }
  for (std::size_t s = 1; s < shards.size(); ++s) {
    shards[0].merge(shards[s]);
  }
  EXPECT_EQ(shards[0].total(), whole.total());
  EXPECT_EQ(shards[0].nnz(), whole.nnz());
  for (const auto q : kEveryQuantity) {
    expect_identical(shards[0].histogram(q), whole.histogram(q),
                     std::string(traffic::quantity_name(q)));
  }
}

std::vector<traffic::EdgePacketCounts> synthetic_counts(std::uint64_t seed,
                                                        NodeId domain,
                                                        std::size_t pairs) {
  // Unique unordered pairs with a mix of zero rows, one-sided counts, and
  // self-loops (all-forward by the generator contract).
  Rng rng(seed);
  std::vector<traffic::EdgePacketCounts> out;
  std::map<std::pair<NodeId, NodeId>, bool> seen;
  while (out.size() < pairs) {
    NodeId u = rng.uniform_index(domain);
    NodeId v = rng.uniform_index(domain);
    if (u > v) std::swap(u, v);
    if (!seen.emplace(std::make_pair(u, v), true).second) continue;
    traffic::EdgePacketCounts pc;
    pc.u = u;
    pc.v = v;
    pc.forward = rng.uniform_index(5);  // 0 permitted
    pc.backward = u == v ? 0 : rng.uniform_index(5);
    out.push_back(pc);
  }
  return out;
}

TEST(AccumulatorMerge, CountsShardsMergeToUnshardedContent) {
  constexpr NodeId kDomain = 200;
  const auto records = synthetic_counts(29, kDomain, 500);

  traffic::WindowAccumulator whole;
  whole.begin_window();
  whole.ingest_counts(records);

  constexpr std::size_t kShards = 4;
  std::array<std::vector<traffic::EdgePacketCounts>, kShards> buckets;
  for (const auto& pc : records) {
    buckets[parallel::shard_of(pc.u, kShards, kDomain)].push_back(pc);
  }
  std::array<traffic::WindowAccumulator, kShards> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    shards[s].begin_window();
    shards[s].ingest_counts(buckets[s]);
  }
  for (std::size_t s = 1; s < kShards; ++s) shards[0].merge(shards[s]);

  EXPECT_EQ(shards[0].total(), whole.total());
  EXPECT_EQ(shards[0].nnz(), whole.nnz());
  for (const auto& pc : records) {
    EXPECT_EQ(shards[0].at(pc.u, pc.v), whole.at(pc.u, pc.v));
  }
  for (const auto q : kEveryQuantity) {
    expect_identical(shards[0].histogram(q), whole.histogram(q),
                     std::string(traffic::quantity_name(q)));
  }
}

TEST(AccumulatorMerge, MixedModesDemoteToHashExactly) {
  // One shard holds count-space records, the other hash cells; the merge
  // must demote the counts side and still match a hash replay of both.
  constexpr NodeId kDomain = 120;
  const auto records = synthetic_counts(31, kDomain, 300);

  traffic::WindowAccumulator counts_side;
  counts_side.begin_window();
  counts_side.ingest_counts(records);

  traffic::WindowAccumulator hash_side;
  hash_side.begin_window();
  Rng rng(5);
  std::vector<traffic::Packet> packets;
  for (Count i = 0; i < 2000; ++i) {
    packets.push_back(traffic::Packet{rng.uniform_index(kDomain),
                                      rng.uniform_index(kDomain)});
    hash_side.add(packets.back().src, packets.back().dst);
  }

  traffic::WindowAccumulator reference;
  reference.begin_window();
  for (const auto& pc : records) {
    reference.add(pc.u, pc.v, pc.forward);
    reference.add(pc.v, pc.u, pc.backward);
  }
  for (const auto& p : packets) reference.add(p.src, p.dst);

  // counts ⊕ hash (demotes self) and hash ⊕ counts (replays other) must
  // both land on the reference content.
  traffic::WindowAccumulator a;
  a.begin_window();
  a.ingest_counts(records);
  a.merge(hash_side);
  traffic::WindowAccumulator b;
  b.begin_window();
  for (const auto& p : packets) b.add(p.src, p.dst);
  b.merge(counts_side);
  for (traffic::WindowAccumulator* acc : {&a, &b}) {
    EXPECT_EQ(acc->total(), reference.total());
    EXPECT_EQ(acc->nnz(), reference.nnz());
    for (const auto q : kEveryQuantity) {
      expect_identical(acc->histogram(q), reference.histogram(q),
                       std::string(traffic::quantity_name(q)));
    }
  }
}

TEST(AccumulatorMerge, EmptyAndReusedShardsAreNoOps) {
  traffic::WindowAccumulator acc;
  acc.begin_window();
  acc.add(1, 2, 5);
  traffic::WindowAccumulator empty_hash;
  empty_hash.begin_window();
  traffic::WindowAccumulator empty_counts;
  empty_counts.begin_window();
  empty_counts.ingest_counts({});
  acc.merge(empty_hash);
  acc.merge(empty_counts);
  EXPECT_EQ(acc.total(), 5u);
  EXPECT_EQ(acc.nnz(), 1u);
  EXPECT_EQ(acc.at(1, 2), 5u);
  // Arena reuse across windows must not leak previously merged state.
  acc.begin_window();
  acc.merge(empty_hash);
  EXPECT_EQ(acc.total(), 0u);
  EXPECT_EQ(acc.nnz(), 0u);
}

// ---------------------------------------------------------------------
// sweep-level property suite
// ---------------------------------------------------------------------

traffic::SweepOptions sharded_opts(std::size_t shards, bool counts,
                                   obs::Registry* registry = nullptr) {
  traffic::SweepOptions opts;
  if (counts) opts.synthesis = traffic::SynthesisMode::kMultinomial;
  if (shards > 1) {
    opts.shard_mode = traffic::ShardMode::kIntraWindow;
    opts.shards_per_window = shards;
  }
  opts.metrics = registry;
  return opts;
}

TEST(SweepShards, ByteIdenticalAcrossQuantitiesSeedsAndShardCounts) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 600, 0.02);
  ThreadPool pool(2);
  for (const std::uint64_t seed : {3ull, 17ull, 91ull}) {
    for (const auto q : kEveryQuantity) {
      const auto baseline = traffic::sweep_windows(
          g, traffic::RateModel{}, 5000, 6, q, seed, pool,
          sharded_opts(1, /*counts=*/false));
      for (const std::size_t shards : kShardCounts) {
        const auto sharded = traffic::sweep_windows(
            g, traffic::RateModel{}, 5000, 6, q, seed, pool,
            sharded_opts(shards, /*counts=*/false));
        const std::string context =
            std::string(traffic::quantity_name(q)) + " seed " +
            std::to_string(seed) + " shards " + std::to_string(shards);
        expect_identical(sharded.merged, baseline.merged, context);
        EXPECT_EQ(sharded.max_value, baseline.max_value) << context;
        EXPECT_EQ(sharded.windows, baseline.windows) << context;
        // Bit-exact: the shard merge must feed the Welford ensemble the
        // same LogBinned sequence in the same order.
        EXPECT_EQ(sharded.ensemble.mean(), baseline.ensemble.mean())
            << context;
        EXPECT_EQ(sharded.ensemble.stddev(), baseline.ensemble.stddev())
            << context;
      }
    }
  }
}

TEST(SweepShards, CountsPathByteIdenticalAcrossShardCounts) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 600, 0.02);
  ThreadPool pool(2);
  for (const std::uint64_t seed : {3ull, 17ull, 91ull}) {
    for (const auto q : kEveryQuantity) {
      const auto baseline = traffic::sweep_windows(
          g, traffic::RateModel{}, 5000, 6, q, seed, pool,
          sharded_opts(1, /*counts=*/true));
      for (const std::size_t shards : kShardCounts) {
        const auto sharded = traffic::sweep_windows(
            g, traffic::RateModel{}, 5000, 6, q, seed, pool,
            sharded_opts(shards, /*counts=*/true));
        const std::string context =
            "counts " + std::string(traffic::quantity_name(q)) + " seed " +
            std::to_string(seed) + " shards " + std::to_string(shards);
        expect_identical(sharded.merged, baseline.merged, context);
        EXPECT_EQ(sharded.max_value, baseline.max_value) << context;
        EXPECT_EQ(sharded.ensemble.mean(), baseline.ensemble.mean())
            << context;
        EXPECT_EQ(sharded.ensemble.stddev(), baseline.ensemble.stddev())
            << context;
      }
    }
  }
}

// Legacy-path callers that also ask for intra-window sharding are routed
// through the accumulator machinery; the result must still match.
TEST(SweepShards, LegacyPathWithShardsMatchesLegacyOutput) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 500, 0.02);
  ThreadPool pool(2);
  traffic::SweepOptions legacy;
  legacy.fast_path = false;
  auto sharded_legacy = sharded_opts(4, /*counts=*/false);
  sharded_legacy.fast_path = false;
  const auto a = traffic::sweep_windows(
      g, traffic::RateModel{}, 4000, 5,
      traffic::Quantity::kUndirectedDegree, 13, pool, legacy);
  const auto b = traffic::sweep_windows(
      g, traffic::RateModel{}, 4000, 5,
      traffic::Quantity::kUndirectedDegree, 13, pool, sharded_legacy);
  expect_identical(a.merged, b.merged, "legacy vs sharded-legacy");
  EXPECT_EQ(a.ensemble.mean(), b.ensemble.mean());
}

// Metrics half of the property: everything except the shard-specific
// families (the shards gauge and the merge counter, which measure the
// sharding itself) must be byte-identical across shard counts, and the
// shard families must report exactly the configured K and K−1 merges per
// completed window.
TEST(SweepShards, MetricTrailMatchesModuloShardFamilies) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 600, 0.02);
  ThreadPool pool(2);
  struct Run {
    obs::RegistrySnapshot snap;  // shard families removed
    std::int64_t shards_gauge = -1;
    std::uint64_t merges = 0;
    std::uint64_t completed = 0;
  };
  const auto run = [&](std::size_t shards) {
    obs::Registry registry;
    traffic::sweep_windows(g, traffic::RateModel{}, 5000, 6,
                           traffic::Quantity::kUndirectedDegree, 17, pool,
                           sharded_opts(shards, /*counts=*/false,
                                        &registry));
    Run out;
    out.snap = registry.snapshot();
    out.snap.histograms.clear();  // path/worker-labelled durations
    std::erase_if(out.snap.gauges, [&](const obs::GaugeSample& s) {
      if (s.name != obs::names::kSweepShardsPerWindow) return false;
      out.shards_gauge = s.value;
      return true;
    });
    std::erase_if(out.snap.counters, [&](const obs::CounterSample& s) {
      if (s.name == obs::names::kSweepShardsMerged) {
        out.merges = s.value;
        return true;
      }
      if (s.name == obs::names::kSweepWindows &&
          s.labels == obs::Labels{{"outcome", "completed"}}) {
        out.completed = s.value;
      }
      return false;
    });
    return out;
  };
  const Run baseline = run(1);
  EXPECT_EQ(baseline.shards_gauge, 1);
  EXPECT_EQ(baseline.merges, 0u);
  for (const std::size_t shards : kShardCounts) {
    const Run sharded = run(shards);
    const std::string context = "shards " + std::to_string(shards);
    EXPECT_EQ(sharded.snap.counters, baseline.snap.counters) << context;
    EXPECT_EQ(sharded.snap.gauges, baseline.snap.gauges) << context;
    EXPECT_FALSE(sharded.snap.counters.empty()) << context;
    EXPECT_EQ(sharded.shards_gauge, static_cast<std::int64_t>(shards))
        << context;
    EXPECT_EQ(sharded.completed, baseline.completed) << context;
    EXPECT_EQ(sharded.merges, (shards - 1) * sharded.completed) << context;
  }
}

// ---------------------------------------------------------------------
// failure semantics
// ---------------------------------------------------------------------

TEST(SweepShards, MergeFailpointDegradesUnderBudget) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 400, 0.02);
  ThreadPool pool(1);  // FIFO: windows execute in index order
  testing::FailpointGuard guard;
  failpoints::arm("traffic.shard_merge", /*fires=*/2, /*skip=*/0);
  auto opts = sharded_opts(4, /*counts=*/true);
  opts.max_failed_windows = 2;
  const auto sweep = traffic::sweep_windows(
      g, traffic::RateModel{}, 3000, 6,
      traffic::Quantity::kUndirectedDegree, 21, pool, opts);
  EXPECT_EQ(sweep.failures.size(), 2u);
  EXPECT_EQ(sweep.windows, 4u);
  // Windows that survived the injected merge failures must still match
  // the unsharded content for the same seeds.
  const auto reference = traffic::sweep_windows(
      g, traffic::RateModel{}, 3000, 6,
      traffic::Quantity::kUndirectedDegree, 21, pool,
      sharded_opts(1, /*counts=*/true));
  EXPECT_LT(sweep.merged.total(), reference.merged.total());
}

TEST(SweepShards, MergeFailpointStrictModeThrowsWithWindowIndex) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 400, 0.02);
  ThreadPool pool(1);
  testing::FailpointGuard guard;
  failpoints::arm("traffic.shard_merge", /*fires=*/1, /*skip=*/1);
  const auto opts = sharded_opts(2, /*counts=*/false);
  try {
    traffic::sweep_windows(g, traffic::RateModel{}, 2000, 4,
                           traffic::Quantity::kSourceFanOut, 42, pool,
                           opts);
    FAIL() << "strict sharded sweep must rethrow the merge failure";
  } catch (const traffic::SweepWindowError& e) {
    EXPECT_EQ(e.window(), 1u);
  }
}

TEST(SweepShards, RejectsZeroShards) {
  Rng gen_rng(7);
  const auto g = graph::erdos_renyi(gen_rng, 100, 0.02);
  ThreadPool pool(1);
  traffic::SweepOptions opts;
  opts.shard_mode = traffic::ShardMode::kIntraWindow;
  opts.shards_per_window = 0;
  EXPECT_THROW(traffic::sweep_windows(g, traffic::RateModel{}, 100, 1,
                                      traffic::Quantity::kSourceFanOut, 1,
                                      pool, opts),
               InvalidArgument);
}

}  // namespace
}  // namespace palu
