// Discrete power-law fitting in the Clauset–Shalizi–Newman (2009) style:
// maximum-likelihood α for a zeta law p(d) ∝ d^{-α}, d ≥ xmin, with
// KS-minimizing xmin selection and a parametric-bootstrap goodness-of-fit
// test.  Referenced by the paper ([23]) as the standard power-law toolkit;
// PALU's claim is precisely that traffic data deviate from this family at
// small d.
#pragma once

#include <cstdint>
#include <optional>

#include "palu/common/types.hpp"
#include "palu/parallel/thread_pool.hpp"
#include "palu/rng/xoshiro.hpp"
#include "palu/stats/histogram.hpp"

namespace palu::fit {

struct PowerLawFit {
  double alpha = 0.0;       // MLE exponent
  double alpha_stderr = 0.0;
  Degree xmin = 1;          // lower cutoff the fit applies from
  double ks_statistic = 0.0;
  Count tail_size = 0;      // observations with d >= xmin
  double log_likelihood = 0.0;
};

/// MLE of α for the tail d >= xmin of `h`:
///   α̂ = argmax [ −n·ln ζ(α, xmin) − α Σ ln d ].
/// Throws palu::DataError when fewer than 2 observations lie in the tail
/// or all tail observations equal xmin.
PowerLawFit fit_power_law_fixed_xmin(const stats::DegreeHistogram& h,
                                     Degree xmin);

/// Full CSN procedure: scan candidate xmin over the support, fit α for
/// each, keep the (xmin, α) minimizing the KS distance between the tail
/// empirical cdf and the fitted zeta cdf.  `max_xmin_candidates` bounds the
/// scan for heavy supports (the largest candidates are skipped first).
PowerLawFit fit_power_law(const stats::DegreeHistogram& h,
                          std::size_t max_xmin_candidates = 100);

/// Parametric bootstrap p-value for the fit (CSN §4): synthesize
/// `replicates` datasets of the same size from the semi-parametric model
/// (empirical below xmin, fitted zeta at/above), refit each, and report the
/// fraction whose KS statistic exceeds the observed one.  Runs replicates
/// in parallel on `pool`.
double bootstrap_gof_pvalue(const stats::DegreeHistogram& h,
                            const PowerLawFit& fit, int replicates,
                            Rng& rng, ThreadPool& pool);

/// cdf of the fitted zeta tail model: P[X <= d | X >= xmin].
double zeta_tail_cdf(double alpha, Degree xmin, Degree d);

}  // namespace palu::fit
