// Unit tests for palu/rng: engine determinism and exactness of the discrete
// samplers (moment checks and chi-square-style pmf comparisons).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "palu/common/error.hpp"
#include "palu/math/gamma.hpp"
#include "palu/math/zeta.hpp"
#include "palu/rng/distributions.hpp"
#include "palu/rng/xoshiro.hpp"

namespace palu::rng {
namespace {

TEST(Xoshiro, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Rng rng(7);
  double mean = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  mean /= kN;
  EXPECT_NEAR(mean, 0.5, 0.005);
}

TEST(Xoshiro, UniformPositiveNeverZero) {
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_GT(rng.uniform_positive(), 0.0);
    ASSERT_LE(rng.uniform_positive(), 1.0);
  }
}

TEST(Xoshiro, UniformIndexIsUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 7;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kN = 700000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_index(kBuckets)];
  const double expected = static_cast<double>(kN) / kBuckets;
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 5.0 * std::sqrt(expected))
        << "bucket " << b;
  }
}

TEST(Xoshiro, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng c0 = parent.fork(0);
  Rng c1 = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c0() == c1());
  EXPECT_EQ(equal, 0);
  // fork is const: the parent state is untouched.
  Rng parent2(5);
  (void)parent2.fork(0);
  Rng parent3(5);
  EXPECT_EQ(parent2(), parent3());
}

TEST(Xoshiro, StateRoundTripsThroughFromState) {
  Rng original(99);
  for (int i = 0; i < 17; ++i) (void)original();
  Rng restored = Rng::from_state(original.state());
  for (int i = 0; i < 64; ++i) ASSERT_EQ(restored(), original());
  // The all-zero fixed point degrades to the default-seeded engine
  // instead of emitting zeros forever.
  Rng fallback = Rng::from_state({0, 0, 0, 0});
  EXPECT_NE(fallback(), 0u);
}

TEST(Xoshiro, ForkMixesAllStateWords) {
  // Regression (PR 2): fork() used to derive children from state word 0
  // alone, so any two parents agreeing on that single word forked
  // bit-identical child streams.
  const std::uint64_t shared = 0x0123456789abcdefULL;
  Rng a = Rng::from_state({shared, 11, 22, 33});
  Rng b = Rng::from_state({shared, 44, 55, 66});
  Rng child_a = a.fork(7);
  Rng child_b = b.fork(7);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child_a() == child_b());
  EXPECT_EQ(equal, 0);
  // Sibling scenario from the bug report: a jumped copy keeps a related
  // state; its children must not track the original's children either.
  Rng parent(123);
  Rng sibling = parent;
  sibling.jump();
  Rng cp = parent.fork(0);
  Rng cs = sibling.fork(0);
  equal = 0;
  for (int i = 0; i < 64; ++i) equal += (cp() == cs());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, JumpChangesState) {
  Rng a(3), b(3);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVarianceMatch) {
  const double lambda = GetParam();
  Rng rng(101);
  constexpr int kN = 400000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const auto k = static_cast<double>(sample_poisson(rng, lambda));
    sum += k;
    sum2 += k * k;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  const double se = std::sqrt(lambda / kN);
  EXPECT_NEAR(mean, lambda, 6.0 * se) << "lambda=" << lambda;
  EXPECT_NEAR(var, lambda, 0.03 * lambda + 6.0 * se) << "lambda=" << lambda;
}

// Spans both the inversion (λ < 10) and PTRS (λ >= 10) paths.
INSTANTIATE_TEST_SUITE_P(Sweep, PoissonMoments,
                         ::testing::Values(0.1, 0.9, 3.0, 9.5, 10.5, 20.0,
                                           54.4, 200.0));

TEST(Poisson, PmfAgreement) {
  // Frequency vs analytic pmf at a PTRS-path λ.
  const double lambda = 14.0;
  Rng rng(303);
  constexpr int kN = 500000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kN; ++i) ++counts[sample_poisson(rng, lambda)];
  for (std::uint64_t k = 6; k <= 24; ++k) {
    const double expected = math::poisson_pmf(k, lambda) * kN;
    ASSERT_GT(expected, 100.0);
    EXPECT_NEAR(counts[k], expected, 6.0 * std::sqrt(expected))
        << "k=" << k;
  }
}

TEST(Poisson, ZeroLambda) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

TEST(Poisson, RejectsNegative) {
  Rng rng(1);
  EXPECT_THROW(sample_poisson(rng, -1.0), palu::InvalidArgument);
}

struct BinomialCase {
  std::uint64_t n;
  double p;
};

class BinomialMoments : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialMoments, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(505);
  constexpr int kN = 300000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const auto k = static_cast<double>(sample_binomial(rng, n, p));
    sum += k;
    sum2 += k * k;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  const double m = static_cast<double>(n) * p;
  const double v = m * (1.0 - p);
  EXPECT_NEAR(mean, m, 6.0 * std::sqrt(v / kN) + 1e-9);
  EXPECT_NEAR(var, v, 0.03 * v + 1e-9);
}

// Covers inversion (n·p < 10), BTRS (n·p >= 10), and the p > 0.5 mirror.
INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialMoments,
    ::testing::Values(BinomialCase{10, 0.05}, BinomialCase{10, 0.5},
                      BinomialCase{100, 0.02}, BinomialCase{100, 0.3},
                      BinomialCase{100, 0.92}, BinomialCase{5000, 0.004},
                      BinomialCase{5000, 0.4}, BinomialCase{1000000, 0.001}));

TEST(Binomial, DegenerateEdges) {
  Rng rng(1);
  EXPECT_EQ(sample_binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(sample_binomial(rng, 50, 0.0), 0u);
  EXPECT_EQ(sample_binomial(rng, 50, 1.0), 50u);
  EXPECT_THROW(sample_binomial(rng, 10, 1.5), palu::InvalidArgument);
}

TEST(Binomial, NeverExceedsN) {
  Rng rng(77);
  for (int i = 0; i < 50000; ++i) {
    EXPECT_LE(sample_binomial(rng, 37, 0.9), 37u);
  }
}

TEST(Binomial, SmallMeanKernelMatchesMoments) {
  // sample_binomial_small implements the same law through a different
  // small-mean kernel (single-uniform CDF walk below n·min(p,1−p) = 10,
  // the shared BTRS kernel above).  Cover the walk regime, the BTRS
  // handoff, and the p > 0.5 mirror of each.
  for (const auto [n, p] :
       {BinomialCase{40, 0.05}, BinomialCase{40, 0.95},
        BinomialCase{9, 0.5}, BinomialCase{5000, 0.2},
        BinomialCase{200, 0.97}, BinomialCase{1000000, 0.0005}}) {
    Rng rng(606);
    constexpr int kN = 200000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < kN; ++i) {
      const auto k =
          static_cast<double>(sample_binomial_small(rng, n, p));
      ASSERT_LE(k, static_cast<double>(n));
      sum += k;
      sum2 += k * k;
    }
    const double mean = sum / kN;
    const double var = sum2 / kN - mean * mean;
    const double m = static_cast<double>(n) * p;
    const double v = m * (1.0 - p);
    EXPECT_NEAR(mean, m, 6.0 * std::sqrt(v / kN) + 1e-9)
        << "n=" << n << " p=" << p;
    EXPECT_NEAR(var, v, 0.03 * v + 1e-9) << "n=" << n << " p=" << p;
  }
  Rng rng(1);
  EXPECT_EQ(sample_binomial_small(rng, 0, 0.5), 0u);
  EXPECT_EQ(sample_binomial_small(rng, 50, 0.0), 0u);
  EXPECT_EQ(sample_binomial_small(rng, 50, 1.0), 50u);
  EXPECT_THROW(sample_binomial_small(rng, 10, -0.5),
               palu::InvalidArgument);
}

TEST(Poisson, AlgorithmBoundaryIsSeamless) {
  // λ just below and above the inversion/PTRS switch must produce the
  // same law; compare mean and a head pmf between the two.
  constexpr int kN = 400000;
  const auto sample_mean_and_p8 = [](double lambda, std::uint64_t seed) {
    Rng rng(seed);
    double sum = 0.0;
    int at8 = 0;
    for (int i = 0; i < kN; ++i) {
      const auto k = sample_poisson(rng, lambda);
      sum += static_cast<double>(k);
      at8 += (k == 8);
    }
    return std::pair<double, double>(sum / kN,
                                     static_cast<double>(at8) / kN);
  };
  const auto below = sample_mean_and_p8(9.99, 1);
  const auto above = sample_mean_and_p8(10.01, 2);
  EXPECT_NEAR(below.first, 9.99, 0.05);
  EXPECT_NEAR(above.first, 10.01, 0.05);
  EXPECT_NEAR(below.second, math::poisson_pmf(8, 9.99), 0.005);
  EXPECT_NEAR(above.second, math::poisson_pmf(8, 10.01), 0.005);
}

TEST(Zipf, SteepModeBoundaryIsSeamless) {
  // α just below / above the sequential-inversion switch (8.0).
  constexpr int kN = 200000;
  const auto head_mass = [](double alpha, std::uint64_t seed) {
    BoundedZipfSampler zipf(alpha, 2, 1000);
    Rng rng(seed);
    int at2 = 0;
    for (int i = 0; i < kN; ++i) at2 += (zipf(rng) == 2);
    return static_cast<double>(at2) / kN;
  };
  const double below = head_mass(7.95, 3);
  const double above = head_mass(8.05, 4);
  // Analytic P(2) over [2, 1000] ≈ 1/(1 + (2/3)^α + ...).
  const auto p2 = [](double alpha) {
    double z = 0.0;
    for (int d = 2; d <= 1000; ++d) z += std::pow(d, -alpha);
    return std::pow(2.0, -alpha) / z;
  };
  EXPECT_NEAR(below, p2(7.95), 0.005);
  EXPECT_NEAR(above, p2(8.05), 0.005);
}

TEST(Geometric, MeanMatches) {
  Rng rng(909);
  for (double q : {0.1, 0.45, 0.9}) {
    constexpr int kN = 300000;
    double sum = 0.0;
    std::uint64_t minv = ~0ull;
    for (int i = 0; i < kN; ++i) {
      const auto k = sample_geometric(rng, q);
      sum += static_cast<double>(k);
      minv = std::min(minv, k);
    }
    EXPECT_EQ(minv, 1u) << "support starts at 1";
    EXPECT_NEAR(sum / kN, 1.0 / q, 0.02 / q);
  }
}

TEST(Geometric, DegenerateOne) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_geometric(rng, 1.0), 1u);
}

struct ZipfCase {
  double alpha;
  std::uint64_t dmin;
  std::uint64_t dmax;
};

class ZipfExactness : public ::testing::TestWithParam<ZipfCase> {};

TEST_P(ZipfExactness, FrequenciesMatchPmf) {
  const auto [alpha, dmin, dmax] = GetParam();
  BoundedZipfSampler zipf(alpha, dmin, dmax);
  Rng rng(606);
  constexpr int kN = 400000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t d = zipf(rng);
    ASSERT_GE(d, dmin);
    ASSERT_LE(d, dmax);
    ++counts[d];
  }
  // Normalizer over [dmin, dmax].
  double z = 0.0;
  for (std::uint64_t d = dmin; d <= std::min(dmax, dmin + 2000); ++d) {
    z += std::pow(static_cast<double>(d), -alpha);
  }
  if (dmax > dmin + 2000) {
    z += math::hurwitz_zeta(alpha, static_cast<double>(dmin + 2001)) -
         math::hurwitz_zeta(alpha, static_cast<double>(dmax) + 1.0);
  }
  for (std::uint64_t d = dmin; d < dmin + 12 && d <= dmax; ++d) {
    const double expected =
        kN * std::pow(static_cast<double>(d), -alpha) / z;
    if (expected < 50.0) continue;
    EXPECT_NEAR(counts[d], expected, 6.0 * std::sqrt(expected))
        << "d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfExactness,
    ::testing::Values(ZipfCase{1.5, 1, 1000000}, ZipfCase{2.0, 1, 1000},
                      ZipfCase{3.0, 1, 100000}, ZipfCase{2.5, 7, 5000},
                      ZipfCase{1.1, 1, 50}, ZipfCase{2.0, 100, 100000},
                      // steep-exponent sequential-inversion path
                      ZipfCase{9.5, 1, 1000}, ZipfCase{12.0, 3, 500}));

TEST(Zipf, SingletonDomain) {
  BoundedZipfSampler zipf(2.0, 5, 5);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf(rng), 5u);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(BoundedZipfSampler(0.0, 10), palu::InvalidArgument);
  EXPECT_THROW(BoundedZipfSampler(2.0, 0), palu::InvalidArgument);
  EXPECT_THROW(BoundedZipfSampler(2.0, 10, 5), palu::InvalidArgument);
}

TEST(Alias, MatchesWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasSampler alias(weights);
  Rng rng(808);
  constexpr int kN = 400000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kN; ++i) ++counts[alias(rng)];
  for (std::size_t i = 0; i < 4; ++i) {
    const double expected = kN * weights[i] / 10.0;
    EXPECT_NEAR(counts[i], expected, 6.0 * std::sqrt(expected));
  }
}

TEST(Alias, OffsetShiftsSupport) {
  AliasSampler alias({1.0, 1.0}, /*offset=*/100);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto v = alias(rng);
    EXPECT_TRUE(v == 100 || v == 101);
  }
}

TEST(Alias, HandlesZeroWeightEntries) {
  AliasSampler alias({0.0, 5.0, 0.0});
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(alias(rng), 1u);
}

TEST(Alias, RejectsDegenerateInputs) {
  EXPECT_THROW(AliasSampler({}), palu::InvalidArgument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), palu::InvalidArgument);
  EXPECT_THROW(AliasSampler({-1.0, 2.0}), palu::InvalidArgument);
}

TEST(Multinomial, ConservesMassExactly) {
  // The binomial-splitting tree partitions n at every node, so the draw
  // must sum to n exactly — for any n, including far above the per-draw
  // variance where a lost trial would hide from moment checks.
  const std::vector<double> weights{3.0, 0.25, 10.0, 1.0, 0.5, 7.0, 2.0};
  MultinomialSampler sampler(weights);
  Rng rng(811);
  std::vector<std::uint64_t> counts(weights.size());
  for (const std::uint64_t n :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{13},
        std::uint64_t{4096}, std::uint64_t{1000003}}) {
    sampler(rng, n, counts);
    std::uint64_t total = 0;
    for (const auto c : counts) total += c;
    EXPECT_EQ(total, n) << "n=" << n;
  }
}

TEST(Multinomial, ChiSquareAgreementAcrossSeeds) {
  // Pooled per-category frequencies vs the exact expectation n·w_i/Σw,
  // as a chi-square statistic per seed.  dof = 7 categories − 1 = 6;
  // the 0.999 quantile of χ²(6) is 22.46, so a correct sampler fails one
  // seed in a thousand — four independent seeds make a flake vanishing.
  const std::vector<double> weights{5.0, 1.0, 0.01, 12.0, 3.0, 0.5, 2.0};
  double total_weight = 0.0;
  for (const double w : weights) total_weight += w;
  MultinomialSampler sampler(weights);
  constexpr std::uint64_t kN = 200000;
  std::vector<std::uint64_t> counts(weights.size());
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    Rng rng(seed);
    sampler(rng, kN, counts);
    double chi2 = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const double expected =
          static_cast<double>(kN) * weights[i] / total_weight;
      ASSERT_GT(expected, 50.0);
      const double d = static_cast<double>(counts[i]) - expected;
      chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 22.46) << "seed=" << seed;
  }
}

TEST(Multinomial, SparseAndDenseRegimesAgree) {
  // The sampler switches from pruned tree descent to the sequential
  // conditional-binomial chain at n >= (categories + 3) / 4.  Both
  // implement the same law, so pooled per-category frequencies from
  // either side of the crossover must match the exact expectation.
  constexpr std::size_t kCats = 256;
  std::vector<double> weights(kCats);
  Rng wrng(3);
  double total = 0.0;
  for (double& w : weights) {
    w = std::pow(wrng.uniform_positive(), -0.5);  // heavy-tailed weights
    total += w;
  }
  MultinomialSampler sampler(weights);
  std::vector<std::uint64_t> counts(kCats);
  const auto pool = [&](Rng& rng, std::uint64_t per_draw, int draws,
                        std::vector<double>& out) {
    out.assign(kCats, 0.0);
    for (int d = 0; d < draws; ++d) {
      sampler(rng, per_draw, counts);
      for (std::size_t i = 0; i < kCats; ++i) {
        out[i] += static_cast<double>(counts[i]);
      }
    }
  };
  // 32 < 256/4: multi-trial tree descent.  6000 < ... is not: the chain.
  std::vector<double> sparse, dense;
  Rng rng_s(71), rng_d(72);
  pool(rng_s, 32, 8000, sparse);
  pool(rng_d, 6000, 50, dense);
  for (std::size_t i = 0; i < kCats; ++i) {
    const double p = weights[i] / total;
    for (const auto* pooled : {&sparse, &dense}) {
      const double n = pooled == &sparse ? 32.0 * 8000.0 : 6000.0 * 50.0;
      const double sigma = std::sqrt(n * p * (1.0 - p));
      EXPECT_NEAR((*pooled)[i], n * p, 6.0 * sigma + 1.0) << "cat " << i;
    }
  }
}

TEST(Multinomial, MatchesRepeatedCategoricalLaw) {
  // Cross-check against the alias sampler: both implement the same law,
  // so pooled frequencies over many draws must agree within CLT noise.
  const std::vector<double> weights{1.0, 2.0, 4.0, 8.0};
  MultinomialSampler multi(weights);
  AliasSampler alias(weights);
  constexpr int kDraws = 200;
  constexpr std::uint64_t kPerDraw = 1000;
  std::vector<double> from_multi(weights.size(), 0.0);
  std::vector<double> from_alias(weights.size(), 0.0);
  Rng rng_m(99), rng_a(99);
  std::vector<std::uint64_t> counts(weights.size());
  for (int d = 0; d < kDraws; ++d) {
    multi(rng_m, kPerDraw, counts);
    for (std::size_t i = 0; i < counts.size(); ++i) {
      from_multi[i] += static_cast<double>(counts[i]);
    }
    for (std::uint64_t i = 0; i < kPerDraw; ++i) ++from_alias[alias(rng_a)];
  }
  const double n = kDraws * static_cast<double>(kPerDraw);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double p = weights[i] / 15.0;
    const double sigma = std::sqrt(n * p * (1.0 - p));
    EXPECT_NEAR(from_multi[i], from_alias[i], 8.0 * sigma) << "cat " << i;
  }
}

TEST(Multinomial, SingleCategoryTakesEverything) {
  MultinomialSampler sampler({2.5});
  Rng rng(4);
  std::vector<std::uint64_t> counts(1);
  sampler(rng, 123456, counts);
  EXPECT_EQ(counts[0], 123456u);
}

TEST(Multinomial, ZeroWeightCategoriesNeverDraw) {
  MultinomialSampler sampler({0.0, 3.0, 0.0, 1.0, 0.0});
  Rng rng(6);
  std::vector<std::uint64_t> counts(5);
  for (int rep = 0; rep < 50; ++rep) {
    sampler(rng, 10000, counts);
    EXPECT_EQ(counts[0], 0u);
    EXPECT_EQ(counts[2], 0u);
    EXPECT_EQ(counts[4], 0u);
    EXPECT_EQ(counts[1] + counts[3], 10000u);
  }
}

TEST(Multinomial, ZeroTrialsLeaveAllZero) {
  MultinomialSampler sampler({1.0, 2.0, 3.0});
  Rng rng(8);
  std::vector<std::uint64_t> counts{9, 9, 9};  // stale scratch is cleared
  sampler(rng, 0, counts);
  for (const auto c : counts) EXPECT_EQ(c, 0u);
}

TEST(Multinomial, RejectsDegenerateInputs) {
  EXPECT_THROW(MultinomialSampler({}), palu::InvalidArgument);
  EXPECT_THROW(MultinomialSampler({0.0, 0.0}), palu::InvalidArgument);
  EXPECT_THROW(MultinomialSampler({1.0, -2.0}), palu::InvalidArgument);
  MultinomialSampler sampler({1.0, 1.0});
  Rng rng(2);
  std::vector<std::uint64_t> wrong_size(3);
  EXPECT_THROW(sampler(rng, 5, wrong_size), palu::InvalidArgument);
}

TEST(Multinomial, ConvenienceWrapperMatchesLaw) {
  Rng rng(21);
  const auto counts = sample_multinomial(rng, 1000, {1.0, 1.0});
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0] + counts[1], 1000u);
  // Binomial(1000, 1/2) is within 6σ ≈ 95 of 500 essentially always.
  EXPECT_NEAR(static_cast<double>(counts[0]), 500.0, 95.0);
}

}  // namespace
}  // namespace palu::rng
