// Fixture: an unannotated clock read must trip the determinism rule (the
// real timing code carries a file-level allow with a justification).
// palu-lint-expect: determinism
#include <chrono>

long long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
