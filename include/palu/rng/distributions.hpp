// Exact samplers for the discrete laws the PALU model is built from.
//
// - Poisson(λ): star leaf counts in the unattached component (Section V).
// - Binomial(n, p): edge thinning when forming the observed network.
// - Bounded Zipf (p(d) ∝ d^{-α}, 1 ≤ d ≤ dmax): core degree sequence.
// - Geometric: the Section VI geometric replacement of the Poisson tail.
// - Alias method: arbitrary finite pmfs (e.g. Zipf–Mandelbrot streams).
//
// All samplers are exact (rejection-based, not approximations) so that
// Monte-Carlo checks of the paper's closed-form predictions are limited by
// sampling noise only.
#pragma once

#include <cstdint>
#include <vector>

#include "palu/rng/xoshiro.hpp"

namespace palu::rng {

/// Poisson(λ) sample; exact for all λ ≥ 0 (inversion below λ=10, Hörmann
/// PTRS transformed rejection above).
std::uint64_t sample_poisson(Rng& rng, double lambda);

/// Binomial(n, p) sample; exact (inversion for small n·min(p,1−p),
/// Hörmann BTRS transformed rejection for large).
std::uint64_t sample_binomial(Rng& rng, std::uint64_t n, double p);

/// Geometric on {1, 2, ...} with success probability q: P[X=k] = q(1−q)^{k−1}.
std::uint64_t sample_geometric(Rng& rng, double q);

/// Samples d ∈ [dmin, dmax] with P(d) ∝ d^{-alpha}, alpha > 0, by
/// rejection-inversion (Hörmann & Derflinger); O(1) per draw for any range.
class BoundedZipfSampler {
 public:
  /// Domain [1, dmax].
  BoundedZipfSampler(double alpha, std::uint64_t dmax);

  /// Domain [dmin, dmax]; used for power-law tails d >= xmin.
  BoundedZipfSampler(double alpha, std::uint64_t dmin, std::uint64_t dmax);

  std::uint64_t operator()(Rng& rng) const;

  double alpha() const noexcept { return alpha_; }
  std::uint64_t dmin() const noexcept { return dmin_; }
  std::uint64_t dmax() const noexcept { return dmax_; }

 private:
  double h_integral(double x) const;
  double h(double x) const;
  double h_integral_inverse(double y) const;
  std::uint64_t sample_steep(Rng& rng) const;

  double alpha_;
  std::uint64_t dmin_;
  std::uint64_t dmax_;
  double h_integral_lo_;  // H(dmin + 0.5) − h(dmin): lower end of u range
  double h_integral_hi_;  // H(dmax + 0.5): upper end of u range
  double s_;
  // Steep-exponent mode: rejection-inversion loses H(dmin)↔H(dmax)
  // resolution once α·ln is large, so for α >= 8 draws walk the cdf
  // directly from dmin (expected O(1) steps — the law is concentrated).
  bool steep_ = false;
  double total_mass_ = 0.0;  // Σ_{d=dmin}^{dmax} d^{−α} for steep mode
};

/// Walker alias method over a finite pmf on {offset, offset+1, ...}.
/// Construction is O(n); each draw is O(1).
class AliasSampler {
 public:
  /// `weights` need not be normalized; they must be non-negative with a
  /// positive sum.
  explicit AliasSampler(const std::vector<double>& weights,
                        std::uint64_t offset = 0);

  std::uint64_t operator()(Rng& rng) const;

  std::size_t size() const noexcept { return prob_.size(); }
  std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::uint64_t offset_;
};

}  // namespace palu::rng
