// Figure 3 — Measured distributions and modified Zipf–Mandelbrot fits.
//
// Regenerates the figure's six-panel structure: synthetic "datasets"
// spanning different underlying compositions and window sizes, each
// measured over many consecutive windows to get D(d_i) ± 1σ, then fit with
// the modified ZM model.  One panel is deliberately leaf/unattached-heavy
// so the single (α, δ) law fits poorly — the paper's upper-right panel
// whose deviation motivates PALU.  Prints measured mean ± σ vs model per
// bin and the fit quality; then times the window → pooled → fit path.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "palu/palu.hpp"

namespace {

using namespace palu;

struct Panel {
  std::string name;
  core::PaluParams params;
  Count n_valid;
};

std::vector<Panel> make_panels() {
  using P = core::PaluParams;
  return {
      {"backbone p=0.95", P::solve_hubs(2.0, 0.55, 0.15, 2.0, 0.95),
       200000},
      {"backbone p=0.4", P::solve_hubs(2.0, 0.55, 0.15, 2.0, 0.4), 50000},
      {"steep core a=2.8", P::solve_hubs(1.5, 0.5, 0.2, 2.8, 0.8), 100000},
      {"shallow core a=1.7", P::solve_hubs(1.5, 0.5, 0.2, 1.7, 0.8),
       100000},
      {"leafy site", P::solve_hubs(3.0, 0.3, 0.4, 2.2, 0.7), 100000},
      {"bot-heavy (ZM misfit)", P::solve_hubs(9.0, 0.1, 0.1, 2.2, 1.0),
       100000},
  };
}

struct PanelResult {
  std::vector<double> mean;
  std::vector<double> sigma;
  stats::LogBinned model;
  fit::ZmFitResult fit;
  Degree dmax = 0;
  double max_sigma_deviation = 0.0;  // worst |mean−model|/max(σ, floor)
};

PanelResult run_panel(const Panel& panel, std::size_t num_windows,
                      std::uint64_t seed) {
  // Each window is an independent observation of the same underlying
  // network (fresh edge-retention coin flips), matching the consecutive-
  // window methodology of Section II.
  Rng rng(seed);
  const auto net = core::generate_underlying(panel.params, 150000, rng);
  stats::BinnedEnsemble ensemble;
  Degree dmax = 0;
  for (std::size_t t = 0; t < num_windows; ++t) {
    Rng window_rng = rng.fork(t + 1);
    const auto observed =
        core::generate_observed(net, panel.params, window_rng);
    const auto h =
        stats::DegreeHistogram::from_degrees(observed.degrees());
    dmax = std::max(dmax, h.max_degree());
    ensemble.add(stats::LogBinned::from_histogram(h));
  }
  PanelResult out;
  out.mean = ensemble.mean();
  out.sigma = ensemble.stddev();
  out.dmax = dmax;
  fit::ZmFitOptions opts;
  opts.bin_sigma = out.sigma;
  opts.sigma_floor = 1e-4;
  out.fit = fit::fit_zipf_mandelbrot(stats::LogBinned(out.mean), dmax,
                                     opts);
  out.model =
      fit::ZipfMandelbrot(out.fit.alpha, out.fit.delta, dmax).pooled();
  for (std::size_t i = 0; i < out.mean.size(); ++i) {
    const double m = i < out.model.num_bins() ? out.model[i] : 0.0;
    const double dev = std::abs(out.mean[i] - m) /
                       std::max(out.sigma[i], 1e-4);
    out.max_sigma_deviation = std::max(out.max_sigma_deviation, dev);
  }
  return out;
}

void print_fig3() {
  std::printf("=== Figure 3: measured D(d_i) +/- 1-sigma vs modified "
              "Zipf-Mandelbrot fits ===\n");
  std::printf("(each panel: 16 consecutive windows of the same underlying "
              "network)\n\n");
  std::uint64_t seed = 900;
  for (const Panel& panel : make_panels()) {
    const PanelResult r = run_panel(panel, 16, seed++);
    std::printf("--- %-24s alpha=%.3f delta=%+.3f d_max=%llu "
                "worst|dev|/sigma=%.1f ---\n",
                panel.name.c_str(), r.fit.alpha, r.fit.delta,
                static_cast<unsigned long long>(r.dmax),
                r.max_sigma_deviation);
    std::printf("  d_i        measured      sigma        model\n");
    for (std::size_t i = 0; i < r.mean.size(); ++i) {
      if (r.mean[i] <= 0.0 && (i >= r.model.num_bins() ||
                               r.model[i] < 1e-9)) {
        continue;
      }
      std::printf("  %-9llu  %.5e  %.5e  %.5e\n",
                  static_cast<unsigned long long>(
                      stats::LogBinned::bin_upper(
                          static_cast<std::uint32_t>(i))),
                  r.mean[i], r.sigma[i],
                  i < r.model.num_bins() ? r.model[i] : 0.0);
    }
    std::printf("\n");
  }
  std::printf("Reading: the bot-heavy panel's worst deviation (in sigma) "
              "dwarfs the others,\nreproducing the paper's upper-right "
              "misfit that motivates the PALU model.\n\n");

  // Extra panel: the same measurement via the *packet-window* path
  // (Section II verbatim): consecutive N_V windows of one stream, pooled
  // undirected degrees with cross-window sigma, modified-ZM fit.
  const auto params =
      core::PaluParams::solve_hubs(2.5, 0.45, 0.2, 2.1, 1.0);
  Rng rng(1234);
  const auto net = core::generate_underlying(params, 80000, rng);
  ThreadPool pool;
  const auto sweep = traffic::sweep_windows(
      net.graph, traffic::RateModel{}, /*n_valid=*/150000,
      /*num_windows=*/12, traffic::Quantity::kUndirectedDegree,
      /*seed=*/77, pool);
  fit::ZmFitOptions opts;
  opts.bin_sigma = sweep.ensemble.stddev();
  opts.sigma_floor = 1e-4;
  const auto zm = fit::fit_zipf_mandelbrot(
      stats::LogBinned(sweep.ensemble.mean()), sweep.max_value, opts);
  std::printf("--- traffic-window panel (N_V=150k x 12 windows): "
              "alpha=%.3f delta=%+.3f ---\n",
              zm.alpha, zm.delta);
  const auto model =
      fit::ZipfMandelbrot(zm.alpha, zm.delta, sweep.max_value).pooled();
  const auto mean = sweep.ensemble.mean();
  const auto sigma = sweep.ensemble.stddev();
  std::printf("  d_i        measured      sigma        model\n");
  for (std::size_t i = 0; i < mean.size(); ++i) {
    if (mean[i] <= 0.0) continue;
    std::printf("  %-9llu  %.5e  %.5e  %.5e\n",
                static_cast<unsigned long long>(
                    stats::LogBinned::bin_upper(
                        static_cast<std::uint32_t>(i))),
                mean[i], sigma[i],
                i < model.num_bins() ? model[i] : 0.0);
  }
  std::printf("\n");
}

void BM_Fig3PanelPipeline(benchmark::State& state) {
  const auto panels = make_panels();
  const Panel& panel = panels[static_cast<std::size_t>(state.range(0))];
  std::uint64_t seed = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_panel(panel, 4, seed++));
  }
  state.SetLabel(panel.name);
}
BENCHMARK(BM_Fig3PanelPipeline)->Arg(0)->Arg(5);

void BM_ZmPooledEvaluation(benchmark::State& state) {
  const fit::ZipfMandelbrot zm(2.1, 0.7, 1u << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zm.pooled());
  }
}
BENCHMARK(BM_ZmPooledEvaluation);

}  // namespace

int main(int argc, char** argv) {
  print_fig3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
