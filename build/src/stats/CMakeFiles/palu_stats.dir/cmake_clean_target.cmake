file(REMOVE_RECURSE
  "libpalu_stats.a"
)
